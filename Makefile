# Development entry points. CI (.github/workflows/ci.yml) runs exactly
# these commands; `make verify` is the full local gate.

GO ?= go

.PHONY: all build lint lint-fix-check test race fuzz-smoke chaos corruption blocks bench-json obs-smoke obs-trace serve fleet fmt verify

all: build

build:
	$(GO) build ./...

# Static analysis: gofmt over the whole tree (examples/ included), the
# toolchain's vet suite, and dnalint — all eleven repo-invariant analyzers
# (allocguard, clockinject, copydiscipline, ctxprop, determinism,
# errtaxonomy, goroutinebound, registerinit, spanend, statsadd,
# untrustedflow) —
# driven through `go vet -vettool` so it sees the same build graph vet
# does, then the //lint:ignore audit: every suppression must still be
# covering a live finding.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build -o bin/dnalint ./cmd/dnalint
	$(GO) vet -vettool=$(CURDIR)/bin/dnalint ./...
	./bin/dnalint -ignores ./...

# Quick pre-commit pass: just the dnalint suite (standalone driver, no
# toolchain vet) plus the suppression audit — seconds, not minutes.
lint-fix-check:
	$(GO) build -o bin/dnalint ./cmd/dnalint
	./bin/dnalint ./...
	./bin/dnalint -ignores ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A few seconds per fuzz target: catches shallow decode/cache regressions
# without a long campaign. `go test` accepts one -fuzz pattern per run.
fuzz-smoke:
	$(GO) test ./internal/compress -run='^$$' -fuzz=FuzzRoundTripAll -fuzztime=5s
	$(GO) test ./internal/compress -run='^$$' -fuzz=FuzzDecompressAll -fuzztime=5s
	$(GO) test ./internal/compress -run='^$$' -fuzz=FuzzCacheKey -fuzztime=5s
	$(GO) test ./internal/compress -run='^$$' -fuzz=FuzzFrameOpen -fuzztime=5s
	$(GO) test ./internal/compress -run='^$$' -fuzz=FuzzBlockContainerOpen -fuzztime=5s

# Hardened-decode gate: the armored-frame corruption suite (truncation,
# bit flips, extension, header tampering against all registered codecs),
# the promoted fuzz seeds, and the frame-checksum exchange tests, under
# the race detector.
corruption:
	$(GO) test ./internal/compress/... -race -run 'Corruption|NeverPanics|SafeDecompress|Frame|Seal|Open'
	$(GO) test ./internal/cloud -race -run 'ExchangeDetectsCorruption|ExchangeBlobIsArmoredFrame'

# Block-engine gate: the property-based BlockSuite (round-trip at block
# boundaries, 1k-probe seek equivalence, jobs determinism, block-vs-whole
# differential) and the multi-block corruption mutants across all
# registered codecs, plus the hostile-header, cache-aliasing, block
# exchange and block CLI tests — all under the race detector.
blocks:
	$(GO) test ./internal/compress/... -race -run 'Block'
	$(GO) test ./internal/cloud -race -run 'ExchangeBlocks'
	$(GO) test ./cmd/dnacomp -race -run 'Block'

# Regenerate the per-PR benchmark snapshot (BENCH_<n>.json). Numbers are
# hardware-dependent; commit the snapshot from the PR that changes the
# measured path.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_6.json

bench-json-server:
	$(GO) run ./cmd/benchjson -suite server -o BENCH_8.json

bench-json-fleet:
	$(GO) run ./cmd/benchjson -suite fleet -o BENCH_9.json

bench-json-obs:
	$(GO) run ./cmd/benchjson -suite obs -o BENCH_10.json

# Serving gate: the daemon and debug-server tests under the race detector
# (admission control, graceful drain, reader contracts, expvar remount,
# synchronous pprof bind), then a deterministic load-generator smoke
# against a real dnacompd process — full outcome accounting, zero failed
# or mismatched requests.
serve:
	$(GO) test ./internal/serve ./internal/obs ./cmd/dnacompd -race
	$(GO) build -o bin/dnacompd ./cmd/dnacompd
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	./bin/dnacompd -loadgen self -requests 24 -conc 6 -seed 2015 > "$$tmp/load.json" || { echo "serve: loadgen smoke failed"; exit 1; }; \
	grep -q '"failed": 0' "$$tmp/load.json" || { echo "serve: loadgen reported failures"; exit 1; }; \
	grep -q '"mismatches": 0' "$$tmp/load.json" || { echo "serve: loadgen reported mismatches"; exit 1; }; \
	echo "serve: ok"

# Chaos gate: the fault-injection and exchange tests under -race, run
# twice to prove the seeded fault schedules and retry backoff reproduce
# exactly (same seed => byte-identical reports).
chaos:
	$(GO) test ./internal/cloud -race -count=2 -run 'Faulty|Exchange|Backoff'

# Fleet gate: the sharded-store fleet under -race — ring placement,
# replication and quorums, breaker state machine, degraded-error
# attribution, and the fleet chaos suite run twice to prove the seeded
# shard kills reproduce byte-identical exchange reports; then the serve
# layer's fleet-backed store, Retry-After backpressure contract and the
# drain goroutine-leak check while a shard flaps.
fleet:
	$(GO) test ./internal/cloud -race -count=2 -run 'Fleet'
	$(GO) test ./internal/serve -race -run 'Fleet|RetryAfter|Drain'

# Observability gate: a tiny grid with metrics + trace export enabled must
# emit well-formed Prometheus text (codec, cache and grid families) and a
# span trace, and — the acceptance criterion — produce a CSV byte-identical
# to the same run without any export flags.
obs-smoke:
	$(GO) build -o bin/experiment ./cmd/experiment
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	./bin/experiment -files 3 -max-kb 4 -jobs 2 -seed 2015 -out "$$tmp/plain.csv" >/dev/null; \
	./bin/experiment -files 3 -max-kb 4 -jobs 2 -seed 2015 -out "$$tmp/obs.csv" \
		-metrics "$$tmp/metrics.prom" -trace "$$tmp/trace.json" >/dev/null; \
	cmp "$$tmp/plain.csv" "$$tmp/obs.csv" || { echo "obs-smoke: CSV changed with observability enabled"; exit 1; }; \
	grep -q '^# TYPE dna_codec_calls_total counter' "$$tmp/metrics.prom" || { echo "obs-smoke: missing codec metrics"; exit 1; }; \
	grep -q '^dna_cache_' "$$tmp/metrics.prom" || { echo "obs-smoke: missing cache metrics"; exit 1; }; \
	grep -q '^dna_grid_tasks_total' "$$tmp/metrics.prom" || { echo "obs-smoke: missing grid metrics"; exit 1; }; \
	grep -q '"name": "experiment.grid"' "$$tmp/trace.json" || { echo "obs-smoke: missing grid span"; exit 1; }; \
	echo "obs-smoke: ok"

# Request-tracing gate: a daemon round-trip through the in-process
# selftest — an inbound traceparent must survive serve -> codec -> fleet
# replica with one trace ID, the flight recorder must replay the request's
# codec/shard/breaker attribution, and /debug/slo must fold a non-empty
# verdict.
obs-trace:
	$(GO) build -o bin/dnacompd ./cmd/dnacompd
	./bin/dnacompd -obs-selftest

fmt:
	gofmt -w .

verify: lint build race chaos corruption blocks fleet obs-smoke obs-trace serve
