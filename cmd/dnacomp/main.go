// Command dnacomp compresses and decompresses DNA sequences with any codec
// in the registry.
//
// Compression accepts FASTA or raw ACGT text, cleanses it (headers,
// whitespace and non-ACGT characters are stripped, as the paper's pipeline
// does before single-sequence experiments), and writes an armored frame —
// the compress package container carrying the codec name, the original
// symbol count, and checksums over both the payload and the restored
// output:
//
//	dnacomp -codec dnax -o seq.dnax seq.fa
//	dnacomp -d -o restored.txt seq.dnax
//
// The frame records the codec, so decompression needs no flag, and
// decompression runs through compress.SafeDecompress: corrupted, truncated
// or tampered files are rejected with a checksum error instead of being
// silently mis-restored. Output files are written atomically (temp file +
// rename), so a crash mid-write never leaves a truncated file behind.
//
// Batch mode compresses many inputs concurrently through a bounded worker
// pool with a shared content-hash result cache, writing one container per
// input next to it (or under -o DIR):
//
//	dnacomp -batch -codec dnax -jobs 8 -o out/ *.fa
//
// Exchange mode simulates the paper's full exchange loop — compress on the
// client, upload to BLOB storage, download at the datacenter, decompress,
// verify — optionally against a fault-injected store with seeded transient
// failures and capped exponential retry backoff:
//
//	dnacomp -exchange -codec dnax -fault-rate 0.3 -retries 8 seq.fa
//
// With -fleet N the exchange runs against a replicated shard fleet instead
// of a single store: blobs are placed on a consistent-hash ring, written to
// -fleet-replication distinct shards, and read back through quorum with
// health-aware failover, so the loop survives per-shard faults. The fault
// rate then applies per shard (each with its own seeded schedule) rather
// than wrapping one store:
//
//	dnacomp -exchange -codec dnax -fleet 5 -fleet-replication 3 -fault-rate 0.2 seq.fa
//
// Block mode splits the input into fixed-size blocks compressed through a
// bounded worker pool into one seekable multi-block container (CXB1); -seek
// then decodes just a symbol range, touching only the overlapping blocks:
//
//	dnacomp -codec dnax -block-size 65536 -o seq.cxb seq.fa
//	dnacomp -d -seek 120000:512 seq.cxb
//
// Without -block-size the single-frame format is used, byte-identical with
// earlier releases. In exchange mode -block-size uploads each block as its
// own BLOB through a pipelined transfer pool with per-block retries.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/seq"

	_ "github.com/srl-nuces/ctxdna/internal/compress/biocompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnacompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnapack"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
	_ "github.com/srl-nuces/ctxdna/internal/compress/xm"
)

// legacyMagic headed the pre-armor container format: no checksums, no
// length, no tamper detection. It is recognized only to point users at
// recompression.
const legacyMagic = "CTXDNA1\n"

func main() {
	var (
		codecName  = flag.String("codec", "dnax", "codec for compression: "+strings.Join(compress.Names(), ", "))
		decompress = flag.Bool("d", false, "decompress instead of compress")
		output     = flag.String("o", "", "output path (default stdout); output directory in batch mode")
		quiet      = flag.Bool("q", false, "suppress the stats line")
		batch      = flag.Bool("batch", false, "compress every input file argument (one container each)")
		jobs       = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel workers in batch mode")
		exchange   = flag.Bool("exchange", false, "simulate the full cloud exchange loop (compress, upload, download, decompress, verify)")
		faultRate  = flag.Float64("fault-rate", 0, "transient-fault probability per storage op in exchange mode")
		retries    = flag.Int("retries", cloud.DefaultRetryPolicy().MaxRetries, "retry budget per storage op in exchange mode")
		faultSeed  = flag.Uint64("fault-seed", 2015, "seed for the fault schedule and retry jitter in exchange mode")
		fleetSize  = flag.Int("fleet", 0, "exchange against a replicated fleet of this many shards (0 = single store)")
		fleetRepl  = flag.Int("fleet-replication", 0, "replicas per blob in fleet exchange (0 = fleet default)")
		blockSize  = flag.Int("block-size", 0, "compress into a seekable multi-block container with this block size in bases (0 = single frame)")
		seekSpec   = flag.String("seek", "", "with -d on a multi-block container: decode only off:len symbols, touching only overlapping blocks")
		metricsOut = flag.String("metrics", "", "write a Prometheus text metrics snapshot to this file on exit (- for stderr)")
		traceOut   = flag.String("trace", "", "write the span trace as JSON to this file on exit")
		pprofAddr  = flag.String("pprof", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if err := validateFlags(*faultRate, *retries, *blockSize, *seekSpec, *decompress, *fleetSize, *fleetRepl); err != nil {
		fmt.Fprintln(os.Stderr, "dnacomp:", err)
		flag.Usage()
		os.Exit(2)
	}

	// Recording always targets the process-wide default registry; the flags
	// only add exporters, so behavior and output bytes never depend on them.
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.System())
		ctx = obs.WithTracer(ctx, tracer)
	}
	if *pprofAddr != "" {
		// The listener binds synchronously: an unbindable -pprof address is
		// a usage error reported before any work starts, not an async log
		// line racing the run.
		srv, err := obs.NewDebugServer(*pprofAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnacomp: debug server:", err)
			os.Exit(2)
		}
		//lint:ignore goroutinebound debug server intentionally serves for the whole process lifetime; the kernel reclaims it at exit
		go srv.Serve()
	}

	var err error
	switch {
	case *exchange:
		err = runExchange(ctx, *codecName, *faultRate, *retries, *faultSeed, *blockSize, *fleetSize, *fleetRepl, *quiet, flag.Args())
	case *batch:
		err = runBatch(*codecName, *decompress, *output, *quiet, *jobs, flag.Args())
	default:
		err = run(*codecName, *decompress, *output, *quiet, *blockSize, *seekSpec, flag.Args())
	}
	// Snapshots are written even after a failed run: the metrics of a
	// failure are exactly what a debugging user wants.
	if werr := exportObservability(*metricsOut, *traceOut, tracer); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnacomp:", err)
		os.Exit(1)
	}
}

// exportObservability writes the requested metrics / trace snapshots.
// "-" for metrics means stderr, keeping stdout clean for pipeline output.
func exportObservability(metricsOut, traceOut string, tracer *obs.Tracer) error {
	if metricsOut != "" {
		if metricsOut == "-" {
			if err := obs.Default().WritePrometheus(os.Stderr); err != nil {
				return fmt.Errorf("write metrics: %w", err)
			}
		} else if err := writeFileWith(metricsOut, obs.Default().WritePrometheus); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if traceOut != "" && tracer != nil {
		if err := writeFileWith(traceOut, tracer.WriteJSON); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// validateFlags rejects nonsensical exchange knobs up front: a fault rate
// is a probability, and a negative retry budget has no meaning. Failing
// fast with a usage error beats a fault schedule that silently never fires
// or a retry loop with undefined bounds.
func validateFlags(faultRate float64, retries, blockSize int, seekSpec string, decompress bool, fleetSize, fleetRepl int) error {
	if faultRate < 0 || faultRate > 1 {
		return fmt.Errorf("-fault-rate %v is not a probability: must be in [0,1]", faultRate)
	}
	if retries < 0 {
		return fmt.Errorf("-retries %d is negative: must be >= 0", retries)
	}
	if blockSize < 0 {
		return fmt.Errorf("-block-size %d is negative: must be >= 0 (0 = single frame)", blockSize)
	}
	if fleetSize < 0 {
		return fmt.Errorf("-fleet %d is negative: must be >= 0 (0 = single store)", fleetSize)
	}
	if fleetRepl < 0 {
		return fmt.Errorf("-fleet-replication %d is negative: must be >= 0 (0 = fleet default)", fleetRepl)
	}
	if fleetRepl > 0 && fleetSize == 0 {
		return fmt.Errorf("-fleet-replication needs -fleet: there is no fleet to replicate across")
	}
	if fleetRepl > fleetSize {
		return fmt.Errorf("-fleet-replication %d exceeds -fleet %d: a blob cannot have more replicas than shards", fleetRepl, fleetSize)
	}
	if fleetSize > 0 && faultRate >= 1 {
		return fmt.Errorf("-fault-rate %v with -fleet must be in [0,1): rate 1 makes every shard fail every op", faultRate)
	}
	if seekSpec != "" {
		if !decompress {
			return fmt.Errorf("-seek only applies with -d")
		}
		if _, _, err := parseSeek(seekSpec); err != nil {
			return err
		}
	}
	return nil
}

// parseSeek splits "off:len" into non-negative symbol counts.
func parseSeek(spec string) (off, n int, err error) {
	offStr, lenStr, ok := strings.Cut(spec, ":")
	if ok {
		off, err = strconv.Atoi(offStr)
		if err == nil {
			n, err = strconv.Atoi(lenStr)
		}
	}
	if !ok || err != nil || off < 0 || n < 0 {
		return 0, 0, fmt.Errorf("-seek %q: want off:len with non-negative integers", spec)
	}
	return off, n, nil
}

func run(codecName string, decompress bool, output string, quiet bool, blockSize int, seekSpec string, args []string) error {
	in, name, err := openInput(args)
	if err != nil {
		return err
	}
	defer in.Close()
	raw, err := io.ReadAll(in)
	if err != nil {
		return fmt.Errorf("reading %s: %w", name, err)
	}
	var result []byte
	switch {
	case decompress && seekSpec != "":
		result, err = doSeek(raw, seekSpec, quiet)
	case decompress:
		result, err = doDecompress(raw, quiet)
	case blockSize > 0:
		result, err = doBlockCompress(codecName, blockSize, raw, quiet)
	default:
		result, err = doCompress(codecName, raw, quiet)
	}
	if err != nil {
		return err
	}
	return writeOutput(output, result)
}

// writeOutput sends result to stdout, or writes it atomically to path so a
// crash mid-write never leaves a truncated file where output was expected.
func writeOutput(path string, result []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(result)
		return err
	}
	return atomicWriteFile(path, result, 0o644)
}

// atomicWriteFile writes data to a temp file in path's directory and
// renames it into place, so path only ever holds complete content.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op once the rename has claimed it
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

// runExchange pushes the cleansed input through the full exchange loop —
// compress on a modeled lab client, upload to (optionally fault-injected)
// BLOB storage, download at the datacenter, decompress and verify — and
// reports the modeled stage times and the retry trace. With fleetSize > 0
// the store is a replicated shard fleet and the fault rate applies per
// shard instead of wrapping a single store. ctx carries the tracer when
// -trace is set; metrics go to the default registry.
func runExchange(ctx context.Context, codecName string, faultRate float64, retries int, faultSeed uint64, blockSize, fleetSize, fleetRepl int, quiet bool, args []string) error {
	in, name, err := openInput(args)
	if err != nil {
		return err
	}
	defer in.Close()
	raw, err := io.ReadAll(in)
	if err != nil {
		return fmt.Errorf("reading %s: %w", name, err)
	}
	symbols, _ := cleanse(raw)
	if len(symbols) == 0 {
		return fmt.Errorf("input contains no ACGT bases")
	}

	var store cloud.Store
	var fleet *cloud.Fleet
	if fleetSize > 0 {
		// Fleet mode: each shard carries its own seeded fault schedule, so a
		// transient failure on one replica fails over instead of failing the
		// op. The registry is the process default so -metrics snapshots the
		// dna_fleet_* health series.
		fleet, err = cloud.NewFleet(cloud.FleetConfig{
			Shards:      cloud.DefaultShardSpecs(fleetSize, faultRate, faultSeed),
			Replication: fleetRepl,
			Seed:        faultSeed,
			Registry:    obs.Default(),
		})
		if err != nil {
			return fmt.Errorf("building fleet: %w", err)
		}
		store = fleet
	} else {
		store = cloud.NewBlobStore()
		if faultRate > 0 {
			store = cloud.NewFaultyStore(store, cloud.FaultConfig{Rate: faultRate, Seed: faultSeed})
		}
	}
	policy := cloud.DefaultRetryPolicy()
	policy.MaxRetries = retries
	policy.Seed = faultSeed
	client := cloud.Grid()[0] // a representative slow lab guest
	exOpts := cloud.ExchangeOptions{
		Blob:    filepath.Base(name),
		Retry:   policy,
		Cleanup: true,
	}
	var rep cloud.ExchangeReport
	if blockSize > 0 {
		// Block mode: each block travels as its own BLOB through a pipelined
		// transfer pool with an independent retry schedule per piece.
		brep, err := cloud.ExchangeBlocks(ctx, client, store, codecName, symbols, cloud.BlockExchangeOptions{
			ExchangeOptions: exOpts,
			Block:           compress.BlockOptions{BlockSize: blockSize},
		})
		if err != nil {
			return fmt.Errorf("exchange: %w", err)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "dnacomp: block exchange: %d block(s) of %d bases, container %d bytes\n",
				brep.Blocks, blockSize, brep.ContainerBytes)
		}
		rep = brep.ExchangeReport
	} else {
		rep, err = cloud.Exchange(ctx, client, store, codecName, symbols, exOpts)
		if err != nil {
			return fmt.Errorf("exchange: %w", err)
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "dnacomp: exchange via %s on %s: %d bases -> %d bytes (%.3f bits/base)\n",
			rep.Codec, client.Name, rep.OriginalBases, rep.CompressedBytes, rep.BitsPerBase)
		fmt.Fprintf(os.Stderr, "dnacomp: modeled ms: compress %.1f, upload %.1f, download %.1f, decompress %.1f, retry backoff %.1f (total %.1f)\n",
			rep.CompressMS, rep.UploadMS, rep.DownloadMS, rep.DecompressMS, rep.RetryWaitMS, rep.TotalTimeMS())
		for _, tr := range rep.Traces {
			fmt.Fprintf(os.Stderr, "dnacomp: %s: %d attempt(s)\n", tr.Op, tr.Attempts)
		}
		if fleet != nil {
			fr := fleet.Report()
			fmt.Fprintf(os.Stderr, "dnacomp: fleet: %d shard(s), replication %d (write quorum %d, read quorum %d)\n",
				len(fr.Shards), fr.Replication, fr.WriteQuorum, fr.ReadQuorum)
			for _, sh := range fr.Shards {
				fmt.Fprintf(os.Stderr, "dnacomp: fleet: %s: %s, %d op(s), %d failure(s), error ewma %.3f, modeled %.1f ms\n",
					sh.Name, sh.State, sh.Ops, sh.Failures, sh.ErrorEWMA, sh.ModeledMS)
			}
		}
		fmt.Fprintln(os.Stderr, "dnacomp: round trip verified byte-identical")
	}
	return nil
}

func openInput(args []string) (io.ReadCloser, string, error) {
	if len(args) == 0 || args[0] == "-" {
		return io.NopCloser(os.Stdin), "stdin", nil
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, "", err
	}
	return f, args[0], nil
}

func doCompress(codecName string, raw []byte, quiet bool) ([]byte, error) {
	codec, err := compress.New(codecName)
	if err != nil {
		return nil, err
	}
	codec = compress.Instrument(nil, codec)
	symbols, stats := cleanse(raw)
	if len(symbols) == 0 {
		return nil, fmt.Errorf("input contains no ACGT bases")
	}
	data, st, err := codec.Compress(symbols)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "dnacomp: %s: %d bases -> %d bytes (%.3f bits/base, dropped %d non-ACGT), modeled %.1f ms / %.1f MB on the reference core\n",
			codec.Name(), len(symbols), len(data), compress.Ratio(len(symbols), len(data)),
			stats.Ambiguous+stats.Other, float64(st.WorkNS)/1e6, float64(st.PeakMem)/(1<<20))
	}
	return compress.Seal(codec.Name(), symbols, data), nil
}

// doBlockCompress writes the seekable multi-block container instead of a
// single frame: blocks are compressed concurrently but the output bytes are
// deterministic for any worker count.
func doBlockCompress(codecName string, blockSize int, raw []byte, quiet bool) ([]byte, error) {
	symbols, stats := cleanse(raw)
	if len(symbols) == 0 {
		return nil, fmt.Errorf("input contains no ACGT bases")
	}
	container, st, err := compress.BlockCompressObserved(nil, codecName, symbols, compress.BlockOptions{BlockSize: blockSize})
	if err != nil {
		return nil, err
	}
	if !quiet {
		blocks := (len(symbols) + blockSize - 1) / blockSize
		fmt.Fprintf(os.Stderr, "dnacomp: %s: %d bases -> %d bytes in %d block(s) of %d (%.3f bits/base, dropped %d non-ACGT), modeled %.1f ms / %.1f MB on the reference core\n",
			codecName, len(symbols), len(container), blocks, blockSize, compress.Ratio(len(symbols), len(container)),
			stats.Ambiguous+stats.Other, float64(st.WorkNS)/1e6, float64(st.PeakMem)/(1<<20))
	}
	return container, nil
}

// doSeek decodes only the requested symbol range from a multi-block
// container — the blocks outside the range are never decompressed.
func doSeek(raw []byte, spec string, quiet bool) ([]byte, error) {
	off, n, err := parseSeek(spec)
	if err != nil {
		return nil, err
	}
	if !compress.IsBlockContainer(raw) {
		return nil, fmt.Errorf("-seek needs a multi-block container (CXB1 header); this file is a single frame — recompress with -block-size")
	}
	r, err := compress.OpenBlocksObserved(nil, raw, compress.Limits{})
	if err != nil {
		return nil, err
	}
	symbols, st, err := r.Slice(off, n)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "dnacomp: %s: decoded %d of %d bases at offset %d (block size %d, touched blocks only), modeled %.1f ms\n",
			r.Codec(), n, r.Bases(), off, r.BlockSize(), float64(st.WorkNS)/1e6)
	}
	return seq.Decode(symbols), nil
}

func cleanse(raw []byte) ([]byte, seq.CleanStats) {
	cl := seq.Cleanser{}
	if bytes.HasPrefix(bytes.TrimSpace(raw), []byte(">")) {
		seqs, st, err := cl.CleanFASTA(bytes.NewReader(raw))
		if err == nil {
			var all []byte
			for _, s := range seqs {
				all = append(all, s...)
			}
			return all, st
		}
	}
	return cl.Clean(raw)
}

// runBatch compresses every input file with the chosen codec through a
// bounded worker pool sharing one content-hash result cache, so duplicate
// inputs are compressed once. Failures are aggregated per file; successful
// outputs are still written.
func runBatch(codecName string, decompress bool, outDir string, quiet bool, jobs int, args []string) error {
	if decompress {
		return fmt.Errorf("batch mode is compression-only; decompress files individually")
	}
	if len(args) == 0 {
		return fmt.Errorf("batch mode needs input file arguments")
	}
	if _, err := compress.New(codecName); err != nil {
		return err
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(args) {
		jobs = len(args)
	}

	cache := compress.NewCache()
	errs := make([]error, len(args))
	lines := make([]string, len(args))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				lines[i], errs[i] = batchOne(cache, codecName, outDir, args[i])
			}
		}()
	}
	for i := range args {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var failed []string
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", args[i], err))
			continue
		}
		if !quiet {
			fmt.Fprintln(os.Stderr, lines[i])
		}
	}
	if !quiet {
		hits, misses := cache.Counters()
		fmt.Fprintf(os.Stderr, "dnacomp: batch: %d/%d files ok (jobs=%d, cache %d hits / %d misses)\n",
			len(args)-len(failed), len(args), jobs, hits, misses)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d of %d inputs failed: %s", len(failed), len(args), strings.Join(failed, "; "))
	}
	return nil
}

// batchOne compresses one input file into <name>.<codec>, beside the input
// or under outDir when given.
func batchOne(cache *compress.Cache, codecName, outDir, in string) (string, error) {
	raw, err := os.ReadFile(in)
	if err != nil {
		return "", err
	}
	symbols, _ := cleanse(raw)
	if len(symbols) == 0 {
		return "", fmt.Errorf("input contains no ACGT bases")
	}
	r, err := compress.CompressCached(cache, codecName, symbols)
	if err != nil {
		return "", err
	}
	outPath := in + "." + codecName
	if outDir != "" {
		outPath = filepath.Join(outDir, filepath.Base(in)+"."+codecName)
	}
	// r.Data is already a sealed armored frame; write it atomically so a
	// crashed batch never leaves truncated containers among good ones.
	if err := atomicWriteFile(outPath, r.Data, 0o644); err != nil {
		return "", err
	}
	return fmt.Sprintf("dnacomp: %s: %s: %d bases -> %d bytes (%.3f bits/base)",
		codecName, in, r.Bases, r.PayloadBytes, compress.Ratio(r.Bases, r.PayloadBytes)), nil
}

func doDecompress(raw []byte, quiet bool) ([]byte, error) {
	if bytes.HasPrefix(raw, []byte(legacyMagic)) {
		return nil, fmt.Errorf("legacy un-armored container (%q header): it carries no checksums; recompress the source with this version",
			strings.TrimSpace(legacyMagic))
	}
	if compress.IsBlockContainer(raw) {
		return doBlockDecompress(raw, quiet)
	}
	symbols, st, err := compress.SafeDecompress("", raw, compress.Limits{})
	// The frame header names the codec; a frame too corrupt to open books
	// under "unknown" so failed restores are still counted somewhere.
	codecName := "unknown"
	if fr, ferr := compress.Open(raw); ferr == nil && fr.Codec != "" {
		codecName = fr.Codec
	}
	compress.ObserveDecompress(nil, codecName, len(raw), len(symbols), st, err)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "dnacomp: %s: restored %d bases (checksums verified), modeled %.1f ms\n",
			codecName, len(symbols), float64(st.WorkNS)/1e6)
	}
	return seq.Decode(symbols), nil
}

// doBlockDecompress restores a multi-block (CXB1) container: every block is
// decoded through the hardened per-block path and the whole output is
// verified against the container-level checksum.
func doBlockDecompress(raw []byte, quiet bool) ([]byte, error) {
	r, err := compress.OpenBlocksObserved(nil, raw, compress.Limits{})
	if err != nil {
		compress.ObserveDecompress(nil, "unknown", len(raw), 0, compress.Stats{}, err)
		return nil, err
	}
	symbols, st, err := r.Decompress()
	compress.ObserveDecompress(nil, r.Codec(), len(raw), len(symbols), st, err)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "dnacomp: %s: restored %d bases from %d block(s) (checksums verified), modeled %.1f ms\n",
			r.Codec(), len(symbols), r.Blocks(), float64(st.WorkNS)/1e6)
	}
	return seq.Decode(symbols), nil
}
