// Command dnacomp compresses and decompresses DNA sequences with any codec
// in the registry.
//
// Compression accepts FASTA or raw ACGT text, cleanses it (headers,
// whitespace and non-ACGT characters are stripped, as the paper's pipeline
// does before single-sequence experiments), and writes a self-describing
// container:
//
//	dnacomp -codec dnax -o seq.dnax seq.fa
//	dnacomp -d -o restored.txt seq.dnax
//
// The container records the codec, so decompression needs no flag.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/seq"

	_ "github.com/srl-nuces/ctxdna/internal/compress/biocompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnacompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnapack"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
	_ "github.com/srl-nuces/ctxdna/internal/compress/xm"
)

const magic = "CTXDNA1\n"

func main() {
	var (
		codecName  = flag.String("codec", "dnax", "codec for compression: "+strings.Join(compress.Names(), ", "))
		decompress = flag.Bool("d", false, "decompress instead of compress")
		output     = flag.String("o", "", "output path (default stdout)")
		quiet      = flag.Bool("q", false, "suppress the stats line")
	)
	flag.Parse()
	if err := run(*codecName, *decompress, *output, *quiet, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dnacomp:", err)
		os.Exit(1)
	}
}

func run(codecName string, decompress bool, output string, quiet bool, args []string) error {
	in, name, err := openInput(args)
	if err != nil {
		return err
	}
	defer in.Close()
	raw, err := io.ReadAll(in)
	if err != nil {
		return fmt.Errorf("reading %s: %w", name, err)
	}
	out := os.Stdout
	if output != "" {
		f, err := os.Create(output)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if decompress {
		return doDecompress(raw, out, quiet)
	}
	return doCompress(codecName, raw, out, quiet)
}

func openInput(args []string) (io.ReadCloser, string, error) {
	if len(args) == 0 || args[0] == "-" {
		return io.NopCloser(os.Stdin), "stdin", nil
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, "", err
	}
	return f, args[0], nil
}

func doCompress(codecName string, raw []byte, out io.Writer, quiet bool) error {
	codec, err := compress.New(codecName)
	if err != nil {
		return err
	}
	symbols, stats := cleanse(raw)
	if len(symbols) == 0 {
		return fmt.Errorf("input contains no ACGT bases")
	}
	data, st, err := codec.Compress(symbols)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(out, magic); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(out, "%s\n", codec.Name()); err != nil {
		return err
	}
	if _, err := out.Write(data); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "dnacomp: %s: %d bases -> %d bytes (%.3f bits/base, dropped %d non-ACGT), modeled %.1f ms / %.1f MB on the reference core\n",
			codec.Name(), len(symbols), len(data), compress.Ratio(len(symbols), len(data)),
			stats.Ambiguous+stats.Other, float64(st.WorkNS)/1e6, float64(st.PeakMem)/(1<<20))
	}
	return nil
}

func cleanse(raw []byte) ([]byte, seq.CleanStats) {
	cl := seq.Cleanser{}
	if bytes.HasPrefix(bytes.TrimSpace(raw), []byte(">")) {
		seqs, st, err := cl.CleanFASTA(bytes.NewReader(raw))
		if err == nil {
			var all []byte
			for _, s := range seqs {
				all = append(all, s...)
			}
			return all, st
		}
	}
	return cl.Clean(raw)
}

func doDecompress(raw []byte, out io.Writer, quiet bool) error {
	if !bytes.HasPrefix(raw, []byte(magic)) {
		return fmt.Errorf("not a dnacomp container (missing %q header)", strings.TrimSpace(magic))
	}
	rest := raw[len(magic):]
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return fmt.Errorf("truncated container header")
	}
	codecName := string(rest[:nl])
	codec, err := compress.New(codecName)
	if err != nil {
		return err
	}
	symbols, st, err := codec.Decompress(rest[nl+1:])
	if err != nil {
		return err
	}
	if _, err := out.Write(seq.Decode(symbols)); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "dnacomp: %s: restored %d bases, modeled %.1f ms\n",
			codecName, len(symbols), float64(st.WorkNS)/1e6)
	}
	return nil
}
