package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/seq"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTripRawText(t *testing.T) {
	p := synth.Profile{Length: 5000, GC: 0.45, RepeatProb: 0.002, RepeatMin: 20, RepeatMax: 200}
	ascii := p.GenerateASCII(1)
	in := writeTemp(t, "seq.txt", ascii)
	packed := filepath.Join(t.TempDir(), "seq.dnax")
	if err := run("dnax", false, packed, true, 0, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	restored := filepath.Join(t.TempDir(), "restored.txt")
	if err := run("", true, restored, true, 0, "", []string{packed}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ascii) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripFASTA(t *testing.T) {
	p := synth.Profile{Length: 3000, GC: 0.4}
	codes := p.Generate(2)
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, []seq.Record{{Header: "test sequence", Seq: seq.Decode(codes)}}, 60); err != nil {
		t.Fatal(err)
	}
	in := writeTemp(t, "seq.fa", fasta.Bytes())
	packed := filepath.Join(t.TempDir(), "seq.ctw")
	if err := run("ctw", false, packed, true, 0, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	restored := filepath.Join(t.TempDir(), "restored.txt")
	if err := run("", true, restored, true, 0, "", []string{packed}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seq.Decode(codes)) {
		t.Fatal("FASTA round trip mismatch")
	}
}

func TestEveryRegisteredCodecThroughCLI(t *testing.T) {
	p := synth.Profile{Length: 2000, GC: 0.5, RepeatProb: 0.003, RepeatMin: 20, RepeatMax: 100}
	ascii := p.GenerateASCII(3)
	in := writeTemp(t, "seq.txt", ascii)
	for _, name := range compress.Names() {
		packed := filepath.Join(t.TempDir(), "seq."+name)
		if err := run(name, false, packed, true, 0, "", []string{in}); err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		restored := filepath.Join(t.TempDir(), "restored."+name)
		if err := run("", true, restored, true, 0, "", []string{packed}); err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		got, err := os.ReadFile(restored)
		if err != nil || !bytes.Equal(got, ascii) {
			t.Fatalf("%s: round trip mismatch (%v)", name, err)
		}
	}
}

func TestContainerSelfDescribes(t *testing.T) {
	p := synth.Profile{Length: 1000, GC: 0.5}
	in := writeTemp(t, "seq.txt", p.GenerateASCII(4))
	packed := filepath.Join(t.TempDir(), "seq.bin")
	if err := run("gencompress", false, packed, true, 0, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(packed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(compress.FrameMagic)) {
		t.Fatal("container missing armored-frame magic")
	}
	if !bytes.Contains(data[:32], []byte("gencompress")) {
		t.Fatal("container missing codec name")
	}
	fr, err := compress.Open(data)
	if err != nil {
		t.Fatalf("container is not a valid frame: %v", err)
	}
	if fr.Codec != "gencompress" {
		t.Fatalf("frame records codec %q", fr.Codec)
	}
}

// TestDecompressRejectsCorruptedFile: a compressed file with one flipped
// byte must be refused with compress.ErrCorrupt, never silently
// mis-restored.
func TestDecompressRejectsCorruptedFile(t *testing.T) {
	p := synth.Profile{Length: 2000, GC: 0.5}
	in := writeTemp(t, "seq.txt", p.GenerateASCII(5))
	packed := filepath.Join(t.TempDir(), "seq.dnax")
	if err := run("dnax", false, packed, true, 0, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(packed)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x10
	corrupted := writeTemp(t, "corrupt.dnax", data)
	restored := filepath.Join(t.TempDir(), "restored.txt")
	err = run("", true, restored, true, 0, "", []string{corrupted})
	if err == nil {
		t.Fatal("corrupted container accepted")
	}
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if _, statErr := os.Stat(restored); !os.IsNotExist(statErr) {
		t.Fatalf("output file exists after failed decompress (atomic write violated): %v", statErr)
	}
}

// TestLegacyContainerRefusedClearly: the pre-armor format is named in the
// error so users know to recompress rather than chase a corruption report.
func TestLegacyContainerRefusedClearly(t *testing.T) {
	legacy := append([]byte(legacyMagic), []byte("dnax\nabc")...)
	err := run("", true, "", true, 0, "", []string{writeTemp(t, "old.bin", legacy)})
	if err == nil || !strings.Contains(err.Error(), "legacy") {
		t.Fatalf("legacy container error %v does not say it is legacy", err)
	}
}

// TestValidateFlags: exchange and block knobs outside their domain fail fast.
func TestValidateFlags(t *testing.T) {
	for _, tc := range []struct {
		rate       float64
		retries    int
		blockSize  int
		seek       string
		decompress bool
		ok         bool
	}{
		{0, 0, 0, "", false, true}, {1, 0, 0, "", false, true}, {0.5, 8, 0, "", false, true},
		{-0.1, 0, 0, "", false, false}, {1.01, 0, 0, "", false, false}, {0, -1, 0, "", false, false},
		{0, 0, 4096, "", false, true}, {0, 0, -1, "", false, false},
		{0, 0, 0, "10:20", true, true}, {0, 0, 0, "0:0", true, true},
		{0, 0, 0, "10:20", false, false}, // -seek without -d
		{0, 0, 0, "10", true, false}, {0, 0, 0, "-1:5", true, false},
		{0, 0, 0, "a:b", true, false}, {0, 0, 0, "5:-1", true, false},
	} {
		err := validateFlags(tc.rate, tc.retries, tc.blockSize, tc.seek, tc.decompress, 0, 0)
		if (err == nil) != tc.ok {
			t.Errorf("validateFlags(%v, %d, %d, %q, %v) = %v, want ok=%v",
				tc.rate, tc.retries, tc.blockSize, tc.seek, tc.decompress, err, tc.ok)
		}
	}
}

// TestBlockContainerRoundTripCLI: -block-size writes a CXB1 container that
// -d restores to the original text, and -seek decodes exactly the requested
// window of it.
func TestBlockContainerRoundTripCLI(t *testing.T) {
	p := synth.Profile{Length: 6000, GC: 0.45, RepeatProb: 0.002, RepeatMin: 20, RepeatMax: 150}
	ascii := p.GenerateASCII(51)
	in := writeTemp(t, "seq.txt", ascii)
	packed := filepath.Join(t.TempDir(), "seq.cxb")
	if err := run("dnax", false, packed, true, 1024, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(packed)
	if err != nil {
		t.Fatal(err)
	}
	if !compress.IsBlockContainer(data) {
		t.Fatal("-block-size output is not a CXB1 container")
	}
	restored := filepath.Join(t.TempDir(), "restored.txt")
	if err := run("", true, restored, true, 0, "", []string{packed}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(restored)
	if err != nil || !bytes.Equal(got, ascii) {
		t.Fatalf("block container round trip mismatch (%v)", err)
	}
	// -seek spanning a block boundary returns exactly that slice of the text.
	window := filepath.Join(t.TempDir(), "window.txt")
	if err := run("", true, window, true, 0, "900:300", []string{packed}); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(window)
	if err != nil || !bytes.Equal(got, ascii[900:1200]) {
		t.Fatalf("-seek window mismatch (%v)", err)
	}
	// -seek on a single-frame file is refused with a pointer to -block-size.
	single := filepath.Join(t.TempDir(), "seq.dnax")
	if err := run("dnax", false, single, true, 0, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	if err := run("", true, "", true, 0, "0:10", []string{single}); err == nil || !strings.Contains(err.Error(), "block-size") {
		t.Fatalf("-seek on a single frame: err = %v", err)
	}
	// Out-of-range seek fails without being a corruption report.
	if err := run("", true, "", true, 0, "5999:100", []string{packed}); err == nil || errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("out-of-range seek: err = %v", err)
	}
	// A corrupted block container is refused with ErrCorrupt.
	data[len(data)-2] ^= 0x08
	bad := writeTemp(t, "bad.cxb", data)
	if err := run("", true, "", true, 0, "", []string{bad}); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("corrupted block container: err = %v", err)
	}
}

// TestExchangeModeBlocks: the block-mode exchange loop round-trips through
// clean and fault-injected stores from the CLI.
func TestExchangeModeBlocks(t *testing.T) {
	p := synth.Profile{Length: 3000, GC: 0.5}
	in := writeTemp(t, "seq.txt", p.GenerateASCII(52))
	if err := runExchange(context.Background(), "dnax", 0, 8, 2015, 512, 0, 0, true, []string{in}); err != nil {
		t.Fatalf("clean block exchange: %v", err)
	}
	if err := runExchange(context.Background(), "dnax", 0.3, 8, 2015, 512, 0, 0, true, []string{in}); err != nil {
		t.Fatalf("faulty block exchange at 30%%: %v", err)
	}
}

// TestAtomicWriteFile: the write lands complete under the final name, the
// temp file is gone, and a failed write leaves the previous content intact.
func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := atomicWriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content %q", got)
	}
	if err := atomicWriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("overwrite content %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.bin" {
		t.Fatalf("stray temp files left behind: %v", entries)
	}
}

// TestBatchCompress: batch mode writes one container per input, each of
// which decompresses back to the cleansed input, and duplicate content is
// served from the shared cache.
func TestBatchCompress(t *testing.T) {
	p := synth.Profile{Length: 4000, GC: 0.45, RepeatProb: 0.002, RepeatMin: 20, RepeatMax: 200}
	ascii := p.GenerateASCII(21)
	other := synth.Profile{Length: 2500, GC: 0.55}.GenerateASCII(22)
	in1 := writeTemp(t, "a.txt", ascii)
	in2 := writeTemp(t, "b.txt", other)
	in3 := writeTemp(t, "dup.txt", ascii) // same content as a.txt -> cache hit
	outDir := t.TempDir()

	if err := runBatch("dnax", false, outDir, true, 2, []string{in1, in2, in3}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		in   string
		want []byte
	}{
		{in1, ascii}, {in2, other}, {in3, ascii},
	} {
		packed := filepath.Join(outDir, filepath.Base(tc.in)+".dnax")
		restored := filepath.Join(t.TempDir(), "restored.txt")
		if err := run("", true, restored, true, 0, "", []string{packed}); err != nil {
			t.Fatalf("%s: decompress: %v", packed, err)
		}
		got, err := os.ReadFile(restored)
		if err != nil || !bytes.Equal(got, tc.want) {
			t.Fatalf("%s: batch round trip mismatch (%v)", tc.in, err)
		}
	}
}

// TestBatchWithoutOutputDir writes containers beside the inputs.
func TestBatchWithoutOutputDir(t *testing.T) {
	in := writeTemp(t, "seq.txt", []byte("ACGTACGTACGTACGT"))
	if err := runBatch("twobit", false, "", true, 1, []string{in}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(in + ".twobit"); err != nil {
		t.Fatalf("container not written beside input: %v", err)
	}
}

// TestBatchErrors: failures are aggregated per input and name the file;
// good inputs in the same batch still produce output.
func TestBatchErrors(t *testing.T) {
	good := writeTemp(t, "good.txt", []byte("ACGTACGTACGT"))
	missing := filepath.Join(t.TempDir(), "missing.txt")
	empty := writeTemp(t, "numbers.txt", []byte("123456"))
	outDir := t.TempDir()

	err := runBatch("dnax", false, outDir, true, 4, []string{good, missing, empty})
	if err == nil {
		t.Fatal("batch with bad inputs reported success")
	}
	if msg := err.Error(); !strings.Contains(msg, "missing.txt") || !strings.Contains(msg, "numbers.txt") {
		t.Errorf("aggregated error %q does not name the failing files", msg)
	}
	if !strings.Contains(err.Error(), "2 of 3") {
		t.Errorf("aggregated error %q does not count failures", err.Error())
	}
	if _, statErr := os.Stat(filepath.Join(outDir, "good.txt.dnax")); statErr != nil {
		t.Errorf("good input skipped when siblings failed: %v", statErr)
	}

	if err := runBatch("dnax", true, outDir, true, 1, []string{good}); err == nil {
		t.Error("batch decompress accepted")
	}
	if err := runBatch("dnax", false, outDir, true, 1, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if err := runBatch("nope", false, outDir, true, 1, []string{good}); err == nil {
		t.Error("unknown codec accepted in batch mode")
	}
}

func TestErrors(t *testing.T) {
	if err := run("nope", false, "", true, 0, "", []string{writeTemp(t, "x.txt", []byte("ACGT"))}); err == nil || !strings.Contains(err.Error(), "unknown codec") {
		t.Errorf("unknown codec: err = %v", err)
	}
	if err := run("dnax", false, "", true, 0, "", []string{writeTemp(t, "x.txt", []byte("12345"))}); err == nil {
		t.Error("no-ACGT input accepted")
	}
	if err := run("", true, "", true, 0, "", []string{writeTemp(t, "x.bin", []byte("garbage"))}); err == nil {
		t.Error("garbage container accepted")
	}
	if err := run("dnax", false, "", true, 0, "", []string{filepath.Join(t.TempDir(), "missing.txt")}); err == nil {
		t.Error("missing input accepted")
	}
	truncated := []byte(compress.FrameMagic + "\x01") // magic but nothing else
	if err := run("", true, "", true, 0, "", []string{writeTemp(t, "t.bin", truncated)}); err == nil {
		t.Error("truncated header accepted")
	}
}

// TestExchangeMode: the exchange loop round-trips through a clean store and
// through a 30 % fault-injected store, and rejects bad input up front.
func TestExchangeMode(t *testing.T) {
	p := synth.Profile{Length: 3000, GC: 0.5, RepeatProb: 0.002, RepeatMin: 20, RepeatMax: 100}
	in := writeTemp(t, "seq.txt", p.GenerateASCII(31))
	if err := runExchange(context.Background(), "dnax", 0, 8, 2015, 0, 0, 0, true, []string{in}); err != nil {
		t.Fatalf("clean exchange: %v", err)
	}
	if err := runExchange(context.Background(), "dnax", 0.3, 8, 2015, 0, 0, 0, true, []string{in}); err != nil {
		t.Fatalf("faulty exchange at 30%%: %v", err)
	}
	if err := runExchange(context.Background(), "nope", 0, 8, 2015, 0, 0, 0, true, []string{in}); err == nil {
		t.Error("unknown codec accepted in exchange mode")
	}
	if err := runExchange(context.Background(), "dnax", 0, 8, 2015, 0, 0, 0, true, []string{writeTemp(t, "n.txt", []byte("123"))}); err == nil {
		t.Error("no-ACGT input accepted in exchange mode")
	}
	// A retry budget of zero against a certain first-attempt fault fails.
	if err := runExchange(context.Background(), "dnax", 1, 0, 2015, 0, 0, 0, true, []string{in}); err == nil {
		t.Error("always-failing store with no retries reported success")
	}
}

// TestExchangeModeFleet: -fleet routes the exchange through a replicated
// shard fleet; per-shard transient faults fail over instead of failing the
// loop, in both single-frame and block mode.
func TestExchangeModeFleet(t *testing.T) {
	p := synth.Profile{Length: 3000, GC: 0.5, RepeatProb: 0.002, RepeatMin: 20, RepeatMax: 100}
	in := writeTemp(t, "seq.txt", p.GenerateASCII(32))
	if err := runExchange(context.Background(), "dnax", 0, 8, 2015, 0, 5, 3, true, []string{in}); err != nil {
		t.Fatalf("clean fleet exchange: %v", err)
	}
	if err := runExchange(context.Background(), "dnax", 0.2, 8, 2015, 0, 5, 3, true, []string{in}); err != nil {
		t.Fatalf("faulty fleet exchange at 20%%: %v", err)
	}
	if err := runExchange(context.Background(), "dnax", 0.2, 8, 2015, 512, 5, 3, true, []string{in}); err != nil {
		t.Fatalf("faulty fleet block exchange at 20%%: %v", err)
	}
}

// TestValidateFleetFlags: fleet knobs outside their domain fail fast.
func TestValidateFleetFlags(t *testing.T) {
	for _, tc := range []struct {
		rate        float64
		fleet, repl int
		ok          bool
	}{
		{0, 0, 0, true}, {0, 5, 0, true}, {0, 5, 3, true}, {0.5, 5, 3, true},
		{0, -1, 0, false}, // negative shard count
		{0, 5, -1, false}, // negative replication
		{0, 0, 3, false},  // replication without a fleet
		{0, 3, 5, false},  // more replicas than shards
		{1, 5, 3, false},  // certain per-shard failure: every op would exhaust retries
		{1, 0, 0, true},   // rate 1 stays legal for the single FaultyStore path
	} {
		err := validateFlags(tc.rate, 8, 0, "", false, tc.fleet, tc.repl)
		if (err == nil) != tc.ok {
			t.Errorf("validateFlags(rate=%v, fleet=%d, repl=%d) = %v, want ok=%v",
				tc.rate, tc.fleet, tc.repl, err, tc.ok)
		}
	}
}

// TestObservabilityExports: compressing, decompressing and exchanging feed
// the default registry, and exportObservability writes well-formed metrics
// and trace snapshots from it.
func TestObservabilityExports(t *testing.T) {
	dir := t.TempDir()
	p := synth.Profile{Length: 2000, GC: 0.5}
	in := writeTemp(t, "seq.txt", p.GenerateASCII(41))
	packed := filepath.Join(dir, "seq.dnax")
	restored := filepath.Join(dir, "seq.out")
	if err := run("dnax", false, packed, true, 0, "", []string{in}); err != nil {
		t.Fatal(err)
	}
	if err := run("", true, restored, true, 0, "", []string{packed}); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(obs.System())
	ctx := obs.WithTracer(context.Background(), tracer)
	if err := runExchange(ctx, "dnax", 0, 8, 2015, 0, 0, 0, true, []string{in}); err != nil {
		t.Fatal(err)
	}

	metrics := filepath.Join(dir, "metrics.prom")
	trace := filepath.Join(dir, "trace.json")
	if err := exportObservability(metrics, trace, tracer); err != nil {
		t.Fatal(err)
	}
	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dna_codec_calls_total{codec="dnax",op="compress"}`,
		`dna_codec_calls_total{codec="dnax",op="decompress"}`,
		"dna_exchange_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	found := false
	for _, s := range doc.Spans {
		if s.Name == "cloud.exchange" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace missing cloud.exchange span: %+v", doc.Spans)
	}
	// Exporting nothing is a no-op, not an error.
	if err := exportObservability("", "", nil); err != nil {
		t.Fatal(err)
	}
}
