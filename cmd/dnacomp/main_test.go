package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/seq"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTripRawText(t *testing.T) {
	p := synth.Profile{Length: 5000, GC: 0.45, RepeatProb: 0.002, RepeatMin: 20, RepeatMax: 200}
	ascii := p.GenerateASCII(1)
	in := writeTemp(t, "seq.txt", ascii)
	packed := filepath.Join(t.TempDir(), "seq.dnax")
	if err := run("dnax", false, packed, true, []string{in}); err != nil {
		t.Fatal(err)
	}
	restored := filepath.Join(t.TempDir(), "restored.txt")
	if err := run("", true, restored, true, []string{packed}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ascii) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripFASTA(t *testing.T) {
	p := synth.Profile{Length: 3000, GC: 0.4}
	codes := p.Generate(2)
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, []seq.Record{{Header: "test sequence", Seq: seq.Decode(codes)}}, 60); err != nil {
		t.Fatal(err)
	}
	in := writeTemp(t, "seq.fa", fasta.Bytes())
	packed := filepath.Join(t.TempDir(), "seq.ctw")
	if err := run("ctw", false, packed, true, []string{in}); err != nil {
		t.Fatal(err)
	}
	restored := filepath.Join(t.TempDir(), "restored.txt")
	if err := run("", true, restored, true, []string{packed}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seq.Decode(codes)) {
		t.Fatal("FASTA round trip mismatch")
	}
}

func TestEveryRegisteredCodecThroughCLI(t *testing.T) {
	p := synth.Profile{Length: 2000, GC: 0.5, RepeatProb: 0.003, RepeatMin: 20, RepeatMax: 100}
	ascii := p.GenerateASCII(3)
	in := writeTemp(t, "seq.txt", ascii)
	for _, name := range compress.Names() {
		packed := filepath.Join(t.TempDir(), "seq."+name)
		if err := run(name, false, packed, true, []string{in}); err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		restored := filepath.Join(t.TempDir(), "restored."+name)
		if err := run("", true, restored, true, []string{packed}); err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		got, err := os.ReadFile(restored)
		if err != nil || !bytes.Equal(got, ascii) {
			t.Fatalf("%s: round trip mismatch (%v)", name, err)
		}
	}
}

func TestContainerSelfDescribes(t *testing.T) {
	p := synth.Profile{Length: 1000, GC: 0.5}
	in := writeTemp(t, "seq.txt", p.GenerateASCII(4))
	packed := filepath.Join(t.TempDir(), "seq.bin")
	if err := run("gencompress", false, packed, true, []string{in}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(packed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(magic)) {
		t.Fatal("container missing magic")
	}
	if !bytes.Contains(data[:32], []byte("gencompress")) {
		t.Fatal("container missing codec name")
	}
}

func TestErrors(t *testing.T) {
	if err := run("nope", false, "", true, []string{writeTemp(t, "x.txt", []byte("ACGT"))}); err == nil || !strings.Contains(err.Error(), "unknown codec") {
		t.Errorf("unknown codec: err = %v", err)
	}
	if err := run("dnax", false, "", true, []string{writeTemp(t, "x.txt", []byte("12345"))}); err == nil {
		t.Error("no-ACGT input accepted")
	}
	if err := run("", true, "", true, []string{writeTemp(t, "x.bin", []byte("garbage"))}); err == nil {
		t.Error("garbage container accepted")
	}
	if err := run("dnax", false, "", true, []string{filepath.Join(t.TempDir(), "missing.txt")}); err == nil {
		t.Error("missing input accepted")
	}
	truncated := append([]byte(magic), []byte("dnax")...) // no newline terminator
	if err := run("", true, "", true, []string{writeTemp(t, "t.bin", truncated)}); err == nil {
		t.Error("truncated header accepted")
	}
}
