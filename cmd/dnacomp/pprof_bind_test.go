package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	binOnce  sync.Once
	binPath  string
	binBuild error
)

// buildCLI compiles dnacomp once per test binary for process-level
// exit-status assertions.
func buildCLI(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dnacomp")
		if err != nil {
			binBuild = err
			return
		}
		binPath = filepath.Join(dir, "dnacomp")
		if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
			binBuild = err
			t.Logf("go build: %s", out)
		}
	})
	if binBuild != nil {
		t.Fatalf("building dnacomp: %v", binBuild)
	}
	return binPath
}

// TestPprofBadAddrExitsStatus2 is the bugfix-sweep regression: an
// unbindable -pprof address must fail the process with a usage error
// (exit 2) before any work runs, not launch the pipeline and report the
// bind failure asynchronously from a goroutine.
func TestPprofBadAddrExitsStatus2(t *testing.T) {
	bin := buildCLI(t)
	cmd := exec.Command(bin, "-codec", "twobit", "-q", "-pprof", "256.256.256.256:99999")
	cmd.Stdin = strings.NewReader("ACGTACGTACGT")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v (stdout %d bytes)", err, stdout.Len())
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit status %d, want 2\nstderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Error("compression ran despite the unbindable -pprof address")
	}
	if !strings.Contains(stderr.String(), "debug server") {
		t.Errorf("stderr does not name the debug server failure: %s", stderr.String())
	}
}

// TestPprofGoodAddrStillWorks: a bindable address must not break the
// normal pipeline.
func TestPprofGoodAddrStillWorks(t *testing.T) {
	bin := buildCLI(t)
	cmd := exec.Command(bin, "-codec", "twobit", "-q", "-pprof", "127.0.0.1:0")
	cmd.Stdin = strings.NewReader("ACGTACGTACGT")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("run with -pprof 127.0.0.1:0: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("no container on stdout")
	}
}
