// Command dnacompd is the compression-as-a-service daemon: a long-running
// HTTP server that applies the paper's context-aware codec selection per
// request.
//
//	dnacompd -addr 127.0.0.1:8080 -model rules.json
//
// POST /compress takes FASTA or raw ACGT text plus the caller's declared
// exchange context as query parameters (ram_mb, cpu_mhz, bw_mbps,
// file_kb) and answers with a sealed armored frame compressed with the
// codec the trained decision tree picks for that context; ?codec= forces
// one, ?block_size= produces a seekable CXB1 container, and ?name= also
// retains the container server-side. POST /decompress restores any
// armored stream; GET /decompress?name=...&off=...&len=... range-reads a
// stored container, decoding only the overlapping blocks. /metrics,
// /debug/vars and /debug/pprof expose the daemon's observability.
//
// Without -model the daemon trains the same compact fallback model
// `ctxselect` uses (a synthetic corpus over the paper's four codecs),
// which takes a moment at startup; pass a model persisted with
// `ctxselect -save-model` for instant starts and answers identical to the
// offline CLI.
//
// Admission control is explicit: a bounded queue and a fixed worker pool
// (-workers, -queue), per-codec concurrency and backlog limits
// (-per-codec), and 429 + Retry-After when the queue or a codec is
// saturated. SIGTERM/SIGINT starts a graceful drain: /healthz turns 503,
// in-flight requests finish, then the process exits.
//
// With -fleet-shards N the named-container store moves onto a replicated
// shard fleet (cloud.Fleet): stored containers survive shard loss, a
// partial outage answers 503 + Retry-After only when the quorum is truly
// lost, and /metrics grows the dna_fleet_* health series.
//
//	dnacompd -model rules.json -fleet-shards 5 -fleet-replication 3
//
// Requests are traceable end to end: an inbound W3C Traceparent header
// (or ?trace=1) starts a per-request trace whose spans cross serve ->
// codec -> fleet replica under one trace ID; ?trace=1 returns the span
// tree inline and -trace <file> appends one JSON line per traced
// request. -recorder N sizes the flight recorder behind /debug/requests
// (last N requests with codec/shard/breaker attribution; 0 = 256,
// negative disables), /debug/slo serves latency and availability burn
// rates with a verdict, and -obs-selftest runs the whole plane against
// an in-process daemon and exits 0 only if trace continuity, recorder
// attribution and the SLO verdict all check out (the `make obs-trace`
// gate).
//
// The built-in deterministic load generator drives a daemon and prints a
// JSON report with full outcome accounting, latency percentiles, and an
// SLO verdict; its requests are tagged origin=loadgen and carry seeded
// traceparents so they stay distinguishable from organic traffic:
//
//	dnacompd -model rules.json -loadgen self -requests 64 -conc 8
//	dnacompd -loadgen http://127.0.0.1:8080 -requests 256 -conc 16 -seed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/serve"

	_ "github.com/srl-nuces/ctxdna/internal/compress/biocompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnacompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnapack"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
	_ "github.com/srl-nuces/ctxdna/internal/compress/xm"
)

func main() { os.Exit(realMain()) }

// realMain carries the whole CLI so tests and main share one exit-code
// contract: 0 ok, 1 runtime failure, 2 flag/bind errors.
func realMain() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address for the daemon")
		modelPath    = flag.String("model", "", "selection model JSON from `ctxselect -save-model` (default: train the compact fallback model at startup)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "admission queue depth (0 = 4x workers); a full queue answers 429")
		perCodec     = flag.Int("per-codec", 0, "max workers running the same codec at once (0 = no extra limit)")
		maxBody      = flag.Int64("max-body", 0, "request body cap in bytes (0 = 64 MiB)")
		maxStored    = flag.Int("max-stored", 0, "named-container store cap (0 = 256)")
		retryAfter   = flag.Int("retry-after", 0, "Retry-After seconds on backpressure responses (0 = 1)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on SIGTERM")

		fleetShards      = flag.Int("fleet-shards", 0, "back the named-container store with a replicated shard fleet of this size (0 = in-process map)")
		fleetReplication = flag.Int("fleet-replication", 0, "replicas per stored container in -fleet-shards mode (0 = min(3, shards))")
		fleetFaultRate   = flag.Float64("fleet-fault-rate", 0, "per-shard transient fault rate in [0,1) for -fleet-shards mode")
		fleetSeed        = flag.Uint64("fleet-seed", 2015, "seed for fleet placement and per-shard fault schedules")

		tracePath   = flag.String("trace", "", "append one JSON line per traced request (trace ID, endpoint, span tree) to this file")
		recorder    = flag.Int("recorder", 0, "flight-recorder capacity behind /debug/requests (0 = 256, negative disables)")
		obsSelftest = flag.Bool("obs-selftest", false, "boot an in-process daemon and verify trace continuity server->fleet, recorder attribution and the SLO verdict; exit 0/1")

		loadgen  = flag.String("loadgen", "", "run the deterministic load generator instead of serving: a daemon URL, or \"self\" to drive an in-process daemon")
		requests = flag.Int("requests", 64, "load units to issue in -loadgen mode")
		conc     = flag.Int("conc", 8, "concurrent load workers in -loadgen mode")
		seed     = flag.Int64("seed", 2015, "seed deriving the -loadgen request plan")
		minBases = flag.Int("min-bases", 512, "minimum generated sequence length in -loadgen mode")
		maxBases = flag.Int("max-bases", 8192, "maximum generated sequence length in -loadgen mode")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "dnacompd: -addr must not be empty")
		flag.Usage()
		return 2
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dnacompd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		return 2
	}

	if *obsSelftest {
		return runObsSelftest()
	}

	// A pure-URL loadgen run needs no engine of its own.
	if *loadgen != "" && *loadgen != "self" {
		return runLoadgen(*loadgen, *requests, *conc, *seed, *minBases, *maxBases, nil)
	}

	fleet, err := buildFleet(*fleetShards, *fleetReplication, *fleetFaultRate, *fleetSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnacompd:", err)
		flag.Usage()
		return 2
	}
	engine, err := loadEngine(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnacompd:", err)
		return 1
	}
	var traceSink *os.File
	if *tracePath != "" {
		traceSink, err = os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnacompd: -trace:", err)
			return 2
		}
		defer traceSink.Close()
	}
	srv, err := serve.NewServer(serve.Config{
		Engine:            engine,
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		PerCodec:          *perCodec,
		MaxBodyBytes:      *maxBody,
		MaxStored:         *maxStored,
		RetryAfterSeconds: *retryAfter,
		FleetStore:        fleet,
		RecorderSize:      *recorder,
		TraceSink:         sinkOrNil(traceSink),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnacompd:", err)
		return 1
	}

	// The listener binds synchronously: a bad -addr is a usage error the
	// process reports before claiming to serve, not an async log line.
	bindAddr := *addr
	if *loadgen == "self" {
		bindAddr = "127.0.0.1:0"
	}
	ds, err := obs.NewDebugServer(bindAddr, srv.Handler())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnacompd: bind:", err)
		return 2
	}
	serveErr := make(chan error, 1)
	//lint:ignore goroutinebound the HTTP accept loop runs for the process lifetime; shutdown joins it through the serveErr channel
	go func() { serveErr <- ds.Serve() }()

	if *loadgen == "self" {
		code := runLoadgen(ds.URL(), *requests, *conc, *seed, *minBases, *maxBases, nil)
		shutdown(srv, ds, serveErr, *drainTimeout)
		return code
	}

	// Install the signal handler before announcing readiness: a SIGTERM
	// that lands right after the banner must start a graceful drain, not
	// hit the runtime's default handler and kill the process mid-request.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "dnacompd: serving on %s (workers=%d queue=%d)\n", ds.Addr(), cfgWorkers(*workers), cfgQueue(*workers, *queueDepth))
	select {
	case err := <-serveErr:
		// The listener died underneath us (port stolen, fd limit, ...).
		fmt.Fprintln(os.Stderr, "dnacompd: serve:", err)
		srv.BeginDrain()
		srv.Close()
		return 1
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "dnacompd: signal received, draining")
		shutdown(srv, ds, serveErr, *drainTimeout)
		fmt.Fprintln(os.Stderr, "dnacompd: drained, bye")
		return 0
	}
}

// shutdown runs the graceful-exit sequence whose ordering the serve
// package requires: refuse new work, drain the HTTP layer (in-flight
// handlers finish and their queued jobs complete), then stop the workers.
func shutdown(srv *serve.Server, ds *obs.DebugServer, serveErr <-chan error, grace time.Duration) {
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := ds.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dnacompd: shutdown:", err)
	}
	<-serveErr
	srv.Close()
}

// buildFleet constructs the replicated store backing the named-container
// store in -fleet-shards mode. It returns a nil interface when fleet mode
// is off, so serve.Config.FleetStore stays unset (a typed-nil interface
// would read as "fleet configured"). The fleet shares the default metrics
// registry, so /metrics exposes the dna_fleet_* series alongside the
// daemon's own.
func buildFleet(shards, replication int, faultRate float64, seed uint64) (cloud.Store, error) {
	if shards <= 0 {
		if replication > 0 || faultRate > 0 {
			return nil, fmt.Errorf("-fleet-replication and -fleet-fault-rate need -fleet-shards > 0")
		}
		return nil, nil
	}
	if faultRate < 0 || faultRate >= 1 {
		return nil, fmt.Errorf("-fleet-fault-rate %v: want a rate in [0, 1)", faultRate)
	}
	f, err := cloud.NewFleet(cloud.FleetConfig{
		Shards:      cloud.DefaultShardSpecs(shards, faultRate, seed),
		Replication: replication,
		Seed:        seed,
		Registry:    obs.Default(),
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// loadEngine loads the persisted model, or trains the ctxselect-parity
// fallback when none is given.
func loadEngine(path string) (*core.InferenceEngine, error) {
	if path != "" {
		return serve.LoadModel(path)
	}
	fmt.Fprintln(os.Stderr, "dnacompd: no -model given; training the compact fallback model (pass -model for instant starts)")
	return serve.TrainDefaultEngine()
}

// runLoadgen drives target with the seed-derived plan and prints the JSON
// accounting report. Exit 1 means the run itself surfaced failures —
// hard request errors or round-trip mismatches; 429 backpressure is
// expected behavior under overload and does not fail the run.
func runLoadgen(target string, requests, conc int, seed int64, minBases, maxBases int, reg *obs.Registry) int {
	rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		BaseURL:     target,
		Units:       requests,
		Concurrency: conc,
		Seed:        seed,
		MinBases:    minBases,
		MaxBases:    maxBases,
		Registry:    reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnacompd: loadgen:", err)
		return 1
	}
	out, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		fmt.Fprintln(os.Stderr, "dnacompd: loadgen:", merr)
		return 1
	}
	fmt.Println(string(out))
	if rep.Failed > 0 || rep.Mismatches > 0 {
		fmt.Fprintf(os.Stderr, "dnacompd: loadgen: %d failed, %d mismatched\n", rep.Failed, rep.Mismatches)
		return 1
	}
	return 0
}

// sinkOrNil keeps serve.Config.TraceSink a true nil interface when no
// -trace file was opened (a typed-nil *os.File would read as "sink
// configured" and trace every request).
func sinkOrNil(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}

// cfgWorkers / cfgQueue echo the effective sizing the serve package will
// resolve, for the startup banner only.
func cfgWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

func cfgQueue(w, q int) int {
	if q > 0 {
		return q
	}
	return 4 * cfgWorkers(w)
}
