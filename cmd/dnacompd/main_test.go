package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/serve"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// buildDaemon compiles dnacompd once per test binary.
func buildDaemon(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dnacompd")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "dnacompd")
		cmd := exec.Command("go", "build", "-o", binPath, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("%v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building dnacompd: %v", buildErr)
	}
	return binPath
}

var (
	modelOnce sync.Once
	modelFile string
	modelErr  error
)

// testModel trains and persists one small model for every daemon test, so
// the binary starts instantly instead of training its fallback.
func testModel(t *testing.T) string {
	t.Helper()
	modelOnce.Do(func() {
		eng, err := serve.TrainEngine(
			synth.CorpusSpec{NumFiles: 6, MinSize: 2 << 10, MaxSize: 16 << 10, Seed: 7},
			"cart",
			[]string{"gzip", "twobit"},
		)
		if err != nil {
			modelErr = err
			return
		}
		dir, err := os.MkdirTemp("", "dnacompd-model")
		if err != nil {
			modelErr = err
			return
		}
		modelFile = filepath.Join(dir, "model.json")
		modelErr = serve.SaveModel(modelFile, eng)
	})
	if modelErr != nil {
		t.Fatalf("training test model: %v", modelErr)
	}
	return modelFile
}

// TestBadAddrExitsStatus2 is the bugfix-sweep contract for the daemon
// itself: an unbindable address must fail the process with exit status 2
// before it claims to serve, not surface asynchronously from a goroutine.
func TestBadAddrExitsStatus2(t *testing.T) {
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-addr", "256.256.256.256:99999", "-model", testModel(t))
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit status %d, want 2\n%s", code, out)
	}
	if !strings.Contains(string(out), "bind") {
		t.Errorf("stderr does not mention the bind failure: %s", out)
	}
}

// TestUsageErrorsExitStatus2: flag misuse is a usage error too.
func TestUsageErrorsExitStatus2(t *testing.T) {
	bin := buildDaemon(t)
	for _, args := range [][]string{
		{"-addr", ""},
		{"unexpected-positional"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("%v: want exit 2, got %v\n%s", args, err, out)
		}
	}
}

// startDaemon launches the binary on an ephemeral port and returns its
// base URL by parsing the startup banner.
func startDaemon(t *testing.T, extraArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-model", testModel(t)}, extraArgs...)
	cmd := exec.Command(buildDaemon(t), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	lineCh := make(chan string, 16)
	go func() {
		for sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	for {
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatal("daemon exited before announcing its address")
			}
			if strings.Contains(line, "serving on ") {
				addr := strings.Fields(strings.SplitAfter(line, "serving on ")[1])[0]
				// Keep draining stderr so the child never blocks on a full pipe.
				go func() {
					for range lineCh {
					}
				}()
				return cmd, "http://" + addr
			}
		case <-deadline:
			t.Fatal("daemon did not announce its address in time")
		}
	}
}

// TestDaemonEndToEndAndGracefulDrain boots the real binary, round-trips a
// sequence through it, then SIGTERMs it and expects a clean exit 0.
func TestDaemonEndToEndAndGracefulDrain(t *testing.T) {
	cmd, base := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	input := synth.Profile{Length: 4000, GC: 0.4, RepeatProb: 0.002, RepeatMin: 16, RepeatMax: 64}.GenerateASCII(11)
	resp, err = http.Post(base+"/compress?ram_mb=2048&cpu_mhz=2100&bw_mbps=5", "application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: HTTP %d: %s", resp.StatusCode, frame)
	}
	if resp.Header.Get("X-Dnacomp-Codec") == "" {
		t.Error("no codec header on compress response")
	}

	resp, err = http.Post(base+"/decompress", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	restored, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(restored, input) {
		t.Fatalf("round trip through the daemon failed: HTTP %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
	}
}

// TestFleetModeFlagsValidated: fleet flags that cannot build a fleet are
// usage errors (exit 2), reported before the daemon claims to serve.
func TestFleetModeFlagsValidated(t *testing.T) {
	bin := buildDaemon(t)
	for _, args := range [][]string{
		{"-fleet-fault-rate", "0.2"},                       // fault rate without shards
		{"-fleet-replication", "3"},                        // replication without shards
		{"-fleet-shards", "4", "-fleet-fault-rate", "1.5"}, // rate outside [0,1)
	} {
		out, err := exec.Command(bin, append(args, "-model", testModel(t))...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("%v: want exit 2, got %v\n%s", args, err, out)
		}
	}
}

// TestFleetModeEndToEnd boots the real binary with a replicated fleet
// behind the named-container store, round-trips a stored container, and
// checks /metrics exposes the dna_fleet_* health series.
func TestFleetModeEndToEnd(t *testing.T) {
	cmd, base := startDaemon(t, "-fleet-shards", "5", "-fleet-replication", "3")

	input := synth.Profile{Length: 3000, GC: 0.45, RepeatProb: 0.002, RepeatMin: 16, RepeatMax: 64}.GenerateASCII(13)
	resp, err := http.Post(base+"/compress?codec=twobit&name=fleetseq", "application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress into fleet store: HTTP %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/decompress?name=fleetseq")
	if err != nil {
		t.Fatal(err)
	}
	restored, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(restored, input) {
		t.Fatalf("fleet-stored round trip failed: HTTP %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"dna_fleet_ops_total", "dna_fleet_shard_state", "dna_fleet_quorum_ms"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s in fleet mode", want)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("fleet-mode daemon exited uncleanly after SIGTERM: %v", err)
	}
}

// TestLoadgenSelfMode: the one-command smoke the Makefile serve gate runs —
// an in-process daemon driven by the deterministic harness, reporting
// complete accounting as JSON on stdout.
func TestLoadgenSelfMode(t *testing.T) {
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-model", testModel(t), "-loadgen", "self", "-requests", "12", "-conc", "3", "-seed", "5", "-min-bases", "256", "-max-bases", "1024")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("loadgen self: %v\nstderr: %s", err, stderr.String())
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
	if rep.Units != 12 {
		t.Errorf("units = %d, want 12", rep.Units)
	}
	if rep.Completed+rep.Rejected+rep.Failed != rep.Calls {
		t.Fatalf("accounting broken: %+v", rep)
	}
	if rep.Failed != 0 || rep.Mismatches != 0 {
		t.Fatalf("loadgen reported failures: %+v (%v)", rep, rep.Errors)
	}
}
