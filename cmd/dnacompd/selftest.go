package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/serve"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// runObsSelftest is the `make obs-trace` gate: boot a real daemon (fleet-
// backed store, seeded trace IDs) in-process, drive one traced compress
// through it, and verify the observability plane end to end — the caller's
// trace ID survives serve -> codec -> fleet replica, the flight recorder
// replays the request's codec/shard/breaker attribution, and /debug/slo
// folds the run into a non-empty verdict. Exit 0 on success, 1 with a
// reason on the first broken link.
func runObsSelftest() int {
	if err := obsSelftest(); err != nil {
		fmt.Fprintln(os.Stderr, "dnacompd: obs-selftest:", err)
		return 1
	}
	fmt.Println("dnacompd: obs-selftest: ok (trace continuity, recorder attribution, SLO verdict)")
	return 0
}

func obsSelftest() error {
	// A compact trained model keeps the gate fast while still exercising
	// real selection; the fleet gives the trace a replica hop to cross.
	engine, err := serve.TrainEngine(
		synth.CorpusSpec{NumFiles: 6, MinSize: 2 << 10, MaxSize: 16 << 10, Seed: 7},
		"cart",
		[]string{"gzip", "twobit"},
	)
	if err != nil {
		return fmt.Errorf("training model: %w", err)
	}
	fleet, err := cloud.NewFleet(cloud.FleetConfig{
		Shards:      cloud.DefaultShardSpecs(4, 0, 5),
		Replication: 2,
		Seed:        42,
		Registry:    obs.NewRegistry(),
	})
	if err != nil {
		return fmt.Errorf("building fleet: %w", err)
	}
	srv, err := serve.NewServer(serve.Config{
		Engine:     engine,
		FleetStore: fleet,
		Registry:   obs.NewRegistry(),
		IDs:        obs.NewSeededIDSource(2015),
	})
	if err != nil {
		return err
	}
	ds, err := obs.NewDebugServer("127.0.0.1:0", srv.Handler())
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ds.Serve() }()
	defer func() {
		srv.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ds.Shutdown(sctx)
		<-serveErr
		srv.Close()
	}()

	const callerTrace = "0af7651916cd43dd8448eb211c80319c"
	const callerSpan = "b7ad6b7169203331"
	body := bytes.Repeat([]byte("ACGTTACGGATCC"), 512)
	req, err := http.NewRequest(http.MethodPost, ds.URL()+"/compress?name=selftest&trace=1", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Traceparent", obs.FormatTraceparent(callerTrace, callerSpan))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("compress: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}

	var env struct {
		Status  int             `json:"status"`
		TraceID string          `json:"trace_id"`
		Trace   []*obs.SpanTree `json:"trace"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("decoding trace envelope: %w", err)
	}
	if env.TraceID != callerTrace {
		return fmt.Errorf("trace ID %q did not survive propagation (sent %q)", env.TraceID, callerTrace)
	}
	if len(env.Trace) != 1 || env.Trace[0].Name != "serve.compress" {
		return fmt.Errorf("expected a single serve.compress root, got %d roots", len(env.Trace))
	}
	root := env.Trace[0]
	if root.ParentSpanID != callerSpan {
		return fmt.Errorf("root span parented on %q, want the caller's %q", root.ParentSpanID, callerSpan)
	}
	broken := ""
	hasCodec := false
	root.Walk(func(n *obs.SpanTree) {
		if n.TraceID != callerTrace && broken == "" {
			broken = n.Name
		}
		if strings.HasPrefix(n.Name, "codec.") {
			hasCodec = true
		}
	})
	if broken != "" {
		return fmt.Errorf("span %q broke out of trace %s", broken, callerTrace)
	}
	if !hasCodec {
		return fmt.Errorf("no codec span in the trace")
	}
	if root.Find("fleet.replica.put") == nil {
		return fmt.Errorf("trace never reached a fleet replica (no fleet.replica.put span)")
	}

	var recDoc struct {
		Requests []obs.RequestRecord `json:"requests"`
	}
	if err := getJSON(ds.URL()+"/debug/requests", &recDoc); err != nil {
		return err
	}
	var rec *obs.RequestRecord
	for i := range recDoc.Requests {
		if recDoc.Requests[i].StoreName == "selftest" {
			rec = &recDoc.Requests[i]
		}
	}
	switch {
	case rec == nil:
		return fmt.Errorf("/debug/requests has no record for the stored container")
	case rec.TraceID != callerTrace:
		return fmt.Errorf("recorder trace ID %q, want %q", rec.TraceID, callerTrace)
	case rec.Codec == "" || rec.CodecSource == "":
		return fmt.Errorf("recorder lacks codec attribution: %+v", rec)
	case len(rec.Shards) != 2:
		return fmt.Errorf("recorder shard set %v, want 2 replicas", rec.Shards)
	case len(rec.Breakers) != 4:
		return fmt.Errorf("recorder breaker map %v, want all 4 shards", rec.Breakers)
	}

	var sloDoc struct {
		Verdict    string          `json:"verdict"`
		Objectives []obs.SLOStatus `json:"objectives"`
	}
	if err := getJSON(ds.URL()+"/debug/slo", &sloDoc); err != nil {
		return err
	}
	if sloDoc.Verdict == "" {
		return fmt.Errorf("/debug/slo verdict is empty")
	}
	if len(sloDoc.Objectives) == 0 {
		return fmt.Errorf("/debug/slo reports no objectives")
	}
	return nil
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("%s: decoding: %w", url, err)
	}
	return nil
}
