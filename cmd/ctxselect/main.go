// Command ctxselect is the paper's inference engine as a CLI: given a
// context (file size, RAM, CPU, bandwidth) it consults rules induced from an
// experiment grid and answers "which algorithm should be used?".
//
//	ctxselect -grid grid.csv -file-kb 30 -ram-mb 2048 -cpu-mhz 2000 -bw 2
//	ctxselect -grid grid.csv -rules                  # print the full rule list
//	ctxselect -grid grid.csv -save-model rules.json  # persist the trained model
//	ctxselect -model rules.json -file-kb 30          # select without retraining
//
// Without -grid or -model it trains on a freshly generated compact grid
// (slower start, no files needed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

func main() {
	var (
		gridPath  = flag.String("grid", "", "grid CSV from cmd/experiment (default: generate a compact grid)")
		method    = flag.String("method", "cart", "induction method: cart or chaid (paper prefers CART)")
		fileKB    = flag.Float64("file-kb", 100, "file size in KB")
		ramMB     = flag.Float64("ram-mb", 3584, "client RAM in MB")
		cpuMHz    = flag.Float64("cpu-mhz", 2400, "client CPU in MHz")
		bwMbps    = flag.Float64("bw", 10, "client bandwidth in Mbps")
		showRules = flag.Bool("rules", false, "print the induced rule list and exit")
		showAcc   = flag.Bool("accuracy", false, "report held-out accuracy of the rules")
		saveModel = flag.String("save-model", "", "write the trained model as JSON and exit")
		modelPath = flag.String("model", "", "load a saved model instead of training")
	)
	flag.Parse()
	if err := run(runOpts{
		gridPath: *gridPath, method: *method,
		fileKB: *fileKB, ramMB: *ramMB, cpuMHz: *cpuMHz, bwMbps: *bwMbps,
		showRules: *showRules, showAcc: *showAcc,
		saveModel: *saveModel, modelPath: *modelPath,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ctxselect:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	gridPath, method              string
	fileKB, ramMB, cpuMHz, bwMbps float64
	showRules, showAcc            bool
	saveModel, modelPath          string
}

func run(o runOpts) error {
	var tree *dtree.Tree
	if o.modelPath != "" {
		data, err := os.ReadFile(o.modelPath)
		if err != nil {
			return err
		}
		tree = &dtree.Tree{}
		if err := json.Unmarshal(data, tree); err != nil {
			return err
		}
	} else {
		g, err := loadGrid(o.gridPath)
		if err != nil {
			return err
		}
		train, test := g.Split()
		var acc float64
		tree, acc, err = experiment.TrainEval(train, test, o.method, core.TimeOnlyWeights(), dtree.Config{})
		if err != nil {
			return err
		}
		if o.showAcc {
			fmt.Printf("held-out accuracy (%s, time labels): %.4f\n", o.method, acc)
		}
	}
	engine, err := core.NewInferenceEngine(tree)
	if err != nil {
		return err
	}
	if o.saveModel != "" {
		data, err := json.MarshalIndent(tree, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.saveModel, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("model written to %s\n", o.saveModel)
		return nil
	}
	if o.showRules {
		fmt.Print(tree.String())
		return nil
	}
	ctx := core.Context{FileSizeKB: o.fileKB, RAMMB: o.ramMB, CPUMHz: o.cpuMHz, BandwidthMbps: o.bwMbps}
	fmt.Printf("context: file=%.0fKB ram=%.0fMB cpu=%.0fMHz bw=%.0fMbps\n", o.fileKB, o.ramMB, o.cpuMHz, o.bwMbps)
	fmt.Printf("selected codec: %s\n", engine.SelectCodec(ctx))
	return nil
}

func loadGrid(path string) (*experiment.Grid, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return experiment.ReadCSV(f)
	}
	fmt.Fprintln(os.Stderr, "ctxselect: no -grid given; generating a compact training grid...")
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 32, MinSize: 2 << 10, MaxSize: 256 << 10, Seed: 2015})
	return experiment.Run(files, cloud.Grid(), []string{"ctw", "dnax", "gencompress", "gzip"}, experiment.DefaultNoise())
}
