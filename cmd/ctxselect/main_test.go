package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func writeGrid(t *testing.T) string {
	t.Helper()
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 16, MinSize: 2 << 10, MaxSize: 128 << 10, Seed: 5})
	g, err := experiment.Run(files, cloud.Grid(), []string{"ctw", "dnax", "gencompress", "gzip"}, experiment.DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "grid.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func silence(t *testing.T) func() {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	return func() { os.Stdout = old; devnull.Close() }
}

func TestSelectFromGrid(t *testing.T) {
	defer silence(t)()
	grid := writeGrid(t)
	for _, method := range []string{"cart", "chaid"} {
		if err := run(runOpts{gridPath: grid, method: method, fileKB: 100, ramMB: 2048, cpuMHz: 2000, bwMbps: 2, showAcc: true}); err != nil {
			t.Errorf("%s: %v", method, err)
		}
	}
}

func TestShowRules(t *testing.T) {
	defer silence(t)()
	grid := writeGrid(t)
	if err := run(runOpts{gridPath: grid, method: "cart", fileKB: 10, ramMB: 1024, cpuMHz: 1600, bwMbps: 2, showRules: true}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	defer silence(t)()
	grid := writeGrid(t)
	if err := run(runOpts{gridPath: grid, method: "nonsense", fileKB: 10, ramMB: 1024, cpuMHz: 1600, bwMbps: 2}); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(runOpts{gridPath: filepath.Join(t.TempDir(), "nope.csv"), method: "cart", fileKB: 10, ramMB: 1024, cpuMHz: 1600, bwMbps: 2}); err == nil {
		t.Error("missing grid accepted")
	}
	if err := run(runOpts{modelPath: filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Error("missing model accepted")
	}
}

func TestSaveAndLoadModel(t *testing.T) {
	defer silence(t)()
	grid := writeGrid(t)
	model := filepath.Join(t.TempDir(), "rules.json")
	if err := run(runOpts{gridPath: grid, method: "cart", saveModel: model}); err != nil {
		t.Fatal(err)
	}
	// Select using the persisted model, no grid needed.
	if err := run(runOpts{modelPath: model, fileKB: 150, ramMB: 3584, cpuMHz: 2400, bwMbps: 10}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the model: loading must fail.
	if err := os.WriteFile(model, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(runOpts{modelPath: model, fileKB: 150}); err == nil {
		t.Fatal("corrupt model accepted")
	}
}
