// Command figures regenerates every table and figure of the paper's
// evaluation from a grid CSV produced by cmd/experiment:
//
//	figures -grid grid.csv -fig 2     # upload time per codec (Figure 2)
//	figures -grid grid.csv -fig 9     # CHAID time validation (Figure 9)
//	figures -grid grid.csv -table 2   # the accuracy sweep (Table 2)
//	figures -grid grid.csv -all       # everything
//
// Output is textual: per-codec summary tables plus coarse ASCII series —
// enough to read off who wins, by what factor, and where the crossovers sit.
//
// When the grid CSV does not exist yet, figures builds it in-process with
// the parallel experiment pipeline (-jobs workers, content-hash result
// cache) and persists it to the -grid path, so `figures -all` is a
// one-command pipeline on a fresh checkout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/stats"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

// genSpec configures the in-process grid build used when -grid is missing.
type genSpec struct {
	files, minKB, maxKB int
	seed                int64
}

func main() {
	var (
		gridPath = flag.String("grid", "grid.csv", "grid CSV from cmd/experiment (generated here when missing)")
		fig      = flag.Int("fig", 0, "figure number to regenerate (2-6, 8-16)")
		table    = flag.Int("table", 0, "table number to regenerate (1 or 2)")
		all      = flag.Bool("all", false, "regenerate everything")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel workers when generating a missing grid")
		genFiles = flag.Int("gen-files", 48, "corpus files when generating a missing grid")
		genMin   = flag.Int("gen-min-kb", 2, "smallest generated file in KB")
		genMax   = flag.Int("gen-max-kb", 256, "largest generated file in KB")
		genSeed  = flag.Int64("gen-seed", 2015, "corpus seed when generating a missing grid")
	)
	flag.Parse()
	gen := genSpec{files: *genFiles, minKB: *genMin, maxKB: *genMax, seed: *genSeed}
	if err := run(*gridPath, *fig, *table, *all, *jobs, gen); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(gridPath string, fig, table int, all bool, jobs int, gen genSpec) error {
	g, err := loadGrid(gridPath, jobs, gen)
	if err != nil {
		return err
	}
	g.SortRowsBySize()

	if all {
		for _, n := range []int{2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15, 16} {
			if err := renderFigure(g, n); err != nil {
				return err
			}
		}
		return renderTable(g, 2)
	}
	if fig > 0 {
		return renderFigure(g, fig)
	}
	if table > 0 {
		return renderTable(g, table)
	}
	return fmt.Errorf("pass -fig N, -table N or -all")
}

// loadGrid reads the grid CSV, or — when the file does not exist — builds
// the grid in-process with the parallel pipeline and persists it for reuse.
func loadGrid(gridPath string, jobs int, gen genSpec) (*experiment.Grid, error) {
	f, err := os.Open(gridPath)
	if err == nil {
		defer f.Close()
		return experiment.ReadCSV(f)
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "figures: %s missing, generating %d files (%d..%d KB, seed %d, jobs=%d)\n",
		gridPath, gen.files, gen.minKB, gen.maxKB, gen.seed, jobs)
	files := synth.ExperimentCorpus(synth.CorpusSpec{
		NumFiles: gen.files, MinSize: gen.minKB << 10, MaxSize: gen.maxKB << 10, Seed: gen.seed,
	})
	codecs := []string{"ctw", "dnax", "gencompress", "gzip"}
	cache := compress.NewCache()
	g, err := experiment.RunParallelCached(context.Background(), files, cloud.Grid(), codecs, experiment.DefaultNoise(), jobs, cache)
	if err != nil {
		return nil, err
	}
	out, err := os.Create(gridPath)
	if err != nil {
		return nil, err
	}
	defer out.Close()
	if err := g.WriteCSV(out); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "figures: wrote %s for reuse\n", gridPath)
	return g, nil
}

func renderFigure(g *experiment.Grid, n int) error {
	switch n {
	case 2:
		summarizeByCodec(g, "Figure 2 — upload time (ms)", func(m core.Measurement) float64 { return m.UploadMS })
	case 3:
		summarizeByCodec(g, "Figure 3 — RAM used (MB)", func(m core.Measurement) float64 { return float64(m.RAMBytes) / (1 << 20) })
	case 4:
		summarizeByCodec(g, "Figure 4 — compressed size (bits/base)", func(m core.Measurement) float64 {
			return 0 // replaced below; ratio needs bases
		})
		ratioTable(g)
	case 5:
		summarizeByCodec(g, "Figure 5 — compression time (ms)", func(m core.Measurement) float64 { return m.CompressMS })
	case 6:
		summarizeByCodec(g, "Figure 6 — download time (ms)", func(m core.Measurement) float64 { return m.DownloadMS })
	case 8:
		fig8(g)
	case 9, 10:
		return validation(g, experiment.MethodCHAID, core.TimeOnlyWeights(), "Figures 9/10 — CHAID, time labels", n == 10)
	case 11, 12:
		return validation(g, experiment.MethodCART, core.TimeOnlyWeights(), "Figures 11/12 — CART, time labels", n == 12)
	case 13, 14:
		return validation(g, experiment.MethodCHAID, core.RAMOnlyWeights(), "Figures 13/14 — CHAID, RAM labels", n == 14)
	case 15, 16:
		return validation(g, experiment.MethodCART, core.RAMOnlyWeights(), "Figures 15/16 — CART, RAM labels", n == 16)
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	return nil
}

// summarizeByCodec prints mean/median/min/max of a per-measurement metric,
// split by bandwidth class to expose the context dependence.
func summarizeByCodec(g *experiment.Grid, title string, value func(core.Measurement) float64) {
	if strings.Contains(title, "bits/base") {
		return // handled by ratioTable
	}
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "codec", "mean", "median", "min", "max")
	for ci, codec := range g.Codecs {
		var vals []float64
		for _, row := range g.Rows {
			vals = append(vals, value(row.Measurements[ci]))
		}
		sort.Float64s(vals)
		fmt.Printf("%-12s %10.1f %10.1f %10.1f %10.1f\n",
			codec, stats.Mean(vals), stats.Median(vals), vals[0], vals[len(vals)-1])
	}
}

func ratioTable(g *experiment.Grid) {
	title := "Figure 4 — compressed size (bits/base, context-invariant)"
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Printf("%-12s %10s\n", "codec", "mean bpb")
	for ci, codec := range g.Codecs {
		seen := map[string]bool{}
		var sum float64
		var n int
		for _, row := range g.Rows {
			if seen[row.FileName] {
				continue
			}
			seen[row.FileName] = true
			sum += float64(row.Measurements[ci].CompressedBytes*8) / float64(row.FileBases)
			n++
		}
		fmt.Printf("%-12s %10.3f\n", codec, sum/float64(n))
	}
}

func fig8(g *experiment.Grid) {
	title := "Figure 8 — file size vs row id (sorted)"
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	s := g.FigFileSizeByRow()
	step := len(s.Y) / 16
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(s.Y); i += step {
		kb := s.Y[i] / 1024
		bar := int(kb / 8)
		if bar > 64 {
			bar = 64
		}
		fmt.Printf("row %5d %8.0f KB %s\n", i, kb, strings.Repeat("#", bar))
	}
}

func validation(g *experiment.Grid, method string, w core.Weights, title string, analysis bool) error {
	train, test := g.Split()
	v, err := experiment.Validate(train, test, method, w, dtree.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Printf("Accuracy = Cases Matched/TotalCases = %.4f (%d test rows)\n", v.Accuracy, len(v.Rows))
	below, total := v.GapsBelow(50)
	fmt.Printf("gaps (mismatches): %d total, %d below 50 KB\n", total, below)
	if analysis {
		series := v.AnalysisSeries(88)
		fmt.Println("first 88 rows, normalized context + result (+ matched / - mismatched):")
		for i := 0; i < len(series[0].Y); i += 4 {
			mark := "+"
			if series[3].Y[i] < 0 {
				mark = "-"
			}
			fmt.Printf("row %3d  cpu %.2f  ram %.2f  file %.2f  %s\n",
				i, series[0].Y[i], series[1].Y[i], series[2].Y[i], mark)
		}
		return nil
	}
	// Figure 9-style: matched rows keep the label, mismatches show a gap.
	fmt.Println("validation trace (.=match, X=gap), rows in size order:")
	var sb strings.Builder
	for i := range v.Match {
		if v.Match[i] {
			sb.WriteByte('.')
		} else {
			sb.WriteByte('X')
		}
		if (i+1)%96 == 0 {
			sb.WriteByte('\n')
		}
	}
	fmt.Println(sb.String())
	return nil
}

func renderTable(g *experiment.Grid, n int) error {
	switch n {
	case 1:
		fmt.Println(table1)
		return nil
	case 2:
		train, test := g.Split()
		rows, err := experiment.Table2(train, test, dtree.Config{})
		if err != nil {
			return err
		}
		title := "Table 2 — Accuracy of generated Rules"
		fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
		fmt.Printf("%-6s %-9s %-16s %-16s %-12s %8s\n", "Method", "Weight", "Var1", "Var2", "Var3", "Accuracy")
		for _, r := range rows {
			fmt.Printf("%-6s %-9s %-16s %-16s %-12s %8.2f\n",
				r.Method, r.Weight, r.Var1, r.Var2, r.Var3, 100*r.Accuracy)
		}
		return nil
	default:
		return fmt.Errorf("unknown table %d", n)
	}
}

// table1 is descriptive: the algorithm taxonomy of the paper's Table 1 with
// the rows this repository implements marked.
const table1 = `
Table 1 — Algorithms: encoding techniques and methodology
----------------------------------------------------------
BioCompress[2]* exact + reverse-complement repeats; Fibonacci-coded
                descriptors; order-2 arithmetic literals
                -> internal/compress/biocompress
Cfact           two-pass suffix-tree repeats, LZ descriptors (not implemented)
GenCompress*    approximate repeats via edit distance (GenCompress-1 Hamming /
                GenCompress-2 edit); order-2 arithmetic escape
                -> internal/compress/gencompress
DNACompress*    PatternHunter spaced-seed approximate repeats
                -> internal/compress/dnacompress (seeds in internal/match)
DNAC            four-phase suffix-tree + Fibonacci (not implemented)
DNAPack*        dynamic-programming parse + Hamming repeats + order-2
                literals -> internal/compress/dnapack (2-bit baseline ->
                internal/compress/twobit)
CTW(+LZ)*       context-tree weighting over the base bitstream
                -> internal/compress/ctw
DNAX*           exact + reverse-complement repeats, block fingerprints,
                order-2 arithmetic literals -> internal/compress/dnax
XM*             expert-model statistics (Markov + copy experts, Bayesian
                averaging) -> internal/compress/xm
Gzip*           LZ77 + Huffman over ASCII (managed GZipStream emulation)
                -> internal/compress/gzipx
(* = implemented and part of the experiment grid or extensions)`
