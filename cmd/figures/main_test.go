package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// testGen is a tiny generation spec for tests that hit the missing-grid path.
var testGen = genSpec{files: 3, minKB: 2, maxKB: 4, seed: 3}

// writeGrid builds a compact grid CSV for CLI tests.
func writeGrid(t *testing.T) string {
	t.Helper()
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 12, MinSize: 2 << 10, MaxSize: 64 << 10, Seed: 3})
	g, err := experiment.Run(files, cloud.Grid(), []string{"ctw", "dnax", "gencompress", "gzip"}, experiment.DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "grid.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderEveryFigure(t *testing.T) {
	grid := writeGrid(t)
	// Silence stdout during rendering.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	for _, fig := range []int{2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15, 16} {
		if err := run(grid, fig, 0, false, 1, testGen); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
	for _, table := range []int{1, 2} {
		if err := run(grid, 0, table, false, 1, testGen); err != nil {
			t.Errorf("table %d: %v", table, err)
		}
	}
	if err := run(grid, 0, 0, true, 1, testGen); err != nil {
		t.Errorf("-all: %v", err)
	}
}

func TestRenderErrors(t *testing.T) {
	grid := writeGrid(t)
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run(grid, 99, 0, false, 1, testGen); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(grid, 0, 9, false, 1, testGen); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run(grid, 0, 0, false, 1, testGen); err == nil {
		t.Error("no selection accepted")
	}
	// A missing grid in an unwritable location cannot be generated-and-saved.
	if err := run(filepath.Join(t.TempDir(), "no", "such", "dir", "missing.csv"), 2, 0, false, 1, testGen); err == nil {
		t.Error("unwritable grid path accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	os.WriteFile(bad, []byte("not,a,grid\n1,2,3\n"), 0o644)
	if err := run(bad, 2, 0, false, 1, testGen); err == nil {
		t.Error("malformed grid accepted")
	}
}

// TestGenerateMissingGrid: with no CSV on disk, figures builds the grid
// in-process through the parallel pipeline, persists it, and renders.
func TestGenerateMissingGrid(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	gridPath := filepath.Join(t.TempDir(), "fresh.csv")
	if err := run(gridPath, 2, 0, false, 2, testGen); err != nil {
		t.Fatalf("generate+render: %v", err)
	}
	f, err := os.Open(gridPath)
	if err != nil {
		t.Fatalf("generated grid not persisted: %v", err)
	}
	defer f.Close()
	g, err := experiment.ReadCSV(f)
	if err != nil {
		t.Fatalf("persisted grid unreadable: %v", err)
	}
	if len(g.Files) != testGen.files || len(g.Contexts) != len(cloud.Grid()) {
		t.Fatalf("generated grid shape: %d files, %d contexts", len(g.Files), len(g.Contexts))
	}
	// Second invocation must read the persisted CSV, not regenerate.
	if err := run(gridPath, 0, 2, false, 1, genSpec{}); err != nil {
		t.Fatalf("re-render from persisted grid: %v", err)
	}
}
