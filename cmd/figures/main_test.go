package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// writeGrid builds a compact grid CSV for CLI tests.
func writeGrid(t *testing.T) string {
	t.Helper()
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 12, MinSize: 2 << 10, MaxSize: 64 << 10, Seed: 3})
	g, err := experiment.Run(files, cloud.Grid(), []string{"ctw", "dnax", "gencompress", "gzip"}, experiment.DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "grid.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderEveryFigure(t *testing.T) {
	grid := writeGrid(t)
	// Silence stdout during rendering.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	for _, fig := range []int{2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15, 16} {
		if err := run(grid, fig, 0, false); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
	for _, table := range []int{1, 2} {
		if err := run(grid, 0, table, false); err != nil {
			t.Errorf("table %d: %v", table, err)
		}
	}
	if err := run(grid, 0, 0, true); err != nil {
		t.Errorf("-all: %v", err)
	}
}

func TestRenderErrors(t *testing.T) {
	grid := writeGrid(t)
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run(grid, 99, 0, false); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(grid, 0, 9, false); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run(grid, 0, 0, false); err == nil {
		t.Error("no selection accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.csv"), 2, 0, false); err == nil {
		t.Error("missing grid accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	os.WriteFile(bad, []byte("not,a,grid\n1,2,3\n"), 0o644)
	if err := run(bad, 2, 0, false); err == nil {
		t.Error("malformed grid accepted")
	}
}
