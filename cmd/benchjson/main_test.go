package main

import (
	"flag"
	"testing"
	"time"
)

// TestRunSmall runs the full suite on a tiny input so the snapshot
// machinery is exercised in normal test runs without benchmark-scale time.
// The benchtime flag is dialed down to a fixed iteration count: this test
// checks the snapshot shape, not the numbers.
func TestRunSmall(t *testing.T) {
	if f := flag.Lookup("test.benchtime"); f != nil {
		old := f.Value.String()
		if err := f.Value.Set("5x"); err != nil {
			t.Fatal(err)
		}
		defer f.Value.Set(old)
	}
	doc, err := run("dnax", 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "ctxdna-bench/v1" || doc.Codec != "dnax" {
		t.Fatalf("bad doc header: %+v", doc)
	}
	want := []string{
		"block_compress/jobs=1", "block_compress/jobs=2", "block_compress/jobs=4", "block_compress/jobs=8",
		"whole_slice_compress", "block_decompress", "block_seek_512",
	}
	if len(doc.Records) != len(want) {
		t.Fatalf("%d records, want %d: %+v", len(doc.Records), len(want), doc.Records)
	}
	for i, rec := range doc.Records {
		if rec.Name != want[i] {
			t.Errorf("record %d is %q, want %q", i, rec.Name, want[i])
		}
		if rec.N <= 0 || rec.NsPerOp <= 0 {
			t.Errorf("%s: empty measurement %+v", rec.Name, rec)
		}
	}
}

// TestRunFleetSmall runs the fleet-exchange suite on a tiny input: every
// fleet shape must round-trip (the degraded step included) and land one
// record, again shape-checked rather than timed.
func TestRunFleetSmall(t *testing.T) {
	if f := flag.Lookup("test.benchtime"); f != nil {
		old := f.Value.String()
		if err := f.Value.Set("2x"); err != nil {
			t.Fatal(err)
		}
		defer f.Value.Set(old)
	}
	doc, err := runFleet(2048, 512, 2015)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Suite != "fleet-exchange" {
		t.Fatalf("bad doc header: %+v", doc)
	}
	want := []string{
		"fleet_exchange/shards=4,repl=2",
		"fleet_exchange/shards=8,repl=3",
		"fleet_exchange/shards=16,repl=3",
		"fleet_exchange/shards=8,repl=3,degraded",
	}
	if len(doc.Records) != len(want) {
		t.Fatalf("%d records, want %d: %+v", len(doc.Records), len(want), doc.Records)
	}
	for i, rec := range doc.Records {
		if rec.Name != want[i] {
			t.Errorf("record %d is %q, want %q", i, rec.Name, want[i])
		}
		if rec.N <= 0 || rec.NsPerOp <= 0 {
			t.Errorf("%s: empty measurement %+v", rec.Name, rec)
		}
	}
}

// TestRecordThroughput: MB/s is derived from processed bytes per op.
func TestRecordThroughput(t *testing.T) {
	r := testing.BenchmarkResult{N: 10, T: time.Second}
	rec := record("x", 1_000_000, r)
	if rec.MBPerS < 9.99 || rec.MBPerS > 10.01 {
		t.Fatalf("MBPerS = %v, want ~10", rec.MBPerS)
	}
	if rec = record("y", 0, r); rec.MBPerS != 0 {
		t.Fatalf("no-bytes record got MBPerS %v", rec.MBPerS)
	}
}
