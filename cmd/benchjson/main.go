// Command benchjson runs a pinned benchmark suite and writes a
// machine-readable BENCH_<n>.json snapshot, so every PR records its
// performance trajectory as data instead of prose:
//
//	go run ./cmd/benchjson -o BENCH_6.json
//	go run ./cmd/benchjson -suite server -o BENCH_8.json
//
// The default block-engine suite is the same sweep as
// BenchmarkBlockCompressJobs / BenchmarkBlockSeek in the repo benchmarks:
// block compression at jobs 1/2/4/8 on a 1 MB corpus-profile sequence in
// 64 KB blocks, the whole-slice baseline, the full-container decode, and
// a 512-base seek.
//
// The server suite boots an in-process dnacompd daemon (internal/serve)
// and sweeps the deterministic load generator across client concurrency
// 1/4/8/16, recording sustained throughput and end-to-end latency
// percentiles per step. Every request's outcome is accounted — completed,
// rejected (429 backpressure) or failed — and a failed or mismatched run
// fails the snapshot. Absolute numbers are hardware-dependent; the
// recorded shapes (jobs scaling, seek vs full decode, latency vs
// concurrency) are the comparison targets across PRs.
//
// The fleet suite sweeps the block exchange loop across replicated shard
// fleets (shards x replication), each shard carrying a seeded transient
// fault schedule, plus one degraded step with a replica shard killed
// outright — measuring what replication, quorum writes and failover reads
// cost on top of the single-store exchange.
//
// The obs suite prices the observability plane: the same load plan with
// tracing and the flight recorder fully off versus fully on, recording the
// mean-latency overhead percentage (target: under 5%).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/serve"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
)

// Record is one benchmark result row. The latency/outcome fields are
// filled by the server suite only.
type Record struct {
	Name     string  `json:"name"`
	N        int     `json:"n"`
	NsPerOp  float64 `json:"ns_per_op"`
	MBPerS   float64 `json:"mb_per_s,omitempty"`
	BytesOp  int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`

	P50MS     float64 `json:"p50_ms,omitempty"`
	P90MS     float64 `json:"p90_ms,omitempty"`
	P99MS     float64 `json:"p99_ms,omitempty"`
	MaxMS     float64 `json:"max_ms,omitempty"`
	Completed int     `json:"completed,omitempty"`
	Rejected  int     `json:"rejected,omitempty"`

	// OverheadPct is filled by the obs suite: mean-latency cost of full
	// observability (tracing + flight recorder) over the stripped baseline.
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// Doc is the snapshot file layout.
type Doc struct {
	Schema     string   `json:"schema"`
	Suite      string   `json:"suite"`
	Go         string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Codec      string   `json:"codec,omitempty"`
	Bases      int      `json:"bases,omitempty"`
	BlockSize  int      `json:"block_size,omitempty"`
	Records    []Record `json:"records"`
}

func record(name string, processed int, r testing.BenchmarkResult) Record {
	rec := Record{
		Name:     name,
		N:        r.N,
		NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
		BytesOp:  r.AllocedBytesPerOp(),
		AllocsOp: r.AllocsPerOp(),
	}
	if processed > 0 && r.T > 0 {
		rec.MBPerS = float64(processed) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return rec
}

func run(codecName string, bases, blockSize int) (Doc, error) {
	doc := Doc{
		Schema:     "ctxdna-bench/v1",
		Suite:      "block-engine",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Codec:      codecName,
		Bases:      bases,
		BlockSize:  blockSize,
	}
	p := synth.Profile{Length: bases, GC: 0.42, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400}
	src := p.Generate(61)

	// Determinism gate before timing anything: every jobs setting must emit
	// the same container bytes, or the sweep compares different work.
	base, _, err := compress.BlockCompress(codecName, src, compress.BlockOptions{BlockSize: blockSize})
	if err != nil {
		return doc, err
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		opts := compress.BlockOptions{BlockSize: blockSize, Jobs: jobs}
		container, _, err := compress.BlockCompress(codecName, src, opts)
		if err != nil {
			return doc, err
		}
		if string(container) != string(base) {
			return doc, fmt.Errorf("jobs=%d produced a different container", jobs)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := compress.BlockCompress(codecName, src, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		doc.Records = append(doc.Records, record(fmt.Sprintf("block_compress/jobs=%d", jobs), bases, r))
	}

	// Whole-slice baseline: the single-frame path block mode sits beside.
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := compress.New(codecName)
			if err != nil {
				b.Fatal(err)
			}
			payload, _, err := c.Compress(src)
			if err != nil {
				b.Fatal(err)
			}
			compress.Seal(codecName, src, payload)
		}
	})
	doc.Records = append(doc.Records, record("whole_slice_compress", bases, r))

	rd, err := compress.OpenBlocks(base, compress.Limits{})
	if err != nil {
		return doc, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := rd.Decompress(); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Records = append(doc.Records, record("block_decompress", bases, r))

	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			off := (i * 37 * 512) % (bases - 512)
			if _, _, err := rd.Slice(off, 512); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Records = append(doc.Records, record("block_seek_512", 512, r))
	return doc, nil
}

// runServer boots an in-process daemon and sweeps the deterministic load
// generator across client concurrencies, recording sustained throughput
// (MB of sequence data through /compress per wall second) and latency
// percentiles per step.
func runServer(units int, seed int64) (Doc, error) {
	doc := Doc{
		Schema:     "ctxdna-bench/v1",
		Suite:      "server-throughput",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	// The same compact training corpus ctxselect's fallback uses, shrunk to
	// keep snapshot generation fast: selection still runs through a real
	// trained tree, which is what the suite is measuring the cost of.
	engine, err := serve.TrainEngine(
		synth.CorpusSpec{NumFiles: 8, MinSize: 2 << 10, MaxSize: 32 << 10, Seed: 2015},
		"cart",
		[]string{"dnax", "gzip", "twobit"},
	)
	if err != nil {
		return doc, fmt.Errorf("training selection model: %w", err)
	}
	srv, err := serve.NewServer(serve.Config{Engine: engine, Registry: obs.NewRegistry()})
	if err != nil {
		return doc, err
	}
	ds, err := obs.NewDebugServer("127.0.0.1:0", srv.Handler())
	if err != nil {
		return doc, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ds.Serve() }()

	for _, conc := range []int{1, 4, 8, 16} {
		t0 := time.Now()
		rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
			BaseURL:     ds.URL(),
			Units:       units,
			Concurrency: conc,
			Seed:        seed,
			Registry:    obs.NewRegistry(),
		})
		elapsed := time.Since(t0)
		if err != nil {
			return doc, fmt.Errorf("conc=%d: %w", conc, err)
		}
		if rep.Failed > 0 || rep.Mismatches > 0 {
			return doc, fmt.Errorf("conc=%d: %d failed, %d mismatched: %v", conc, rep.Failed, rep.Mismatches, rep.Errors)
		}
		rec := Record{
			Name:      fmt.Sprintf("server_load/conc=%d", conc),
			N:         rep.Calls,
			NsPerOp:   rep.Latency.MeanMS * 1e6,
			P50MS:     rep.Latency.P50MS,
			P90MS:     rep.Latency.P90MS,
			P99MS:     rep.Latency.P99MS,
			MaxMS:     rep.Latency.MaxMS,
			Completed: rep.Completed,
			Rejected:  rep.Rejected,
		}
		if elapsed > 0 {
			rec.MBPerS = float64(rep.InputBases) / 1e6 / elapsed.Seconds()
		}
		doc.Records = append(doc.Records, rec)
	}

	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ds.Shutdown(sctx); err != nil {
		return doc, err
	}
	if err := <-serveErr; err != nil {
		return doc, err
	}
	srv.Close()
	return doc, nil
}

// runObs measures what the observability plane costs: the same load plan
// driven twice through otherwise-identical daemons — once stripped (flight
// recorder disabled, no trace headers) and once fully observed (recorder
// on, every call carrying a seed-derived traceparent the server joins) —
// at client concurrency 8. The observed record's OverheadPct is the
// mean-latency delta over the baseline; the target is under 5%, recorded
// as data rather than enforced (wall-clock latency on shared CI hardware
// is too noisy for a hard gate).
func runObs(units int, seed int64) (Doc, error) {
	doc := Doc{
		Schema:     "ctxdna-bench/v1",
		Suite:      "obs-overhead",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	engine, err := serve.TrainEngine(
		synth.CorpusSpec{NumFiles: 8, MinSize: 2 << 10, MaxSize: 32 << 10, Seed: 2015},
		"cart",
		[]string{"dnax", "gzip", "twobit"},
	)
	if err != nil {
		return doc, fmt.Errorf("training selection model: %w", err)
	}

	step := func(name string, observed bool) (Record, error) {
		cfg := serve.Config{Engine: engine, Registry: obs.NewRegistry()}
		if observed {
			cfg.IDs = obs.NewSeededIDSource(uint64(seed))
		} else {
			cfg.RecorderSize = -1
		}
		srv, err := serve.NewServer(cfg)
		if err != nil {
			return Record{}, err
		}
		ds, err := obs.NewDebugServer("127.0.0.1:0", srv.Handler())
		if err != nil {
			return Record{}, err
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- ds.Serve() }()

		t0 := time.Now()
		rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
			BaseURL:     ds.URL(),
			Units:       units,
			Concurrency: 8,
			Seed:        seed,
			Registry:    obs.NewRegistry(),
			NoTrace:     !observed,
		})
		elapsed := time.Since(t0)

		srv.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := ds.Shutdown(sctx); serr != nil && err == nil {
			err = serr
		}
		if serr := <-serveErr; serr != nil && err == nil {
			err = serr
		}
		srv.Close()
		if err != nil {
			return Record{}, fmt.Errorf("%s: %w", name, err)
		}
		if rep.Failed > 0 || rep.Mismatches > 0 {
			return Record{}, fmt.Errorf("%s: %d failed, %d mismatched: %v", name, rep.Failed, rep.Mismatches, rep.Errors)
		}
		rec := Record{
			Name:      name,
			N:         rep.Calls,
			NsPerOp:   rep.Latency.MeanMS * 1e6,
			P50MS:     rep.Latency.P50MS,
			P90MS:     rep.Latency.P90MS,
			P99MS:     rep.Latency.P99MS,
			MaxMS:     rep.Latency.MaxMS,
			Completed: rep.Completed,
			Rejected:  rep.Rejected,
		}
		if elapsed > 0 {
			rec.MBPerS = float64(rep.InputBases) / 1e6 / elapsed.Seconds()
		}
		return rec, nil
	}

	base, err := step("server_load/conc=8,obs=off", false)
	if err != nil {
		return doc, err
	}
	full, err := step("server_load/conc=8,obs=on", true)
	if err != nil {
		return doc, err
	}
	if base.NsPerOp > 0 {
		full.OverheadPct = (full.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
	}
	doc.Records = append(doc.Records, base, full)
	return doc, nil
}

// runFleet sweeps the block exchange loop across shard-fleet shapes. Each
// step builds a fresh fleet (per-shard seeded transient faults at rate 0.1)
// and exchanges the same sequence through it; the degraded step also kills
// one replica of the blob outright, so the loop pays breaker fast-fails and
// failover reads. A lost round trip fails the snapshot — the suite times
// fault tolerance, it does not tolerate data loss.
func runFleet(bases, blockSize int, seed uint64) (Doc, error) {
	doc := Doc{
		Schema:     "ctxdna-bench/v1",
		Suite:      "fleet-exchange",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Codec:      "dnax",
		Bases:      bases,
		BlockSize:  blockSize,
	}
	p := synth.Profile{Length: bases, GC: 0.42, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400}
	src := p.Generate(61)
	client := cloud.Grid()[0]

	steps := []struct {
		shards, repl int
		degraded     bool
	}{
		{4, 2, false},
		{8, 3, false},
		{16, 3, false},
		{8, 3, true},
	}
	for _, step := range steps {
		newFleet := func() (*cloud.Fleet, error) {
			f, err := cloud.NewFleet(cloud.FleetConfig{
				Shards:      cloud.DefaultShardSpecs(step.shards, 0.1, seed),
				Replication: step.repl,
				Seed:        seed,
				Registry:    obs.NewRegistry(),
			})
			if err != nil {
				return nil, err
			}
			if step.degraded {
				f.Kill(f.Replicas("exchange", "bench.cxb1")[0])
			}
			return f, nil
		}
		exchange := func(f *cloud.Fleet) error {
			_, err := cloud.ExchangeBlocks(context.Background(), client, f, "dnax", src, cloud.BlockExchangeOptions{
				ExchangeOptions: cloud.ExchangeOptions{Blob: "bench", Cleanup: true},
				Block:           compress.BlockOptions{BlockSize: blockSize},
			})
			return err
		}
		// Correctness gate before timing: the exchange must round-trip on
		// this fleet shape, degraded or not.
		f, err := newFleet()
		if err != nil {
			return doc, err
		}
		if err := exchange(f); err != nil {
			return doc, fmt.Errorf("shards=%d repl=%d degraded=%v: %w", step.shards, step.repl, step.degraded, err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f, err := newFleet() // fresh breaker/version state per iteration
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := exchange(f); err != nil {
					b.Fatal(err)
				}
			}
		})
		name := fmt.Sprintf("fleet_exchange/shards=%d,repl=%d", step.shards, step.repl)
		if step.degraded {
			name += ",degraded"
		}
		doc.Records = append(doc.Records, record(name, bases, r))
	}
	return doc, nil
}

func main() {
	var (
		out       = flag.String("o", "", "output path (default stdout)")
		suite     = flag.String("suite", "block-engine", "suite to run: block-engine, server, fleet or obs")
		codecName = flag.String("codec", "dnax", "codec to benchmark (block-engine suite)")
		bases     = flag.Int("bases", 1<<20, "sequence length in bases (block-engine suite)")
		blockSize = flag.Int("block-size", 64<<10, "block size in bases (block-engine suite)")
		units     = flag.Int("requests", 96, "load units per concurrency step (server suite)")
		seed      = flag.Int64("seed", 2015, "request-plan seed (server suite)")
	)
	flag.Parse()
	var (
		doc Doc
		err error
	)
	switch *suite {
	case "block-engine":
		doc, err = run(*codecName, *bases, *blockSize)
	case "server":
		doc, err = runServer(*units, *seed)
	case "fleet":
		doc, err = runFleet(256<<10, *blockSize, uint64(*seed))
	case "obs":
		doc, err = runObs(*units, *seed)
	default:
		err = fmt.Errorf("unknown -suite %q: want block-engine, server, fleet or obs", *suite)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
