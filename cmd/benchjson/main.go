// Command benchjson runs the pinned block-engine benchmark suite and
// writes a machine-readable BENCH_<n>.json snapshot, so every PR records
// its performance trajectory as data instead of prose:
//
//	go run ./cmd/benchjson -o BENCH_6.json
//
// The suite is the same sweep as BenchmarkBlockCompressJobs /
// BenchmarkBlockSeek in the repo benchmarks: block compression at jobs
// 1/2/4/8 on a 1 MB corpus-profile sequence in 64 KB blocks, the
// whole-slice baseline, the full-container decode, and a 512-base seek.
// Absolute numbers are hardware-dependent; the recorded shapes (jobs
// scaling, seek vs full decode) are the comparison targets across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
)

// Record is one benchmark result row.
type Record struct {
	Name     string  `json:"name"`
	N        int     `json:"n"`
	NsPerOp  float64 `json:"ns_per_op"`
	MBPerS   float64 `json:"mb_per_s,omitempty"`
	BytesOp  int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
}

// Doc is the snapshot file layout.
type Doc struct {
	Schema     string   `json:"schema"`
	Suite      string   `json:"suite"`
	Go         string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Codec      string   `json:"codec"`
	Bases      int      `json:"bases"`
	BlockSize  int      `json:"block_size"`
	Records    []Record `json:"records"`
}

func record(name string, processed int, r testing.BenchmarkResult) Record {
	rec := Record{
		Name:     name,
		N:        r.N,
		NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
		BytesOp:  r.AllocedBytesPerOp(),
		AllocsOp: r.AllocsPerOp(),
	}
	if processed > 0 && r.T > 0 {
		rec.MBPerS = float64(processed) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return rec
}

func run(codecName string, bases, blockSize int) (Doc, error) {
	doc := Doc{
		Schema:     "ctxdna-bench/v1",
		Suite:      "block-engine",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Codec:      codecName,
		Bases:      bases,
		BlockSize:  blockSize,
	}
	p := synth.Profile{Length: bases, GC: 0.42, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400}
	src := p.Generate(61)

	// Determinism gate before timing anything: every jobs setting must emit
	// the same container bytes, or the sweep compares different work.
	base, _, err := compress.BlockCompress(codecName, src, compress.BlockOptions{BlockSize: blockSize})
	if err != nil {
		return doc, err
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		opts := compress.BlockOptions{BlockSize: blockSize, Jobs: jobs}
		container, _, err := compress.BlockCompress(codecName, src, opts)
		if err != nil {
			return doc, err
		}
		if string(container) != string(base) {
			return doc, fmt.Errorf("jobs=%d produced a different container", jobs)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := compress.BlockCompress(codecName, src, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		doc.Records = append(doc.Records, record(fmt.Sprintf("block_compress/jobs=%d", jobs), bases, r))
	}

	// Whole-slice baseline: the single-frame path block mode sits beside.
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := compress.New(codecName)
			if err != nil {
				b.Fatal(err)
			}
			payload, _, err := c.Compress(src)
			if err != nil {
				b.Fatal(err)
			}
			compress.Seal(codecName, src, payload)
		}
	})
	doc.Records = append(doc.Records, record("whole_slice_compress", bases, r))

	rd, err := compress.OpenBlocks(base, compress.Limits{})
	if err != nil {
		return doc, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := rd.Decompress(); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Records = append(doc.Records, record("block_decompress", bases, r))

	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			off := (i * 37 * 512) % (bases - 512)
			if _, _, err := rd.Slice(off, 512); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Records = append(doc.Records, record("block_seek_512", 512, r))
	return doc, nil
}

func main() {
	var (
		out       = flag.String("o", "", "output path (default stdout)")
		codecName = flag.String("codec", "dnax", "codec to benchmark")
		bases     = flag.Int("bases", 1<<20, "sequence length in bases")
		blockSize = flag.Int("block-size", 64<<10, "block size in bases")
	)
	flag.Parse()
	doc, err := run(*codecName, *bases, *blockSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
