package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/experiment"
)

func TestRunWritesReadableGrid(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	if err := run(6, 2, 16, 7, out, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := experiment.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Files) != 6 || len(g.Contexts) != 32 || len(g.Codecs) != 4 {
		t.Fatalf("grid shape %d files %d contexts %d codecs", len(g.Files), len(g.Contexts), len(g.Codecs))
	}
	if len(g.Rows) != 6*32 {
		t.Fatalf("%d rows", len(g.Rows))
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run(2, 2, 4, 7, filepath.Join(t.TempDir(), "no", "such", "dir", "g.csv"), 2); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

// TestRunJobsDeterministic: the CLI produces byte-identical CSVs regardless
// of worker count.
func TestRunJobsDeterministic(t *testing.T) {
	dir := t.TempDir()
	seqOut := filepath.Join(dir, "seq.csv")
	parOut := filepath.Join(dir, "par.csv")
	if err := run(4, 2, 8, 9, seqOut, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(4, 2, 8, 9, parOut, 4); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(seqOut)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(parOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("jobs=1 and jobs=4 CSVs differ (%d vs %d bytes)", len(a), len(b))
	}
}
