package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/obs"
)

func TestRunWritesReadableGrid(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	if err := run(runConfig{nFiles: 6, minKB: 2, maxKB: 16, seed: 7, out: out, jobs: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := experiment.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Files) != 6 || len(g.Contexts) != 32 || len(g.Codecs) != 4 {
		t.Fatalf("grid shape %d files %d contexts %d codecs", len(g.Files), len(g.Contexts), len(g.Codecs))
	}
	if len(g.Rows) != 6*32 {
		t.Fatalf("%d rows", len(g.Rows))
	}
}

func TestRunBadOutputPath(t *testing.T) {
	out := filepath.Join(t.TempDir(), "no", "such", "dir", "g.csv")
	if err := run(runConfig{nFiles: 2, minKB: 2, maxKB: 4, seed: 7, out: out, jobs: 2}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

// TestRunJobsDeterministic: the CLI produces byte-identical CSVs regardless
// of worker count.
func TestRunJobsDeterministic(t *testing.T) {
	dir := t.TempDir()
	seqOut := filepath.Join(dir, "seq.csv")
	parOut := filepath.Join(dir, "par.csv")
	if err := run(runConfig{nFiles: 4, minKB: 2, maxKB: 8, seed: 9, out: seqOut, jobs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{nFiles: 4, minKB: 2, maxKB: 8, seed: 9, out: parOut, jobs: 4}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(seqOut)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(parOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("jobs=1 and jobs=4 CSVs differ (%d vs %d bytes)", len(a), len(b))
	}
}

// TestRunObservabilityExports: -metrics and -trace write well-formed
// snapshots covering codec, cache and grid series — and attaching them
// leaves the grid CSV byte-identical (the acceptance regression at the CLI
// level).
func TestRunObservabilityExports(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.csv")
	observed := filepath.Join(dir, "observed.csv")
	metrics := filepath.Join(dir, "metrics.prom")
	trace := filepath.Join(dir, "trace.json")

	if err := run(runConfig{nFiles: 4, minKB: 2, maxKB: 8, seed: 9, out: plain, jobs: 2}); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{
		nFiles: 4, minKB: 2, maxKB: 8, seed: 9, out: observed, jobs: 2,
		faultRate: 0.3, retries: 8,
		metricsOut: metrics, traceOut: trace,
	}); err != nil {
		t.Fatal(err)
	}

	a, _ := os.ReadFile(plain)
	b, _ := os.ReadFile(observed)
	if !bytes.Equal(a, b) {
		t.Fatal("grid CSV changed with -metrics/-trace enabled")
	}

	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	text := string(prom)
	for _, want := range []string{
		"# TYPE dna_codec_calls_total counter",
		`dna_codec_calls_total{codec="dnax",op="compress"}`,
		"dna_cache_misses_total",
		"dna_grid_tasks_done_total",
		"dna_grid_workers",
		"dna_exchange_total",
		"dna_exchange_attempts_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := make(map[string]int)
	for _, s := range doc.Spans {
		names[s.Name]++
	}
	for _, want := range []string{"experiment.corpus", "experiment.grid", "experiment.chaos", "cloud.exchange", "exchange.put", "exchange.get"} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}
}

// TestRunChaosExchange: with a 30 % fault rate and the default retry budget
// every corpus blob must round-trip (Exchange verifies bytes internally),
// and the grid CSV is unaffected by the chaos pass.
func TestRunChaosExchange(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.csv")
	chaos := filepath.Join(dir, "chaos.csv")
	if err := run(runConfig{nFiles: 4, minKB: 2, maxKB: 8, seed: 7, out: plain, jobs: 2}); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{nFiles: 4, minKB: 2, maxKB: 8, seed: 7, out: chaos, jobs: 2, faultRate: 0.3, retries: 8, partial: true}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(plain)
	b, _ := os.ReadFile(chaos)
	if !bytes.Equal(a, b) {
		t.Fatal("chaos exchange pass changed the measurement CSV")
	}
}
