// Command experiment runs the paper's full grid — corpus files × the
// 32-context cloud grid × the four compared codecs — and writes the raw
// measurement table as CSV for cmd/figures to render.
//
//	experiment -files 132 -max-kb 512 -out grid.csv
//
// The paper used 132 NCBI-derived files up to 10 MB; the synthetic corpus
// reproduces the size spread and repeat character (see internal/synth).
// -max-kb 10240 reproduces the full-scale run (slow: GenCompress's modeled
// target is a deliberately pathological research binary and its *actual*
// compute is superlinear too).
//
// -fault-rate > 0 follows the grid build with a chaos exchange pass: every
// corpus file's time-only winner is pushed through cloud.Exchange against a
// fault-injected BLOB store, proving the retry policy round-trips each blob
// byte-identically. -partial switches the grid build to graceful
// degradation (failed (file, codec) slots are reported, not fatal).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

// runConfig carries every CLI knob of the grid build.
type runConfig struct {
	nFiles       int
	minKB, maxKB int
	seed         int64
	out          string
	jobs         int
	partial      bool
	faultRate    float64
	retries      int
	metricsOut   string
	traceOut     string
	pprofAddr    string
	progress     bool
}

func main() {
	var cfg runConfig
	flag.IntVar(&cfg.nFiles, "files", 132, "number of corpus files (paper: 132)")
	flag.IntVar(&cfg.minKB, "min-kb", 1, "smallest file in KB")
	flag.IntVar(&cfg.maxKB, "max-kb", 256, "largest file in KB (paper cap: 10240)")
	flag.Int64Var(&cfg.seed, "seed", 2015, "corpus seed (also seeds faults and retry jitter)")
	flag.StringVar(&cfg.out, "out", "grid.csv", "output CSV path")
	flag.IntVar(&cfg.jobs, "jobs", runtime.GOMAXPROCS(0), "parallel compression workers (1 = sequential; results identical)")
	flag.BoolVar(&cfg.partial, "partial", false, "tolerate failed (file, codec) runs: report them and keep the surviving grid")
	flag.Float64Var(&cfg.faultRate, "fault-rate", 0, "transient-fault probability per storage op in the post-grid chaos exchange pass (0 disables the pass)")
	flag.IntVar(&cfg.retries, "retries", cloud.DefaultRetryPolicy().MaxRetries, "retry budget per storage op during the chaos exchange pass")
	flag.StringVar(&cfg.metricsOut, "metrics", "", "write a Prometheus text metrics snapshot to this file after the run (- for stdout)")
	flag.StringVar(&cfg.traceOut, "trace", "", "write the span trace as JSON to this file after the run")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run (e.g. localhost:6060)")
	flag.BoolVar(&cfg.progress, "progress", false, "render a live done/total + ETA progress line on stderr during the grid build")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		if errors.Is(err, errBind) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// errBind marks listener-bind failures, which are usage errors: main
// reports them with exit status 2 like any other bad flag value.
var errBind = errors.New("bind failed")

func run(cfg runConfig) error {
	// Dedicated registry per run: metric values reflect this invocation
	// alone, and the deterministic grid bytes are untouched either way.
	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	var tracer *obs.Tracer
	if cfg.traceOut != "" {
		tracer = obs.NewTracer(obs.System())
		ctx = obs.WithTracer(ctx, tracer)
	}
	if cfg.pprofAddr != "" {
		// The listener binds synchronously: an unbindable -pprof address
		// fails the run up front (exit 2 via errBind) instead of surfacing
		// asynchronously mid-grid.
		srv, err := obs.NewDebugServer(cfg.pprofAddr, obs.DebugHandler(reg))
		if err != nil {
			return fmt.Errorf("debug server %s: %v: %w", cfg.pprofAddr, err, errBind)
		}
		fmt.Fprintf(os.Stderr, "experiment: debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
		//lint:ignore goroutinebound debug server intentionally serves for the whole process lifetime; the kernel reclaims it at exit
		go srv.Serve()
	}

	spec := synth.CorpusSpec{NumFiles: cfg.nFiles, MinSize: cfg.minKB << 10, MaxSize: cfg.maxKB << 10, Seed: cfg.seed}
	fmt.Fprintf(os.Stderr, "experiment: generating %d files (%d KB .. %d KB, seed %d)\n", cfg.nFiles, cfg.minKB, cfg.maxKB, cfg.seed)
	_, corpusSpan := obs.Start(ctx, "experiment.corpus")
	files := synth.ExperimentCorpus(spec)
	corpusSpan.SetAttr("files", len(files))
	corpusSpan.End()

	codecs := []string{"ctw", "dnax", "gencompress", "gzip"}
	cache := compress.NewCacheObserved(reg)
	runCfg := experiment.RunConfig{Jobs: cfg.jobs, Cache: cache, Partial: cfg.partial, Metrics: reg}
	if cfg.progress {
		runCfg.Progress = experiment.ProgressReporter(os.Stderr, obs.System(), 500*time.Millisecond)
	}
	start := time.Now()
	gridCtx, gridSpan := obs.Start(ctx, "experiment.grid")
	g, failed, err := experiment.RunGrid(gridCtx, files, cloud.Grid(), codecs, experiment.DefaultNoise(), runCfg)
	if err != nil {
		gridSpan.End()
		return err
	}
	gridSpan.SetAttr("rows", len(g.Rows))
	gridSpan.SetAttr("failed_runs", len(failed))
	gridSpan.End()
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiment: degraded grid: %d failed runs dropped:\n", len(failed))
		for _, re := range failed {
			fmt.Fprintf(os.Stderr, "experiment:   %s on %s: %v\n", re.Codec, re.File, re.Err)
		}
	}
	hits, misses := cache.Counters()
	fmt.Fprintf(os.Stderr, "experiment: %d rows (%d files x %d contexts x %d codecs) in %s (jobs=%d, cache %d hits / %d misses)\n",
		len(g.Rows), len(g.Files), len(g.Contexts), len(g.Codecs), time.Since(start).Round(time.Millisecond), cfg.jobs, hits, misses)

	counts := g.LabelCounts(core.TimeOnlyWeights())
	fmt.Fprintf(os.Stderr, "experiment: time-only labels: ")
	for _, c := range codecs {
		fmt.Fprintf(os.Stderr, "%s=%d ", c, counts[c])
	}
	fmt.Fprintln(os.Stderr)

	if cfg.faultRate > 0 {
		chaosCtx, chaosSpan := obs.Start(ctx, "experiment.chaos")
		err := chaosExchange(chaosCtx, g, files, cfg)
		chaosSpan.End()
		if err != nil {
			return err
		}
	}

	f, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiment: wrote %s\n", cfg.out)

	if cfg.metricsOut != "" {
		if err := writeMetrics(cfg.metricsOut, reg); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if tracer != nil {
		if err := writeTrace(cfg.traceOut, tracer); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

// writeMetrics dumps the registry as Prometheus text to path ("-" means
// stdout).
func writeMetrics(path string, reg *obs.Registry) error {
	if path == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	return writeFileWith(path, reg.WritePrometheus)
}

// writeTrace dumps the tracer's finished spans as JSON to path.
func writeTrace(path string, tracer *obs.Tracer) error {
	return writeFileWith(path, tracer.WriteJSON)
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// chaosExchange round-trips every surviving file through a fault-injected
// BLOB store using its time-only winner codec at the grid's first context.
// Exchange verifies each round trip byte for byte; any failure under the
// retry budget is fatal. ctx carries the run's metrics registry (and
// tracer, when -trace is set) into every Exchange call.
func chaosExchange(ctx context.Context, g *experiment.Grid, files []synth.File, cfg runConfig) error {
	data := make(map[string][]byte, len(files))
	for _, f := range files {
		data[f.Name] = f.Data
	}
	client := g.Contexts[0]
	store := cloud.NewFaultyStore(cloud.NewBlobStore(), cloud.FaultConfig{Rate: cfg.faultRate, Seed: uint64(cfg.seed)})
	policy := cloud.DefaultRetryPolicy()
	policy.MaxRetries = cfg.retries
	policy.Seed = uint64(cfg.seed)

	labels := g.Labels(core.TimeOnlyWeights())
	attempts, retryWait := 0, 0.0
	for fi, fr := range g.Files {
		codec := labels[fi*len(g.Contexts)] // row of (file, first context)
		rep, err := cloud.Exchange(ctx, client, store, codec, data[fr.Name], cloud.ExchangeOptions{
			Blob:    fr.Name,
			Retry:   policy,
			Cleanup: true,
		})
		if err != nil {
			return fmt.Errorf("chaos exchange of %s via %s: %w", fr.Name, codec, err)
		}
		attempts += rep.AttemptCount()
		retryWait += rep.RetryWaitMS
	}
	ops, injected := store.Counters()
	fmt.Fprintf(os.Stderr, "experiment: chaos exchange: %d files round-tripped (fault rate %.0f%%, %d/%d ops faulted, %d attempts, %.0f ms modeled backoff)\n",
		len(g.Files), 100*cfg.faultRate, injected, ops, attempts, retryWait)
	return nil
}
