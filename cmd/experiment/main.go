// Command experiment runs the paper's full grid — corpus files × the
// 32-context cloud grid × the four compared codecs — and writes the raw
// measurement table as CSV for cmd/figures to render.
//
//	experiment -files 132 -max-kb 512 -out grid.csv
//
// The paper used 132 NCBI-derived files up to 10 MB; the synthetic corpus
// reproduces the size spread and repeat character (see internal/synth).
// -max-kb 10240 reproduces the full-scale run (slow: GenCompress's modeled
// target is a deliberately pathological research binary and its *actual*
// compute is superlinear too).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

func main() {
	var (
		nFiles = flag.Int("files", 132, "number of corpus files (paper: 132)")
		minKB  = flag.Int("min-kb", 1, "smallest file in KB")
		maxKB  = flag.Int("max-kb", 256, "largest file in KB (paper cap: 10240)")
		seed   = flag.Int64("seed", 2015, "corpus seed")
		out    = flag.String("out", "grid.csv", "output CSV path")
		jobs   = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel compression workers (1 = sequential; results identical)")
	)
	flag.Parse()
	if err := run(*nFiles, *minKB, *maxKB, *seed, *out, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}
}

func run(nFiles, minKB, maxKB int, seed int64, out string, jobs int) error {
	spec := synth.CorpusSpec{NumFiles: nFiles, MinSize: minKB << 10, MaxSize: maxKB << 10, Seed: seed}
	fmt.Fprintf(os.Stderr, "experiment: generating %d files (%d KB .. %d KB, seed %d)\n", nFiles, minKB, maxKB, seed)
	files := synth.ExperimentCorpus(spec)

	codecs := []string{"ctw", "dnax", "gencompress", "gzip"}
	cache := compress.NewCache()
	start := time.Now()
	g, err := experiment.RunParallelCached(context.Background(), files, cloud.Grid(), codecs, experiment.DefaultNoise(), jobs, cache)
	if err != nil {
		return err
	}
	hits, misses := cache.Counters()
	fmt.Fprintf(os.Stderr, "experiment: %d rows (%d files x %d contexts x %d codecs) in %s (jobs=%d, cache %d hits / %d misses)\n",
		len(g.Rows), len(g.Files), len(g.Contexts), len(g.Codecs), time.Since(start).Round(time.Millisecond), jobs, hits, misses)

	counts := g.LabelCounts(core.TimeOnlyWeights())
	fmt.Fprintf(os.Stderr, "experiment: time-only labels: ")
	for _, c := range codecs {
		fmt.Fprintf(os.Stderr, "%s=%d ", c, counts[c])
	}
	fmt.Fprintln(os.Stderr)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiment: wrote %s\n", out)
	return nil
}
