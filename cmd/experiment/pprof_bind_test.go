package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	binOnce  sync.Once
	binPath  string
	binBuild error
)

// buildCLI compiles experiment once per test binary for process-level
// exit-status assertions.
func buildCLI(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "experiment")
		if err != nil {
			binBuild = err
			return
		}
		binPath = filepath.Join(dir, "experiment")
		if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
			binBuild = err
			t.Logf("go build: %s", out)
		}
	})
	if binBuild != nil {
		t.Fatalf("building experiment: %v", binBuild)
	}
	return binPath
}

// TestPprofBadAddrExitsStatus2 is the bugfix-sweep regression: an
// unbindable -pprof address must abort the run with exit status 2 before
// the grid builds, instead of running the whole experiment and logging
// the bind failure asynchronously.
func TestPprofBadAddrExitsStatus2(t *testing.T) {
	bin := buildCLI(t)
	out := filepath.Join(t.TempDir(), "grid.csv")
	cmd := exec.Command(bin, "-files", "2", "-min-kb", "1", "-max-kb", "2", "-out", out, "-pprof", "256.256.256.256:99999")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v", err)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit status %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "debug server") {
		t.Errorf("stderr does not name the debug server failure: %s", stderr.String())
	}
	if _, serr := os.Stat(out); serr == nil {
		t.Error("grid CSV written despite the unbindable -pprof address")
	}
}
