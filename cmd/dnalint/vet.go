package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"

	"github.com/srl-nuces/ctxdna/internal/lint"
)

// vetConfig mirrors the JSON unit file the go command hands a vet tool for
// each package in the build graph (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one build unit under `go vet -vettool=dnalint`.
// Dependency types come from the compiler's export data (cfg.PackageFile),
// so this path needs no source re-type-checking of the closure.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnalint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dnalint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist for downstream
	// units. The suite exports no facts, so an empty file suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "dnalint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Test variants arrive as "path [path.test]"; scope-match the real path.
	path := cfg.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}

	fset := token.NewFileSet()
	imp := lint.NewVetImporter(fset, cfg.Compiler, cfg.ImportMap, cfg.PackageFile)
	pkg, err := lint.LoadForVet(fset, path, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "dnalint:", err)
		return 1
	}
	diags := lint.RunPackage(pkg, lint.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
