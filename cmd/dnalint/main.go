// Command dnalint runs the repository's invariant analyzers (package
// internal/lint): the per-statement checks (determinism, errtaxonomy,
// registerinit, ctxprop, statsadd, clockinject) and the dataflow suite
// (untrustedflow, allocguard, goroutinebound, copydiscipline).
//
// Standalone, from anywhere inside the module:
//
//	dnalint ./...              # whole module
//	dnalint ./internal/...     # one subtree
//	dnalint ./internal/synth   # one package
//	dnalint -json ./...        # findings as a JSON array on stdout
//	dnalint -ignores ./...     # audit //lint:ignore directives; stale ones fail
//
// As a vet tool, using the toolchain's build graph and export data:
//
//	go vet -vettool=$(pwd)/bin/dnalint ./...
//
// Exit status: 0 clean, 1 operational error, 2 findings (matching go vet's
// convention for analysis tools). -ignores exits 2 when any directive is
// stale — suppressing nothing, or missing its mandatory reason.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/srl-nuces/ctxdna/internal/lint"
)

func main() {
	args := os.Args[1:]
	// The go command probes vet tools before handing them work units:
	// -V=full asks for a version line to mix into the build cache key and
	// -flags for the JSON list of accepted flags.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	var jsonOut, auditIgnores bool
	var patterns []string
	for _, a := range args {
		switch a {
		case "-help", "--help", "-h":
			usage()
			return
		case "-json", "--json":
			jsonOut = true
		case "-ignores", "--ignores":
			auditIgnores = true
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "dnalint: unknown flag %s (see -help)\n", a)
				os.Exit(1)
			}
			patterns = append(patterns, a)
		}
	}
	switch {
	case auditIgnores:
		os.Exit(ignoresAudit(patterns))
	case jsonOut:
		os.Exit(standaloneJSON(patterns))
	default:
		os.Exit(standalone(patterns))
	}
}

func usage() {
	fmt.Println("usage: dnalint [-json] [-ignores] [package pattern ...]   (default ./...)")
	fmt.Println()
	fmt.Println("modes:")
	fmt.Println("  (default)  print findings as file:line:col: analyzer: message on stderr")
	fmt.Println("  -json      print findings as a JSON array on stdout ([] when clean)")
	fmt.Println("  -ignores   audit //lint:ignore directives: list each with its status,")
	fmt.Println("             exit 2 if any is stale (suppresses nothing) or malformed")
	fmt.Println("             (missing the mandatory reason)")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range lint.All() {
		fmt.Printf("  %-14s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n                 "))
		fmt.Println()
	}
	fmt.Println("suppress one finding with: //lint:ignore <analyzer>[,<analyzer>...] reason")
	fmt.Println("the reason is mandatory; a reasonless directive is inert and fails -ignores")
}

// printVersion answers `dnalint -V=full` in the shape the go command's
// tool-ID parser expects from an external vet tool.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// standalone lints module packages matched by the patterns using the
// from-source loader, printing findings to stderr.
func standalone(patterns []string) int {
	diags, err := lintHere(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnalint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// jsonFinding is the machine-readable shape of one diagnostic, stable for
// CI artifact consumers.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// standaloneJSON is the -json mode: findings as a JSON array on stdout,
// [] when clean, same exit codes as the default mode.
func standaloneJSON(patterns []string) int {
	diags, err := lintHere(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnalint:", err)
		return 1
	}
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		fmt.Fprintln(os.Stderr, "dnalint:", err)
		return 1
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// ignoresAudit is the -ignores mode: run the full suite, list every
// //lint:ignore directive with whether it still suppresses a finding, and
// fail on the ones that do not. A stale directive is a claim about the
// line below it that stopped being true — either the code was fixed (drop
// the directive) or the analyzer changed (re-justify it).
func ignoresAudit(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnalint:", err)
		return 1
	}
	res, err := lint.LintModuleAudit(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnalint:", err)
		return 1
	}
	for _, d := range res.Ignores {
		status := "used"
		switch {
		case d.Malformed():
			status = "MALFORMED"
		case !d.Used():
			status = "STALE"
		}
		fmt.Printf("%-9s %s\n", status, d.String())
	}
	stale := res.Stale()
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "dnalint: %d stale //lint:ignore directive(s); remove them or re-justify\n", len(stale))
		return 2
	}
	fmt.Printf("%d directive(s), all suppressing live findings\n", len(res.Ignores))
	return 0
}

func lintHere(patterns []string) ([]lint.Diagnostic, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	return lint.LintModule(wd, patterns)
}
