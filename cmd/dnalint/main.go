// Command dnalint runs the repository's invariant analyzers (package
// internal/lint): determinism, errtaxonomy, registerinit, ctxprop and
// statsadd.
//
// Standalone, from anywhere inside the module:
//
//	dnalint ./...              # whole module
//	dnalint ./internal/...     # one subtree
//	dnalint ./internal/synth   # one package
//
// As a vet tool, using the toolchain's build graph and export data:
//
//	go vet -vettool=$(pwd)/bin/dnalint ./...
//
// Exit status: 0 clean, 1 operational error, 2 findings (matching go vet's
// convention for analysis tools).
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/srl-nuces/ctxdna/internal/lint"
)

func main() {
	args := os.Args[1:]
	// The go command probes vet tools before handing them work units:
	// -V=full asks for a version line to mix into the build cache key and
	// -flags for the JSON list of accepted flags.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	if len(args) > 0 && args[0] == "-help" || len(args) > 0 && args[0] == "--help" || len(args) > 0 && args[0] == "-h" {
		usage()
		return
	}
	os.Exit(standalone(args))
}

func usage() {
	fmt.Println("usage: dnalint [package pattern ...]   (default ./...)")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range lint.All() {
		fmt.Printf("  %-12s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n               "))
		fmt.Println()
	}
	fmt.Println("suppress one finding with: //lint:ignore <analyzer> reason")
}

// printVersion answers `dnalint -V=full` in the shape the go command's
// tool-ID parser expects from an external vet tool.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// standalone lints module packages matched by the patterns using the
// from-source loader, printing findings to stderr.
func standalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnalint:", err)
		return 1
	}
	diags, err := lint.LintModule(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnalint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
