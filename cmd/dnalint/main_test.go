package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/lint"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// buildTool compiles dnalint once per test binary into a shared temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dnalint")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "dnalint")
		cmd := exec.Command("go", "build", "-o", binPath, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("go build: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building dnalint: %v", buildErr)
	}
	return binPath
}

// TestStandaloneRepoClean runs the built binary over the whole module the
// way the Makefile lint target does.
func TestStandaloneRepoClean(t *testing.T) {
	bin := buildTool(t)
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dnalint ./... failed: %v\n%s", err, out)
	}
}

// TestVetToolProtocol exercises the go vet handshake (-V=full, -flags) and
// a real `go vet -vettool` run over a codec package, proving the tool
// speaks the unit-checking protocol end to end.
func TestVetToolProtocol(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not match the tool-ID shape", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags = %q, want []", out)
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/compress/...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over a clean tree failed: %v\n%s", err, out)
	}
}

// TestVetToolFindsViolation plants an errtaxonomy violation in a scratch
// module that mirrors this repository's module path and asserts the vet
// run fails with the expected diagnostic — the same failure CI would show
// if a satellite fix were reverted.
func TestVetToolFindsViolation(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()

	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module "+lint.ModulePath+"\n\ngo 1.22\n")
	write("internal/compress/compress.go", `package compress

import (
	"errors"
	"fmt"
)

var ErrCorrupt = errors.New("compress: corrupt stream")

func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}
`)
	write("internal/compress/badcodec/badcodec.go", `package badcodec

import "fmt"

func Decompress(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("badcodec: empty stream")
	}
	return data, nil
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over a planted violation:\n%s", out)
	}
	if !strings.Contains(string(out), "errtaxonomy") {
		t.Fatalf("vet output missing errtaxonomy diagnostic:\n%s", out)
	}
}
