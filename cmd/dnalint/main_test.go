package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/lint"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// buildTool compiles dnalint once per test binary into a shared temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dnalint")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "dnalint")
		cmd := exec.Command("go", "build", "-o", binPath, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("go build: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building dnalint: %v", buildErr)
	}
	return binPath
}

// TestStandaloneRepoClean runs the built binary over the whole module the
// way the Makefile lint target does.
func TestStandaloneRepoClean(t *testing.T) {
	bin := buildTool(t)
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dnalint ./... failed: %v\n%s", err, out)
	}
}

// TestVetToolProtocol exercises the go vet handshake (-V=full, -flags) and
// a real `go vet -vettool` run over a codec package, proving the tool
// speaks the unit-checking protocol end to end.
func TestVetToolProtocol(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not match the tool-ID shape", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags = %q, want []", out)
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/compress/...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over a clean tree failed: %v\n%s", err, out)
	}
}

// scratchModule lays out a throwaway module mirroring this repository's
// module path (so analyzer scopes apply) and returns its root plus a
// writer for adding files.
func scratchModule(t *testing.T) (string, func(rel, content string)) {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module "+lint.ModulePath+"\n\ngo 1.22\n")
	return dir, write
}

// TestJSONCleanGolden pins the machine-readable contract for a clean run:
// exactly the empty JSON array, exit 0.
func TestJSONCleanGolden(t *testing.T) {
	bin := buildTool(t)
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-json", "./internal/seq")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("dnalint -json over a clean package failed: %v", err)
	}
	if got := string(out); got != "[]\n" {
		t.Fatalf("clean -json output = %q, want %q", got, "[]\n")
	}
}

// TestJSONFindings plants a violation and checks the -json finding shape
// CI archives as an artifact: file/line/col/analyzer/message, exit 2.
func TestJSONFindings(t *testing.T) {
	bin := buildTool(t)
	dir, write := scratchModule(t)
	write("internal/compress/badcodec/badcodec.go", `package badcodec

import "fmt"

func Decompress(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("badcodec: empty stream")
	}
	return data, nil
}
`)
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("dnalint -json over a violation: err=%v, want exit status 2\n%s", err, out)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(findings), out)
	}
	f := findings[0]
	if !strings.HasSuffix(f.File, "badcodec.go") || f.Line == 0 || f.Col == 0 ||
		f.Analyzer != "errtaxonomy" || !strings.Contains(f.Message, "ErrCorrupt") {
		t.Fatalf("finding shape wrong: %+v", f)
	}
}

// TestIgnoresAudit: a directive that suppresses a live finding passes the
// audit; one that suppresses nothing (and one missing its reason) makes
// `dnalint -ignores` exit non-zero, naming each.
func TestIgnoresAudit(t *testing.T) {
	bin := buildTool(t)
	dir, write := scratchModule(t)
	write("internal/compress/badcodec/badcodec.go", `package badcodec

import "fmt"

func Decompress(data []byte) ([]byte, error) {
	if len(data) == 0 {
		//lint:ignore errtaxonomy scratch module has no ErrCorrupt taxonomy to wrap
		return nil, fmt.Errorf("badcodec: empty stream")
	}
	//lint:ignore errtaxonomy nothing on the next line ever triggers this
	return data, nil
}

//lint:ignore determinism
func placeholder() {}
`)
	cmd := exec.Command(bin, "-ignores", "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("dnalint -ignores with stale directives: err=%v, want exit status 2\n%s", err, out)
	}
	text := string(out)
	for _, wantLine := range []string{
		"used", "STALE", "MALFORMED", "missing reason", "stale //lint:ignore",
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("-ignores output missing %q:\n%s", wantLine, text)
		}
	}

	// Dropping the stale and malformed directives makes the audit pass.
	write("internal/compress/badcodec/badcodec.go", `package badcodec

import "fmt"

func Decompress(data []byte) ([]byte, error) {
	if len(data) == 0 {
		//lint:ignore errtaxonomy scratch module has no ErrCorrupt taxonomy to wrap
		return nil, fmt.Errorf("badcodec: empty stream")
	}
	return data, nil
}
`)
	cmd = exec.Command(bin, "-ignores", "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("dnalint -ignores with only live directives failed: %v\n%s", err, out)
	}
}

// TestVetToolFindsAliasingBug reintroduces the PR 6 Cache.Get bug shape —
// an exported method returning a map entry whose slice still aliases
// receiver state — and asserts the vet run fails on copydiscipline.
func TestVetToolFindsAliasingBug(t *testing.T) {
	bin := buildTool(t)
	dir, write := scratchModule(t)
	write("internal/compress/cache.go", `package compress

type Result struct {
	Data []byte
}

type Cache struct {
	m map[string]Result
}

func (c *Cache) Get(key string) (Result, bool) {
	r, ok := c.m[key]
	return r, ok
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over an aliasing Get:\n%s", out)
	}
	if !strings.Contains(string(out), "copydiscipline") {
		t.Fatalf("vet output missing copydiscipline diagnostic:\n%s", out)
	}
}

// TestVetToolFindsUnguardedHeaderMake reintroduces the hostile-allocation
// bug shape — make() sized directly by a decoded header count, the CXB1
// block-count class — and asserts the vet run fails on allocguard.
func TestVetToolFindsUnguardedHeaderMake(t *testing.T) {
	bin := buildTool(t)
	dir, write := scratchModule(t)
	write("internal/compress/frame.go", `package compress

import "encoding/binary"

func decodeOffsets(data []byte) []uint64 {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil
	}
	out := make([]uint64, count)
	for i := range out {
		out[i], _ = binary.Uvarint(data[n:])
	}
	return out
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over an unguarded header-sized make:\n%s", out)
	}
	if !strings.Contains(string(out), "allocguard") {
		t.Fatalf("vet output missing allocguard diagnostic:\n%s", out)
	}
}

// TestVetToolFindsViolation plants an errtaxonomy violation in a scratch
// module that mirrors this repository's module path and asserts the vet
// run fails with the expected diagnostic — the same failure CI would show
// if a satellite fix were reverted.
func TestVetToolFindsViolation(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()

	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module "+lint.ModulePath+"\n\ngo 1.22\n")
	write("internal/compress/compress.go", `package compress

import (
	"errors"
	"fmt"
)

var ErrCorrupt = errors.New("compress: corrupt stream")

func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}
`)
	write("internal/compress/badcodec/badcodec.go", `package badcodec

import "fmt"

func Decompress(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("badcodec: empty stream")
	}
	return data, nil
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over a planted violation:\n%s", out)
	}
	if !strings.Contains(string(out), "errtaxonomy") {
		t.Fatalf("vet output missing errtaxonomy diagnostic:\n%s", out)
	}
}
