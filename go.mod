module github.com/srl-nuces/ctxdna

go 1.22
