// Package ctxdna_bench is the reproduction harness: one benchmark per table
// and figure of the paper's evaluation, plus ablations of the design
// choices called out in DESIGN.md §5.
//
// Each figure benchmark builds (once) the deterministic experiment grid —
// corpus files × the 32-context cloud grid × the four codecs — and reports
// the figure's headline quantities as custom benchmark metrics, so that
//
//	go test -bench . -benchmem
//
// regenerates every number EXPERIMENTS.md discusses. Absolute magnitudes
// are modeled (reference-core milliseconds); the shapes — who wins, by what
// factor, where the crossovers sit — are the reproduction targets.
package ctxdna_bench

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/ctw"
	"github.com/srl-nuces/ctxdna/internal/compress/dnax"
	"github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/match"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/stats"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/biocompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
)

var paperCodecs = []string{"ctw", "dnax", "gencompress", "gzip"}

var (
	gridOnce sync.Once
	gridVal  *experiment.Grid
	gridErr  error
)

// benchGrid builds the shared experiment grid once: 48 files, 2–256 KB,
// spanning the paper's small-file and large-file regimes.
func benchGrid(b *testing.B) *experiment.Grid {
	b.Helper()
	gridOnce.Do(func() {
		files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 48, MinSize: 2 << 10, MaxSize: 256 << 10, Seed: 2015})
		gridVal, gridErr = experiment.Run(files, cloud.Grid(), paperCodecs, experiment.DefaultNoise())
	})
	if gridErr != nil {
		b.Fatal(gridErr)
	}
	return gridVal
}

// meanByCodec reports one custom metric per codec.
func meanByCodec(b *testing.B, g *experiment.Grid, unit string, value func(core.Measurement) float64) {
	b.Helper()
	for ci, codec := range g.Codecs {
		var vals []float64
		for _, row := range g.Rows {
			vals = append(vals, value(row.Measurements[ci]))
		}
		b.ReportMetric(stats.Mean(vals), codec+"_"+unit)
	}
}

// BenchmarkFig2UploadTime regenerates Figure 2: upload time per codec across
// contexts. Expected shape: near-identical within a context (upload is
// dominated by latency + size/bandwidth), ordered by compressed size —
// gzip worst, gencompress best.
func BenchmarkFig2UploadTime(b *testing.B) {
	g := benchGrid(b)
	for i := 0; i < b.N; i++ {
		_ = g.FigUploadTime()
	}
	meanByCodec(b, g, "up_ms", func(m core.Measurement) float64 { return m.UploadMS })
}

// BenchmarkFig3RAMUsed regenerates Figure 3: measured RAM per codec.
// Expected shape: noisy and near-tied (the reason RAM models fail), with
// gzip lowest on average and CTW heaviest.
func BenchmarkFig3RAMUsed(b *testing.B) {
	g := benchGrid(b)
	for i := 0; i < b.N; i++ {
		_ = g.FigRAMUsed()
	}
	meanByCodec(b, g, "ram_mb", func(m core.Measurement) float64 { return float64(m.RAMBytes) / (1 << 20) })
}

// BenchmarkFig4CompressedSize regenerates Figure 4: bits/base per codec,
// context-invariant. Expected order: gencompress <= dnax < ctw < gzip.
func BenchmarkFig4CompressedSize(b *testing.B) {
	g := benchGrid(b)
	for i := 0; i < b.N; i++ {
		_ = g.FigCompressedSize()
	}
	for ci, codec := range g.Codecs {
		seen := map[string]bool{}
		var sum float64
		var n int
		for _, row := range g.Rows {
			if seen[row.FileName] {
				continue
			}
			seen[row.FileName] = true
			sum += float64(row.Measurements[ci].CompressedBytes*8) / float64(row.FileBases)
			n++
		}
		b.ReportMetric(sum/float64(n), codec+"_bpb")
	}
}

// BenchmarkFig5CompressionTime regenerates Figure 5. Expected shape:
// GenCompress worst by a wide margin; DNAX flat (fixed table cost) and the
// best above ~140 KB; CPU scaling matters for all, RAM for none (no codec
// thrashes at these sizes).
func BenchmarkFig5CompressionTime(b *testing.B) {
	g := benchGrid(b)
	for i := 0; i < b.N; i++ {
		_ = g.FigCompressionTime()
	}
	meanByCodec(b, g, "comp_ms", func(m core.Measurement) float64 { return m.CompressMS })
}

// BenchmarkFig6DownloadTime regenerates Figure 6: download at the fixed
// cloud VM, spread only by compressed size (tens of ms between codecs), and
// the decompression-time observation (DNAX least, CTW worst) reported
// alongside.
func BenchmarkFig6DownloadTime(b *testing.B) {
	g := benchGrid(b)
	for i := 0; i < b.N; i++ {
		_ = g.FigDownloadTime()
	}
	meanByCodec(b, g, "down_ms", func(m core.Measurement) float64 { return m.DownloadMS })
	meanByCodec(b, g, "dec_ms", func(m core.Measurement) float64 { return m.DecompressMS })
}

// BenchmarkFig8FileSizes regenerates Figure 8: the file-size-vs-row layout
// of the held-out test set.
func BenchmarkFig8FileSizes(b *testing.B) {
	g := benchGrid(b)
	_, test := g.Split()
	var s experiment.Series
	for i := 0; i < b.N; i++ {
		s = test.FigFileSizeByRow()
	}
	b.ReportMetric(float64(len(s.Y)), "test_rows")
	b.ReportMetric(s.Y[0]/1024, "min_kb")
	b.ReportMetric(s.Y[len(s.Y)-1]/1024, "max_kb")
}

func benchValidation(b *testing.B, method string, w core.Weights) {
	g := benchGrid(b)
	train, test := g.Split()
	var v *experiment.Validation
	var err error
	for i := 0; i < b.N; i++ {
		v, err = experiment.Validate(train, test, method, w, dtree.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	below, total := v.GapsBelow(50)
	b.ReportMetric(v.Accuracy, "accuracy")
	b.ReportMetric(float64(total), "gaps")
	b.ReportMetric(float64(below), "gaps_sub50kb")
}

// BenchmarkFig9CHAIDTime regenerates Figures 9/10 (CHAID, time labels).
// Paper: accuracy 0.946, gaps concentrated below 50 KB.
func BenchmarkFig9CHAIDTime(b *testing.B) {
	benchValidation(b, experiment.MethodCHAID, core.TimeOnlyWeights())
}

// BenchmarkFig11CARTTime regenerates Figures 11/12 (CART, time labels).
// Paper: accuracy 0.962, recovers sub-50 KB GenCompress cases CHAID missed.
func BenchmarkFig11CARTTime(b *testing.B) {
	benchValidation(b, experiment.MethodCART, core.TimeOnlyWeights())
}

// BenchmarkFig13CHAIDRAM regenerates Figures 13/14 (CHAID, RAM labels).
// Paper: accuracy 0.361 — "the results are not good".
func BenchmarkFig13CHAIDRAM(b *testing.B) {
	benchValidation(b, experiment.MethodCHAID, core.RAMOnlyWeights())
}

// BenchmarkFig15CARTRAM regenerates Figures 15/16 (CART, RAM labels).
// Paper: accuracy 0.334.
func BenchmarkFig15CARTRAM(b *testing.B) {
	benchValidation(b, experiment.MethodCART, core.RAMOnlyWeights())
}

// BenchmarkTable2Accuracy regenerates the full Table 2 sweep: 16 weight
// combinations × {CART, CHAID}. Key metrics reported: the single-variable
// extremes. Paper: TIME 94.6/96.2 %, CompressionTime 98.5 %, RAM 33.5/36.1 %,
// mixes 22–46 %.
func BenchmarkTable2Accuracy(b *testing.B) {
	g := benchGrid(b)
	train, test := g.Split()
	var rows []experiment.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiment.Table2(train, test, dtree.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	report := func(metric, method, weight, v1 string) {
		if acc, ok := experiment.Table2Lookup(rows, method, weight, v1); ok {
			b.ReportMetric(acc, metric)
		}
	}
	report("cart_time", "CART", "100", "TIME")
	report("chaid_time", "CHAID", "100", "TIME")
	report("cart_ram", "CART", "100", "RAM")
	report("chaid_ram", "CHAID", "100", "RAM")
	report("cart_ctime", "CART", "100", "CompressionTime")
	report("cart_mix6040", "CART", "60:40", "RAM")
}

// --- Parallel pipeline (EXPERIMENTS.md "Parallel grid build") ---

// parallelBenchFiles is the corpus for the jobs sweep: big enough that
// per-run work dominates pool overhead, small enough to iterate.
func parallelBenchFiles() []synth.File {
	return synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 16, MinSize: 2 << 10, MaxSize: 64 << 10, Seed: 2015})
}

// BenchmarkRunParallelJobs sweeps the worker count over the full grid
// build. On multi-core hardware the (file × codec) fan-out scales nearly
// linearly until jobs reaches the core count (the acceptance target is
// >= 2x at jobs=4); on a single-core runner every setting degenerates to
// sequential wall-clock, which the recorded ns/op makes visible.
func BenchmarkRunParallelJobs(b *testing.B) {
	files := parallelBenchFiles()
	contexts := cloud.Grid()
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(benchName("jobs", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunParallel(context.Background(), files, contexts, paperCodecs, experiment.DefaultNoise(), jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunCachedSweep measures a repeated sweep over an already-seen
// corpus: with a warm content-hash cache the grid rebuild skips every
// compression and collapses to context expansion.
func BenchmarkRunCachedSweep(b *testing.B) {
	files := parallelBenchFiles()
	contexts := cloud.Grid()
	cache := compress.NewCache()
	if _, err := experiment.RunParallelCached(context.Background(), files, contexts, paperCodecs, experiment.DefaultNoise(), 4, cache); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunParallelCached(context.Background(), files, contexts, paperCodecs, experiment.DefaultNoise(), 4, cache); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hits, misses := cache.Counters()
	b.ReportMetric(float64(hits)/float64(hits+misses), "hit_rate")
}

// --- Block engine (DESIGN.md §12) ---

// blockBenchSeq is the block-engine corpus: 1 MB of corpus-profile
// sequence, sixteen 64 KB blocks — enough fan-out for the pool to matter.
func blockBenchSeq() []byte {
	p := synth.Profile{Length: 1 << 20, GC: 0.42, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400}
	return p.Generate(61)
}

// BenchmarkBlockCompressJobs sweeps the block worker count over a 1 MB
// sequence split into 64 KB blocks. Output bytes are identical at every
// setting (asserted once), so the sweep isolates pure pool scaling; this is
// the benchmark cmd/benchjson pins into BENCH_<n>.json per PR.
func BenchmarkBlockCompressJobs(b *testing.B) {
	src := blockBenchSeq()
	opts := compress.BlockOptions{BlockSize: 64 << 10}
	base, _, err := compress.BlockCompress("dnax", src, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(benchName("jobs", jobs), func(b *testing.B) {
			o := opts
			o.Jobs = jobs
			container, _, err := compress.BlockCompress("dnax", src, o)
			if err != nil || !bytes.Equal(container, base) {
				b.Fatalf("jobs=%d container diverged (err=%v)", jobs, err)
			}
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := compress.BlockCompress("dnax", src, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBlockSeek measures random-access reads from a sealed container:
// a 512-base window through Slice decodes only the touched block, versus
// the full-container decode it replaces.
func BenchmarkBlockSeek(b *testing.B) {
	src := blockBenchSeq()
	container, _, err := compress.BlockCompress("dnax", src, compress.BlockOptions{BlockSize: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	r, err := compress.OpenBlocks(container, compress.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("slice512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			off := (i * 37 * 512) % (len(src) - 512)
			if _, _, err := r.Slice(off, 512); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, _, err := r.Decompress(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ---

// ablateRatio compresses a fixed 96 KB corpus sequence and reports
// bits/base plus modeled time for each configuration value.
func ablateSeq() []byte {
	p := synth.Profile{Length: 96 << 10, GC: 0.4, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400,
		RCFraction: 0.2, MutationRate: 0.035, LocalOrder: 3, LocalBias: 0.85}
	return p.Generate(99)
}

// BenchmarkAblationCTWDepth sweeps the CTW context depth: ratio improves
// with depth while time and memory grow linearly in depth.
func BenchmarkAblationCTWDepth(b *testing.B) {
	src := ablateSeq()
	for _, depth := range []int{4, 8, 12, 16, 20} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			c := ctw.New(depth)
			var out []byte
			var st compress.Stats
			var err error
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				out, st, err = c.Compress(src)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(compress.Ratio(len(src), len(out)), "bpb")
			b.ReportMetric(float64(st.WorkNS)/1e6, "model_ms")
			b.ReportMetric(float64(st.PeakMem)/(1<<20), "model_mb")
		})
	}
}

// BenchmarkAblationDNAXMinRepeat sweeps DNAX's minimum repeat length.
func BenchmarkAblationDNAXMinRepeat(b *testing.B) {
	src := ablateSeq()
	for _, minRep := range []int{12, 16, 24, 48, 96} {
		b.Run(benchName("min", minRep), func(b *testing.B) {
			c := dnax.New(dnax.Config{MinRepeat: minRep})
			var out []byte
			var err error
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				out, _, err = c.Compress(src)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(compress.Ratio(len(src), len(out)), "bpb")
		})
	}
}

// BenchmarkAblationDNAXStride sweeps the fingerprint stride: stride 1 is
// the exhaustive matcher, 8 the faithful DNAX block scheme.
func BenchmarkAblationDNAXStride(b *testing.B) {
	src := ablateSeq()
	for _, stride := range []int{1, 2, 4, 8, 16} {
		b.Run(benchName("stride", stride), func(b *testing.B) {
			c := dnax.New(dnax.Config{Stride: stride})
			var out []byte
			var err error
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				out, _, err = c.Compress(src)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(compress.Ratio(len(src), len(out)), "bpb")
		})
	}
}

// BenchmarkAblationGenCompressCandidates sweeps the approximate-search
// candidate budget: the paper's ratio-vs-time trade-off in one knob.
func BenchmarkAblationGenCompressCandidates(b *testing.B) {
	src := ablateSeq()
	for _, cands := range []int{1, 4, 8, 16, 32} {
		b.Run(benchName("cand", cands), func(b *testing.B) {
			c := gencompress.New(gencompress.Config{MaxCandidates: cands})
			var out []byte
			var st compress.Stats
			var err error
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				out, st, err = c.Compress(src)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(compress.Ratio(len(src), len(out)), "bpb")
			b.ReportMetric(float64(st.WorkNS)/1e6, "model_ms")
		})
	}
}

// BenchmarkAblationEditBudget sweeps GenCompress's edit-operation budget
// (the paper's "threshold value" constraining edit operations).
func BenchmarkAblationEditBudget(b *testing.B) {
	src := ablateSeq()
	for _, ops := range []int{1, 4, 12, 24, 48} {
		b.Run(benchName("ops", ops), func(b *testing.B) {
			approx := match.DefaultApproxConfig()
			approx.MaxOps = ops
			c := gencompress.New(gencompress.Config{Approx: approx})
			var out []byte
			var err error
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				out, _, err = c.Compress(src)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(compress.Ratio(len(src), len(out)), "bpb")
		})
	}
}

// BenchmarkAblationThrash sweeps VM RAM against a fixed workload to expose
// the thrash model's label impact: execution time jumps once the working
// set exceeds available memory.
func BenchmarkAblationThrash(b *testing.B) {
	st := compress.Stats{WorkNS: 50_000_000, PeakMem: 900 << 20}
	for _, ramMB := range []int{768, 1024, 1536, 2048, 4096} {
		b.Run(benchName("ram", ramMB), func(b *testing.B) {
			vm := cloud.VM{RAMMB: ramMB, CPUMHz: 2400, BandwidthMbps: 10}
			var ms float64
			for i := 0; i < b.N; i++ {
				ms = vm.ExecMS(st)
			}
			b.ReportMetric(ms, "exec_ms")
		})
	}
}

// --- Observability (DESIGN.md §11) ---

// BenchmarkInstrumentOverhead compares a raw codec against its
// compress.Instrument wrapper on the same input. The wrapper pre-resolves
// its series, so each call adds only a handful of atomic operations; the
// acceptance target is < 5 % overhead on a real codec's compress path.
// Run both sub-benchmarks and compare ns/op (e.g. with benchstat).
func BenchmarkInstrumentOverhead(b *testing.B) {
	src := ablateSeq()
	newCodec := func() compress.Codec {
		c, err := compress.New("dnax")
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	b.Run("raw", func(b *testing.B) {
		c := newCodec()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Compress(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		c := compress.Instrument(obs.NewRegistry(), newCodec())
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Compress(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInstrumentWrapperFloor isolates the wrapper's own cost with a
// near-free codec (twobit packing), the worst case for relative overhead:
// if even here the delta is small, real codecs cannot notice it.
func BenchmarkInstrumentWrapperFloor(b *testing.B) {
	src := ablateSeq()[:4096]
	newCodec := func() compress.Codec {
		c, err := compress.New("twobit")
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	b.Run("raw", func(b *testing.B) {
		c := newCodec()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Compress(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		c := compress.Instrument(obs.NewRegistry(), newCodec())
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Compress(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationEq1Normalization implements the paper's future-work item
// "improve the Eq. 1": with raw-magnitude scoring, a 50:50 RAM:TIME weight
// collapses toward the noisy RAM ordering and its accuracy; with per-row
// min-max normalization, the same weight behaves like a genuine trade-off
// and the trained model's accuracy recovers toward the time model's.
func BenchmarkAblationEq1Normalization(b *testing.B) {
	g := benchGrid(b)
	train, test := g.Split()
	w := core.RAMTimeWeights(0.5, 0.5)
	var rawAcc, normAcc float64
	for i := 0; i < b.N; i++ {
		_, acc, err := experiment.TrainEval(train, test, experiment.MethodCART, w, dtree.Config{})
		if err != nil {
			b.Fatal(err)
		}
		rawAcc = acc
		tree, err := dtree.TrainCART(train.DatasetNormalized(w), dtree.Config{})
		if err != nil {
			b.Fatal(err)
		}
		normAcc = dtree.Accuracy(tree, test.DatasetNormalized(w))
	}
	b.ReportMetric(rawAcc, "raw_acc")
	b.ReportMetric(normAcc, "norm_acc")
}
