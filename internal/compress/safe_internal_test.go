package compress

import (
	"errors"
	"strings"
	"testing"
)

// panicCodec decompresses by crashing — the hostile-stream worst case
// SafeDecompress must contain. It is registered only for the duration of
// the tests below and removed again so the registry the rest of this
// binary's tests enumerate stays the real one.
type panicCodec struct{}

func (panicCodec) Name() string { return "zzpanic" }
func (panicCodec) Compress(src []byte) ([]byte, Stats, error) {
	return append([]byte(nil), src...), Stats{WorkNS: 1, PeakMem: 1}, nil
}
func (panicCodec) Decompress(data []byte) ([]byte, Stats, error) {
	panic("deliberate decoder crash")
}

func withPanicCodec(t *testing.T, f func()) {
	t.Helper()
	Register("zzpanic", func() Codec { return panicCodec{} })
	defer delete(registry, "zzpanic")
	f()
}

// TestSafeDecompressContainsPanic: a panicking decoder behind an
// internally consistent frame must surface as ErrCorrupt, not crash.
func TestSafeDecompressContainsPanic(t *testing.T) {
	withPanicCodec(t, func() {
		src := []byte{0, 1, 2, 3}
		frame := Seal("zzpanic", src, src)
		_, _, err := SafeDecompress("zzpanic", frame, Limits{})
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Errorf("error %q does not name the panic", err)
		}
	})
}

// TestDecompressRecoveringPassesThrough: a clean decode is untouched by the
// containment wrapper.
func TestDecompressRecoveringPassesThrough(t *testing.T) {
	c, err := New("dnapack")
	if err != nil {
		t.Fatal(err)
	}
	src := []byte{3, 2, 1, 0, 3, 2, 1, 0}
	data, _, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := decompressRecovering(c, data)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(src) || st.WorkNS < 0 {
		t.Fatalf("wrapper altered the decode: %v %v", out, st)
	}
}
