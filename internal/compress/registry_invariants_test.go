package compress_test

import (
	"regexp"
	"sort"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
)

// TestRegistryInvariants pins the enumeration contract dnalint's
// registerinit analyzer guards statically: codec names are lowercase
// alphanumeric, unique, sorted, and the enumeration is stable — grid
// columns, CSV headers and cache keys all assume it.
func TestRegistryInvariants(t *testing.T) {
	nameRE := regexp.MustCompile(`^[a-z0-9]+$`)

	first := compress.Names()
	if len(first) == 0 {
		t.Fatal("no codecs registered")
	}
	if !sort.StringsAreSorted(first) {
		t.Errorf("Names() not sorted: %v", first)
	}
	seen := map[string]bool{}
	for _, n := range first {
		if !nameRE.MatchString(n) {
			t.Errorf("codec name %q is not lowercase alphanumeric", n)
		}
		if seen[n] {
			t.Errorf("codec name %q enumerated twice", n)
		}
		seen[n] = true
	}

	second := compress.Names()
	if len(second) != len(first) {
		t.Fatalf("enumeration unstable: %d then %d names", len(first), len(second))
	}
	for i := range first {
		if second[i] != first[i] {
			t.Fatalf("enumeration unstable at %d: %q then %q", i, first[i], second[i])
		}
	}
}
