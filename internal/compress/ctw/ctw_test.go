package ctw

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestConformance(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(DefaultDepth) })
}

func TestConformanceShallow(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(4) })
}

func TestRatioBeatsTwoBits(t *testing.T) {
	// On repeat-rich DNA, CTW must beat the 2-bit floor comfortably.
	p := synth.Profile{Name: "rich", Length: 60000, GC: 0.4, RepeatProb: 0.02, RepeatMin: 20, RepeatMax: 500, RCFraction: 0.2, MutationRate: 0.01}
	compresstest.RatioUnder(t, New(DefaultDepth), p, 42, 1.9)
}

func TestRatioOnIIDNearTwoBits(t *testing.T) {
	// On iid uniform DNA no model can beat 2 bits/base; CTW must stay close
	// (KT redundancy is O(log n / n)).
	p := synth.Profile{Name: "iid", Length: 50000, GC: 0.5}
	src := p.Generate(7)
	data, _, err := New(DefaultDepth).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	bpb := compress.Ratio(len(src), len(data))
	if bpb > 2.10 {
		t.Fatalf("iid rate %.3f bits/base, want <= 2.10", bpb)
	}
	if bpb < 1.95 {
		t.Fatalf("iid rate %.3f bits/base is below entropy — broken accounting", bpb)
	}
}

func TestDepthImprovesStructuredRatio(t *testing.T) {
	// A strongly Markov source should compress better with more context.
	p := synth.Profile{Name: "markov", Length: 40000, GC: 0.35, RepeatProb: 0.03, RepeatMin: 30, RepeatMax: 600, RCFraction: 0, MutationRate: 0.005}
	src := p.Generate(9)
	shallow, _, err := New(2).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	deep, _, err := New(16).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(deep) >= len(shallow) {
		t.Fatalf("depth 16 (%d bytes) did not beat depth 2 (%d bytes)", len(deep), len(shallow))
	}
}

func TestStatsSymmetry(t *testing.T) {
	// CTW's decompression runs the same mixture computation as compression:
	// modeled work must be identical — this is what makes its decompression
	// the slowest of the paper's four codecs.
	p := synth.Profile{Length: 20000, GC: 0.4, RepeatProb: 0.01, RepeatMin: 20, RepeatMax: 200}
	src := p.Generate(3)
	c := New(DefaultDepth)
	data, cst, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	_, dst, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if cst.WorkNS != dst.WorkNS {
		t.Fatalf("work asymmetry: compress %d, decompress %d", cst.WorkNS, dst.WorkNS)
	}
	if cst.PeakMem < 1<<20 {
		t.Errorf("CTW peak memory %d suspiciously small for a depth-16 tree", cst.PeakMem)
	}
}

func TestNodeBudget(t *testing.T) {
	p := synth.Profile{Length: 100000, GC: 0.45, RepeatProb: 0.01, RepeatMin: 15, RepeatMax: 200}
	src := p.Generate(5)
	tr := newTree(16, 2*len(src))
	var ctx uint32
	mask := uint32(1<<16) - 1
	for _, sym := range src[:20000] {
		for shift := 1; shift >= 0; shift-- {
			bit := int(sym >> shift & 1)
			tr.descend(ctx)
			tr.update(bit)
			ctx = (ctx<<1 | uint32(bit)) & mask
		}
	}
	if len(tr.nodes) > 1<<17 {
		t.Fatalf("%d nodes exceeds the context-space bound", len(tr.nodes))
	}
}

func TestRejectsInvalidSymbol(t *testing.T) {
	if _, _, err := New(8).Compress([]byte{0, 1, 4}); err == nil {
		t.Fatal("accepted invalid symbol")
	}
}

func TestRejectsBadHeader(t *testing.T) {
	c := New(8)
	if _, _, err := c.Decompress(nil); err == nil {
		t.Fatal("accepted empty stream")
	}
	if _, _, err := c.Decompress([]byte{99, 1, 2, 3}); err == nil {
		t.Fatal("accepted absurd depth")
	}
}

func TestNewPanicsOnBadDepth(t *testing.T) {
	for _, d := range []int{0, -1, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
}

func BenchmarkCompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 17, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.01}
	src := p.Generate(1)
	c := New(DefaultDepth)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 17, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.01}
	src := p.Generate(1)
	c := New(DefaultDepth)
	data, _, err := c.Compress(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Decompress(data); err != nil {
			b.Fatal(err)
		}
	}
}
