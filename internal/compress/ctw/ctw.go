// Package ctw implements the Context-Tree Weighting compressor (Willems,
// Shtarkov & Tjalkens 1995), the strongest general-purpose statistical coder
// in the paper's comparison. The sequence is serialized as a bit stream
// (2 bits per base, high bit first) and each bit is coded with the CTW
// mixture over all tree sources up to depth D, using Krichevsky–Trofimov
// estimators at every node and a binary range coder as the entropy stage.
//
// The implementation follows the classic sequential formulation: along the
// current context path each node n keeps KT counts (a, b) and a ratio
// β(n) = Pe(n)/Pw(children), from which the conditional mixture probability
// is computed leaf-to-root in O(D) per bit:
//
//	Pw(0 | path, n) = (β(n)·Pkt(0|n) + Pw(0|child)) / (β(n) + 1)
//
// CTW's profile in the paper's data — strong ratio, heavy memory, slow and
// perfectly symmetric compress/decompress times (its decompression is the
// worst of the four) — all falls out of this structure: decoding must run
// the identical mixture computation per bit.
package ctw

import (
	"encoding/binary"

	"github.com/srl-nuces/ctxdna/internal/arith"
	"github.com/srl-nuces/ctxdna/internal/compress"
)

func init() {
	compress.Register("ctw", func() compress.Codec { return New(DefaultDepth) })
}

// DefaultDepth is the context depth in bits (16 bits = 8 bases), the
// standard setting for DNA in the CTW literature.
const DefaultDepth = 16

// Codec is a CTW compressor with a fixed context depth.
type Codec struct {
	depth int
}

// New returns a CTW codec with the given context depth in bits (1..30).
func New(depth int) *Codec {
	if depth < 1 || depth > 30 {
		panic("ctw: depth outside [1,30]")
	}
	return &Codec{depth: depth}
}

// Name implements compress.Codec.
func (*Codec) Name() string { return "ctw" }

// Depth reports the context depth in bits.
func (c *Codec) Depth() int { return c.depth }

// node is one context-tree node. Counts saturate by halving, which doubles
// as adaptivity to non-stationary sources.
type node struct {
	a, b     uint32 // KT counts of zeros and ones
	beta     float64
	children [2]int32 // -1 when absent
}

const nodeBytes = 8 + 8 + 8 // approximate in-memory size used for RAM accounting

// tree is a growable arena of nodes rooted at index 0.
type tree struct {
	nodes []node
	depth int
	path  []int32 // scratch: nodes along the current context path
}

func newTree(depth, bitCount int) *tree {
	t := &tree{depth: depth, path: make([]int32, depth+1)}
	// The arena can never exceed the context space (2^(depth+1)-1 nodes) and
	// rarely exceeds a few nodes per coded bit.
	hint := 4*bitCount + 16
	if maxNodes := 1 << (depth + 1); hint > maxNodes {
		hint = maxNodes
	}
	t.nodes = make([]node, 1, hint)
	t.nodes[0] = node{beta: 1, children: [2]int32{-1, -1}}
	return t
}

func (t *tree) newNode() int32 {
	t.nodes = append(t.nodes, node{beta: 1, children: [2]int32{-1, -1}})
	return int32(len(t.nodes) - 1)
}

// descend walks from the root along the context (most recent bit first),
// creating nodes as needed, and records the path.
func (t *tree) descend(ctx uint32) {
	cur := int32(0)
	t.path[0] = 0
	for d := 1; d <= t.depth; d++ {
		bit := ctx >> (d - 1) & 1
		next := t.nodes[cur].children[bit]
		if next < 0 {
			next = t.newNode()
			t.nodes[cur].children[bit] = next
		}
		t.path[d] = next
		cur = next
	}
}

// ktP0 returns the KT-estimated probability of a zero at node n.
func ktP0(n *node) float64 {
	return (float64(n.a) + 0.5) / (float64(n.a) + float64(n.b) + 1)
}

const (
	betaMax = 1e30
	betaMin = 1e-30
)

// predict computes the mixture probability of a zero for the current path
// (descend must have been called). It walks leaf-to-root.
func (t *tree) predict() float64 {
	// Leaf: pure KT.
	p0 := ktP0(&t.nodes[t.path[t.depth]])
	for d := t.depth - 1; d >= 0; d-- {
		n := &t.nodes[t.path[d]]
		pkt := ktP0(n)
		p0 = (n.beta*pkt + p0) / (n.beta + 1)
	}
	return p0
}

// update records the coded bit along the current path, maintaining counts
// and β ratios bottom-up.
func (t *tree) update(bit int) {
	// Child conditional probability, rebuilt leaf-to-root exactly as in
	// predict so that β sees the same Pw(child) values.
	leaf := &t.nodes[t.path[t.depth]]
	pChild := ktP0(leaf)
	if bit == 1 {
		pChild = 1 - pChild
	}
	bump(leaf, bit)
	for d := t.depth - 1; d >= 0; d-- {
		n := &t.nodes[t.path[d]]
		pkt := ktP0(n)
		if bit == 1 {
			pkt = 1 - pkt
		}
		// Mixture this node produced for the coded bit, before updating.
		pw := (n.beta*pkt + pChild) / (n.beta + 1)
		// β ← β · Pe(bit)/Pw(child = bit)
		n.beta *= pkt / pChild
		if n.beta > betaMax {
			n.beta = betaMax
		} else if n.beta < betaMin {
			n.beta = betaMin
		}
		bump(n, bit)
		pChild = pw
	}
}

func bump(n *node, bit int) {
	if bit == 0 {
		n.a++
	} else {
		n.b++
	}
	if n.a+n.b >= 65536 {
		n.a /= 2
		n.b /= 2
	}
}

// memory reports the arena's approximate resident size.
func (t *tree) memory() int { return len(t.nodes) * nodeBytes }

// probTo16 converts a float probability of zero into the range coder's
// 16-bit fixed point, clamped away from the degenerate ends.
func probTo16(p0 float64) uint32 {
	v := uint32(p0 * arith.ProbOne)
	if v < 32 {
		v = 32
	}
	if v > arith.ProbOne-32 {
		v = arith.ProbOne - 32
	}
	return v
}

// Cost model: one bit touches depth+1 nodes twice (predict + update) with a
// handful of float ops each; ~24 ns per node-visit pair on the reference
// core (calibrated against BenchmarkCompress in this package: ~824 ns/base
// at depth 16). Decompression performs the identical computation — the
// structural reason CTW posts the worst decompression times in the paper.
const nsPerNodeVisit = 24.0

// startupNS models the fixed per-invocation cost of the measured CTW
// research binary: process spawn plus allocation and initialization of the
// full context-tree arena, which the reference implementation sizes for its
// maximum depth regardless of input length.
const startupNS = 22_000_000

func (c *Codec) work(bits int) int64 {
	return startupNS + int64(nsPerNodeVisit*float64(bits)*float64(c.depth+1))
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = byte(c.depth)
	n := 1 + binary.PutUvarint(hdr[1:], uint64(len(src)))

	// One tree per bit position within a symbol: the high and low bits of a
	// base follow different conditional laws, and a shared tree would
	// conflate them (a measurable ~0.05 bits/base loss on Markov DNA).
	trees := [2]*tree{newTree(c.depth, len(src)), newTree(c.depth, len(src))}
	enc := arith.NewEncoder(len(src)/3 + 64)
	var ctx uint32
	ctxMask := uint32(1<<c.depth) - 1
	for _, sym := range src {
		if sym > 3 {
			return nil, compress.Stats{}, compress.Corruptf("ctw: invalid symbol %d", sym)
		}
		for shift := 1; shift >= 0; shift-- {
			bit := int(sym >> shift & 1)
			t := trees[1-shift]
			t.descend(ctx)
			p0 := t.predict()
			enc.EncodeBitP(probTo16(p0), bit)
			t.update(bit)
			ctx = (ctx<<1 | uint32(bit)) & ctxMask
		}
	}
	payload := enc.Finish()
	out := make([]byte, 0, n+len(payload))
	out = append(out, hdr[:n]...)
	out = append(out, payload...)
	st := compress.Stats{
		WorkNS:  c.work(2 * len(src)),
		PeakMem: trees[0].memory() + trees[1].memory() + len(out),
	}
	return out, st, nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	if len(data) < 1 {
		return nil, compress.Stats{}, compress.Corruptf("ctw: empty stream")
	}
	depth := int(data[0])
	if depth < 1 || depth > 30 {
		return nil, compress.Stats{}, compress.Corruptf("ctw: depth %d out of range", depth)
	}
	nBases, used := binary.Uvarint(data[1:])
	if used <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("ctw: bad length header")
	}
	if nBases > 1<<34 {
		return nil, compress.Stats{}, compress.Corruptf("ctw: implausible length %d", nBases)
	}
	// The header's nBases is an attacker's claim: size the tree arenas and
	// the output buffer by HeaderPrealloc and grow with the symbols
	// actually decoded, so a hostile tiny payload cannot force the full
	// claim's memory up front.
	hint := compress.HeaderPrealloc(nBases)
	trees := [2]*tree{newTree(depth, hint), newTree(depth, hint)}
	dec := arith.NewDecoder(data[1+used:])
	out := make([]byte, 0, hint)
	var ctx uint32
	ctxMask := uint32(1<<depth) - 1
	for uint64(len(out)) < nBases {
		var sym byte
		for shift := 1; shift >= 0; shift-- {
			t := trees[1-shift]
			t.descend(ctx)
			p0 := t.predict()
			bit := dec.DecodeBitP(probTo16(p0))
			t.update(bit)
			ctx = (ctx<<1 | uint32(bit)) & ctxMask
			sym = sym<<1 | byte(bit)
		}
		out = append(out, sym)
	}
	st := compress.Stats{
		WorkNS:  c.work(2 * len(out)),
		PeakMem: trees[0].memory() + trees[1].memory() + len(data) + len(out),
	}
	return out, st, nil
}
