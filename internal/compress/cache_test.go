package compress_test

import (
	"bytes"
	"sync"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"

	_ "github.com/srl-nuces/ctxdna/internal/compress/dnapack"
)

func TestContentKeySeparatesCodecAndContent(t *testing.T) {
	a := []byte{0, 1, 2, 3}
	b := []byte{0, 1, 2, 0}
	if compress.ContentKey("dnapack", a) != compress.ContentKey("dnapack", append([]byte(nil), a...)) {
		t.Error("same codec+content produced different keys")
	}
	if compress.ContentKey("dnapack", a) == compress.ContentKey("dnapack", b) {
		t.Error("different content produced the same key")
	}
	if compress.ContentKey("dnapack", a) == compress.ContentKey("xm", a) {
		t.Error("different codecs share a key")
	}
}

func TestCompressCachedHitsAndMisses(t *testing.T) {
	cache := compress.NewCache()
	src := bytes.Repeat([]byte{0, 1, 2, 3}, 500)

	r1, err := compress.CompressCached(cache, "dnapack", src)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Counters(); hits != 0 || misses != 1 {
		t.Fatalf("after cold run: %d hits %d misses", hits, misses)
	}
	r2, err := compress.CompressCached(cache, "dnapack", src)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Counters(); hits != 1 {
		t.Fatalf("warm run did not hit")
	}
	if !bytes.Equal(r1.Data, r2.Data) || r1.Bases != r2.Bases || r1.CompressStats != r2.CompressStats {
		t.Error("cached result differs from fresh result")
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}

	// Different content under the same codec must miss and round-trip
	// through the armored frame the cache now stores.
	other := append(append([]byte(nil), src...), 3)
	r3, err := compress.CompressCached(cache, "dnapack", other)
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := compress.SafeDecompress("dnapack", r3.Data, compress.Limits{})
	if err != nil || !bytes.Equal(restored, other) {
		t.Fatalf("second entry round-trip broken: %v", err)
	}
	if r3.PayloadBytes <= 0 || r3.PayloadBytes >= len(r3.Data) {
		t.Fatalf("PayloadBytes %d not inside frame of %d bytes", r3.PayloadBytes, len(r3.Data))
	}
}

func TestCompressCachedNilCache(t *testing.T) {
	src := bytes.Repeat([]byte{1, 0}, 100)
	r, err := compress.CompressCached(nil, "dnapack", src)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bases != len(src) {
		t.Errorf("Bases = %d, want %d", r.Bases, len(src))
	}
	if _, err := compress.CompressCached(nil, "no-such-codec", src); err == nil {
		t.Error("unknown codec accepted")
	}
}

// TestCacheConcurrentAccess hammers one cache from many goroutines over a
// few distinct inputs; run under -race this pins down the locking contract.
func TestCacheConcurrentAccess(t *testing.T) {
	cache := compress.NewCache()
	inputs := [][]byte{
		bytes.Repeat([]byte{0}, 400),
		bytes.Repeat([]byte{0, 1}, 300),
		bytes.Repeat([]byte{0, 1, 2, 3}, 200),
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				src := inputs[(w+i)%len(inputs)]
				r, err := compress.CompressCached(cache, "dnapack", src)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if r.Bases != len(src) {
					t.Errorf("worker %d: stale entry: %d bases for %d-base input", w, r.Bases, len(src))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if cache.Len() != len(inputs) {
		t.Errorf("cache holds %d entries, want %d", cache.Len(), len(inputs))
	}
	hits, misses := cache.Counters()
	if hits+misses != 8*20 {
		t.Errorf("hits+misses = %d, want %d", hits+misses, 8*20)
	}
}

// TestCacheGetReturnsPrivateCopy: a hit must hand out a private Data slice.
// The old bug returned the stored slice itself, so one caller's mutation
// (or reuse of the buffer) silently corrupted every later hit.
func TestCacheGetReturnsPrivateCopy(t *testing.T) {
	cache := compress.NewCache()
	src := bytes.Repeat([]byte{0, 1, 2, 3}, 256)
	orig, err := compress.CompressCached(cache, "dnapack", src)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), orig.Data...)

	hit1, ok := cache.Get(compress.ContentKey("dnapack", src))
	if !ok {
		t.Fatal("warm cache missed")
	}
	for i := range hit1.Data {
		hit1.Data[i] ^= 0xFF // scribble over the first hit's buffer
	}
	hit2, ok := cache.Get(compress.ContentKey("dnapack", src))
	if !ok {
		t.Fatal("warm cache missed")
	}
	if !bytes.Equal(hit2.Data, want) {
		t.Fatal("mutating one Get's Data corrupted the cached entry")
	}
}

// TestCompressCachedHitAliasing covers the same contract one level up:
// mutating a CompressCached hit's Data must not break later decompression.
func TestCompressCachedHitAliasing(t *testing.T) {
	cache := compress.NewCache()
	src := bytes.Repeat([]byte{3, 2, 1, 0}, 256)
	if _, err := compress.CompressCached(cache, "dnapack", src); err != nil {
		t.Fatal(err)
	}
	hit, err := compress.CompressCached(cache, "dnapack", src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hit.Data {
		hit.Data[i] = 0xAA
	}
	again, err := compress.CompressCached(cache, "dnapack", src)
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := compress.SafeDecompress("dnapack", again.Data, compress.Limits{})
	if err != nil || !bytes.Equal(restored, src) {
		t.Fatalf("cached entry no longer round-trips after a hit was mutated: %v", err)
	}
}
