package compress_test

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"

	"github.com/srl-nuces/ctxdna/internal/compress"

	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
)

// raggedReader builds a BlockReader whose last block is shorter than the
// block size — the ragged-tail shape where off-by-one ReadAt bugs live.
func raggedReader(t *testing.T, bases, blockSize int) (*compress.BlockReader, []byte) {
	t.Helper()
	src := blockSrc(bases)
	container, _, err := compress.BlockCompress("twobit", src, compress.BlockOptions{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	r, err := compress.OpenBlocks(container, compress.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return r, src
}

// TestReadAtContract pins BlockReader.ReadAt to the documented io.ReaderAt
// semantics over ragged-tail containers, via the standard library's own
// checkers: iotest.TestReader over an io.SectionReader covers sequential
// reads, seeks and EOF behavior for every window shape.
func TestReadAtContract(t *testing.T) {
	cases := []struct{ bases, blockSize int }{
		{1000, 64}, // ragged tail: 1000 % 64 != 0
		{777, 100}, // ragged tail, odd sizes
		{512, 64},  // exact multiple: no tail
		{63, 64},   // single short block
		{1, 64},    // single base
	}
	for _, tc := range cases {
		r, src := raggedReader(t, tc.bases, tc.blockSize)
		if err := iotest.TestReader(io.NewSectionReader(r, 0, int64(tc.bases)), src); err != nil {
			t.Errorf("bases=%d blockSize=%d: %v", tc.bases, tc.blockSize, err)
		}
		// A section starting mid-block and ending mid-tail.
		if tc.bases > 10 {
			off, n := int64(3), int64(tc.bases-7)
			if err := iotest.TestReader(io.NewSectionReader(r, off, n), src[off:off+n]); err != nil {
				t.Errorf("bases=%d blockSize=%d section [3, %d): %v", tc.bases, tc.blockSize, int64(3)+n, err)
			}
		}
	}
}

// TestReadAtEOFShapes pins the exact (n, err) pairs the io.ReaderAt
// contract specifies at and beyond the end of the symbol space.
func TestReadAtEOFShapes(t *testing.T) {
	const bases, blockSize = 1000, 64
	r, src := raggedReader(t, bases, blockSize)

	t.Run("short read at EOF returns n and io.EOF", func(t *testing.T) {
		p := make([]byte, 100)
		n, err := r.ReadAt(p, bases-30)
		if n != 30 || err != io.EOF {
			t.Fatalf("ReadAt(100 bytes, bases-30) = (%d, %v), want (30, io.EOF)", n, err)
		}
		if !bytes.Equal(p[:n], src[bases-30:]) {
			t.Fatal("short read returned wrong tail bytes")
		}
	})

	t.Run("empty read at off==bases returns (0, nil)", func(t *testing.T) {
		if n, err := r.ReadAt(nil, bases); n != 0 || err != nil {
			t.Fatalf("ReadAt(len 0, bases) = (%d, %v), want (0, nil)", n, err)
		}
	})

	t.Run("non-empty read at off==bases returns io.EOF", func(t *testing.T) {
		if n, err := r.ReadAt(make([]byte, 1), bases); n != 0 || err != io.EOF {
			t.Fatalf("ReadAt(len 1, bases) = (%d, %v), want (0, io.EOF)", n, err)
		}
	})

	t.Run("read past the end returns io.EOF", func(t *testing.T) {
		if n, err := r.ReadAt(make([]byte, 8), bases+50); n != 0 || err != io.EOF {
			t.Fatalf("ReadAt(len 8, bases+50) = (%d, %v), want (0, io.EOF)", n, err)
		}
	})

	t.Run("negative offset is an error, not a panic", func(t *testing.T) {
		if n, err := r.ReadAt(make([]byte, 8), -1); n != 0 || err == nil {
			t.Fatalf("ReadAt(len 8, -1) = (%d, %v), want (0, error)", n, err)
		}
	})

	t.Run("full read has no spurious EOF", func(t *testing.T) {
		p := make([]byte, 40)
		n, err := r.ReadAt(p, 0)
		if n != 40 || err != nil {
			t.Fatalf("ReadAt(40, 0) = (%d, %v), want (40, nil)", n, err)
		}
		if !bytes.Equal(p, src[:40]) {
			t.Fatal("wrong bytes")
		}
	})

	t.Run("read spanning the ragged tail boundary", func(t *testing.T) {
		// Block 15 starts at 960; the tail holds 40 bases. Read across it.
		p := make([]byte, 60)
		n, err := r.ReadAt(p, 930)
		if n != 60 || err != nil {
			t.Fatalf("ReadAt(60, 930) = (%d, %v), want (60, nil)", n, err)
		}
		if !bytes.Equal(p, src[930:990]) {
			t.Fatal("wrong bytes across the tail boundary")
		}
	})
}

// TestReadAtAgainstSectionReaderReads cross-checks ReadAt against
// io.SectionReader-driven sequential reads for many window shapes: both
// must restore the identical bytes Slice and Decompress agree on.
func TestReadAtAgainstSectionReaderReads(t *testing.T) {
	const bases, blockSize = 777, 100
	r, src := raggedReader(t, bases, blockSize)
	for _, w := range []struct{ off, n int }{
		{0, bases}, {0, 1}, {776, 1}, {700, 77}, {99, 2}, {100, 100}, {50, 650},
	} {
		sr := io.NewSectionReader(r, int64(w.off), int64(w.n))
		got, err := io.ReadAll(sr)
		if err != nil {
			t.Fatalf("window [%d,+%d): %v", w.off, w.n, err)
		}
		if !bytes.Equal(got, src[w.off:w.off+w.n]) {
			t.Errorf("window [%d,+%d) differs from the source slice", w.off, w.n)
		}
		sliced, _, err := r.Slice(w.off, w.n)
		if err != nil {
			t.Fatalf("Slice [%d,+%d): %v", w.off, w.n, err)
		}
		if !bytes.Equal(got, sliced) {
			t.Errorf("window [%d,+%d): ReadAt path differs from Slice", w.off, w.n)
		}
	}
}
