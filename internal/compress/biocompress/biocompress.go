// Package biocompress implements a BioCompress-2 style codec (Grumbach &
// Tahi — the first DNA-specific compressor, paper Table 1 row 1/2): exact
// direct and reverse-complement repeats encoded with *Fibonacci* codes for
// length and position, and order-2 arithmetic coding for the non-repeat
// regions.
//
// The stream has two length-prefixed sections reflecting that split:
//
//	uvarint baseCount
//	uvarint tokenSectionBytes
//	tokens  (bit stream): alternating literal-run / repeat records —
//	        Fibonacci(runLen+1) literals, then (unless the sequence is
//	        exhausted) one repeat descriptor: an orientation bit,
//	        Fibonacci(len-minRepeat+1) and Fibonacci(distance+1)
//	literals (range-coder stream): every literal base through an order-2
//	        context model, in order
//
// Decoding replays the token stream, pulling literal bases from the second
// section, so the two coding styles never interleave in one bit budget.
// Encoding runs rather than per-base flags keeps the literal overhead at
// ~0.001 bits/base instead of a ruinous 1 bit/base.
package biocompress

import (
	"encoding/binary"

	"github.com/srl-nuces/ctxdna/internal/arith"
	"github.com/srl-nuces/ctxdna/internal/bitio"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/fib"
	"github.com/srl-nuces/ctxdna/internal/match"
)

func init() {
	compress.Register("biocompress", func() compress.Codec { return New(Config{}) })
}

// Config tunes the codec; zero values select defaults.
type Config struct {
	MinRepeat int // minimum repeat length (default 24; Fibonacci headers are pricey)
	MaxChain  int
}

// DefaultMinRepeat reflects Fibonacci descriptor overhead: below ~24 bases a
// repeat descriptor (two Fibonacci codes + flags) rarely beats 2-bit coding.
const DefaultMinRepeat = 24

// Codec implements compress.Codec.
type Codec struct {
	cfg Config
}

// New returns a BioCompress-2 style codec.
func New(cfg Config) *Codec {
	if cfg.MinRepeat == 0 {
		cfg.MinRepeat = DefaultMinRepeat
	}
	if cfg.MinRepeat < match.DefaultK {
		cfg.MinRepeat = match.DefaultK
	}
	if cfg.MaxChain == 0 {
		cfg.MaxChain = match.DefaultMaxChain
	}
	return &Codec{cfg: cfg}
}

// Name implements compress.Codec.
func (*Codec) Name() string { return "biocompress" }

const (
	nsPerProbe = 8.0
	// startupNS models the fixed per-invocation cost of the measured
	// reference binary (process spawn, table/model allocation and zeroing,
	// I/O setup). Modest fixed table setup.
	startupNS    = 5_000_000
	nsPerExtend  = 2.0
	nsPerLiteral = 50.0
	nsPerMatch   = 150.0
	nsPerCopied  = 2.5
	nsPerSearch  = 55.0
	nsPerIndexed = 15.0
)

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	m := match.NewHashMatcher(src, match.WithMaxChain(c.cfg.MaxChain))
	tokens := bitio.NewWriter(len(src) / 16)
	lit := arith.NewSymbolModel(2)
	enc := arith.NewEncoder(len(src)/3 + 64)

	var literals, matches, copied int64
	run := uint64(0) // pending literal-run length
	i := 0
	for i < len(src) {
		if src[i] > 3 {
			return nil, compress.Stats{}, compress.Corruptf("biocompress: invalid symbol %d at %d", src[i], i)
		}
		m.Advance(i)
		mt, ok := m.FindBest(i)
		if ok && mt.Len >= c.cfg.MinRepeat && c.worthIt(mt, i) {
			if err := fib.Encode(tokens, run+1); err != nil {
				return nil, compress.Stats{}, err
			}
			run = 0
			if mt.RC {
				tokens.WriteBit(1)
			} else {
				tokens.WriteBit(0)
			}
			if err := fib.Encode(tokens, uint64(mt.Len-c.cfg.MinRepeat+1)); err != nil {
				return nil, compress.Stats{}, err
			}
			var dist int
			if mt.RC {
				dist = i - (mt.Src + mt.Len)
			} else {
				dist = i - mt.Src - 1
			}
			if err := fib.Encode(tokens, uint64(dist+1)); err != nil {
				return nil, compress.Stats{}, err
			}
			for t := 0; t < mt.Len; t++ {
				lit.Observe(src[i+t])
			}
			matches++
			copied += int64(mt.Len)
			i += mt.Len
			continue
		}
		run++
		lit.Encode(enc, src[i])
		literals++
		i++
	}
	if err := fib.Encode(tokens, run+1); err != nil {
		return nil, compress.Stats{}, err
	}

	tokenBytes := tokens.Bytes()
	litBytes := enc.Finish()
	var hdr [2 * binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(src)))
	hn += binary.PutUvarint(hdr[hn:], uint64(len(tokenBytes)))
	out := make([]byte, 0, hn+len(tokenBytes)+len(litBytes))
	out = append(out, hdr[:hn]...)
	out = append(out, tokenBytes...)
	out = append(out, litBytes...)

	ms := m.Stats()
	st := compress.Stats{
		WorkNS: startupNS + int64(nsPerProbe*float64(ms.Probes)+nsPerExtend*float64(ms.Extends)+
			nsPerSearch*float64(literals+matches)+nsPerIndexed*float64(len(src))+
			nsPerLiteral*float64(literals)+nsPerMatch*float64(matches)+nsPerCopied*float64(copied)),
		PeakMem: m.MemoryFootprint() + lit.MemoryFootprint() + len(src) + len(out),
	}
	return out, st, nil
}

// worthIt estimates whether the Fibonacci descriptor beats 2-bit literals.
func (c *Codec) worthIt(mt match.Match, pos int) bool {
	bits := 2 + fib.Len(uint64(mt.Len-c.cfg.MinRepeat+1)) + fib.Len(uint64(pos-mt.Src+1))
	return bits+4 < 2*mt.Len
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	nBases, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("biocompress: bad length header")
	}
	tokenLen, used2 := binary.Uvarint(data[used:])
	if used2 <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("biocompress: bad token-section header")
	}
	if nBases > 1<<34 || uint64(used+used2)+tokenLen > uint64(len(data)) {
		return nil, compress.Stats{}, compress.Corruptf("biocompress: sections overrun input")
	}
	tokens := bitio.NewReader(data[used+used2 : uint64(used+used2)+tokenLen])
	lit := arith.NewSymbolModel(2)
	dec := arith.NewDecoder(data[uint64(used+used2)+tokenLen:])

	out := make([]byte, 0, compress.HeaderPrealloc(nBases))
	var literals, matches, copied int64
	for uint64(len(out)) < nBases {
		runPlus1, err := fib.Decode(tokens)
		if err != nil {
			return nil, compress.Stats{}, compress.Corruptf("biocompress: token stream truncated: %v", err)
		}
		run := runPlus1 - 1
		if run > nBases-uint64(len(out)) {
			return nil, compress.Stats{}, compress.Corruptf("biocompress: literal run %d overruns output", run)
		}
		for j := uint64(0); j < run; j++ {
			b := lit.Decode(dec)
			out = append(out, b)
			literals++
		}
		if uint64(len(out)) >= nBases {
			break
		}
		rcBit, err := tokens.ReadBit()
		if err != nil {
			return nil, compress.Stats{}, compress.Corruptf("biocompress: truncated orientation: %v", err)
		}
		lv, err := fib.Decode(tokens)
		if err != nil {
			return nil, compress.Stats{}, compress.Corruptf("biocompress: truncated length: %v", err)
		}
		dv, err := fib.Decode(tokens)
		if err != nil {
			return nil, compress.Stats{}, compress.Corruptf("biocompress: truncated distance: %v", err)
		}
		l := int(lv) + c.cfg.MinRepeat - 1
		if l <= 0 || uint64(len(out))+uint64(l) > nBases {
			return nil, compress.Stats{}, compress.Corruptf("biocompress: repeat length %d overruns", l)
		}
		if rcBit == 1 {
			srcPos := len(out) - (int(dv) - 1) - l
			if srcPos < 0 {
				return nil, compress.Stats{}, compress.Corruptf("biocompress: RC source underrun")
			}
			for t := 0; t < l; t++ {
				b := 3 - (out[srcPos+l-1-t] & 3)
				out = append(out, b)
				lit.Observe(b)
			}
		} else {
			srcPos := len(out) - int(dv)
			if srcPos < 0 {
				return nil, compress.Stats{}, compress.Corruptf("biocompress: source underrun")
			}
			for t := 0; t < l; t++ {
				b := out[srcPos+t]
				out = append(out, b)
				lit.Observe(b)
			}
		}
		matches++
		copied += int64(l)
	}
	st := compress.Stats{
		WorkNS:  startupNS + int64(nsPerLiteral*float64(literals)+nsPerMatch*float64(matches)+nsPerCopied*float64(copied)),
		PeakMem: lit.MemoryFootprint() + len(data) + int(nBases),
	}
	return out, st, nil
}
