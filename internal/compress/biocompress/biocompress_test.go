package biocompress

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/seq"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestConformance(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{}) })
}

func TestConformanceLowThreshold(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{MinRepeat: 12}) })
}

func TestRepeatRichBeatsTwoBit(t *testing.T) {
	p := synth.Profile{Name: "rich", Length: 60000, GC: 0.4, RepeatProb: 0.025, RepeatMin: 40, RepeatMax: 800, RCFraction: 0.2, MutationRate: 0.003}
	compresstest.RatioUnder(t, New(Config{}), p, 42, 1.85)
}

func TestPalindromeExploited(t *testing.T) {
	p := synth.Profile{Length: 20000, GC: 0.5}
	half := p.Generate(9)
	full := append(append([]byte{}, half...), seq.ReverseComplement(half)...)
	c := New(Config{})
	fullOut, _, err := c.Compress(full)
	if err != nil {
		t.Fatal(err)
	}
	halfOut, _, err := c.Compress(half)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(fullOut)) > 1.1*float64(len(halfOut)) {
		t.Fatalf("palindrome not exploited: %d vs %d", len(fullOut), len(halfOut))
	}
}

func TestSectionFraming(t *testing.T) {
	// Corrupting the token-section length must fail cleanly, not panic.
	p := synth.Profile{Length: 5000, GC: 0.4, RepeatProb: 0.02, RepeatMin: 30, RepeatMax: 200}
	src := p.Generate(3)
	c := New(Config{})
	data, _, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, data...)
	bad[1] = 0xFF // inflate token-section varint
	if _, _, err := c.Decompress(bad[:4]); err == nil {
		t.Fatal("accepted truncated sections")
	}
}

func TestDecompressionCheaper(t *testing.T) {
	p := synth.Profile{Length: 40000, GC: 0.4, RepeatProb: 0.02, RepeatMin: 30, RepeatMax: 400, RCFraction: 0.2}
	src := p.Generate(4)
	c := New(Config{})
	data, cst, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	_, dst, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if dst.WorkNS >= cst.WorkNS {
		t.Fatalf("decompress work %d >= compress work %d", dst.WorkNS, cst.WorkNS)
	}
}

func BenchmarkCompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 17, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.2, MutationRate: 0.01}
	src := p.Generate(1)
	c := New(Config{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}
