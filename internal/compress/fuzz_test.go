package compress_test

import (
	"bytes"
	"errors"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/dnacompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnapack"
	_ "github.com/srl-nuces/ctxdna/internal/compress/xm"
)

// FuzzDecompressAll feeds arbitrary bytes to every registered codec's
// decompressor: none may panic, loop forever, or allocate absurdly; they
// either error or produce some output. Run `go test -fuzz FuzzDecompressAll
// ./internal/compress` for a longer campaign; the seeds below run in plain
// `go test`.
func FuzzDecompressAll(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))
	f.Add([]byte{16, 0, 0, 0, 0, 0})          // plausible tiny header
	f.Add([]byte{200, 200, 200, 200, 200, 1}) // huge varint length
	f.Add(append([]byte{40}, bytes.Repeat([]byte{0x55}, 100)...))
	// A valid dnax stream prefix with a corrupted tail.
	{
		c, err := compress.New("dnax")
		if err == nil {
			if data, _, err := c.Compress([]byte{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}); err == nil {
				data[len(data)-1] ^= 0xFF
				f.Add(data)
			}
		}
	}
	names := compress.Names()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		for _, name := range names {
			c, err := compress.New(name)
			if err != nil {
				t.Fatal(err)
			}
			out, _, err := c.Decompress(data)
			if err == nil && len(out) > 1<<26 {
				t.Fatalf("%s: decompressed %d bytes from %d-byte garbage", name, len(out), len(data))
			}
		}
	})
}

// FuzzCacheKey exercises the result-cache key path: identical content must
// hit, different content must miss, and a hit must never hand back a stale
// stream — the cached bytes always decompress to exactly the keyed content.
// Seeds are the standard-benchmark corpus names (chmpxx, humdyst, ...), the
// identifiers real sweeps hash file content under.
func FuzzCacheKey(f *testing.F) {
	for _, p := range synth.Benchmark() {
		f.Add([]byte(p.Name))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<12 {
			return
		}
		src := make([]byte, len(raw))
		for i, b := range raw {
			src[i] = b & 3
		}
		const codec = "dnapack"
		cache := compress.NewCache()

		r1, err := compress.CompressCached(cache, codec, src)
		if err != nil {
			t.Fatalf("cold compress: %v", err)
		}
		r2, err := compress.CompressCached(cache, codec, src)
		if err != nil {
			t.Fatalf("warm compress: %v", err)
		}
		hits, misses := cache.Counters()
		if hits != 1 || misses != 1 {
			t.Fatalf("same content: %d hits %d misses, want 1 and 1", hits, misses)
		}
		if !bytes.Equal(r1.Data, r2.Data) {
			t.Fatal("hit returned different bytes than the cold run")
		}
		// Never a stale round-trip: the cached frame restores src exactly
		// through the hardened decode path.
		restored, _, err := compress.SafeDecompress(codec, r2.Data, compress.Limits{})
		if err != nil {
			t.Fatalf("decompress cached stream: %v", err)
		}
		if !bytes.Equal(restored, src) {
			t.Fatalf("stale round-trip: %d bases keyed, %d restored", len(src), len(restored))
		}

		// Different content (one symbol flipped, or grown) must miss.
		other := append([]byte(nil), src...)
		if len(other) > 0 {
			other[0] ^= 1
		} else {
			other = []byte{1}
		}
		if _, err := compress.CompressCached(cache, codec, other); err != nil {
			t.Fatalf("compress variant: %v", err)
		}
		if _, misses := cache.Counters(); misses != 2 {
			t.Fatalf("different content: %d misses, want 2", misses)
		}
		if compress.ContentKey(codec, src) == compress.ContentKey(codec, other) {
			t.Fatal("distinct content mapped to one key")
		}
		if compress.ContentKey(codec, src) == compress.ContentKey("xm", src) {
			t.Fatal("distinct codecs share a key")
		}
	})
}

// FuzzFrameOpen hammers the armored-frame parser with arbitrary bytes: it
// must never panic, every rejection must be ErrCorrupt, and anything it
// accepts must reseal byte-identically — Open and SealSum are inverses, so
// no two distinct frames can parse to the same view.
func FuzzFrameOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(compress.FrameMagic))
	f.Add(compress.Seal("dnapack", []byte{0, 1, 2, 3}, []byte{9, 9}))
	f.Add(compress.Seal("xm", nil, nil))
	{
		b := compress.Seal("dnax", []byte{1, 2, 3}, bytes.Repeat([]byte{7}, 40))
		b[10] ^= 0x01
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		fr, err := compress.Open(data)
		if err != nil {
			if !errors.Is(err, compress.ErrCorrupt) {
				t.Fatalf("Open rejection %v is not ErrCorrupt", err)
			}
			return
		}
		resealed := compress.SealSum(fr.Codec, fr.Bases, fr.OutputSum, fr.Payload)
		if !bytes.Equal(resealed, data) {
			t.Fatalf("accepted frame does not reseal identically (%d vs %d bytes)", len(resealed), len(data))
		}
	})
}

// FuzzBlockContainerOpen hammers the multi-block container parser and the
// per-block decode path with arbitrary bytes: OpenBlocks must never panic
// and must reject with ErrCorrupt only; anything it accepts must survive a
// full Decompress and random Slice probes without panicking, failing only
// with ErrCorrupt. Seeds are valid containers plus the mutant classes the
// block corruption suite promoted: flipped frames, tampered indexes,
// reordered blocks and cross-block truncations.
func FuzzBlockContainerOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(compress.BlockMagic))
	f.Add([]byte("CXB1\x01\x07dnapack"))
	seedSrc := make([]byte, 700)
	for i := range seedSrc {
		seedSrc[i] = byte((i * 3) % 4)
	}
	for _, opts := range []compress.BlockOptions{{BlockSize: 100}, {BlockSize: 256}, {BlockSize: 1}} {
		if container, _, err := compress.BlockCompress("dnapack", seedSrc[:300], opts); err == nil {
			f.Add(container)
			// Promoted mutants: truncations at and inside frame boundaries,
			// a frame bit flip, and a header bit flip.
			f.Add(container[:len(container)-5])
			f.Add(container[:compress.BlockHeaderSize("dnapack")+3])
			flipped := append([]byte(nil), container...)
			flipped[len(flipped)-3] ^= 0x10
			f.Add(flipped)
			headerFlip := append([]byte(nil), container...)
			headerFlip[9] ^= 0x01
			f.Add(headerFlip)
		}
	}
	if container, _, err := compress.BlockCompress("xm", nil, compress.BlockOptions{BlockSize: 64}); err == nil {
		f.Add(container)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		lim := compress.Limits{MaxCompressed: 1 << 20, MaxOutput: 1 << 20}
		r, err := compress.OpenBlocks(data, lim)
		if err != nil {
			if !errors.Is(err, compress.ErrCorrupt) {
				t.Fatalf("OpenBlocks rejection %v is not ErrCorrupt", err)
			}
			return
		}
		out, _, err := r.Decompress()
		if err != nil {
			if !errors.Is(err, compress.ErrCorrupt) {
				t.Fatalf("Decompress rejection %v is not ErrCorrupt", err)
			}
			return
		}
		if len(out) != r.Bases() {
			t.Fatalf("Decompress returned %d symbols, header says %d", len(out), r.Bases())
		}
		// A container that decodes clean must serve seeks consistently.
		for _, probe := range [][2]int{{0, r.Bases()}, {r.Bases() / 2, r.Bases() - r.Bases()/2}} {
			got, _, err := r.Slice(probe[0], probe[1])
			if err != nil {
				t.Fatalf("Slice(%d, %d) failed after clean Decompress: %v", probe[0], probe[1], err)
			}
			if !bytes.Equal(got, out[probe[0]:probe[0]+probe[1]]) {
				t.Fatalf("Slice(%d, %d) differs from Decompress output", probe[0], probe[1])
			}
		}
	})
}

// FuzzRoundTripAll compresses arbitrary (masked) symbol sequences with every
// codec and demands exact reconstruction.
func FuzzRoundTripAll(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte("ACGTACGTACGTAAAA"))
	f.Add(bytes.Repeat([]byte{0, 1, 2, 3}, 200))
	f.Add(bytes.Repeat([]byte{3}, 1000))
	names := compress.Names()
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<14 {
			return
		}
		src := make([]byte, len(raw))
		for i, b := range raw {
			src[i] = b & 3
		}
		for _, name := range names {
			c, err := compress.New(name)
			if err != nil {
				t.Fatal(err)
			}
			data, _, err := c.Compress(src)
			if err != nil {
				t.Fatalf("%s: compress: %v", name, err)
			}
			got, _, err := c.Decompress(data)
			if err != nil {
				t.Fatalf("%s: decompress: %v", name, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s: round trip mismatch for %d bases", name, len(src))
			}
		}
	})
}
