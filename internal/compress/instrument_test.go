package compress

import (
	"errors"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// stubCodec is a trivial identity codec for exercising the instrumentation
// wrapper without depending on any registered codec package.
type stubCodec struct {
	compressErr   error
	decompressErr error
}

func (stubCodec) Name() string { return "stub" }

func (s stubCodec) Compress(src []byte) ([]byte, Stats, error) {
	if s.compressErr != nil {
		return nil, Stats{}, s.compressErr
	}
	return append([]byte(nil), src...), Stats{WorkNS: 2_000_000, PeakMem: 1024}, nil
}

func (s stubCodec) Decompress(data []byte) ([]byte, Stats, error) {
	if s.decompressErr != nil {
		return nil, Stats{}, s.decompressErr
	}
	return append([]byte(nil), data...), Stats{WorkNS: 1_000_000, PeakMem: 512}, nil
}

func counterValue(t *testing.T, reg *obs.Registry, name string, labels ...string) uint64 {
	t.Helper()
	return reg.Counter(name, "", labels...).Value()
}

func TestInstrumentRecords(t *testing.T) {
	reg := obs.NewRegistry()
	c := Instrument(reg, stubCodec{})
	if c.Name() != "stub" {
		t.Fatalf("Name = %q", c.Name())
	}
	src := []byte{0, 1, 2, 3, 0, 1, 2, 3}
	data, st, err := c.Compress(src)
	if err != nil || st.WorkNS != 2_000_000 {
		t.Fatalf("Compress: %v, %+v", err, st)
	}
	if _, _, err := c.Decompress(data); err != nil {
		t.Fatalf("Decompress: %v", err)
	}

	comp := []string{"codec", "stub", "op", "compress"}
	dec := []string{"codec", "stub", "op", "decompress"}
	if got := counterValue(t, reg, "dna_codec_calls_total", comp...); got != 1 {
		t.Errorf("compress calls = %d, want 1", got)
	}
	if got := counterValue(t, reg, "dna_codec_calls_total", dec...); got != 1 {
		t.Errorf("decompress calls = %d, want 1", got)
	}
	if got := counterValue(t, reg, "dna_codec_in_bytes_total", comp...); got != uint64(len(src)) {
		t.Errorf("in bytes = %d, want %d", got, len(src))
	}
	if got := counterValue(t, reg, "dna_codec_out_bytes_total", comp...); got != uint64(len(data)) {
		t.Errorf("out bytes = %d, want %d", got, len(data))
	}
	h := reg.Histogram("dna_codec_model_ms", "", obs.DefMSBuckets(), comp...)
	if h.Count() != 1 || h.Sum() != 2.0 {
		t.Errorf("model_ms = count %d sum %v, want 1 / 2.0", h.Count(), h.Sum())
	}
	if got := reg.Gauge("dna_codec_peak_mem_bytes", "", comp...).Value(); got != 1024 {
		t.Errorf("peak mem = %v, want 1024", got)
	}
}

func TestInstrumentErrorTaxonomy(t *testing.T) {
	reg := obs.NewRegistry()
	comp := []string{"codec", "stub", "op", "compress"}

	corrupt := Instrument(reg, stubCodec{compressErr: Corruptf("bad frame")})
	if _, _, err := corrupt.Compress([]byte{1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if got := counterValue(t, reg, "dna_codec_corrupt_total", comp...); got != 1 {
		t.Errorf("corrupt = %d, want 1", got)
	}
	if got := counterValue(t, reg, "dna_codec_failures_total", comp...); got != 0 {
		t.Errorf("failures = %d, want 0", got)
	}

	failing := Instrument(reg, stubCodec{compressErr: errors.New("disk on fire")})
	if _, _, err := failing.Compress([]byte{1}); err == nil {
		t.Fatal("want error")
	}
	if got := counterValue(t, reg, "dna_codec_failures_total", comp...); got != 1 {
		t.Errorf("failures = %d, want 1", got)
	}
	// Failed ops never book output bytes or modeled cost.
	if got := counterValue(t, reg, "dna_codec_out_bytes_total", comp...); got != 0 {
		t.Errorf("out bytes after failures = %d, want 0", got)
	}
}

func TestInstrumentNoDoubleWrap(t *testing.T) {
	reg := obs.NewRegistry()
	c := Instrument(reg, stubCodec{})
	if Instrument(reg, c) != c {
		t.Fatal("Instrument re-wrapped an instrumented codec")
	}
	if Instrument(reg, nil) != nil {
		t.Fatal("Instrument(nil) != nil")
	}
}

func TestCacheObservedCounters(t *testing.T) {
	reg := obs.NewRegistry()
	cache := NewCacheObserved(reg)
	src := []byte{0, 1, 2, 3}
	// twobit-free path: exercise cache counters directly via Put/Get.
	k := ContentKey("stub", src)
	if _, ok := cache.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	cache.Put(k, Result{Data: []byte{1}, Bases: len(src)})
	if _, ok := cache.Get(k); !ok {
		t.Fatal("stored entry missed")
	}
	cache.noteVerifyFailure()

	for name, want := range map[string]uint64{
		"dna_cache_hits_total":            1,
		"dna_cache_misses_total":          1,
		"dna_cache_stores_total":          1,
		"dna_cache_verify_failures_total": 1,
	} {
		if got := counterValue(t, reg, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	hits, misses := cache.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("Counters = %d/%d, want 1/1", hits, misses)
	}
}

func TestNilCacheVerifyFailureNoop(t *testing.T) {
	var c *Cache
	c.noteVerifyFailure() // must not panic
}
