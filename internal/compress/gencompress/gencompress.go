// Package gencompress implements the GenCompress algorithm (Chen, Kwong &
// Li — the paper's reference [14] lineage): substitution compression via
// *approximate* repeats. At each position the encoder enumerates candidate
// anchors in the processed prefix, extends every candidate with bounded
// edit operations (insert / delete / replace, GenCompress-2) or with
// substitutions only (Hamming distance, GenCompress-1), scores the encoded
// cost of each resulting approximate repeat, and emits the winner when it
// undercuts literal coding; otherwise a literal goes through an order-2
// arithmetic coder.
//
// This candidate × extension search is exactly why GenCompress posts the
// best compression ratios but the worst compression times in the paper's
// Figure 5 — and why its decompression (a mere replay of edit scripts) is
// fast, near DNAX's.
//
// Stream layout after a uvarint base-count header (one range-coder stream):
//
//	token   : flag bit (0 literal / 1 repeat)
//	literal : symbol through order-2 context model
//	repeat  : distance-1      (UintModel)
//	          tlen - minLen   (UintModel)
//	          opCount         (UintModel)
//	          ops             (kind: 2 adaptive bits; delta-offset: UintModel;
//	                           base for sub/ins: 2 adaptive bits)
package gencompress

import (
	"encoding/binary"

	"github.com/srl-nuces/ctxdna/internal/arith"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/match"
)

func init() {
	compress.Register("gencompress", func() compress.Codec { return New(Config{}) })
}

// Config tunes the search. Zero values select the defaults.
type Config struct {
	// Mode1 selects GenCompress-1 (Hamming distance: substitutions only).
	// Default is GenCompress-2 (full edit operations).
	Mode1 bool
	// MaxCandidates bounds how many anchors are approximately extended per
	// position; the dominant time knob (ablated in the bench suite).
	MaxCandidates int
	// MinLen is the minimum approximate-repeat length worth a descriptor.
	MinLen int
	// SeedK is the anchor k-mer length. GenCompress uses *short* seeds
	// (default 6) so that mutated repeats still anchor somewhere — the
	// faithful reproduction of its near-exhaustive prefix search, and the
	// reason its candidate lists (and compression times) dwarf DNAX's.
	SeedK int
	// Approx bounds the per-repeat edit search.
	Approx match.ApproxConfig
}

// Defaults.
const (
	DefaultMaxCandidates = 8
	DefaultMinLen        = 16
	DefaultSeedK         = 6
)

// Codec implements compress.Codec.
type Codec struct {
	cfg Config
}

// New returns a GenCompress codec.
func New(cfg Config) *Codec {
	if cfg.MaxCandidates == 0 {
		cfg.MaxCandidates = DefaultMaxCandidates
	}
	if cfg.MinLen == 0 {
		cfg.MinLen = DefaultMinLen
	}
	if cfg.SeedK == 0 {
		cfg.SeedK = DefaultSeedK
	}
	if cfg.MinLen < cfg.SeedK {
		cfg.MinLen = cfg.SeedK
	}
	if cfg.Approx == (match.ApproxConfig{}) {
		cfg.Approx = match.DefaultApproxConfig()
	}
	cfg.Approx.HammingOnly = cfg.Mode1
	return &Codec{cfg: cfg}
}

// Name implements compress.Codec.
func (*Codec) Name() string { return "gencompress" }

// Cost-model weights calibrated against this package's benchmarks; the
// candidate loop is charged per probe and per extension comparison, which is
// where GenCompress's time goes.
const (
	nsPerProbe = 10.0
	// startupNS models the fixed per-invocation cost of the measured
	// reference binary (process spawn, table/model allocation and zeroing,
	// I/O setup). GenCompress's tables grow with the input, so its
	// fixed cost is small.
	startupNS    = 3_000_000
	nsPerExtend  = 4.0
	nsPerLiteral = 55.0
	nsPerMatch   = 320.0
	nsPerOp      = 90.0
	nsPerCopied  = 4.0
	nsPerSearch  = 80.0
	nsPerIndexed = 15.0

	// implFactor models the research-grade reference implementation the
	// paper actually benchmarked: the original GenCompress executable keeps
	// no k-mer index at all — it scans the processed prefix per position —
	// and is unoptimized throughout (per-symbol dispatch, unbuffered I/O).
	// It runs several times slower than the algorithmic operation count of
	// this re-implementation implies; the paper's timings are of that
	// binary, so the deterministic model carries the factor. DNAX's
	// reference tool ("a simple and FAST dna compressor") needs none.
	implFactor = 4.0
)

func bitLen32(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// score estimates the bit gain of emitting am at position pos: bases covered
// at ~2 bits each minus the descriptor cost.
func (c *Codec) score(am match.ApproxMatch, pos int) int {
	if am.TLen < c.cfg.MinLen {
		return -1
	}
	dist := pos - am.Src
	cost := 2 + 2*bitLen32(dist) + 2*bitLen32(am.TLen-c.cfg.MinLen+1) + 2*bitLen32(len(am.Ops)+1)
	for range am.Ops {
		cost += 2 + 4 + 2 // kind + delta + base, rough adaptive averages
	}
	return 2*am.TLen - cost - 8
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(src)))

	m := match.NewHashMatcher(src, match.WithK(c.cfg.SeedK), match.WithMaxChain(2*c.cfg.MaxCandidates))
	lit := arith.NewSymbolModel(2)
	flag := arith.NewProb()
	distM := arith.NewUintModel()
	lenM := arith.NewUintModel()
	opCountM := arith.NewUintModel()
	opOffM := arith.NewUintModel()
	kindProbs := arith.NewProbSlice(2)
	baseProbs := arith.NewProbSlice(2)
	enc := arith.NewEncoder(len(src)/3 + 64)

	var searchStats match.Stats
	var literals, matches, copied, opsEmitted int64

	i := 0
	for i < len(src) {
		if src[i] > 3 {
			return nil, compress.Stats{}, compress.Corruptf("gencompress: invalid symbol %d at %d", src[i], i)
		}
		m.Advance(i)

		var best match.ApproxMatch
		bestScore := 0
		cands := 0
		m.ForEachForwardAnchor(i, func(j int) bool {
			// The source must be fully processed for an edit-script replay.
			am := match.ExtendApprox(src, j, i, m.K(), c.cfg.Approx, &searchStats)
			if s := c.score(am, i); s > bestScore {
				best, bestScore = am, s
			}
			cands++
			return cands < c.cfg.MaxCandidates
		})

		if bestScore > 0 {
			enc.EncodeBit(&flag, 1)
			distM.Encode(enc, uint64(i-best.Src-1))
			lenM.Encode(enc, uint64(best.TLen-c.cfg.MinLen))
			opCountM.Encode(enc, uint64(len(best.Ops)))
			prevOff := 0
			for _, op := range best.Ops {
				encodeOpKind(enc, kindProbs, op.Kind)
				opOffM.Encode(enc, uint64(op.Off-prevOff))
				prevOff = op.Off
				if op.Kind != match.OpDel {
					enc.EncodeBit(&baseProbs[0], int(op.Base>>1))
					enc.EncodeBit(&baseProbs[1], int(op.Base&1))
				}
			}
			for t := 0; t < best.TLen; t++ {
				lit.Observe(src[i+t])
			}
			matches++
			copied += int64(best.TLen)
			opsEmitted += int64(len(best.Ops))
			i += best.TLen
			continue
		}
		enc.EncodeBit(&flag, 0)
		lit.Encode(enc, src[i])
		literals++
		i++
	}
	payload := enc.Finish()
	out := make([]byte, 0, hn+len(payload))
	out = append(out, hdr[:hn]...)
	out = append(out, payload...)

	ms := m.Stats()
	searchStats.Probes += ms.Probes
	searchStats.Extends += ms.Extends
	st := compress.Stats{
		WorkNS: startupNS + int64(implFactor*(nsPerProbe*float64(searchStats.Probes)+nsPerExtend*float64(searchStats.Extends)+
			nsPerSearch*float64(literals+matches)+nsPerIndexed*float64(len(src))+
			nsPerLiteral*float64(literals)+nsPerMatch*float64(matches)+
			nsPerOp*float64(opsEmitted)+nsPerCopied*float64(copied))),
		// The approximate-repeat search keeps per-candidate extension state
		// and scoring buffers alive alongside the chain tables — the "RAM
		// usage of GenCompress is high" observation.
		PeakMem: m.MemoryFootprint() + lit.MemoryFootprint() + 2*len(src) + len(out) +
			5*distM.MemoryFootprint(),
	}
	return out, st, nil
}

// encodeOpKind writes the op kind with two adaptive bits: first "is sub?",
// then (if not) "is ins?".
func encodeOpKind(e *arith.Encoder, probs []arith.Prob, k match.OpKind) {
	if k == match.OpSub {
		e.EncodeBit(&probs[0], 0)
		return
	}
	e.EncodeBit(&probs[0], 1)
	if k == match.OpIns {
		e.EncodeBit(&probs[1], 0)
	} else {
		e.EncodeBit(&probs[1], 1)
	}
}

func decodeOpKind(d *arith.Decoder, probs []arith.Prob) match.OpKind {
	if d.DecodeBit(&probs[0]) == 0 {
		return match.OpSub
	}
	if d.DecodeBit(&probs[1]) == 0 {
		return match.OpIns
	}
	return match.OpDel
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	nBases, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("gencompress: bad length header")
	}
	if nBases > 1<<34 {
		return nil, compress.Stats{}, compress.Corruptf("gencompress: implausible length %d", nBases)
	}
	lit := arith.NewSymbolModel(2)
	flag := arith.NewProb()
	distM := arith.NewUintModel()
	lenM := arith.NewUintModel()
	opCountM := arith.NewUintModel()
	opOffM := arith.NewUintModel()
	kindProbs := arith.NewProbSlice(2)
	baseProbs := arith.NewProbSlice(2)
	dec := arith.NewDecoder(data[used:])

	out := make([]byte, 0, compress.HeaderPrealloc(nBases))
	var literals, matches, copied, opsReplayed int64
	for uint64(len(out)) < nBases {
		if dec.DecodeBit(&flag) == 0 {
			out = append(out, lit.Decode(dec))
			literals++
			continue
		}
		dist := int(distM.Decode(dec)) + 1
		srcPos := len(out) - dist
		tlen := int(lenM.Decode(dec)) + c.cfg.MinLen
		nOps := int(opCountM.Decode(dec))
		if srcPos < 0 || tlen <= 0 || uint64(len(out))+uint64(tlen) > nBases || nOps > tlen+c.cfg.Approx.MaxOps+1 {
			return nil, compress.Stats{}, compress.Corruptf("gencompress: repeat descriptor out of range (src %d len %d ops %d)", srcPos, tlen, nOps)
		}
		// nOps is bounded only by tlen, itself bounded only by the header's
		// nBases claim — commit memory as ops actually decode, not up front.
		ops := make([]match.EditOp, 0, min(nOps, 4096))
		prevOff := 0
		for oi := 0; oi < nOps; oi++ {
			kind := decodeOpKind(dec, kindProbs)
			off := prevOff + int(opOffM.Decode(dec))
			prevOff = off
			op := match.EditOp{Kind: kind, Off: off}
			if kind != match.OpDel {
				hi := dec.DecodeBit(&baseProbs[0])
				lo := dec.DecodeBit(&baseProbs[1])
				op.Base = byte(hi<<1 | lo)
			}
			if off > tlen {
				return nil, compress.Stats{}, compress.Corruptf("gencompress: op offset %d beyond repeat length %d", off, tlen)
			}
			ops = append(ops, op)
		}
		// Replay the edit script against the already-produced output.
		start := len(out)
		s := srcPos
		opIdx := 0
		for len(out)-start < tlen {
			if opIdx < len(ops) && ops[opIdx].Off == len(out)-start {
				op := ops[opIdx]
				opIdx++
				switch op.Kind {
				case match.OpSub:
					out = append(out, op.Base)
					lit.Observe(op.Base)
					s++
				case match.OpIns:
					out = append(out, op.Base)
					lit.Observe(op.Base)
				case match.OpDel:
					s++
				}
				continue
			}
			if s < 0 || s >= start {
				return nil, compress.Stats{}, compress.Corruptf("gencompress: edit replay source %d escapes processed region", s)
			}
			b := out[s]
			out = append(out, b)
			lit.Observe(b)
			s++
		}
		matches++
		copied += int64(tlen)
		opsReplayed += int64(nOps)
	}
	st := compress.Stats{
		WorkNS: startupNS + int64(implFactor*(nsPerLiteral*float64(literals)+nsPerMatch*float64(matches)+
			nsPerOp*float64(opsReplayed)+nsPerCopied*float64(copied))),
		PeakMem: lit.MemoryFootprint() + len(data) + int(nBases) + 5*distM.MemoryFootprint(),
	}
	return out, st, nil
}
