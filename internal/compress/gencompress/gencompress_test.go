package gencompress

import (
	"math/rand"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/match"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestConformanceMode2(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{}) })
}

func TestConformanceMode1(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{Mode1: true}) })
}

func TestConformanceFewCandidates(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{MaxCandidates: 2}) })
}

func TestApproxRepeatsBeatExactOnMutatedDNA(t *testing.T) {
	// On sequences whose repeats carry point mutations, GenCompress must
	// compress better than an exact-only parse would: compare against
	// forcing zero edit budget.
	p := synth.Profile{Length: 60000, GC: 0.4, RepeatProb: 0.03, RepeatMin: 40, RepeatMax: 600, RCFraction: 0, MutationRate: 0.02}
	src := p.Generate(77)
	full := New(Config{})
	exactOnly := match.DefaultApproxConfig()
	exactOnly.MaxOps = 1 // descriptor overhead makes 0 unrepresentable; 1 op ~ exact-ish
	noEdit := New(Config{Approx: exactOnly})
	withOut, _, err := full.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	withoutOut, _, err := noEdit.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(withOut) >= len(withoutOut) {
		t.Fatalf("edit ops gained nothing: %d vs %d bytes", len(withOut), len(withoutOut))
	}
}

func TestMutatedCopyCompressesNearReference(t *testing.T) {
	// The 99.9 % intra-species case: second half = first half with 0.1 %
	// substitutions. GenCompress should encode the second half at a tiny
	// fraction of 2 bits/base.
	p := synth.Profile{Length: 40000, GC: 0.45}
	first := p.Generate(5)
	second := append([]byte{}, first...)
	rng := rand.New(rand.NewSource(6))
	for i := range second {
		if rng.Float64() < 0.001 {
			second[i] = (second[i] + byte(1+rng.Intn(3))) & 3
		}
	}
	full := append(append([]byte{}, first...), second...)
	c := New(Config{})
	wholeOut, _, err := c.Compress(full)
	if err != nil {
		t.Fatal(err)
	}
	halfOut, _, err := c.Compress(first)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the input with a near-identical copy should cost < 15 % more.
	if float64(len(wholeOut)) > 1.15*float64(len(halfOut)) {
		t.Fatalf("mutated copy not exploited: %d vs %d bytes", len(wholeOut), len(halfOut))
	}
}

func TestCompressionSlowerThanDecompression(t *testing.T) {
	// The paper's defining GenCompress trait: the candidate×extension search
	// makes compression far more expensive than the edit-script replay.
	p := synth.Profile{Length: 50000, GC: 0.4, RepeatProb: 0.02, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.015}
	src := p.Generate(8)
	c := New(Config{})
	data, cst, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	_, dst, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if cst.WorkNS < 3*dst.WorkNS {
		t.Fatalf("compress work %d not >= 3x decompress work %d", cst.WorkNS, dst.WorkNS)
	}
}

func TestMoreCandidatesNeverWorseRatio(t *testing.T) {
	p := synth.Profile{Length: 30000, GC: 0.4, RepeatProb: 0.025, RepeatMin: 25, RepeatMax: 500, MutationRate: 0.02}
	src := p.Generate(12)
	small, _, err := New(Config{MaxCandidates: 1}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	large, _, err := New(Config{MaxCandidates: 48}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	// A wider search may only help (first-anchor parse is a subset).
	if len(large) > len(small)+len(small)/50 {
		t.Fatalf("wider search hurt ratio: %d vs %d", len(large), len(small))
	}
}

func TestRejectsInvalidSymbol(t *testing.T) {
	if _, _, err := New(Config{}).Compress([]byte{0, 5}); err == nil {
		t.Fatal("accepted invalid symbol")
	}
}

func TestRejectsEmptyStream(t *testing.T) {
	if _, _, err := New(Config{}).Decompress(nil); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func BenchmarkCompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 17, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.01}
	src := p.Generate(1)
	c := New(Config{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 17, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.01}
	src := p.Generate(1)
	c := New(Config{})
	data, _, err := c.Compress(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Decompress(data); err != nil {
			b.Fatal(err)
		}
	}
}
