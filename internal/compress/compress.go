// Package compress defines the codec abstraction shared by every compression
// algorithm in this repository and a registry through which the framework,
// the experiment grid and the CLI tools enumerate them.
//
// All codecs operate on nucleotide symbol sequences (values 0..3, package
// seq). Codecs that internally work on text — gzip compresses the ASCII
// FASTA bytes exactly as the paper's NCBI pipeline did — perform their own
// conversion.
//
// Alongside the compressed bytes, codecs report deterministic cost
// statistics: a modeled work figure (nanoseconds of single-threaded
// execution on a 2400 MHz reference core, the paper's i5 machine) and the
// peak size of their working state. The cloud layer scales these into
// simulated contexts; the benchmark harness cross-checks the model against
// real wall-clock measurements.
package compress

import (
	"errors"
	"fmt"
	"sort"
)

// ReferenceMHz is the CPU speed the WorkNS figures are calibrated against:
// the 2.4 GHz i5 that hosted the paper's experiments.
const ReferenceMHz = 2400

// Stats reports the deterministic cost of one codec operation.
type Stats struct {
	// WorkNS is modeled single-thread execution time on the reference core.
	WorkNS int64
	// PeakMem is the peak working-state size in bytes (models, match
	// tables, buffers) — the quantity behind the paper's RAM_USED variable.
	PeakMem int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.WorkNS += other.WorkNS
	if other.PeakMem > s.PeakMem {
		s.PeakMem = other.PeakMem
	}
}

// Codec is a DNA sequence compressor.
type Codec interface {
	// Name returns the registry identifier ("dnax", "gencompress", ...).
	Name() string
	// Compress encodes a symbol sequence (codes 0..3) into a self-framing
	// byte stream.
	Compress(src []byte) ([]byte, Stats, error)
	// Decompress restores the exact symbol sequence from a stream produced
	// by the same codec.
	Decompress(data []byte) ([]byte, Stats, error)
}

// ErrCorrupt reports a malformed or truncated compressed stream.
var ErrCorrupt = errors.New("compress: corrupt stream")

// Corruptf wraps ErrCorrupt with detail.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Ratio returns the compression ratio original/compressed in bits per base
// terms: bits of output per input base. Lower is better; the floor for a
// 4-letter alphabet without repeats is 2.0.
func Ratio(originalBases, compressedBytes int) float64 {
	if originalBases == 0 {
		return 0
	}
	return float64(compressedBytes*8) / float64(originalBases)
}

// registry maps codec name to constructor. Constructors return fresh codec
// instances so that concurrent experiments never share adaptive state.
var registry = map[string]func() Codec{}

// Register adds a codec constructor under its name. It panics on duplicate
// registration — codecs register from init functions, so a duplicate is a
// programming error worth failing loudly on.
func Register(name string, ctor func() Codec) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("compress: duplicate codec %q", name))
	}
	registry[name] = ctor
}

// ErrUnknownCodec reports a codec name absent from the registry. Decode
// paths that reach it with a name taken from an untrusted container re-wrap
// it as ErrCorrupt (the name is attacker-controlled data there, not caller
// API misuse).
var ErrUnknownCodec = errors.New("compress: unknown codec")

// New returns a fresh instance of the named codec.
func New(name string) (Codec, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownCodec, name, Names())
	}
	return ctor(), nil
}

// Names returns all registered codec names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PaperSet returns fresh instances of the four algorithms the paper
// evaluates, in the order the paper lists them: CTW, DNAX, GenCompress,
// Gzip. It panics if any of them failed to register, which would mean the
// build is missing a codec package import.
func PaperSet() []Codec {
	names := []string{"ctw", "dnax", "gencompress", "gzip"}
	out := make([]Codec, len(names))
	for i, n := range names {
		c, err := New(n)
		if err != nil {
			panic(err)
		}
		out[i] = c
	}
	return out
}
