package compress

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// Result is one cached compression outcome: the sealed armored frame plus
// the modeled cost of producing and reversing it. Entries are only stored
// after a verified round-trip, so a cache hit is as trustworthy as a fresh
// run.
type Result struct {
	// Data is the sealed armored frame (Seal output): header, checksums and
	// codec payload, ready to write to disk or ship over a store. Both Put
	// and Get copy it, so a caller may mutate the slice it holds without
	// corrupting other callers.
	Data []byte
	// PayloadBytes is the codec payload size inside the frame — the
	// compressed-size figure grids and reports quote, armor overhead
	// excluded.
	PayloadBytes int
	// Bases is the original sequence length, kept as a collision tripwire.
	Bases         int
	CompressStats Stats
	DecompStats   Stats
	// BlockIndex is the per-block frame index when Data is a multi-block
	// container (BlockCompressCached), nil for single-frame results. Like
	// Data, it is copied on Put and Get, so callers may mutate it freely.
	BlockIndex []BlockEntry
}

// copySlices replaces r's slice fields with private copies — the aliasing
// barrier between the stored entry and every caller.
func (r *Result) copySlices() {
	r.Data = append([]byte(nil), r.Data...)
	if r.BlockIndex != nil {
		r.BlockIndex = append([]BlockEntry(nil), r.BlockIndex...)
	}
}

// Key identifies a cache entry: codec identity × content hash. Two inputs
// with the same bytes share an entry under the same codec and never across
// codecs.
type Key struct {
	Codec string
	Sum   [sha256.Size]byte
}

// ContentKey builds the cache key for compressing src with the named codec.
func ContentKey(codec string, src []byte) Key {
	return Key{Codec: codec, Sum: sha256.Sum256(src)}
}

// Cache is a concurrency-safe, content-addressed store of compression
// results. Repeated sweeps over the same corpus (figure regeneration, weight
// sweeps, batch jobs with duplicate inputs) hit it instead of recompressing.
type Cache struct {
	mu     sync.RWMutex
	m      map[Key]Result
	hits   uint64
	misses uint64
	met    cacheMetrics
}

// cacheMetrics mirrors the cache's lifetime counters into a metrics
// registry so sweeps expose hit rates next to codec and grid figures.
type cacheMetrics struct {
	hits           *obs.Counter
	misses         *obs.Counter
	stores         *obs.Counter
	verifyFailures *obs.Counter
}

func newCacheMetrics(reg *obs.Registry) cacheMetrics {
	reg = obs.OrDefault(reg)
	return cacheMetrics{
		hits:           reg.Counter("dna_cache_hits_total", "Compression cache hits."),
		misses:         reg.Counter("dna_cache_misses_total", "Compression cache misses."),
		stores:         reg.Counter("dna_cache_stores_total", "Entries stored in the compression cache."),
		verifyFailures: reg.Counter("dna_cache_verify_failures_total", "Round-trip verifications that failed before caching."),
	}
}

// NewCache returns an empty cache reporting into the default metrics
// registry.
func NewCache() *Cache {
	return NewCacheObserved(nil)
}

// NewCacheObserved returns an empty cache reporting its hit/miss/store and
// verify-failure counters into reg (nil means the default registry).
func NewCacheObserved(reg *obs.Registry) *Cache {
	return &Cache{m: make(map[Key]Result), met: newCacheMetrics(reg)}
}

// Get returns the entry for k, counting a hit or miss. Nil caches always
// miss, so callers can thread an optional cache without nil checks.
func (c *Cache) Get(k Key) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[k]
	if ok {
		c.hits++
		c.met.hits.Inc()
	} else {
		c.misses++
		c.met.misses.Inc()
	}
	// Hand out private copies: the stored entry outlives any single
	// caller, and a shared slice — the frame bytes or the block index —
	// would let one caller's mutation corrupt every later hit. The copy
	// sits on the unconditional path so copydiscipline can prove every
	// return is alias-free (a miss copies a zero Result: free).
	r.copySlices()
	return r, ok
}

// Put stores r under k, copying the compressed bytes and any block index
// so later caller-side mutation cannot corrupt the entry. Nil caches drop
// the entry.
func (c *Cache) Put(k Key, r Result) {
	if c == nil {
		return
	}
	r.copySlices()
	c.mu.Lock()
	c.m[k] = r
	c.mu.Unlock()
	c.met.stores.Inc()
}

// noteVerifyFailure counts a pre-cache round-trip verification failure.
// Nil caches drop the count along with the entry they would have stored.
func (c *Cache) noteVerifyFailure() {
	if c == nil {
		return
	}
	c.met.verifyFailures.Inc()
}

// Len reports the number of stored entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Counters reports lifetime hits and misses.
func (c *Cache) Counters() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// CompressCached returns the cached result for (codec, src) or compresses
// src with a fresh codec instance, seals the stream into an armored frame,
// verifies the round-trip byte-for-byte through the hardened decode path,
// stores the outcome, and returns it. cache may be nil (always compresses).
// Codec metrics land in the default registry; use CompressObserved to aim
// them at a specific one.
func CompressCached(cache *Cache, codecName string, src []byte) (Result, error) {
	return CompressObserved(nil, cache, codecName, src)
}

// CompressObserved is CompressCached recording per-codec operation metrics
// into reg (nil means the default registry). Codec op metrics are recorded
// only on cache misses — the only time the codec actually runs — while the
// cache's own counters track the hit/miss split.
func CompressObserved(reg *obs.Registry, cache *Cache, codecName string, src []byte) (Result, error) {
	key := ContentKey(codecName, src)
	if r, ok := cache.Get(key); ok && r.Bases == len(src) {
		return r, nil
	}
	c, err := New(codecName)
	if err != nil {
		return Result{}, err
	}
	data, cst, err := c.Compress(src)
	ObserveCompress(reg, codecName, len(src), len(data), cst, err)
	if err != nil {
		return Result{}, err
	}
	frame := Seal(codecName, src, data)
	// Verifying through SafeDecompress exercises the exact path a receiver
	// runs, so a cached frame is known to open, decode and checksum clean.
	restored, dst, err := SafeDecompress(codecName, frame, Limits{MaxCompressed: -1, MaxOutput: -1})
	ObserveDecompress(reg, codecName, len(frame), len(restored), dst, err)
	if err != nil {
		cache.noteVerifyFailure()
		return Result{}, fmt.Errorf("decompress: %w", err)
	}
	if !bytes.Equal(restored, src) {
		cache.noteVerifyFailure()
		return Result{}, fmt.Errorf("round-trip mismatch: %d bases in, %d out", len(src), len(restored))
	}
	r := Result{Data: frame, PayloadBytes: len(data), Bases: len(src), CompressStats: cst, DecompStats: dst}
	cache.Put(key, r)
	return r, nil
}

// BlockContentKey builds the cache key for block-compressing src with the
// named codec at the given block size. The block size is part of the key's
// codec axis: the same content at two block granularities yields two
// distinct containers, and a whole-slice result (ContentKey) never aliases
// a block-engine result for the same codec and bytes.
func BlockContentKey(codec string, blockSize int, src []byte) Key {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	return Key{Codec: fmt.Sprintf("%s/cxb1:%d", codec, blockSize), Sum: sha256.Sum256(src)}
}

// BlockCompressCached is CompressCached for the block engine: it returns
// the cached multi-block container for (codec, block size, src) or builds
// one through BlockCompress, verifies the full round trip through the
// validated open path, stores the outcome (container bytes plus per-block
// index), and returns it. cache may be nil (always compresses).
func BlockCompressCached(cache *Cache, codecName string, src []byte, opts BlockOptions) (Result, error) {
	return BlockCompressObservedCached(nil, cache, codecName, src, opts)
}

// BlockCompressObservedCached is BlockCompressCached recording block-engine
// metrics into reg (nil means the default registry).
func BlockCompressObservedCached(reg *obs.Registry, cache *Cache, codecName string, src []byte, opts BlockOptions) (Result, error) {
	key := BlockContentKey(codecName, opts.BlockSize, src)
	if r, ok := cache.Get(key); ok && r.Bases == len(src) {
		return r, nil
	}
	container, cst, err := BlockCompressObserved(reg, codecName, src, opts)
	if err != nil {
		return Result{}, err
	}
	// Verifying through the open path exercises exactly what a receiver
	// runs: header/index validation, per-block hardened decode, and the
	// whole-output checksum.
	rd, err := OpenBlocksObserved(reg, container, Limits{MaxCompressed: -1, MaxOutput: -1})
	if err != nil {
		cache.noteVerifyFailure()
		return Result{}, fmt.Errorf("open blocks: %w", err)
	}
	restored, dst, err := rd.Decompress()
	if err != nil {
		cache.noteVerifyFailure()
		return Result{}, fmt.Errorf("decompress blocks: %w", err)
	}
	if !bytes.Equal(restored, src) {
		cache.noteVerifyFailure()
		return Result{}, fmt.Errorf("block round-trip mismatch: %d bases in, %d out", len(src), len(restored))
	}
	// Payload bytes inside the container: every block frame carries the
	// same fixed armor overhead for this codec name, so the codec payload
	// total falls out of the index without reopening any frame.
	payloadBytes := 0
	index := rd.Index()
	for _, e := range index {
		payloadBytes += e.Length - Overhead(codecName)
	}
	r := Result{Data: container, PayloadBytes: payloadBytes, Bases: len(src),
		CompressStats: cst, DecompStats: dst, BlockIndex: index}
	cache.Put(key, r)
	return r, nil
}
