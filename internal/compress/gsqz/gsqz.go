// Package gsqz implements a G-SQZ style compressor (Tembe, Lowey & Suh,
// Bioinformatics 2010 — the paper's §III.B vertical-mode survey: "uses
// Huffman-coding to compress data without altering the sequence"). G-SQZ's
// insight is that in FASTQ reads the base and its quality score are
// correlated, so it Huffman-codes the *joint* (base, quality) symbol —
// beating separate streams without reordering anything.
//
// Container layout (per batch of records):
//
//	uvarint recordCount
//	per record: uvarint idLen, id bytes, uvarint readLen
//	256-entry code-length table (one byte each) for the joint alphabet
//	uvarint payloadBitCount, then the Huffman bitstream of all reads
//
// The joint symbol packs the 2-bit base with the quality class; qualities
// are mapped through a dense dictionary built from the batch (at most 64
// distinct quality characters, the Phred+33 range).
package gsqz

import (
	"encoding/binary"
	"fmt"

	"github.com/srl-nuces/ctxdna/internal/bitio"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/huffman"
	"github.com/srl-nuces/ctxdna/internal/seq"
)

// maxQualityClasses bounds the quality dictionary: 2 bits of base × 64
// quality classes fills the byte-sized joint alphabet.
const maxQualityClasses = 64

// Compress encodes a batch of FASTQ records.
func Compress(recs []seq.FASTQRecord) ([]byte, error) {
	// Build the quality dictionary and joint frequency table.
	var qualToClass [256]int
	for i := range qualToClass {
		qualToClass[i] = -1
	}
	var classToQual []byte
	var freqs [256]int64
	jointOf := func(base byte, qual byte) (byte, error) {
		code, err := seq.Code(base)
		if err != nil {
			return 0, err
		}
		cls := qualToClass[qual]
		if cls < 0 {
			if len(classToQual) >= maxQualityClasses {
				return 0, fmt.Errorf("gsqz: more than %d distinct quality characters", maxQualityClasses)
			}
			cls = len(classToQual)
			qualToClass[qual] = cls
			classToQual = append(classToQual, qual)
		}
		return byte(cls)<<2 | code, nil
	}
	type encRec struct {
		joint []byte
	}
	encoded := make([]encRec, len(recs))
	for ri, rec := range recs {
		if err := rec.Validate(); err != nil {
			return nil, err
		}
		joint := make([]byte, len(rec.Seq))
		for i := range rec.Seq {
			j, err := jointOf(rec.Seq[i], rec.Qual[i])
			if err != nil {
				return nil, fmt.Errorf("gsqz: record %q: %w", rec.ID, err)
			}
			joint[i] = j
			freqs[j]++
		}
		encoded[ri].joint = joint
	}

	out := bitio.NewWriter(64)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		out.WriteBytes(scratch[:n])
	}
	writeUvarint(uint64(len(recs)))
	for _, rec := range recs {
		writeUvarint(uint64(len(rec.ID)))
		out.WriteBytes([]byte(rec.ID))
		writeUvarint(uint64(len(rec.Seq)))
	}
	// Quality dictionary.
	writeUvarint(uint64(len(classToQual)))
	out.WriteBytes(classToQual)

	if len(classToQual) == 0 { // no bases at all
		return out.Bytes(), nil
	}
	table, err := huffman.Build(&freqs)
	if err != nil {
		return nil, fmt.Errorf("gsqz: %w", err)
	}
	lens := table.Lengths()
	out.WriteBytes(lens[:])
	var payloadBits uint64
	for _, er := range encoded {
		for _, j := range er.joint {
			payloadBits += uint64(table.CodeOf(j).Len)
		}
	}
	writeUvarint(payloadBits)
	for _, er := range encoded {
		for _, j := range er.joint {
			if err := table.Encode(out, j); err != nil {
				return nil, err
			}
		}
	}
	return out.Bytes(), nil
}

// Decompress restores the record batch.
func Decompress(data []byte) ([]seq.FASTQRecord, error) {
	r := bitio.NewReader(data)
	readUvarint := func() (uint64, error) {
		return binary.ReadUvarint(byteReader{r})
	}
	nRecs, err := readUvarint()
	if err != nil {
		return nil, compress.Corruptf("gsqz: record count: %v", err)
	}
	if nRecs > 1<<30 {
		return nil, compress.Corruptf("gsqz: implausible record count %d", nRecs)
	}
	// nRecs and every per-record length below are header claims. Memory is
	// committed only as stream bytes actually back the claim: the record
	// table and id buffers grow by append (each loop turn consumes stream
	// bytes, so growth is payload-proportional), and Seq/Qual allocation is
	// deferred to the symbol fill loop. Before this discipline a ~1 KiB
	// hostile payload could claim 2^30 records of 2^28 bases and demand
	// hundreds of GB before the first Huffman symbol was read.
	recs := make([]seq.FASTQRecord, 0, compress.HeaderPreallocN(nRecs, 64))
	readLens := make([]int, 0, compress.HeaderPreallocN(nRecs, 8))
	var totalBases uint64
	for ri := uint64(0); ri < nRecs; ri++ {
		idLen, err := readUvarint()
		if err != nil {
			return nil, compress.Corruptf("gsqz: id length: %v", err)
		}
		if idLen > 1<<20 {
			return nil, compress.Corruptf("gsqz: implausible id length %d", idLen)
		}
		id := make([]byte, 0, compress.HeaderPrealloc(idLen))
		for j := uint64(0); j < idLen; j++ {
			b, err := r.ReadByte()
			if err != nil {
				return nil, compress.Corruptf("gsqz: id bytes: %v", err)
			}
			id = append(id, b)
		}
		readLen, err := readUvarint()
		if err != nil {
			return nil, compress.Corruptf("gsqz: read length: %v", err)
		}
		if readLen > 1<<28 {
			return nil, compress.Corruptf("gsqz: implausible read length %d", readLen)
		}
		recs = append(recs, seq.FASTQRecord{ID: string(id)})
		readLens = append(readLens, int(readLen))
		totalBases += readLen
	}
	nClasses, err := readUvarint()
	if err != nil {
		return nil, compress.Corruptf("gsqz: class count: %v", err)
	}
	if nClasses > maxQualityClasses {
		return nil, compress.Corruptf("gsqz: %d quality classes exceeds %d", nClasses, maxQualityClasses)
	}
	classToQual := make([]byte, nClasses)
	for i := range classToQual {
		b, err := r.ReadByte()
		if err != nil {
			return nil, compress.Corruptf("gsqz: quality dictionary: %v", err)
		}
		classToQual[i] = b
	}
	if nClasses == 0 {
		if totalBases != 0 {
			return nil, compress.Corruptf("gsqz: %d bases but empty quality dictionary", totalBases)
		}
		return recs, nil
	}
	var lens [256]uint8
	for i := range lens {
		b, err := r.ReadByte()
		if err != nil {
			return nil, compress.Corruptf("gsqz: length table: %v", err)
		}
		lens[i] = b
	}
	table, err := huffman.FromLengths(&lens)
	if err != nil {
		return nil, compress.Corruptf("gsqz: %v", err)
	}
	if _, err := readUvarint(); err != nil { // payload bit count (framing aid)
		return nil, compress.Corruptf("gsqz: payload size: %v", err)
	}
	dec := huffman.NewDecoder(table)
	for i := range recs {
		n := readLens[i]
		sq := make([]byte, 0, compress.HeaderPrealloc(uint64(n)))
		ql := make([]byte, 0, compress.HeaderPrealloc(uint64(n)))
		for j := 0; j < n; j++ {
			joint, err := dec.Decode(r)
			if err != nil {
				return nil, compress.Corruptf("gsqz: payload: %v", err)
			}
			cls := int(joint >> 2)
			if cls >= len(classToQual) {
				return nil, compress.Corruptf("gsqz: joint symbol references class %d of %d", cls, len(classToQual))
			}
			sq = append(sq, seq.Base(joint&3))
			ql = append(ql, classToQual[cls])
		}
		recs[i].Seq, recs[i].Qual = sq, ql
	}
	return recs, nil
}

// byteReader adapts bitio.Reader to io.ByteReader for binary.ReadUvarint.
type byteReader struct{ r *bitio.Reader }

func (b byteReader) ReadByte() (byte, error) { return b.r.ReadByte() }
