package gsqz

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/seq"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// makeReads synthesizes FASTQ reads with base-correlated qualities: high
// qualities dominate, and qualities dip in runs — the structure G-SQZ's
// joint coding exploits.
func makeReads(t testing.TB, n, readLen int, seed int64) []seq.FASTQRecord {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := synth.Profile{Length: n * readLen, GC: 0.45, LocalOrder: 2, LocalBias: 0.5}
	bases := seq.Decode(p.Generate(seed))
	quals := "!#(+2;FIII" // low..high Phred characters
	recs := make([]seq.FASTQRecord, n)
	for i := range recs {
		read := bases[i*readLen : (i+1)*readLen]
		q := make([]byte, readLen)
		level := 9
		for j := range q {
			if rng.Float64() < 0.05 {
				level = rng.Intn(10)
			}
			if level < 9 && rng.Float64() < 0.5 {
				level++
			}
			q[j] = quals[level]
		}
		recs[i] = seq.FASTQRecord{ID: fmt.Sprintf("read-%d", i), Seq: read, Qual: q}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	recs := makeReads(t, 200, 100, 1)
	data, err := Compress(recs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records", len(back))
	}
	for i := range recs {
		if back[i].ID != recs[i].ID ||
			!bytes.Equal(back[i].Seq, recs[i].Seq) ||
			!bytes.Equal(back[i].Qual, recs[i].Qual) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestJointCodingBeatsRawFASTQ(t *testing.T) {
	recs := makeReads(t, 500, 100, 2)
	data, err := Compress(recs)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := seq.WriteFASTQ(&raw, recs); err != nil {
		t.Fatal(err)
	}
	t.Logf("gsqz %d bytes vs raw FASTQ %d bytes (%.2fx)", len(data), raw.Len(), float64(raw.Len())/float64(len(data)))
	if len(data)*2 >= raw.Len() {
		t.Fatalf("gsqz should at least halve raw FASTQ: %d vs %d", len(data), raw.Len())
	}
}

func TestEmptyBatchAndEmptyReads(t *testing.T) {
	for _, recs := range [][]seq.FASTQRecord{
		nil,
		{},
		{{ID: "empty"}},
		{{ID: "a"}, {ID: "b"}},
	} {
		data, err := Compress(recs)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(recs) {
			t.Fatalf("got %d records, want %d", len(back), len(recs))
		}
	}
}

func TestRejectsBadRecords(t *testing.T) {
	if _, err := Compress([]seq.FASTQRecord{{ID: "x", Seq: []byte("ACGT"), Qual: []byte("II")}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Compress([]seq.FASTQRecord{{ID: "x", Seq: []byte("ACGN"), Qual: []byte("IIII")}}); err == nil {
		t.Error("non-ACGT base accepted")
	}
}

func TestRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		bytes.Repeat([]byte{0x41}, 50),
	} {
		if _, err := Decompress(data); err == nil {
			t.Errorf("garbage %v accepted", data[:min(8, len(data))])
		}
	}
}

func TestFASTQFileRoundTrip(t *testing.T) {
	recs := makeReads(t, 20, 50, 3)
	var buf bytes.Buffer
	if err := seq.WriteFASTQ(&buf, recs); err != nil {
		t.Fatal(err)
	}
	parsed, err := seq.ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(recs) {
		t.Fatalf("parsed %d records", len(parsed))
	}
	for i := range recs {
		if parsed[i].ID != recs[i].ID || !bytes.Equal(parsed[i].Seq, recs[i].Seq) || !bytes.Equal(parsed[i].Qual, recs[i].Qual) {
			t.Fatalf("record %d corrupted by FASTQ round trip", i)
		}
	}
	// Compressing the parsed records must equal compressing the originals.
	a, err := Compress(recs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("compression not deterministic across FASTQ round trip")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkCompress(b *testing.B) {
	recs := makeReads(b, 1000, 100, 4)
	b.SetBytes(int64(1000 * 100 * 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(recs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCorruptStreamTaxonomy: decode-side failures must classify as
// compress.ErrCorrupt so round-trip verification and the result cache can
// tell corruption apart from operational errors (dnalint: errtaxonomy).
func TestCorruptStreamTaxonomy(t *testing.T) {
	var implausibleCount [binary.MaxVarintLen64]byte
	binary.PutUvarint(implausibleCount[:], 1<<40)
	for name, data := range map[string][]byte{
		"implausible record count": implausibleCount[:],
		"garbage":                  {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
	} {
		_, err := Decompress(data)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, compress.ErrCorrupt) {
			t.Errorf("%s: error %v is outside the ErrCorrupt taxonomy", name, err)
		}
	}
}
