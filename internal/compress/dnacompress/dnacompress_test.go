package dnacompress

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/compress/dnax"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestConformance(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{}) })
}

func TestConformanceCustomSeed(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{Seed: "11011011011"}) })
}

func TestSpacedSeedsBeatExactParseOnDenseMutations(t *testing.T) {
	// Repeats mutated every ~10 bases: contiguous-anchor exact matching
	// fragments badly; PatternHunter anchors + edit extension should win.
	p := synth.Profile{Length: 60000, GC: 0.4, RepeatProb: 0.002, RepeatMin: 60, RepeatMax: 600,
		RCFraction: 0, MutationRate: 0.1, LocalOrder: 3, LocalBias: 0.8}
	src := p.Generate(17)
	dcOut, _, err := New(Config{}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	dnaxOut, _, err := dnax.New(dnax.Config{Stride: 1}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	dcBPB := compress.Ratio(len(src), len(dcOut))
	dnaxBPB := compress.Ratio(len(src), len(dnaxOut))
	t.Logf("dnacompress %.3f bits/base vs dnax(stride=1) %.3f at 10%% repeat divergence", dcBPB, dnaxBPB)
	if dcBPB >= dnaxBPB {
		t.Errorf("spaced-seed codec (%.3f) should beat exact-only parse (%.3f) on dense mutations", dcBPB, dnaxBPB)
	}
}

func TestNewPanicsOnBadSeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad seed did not panic")
		}
	}()
	New(Config{Seed: "0110"})
}

func TestRejectsInvalidSymbol(t *testing.T) {
	if _, _, err := New(Config{}).Compress([]byte{0, 6}); err == nil {
		t.Fatal("accepted invalid symbol")
	}
}

func TestRejectsEmptyStream(t *testing.T) {
	if _, _, err := New(Config{}).Decompress(nil); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func BenchmarkCompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 17, GC: 0.4, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.05, LocalOrder: 3, LocalBias: 0.8}
	src := p.Generate(1)
	c := New(Config{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}
