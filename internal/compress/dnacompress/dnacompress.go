// Package dnacompress implements a DNACompress-style codec (Chen, Li, Ma &
// Tromp, Bioinformatics 2002 — the paper's Table 1 row "DNACompress: Two
// pass algo, uses Pattern hunter approximate Repeats"). Its distinguishing
// idea is anchor discovery through *PatternHunter spaced seeds*: hashing
// only the care positions of the seed window lets an anchor tolerate
// substitutions inside the window, so heavily mutated repeats — invisible
// to contiguous k-mer seeds — still surface as candidates.
//
// Each anchor is validated and grown by the same bounded edit-distance
// extension GenCompress uses, but started from scratch (k = 0) so that
// don't-care-position mismatches inside the seed window become ordinary
// substitution ops. The stream layout matches GenCompress's (flag, distance,
// length, edit script, order-2 literals).
//
// Simplification: only direct-strand repeats are coded; the original also
// anchors complemented palindromes (documented divergence, DESIGN.md).
package dnacompress

import (
	"encoding/binary"

	"github.com/srl-nuces/ctxdna/internal/arith"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/match"
)

func init() {
	compress.Register("dnacompress", func() compress.Codec { return New(Config{}) })
}

// Config tunes the codec; zero values select defaults.
type Config struct {
	// Seed is the spaced seed pattern (default the PatternHunter optimal
	// weight-11 seed).
	Seed string
	// MaxCandidates bounds anchors extended per position.
	MaxCandidates int
	// MinLen is the minimum approximate repeat worth a descriptor.
	MinLen int
	// Approx bounds the edit extension.
	Approx match.ApproxConfig
}

// Defaults.
const (
	DefaultMaxCandidates = 8
	DefaultMinLen        = 20
)

// Codec implements compress.Codec.
type Codec struct {
	cfg  Config
	seed match.SpacedSeed
}

// New returns a DNACompress codec. It panics on an invalid seed pattern
// (a programming error; use match.ParseSeed to validate user input).
func New(cfg Config) *Codec {
	if cfg.Seed == "" {
		cfg.Seed = match.PatternHunterSeed
	}
	seed, err := match.ParseSeed(cfg.Seed)
	if err != nil {
		panic(err)
	}
	if cfg.MaxCandidates == 0 {
		cfg.MaxCandidates = DefaultMaxCandidates
	}
	if cfg.MinLen == 0 {
		cfg.MinLen = DefaultMinLen
	}
	if cfg.MinLen < seed.Span() {
		cfg.MinLen = seed.Span()
	}
	if cfg.Approx == (match.ApproxConfig{}) {
		cfg.Approx = match.DefaultApproxConfig()
		cfg.Approx.MaxRun = 4 // seed windows carry interior mismatches
	}
	return &Codec{cfg: cfg, seed: seed}
}

// Name implements compress.Codec.
func (*Codec) Name() string { return "dnacompress" }

// Cost model: spaced hashing costs ~span ops per probe; the reference
// DNACompress binary ran PatternHunter as a separate pass ("faster than
// other algorithms" per the paper's §III — modest factors).
const (
	nsPerProbe          = 14.0
	nsPerExtend         = 4.0
	nsPerLiteral        = 55.0
	nsPerMatch          = 300.0
	nsPerOp             = 90.0
	nsPerCopied         = 4.0
	nsPerSearch         = 90.0
	nsPerIndexed        = 22.0
	startupCompressNS   = 10_000_000
	startupDecompressNS = 3_000_000
	implFactor          = 2.0
)

func bitLen32(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

func (c *Codec) score(am match.ApproxMatch, pos int) int {
	if am.TLen < c.cfg.MinLen {
		return -1
	}
	cost := 2 + 2*bitLen32(pos-am.Src) + 2*bitLen32(am.TLen-c.cfg.MinLen+1) + 2*bitLen32(len(am.Ops)+1) + 8*len(am.Ops)
	return 2*am.TLen - cost - 8
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(src)))

	idx := match.NewSpacedIndex(src, c.seed, 4*c.cfg.MaxCandidates)
	lit := arith.NewSymbolModel(2)
	flag := arith.NewProb()
	distM := arith.NewUintModel()
	lenM := arith.NewUintModel()
	opCountM := arith.NewUintModel()
	opOffM := arith.NewUintModel()
	kindProbs := arith.NewProbSlice(2)
	baseProbs := arith.NewProbSlice(2)
	enc := arith.NewEncoder(len(src)/3 + 64)

	var searchStats match.Stats
	var literals, matches, copied, opsEmitted int64

	i := 0
	for i < len(src) {
		if src[i] > 3 {
			return nil, compress.Stats{}, compress.Corruptf("dnacompress: invalid symbol %d at %d", src[i], i)
		}
		idx.Advance(i)

		var best match.ApproxMatch
		bestScore := 0
		cands := 0
		idx.ForEachAnchor(i, func(j int) bool {
			// k = 0: the extension walks the seed window itself, turning
			// don't-care mismatches into substitution ops.
			am := match.ExtendApprox(src, j, i, 0, c.cfg.Approx, &searchStats)
			if s := c.score(am, i); s > bestScore {
				best, bestScore = am, s
			}
			cands++
			return cands < c.cfg.MaxCandidates
		})

		if bestScore > 0 {
			enc.EncodeBit(&flag, 1)
			distM.Encode(enc, uint64(i-best.Src-1))
			lenM.Encode(enc, uint64(best.TLen-c.cfg.MinLen))
			opCountM.Encode(enc, uint64(len(best.Ops)))
			prevOff := 0
			for _, op := range best.Ops {
				encodeOpKind(enc, kindProbs, op.Kind)
				opOffM.Encode(enc, uint64(op.Off-prevOff))
				prevOff = op.Off
				if op.Kind != match.OpDel {
					enc.EncodeBit(&baseProbs[0], int(op.Base>>1))
					enc.EncodeBit(&baseProbs[1], int(op.Base&1))
				}
			}
			for t := 0; t < best.TLen; t++ {
				lit.Observe(src[i+t])
			}
			matches++
			copied += int64(best.TLen)
			opsEmitted += int64(len(best.Ops))
			i += best.TLen
			continue
		}
		enc.EncodeBit(&flag, 0)
		lit.Encode(enc, src[i])
		literals++
		i++
	}
	payload := enc.Finish()
	out := make([]byte, 0, hn+len(payload))
	out = append(out, hdr[:hn]...)
	out = append(out, payload...)

	st := idx.Stats()
	searchStats.Probes += st.Probes
	stats := compress.Stats{
		WorkNS: startupCompressNS + int64(implFactor*(nsPerProbe*float64(searchStats.Probes)+
			nsPerExtend*float64(searchStats.Extends)+
			nsPerSearch*float64(literals+matches)+nsPerIndexed*float64(len(src))+
			nsPerLiteral*float64(literals)+nsPerMatch*float64(matches)+
			nsPerOp*float64(opsEmitted)+nsPerCopied*float64(copied))),
		PeakMem: idx.MemoryFootprint() + lit.MemoryFootprint() + len(src) + len(out) + 5*distM.MemoryFootprint(),
	}
	return out, stats, nil
}

func encodeOpKind(e *arith.Encoder, probs []arith.Prob, k match.OpKind) {
	if k == match.OpSub {
		e.EncodeBit(&probs[0], 0)
		return
	}
	e.EncodeBit(&probs[0], 1)
	if k == match.OpIns {
		e.EncodeBit(&probs[1], 0)
	} else {
		e.EncodeBit(&probs[1], 1)
	}
}

func decodeOpKind(d *arith.Decoder, probs []arith.Prob) match.OpKind {
	if d.DecodeBit(&probs[0]) == 0 {
		return match.OpSub
	}
	if d.DecodeBit(&probs[1]) == 0 {
		return match.OpIns
	}
	return match.OpDel
}

// Decompress implements compress.Codec. The stream is structurally
// identical to GenCompress's, replayed the same way.
func (c *Codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	nBases, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("dnacompress: bad length header")
	}
	if nBases > 1<<34 {
		return nil, compress.Stats{}, compress.Corruptf("dnacompress: implausible length %d", nBases)
	}
	lit := arith.NewSymbolModel(2)
	flag := arith.NewProb()
	distM := arith.NewUintModel()
	lenM := arith.NewUintModel()
	opCountM := arith.NewUintModel()
	opOffM := arith.NewUintModel()
	kindProbs := arith.NewProbSlice(2)
	baseProbs := arith.NewProbSlice(2)
	dec := arith.NewDecoder(data[used:])

	out := make([]byte, 0, compress.HeaderPrealloc(nBases))
	var literals, matches, copied, opsReplayed int64
	for uint64(len(out)) < nBases {
		if dec.DecodeBit(&flag) == 0 {
			out = append(out, lit.Decode(dec))
			literals++
			continue
		}
		dist := int(distM.Decode(dec)) + 1
		srcPos := len(out) - dist
		tlen := int(lenM.Decode(dec)) + c.cfg.MinLen
		nOps := int(opCountM.Decode(dec))
		if srcPos < 0 || tlen <= 0 || uint64(len(out))+uint64(tlen) > nBases || nOps > tlen+c.cfg.Approx.MaxOps+1 {
			return nil, compress.Stats{}, compress.Corruptf("dnacompress: descriptor out of range (src %d len %d ops %d)", srcPos, tlen, nOps)
		}
		// nOps is bounded only by tlen, itself bounded only by the header's
		// nBases claim — commit memory as ops actually decode, not up front.
		ops := make([]match.EditOp, 0, min(nOps, 4096))
		prevOff := 0
		for oi := 0; oi < nOps; oi++ {
			kind := decodeOpKind(dec, kindProbs)
			off := prevOff + int(opOffM.Decode(dec))
			prevOff = off
			op := match.EditOp{Kind: kind, Off: off}
			if kind != match.OpDel {
				hi := dec.DecodeBit(&baseProbs[0])
				lo := dec.DecodeBit(&baseProbs[1])
				op.Base = byte(hi<<1 | lo)
			}
			if off > tlen {
				return nil, compress.Stats{}, compress.Corruptf("dnacompress: op offset %d beyond %d", off, tlen)
			}
			ops = append(ops, op)
		}
		start := len(out)
		s := srcPos
		opIdx := 0
		for len(out)-start < tlen {
			if opIdx < len(ops) && ops[opIdx].Off == len(out)-start {
				op := ops[opIdx]
				opIdx++
				switch op.Kind {
				case match.OpSub:
					out = append(out, op.Base)
					lit.Observe(op.Base)
					s++
				case match.OpIns:
					out = append(out, op.Base)
					lit.Observe(op.Base)
				case match.OpDel:
					s++
				}
				continue
			}
			if s < 0 || s >= start {
				return nil, compress.Stats{}, compress.Corruptf("dnacompress: replay source %d escapes processed region", s)
			}
			b := out[s]
			out = append(out, b)
			lit.Observe(b)
			s++
		}
		matches++
		copied += int64(tlen)
		opsReplayed += int64(nOps)
	}
	st := compress.Stats{
		WorkNS: startupDecompressNS + int64(implFactor*(nsPerLiteral*float64(literals)+
			nsPerMatch*float64(matches)+nsPerOp*float64(opsReplayed)+nsPerCopied*float64(copied))),
		PeakMem: lit.MemoryFootprint() + len(data) + int(nBases) + 5*distM.MemoryFootprint(),
	}
	return out, st, nil
}
