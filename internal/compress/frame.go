package compress

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// The armored frame is the container every compressed stream travels in
// once it leaves the process that produced it: the result cache, the cloud
// exchange loop and the dnacomp container format all seal codec payloads
// into frames. A frame is self-describing — a receiver needs no side
// channel (and, critically, no copy of the original source) to know which
// codec to run, how many symbols to expect back, and whether either the
// payload or the restored output was corrupted in transit.
//
// Layout (big-endian, n = len(codec name)):
//
//	offset    size  field
//	0         4     magic "CXA1"
//	4         1     format version (currently 1)
//	5         1     codec name length n (1..64)
//	6         n     codec name (registry identifier)
//	6+n       8     original symbol count (bases)
//	14+n      8     payload length in bytes
//	22+n      4     CRC32-C of the restored symbol output
//	26+n      4     CRC32-C of the payload
//	30+n      4     CRC32-C of the header bytes [0, 30+n)
//	34+n      ...   payload
//
// The header checksum catches tampering with any descriptive field, the
// payload checksum catches transport corruption before a codec ever parses
// the bytes, and the output checksum catches the residual class of faults —
// a payload that still parses but restores the wrong symbols.

// FrameMagic identifies an armored frame; it is the first four bytes of
// every sealed container.
const FrameMagic = "CXA1"

// FrameVersion is the current frame format version.
const FrameVersion = 1

// maxFrameCodecName bounds the codec-name field; registry names are short
// identifiers, so anything longer marks a malformed header.
const maxFrameCodecName = 64

// frameFixedOverhead is the header size beyond the codec name: magic(4) +
// version(1) + name length(1) + bases(8) + payload length(8) + three
// CRC32-C checksums (12).
const frameFixedOverhead = 34

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the frame checksum function: CRC32-C over b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// Frame is the parsed view of an armored container.
type Frame struct {
	// Codec is the registry identifier recorded in the header.
	Codec string
	// Bases is the original symbol count the payload must restore to.
	Bases int
	// OutputSum is the CRC32-C the restored symbols must hash to.
	OutputSum uint32
	// PayloadSum is the CRC32-C of Payload, already verified by Open.
	PayloadSum uint32
	// Payload is the codec stream. It aliases the buffer passed to Open.
	Payload []byte
}

// Overhead returns the frame header size for a codec name of length n: the
// number of bytes Seal adds on top of the payload.
func Overhead(codecName string) int { return frameFixedOverhead + len(codecName) }

// Seal armors a codec payload produced from src: it records the codec
// identity, the original symbol count, and checksums over both the payload
// and the symbols the payload must restore to. The result is what Open and
// SafeDecompress validate on the receiving side.
func Seal(codecName string, src, payload []byte) []byte {
	return SealSum(codecName, len(src), Checksum(src), payload)
}

// SealSum is Seal for callers that no longer hold the original symbols but
// know their count and checksum (a relay re-armoring a stream, or a test
// constructing a deliberately inconsistent frame).
func SealSum(codecName string, bases int, outputSum uint32, payload []byte) []byte {
	if len(codecName) == 0 || len(codecName) > maxFrameCodecName {
		panic("compress: Seal: codec name length out of range")
	}
	n := len(codecName)
	out := make([]byte, frameFixedOverhead+n+len(payload))
	copy(out[0:4], FrameMagic)
	out[4] = FrameVersion
	out[5] = byte(n)
	copy(out[6:], codecName)
	binary.BigEndian.PutUint64(out[6+n:], uint64(bases))
	binary.BigEndian.PutUint64(out[14+n:], uint64(len(payload)))
	binary.BigEndian.PutUint32(out[22+n:], outputSum)
	binary.BigEndian.PutUint32(out[26+n:], Checksum(payload))
	binary.BigEndian.PutUint32(out[30+n:], Checksum(out[:30+n]))
	copy(out[34+n:], payload)
	return out
}

// Open parses and validates an armored frame from untrusted bytes: magic,
// version, field bounds, the header checksum, exact framing (truncated or
// extended buffers are rejected), and the payload checksum. Every failure
// satisfies errors.Is(err, ErrCorrupt). The returned Payload aliases data.
//
// Open proves the payload arrived intact; it does not run the codec. Use
// SafeDecompress to also restore and verify the symbols.
func Open(data []byte) (Frame, error) {
	if len(data) < frameFixedOverhead+1 {
		return Frame{}, Corruptf("frame: %d bytes is shorter than the minimum header", len(data))
	}
	if string(data[0:4]) != FrameMagic {
		return Frame{}, Corruptf("frame: bad magic %q", data[0:4])
	}
	if data[4] != FrameVersion {
		return Frame{}, Corruptf("frame: unsupported version %d", data[4])
	}
	n := int(data[5])
	if n == 0 || n > maxFrameCodecName {
		return Frame{}, Corruptf("frame: codec name length %d out of range", n)
	}
	if len(data) < frameFixedOverhead+n {
		return Frame{}, Corruptf("frame: truncated header (%d bytes for name length %d)", len(data), n)
	}
	headerSum := binary.BigEndian.Uint32(data[30+n:])
	if got := Checksum(data[:30+n]); got != headerSum {
		return Frame{}, Corruptf("frame: header checksum mismatch (stored %08x, computed %08x)", headerSum, got)
	}
	bases := binary.BigEndian.Uint64(data[6+n:])
	if bases > math.MaxInt {
		return Frame{}, Corruptf("frame: symbol count %d overflows int", bases)
	}
	payloadLen := binary.BigEndian.Uint64(data[14+n:])
	rest := uint64(len(data) - frameFixedOverhead - n)
	if payloadLen > rest {
		return Frame{}, Corruptf("frame: truncated payload (%d of %d bytes)", rest, payloadLen)
	}
	if payloadLen < rest {
		return Frame{}, Corruptf("frame: %d trailing bytes after the payload", rest-payloadLen)
	}
	fr := Frame{
		Codec:      string(data[6 : 6+n]),
		Bases:      int(bases),
		OutputSum:  binary.BigEndian.Uint32(data[22+n:]),
		PayloadSum: binary.BigEndian.Uint32(data[26+n:]),
		Payload:    data[frameFixedOverhead+n:],
	}
	if got := Checksum(fr.Payload); got != fr.PayloadSum {
		return Frame{}, Corruptf("frame: payload checksum mismatch (stored %08x, computed %08x)", fr.PayloadSum, got)
	}
	return fr, nil
}
