package gzipx

import (
	"compress/gzip"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestConformance(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return Codec{Level: gzip.DefaultCompression} })
}

func TestConformanceBestSpeed(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return Codec{Level: gzip.BestSpeed} })
}

func TestRatioFloorAboveTwoBits(t *testing.T) {
	// The paper's key observation: gzip on DNA text cannot beat the
	// DNA-specific codecs — a Huffman code over 4 roughly equiprobable
	// letters floors near 2 bits/base and LZ77's window misses distant
	// repeats. On iid DNA gzip must stay ABOVE 2 bits/base.
	p := synth.Profile{Name: "iid", Length: 100000, GC: 0.5}
	src := p.Generate(11)
	data, _, err := Codec{Level: gzip.DefaultCompression}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if bpb := compress.Ratio(len(src), len(data)); bpb < 2.0 {
		t.Fatalf("gzip rate %.3f bits/base on iid DNA — below the 2-bit floor, conversion must be wrong", bpb)
	}
}

func TestNearRepeatsHelpGzipOnlyWithinWindow(t *testing.T) {
	// Repeats within 32 KB are caught by LZ77; a copy placed 200 KB away is
	// invisible. Compare two files of identical content volume.
	base := synth.Profile{Length: 20000, GC: 0.45}.Generate(3)
	spacerP := synth.Profile{Length: 200000, GC: 0.45}
	far := append(append(append([]byte{}, base...), spacerP.Generate(4)...), base...)
	near := append(append([]byte{}, base...), base...)

	c := Codec{Level: gzip.DefaultCompression}
	nearOut, _, err := c.Compress(near)
	if err != nil {
		t.Fatal(err)
	}
	nearRate := compress.Ratio(len(near), len(nearOut))
	farOut, _, err := c.Compress(far)
	if err != nil {
		t.Fatal(err)
	}
	farRate := compress.Ratio(len(far), len(farOut))
	if nearRate > 1.6 {
		t.Fatalf("adjacent duplicate should compress well, got %.3f bits/base", nearRate)
	}
	if farRate < 2.0 {
		t.Fatalf("distant duplicate should be invisible to gzip, got %.3f bits/base", farRate)
	}
}

func TestDecompressRejectsNonDNA(t *testing.T) {
	// A gzip stream of non-ACGT text must fail cleanly.
	var c Codec
	payload := []byte{
		0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 0xff,
	}
	if _, _, err := c.Decompress(payload); err == nil {
		t.Fatal("accepted truncated gzip stream")
	}
}

func TestStatsPopulated(t *testing.T) {
	p := synth.Profile{Length: 50000, GC: 0.4}
	src := p.Generate(5)
	data, cst, err := Codec{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if cst.WorkNS <= 0 || cst.PeakMem <= 0 {
		t.Fatalf("bad stats %+v", cst)
	}
	_, dst, err := Codec{}.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if dst.WorkNS <= 0 || dst.WorkNS >= cst.WorkNS {
		t.Fatalf("inflate work %d should be far below deflate work %d", dst.WorkNS, cst.WorkNS)
	}
}

func BenchmarkGzipCompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 20, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.01}
	src := p.Generate(1)
	c := Codec{Level: gzip.DefaultCompression}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}
