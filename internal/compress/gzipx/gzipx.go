// Package gzipx adapts the stdlib DEFLATE implementation to the repository's
// Codec interface. It reproduces the paper's Gzip configuration faithfully:
// NCBI stores sequences as gzipped ASCII text, so the codec converts symbols
// to ACGT letters before deflating — which is exactly why its ratio floor is
// ~2 bits/base worse than the DNA-aware codecs (a Huffman code over four
// roughly equiprobable letters cannot go below 2 bits, and LZ77's 32 KB
// window misses the distant repeats DNA carries).
package gzipx

import (
	"bytes"
	"compress/gzip"
	"io"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/seq"
)

func init() {
	// The registered default emulates the Gzip path the paper actually
	// measured: a Windows/Azure (.NET-era) harness whose managed
	// GZipStream predates the 4.5 zlib port — famously poor ratios
	// (approximated here by DEFLATE BestSpeed) at low throughput (cost
	// model below). Construct Codec{Level: gzip.BestCompression} directly
	// for a modern zlib-grade baseline.
	compress.Register("gzip", func() compress.Codec { return Codec{Level: gzip.BestSpeed} })
}

// Codec wraps compress/gzip at a fixed level.
type Codec struct {
	Level int
}

// Name implements compress.Codec.
func (Codec) Name() string { return "gzip" }

// Cost model for the measured implementation (managed GZipStream): ~450 ns
// per input byte deflating, ~60 ns inflating — an order of magnitude slower
// than zlib, matching published GZipStream throughput of the period.
// Working state: the 32 KB sliding window plus hash chains (~400 KB) plus
// the ASCII conversion buffer.
const (
	compressNSPerByte   = 450
	decompressNSPerByte = 60
	windowState         = 400 << 10
	// startupNS models the paper harness's Gzip path: the experiments ran
	// on Windows/Azure through a managed (.NET-era) pipeline whose
	// GZipStream carries CLR/library initialization on each run — Gzip was
	// not invoked as the bare zlib binary. This fixed cost plus its worst
	// compression ratio is why "there were no records where Gzip was used
	// as label".
	startupNS = 75_000_000
)

// Compress implements compress.Codec.
func (c Codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	if !seq.Valid(src) {
		return nil, compress.Stats{}, compress.Corruptf("gzip: input contains non-nucleotide symbols")
	}
	ascii := seq.Decode(src)
	var buf bytes.Buffer
	level := c.Level
	if level == 0 {
		level = gzip.DefaultCompression
	}
	zw, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, compress.Stats{}, err
	}
	if _, err := zw.Write(ascii); err != nil {
		return nil, compress.Stats{}, err
	}
	if err := zw.Close(); err != nil {
		return nil, compress.Stats{}, err
	}
	st := compress.Stats{
		WorkNS:  startupNS + int64(compressNSPerByte*len(ascii)),
		PeakMem: windowState + len(ascii) + buf.Len(),
	}
	return buf.Bytes(), st, nil
}

// Decompress implements compress.Codec.
func (Codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, compress.Stats{}, compress.Corruptf("gzip: %v", err)
	}
	defer zr.Close()
	ascii, err := io.ReadAll(zr)
	if err != nil {
		return nil, compress.Stats{}, compress.Corruptf("gzip: %v", err)
	}
	out, err := seq.Encode(ascii)
	if err != nil {
		return nil, compress.Stats{}, compress.Corruptf("gzip: payload is not a nucleotide sequence: %v", err)
	}
	st := compress.Stats{
		WorkNS:  startupNS + int64(decompressNSPerByte*len(ascii)),
		PeakMem: (32 << 10) + len(ascii) + len(data),
	}
	return out, st, nil
}
