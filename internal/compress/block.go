package compress

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// The multi-block container lifts the codec layer past its whole-slice
// ceiling: input is split into fixed-size blocks, each block is compressed
// independently (so a bounded worker pool can run blocks in parallel) and
// sealed into its own armored frame (frame.go), and the frames are
// concatenated behind a header plus a per-block offset+checksum index.
// Independence buys three properties at once, bgzf-style:
//
//   - parallel seal: blocks compress concurrently, yet the container bytes
//     are identical for any worker count because assembly is index-ordered;
//   - seekable open: a ReadAt over symbol space decodes only the blocks
//     overlapping the requested range — random access without a full decode;
//   - bounded memory: seal holds at most jobs in-flight block working sets,
//     open holds one block's working set beyond the caller's output.
//
// Layout (big-endian, n = len(codec name), c = block count):
//
//	offset     size  field
//	0          4     magic "CXB1"
//	4          1     format version (currently 1)
//	5          1     codec name length n (1..64)
//	6          n     codec name (registry identifier)
//	6+n        8     total symbol count (bases)
//	14+n       8     block size in bases
//	22+n       8     block count c (= ceil(bases / block size))
//	30+n       4     CRC32-C of the full restored symbol output
//	34+n       4     CRC32-C of the header bytes [0, 34+n)
//	38+n       12c   index: per block, frame length (8) + frame CRC32-C (4)
//	38+n+12c   4     CRC32-C of the index bytes [38+n, 38+n+12c)
//	42+n+12c   ...   concatenated armored frames (one CXA1 frame per block)
//
// Each block travels as a full armored frame, so every per-block integrity
// property PR 4 established — payload checksum, restored-output checksum,
// codec pinning, panic containment — holds per block on the open path. The
// index checksums the frame bytes a second time so a seek can reject a
// corrupted block without parsing it, and the header's whole-output
// checksum catches the one fault per-block frames cannot: blocks reordered
// (or substituted) together with a consistently rewritten index.

// BlockMagic identifies a multi-block container; it is the first four
// bytes of every sealed container.
const BlockMagic = "CXB1"

// BlockVersion is the current multi-block container format version.
const BlockVersion = 1

// DefaultBlockSize is the block granularity when BlockOptions does not set
// one: 1 MiB of symbols, large enough that per-block frame overhead and
// block-boundary ratio loss are negligible, small enough that dozens of
// blocks exist to parallelize over at chromosome scale.
const DefaultBlockSize = 1 << 20

// blockFixedOverhead is the container header size beyond the codec name:
// magic(4) + version(1) + name length(1) + bases(8) + block size(8) +
// block count(8) + output CRC(4) + header CRC(4).
const blockFixedOverhead = 38

// blockIndexEntrySize is the per-block index entry: frame length (8) +
// frame CRC32-C (4).
const blockIndexEntrySize = 12

// BlockOptions configures the block-engine seal path.
type BlockOptions struct {
	// BlockSize is the number of symbols per block; 0 means
	// DefaultBlockSize. Negative is rejected.
	BlockSize int
	// Jobs bounds how many blocks compress concurrently; <= 0 means
	// GOMAXPROCS. The container bytes are identical for any value.
	Jobs int
}

// resolve applies the option defaults.
func (o BlockOptions) resolve() (blockSize, jobs int, err error) {
	blockSize = o.BlockSize
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 0 {
		return 0, 0, fmt.Errorf("compress: block size %d is negative", o.BlockSize)
	}
	jobs = o.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return blockSize, jobs, nil
}

// BlockEntry is one parsed index entry: where a block's armored frame sits
// and what it must hash to.
type BlockEntry struct {
	// Length is the sealed frame length in bytes.
	Length int
	// Sum is the CRC32-C of the frame bytes.
	Sum uint32
}

// blockMetrics is the observability surface of the block engine: block and
// seek counters plus a per-block modeled-latency histogram, labeled by
// codec and direction.
type blockMetrics struct {
	sealed  *obs.Counter
	decoded *obs.Counter
	seeks   *obs.Counter
	sealMS  *obs.Histogram
	decMS   *obs.Histogram
}

func newBlockMetrics(reg *obs.Registry, codec string) blockMetrics {
	reg = obs.OrDefault(reg)
	labels := []string{"codec", codec}
	return blockMetrics{
		sealed:  reg.Counter("dna_block_sealed_total", "Blocks compressed and sealed by the block engine.", labels...),
		decoded: reg.Counter("dna_block_decoded_total", "Blocks decoded on the container open/seek path.", labels...),
		seeks:   reg.Counter("dna_block_seeks_total", "Random-access reads served from multi-block containers.", labels...),
		sealMS:  reg.Histogram("dna_block_model_ms", "Per-block modeled codec work in milliseconds.", obs.DefMSBuckets(), "codec", codec, "op", "compress"),
		decMS:   reg.Histogram("dna_block_model_ms", "Per-block modeled codec work in milliseconds.", obs.DefMSBuckets(), "codec", codec, "op", "decompress"),
	}
}

// BlockCompress splits src into fixed-size blocks, compresses them through
// a bounded worker pool with the named codec (a fresh instance per block,
// so adaptive codec state never crosses a block boundary), and assembles
// the multi-block container. The container bytes are identical for any
// Jobs value: workers fill index-ordered slots and assembly walks them in
// order. Per-block metrics land in the default registry; use
// BlockCompressObserved to aim them at a specific one.
func BlockCompress(codecName string, src []byte, opts BlockOptions) ([]byte, Stats, error) {
	return BlockCompressObserved(nil, codecName, src, opts)
}

// BlockCompressObserved is BlockCompress recording block counters and the
// per-block modeled-latency histogram into reg (nil means the default
// registry).
func BlockCompressObserved(reg *obs.Registry, codecName string, src []byte, opts BlockOptions) ([]byte, Stats, error) {
	blockSize, jobs, err := opts.resolve()
	if err != nil {
		return nil, Stats{}, err
	}
	if _, err := New(codecName); err != nil {
		return nil, Stats{}, err
	}
	count := (len(src) + blockSize - 1) / blockSize
	if jobs > count {
		jobs = count
	}
	met := newBlockMetrics(reg, codecName)

	// Compress blocks into index-ordered slots. Workers pull block indices
	// from a channel; a slot only ever has one writer, so no lock guards
	// the result slices and the assembly below is deterministic.
	frames := make([][]byte, count)
	stats := make([]Stats, count)
	errs := make([]error, count)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range idx {
				lo := k * blockSize
				hi := min(lo+blockSize, len(src))
				block := src[lo:hi]
				c, err := New(codecName)
				if err != nil {
					errs[k] = err
					continue
				}
				payload, st, err := c.Compress(block)
				if err != nil {
					errs[k] = fmt.Errorf("block %d (%d bases at offset %d): %w", k, len(block), lo, err)
					continue
				}
				frames[k] = Seal(codecName, block, payload)
				stats[k] = st
				met.sealed.Inc()
				met.sealMS.Observe(float64(st.WorkNS) / 1e6)
			}
		}()
	}
	for k := 0; k < count; k++ {
		idx <- k
	}
	close(idx)
	wg.Wait()
	for _, err := range errs { // first failure by block index, deterministically
		if err != nil {
			return nil, Stats{}, fmt.Errorf("compress: %s: %w", codecName, err)
		}
	}

	var total Stats
	frameBytes := 0
	for k := range frames {
		total.Add(stats[k])
		frameBytes += len(frames[k])
	}

	n := len(codecName)
	indexStart := blockFixedOverhead + n
	payloadStart := indexStart + count*blockIndexEntrySize + 4
	out := make([]byte, payloadStart+frameBytes)
	copy(out[0:4], BlockMagic)
	out[4] = BlockVersion
	out[5] = byte(n)
	copy(out[6:], codecName)
	binary.BigEndian.PutUint64(out[6+n:], uint64(len(src)))
	binary.BigEndian.PutUint64(out[14+n:], uint64(blockSize))
	binary.BigEndian.PutUint64(out[22+n:], uint64(count))
	binary.BigEndian.PutUint32(out[30+n:], Checksum(src))
	binary.BigEndian.PutUint32(out[34+n:], Checksum(out[:34+n]))
	pos := payloadStart
	for k, frame := range frames {
		e := indexStart + k*blockIndexEntrySize
		binary.BigEndian.PutUint64(out[e:], uint64(len(frame)))
		binary.BigEndian.PutUint32(out[e+8:], Checksum(frame))
		pos += copy(out[pos:], frame)
	}
	binary.BigEndian.PutUint32(out[payloadStart-4:], Checksum(out[indexStart:payloadStart-4]))
	return out, total, nil
}

// BlockHeaderSize returns the container header size for a codec name: the
// offset at which the block index begins. The container adds this, one
// 12-byte index entry per block plus the 4-byte index checksum, and one
// frame Overhead per block on top of the codec payloads.
func BlockHeaderSize(codecName string) int { return blockFixedOverhead + len(codecName) }

// IsBlockContainer reports whether data starts with the multi-block
// container magic — the dispatch check for receivers that accept both
// single-frame (CXA1) and multi-block (CXB1) streams.
func IsBlockContainer(data []byte) bool {
	return len(data) >= len(BlockMagic) && string(data[:len(BlockMagic)]) == BlockMagic
}

// BlockReader is the validated view of a multi-block container: header and
// index are parsed and checksum-verified, block frames are located but not
// decoded. Decoding happens per block on demand (ReadAt, Slice) or across
// all blocks (Decompress), always through SafeDecompress with per-block
// limits, so a hostile frame inside a well-formed container is contained
// exactly like a hostile single frame.
//
// A reader is safe for concurrent use: it holds no decode state, and every
// read decodes into caller-local buffers.
type BlockReader struct {
	codec     string
	bases     int
	blockSize int
	outputSum uint32
	entries   []BlockEntry
	offsets   []int // payload-area offset of each block's frame
	payload   []byte
	// maxCompressed is the resolved per-block payload ceiling from the
	// Limits handed to OpenBlocks.
	maxCompressed int
	met           blockMetrics
}

// OpenBlocks parses and validates a multi-block container from untrusted
// bytes without decoding any block: magic, version, field bounds, header
// checksum, limit enforcement, index sizing, index checksum and exact
// framing (truncated or extended containers are rejected). Every failure
// satisfies errors.Is(err, ErrCorrupt), and — the hostile-length contract —
// nothing proportional to a claimed size is allocated before that claim is
// proven consistent with the bytes actually present.
//
// lim bounds the open: MaxOutput caps the container's total symbol count,
// MaxCompressed caps each block's frame. Metrics land in the default
// registry; use OpenBlocksObserved to aim them at a specific one.
func OpenBlocks(data []byte, lim Limits) (*BlockReader, error) {
	return OpenBlocksObserved(nil, data, lim)
}

// OpenBlocksObserved is OpenBlocks recording seek/decode counters into reg
// (nil means the default registry).
func OpenBlocksObserved(reg *obs.Registry, data []byte, lim Limits) (*BlockReader, error) {
	maxCompressed, maxOutput := lim.effective()
	if len(data) < blockFixedOverhead+1 {
		return nil, Corruptf("blocks: %d bytes is shorter than the minimum header", len(data))
	}
	if !IsBlockContainer(data) {
		return nil, Corruptf("blocks: bad magic %q", data[0:4])
	}
	if data[4] != BlockVersion {
		return nil, Corruptf("blocks: unsupported version %d", data[4])
	}
	n := int(data[5])
	if n == 0 || n > maxFrameCodecName {
		return nil, Corruptf("blocks: codec name length %d out of range", n)
	}
	if len(data) < blockFixedOverhead+n {
		return nil, Corruptf("blocks: truncated header (%d bytes for name length %d)", len(data), n)
	}
	headerSum := binary.BigEndian.Uint32(data[34+n:])
	if got := Checksum(data[:34+n]); got != headerSum {
		return nil, Corruptf("blocks: header checksum mismatch (stored %08x, computed %08x)", headerSum, got)
	}
	bases := binary.BigEndian.Uint64(data[6+n:])
	if bases > math.MaxInt {
		return nil, Corruptf("blocks: symbol count %d overflows int", bases)
	}
	if int(bases) > maxOutput {
		return nil, Corruptf("blocks: container claims %d symbols, limit %d", bases, maxOutput)
	}
	blockSize := binary.BigEndian.Uint64(data[14+n:])
	if blockSize == 0 || blockSize > math.MaxInt {
		return nil, Corruptf("blocks: block size %d out of range", blockSize)
	}
	count := binary.BigEndian.Uint64(data[22+n:])
	if want := (bases + blockSize - 1) / blockSize; count != want {
		return nil, Corruptf("blocks: %d blocks indexed, %d symbols at block size %d require %d", count, bases, blockSize, want)
	}
	// The index must fit in the bytes that are actually present. Checking
	// against the buffer before allocating anything sized by the claim is
	// what keeps a hostile count from costing more than this comparison.
	indexStart := blockFixedOverhead + n
	avail := len(data) - indexStart - 4
	if avail < 0 || count > uint64(avail/blockIndexEntrySize) {
		return nil, Corruptf("blocks: truncated block index (%d bytes for %d entries)", len(data)-indexStart, count)
	}
	payloadStart := indexStart + int(count)*blockIndexEntrySize + 4
	indexSum := binary.BigEndian.Uint32(data[payloadStart-4:])
	if got := Checksum(data[indexStart : payloadStart-4]); got != indexSum {
		return nil, Corruptf("blocks: index checksum mismatch (stored %08x, computed %08x)", indexSum, got)
	}

	r := &BlockReader{
		codec:         string(data[6 : 6+n]),
		bases:         int(bases),
		blockSize:     int(blockSize),
		outputSum:     binary.BigEndian.Uint32(data[30+n:]),
		entries:       make([]BlockEntry, count),
		offsets:       make([]int, count),
		payload:       data[payloadStart:],
		maxCompressed: maxCompressed,
		met:           newBlockMetrics(reg, string(data[6:6+n])),
	}
	pos := 0
	for k := range r.entries {
		e := indexStart + k*blockIndexEntrySize
		length := binary.BigEndian.Uint64(data[e:])
		if length > uint64(len(r.payload)-pos) {
			return nil, Corruptf("blocks: index entry %d claims %d frame bytes, %d remain", k, length, len(r.payload)-pos)
		}
		r.entries[k] = BlockEntry{Length: int(length), Sum: binary.BigEndian.Uint32(data[e+8:])}
		r.offsets[k] = pos
		pos += int(length)
	}
	if pos != len(r.payload) {
		return nil, Corruptf("blocks: %d trailing bytes after the last frame", len(r.payload)-pos)
	}
	return r, nil
}

// Codec returns the registry identifier recorded in the container header.
func (r *BlockReader) Codec() string { return r.codec }

// Bases returns the total symbol count the container restores to.
func (r *BlockReader) Bases() int { return r.bases }

// BlockSize returns the per-block symbol granularity.
func (r *BlockReader) BlockSize() int { return r.blockSize }

// Blocks returns the number of blocks in the container.
func (r *BlockReader) Blocks() int { return len(r.entries) }

// Index returns a copy of the per-block index (frame length and checksum
// per block) — a copy, so callers cannot corrupt the reader's view.
func (r *BlockReader) Index() []BlockEntry {
	return append([]BlockEntry(nil), r.entries...)
}

// blockBases returns the symbol count block k must restore to: a full
// block everywhere except the tail.
func (r *BlockReader) blockBases(k int) int {
	if k == len(r.entries)-1 {
		return r.bases - k*r.blockSize
	}
	return r.blockSize
}

// block decodes block k through the hardened per-frame path: the index
// checksum proves the frame bytes arrived intact before any parsing, then
// SafeDecompress pins the container's codec, bounds the block's output to
// exactly its slot in symbol space, contains codec panics, and verifies
// the restored symbols against the frame's own checksum.
func (r *BlockReader) block(k int) ([]byte, Stats, error) {
	frame := r.payload[r.offsets[k] : r.offsets[k]+r.entries[k].Length]
	if got := Checksum(frame); got != r.entries[k].Sum {
		return nil, Stats{}, Corruptf("blocks: block %d frame checksum mismatch (stored %08x, computed %08x)", k, r.entries[k].Sum, got)
	}
	want := r.blockBases(k)
	out, st, err := SafeDecompress(r.codec, frame, Limits{MaxCompressed: r.maxCompressed, MaxOutput: want})
	if err != nil {
		return nil, Stats{}, Corruptf("blocks: block %d: %v", k, err)
	}
	if len(out) != want {
		return nil, Stats{}, Corruptf("blocks: block %d restored %d symbols, slot holds %d", k, len(out), want)
	}
	r.met.decoded.Inc()
	r.met.decMS.Observe(float64(st.WorkNS) / 1e6)
	return out, st, nil
}

// Decompress restores the full symbol sequence: every block decoded
// through the hardened per-block path into a single output buffer, then
// the container's whole-output checksum verified over the result. That
// final check is what per-block frames cannot provide — it catches blocks
// reordered or substituted together with a consistently rewritten index.
// Peak memory is the output plus one block's working set.
func (r *BlockReader) Decompress() ([]byte, Stats, error) {
	out := make([]byte, r.bases)
	var total Stats
	for k := range r.entries {
		block, st, err := r.block(k)
		if err != nil {
			return nil, Stats{}, err
		}
		copy(out[k*r.blockSize:], block)
		total.Add(st)
	}
	if got := Checksum(out); got != r.outputSum {
		return nil, Stats{}, Corruptf("blocks: restored output checksum mismatch (stored %08x, computed %08x)", r.outputSum, got)
	}
	return out, total, nil
}

// readRange decodes the symbol range [off, off+len(dst)) into dst, which
// the caller has bounds-checked against Bases. Only the blocks overlapping
// the range are decoded.
func (r *BlockReader) readRange(dst []byte, off int) (Stats, error) {
	var total Stats
	r.met.seeks.Inc()
	for copied := 0; copied < len(dst); {
		k := (off + copied) / r.blockSize
		block, st, err := r.block(k)
		if err != nil {
			return Stats{}, err
		}
		total.Add(st)
		copied += copy(dst[copied:], block[(off+copied)-k*r.blockSize:])
	}
	return total, nil
}

// Slice decodes and returns the n symbols starting at off. Out-of-range
// requests are caller errors, not corruption. The seek-equivalence
// property — Slice(off, n) equals the same slice of Decompress()'s output —
// is what compresstest.BlockSuite proves for every codec.
func (r *BlockReader) Slice(off, n int) ([]byte, Stats, error) {
	if off < 0 || n < 0 || off+n > r.bases || off+n < 0 {
		return nil, Stats{}, fmt.Errorf("compress: blocks: slice [%d, %d+%d) out of range [0, %d)", off, off, n, r.bases)
	}
	dst := make([]byte, n)
	st, err := r.readRange(dst, off)
	if err != nil {
		return nil, Stats{}, err
	}
	return dst, st, nil
}

// ReadAt implements io.ReaderAt over the restored symbol space: it fills p
// with the symbols starting at off, decoding only the overlapping blocks,
// and returns io.EOF on a read truncated by the end of the sequence.
func (r *BlockReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("compress: blocks: negative offset %d", off)
	}
	if off >= int64(r.bases) {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > int64(r.bases)-off {
		n = int(int64(r.bases) - off)
	}
	if _, err := r.readRange(p[:n], int(off)); err != nil {
		return 0, err
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// SafeDecompressAny restores symbols from either container format: a
// multi-block CXB1 container through the validated block path, anything
// else through the single-frame SafeDecompress. name, when non-empty, pins
// the codec either container must record. Every failure satisfies
// errors.Is(err, ErrCorrupt).
func SafeDecompressAny(name string, data []byte, lim Limits) ([]byte, Stats, error) {
	if !IsBlockContainer(data) {
		return SafeDecompress(name, data, lim)
	}
	r, err := OpenBlocks(data, lim)
	if err != nil {
		return nil, Stats{}, err
	}
	if name != "" && r.Codec() != name {
		return nil, Stats{}, Corruptf("blocks: container records codec %q, want %q", r.Codec(), name)
	}
	return r.Decompress()
}
