// Package dnapack implements a DNAPack-style compressor (Behzadi & Le
// Fessant, CPM 2005 — the paper's Table 1 row "DNAPack: Dynamic programming
// to search repeats | Hamming distance | order-2 arithmetic coding or
// context tree weighting or naïve 2-bits").
//
// Unlike the greedy parsers (DNAX, GenCompress, BioCompress), DNAPack picks
// its repeat cover by dynamic programming: a backward pass computes, for
// every position, the cheapest encoding of the remaining suffix, choosing
// between a literal and every candidate repeat (exact matches extended with
// Hamming-distance substitutions); the forward pass then emits the optimal
// decisions. Candidates at each position are gathered in a prior
// left-to-right pass so that every repeat's source lies strictly in the
// decoded prefix.
//
// Stream layout (one range-coder stream after a uvarint base count):
//
//	token   : flag bit (0 literal / 1 repeat)
//	literal : symbol through the order-2 context model
//	repeat  : distance-1 (UintModel), length-minRepeat (UintModel),
//	          subCount (UintModel), then per substitution a delta offset
//	          (UintModel) and the 2-bit base
package dnapack

import (
	"encoding/binary"

	"github.com/srl-nuces/ctxdna/internal/arith"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/match"
)

func init() {
	compress.Register("dnapack", func() compress.Codec { return New(Config{}) })
}

// Config tunes the codec; zero values select defaults.
type Config struct {
	MinRepeat int // minimum repeat length (default 16)
	MaxChain  int // matcher candidate walk bound
	MaxSubs   int // Hamming substitution budget per repeat (default 8)
}

// Defaults.
const (
	DefaultMinRepeat = 16
	DefaultMaxSubs   = 8
)

// Codec implements compress.Codec.
type Codec struct {
	cfg Config
}

// New returns a DNAPack codec.
func New(cfg Config) *Codec {
	if cfg.MinRepeat == 0 {
		cfg.MinRepeat = DefaultMinRepeat
	}
	if cfg.MinRepeat < match.DefaultK {
		cfg.MinRepeat = match.DefaultK
	}
	if cfg.MaxChain == 0 {
		// The DP gathers candidates at *every* position (greedy parsers
		// only search at parse positions), so the per-position chain walk
		// is kept shorter to stay near the greedy coders' total search cost.
		cfg.MaxChain = 16
	}
	if cfg.MaxSubs == 0 {
		cfg.MaxSubs = DefaultMaxSubs
	}
	return &Codec{cfg: cfg}
}

// Name implements compress.Codec.
func (*Codec) Name() string { return "dnapack" }

// candidate is one approximate repeat usable at a target position.
type candidate struct {
	src  int
	tlen int
	subs []match.EditOp // OpSub only
}

// Cost estimates in integer "centibits" so the DP stays in int64.
const (
	literalCB = 195 // ~1.95 bits through order-2 on DNA
	flagCB    = 10
	subCB     = 900 // offset delta + base, adaptive average
)

func bitLen32(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

func descriptorCB(c candidate, pos int) int64 {
	dist := pos - c.src
	return int64(flagCB + 100*(2*bitLen32(dist)+2*bitLen32(c.tlen)+2*bitLen32(len(c.subs)+1)) +
		subCB*len(c.subs))
}

// Cost model: candidate gathering mirrors DNAX's search plus a Hamming
// extension per candidate; the DP adds two linear passes. The reference
// DNAPack binary is research-grade, though less extreme than GenCompress.
const (
	nsPerProbe          = 8.0
	nsPerExtend         = 3.0
	nsPerLiteral        = 55.0
	nsPerMatch          = 260.0
	nsPerCopied         = 3.5
	nsPerSearch         = 70.0
	nsPerIndexed        = 15.0
	nsPerDPStep         = 12.0
	startupCompressNS   = 15_000_000
	startupDecompressNS = 3_000_000
	implFactor          = 2.0
)

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(src)))

	for i, s := range src {
		if s > 3 {
			return nil, compress.Stats{}, compress.Corruptf("dnapack: invalid symbol %d at %d", s, i)
		}
	}

	// Pass 1 (left to right): gather the best candidate per position with
	// sources strictly inside the prefix.
	m := match.NewHashMatcher(src, match.WithMaxChain(c.cfg.MaxChain))
	var searchStats match.Stats
	approxCfg := match.ApproxConfig{MaxOps: c.cfg.MaxSubs, MaxRun: 2, Lookahead: 4, HammingOnly: true}
	cands := make([]candidate, len(src))
	for i := range src {
		m.Advance(i)
		mt, ok := m.FindForward(i)
		if !ok || mt.Src+mt.Len > i {
			continue
		}
		am := match.ExtendApprox(src, mt.Src, i, mt.Len, approxCfg, &searchStats)
		if am.TLen < c.cfg.MinRepeat {
			continue
		}
		cands[i] = candidate{src: am.Src, tlen: am.TLen, subs: am.Ops}
	}

	// Pass 2 (right to left): DP over suffix costs.
	n := len(src)
	cost := make([]int64, n+1)
	take := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		cost[i] = cost[i+1] + literalCB + flagCB
		if cd := cands[i]; cd.tlen > 0 {
			if alt := cost[i+cd.tlen] + descriptorCB(cd, i); alt < cost[i] {
				cost[i] = alt
				take[i] = true
			}
		}
	}

	// Pass 3: emit the optimal parse.
	lit := arith.NewSymbolModel(2)
	flag := arith.NewProb()
	distM := arith.NewUintModel()
	lenM := arith.NewUintModel()
	subCountM := arith.NewUintModel()
	subOffM := arith.NewUintModel()
	baseProbs := arith.NewProbSlice(2)
	enc := arith.NewEncoder(len(src)/3 + 64)

	var literals, matches, copied, subsEmitted int64
	i := 0
	for i < n {
		if take[i] {
			cd := cands[i]
			enc.EncodeBit(&flag, 1)
			distM.Encode(enc, uint64(i-cd.src-1))
			lenM.Encode(enc, uint64(cd.tlen-c.cfg.MinRepeat))
			subCountM.Encode(enc, uint64(len(cd.subs)))
			prev := 0
			for _, op := range cd.subs {
				subOffM.Encode(enc, uint64(op.Off-prev))
				prev = op.Off
				enc.EncodeBit(&baseProbs[0], int(op.Base>>1))
				enc.EncodeBit(&baseProbs[1], int(op.Base&1))
			}
			for t := 0; t < cd.tlen; t++ {
				lit.Observe(src[i+t])
			}
			matches++
			copied += int64(cd.tlen)
			subsEmitted += int64(len(cd.subs))
			i += cd.tlen
			continue
		}
		enc.EncodeBit(&flag, 0)
		lit.Encode(enc, src[i])
		literals++
		i++
	}
	payload := enc.Finish()
	out := make([]byte, 0, hn+len(payload))
	out = append(out, hdr[:hn]...)
	out = append(out, payload...)

	ms := m.Stats()
	searchStats.Probes += ms.Probes
	searchStats.Extends += ms.Extends
	st := compress.Stats{
		WorkNS: startupCompressNS + int64(implFactor*(nsPerProbe*float64(searchStats.Probes)+
			nsPerExtend*float64(searchStats.Extends)+nsPerSearch*float64(n)+
			nsPerIndexed*float64(n)+nsPerDPStep*float64(n)+
			nsPerLiteral*float64(literals)+nsPerMatch*float64(matches)+nsPerCopied*float64(copied))),
		PeakMem: m.MemoryFootprint() + lit.MemoryFootprint() +
			16*n + // cands + cost + take
			len(src) + len(out),
	}
	return out, st, nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	nBases, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("dnapack: bad length header")
	}
	if nBases > 1<<34 {
		return nil, compress.Stats{}, compress.Corruptf("dnapack: implausible length %d", nBases)
	}
	lit := arith.NewSymbolModel(2)
	flag := arith.NewProb()
	distM := arith.NewUintModel()
	lenM := arith.NewUintModel()
	subCountM := arith.NewUintModel()
	subOffM := arith.NewUintModel()
	baseProbs := arith.NewProbSlice(2)
	dec := arith.NewDecoder(data[used:])

	out := make([]byte, 0, compress.HeaderPrealloc(nBases))
	var literals, matches, copied int64
	for uint64(len(out)) < nBases {
		if dec.DecodeBit(&flag) == 0 {
			out = append(out, lit.Decode(dec))
			literals++
			continue
		}
		dist := int(distM.Decode(dec)) + 1
		srcPos := len(out) - dist
		tlen := int(lenM.Decode(dec)) + c.cfg.MinRepeat
		nSubs := int(subCountM.Decode(dec))
		if srcPos < 0 || tlen <= 0 || uint64(len(out))+uint64(tlen) > nBases || nSubs > c.cfg.MaxSubs+1 || srcPos+tlen > len(out) {
			return nil, compress.Stats{}, compress.Corruptf("dnapack: repeat descriptor out of range (src %d len %d subs %d)", srcPos, tlen, nSubs)
		}
		subs := make(map[int]byte, nSubs)
		prev := 0
		for s := 0; s < nSubs; s++ {
			off := prev + int(subOffM.Decode(dec))
			prev = off
			hi := dec.DecodeBit(&baseProbs[0])
			lo := dec.DecodeBit(&baseProbs[1])
			if off >= tlen {
				return nil, compress.Stats{}, compress.Corruptf("dnapack: substitution offset %d beyond repeat %d", off, tlen)
			}
			subs[off] = byte(hi<<1 | lo)
		}
		for t := 0; t < tlen; t++ {
			b := out[srcPos+t]
			if sb, ok := subs[t]; ok {
				b = sb
			}
			out = append(out, b)
			lit.Observe(b)
		}
		matches++
		copied += int64(tlen)
	}
	st := compress.Stats{
		WorkNS: startupDecompressNS + int64(implFactor*(nsPerLiteral*float64(literals)+
			nsPerMatch*float64(matches)+nsPerCopied*float64(copied))),
		PeakMem: lit.MemoryFootprint() + len(data) + int(nBases),
	}
	return out, st, nil
}
