package dnapack

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/compress/dnax"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestConformance(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{}) })
}

func TestConformanceTightBudget(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{MaxSubs: 2, MinRepeat: 20}) })
}

func TestDPParseBeatsGreedyExactParse(t *testing.T) {
	// The DP parse with Hamming repeats should beat DNAX's greedy
	// exact-only parse on mutated-repeat DNA (that is DNAPack's claim:
	// "better results than Gencompress, Ctw and DNACompress").
	p := synth.Profile{Length: 80000, GC: 0.4, RepeatProb: 0.002, RepeatMin: 30, RepeatMax: 500,
		RCFraction: 0, MutationRate: 0.03, LocalOrder: 3, LocalBias: 0.8}
	src := p.Generate(11)
	packOut, _, err := New(Config{}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against exhaustive-stride DNAX so the difference is the
	// parse strategy, not the fingerprint loss.
	dnaxOut, _, err := dnax.New(dnax.Config{Stride: 1}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	packBPB := compress.Ratio(len(src), len(packOut))
	dnaxBPB := compress.Ratio(len(src), len(dnaxOut))
	t.Logf("dnapack %.3f bits/base vs dnax(stride=1) %.3f", packBPB, dnaxBPB)
	if packBPB >= dnaxBPB {
		t.Errorf("DP+Hamming parse (%.3f) should beat greedy exact parse (%.3f)", packBPB, dnaxBPB)
	}
}

func TestSubstitutionBudgetRespected(t *testing.T) {
	p := synth.Profile{Length: 30000, GC: 0.4, RepeatProb: 0.003, RepeatMin: 40, RepeatMax: 400, MutationRate: 0.05}
	src := p.Generate(3)
	for _, maxSubs := range []int{1, 4, 16} {
		c := New(Config{MaxSubs: maxSubs})
		data, _, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		restored, _, err := c.Decompress(data)
		if err != nil {
			t.Fatalf("MaxSubs=%d: %v", maxSubs, err)
		}
		if len(restored) != len(src) {
			t.Fatalf("MaxSubs=%d: round trip length", maxSubs)
		}
	}
}

func TestDecompressionCheap(t *testing.T) {
	p := synth.Profile{Length: 50000, GC: 0.4, RepeatProb: 0.002, RepeatMin: 30, RepeatMax: 400, MutationRate: 0.03}
	src := p.Generate(7)
	c := New(Config{})
	data, cst, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	_, dst, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if dst.WorkNS >= cst.WorkNS {
		t.Fatalf("decompress %d not below compress %d", dst.WorkNS, cst.WorkNS)
	}
}

func TestRejectsInvalidSymbol(t *testing.T) {
	if _, _, err := New(Config{}).Compress([]byte{0, 7}); err == nil {
		t.Fatal("accepted invalid symbol")
	}
}

func TestRejectsEmptyStream(t *testing.T) {
	if _, _, err := New(Config{}).Decompress(nil); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func BenchmarkCompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 17, GC: 0.4, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.03, LocalOrder: 3, LocalBias: 0.8}
	src := p.Generate(1)
	c := New(Config{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}
