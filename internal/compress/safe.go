package compress

import (
	"errors"
	"math"
)

// Default resource ceilings for decompressing untrusted frames. They are
// far above anything the benchmark corpus produces while still bounding
// what a hostile header can make a receiver allocate.
const (
	// DefaultMaxCompressed caps the accepted payload size (1 GiB).
	DefaultMaxCompressed = 1 << 30
	// DefaultMaxOutput caps the restored symbol count (1 Gbase).
	DefaultMaxOutput = 1 << 30

	// MaxHeaderPrealloc caps what a decoder may allocate up front on the
	// strength of a decoded size claim alone (1 MiB). A header field is an
	// attacker's assertion; until the payload has produced that many
	// symbols, memory is committed only up to this bound and grown by
	// append — so a hostile 20-byte frame claiming 2^34 bases costs the
	// receiver 1 MiB, not 16 GiB, before the truncated stream errors out.
	MaxHeaderPrealloc = 1 << 20
)

// HeaderPrealloc clamps a decoded size claim to the preallocation cap.
// Decoders use the result as the capacity hint for an append-grown output
// buffer: `out := make([]byte, 0, HeaderPrealloc(nBases))`. Legitimate
// large outputs still amortize via append's geometric growth; hostile
// claims never commit more than MaxHeaderPrealloc ahead of the bytes that
// justify it. dnalint's allocguard analyzer recognizes this helper as a
// sanctioned bound.
func HeaderPrealloc(claim uint64) int {
	if claim > MaxHeaderPrealloc {
		return MaxHeaderPrealloc
	}
	return int(claim)
}

// HeaderPreallocN is HeaderPrealloc for slices of elemBytes-sized
// elements: the returned element count keeps the up-front commitment under
// MaxHeaderPrealloc bytes, not MaxHeaderPrealloc elements.
func HeaderPreallocN(claim uint64, elemBytes int) int {
	if elemBytes < 1 {
		elemBytes = 1
	}
	limit := uint64(MaxHeaderPrealloc / elemBytes)
	if claim > limit {
		return int(limit)
	}
	return int(claim)
}

// Limits bounds what SafeDecompress will accept from an untrusted frame.
// The zero value applies the package defaults; a negative field means
// unlimited (trusted local data of arbitrary size).
type Limits struct {
	// MaxCompressed is the largest payload, in bytes, to hand a codec.
	MaxCompressed int
	// MaxOutput is the largest symbol count a frame may claim to restore.
	MaxOutput int
}

// effective resolves the zero-value and unlimited conventions.
func (l Limits) effective() (maxCompressed, maxOutput int) {
	maxCompressed, maxOutput = l.MaxCompressed, l.MaxOutput
	if maxCompressed == 0 {
		maxCompressed = DefaultMaxCompressed
	} else if maxCompressed < 0 {
		maxCompressed = math.MaxInt
	}
	if maxOutput == 0 {
		maxOutput = DefaultMaxOutput
	} else if maxOutput < 0 {
		maxOutput = math.MaxInt
	}
	return maxCompressed, maxOutput
}

// SafeDecompress restores the symbols from an armored frame (Seal output)
// without trusting a single byte of it. It validates the frame (Open),
// enforces lim on both the payload size and the claimed output size before
// running any codec, contains codec panics, and verifies the restored
// output's length and checksum against the header. name, when non-empty,
// additionally requires the frame to record that codec — a receiver pinning
// the codec it negotiated.
//
// Every failure — framing, limits, codec error, codec panic, output
// mismatch — satisfies errors.Is(err, ErrCorrupt), so callers classify
// hostile input with one check and never crash on it.
func SafeDecompress(name string, data []byte, lim Limits) ([]byte, Stats, error) {
	maxCompressed, maxOutput := lim.effective()
	fr, err := Open(data)
	if err != nil {
		return nil, Stats{}, err
	}
	if name != "" && fr.Codec != name {
		return nil, Stats{}, Corruptf("frame records codec %q, want %q", fr.Codec, name)
	}
	if len(fr.Payload) > maxCompressed {
		return nil, Stats{}, Corruptf("payload is %d bytes, limit %d", len(fr.Payload), maxCompressed)
	}
	if fr.Bases > maxOutput {
		return nil, Stats{}, Corruptf("frame claims %d symbols, limit %d", fr.Bases, maxOutput)
	}
	codec, err := New(fr.Codec)
	if err != nil {
		return nil, Stats{}, Corruptf("frame records unknown codec %q", fr.Codec)
	}
	out, st, err := decompressRecovering(codec, fr.Payload)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			return nil, Stats{}, err
		}
		return nil, Stats{}, Corruptf("codec %s: %v", fr.Codec, err)
	}
	if len(out) != fr.Bases {
		return nil, Stats{}, Corruptf("restored %d symbols, frame claims %d", len(out), fr.Bases)
	}
	if got := Checksum(out); got != fr.OutputSum {
		return nil, Stats{}, Corruptf("restored output checksum mismatch (stored %08x, computed %08x)", fr.OutputSum, got)
	}
	return out, st, nil
}

// decompressRecovering runs codec.Decompress with panic containment: a
// decoder tripped up by bytes the checksums could not rule out (a hostile
// frame with internally consistent checksums) surfaces as ErrCorrupt
// instead of crashing the receiving process.
func decompressRecovering(codec Codec, payload []byte) (out []byte, st Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, st = nil, Stats{}
			err = Corruptf("codec %s panicked: %v", codec.Name(), r)
		}
	}()
	return codec.Decompress(payload)
}
