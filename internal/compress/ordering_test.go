package compress_test

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/synth"

	// Register all codecs.
	_ "github.com/srl-nuces/ctxdna/internal/compress/biocompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
)

func TestRegistry(t *testing.T) {
	names := compress.Names()
	want := []string{"biocompress", "ctw", "dnacompress", "dnapack", "dnax", "gencompress", "gzip", "twobit", "xm"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry has %v, want %v", names, want)
		}
	}
	for _, n := range names {
		c, err := compress.New(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != n {
			t.Errorf("codec %q reports name %q", n, c.Name())
		}
	}
	if _, err := compress.New("nope"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestPaperSet(t *testing.T) {
	set := compress.PaperSet()
	want := []string{"ctw", "dnax", "gencompress", "gzip"}
	for i, c := range set {
		if c.Name() != want[i] {
			t.Fatalf("PaperSet[%d] = %s, want %s", i, c.Name(), want[i])
		}
	}
}

// measure compresses src with a fresh codec and returns (bytes, stats).
func measure(t *testing.T, name string, src []byte) (int, compress.Stats) {
	t.Helper()
	c, err := compress.New(name)
	if err != nil {
		t.Fatal(err)
	}
	data, st, err := c.Compress(src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return len(data), st
}

// TestPaperShapeRatios verifies the paper's Figure 4 ordering on a
// representative bacterial-like sequence: GenCompress best ratio, CTW close,
// DNAX mid "fine in compression ratio after Gencompress and CTW", gzip worst
// of the four (and above 2 bits/base).
func TestPaperShapeRatios(t *testing.T) {
	p := synth.Profile{Length: 120000, GC: 0.38, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.2, MutationRate: 0.02, LocalOrder: 3, LocalBias: 0.55}
	src := p.Generate(2015)

	sizes := map[string]int{}
	for _, name := range []string{"ctw", "dnax", "gencompress", "gzip", "twobit"} {
		sizes[name], _ = measure(t, name, src)
	}
	bpb := func(name string) float64 { return compress.Ratio(len(src), sizes[name]) }

	t.Logf("bits/base: gencompress=%.3f ctw=%.3f dnax=%.3f gzip=%.3f twobit=%.3f",
		bpb("gencompress"), bpb("ctw"), bpb("dnax"), bpb("gzip"), bpb("twobit"))

	if sizes["gzip"] <= sizes["dnax"] || sizes["gzip"] <= sizes["ctw"] || sizes["gzip"] <= sizes["gencompress"] {
		t.Errorf("gzip must have the worst ratio of the four: %v", sizes)
	}
	if bpb("gzip") < 2.0 {
		t.Errorf("gzip below 2 bits/base on DNA: %.3f", bpb("gzip"))
	}
	if sizes["gencompress"] > sizes["dnax"] {
		t.Errorf("gencompress (%d) should beat dnax (%d) on ratio", sizes["gencompress"], sizes["dnax"])
	}
	for _, name := range []string{"ctw", "dnax", "gencompress"} {
		if bpb(name) >= 2.0 {
			t.Errorf("%s did not beat the 2-bit floor: %.3f", name, bpb(name))
		}
	}
}

// TestPaperShapeTimes verifies the modeled-cost ordering behind Figures 5/6:
// GenCompress slowest compression; DNAX fastest DNA-aware compression and
// the least decompression work; CTW the worst decompression.
func TestPaperShapeTimes(t *testing.T) {
	// 250 KB: the large-file regime where the paper's Figure 5 ordering
	// (DNAX fastest DNA codec, GenCompress slowest) holds. Below ~140 KB
	// DNAX's fixed table-initialization cost hands the advantage to CTW and
	// GenCompress — exactly the paper's small-file anomaly, asserted by the
	// crossover tests in the experiment package.
	p := synth.Profile{Length: 250000, GC: 0.4, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.2, MutationRate: 0.02, LocalOrder: 3, LocalBias: 0.55}
	src := p.Generate(7)

	comp := map[string]int64{}
	decomp := map[string]int64{}
	for _, name := range []string{"ctw", "dnax", "gencompress", "gzip"} {
		c, err := compress.New(name)
		if err != nil {
			t.Fatal(err)
		}
		data, cst, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		_, dst, err := c.Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		comp[name] = cst.WorkNS
		decomp[name] = dst.WorkNS
	}
	t.Logf("compress ms: gencompress=%.1f ctw=%.1f dnax=%.1f gzip=%.1f",
		float64(comp["gencompress"])/1e6, float64(comp["ctw"])/1e6, float64(comp["dnax"])/1e6, float64(comp["gzip"])/1e6)
	t.Logf("decompress ms: ctw=%.1f gencompress=%.1f dnax=%.1f gzip=%.1f",
		float64(decomp["ctw"])/1e6, float64(decomp["gencompress"])/1e6, float64(decomp["dnax"])/1e6, float64(decomp["gzip"])/1e6)

	if comp["gencompress"] <= comp["ctw"] || comp["gencompress"] <= comp["dnax"] || comp["gencompress"] <= comp["gzip"] {
		t.Errorf("GenCompress must be the slowest compressor (Fig. 5): %v", comp)
	}
	if comp["dnax"] >= comp["gencompress"] || comp["dnax"] >= comp["ctw"] {
		t.Errorf("DNAX must compress faster than GenCompress and CTW: %v", comp)
	}
	if decomp["ctw"] <= decomp["dnax"] || decomp["ctw"] <= decomp["gencompress"] || decomp["ctw"] <= decomp["gzip"] {
		t.Errorf("CTW must have the worst decompression (paper §V): %v", decomp)
	}
	if decomp["dnax"] >= decomp["ctw"] || decomp["dnax"] >= decomp["gencompress"] {
		t.Errorf("DNAX must have the least DNA-codec decompression work: %v", decomp)
	}
}

// TestPaperShapeRAM verifies the RAM observations: gzip lowest, CTW heavy
// ("CTW consumes more memory"), on mid-size files.
func TestPaperShapeRAM(t *testing.T) {
	p := synth.Profile{Length: 80000, GC: 0.4, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.02, LocalOrder: 3, LocalBias: 0.55}
	src := p.Generate(8)
	mem := map[string]int{}
	for _, name := range []string{"ctw", "dnax", "gencompress", "gzip"} {
		_, st := measure(t, name, src)
		mem[name] = st.PeakMem
	}
	t.Logf("peak mem KB: ctw=%d dnax=%d gencompress=%d gzip=%d",
		mem["ctw"]/1024, mem["dnax"]/1024, mem["gencompress"]/1024, mem["gzip"]/1024)
	if mem["gzip"] >= mem["ctw"] || mem["gzip"] >= mem["dnax"] || mem["gzip"] >= mem["gencompress"] {
		t.Errorf("gzip must use the least RAM: %v", mem)
	}
	if mem["ctw"] <= mem["dnax"] {
		t.Errorf("CTW must out-consume DNAX on RAM for this size: %v", mem)
	}
}
