package compress_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"

	_ "github.com/srl-nuces/ctxdna/internal/compress/biocompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
)

func TestSafeDecompressRoundTrip(t *testing.T) {
	src := bytes.Repeat([]byte{0, 1, 2, 3}, 512)
	for _, name := range compress.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := compress.New(name)
			if err != nil {
				t.Fatal(err)
			}
			payload, _, err := c.Compress(src)
			if err != nil {
				t.Fatal(err)
			}
			frame := compress.Seal(name, src, payload)
			out, st, err := compress.SafeDecompress(name, frame, compress.Limits{})
			if err != nil {
				t.Fatalf("SafeDecompress: %v", err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("restored %d symbols, want %d", len(out), len(src))
			}
			if st.WorkNS < 0 {
				t.Fatal("negative modeled work")
			}
		})
	}
}

func TestSafeDecompressPinsCodec(t *testing.T) {
	src := []byte{0, 1, 2, 3}
	c, _ := compress.New("dnapack")
	payload, _, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	frame := compress.Seal("dnapack", src, payload)
	if _, _, err := compress.SafeDecompress("xm", frame, compress.Limits{}); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("codec pin violation returned %v, want ErrCorrupt", err)
	}
	// Empty name accepts whatever the frame records.
	if _, _, err := compress.SafeDecompress("", frame, compress.Limits{}); err != nil {
		t.Fatalf("unpinned decode failed: %v", err)
	}
}

func TestSafeDecompressUnknownCodec(t *testing.T) {
	frame := compress.Seal("nosuchcodec", []byte{1}, []byte{1})
	if _, _, err := compress.SafeDecompress("", frame, compress.Limits{}); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("unknown codec returned %v, want ErrCorrupt", err)
	}
}

// TestSafeDecompressLimits: both ceilings reject before the codec runs, and
// negative limits mean unlimited.
func TestSafeDecompressLimits(t *testing.T) {
	src := bytes.Repeat([]byte{1, 2}, 300)
	c, _ := compress.New("twobit")
	payload, _, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	frame := compress.Seal("twobit", src, payload)

	if _, _, err := compress.SafeDecompress("", frame, compress.Limits{MaxOutput: len(src) - 1}); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("MaxOutput breach returned %v, want ErrCorrupt", err)
	}
	if _, _, err := compress.SafeDecompress("", frame, compress.Limits{MaxCompressed: len(payload) - 1}); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("MaxCompressed breach returned %v, want ErrCorrupt", err)
	}
	if _, _, err := compress.SafeDecompress("", frame, compress.Limits{MaxCompressed: -1, MaxOutput: -1}); err != nil {
		t.Fatalf("unlimited decode failed: %v", err)
	}
	if out, _, err := compress.SafeDecompress("", frame, compress.Limits{MaxOutput: len(src)}); err != nil || !bytes.Equal(out, src) {
		t.Fatalf("exact-limit decode failed: %v", err)
	}
}

// garbageSeeds are the FuzzDecompressAll corpus promoted to a deterministic
// table: CI skips -fuzz campaigns, so the seeds that historically probed
// decoder edges (varint length bombs, plausible tiny headers, corrupted
// valid-prefix streams) run on every plain `go test` against every codec.
func garbageSeeds(t *testing.T) [][]byte {
	t.Helper()
	seeds := [][]byte{
		{},
		{0x00},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		bytes.Repeat([]byte{0xA5}, 64),
		{16, 0, 0, 0, 0, 0},          // plausible tiny header
		{200, 200, 200, 200, 200, 1}, // huge varint length
		append([]byte{40}, bytes.Repeat([]byte{0x55}, 100)...),
		bytes.Repeat([]byte{0x00}, 33),
		{0x01, 0x80, 0xFE, 0x7F, 0x00, 0xC0},
	}
	// A valid dnax stream prefix with a corrupted tail — the fuzz seed that
	// exercises mid-stream arithmetic-decoder desync.
	c, err := compress.New("dnax")
	if err != nil {
		t.Fatal(err)
	}
	if data, _, err := c.Compress([]byte{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}); err == nil {
		data[len(data)-1] ^= 0xFF
		seeds = append(seeds, data)
	}
	return seeds
}

// TestDecompressNeverPanics feeds the promoted fuzz seeds to every
// registered codec, raw and sealed. Raw: the bare decoder must not panic
// and must not fabricate absurd output. Sealed: SafeDecompress must
// classify a well-framed garbage payload as ErrCorrupt (or restore it
// losslessly if the bytes happen to decode — then the checksum proves it).
func TestDecompressNeverPanics(t *testing.T) {
	seeds := garbageSeeds(t)
	for _, name := range compress.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for i, seed := range seeds {
				i, seed := i, seed
				t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
					c, err := compress.New(name)
					if err != nil {
						t.Fatal(err)
					}
					func() {
						defer func() {
							if r := recover(); r != nil {
								t.Fatalf("%s: raw Decompress panicked on seed %d: %v", name, i, r)
							}
						}()
						out, _, err := c.Decompress(seed)
						if err == nil && len(out) > 1<<26 {
							t.Fatalf("%s: decompressed %d bytes from %d-byte garbage", name, len(out), len(seed))
						}
					}()
					// Sealed with a claimed output that cannot match: the
					// hardened path must reject, never crash.
					frame := compress.SealSum(name, len(seed)+1, 0xBADC0DE, seed)
					if _, _, err := compress.SafeDecompress(name, frame, compress.Limits{}); !errors.Is(err, compress.ErrCorrupt) {
						t.Fatalf("%s: sealed garbage returned %v, want ErrCorrupt", name, err)
					}
				})
			}
		})
	}
}
