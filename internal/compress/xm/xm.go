// Package xm implements an expert-model DNA compressor in the style of XM
// (Cao, Dix, Allison & Mears, DCC 2007) — the strongest member of the
// paper's "statistics based" horizontal category (Table 1 row "XM:
// Statistics"). A panel of experts each propose a distribution over the
// next base:
//
//   - Markov experts of several orders (context-counted, KT-smoothed);
//   - a copy expert that tracks an offset into the already-coded sequence
//     and bets the next base repeats what it saw there, re-anchoring itself
//     through an incremental k-mer index whenever it starts missing.
//
// The experts' opinions are blended by multiplicative-weights averaging
// (the practical form of XM's Bayesian averaging): each expert's weight is
// multiplied by the probability it assigned to the symbol that actually
// occurred, decayed toward uniform so the panel re-adapts quickly when the
// sequence changes character. The blended distribution drives the range
// coder through a two-bit conditional decomposition.
//
// Because the copy expert re-anchors using only the processed prefix, the
// decoder reconstructs the identical expert state from its own output —
// no side information is transmitted.
package xm

import (
	"encoding/binary"
	"math"

	"github.com/srl-nuces/ctxdna/internal/arith"
	"github.com/srl-nuces/ctxdna/internal/compress"
)

func init() {
	compress.Register("xm", func() compress.Codec { return New(Config{}) })
}

// Config tunes the expert panel. Zero values select defaults.
type Config struct {
	// Orders lists the Markov expert orders (default 1, 2, 4, 8).
	Orders []int
	// Decay is the per-symbol pull of expert weights toward uniform
	// (default 0.02); higher re-adapts faster but blurs strong experts.
	Decay float64
	// CopyHit is the probability mass the copy expert puts on its
	// prediction (default 0.90).
	CopyHit float64
	// AnchorK is the k-mer length used to (re-)anchor the copy expert
	// (default 12).
	AnchorK int
}

func (cfg Config) withDefaults() Config {
	if len(cfg.Orders) == 0 {
		cfg.Orders = []int{1, 2, 4, 8}
	}
	if cfg.Decay == 0 {
		cfg.Decay = 0.02
	}
	if cfg.CopyHit == 0 {
		cfg.CopyHit = 0.90
	}
	if cfg.AnchorK == 0 {
		cfg.AnchorK = 12
	}
	return cfg
}

// Codec implements compress.Codec.
type Codec struct {
	cfg Config
}

// New returns an XM codec.
func New(cfg Config) *Codec {
	cfg = cfg.withDefaults()
	for _, o := range cfg.Orders {
		if o < 0 || o > 10 {
			panic("xm: Markov order outside [0,10]")
		}
	}
	if cfg.AnchorK < 4 || cfg.AnchorK > 15 {
		panic("xm: AnchorK outside [4,15]")
	}
	return &Codec{cfg: cfg}
}

// Name implements compress.Codec.
func (*Codec) Name() string { return "xm" }

// markovExpert counts symbol occurrences per context.
type markovExpert struct {
	order  int
	mask   uint32
	ctx    uint32
	counts []uint16 // 4 per context
}

func newMarkovExpert(order int) *markovExpert {
	n := 1 << (2 * order)
	return &markovExpert{order: order, mask: uint32(n - 1), counts: make([]uint16, 4*n)}
}

func (m *markovExpert) predict(dist *[4]float64) {
	base := m.ctx * 4
	c := m.counts[base : base+4 : base+4]
	total := float64(c[0]) + float64(c[1]) + float64(c[2]) + float64(c[3])
	for s := 0; s < 4; s++ {
		dist[s] = (float64(c[s]) + 0.25) / (total + 1)
	}
}

func (m *markovExpert) update(sym byte) {
	base := m.ctx * 4
	m.counts[base+uint32(sym)]++
	if m.counts[base+uint32(sym)] >= 60000 {
		for s := uint32(0); s < 4; s++ {
			m.counts[base+s] /= 2
		}
	}
	m.ctx = (m.ctx<<2 | uint32(sym)) & m.mask
}

func (m *markovExpert) memory() int { return len(m.counts) * 2 }

// copyExpert predicts history[pos-offset]; it re-anchors via the k-mer
// index when its recent hit-rate EMA drops.
type copyExpert struct {
	k       int
	hit     float64 // probability mass on the predicted base
	offset  int     // 0 = inactive
	ema     float64 // exponential moving hit rate
	index   map[uint32]int32
	kmer    uint32
	kmerLen int
	mask    uint32
}

func newCopyExpert(k int, hit float64) *copyExpert {
	return &copyExpert{
		k:     k,
		hit:   hit,
		index: make(map[uint32]int32, 1<<14),
		mask:  uint32(1<<(2*k)) - 1,
		ema:   1,
	}
}

func (c *copyExpert) predict(history []byte, dist *[4]float64) {
	if c.offset <= 0 || c.offset > len(history) {
		for s := 0; s < 4; s++ {
			dist[s] = 0.25
		}
		return
	}
	pred := history[len(history)-c.offset]
	miss := (1 - c.hit) / 3
	for s := 0; s < 4; s++ {
		dist[s] = miss
	}
	dist[pred] = c.hit
}

// update observes the actual symbol, maintains the k-mer index over the
// history (which now ends with sym), and re-anchors when cold.
func (c *copyExpert) update(history []byte, sym byte) {
	// history already includes sym at its end, so the base the expert
	// predicted for this position sits one further back than in predict.
	if c.offset > 0 && c.offset < len(history) {
		if history[len(history)-1-c.offset] == sym {
			c.ema = 0.95*c.ema + 0.05
		} else {
			c.ema = 0.95 * c.ema
		}
	}
	// history already includes sym at its end (caller appends first).
	c.kmer = (c.kmer<<2 | uint32(sym)) & c.mask
	if c.kmerLen < c.k {
		c.kmerLen++
	}
	pos := len(history) // one past the k-mer's end
	if c.kmerLen == c.k {
		if c.offset == 0 || c.ema < 0.5 {
			if prev, ok := c.index[c.kmer]; ok {
				c.offset = pos - int(prev)
				c.ema = 1
			}
		}
		c.index[c.kmer] = int32(pos)
	}
}

func (c *copyExpert) memory() int { return len(c.index) * 8 }

// panel is the full expert ensemble with multiplicative weights.
type panel struct {
	cfg     Config
	markovs []*markovExpert
	copier  *copyExpert
	weights []float64
	scratch [][4]float64
	history []byte
}

func newPanel(cfg Config, sizeHint int) *panel {
	p := &panel{cfg: cfg, history: make([]byte, 0, sizeHint)}
	for _, o := range cfg.Orders {
		p.markovs = append(p.markovs, newMarkovExpert(o))
	}
	p.copier = newCopyExpert(cfg.AnchorK, cfg.CopyHit)
	n := len(p.markovs) + 1
	p.weights = make([]float64, n)
	for i := range p.weights {
		p.weights[i] = 1 / float64(n)
	}
	p.scratch = make([][4]float64, n)
	return p
}

// mix returns the blended distribution over the next symbol.
func (p *panel) mix(dist *[4]float64) {
	for i, m := range p.markovs {
		m.predict(&p.scratch[i])
	}
	p.copier.predict(p.history, &p.scratch[len(p.markovs)])
	for s := 0; s < 4; s++ {
		dist[s] = 0
	}
	for i, w := range p.weights {
		for s := 0; s < 4; s++ {
			dist[s] += w * p.scratch[i][s]
		}
	}
}

// observe updates weights and experts with the actual symbol. mix must have
// been called for this position (scratch holds each expert's prediction).
func (p *panel) observe(sym byte) {
	total := 0.0
	for i := range p.weights {
		p.weights[i] *= p.scratch[i][sym]
		total += p.weights[i]
	}
	n := float64(len(p.weights))
	for i := range p.weights {
		p.weights[i] = (1-p.cfg.Decay)*(p.weights[i]/total) + p.cfg.Decay/n
	}
	p.history = append(p.history, sym)
	for _, m := range p.markovs {
		m.update(sym)
	}
	p.copier.update(p.history, sym)
}

func (p *panel) memory() int {
	total := p.copier.memory() + cap(p.history)
	for _, m := range p.markovs {
		total += m.memory()
	}
	return total
}

// clamp keeps a probability inside the coder's representable range.
func clamp(v float64) float64 {
	const eps = 1.0 / (1 << 12)
	return math.Min(math.Max(v, eps), 1-eps)
}

// Cost model: per symbol the panel runs |experts| predictions and updates
// plus a map touch; ~190 ns/symbol measured for the default panel, plus a
// research-binary startup comparable to CTW's.
const (
	nsPerSymbolPerExpert = 38.0
	startupNS            = 25_000_000
)

func (c *Codec) work(n int) int64 {
	return startupNS + int64(nsPerSymbolPerExpert*float64(n)*float64(len(c.cfg.Orders)+1))
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(src)))
	p := newPanel(c.cfg, len(src))
	enc := arith.NewEncoder(len(src)/3 + 64)
	var dist [4]float64
	for _, sym := range src {
		if sym > 3 {
			return nil, compress.Stats{}, compress.Corruptf("xm: invalid symbol %d", sym)
		}
		p.mix(&dist)
		encodeSym(enc, &dist, sym)
		p.observe(sym)
	}
	payload := enc.Finish()
	out := make([]byte, 0, hn+len(payload))
	out = append(out, hdr[:hn]...)
	out = append(out, payload...)
	st := compress.Stats{
		WorkNS:  c.work(len(src)),
		PeakMem: p.memory() + len(out),
	}
	return out, st, nil
}

// encodeSym codes the symbol under dist via hi/lo conditional bits.
func encodeSym(enc *arith.Encoder, dist *[4]float64, sym byte) {
	pHi0 := clamp(dist[0] + dist[1]) // P(high bit == 0), symbols {A,C}
	hi := int(sym >> 1)
	enc.EncodeBitP(uint32(pHi0*arith.ProbOne), hi)
	var pLo0 float64
	if hi == 0 {
		pLo0 = dist[0] / math.Max(dist[0]+dist[1], 1e-12)
	} else {
		pLo0 = dist[2] / math.Max(dist[2]+dist[3], 1e-12)
	}
	enc.EncodeBitP(uint32(clamp(pLo0)*arith.ProbOne), int(sym&1))
}

func decodeSym(dec *arith.Decoder, dist *[4]float64) byte {
	pHi0 := clamp(dist[0] + dist[1])
	hi := dec.DecodeBitP(uint32(pHi0 * arith.ProbOne))
	var pLo0 float64
	if hi == 0 {
		pLo0 = dist[0] / math.Max(dist[0]+dist[1], 1e-12)
	} else {
		pLo0 = dist[2] / math.Max(dist[2]+dist[3], 1e-12)
	}
	lo := dec.DecodeBitP(uint32(clamp(pLo0) * arith.ProbOne))
	return byte(hi<<1 | lo)
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	nBases, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("xm: bad length header")
	}
	if nBases > 1<<34 {
		return nil, compress.Stats{}, compress.Corruptf("xm: implausible length %d", nBases)
	}
	// The history buffer's size hint comes from the header claim — clamp
	// it; the panel grows with symbols actually decoded.
	p := newPanel(c.cfg, compress.HeaderPrealloc(nBases))
	dec := arith.NewDecoder(data[used:])
	out := make([]byte, 0, compress.HeaderPrealloc(nBases))
	var dist [4]float64
	for uint64(len(out)) < nBases {
		p.mix(&dist)
		sym := decodeSym(dec, &dist)
		p.observe(sym)
		out = append(out, sym)
	}
	st := compress.Stats{
		WorkNS:  c.work(len(out)),
		PeakMem: p.memory() + len(data),
	}
	return out, st, nil
}
