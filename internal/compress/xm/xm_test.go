package xm

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
)

func TestConformance(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{}) })
}

func TestConformanceSingleExpert(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{Orders: []int{2}}) })
}

func TestRatioCompetitiveWithBestOnCorpus(t *testing.T) {
	// XM's claim to fame is ratio: on a mutated-repeat corpus it should be
	// in the same band as GenCompress and clearly ahead of CTW alone.
	p := synth.Profile{Length: 100000, GC: 0.4, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400,
		RCFraction: 0.2, MutationRate: 0.035, LocalOrder: 3, LocalBias: 0.85}
	src := p.Generate(2015)

	xmOut, _, err := New(Config{}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	xmBPB := compress.Ratio(len(src), len(xmOut))

	ctwC, err := compress.New("ctw")
	if err != nil {
		t.Fatal(err)
	}
	ctwOut, _, err := ctwC.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	ctwBPB := compress.Ratio(len(src), len(ctwOut))
	t.Logf("xm %.3f bits/base vs ctw %.3f", xmBPB, ctwBPB)
	if xmBPB >= ctwBPB {
		t.Errorf("xm (%.3f) should beat plain CTW (%.3f) via its copy expert", xmBPB, ctwBPB)
	}
	if xmBPB > 1.9 {
		t.Errorf("xm %.3f bits/base too weak for an expert-model coder", xmBPB)
	}
}

func TestCopyExpertExploitsLongRepeat(t *testing.T) {
	// A sequence that is A then A again: the copy expert must drive the
	// second half to far under 2 bits/base.
	p := synth.Profile{Length: 25000, GC: 0.45, LocalOrder: 2, LocalBias: 0.5}
	half := p.Generate(9)
	full := append(append([]byte{}, half...), half...)
	c := New(Config{})
	fullOut, _, err := c.Compress(full)
	if err != nil {
		t.Fatal(err)
	}
	halfOut, _, err := c.Compress(half)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(fullOut)) > 1.25*float64(len(halfOut)) {
		t.Fatalf("copy expert failed: full %d bytes vs half %d", len(fullOut), len(halfOut))
	}
}

func TestWorkSymmetric(t *testing.T) {
	// Like CTW, XM must redo the full mixture on decode.
	p := synth.Profile{Length: 20000, GC: 0.4, RepeatProb: 0.002, RepeatMin: 20, RepeatMax: 200}
	src := p.Generate(3)
	c := New(Config{})
	data, cst, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	_, dst, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if cst.WorkNS != dst.WorkNS {
		t.Fatalf("work asymmetry: %d vs %d", cst.WorkNS, dst.WorkNS)
	}
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Orders: []int{11}},
		{Orders: []int{-1}},
		{AnchorK: 2},
		{AnchorK: 16},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestRejectsInvalidSymbol(t *testing.T) {
	if _, _, err := New(Config{}).Compress([]byte{0, 4}); err == nil {
		t.Fatal("accepted invalid symbol")
	}
}

func TestRejectsEmptyStream(t *testing.T) {
	if _, _, err := New(Config{}).Decompress(nil); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func BenchmarkCompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 17, GC: 0.4, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.03, LocalOrder: 3, LocalBias: 0.8}
	src := p.Generate(1)
	c := New(Config{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}
