// Package twobit implements the naïve 2-bits-per-base codec. It is the
// floor every DNA-specific algorithm must beat (paper Table 1 lists "naïve
// 2-bits" as one of DNAPack's non-repeat fallbacks) and doubles as the
// fastest possible baseline in timing comparisons.
package twobit

import (
	"encoding/binary"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/seq"
)

func init() {
	compress.Register("twobit", func() compress.Codec { return Codec{} })
}

// Codec is stateless; the zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "twobit" }

// Work model: a packing pass touches each base once; ~1.2 ns/base on the
// reference core (measured by BenchmarkPack in package seq).
const nsPerBase = 1.2

// Compress implements compress.Codec.
func (Codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	if !seq.Valid(src) {
		return nil, compress.Stats{}, compress.Corruptf("twobit: input contains non-nucleotide symbols")
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(src)))
	out := make([]byte, 0, n+(len(src)+3)/4)
	out = append(out, hdr[:n]...)
	out = append(out, seq.Pack(src)...)
	st := compress.Stats{
		WorkNS:  int64(nsPerBase * float64(len(src))),
		PeakMem: len(out) + len(src),
	}
	return out, st, nil
}

// Decompress implements compress.Codec.
func (Codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("twobit: bad length header")
	}
	if n > uint64(len(data))*4 {
		return nil, compress.Stats{}, compress.Corruptf("twobit: declared %d bases exceeds payload", n)
	}
	out, err := seq.Unpack(data[used:], int(n))
	if err != nil {
		return nil, compress.Stats{}, compress.Corruptf("twobit: %v", err)
	}
	st := compress.Stats{
		WorkNS:  int64(nsPerBase * float64(n)),
		PeakMem: int(n) + len(data),
	}
	return out, st, nil
}
