package twobit

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestConformance(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return Codec{} })
}

func TestExactTwoBitsPerBase(t *testing.T) {
	p := synth.Profile{Length: 10000, GC: 0.5}
	src := p.Generate(1)
	data, _, err := Codec{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	// header (varint of 10000 = 2 bytes) + 2500 payload bytes
	if len(data) != 2+2500 {
		t.Fatalf("compressed to %d bytes, want 2502", len(data))
	}
	if bpb := compress.Ratio(len(src), len(data)); bpb < 2.0 || bpb > 2.01 {
		t.Fatalf("rate %.4f bits/base, want ~2.0", bpb)
	}
}

func TestRejectsInvalidSymbols(t *testing.T) {
	if _, _, err := (Codec{}).Compress([]byte{0, 1, 2, 7}); err == nil {
		t.Fatal("accepted invalid symbol")
	}
}

func TestRejectsOverstatedLength(t *testing.T) {
	// Header claims more bases than the payload can hold.
	if _, _, err := (Codec{}).Decompress([]byte{200, 200, 200, 1}); err == nil {
		t.Fatal("accepted overstated length")
	}
}

func BenchmarkCompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 20, GC: 0.5}
	src := p.Generate(1)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := (Codec{}).Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}
