package dnax

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/seq"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestConformance(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{}) })
}

func TestConformanceTightChain(t *testing.T) {
	compresstest.Conformance(t, func() compress.Codec { return New(Config{MaxChain: 4, MinRepeat: 20}) })
}

func TestRepeatRichBeatsTwoBit(t *testing.T) {
	p := synth.Profile{Name: "rich", Length: 80000, GC: 0.4, RepeatProb: 0.025, RepeatMin: 30, RepeatMax: 800, RCFraction: 0.2, MutationRate: 0.005}
	compresstest.RatioUnder(t, New(Config{}), p, 42, 1.7)
}

func TestReverseComplementExploited(t *testing.T) {
	// A sequence that is literally block + RC(block): the codec must spend
	// almost nothing on the second half.
	p := synth.Profile{Length: 30000, GC: 0.5}
	half := p.Generate(9)
	full := append(append([]byte{}, half...), seq.ReverseComplement(half)...)
	c := New(Config{})
	data, _, err := c.Compress(full)
	if err != nil {
		t.Fatal(err)
	}
	baseline, _, err := c.Compress(half)
	if err != nil {
		t.Fatal(err)
	}
	// The doubled sequence should cost barely more than the half.
	if float64(len(data)) > 1.1*float64(len(baseline)) {
		t.Fatalf("palindrome not exploited: full %d bytes vs half %d", len(data), len(baseline))
	}
}

func TestDecompressionMuchCheaperThanCompression(t *testing.T) {
	// The defining DNAX property in the paper: decompression skips match
	// finding entirely and is far cheaper than compression.
	p := synth.Profile{Length: 60000, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.2, MutationRate: 0.01}
	src := p.Generate(3)
	c := New(Config{})
	data, cst, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	_, dst, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	// Compare marginal (per-byte) work: the fixed startup cost applies to
	// both directions and is assessed separately by the small-file tests.
	if (dst.WorkNS-startupDecompressNS)*2 > cst.WorkNS-startupCompressNS {
		t.Fatalf("marginal decompress work %d not well below compress work %d",
			dst.WorkNS-startupDecompressNS, cst.WorkNS-startupCompressNS)
	}
}

func TestMinRepeatMonotonicity(t *testing.T) {
	// Raising the minimum repeat length cannot make the parse denser: with
	// a very high threshold the codec degenerates toward pure order-2.
	p := synth.Profile{Length: 40000, GC: 0.4, RepeatProb: 0.02, RepeatMin: 20, RepeatMax: 300, MutationRate: 0.01}
	src := p.Generate(5)
	loose, _, err := New(Config{MinRepeat: 16}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	strict, _, err := New(Config{MinRepeat: 256}).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) < len(loose) {
		t.Fatalf("stricter threshold compressed better: %d < %d", len(strict), len(loose))
	}
	// Both must round-trip regardless.
	for _, cfg := range []Config{{MinRepeat: 16}, {MinRepeat: 256}} {
		compresstest.RoundTrip(t, New(cfg), src)
	}
}

func TestRejectsInvalidSymbol(t *testing.T) {
	if _, _, err := New(Config{}).Compress([]byte{1, 2, 9}); err == nil {
		t.Fatal("accepted invalid symbol")
	}
}

func TestRejectsTruncatedHeader(t *testing.T) {
	if _, _, err := New(Config{}).Decompress(nil); err == nil {
		t.Fatal("accepted empty input")
	}
}

func BenchmarkCompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 18, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.2, MutationRate: 0.01}
	src := p.Generate(1)
	c := New(Config{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	p := synth.Profile{Length: 1 << 18, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.2, MutationRate: 0.01}
	src := p.Generate(1)
	c := New(Config{})
	data, _, err := c.Compress(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Decompress(data); err != nil {
			b.Fatal(err)
		}
	}
}
