// Package dnax implements the DNAX compressor evaluated in the paper
// (Manzini & Rastero, "A simple and fast DNA compressor", SP&E 2004 — the
// paper's reference [18]/[17] lineage). DNAX encodes *exact* direct and
// reverse-complement repeats only — the design decision that makes it the
// fastest DNA-aware codec in the study — and falls back to order-2
// arithmetic coding for literals, exactly the Table 1 row: "Exact Repeats
// and Reverse Complement | uses information in approximate repeats |
// Arithmetic coding".
//
// "Uses information in approximate repeats" is realized as the acceptance
// heuristic: an exact match is only emitted when its estimated descriptor
// cost undercuts coding the same span through the literal model, an estimate
// whose constants come from the surrounding (approximately repetitive)
// match statistics rather than from a fixed length threshold.
//
// Stream layout (all inside one range-coder stream after a varint header):
//
//	header : uvarint originalBaseCount
//	token  : flag bit (0 = literal, 1 = repeat), adaptive
//	literal: one symbol through the order-2 context model
//	repeat : orientation bit (0 = direct, 1 = reverse complement),
//	         length - K   through UintModel "len",
//	         distance     through UintModel "dist"
//	         (direct: distance = i - src >= 1, coded as distance-1;
//	          RC:     gap = i - (src+len) >= 0, coded directly)
package dnax

import (
	"encoding/binary"

	"github.com/srl-nuces/ctxdna/internal/arith"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/match"
)

func init() {
	compress.Register("dnax", func() compress.Codec { return New(Config{}) })
}

// Config tunes the codec; zero values select the defaults used throughout
// the experiments.
type Config struct {
	// MinRepeat is the smallest repeat length worth a descriptor. Zero
	// selects DefaultMinRepeat. The ablation bench sweeps this.
	MinRepeat int
	// MaxChain bounds the matcher's candidate walk. Zero selects
	// match.DefaultMaxChain.
	MaxChain int
	// LiteralOrder is the context order of the literal model (default 2,
	// the "order-2 arithmetic coding" of Table 1).
	LiteralOrder int
	// Stride is the source-anchor spacing, reproducing DNAX's B-block
	// fingerprint scheme: only block-aligned source positions anchor
	// repeats, which is what keeps DNAX's tables small and its compression
	// fast at a modest ratio cost versus exhaustive searchers. Default 8.
	Stride int
}

// Defaults.
const (
	// DefaultMinRepeat is the default minimum encodable repeat length.
	DefaultMinRepeat = 16
	// DefaultStride mirrors DNAX's default fingerprint block size.
	DefaultStride = 8
)

// Codec implements compress.Codec.
type Codec struct {
	cfg Config
}

// New returns a DNAX codec with the given configuration.
func New(cfg Config) *Codec {
	if cfg.MinRepeat == 0 {
		cfg.MinRepeat = DefaultMinRepeat
	}
	if cfg.MinRepeat < match.DefaultK {
		cfg.MinRepeat = match.DefaultK
	}
	if cfg.MaxChain == 0 {
		cfg.MaxChain = match.DefaultMaxChain
	}
	if cfg.LiteralOrder == 0 {
		cfg.LiteralOrder = 2
	}
	if cfg.Stride == 0 {
		cfg.Stride = DefaultStride
	}
	return &Codec{cfg: cfg}
}

// Name implements compress.Codec.
func (*Codec) Name() string { return "dnax" }

// Cost-model weights, calibrated against this package's benchmarks on the
// reference core.
const (
	nsPerProbe = 8.0 // chain candidate examined
	// startupCompressNS models the fixed per-invocation cost of the
	// measured reference binary: DNAX allocates and zeroes fingerprint and
	// suffix tables sized for its 10 MB input cap (hundreds of MB of pages)
	// before compressing anything — the dominant cost on small files and
	// the reason the paper's rules route sub-50 KB files to CTW or
	// GenCompress. Decompression needs none of those tables.
	startupCompressNS   = 120_000_000
	startupDecompressNS = 3_000_000
	nsPerExtend         = 2.0   // base comparison during extension
	nsPerLiteral        = 55.0  // order-2 arithmetic code/decode of one base
	nsPerMatch          = 220.0 // repeat descriptor encode/decode
	nsPerCopied         = 3.0   // base copied (and observed) during a repeat
	nsPerSearch         = 60.0  // k-mer packing + two bucket lookups per parse step (compress only)
	nsPerIndexed        = 15.0  // k-mer packing + chain insert per indexed position (compress only)
)

// bitLen32 is the number of significant bits (for descriptor cost estimates).
func bitLen32(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// Compress implements compress.Codec.
func (c *Codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(src)))

	m := match.NewHashMatcher(src, match.WithMaxChain(c.cfg.MaxChain), match.WithStride(c.cfg.Stride))
	lit := arith.NewSymbolModel(c.cfg.LiteralOrder)
	flag := arith.NewProb()
	orient := arith.NewProb()
	lenM := arith.NewUintModel()
	distM := arith.NewUintModel()
	enc := arith.NewEncoder(len(src)/3 + 64)

	var literals, matches, copied int64
	i := 0
	for i < len(src) {
		if src[i] > 3 {
			return nil, compress.Stats{}, compress.Corruptf("dnax: invalid symbol %d at %d", src[i], i)
		}
		m.Advance(i)
		mt, ok := m.FindBest(i)
		if ok && c.accept(mt, i) {
			enc.EncodeBit(&flag, 1)
			rcBit := 0
			if mt.RC {
				rcBit = 1
			}
			enc.EncodeBit(&orient, rcBit)
			lenM.Encode(enc, uint64(mt.Len-c.cfg.MinRepeat))
			if mt.RC {
				distM.Encode(enc, uint64(i-(mt.Src+mt.Len)))
			} else {
				distM.Encode(enc, uint64(i-mt.Src-1))
			}
			// Keep the literal model's context aligned across the copy.
			for t := 0; t < mt.Len; t++ {
				lit.Observe(src[i+t])
			}
			matches++
			copied += int64(mt.Len)
			i += mt.Len
			continue
		}
		enc.EncodeBit(&flag, 0)
		lit.Encode(enc, src[i])
		literals++
		i++
	}
	payload := enc.Finish()
	out := make([]byte, 0, hn+len(payload))
	out = append(out, hdr[:hn]...)
	out = append(out, payload...)

	ms := m.Stats()
	st := compress.Stats{
		WorkNS: startupCompressNS + int64(nsPerProbe*float64(ms.Probes)+nsPerExtend*float64(ms.Extends)+
			nsPerSearch*float64(literals+matches)+nsPerIndexed*float64(len(src))+
			nsPerLiteral*float64(literals)+nsPerMatch*float64(matches)+nsPerCopied*float64(copied)),
		PeakMem: m.MemoryFootprint() + lit.MemoryFootprint() + lenM.MemoryFootprint() +
			distM.MemoryFootprint() + len(src) + len(out),
	}
	return out, st, nil
}

// accept applies the descriptor-cost heuristic: a repeat is worth emitting
// when its estimated cost (flag + orientation + adaptive gamma length +
// distance) plus a safety margin undercuts literal coding at ~2 bits/base.
func (c *Codec) accept(mt match.Match, pos int) bool {
	if mt.Len < c.cfg.MinRepeat {
		return false
	}
	dist := pos - mt.Src
	estBits := 2 + 2*bitLen32(mt.Len-c.cfg.MinRepeat+1) + 2*bitLen32(dist+1)
	return estBits+8 < 2*mt.Len
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	nBases, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("dnax: bad length header")
	}
	if nBases > 1<<34 {
		return nil, compress.Stats{}, compress.Corruptf("dnax: implausible length %d", nBases)
	}
	lit := arith.NewSymbolModel(c.cfg.LiteralOrder)
	flag := arith.NewProb()
	orient := arith.NewProb()
	lenM := arith.NewUintModel()
	distM := arith.NewUintModel()
	dec := arith.NewDecoder(data[used:])

	out := make([]byte, 0, compress.HeaderPrealloc(nBases))
	var literals, matches, copied int64
	for uint64(len(out)) < nBases {
		if dec.DecodeBit(&flag) == 0 {
			out = append(out, lit.Decode(dec))
			literals++
			continue
		}
		rc := dec.DecodeBit(&orient) == 1
		l := int(lenM.Decode(dec)) + c.cfg.MinRepeat
		if l <= 0 || uint64(len(out))+uint64(l) > nBases {
			return nil, compress.Stats{}, compress.Corruptf("dnax: repeat length %d overruns output", l)
		}
		var srcPos int
		if rc {
			gap := int(distM.Decode(dec))
			srcPos = len(out) - gap - l
			if srcPos < 0 {
				return nil, compress.Stats{}, compress.Corruptf("dnax: RC repeat source %d underruns", srcPos)
			}
			for t := 0; t < l; t++ {
				b := 3 - (out[srcPos+l-1-t] & 3)
				out = append(out, b)
				lit.Observe(b)
			}
		} else {
			dist := int(distM.Decode(dec)) + 1
			srcPos = len(out) - dist
			if srcPos < 0 {
				return nil, compress.Stats{}, compress.Corruptf("dnax: repeat distance %d underruns", dist)
			}
			for t := 0; t < l; t++ { // byte-wise: overlapping copies legal
				b := out[srcPos+t]
				out = append(out, b)
				lit.Observe(b)
			}
		}
		matches++
		copied += int64(l)
	}
	st := compress.Stats{
		// Decompression skips all match finding: only literal decoding and
		// copying remain, which is why DNAX posts the best decompression
		// times in the paper.
		WorkNS:  startupDecompressNS + int64(nsPerLiteral*float64(literals)+nsPerMatch*float64(matches)+nsPerCopied*float64(copied)),
		PeakMem: lit.MemoryFootprint() + lenM.MemoryFootprint() + distM.MemoryFootprint() + len(data) + int(nBases),
	}
	return out, st, nil
}
