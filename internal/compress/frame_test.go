package compress_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
)

func TestSealOpenRoundTrip(t *testing.T) {
	src := bytes.Repeat([]byte{0, 1, 2, 3}, 100)
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00}
	frame := compress.Seal("dnapack", src, payload)

	if got, want := len(frame), compress.Overhead("dnapack")+len(payload); got != want {
		t.Fatalf("frame length %d, want %d", got, want)
	}
	if !bytes.HasPrefix(frame, []byte(compress.FrameMagic)) {
		t.Fatal("frame does not start with the magic")
	}
	fr, err := compress.Open(frame)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if fr.Codec != "dnapack" {
		t.Errorf("Codec = %q, want dnapack", fr.Codec)
	}
	if fr.Bases != len(src) {
		t.Errorf("Bases = %d, want %d", fr.Bases, len(src))
	}
	if fr.OutputSum != compress.Checksum(src) {
		t.Errorf("OutputSum = %08x, want %08x", fr.OutputSum, compress.Checksum(src))
	}
	if !bytes.Equal(fr.Payload, payload) {
		t.Errorf("Payload = %x, want %x", fr.Payload, payload)
	}
}

func TestSealEmptyPayloadAndSource(t *testing.T) {
	frame := compress.Seal("xm", nil, nil)
	fr, err := compress.Open(frame)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if fr.Bases != 0 || len(fr.Payload) != 0 || fr.Codec != "xm" {
		t.Fatalf("empty frame parsed as %+v", fr)
	}
}

func TestSealRejectsBadCodecName(t *testing.T) {
	for _, name := range []string{"", strings.Repeat("x", 65)} {
		name := name
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Seal accepted codec name of length %d", len(name))
				}
			}()
			compress.Seal(name, nil, nil)
		}()
	}
}

// TestOpenRejectsMalformed drives Open through every header failure class;
// each must satisfy errors.Is(err, ErrCorrupt).
func TestOpenRejectsMalformed(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	frame := compress.Seal("dnax", []byte{0, 1}, payload)
	n := len("dnax")

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), frame...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"Nil", nil},
		{"TooShort", frame[:10]},
		{"BadMagic", mutate(func(b []byte) { b[0] = 'X' })},
		{"BadVersion", mutate(func(b []byte) { b[4] = 99 })},
		{"ZeroNameLen", mutate(func(b []byte) { b[5] = 0 })},
		{"HugeNameLen", mutate(func(b []byte) { b[5] = 255 })},
		{"HeaderBitFlip", mutate(func(b []byte) { b[6+n] ^= 1 })},
		{"PayloadBitFlip", mutate(func(b []byte) { b[len(b)-1] ^= 1 })},
		{"Truncated", frame[:len(frame)-2]},
		{"Extended", append(append([]byte(nil), frame...), 0xFF)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if _, err := compress.Open(tc.data); !errors.Is(err, compress.ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestOpenPayloadAliases pins the documented aliasing contract: Payload is
// a view into the caller's buffer, not a copy.
func TestOpenPayloadAliases(t *testing.T) {
	frame := compress.Seal("dnax", []byte{1, 2}, []byte{9, 9, 9})
	fr, err := compress.Open(frame)
	if err != nil {
		t.Fatal(err)
	}
	fr.Payload[0] = 7
	if frame[len(frame)-3] != 7 {
		t.Fatal("Payload does not alias the input buffer")
	}
}
