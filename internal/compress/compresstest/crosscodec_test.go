package compresstest_test

import (
	"fmt"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"

	_ "github.com/srl-nuces/ctxdna/internal/compress/biocompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnacompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnapack"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
	_ "github.com/srl-nuces/ctxdna/internal/compress/xm"
)

// TestCrossCodecDegenerateParallel closes the conformance gap where only
// some codec packages exercised degenerate inputs: every registered codec
// round-trips the full mixed-case/N-containing table through the parallel
// harness, sequentially and fanned out.
func TestCrossCodecDegenerateParallel(t *testing.T) {
	names := compress.Names()
	if len(names) < 9 {
		t.Fatalf("only %d codecs registered: %v", len(names), names)
	}
	for _, jobs := range []int{1, 4} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			compresstest.CrossCodecParallel(t, names, jobs)
		})
	}
}
