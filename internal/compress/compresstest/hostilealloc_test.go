package compresstest_test

// Hostile-size allocation regression tests: a decoded header field is an
// attacker's claim, and no codec may commit memory proportional to the
// claim before the payload's bytes have backed it (the CXB1
// count≤avail/12 discipline, generalized by compress.HeaderPrealloc).
// These tests hand every codec a tiny payload claiming an enormous output
// and assert the total allocation stays near the 1 MiB preallocation cap
// — before the fix, the same payloads demanded claim-sized buffers (up to
// tens of GB) on arrival.

import (
	"encoding/binary"
	"runtime"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/gsqz"
)

// hostilePayload is a claim-only stream: a uvarint size header followed by
// a few bytes of 0xFF — far too short to legitimately restore the claim.
func hostilePayload(claim uint64) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], claim)
	p := append([]byte(nil), hdr[:n]...)
	for i := 0; i < 48; i++ {
		p = append(p, 0xFF)
	}
	return p
}

// allocDuring measures bytes allocated while fn runs, containing panics
// the way SafeDecompress does (a contained panic is an acceptable decode
// outcome for hostile bytes; an unbounded allocation is not).
func allocDuring(fn func()) uint64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	func() {
		defer func() { recover() }()
		fn()
	}()
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc
}

func TestHostileClaimAllocationBounded(t *testing.T) {
	// Codecs whose decoders detect the truncated stream and error (or
	// panic, contained) promptly: hand them a 1 Gbase claim. Before the
	// prealloc clamp this instantly committed a ~1 GiB output buffer.
	earlyError := []string{"biocompress", "dnacompress", "dnapack", "dnax", "gencompress"}
	for _, name := range earlyError {
		c, err := compress.New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		payload := hostilePayload(1 << 30)
		alloc := allocDuring(func() { c.Decompress(payload) })
		if alloc > 32<<20 {
			t.Errorf("%s: hostile 1Gbase claim allocated %d bytes; the claim must not size allocations ahead of the payload", name, alloc)
		}
	}

	// ctw and xm fabricate symbols from an exhausted range coder rather
	// than erroring, so memory grows only with symbols actually produced.
	// A 2 MiB claim (double the prealloc cap) terminates quickly; before
	// the fix ctw's tree-arena hint alone committed ~400 MB here.
	workProportional := []struct {
		name  string
		build func(claim uint64) []byte
	}{
		{"ctw", func(claim uint64) []byte { return append([]byte{16}, hostilePayload(claim)...) }},
		{"xm", hostilePayload},
	}
	for _, tc := range workProportional {
		c, err := compress.New(tc.name)
		if err != nil {
			t.Fatalf("New(%s): %v", tc.name, err)
		}
		payload := tc.build(1 << 21)
		alloc := allocDuring(func() { c.Decompress(payload) })
		if alloc > 64<<20 {
			t.Errorf("%s: hostile 2Mbase claim allocated %d bytes; allocation must be proportional to symbols decoded, not the claim", tc.name, alloc)
		}
	}
}

func TestHostileGsqzRecordClaims(t *testing.T) {
	// A record count no bytes back: before the fix this allocated the
	// whole 2^29-entry record table (≈32 GiB) before reading a record.
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], 1<<29)
	countBomb := append([]byte(nil), hdr[:n]...)
	alloc := allocDuring(func() {
		if _, err := gsqz.Decompress(countBomb); err == nil {
			t.Error("gsqz accepted a truncated record-count bomb")
		}
	})
	if alloc > 8<<20 {
		t.Errorf("gsqz record-count bomb allocated %d bytes", alloc)
	}

	// Plausible record count, enormous per-record read lengths, stream
	// ends before any symbol: before the fix the header loop allocated
	// Seq+Qual (2×128 MiB per record) on the strength of the claim alone.
	lenBomb := []byte{4} // nRecs = 4
	for i := 0; i < 4; i++ {
		lenBomb = append(lenBomb, 0) // idLen = 0
		var rl [binary.MaxVarintLen64]byte
		m := binary.PutUvarint(rl[:], 1<<27)
		lenBomb = append(lenBomb, rl[:m]...)
	}
	alloc = allocDuring(func() {
		if _, err := gsqz.Decompress(lenBomb); err == nil {
			t.Error("gsqz accepted a truncated read-length bomb")
		}
	})
	if alloc > 8<<20 {
		t.Errorf("gsqz read-length bomb allocated %d bytes", alloc)
	}
}
