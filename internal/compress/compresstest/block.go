package compresstest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// BlockSuite is the conformance suite for the block engine, run per codec:
// every property the multi-block container promises, proven against the
// codec's own whole-slice behavior.
//
//   - RoundTripBoundaries: containers at sizes 0, 1, blockSize-1,
//     blockSize, blockSize+1 and non-multiple tails restore exactly.
//   - SeekEquivalence: random (off, len) probes through Slice equal the
//     corresponding slice of the full decode — the property behind -seek.
//   - JobsDeterminism: jobs 1, 2 and 8 produce byte-identical containers.
//   - DifferentialWholeSlice: on benchmark-corpus inputs, the block path
//     restores byte-identically to the codec's whole-slice round trip, and
//     the whole-slice path is untouched by the block engine's existence.
const (
	// blockSuiteBlockSize keeps suite containers many blocks long while the
	// slowest codecs stay fast enough to probe a thousand times.
	blockSuiteBlockSize = 512
	// blockSuiteProbes is the per-codec random (off, len) probe count for
	// the seek-equivalence property.
	blockSuiteProbes = 1000
)

// BlockSuite runs the block-engine conformance properties against the
// named registered codec.
func BlockSuite(t *testing.T, name string) {
	t.Helper()
	const bs = blockSuiteBlockSize

	t.Run("RoundTripBoundaries", func(t *testing.T) {
		for _, n := range []int{0, 1, bs - 1, bs, bs + 1, 2 * bs, 5*bs + 123} {
			src := synth.Profile{Length: n, GC: 0.5}.Generate(int64(600 + n))
			container, _, err := compress.BlockCompress(name, src, compress.BlockOptions{BlockSize: bs, Jobs: 2})
			if err != nil {
				t.Fatalf("%s: n=%d: %v", name, n, err)
			}
			got, _, err := compress.SafeDecompressAny(name, container, compress.Limits{})
			if err != nil {
				t.Fatalf("%s: n=%d: decode: %v", name, n, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s: n=%d: block round trip mismatch at %d", name, n, firstDiff(got, src))
			}
		}
	})

	t.Run("SeekEquivalence", func(t *testing.T) {
		src := synth.Profile{Length: 7*bs + 209, GC: 0.45, RepeatProb: 0.01, RepeatMin: 20, RepeatMax: 200}.Generate(77)
		container, _, err := compress.BlockCompress(name, src, compress.BlockOptions{BlockSize: bs})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r, err := compress.OpenBlocks(container, compress.Limits{})
		if err != nil {
			t.Fatalf("%s: OpenBlocks: %v", name, err)
		}
		full, _, err := r.Decompress()
		if err != nil {
			t.Fatalf("%s: full decode: %v", name, err)
		}
		if !bytes.Equal(full, src) {
			t.Fatalf("%s: full decode mismatch", name)
		}
		rng := rand.New(rand.NewSource(2015))
		for probe := 0; probe < blockSuiteProbes; probe++ {
			off := rng.Intn(len(src) + 1)
			n := rng.Intn(len(src) - off + 1)
			got, _, err := r.Slice(off, n)
			if err != nil {
				t.Fatalf("%s: Slice(%d, %d): %v", name, off, n, err)
			}
			if !bytes.Equal(got, full[off:off+n]) {
				t.Fatalf("%s: probe %d: Slice(%d, %d) differs from full decode", name, probe, off, n)
			}
		}
	})

	t.Run("JobsDeterminism", func(t *testing.T) {
		src := synth.Profile{Length: 6*bs + 77, GC: 0.5, RepeatProb: 0.005, RepeatMin: 16, RepeatMax: 128}.Generate(88)
		var first []byte
		for _, jobs := range []int{1, 2, 8} {
			container, _, err := compress.BlockCompress(name, src, compress.BlockOptions{BlockSize: bs, Jobs: jobs})
			if err != nil {
				t.Fatalf("%s: jobs=%d: %v", name, jobs, err)
			}
			if first == nil {
				first = container
			} else if !bytes.Equal(first, container) {
				t.Fatalf("%s: jobs=%d container differs from jobs=1", name, jobs)
			}
		}
	})

	t.Run("DifferentialWholeSlice", func(t *testing.T) {
		// The block path must restore byte-identically to the whole-slice
		// path on real corpus shapes, and the whole-slice stream itself must
		// be exactly what a frame round trip produces — the grid-compat
		// guarantee that experiment CSVs cannot move.
		for _, prof := range synth.Benchmark() {
			if prof.Length > 60000 {
				continue
			}
			src := prof.Generate(2015)
			c, err := compress.New(name)
			if err != nil {
				t.Fatal(err)
			}
			payload, _, err := c.Compress(src)
			if err != nil {
				t.Fatalf("%s: %s: whole-slice compress: %v", name, prof.Name, err)
			}
			whole, _, err := compress.SafeDecompress(name, compress.Seal(name, src, payload), compress.Limits{})
			if err != nil {
				t.Fatalf("%s: %s: whole-slice decode: %v", name, prof.Name, err)
			}
			container, _, err := compress.BlockCompress(name, src, compress.BlockOptions{BlockSize: 8 << 10, Jobs: 4})
			if err != nil {
				t.Fatalf("%s: %s: block compress: %v", name, prof.Name, err)
			}
			blocked, _, err := compress.SafeDecompressAny(name, container, compress.Limits{})
			if err != nil {
				t.Fatalf("%s: %s: block decode: %v", name, prof.Name, err)
			}
			if !bytes.Equal(blocked, whole) {
				t.Fatalf("%s: %s: block path restored differently from whole-slice path (diff at %d)",
					name, prof.Name, firstDiff(blocked, whole))
			}
			if !bytes.Equal(blocked, src) {
				t.Fatalf("%s: %s: block path lost data (diff at %d)", name, prof.Name, firstDiff(blocked, src))
			}
		}
	})
}

// RunBlockSuiteAll runs BlockSuite over every registered codec.
func RunBlockSuiteAll(t *testing.T) {
	t.Helper()
	names := compress.Names()
	if len(names) == 0 {
		t.Fatal("no codecs registered")
	}
	for _, name := range names {
		name := name
		t.Run(fmt.Sprintf("codec=%s", name), func(t *testing.T) {
			BlockSuite(t, name)
		})
	}
}

// BlockCorruptionSuite is the adversarial half of the block-engine suite:
// it builds a multi-block container and mutates it the way an
// untrustworthy store would — per-block bit flips, index tampering with
// recomputed checksums, block reorder, cross-block truncation — and
// demands every mutant is rejected with compress.ErrCorrupt, without
// panics, and without wrong symbols ever returned as success.
func BlockCorruptionSuite(t *testing.T, name string) {
	t.Helper()
	const bs = 512
	src := synth.Profile{Length: 5*bs + 301, GC: 0.5}.Generate(505)
	container, _, err := compress.BlockCompress(name, src, compress.BlockOptions{BlockSize: bs})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}

	// The pristine container must restore exactly — otherwise every
	// rejection below is vacuous.
	got, _, err := compress.SafeDecompressAny(name, container, compress.Limits{})
	if err != nil {
		t.Fatalf("%s: pristine container rejected: %v", name, err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("%s: pristine container restored %d symbols, want %d", name, len(got), len(src))
	}

	for _, m := range blockMutations(t, name, container) {
		m := m
		t.Run(m.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s/%s: block decode panicked: %v", name, m.name, r)
				}
			}()
			out, _, err := compress.SafeDecompressAny("", m.data, compress.Limits{})
			if err == nil {
				// As in the single-frame suite, a resealed mutant may touch
				// only don't-care bits; accepting it is fine iff the restored
				// symbols are still exact.
				if m.mayBeLossless && bytes.Equal(out, src) {
					return
				}
				t.Fatalf("%s/%s: corrupted container accepted", name, m.name)
			} else if !errors.Is(err, compress.ErrCorrupt) {
				t.Fatalf("%s/%s: error %v does not satisfy ErrCorrupt", name, m.name, err)
			}
		})
	}

	// Fault isolation: a bit flip inside one block must not poison seeks
	// into other blocks — the index catches it only where it lies.
	r, err := compress.OpenBlocks(blockFlipFrameByte(t, name, container, 2), compress.Limits{})
	if err != nil {
		t.Fatalf("%s: flipped-block container must still open (damage is block-local): %v", name, err)
	}
	if _, _, err := r.Slice(0, bs); err != nil {
		t.Fatalf("%s: seek into a clean block failed after another block was damaged: %v", name, err)
	}
	if _, _, err := r.Slice(2*bs, bs); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("%s: seek into the damaged block: %v, want ErrCorrupt", name, err)
	}
}

type blockMutation struct {
	name          string
	data          []byte
	mayBeLossless bool
}

// blockIndexRegion locates the index bytes of a container: start offset
// and entry count, derived from the validated header fields.
func blockIndexRegion(t *testing.T, codec string, container []byte) (idxStart, count int) {
	t.Helper()
	n := len(codec)
	idxStart = compress.BlockHeaderSize(codec)
	count = int(binary.BigEndian.Uint64(container[22+n:]))
	return idxStart, count
}

// blockResealIndex recomputes the index checksum after index tampering, so
// the lie survives until the layer that must catch it.
func blockResealIndex(codec string, data []byte) {
	n := len(codec)
	count := int(binary.BigEndian.Uint64(data[22+n:]))
	idxStart := compress.BlockHeaderSize(codec)
	idxEnd := idxStart + count*12
	binary.BigEndian.PutUint32(data[idxEnd:], compress.Checksum(data[idxStart:idxEnd]))
}

// blockFlipFrameByte flips one byte inside block k's frame region.
func blockFlipFrameByte(t *testing.T, codec string, container []byte, k int) []byte {
	t.Helper()
	out := append([]byte(nil), container...)
	idxStart, count := blockIndexRegion(t, codec, out)
	if k >= count {
		t.Fatalf("block %d out of %d", k, count)
	}
	pos := idxStart + count*12 + 4
	for i := 0; i < k; i++ {
		pos += int(binary.BigEndian.Uint64(out[idxStart+i*12:]))
	}
	frameLen := int(binary.BigEndian.Uint64(out[idxStart+k*12:]))
	out[pos+frameLen/2] ^= 0x20
	return out
}

// blockMutations builds the mutant table for one container. Index mutants
// reseal the index checksum so the tampered entries are parsed and the
// damage must be caught downstream; frame mutants leave checksums alone so
// the per-block index sum is what catches them.
func blockMutations(t *testing.T, codec string, container []byte) []blockMutation {
	t.Helper()
	clone := func(b []byte) []byte { return append([]byte(nil), b...) }
	idxStart, count := blockIndexRegion(t, codec, container)
	payloadStart := idxStart + count*12 + 4
	frameLen := func(data []byte, k int) int {
		return int(binary.BigEndian.Uint64(data[idxStart+k*12:]))
	}
	frameOff := func(data []byte, k int) int {
		pos := payloadStart
		for i := 0; i < k; i++ {
			pos += frameLen(data, i)
		}
		return pos
	}

	muts := []blockMutation{
		// Per-block bit flips: damage in different blocks, all caught by the
		// per-block frame checksum in the index.
		{name: "FlipFirstBlock", data: blockFlipFrameByte(t, codec, container, 0)},
		{name: "FlipMiddleBlock", data: blockFlipFrameByte(t, codec, container, count/2)},
		{name: "FlipLastBlock", data: blockFlipFrameByte(t, codec, container, count-1)},
		// Index tampering without resealing: the index checksum trips.
		{name: "FlipIndexByte", data: func() []byte {
			out := clone(container)
			out[idxStart+5] ^= 0x08
			return out
		}()},
		// Index length tampered and resealed: exact framing breaks at Open.
		{name: "TamperIndexLengthResealed", data: func() []byte {
			out := clone(container)
			binary.BigEndian.PutUint64(out[idxStart:], uint64(frameLen(out, 0)+1))
			blockResealIndex(codec, out)
			return out
		}()},
		// Index frame-checksum tampered and resealed: the named block must
		// be rejected at decode.
		{name: "TamperIndexSumResealed", data: func() []byte {
			out := clone(container)
			binary.BigEndian.PutUint32(out[idxStart+8:], binary.BigEndian.Uint32(out[idxStart+8:])^0xBADC0DE)
			blockResealIndex(codec, out)
			return out
		}()},
		// Cross-block truncation: a clean cut at a frame boundary (the last
		// block vanishes) and a ragged cut inside a frame. Both must die at
		// Open on exact framing.
		{name: "TruncateLastBlock", data: clone(container[:frameOff(container, count-1)])},
		{name: "TruncateMidBlock", data: clone(container[:frameOff(container, count-1)+3])},
		// Whole-output checksum tampered (header resealed): every block
		// decodes clean, the container-level verification must still refuse.
		{name: "TamperOutputSumResealed", data: func() []byte {
			out := clone(container)
			n := len(codec)
			binary.BigEndian.PutUint32(out[30+n:], binary.BigEndian.Uint32(out[30+n:])^0xDEADBEEF)
			binary.BigEndian.PutUint32(out[34+n:], compress.Checksum(out[:34+n]))
			return out
		}()},
	}
	if count >= 2 {
		// Block reorder with a consistently rewritten index: swap the first
		// two frames and their index entries, reseal the index checksum.
		// Every block restores its own bytes perfectly — only the container's
		// whole-output checksum can catch the swap. Identical block content
		// would make the swap lossless, hence mayBeLossless.
		out := clone(container)
		l0, l1 := frameLen(out, 0), frameLen(out, 1)
		f0 := clone(out[frameOff(out, 0) : frameOff(out, 0)+l0])
		f1 := clone(out[frameOff(out, 1) : frameOff(out, 1)+l1])
		reordered := append(clone(out[:payloadStart]), f1...)
		reordered = append(reordered, f0...)
		reordered = append(reordered, out[frameOff(out, 1)+l1:]...)
		e0 := clone(reordered[idxStart : idxStart+12])
		copy(reordered[idxStart:], reordered[idxStart+12:idxStart+24])
		copy(reordered[idxStart+12:], e0)
		blockResealIndex(codec, reordered)
		muts = append(muts, blockMutation{name: "ReorderBlocksResealed", data: reordered, mayBeLossless: true})
	}
	return muts
}

// RunBlockCorruptionAll runs the block corruption suite over every
// registered codec.
func RunBlockCorruptionAll(t *testing.T) {
	t.Helper()
	names := compress.Names()
	if len(names) == 0 {
		t.Fatal("no codecs registered")
	}
	for _, name := range names {
		name := name
		t.Run(fmt.Sprintf("codec=%s", name), func(t *testing.T) {
			BlockCorruptionSuite(t, name)
		})
	}
}
