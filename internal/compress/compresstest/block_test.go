package compresstest_test

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
)

// TestBlockSuiteAllCodecs is the acceptance gate for the block engine:
// round-trip at block boundaries, seek-equivalence under a thousand random
// probes, jobs-count determinism and the block-vs-whole-slice differential
// must hold for every registered codec. The codec imports ride on
// crosscodec_test.go, which links all nine into this binary.
func TestBlockSuiteAllCodecs(t *testing.T) {
	if names := compress.Names(); len(names) < 9 {
		t.Fatalf("only %d codecs registered: %v", len(names), names)
	}
	compresstest.RunBlockSuiteAll(t)
}

// TestBlockCorruptionAllCodecs extends the corruption gate to multi-block
// containers: per-block bit flips, index tampering (raw and resealed),
// block reorder with a consistent index, cross-block truncation and
// output-checksum tampering must all surface as compress.ErrCorrupt for
// every registered codec, never as a panic or as wrong symbols.
func TestBlockCorruptionAllCodecs(t *testing.T) {
	compresstest.RunBlockCorruptionAll(t)
}
