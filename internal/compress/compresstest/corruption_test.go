package compresstest_test

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
)

// TestCorruptionAllCodecs is the acceptance gate for hardened decompression:
// every registered codec's sealed frames, mutated by truncation, bit flips,
// extension, header tampering and consistent-checksum payload tampering,
// must come back as compress.ErrCorrupt without a panic. The codec imports
// ride on crosscodec_test.go, which links all nine into this binary.
func TestCorruptionAllCodecs(t *testing.T) {
	if names := compress.Names(); len(names) < 9 {
		t.Fatalf("only %d codecs registered: %v", len(names), names)
	}
	compresstest.RunCorruptionAll(t)
}
