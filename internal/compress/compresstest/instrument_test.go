package compresstest_test

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/compress/compresstest"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// TestInstrumentedRoundTripAllCodecs proves the observability wrapper is
// behavior-preserving for every registered codec: identical round-trips,
// one booked call per direction, byte volumes matching reality.
func TestInstrumentedRoundTripAllCodecs(t *testing.T) {
	names := compress.Names()
	if len(names) < 9 {
		t.Fatalf("only %d codecs registered: %v", len(names), names)
	}
	p := synth.Profile{Length: 12000, GC: 0.45, RepeatProb: 0.02, RepeatMin: 20, RepeatMax: 300, RCFraction: 0.3, MutationRate: 0.01}
	src := p.Generate(71)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := compress.New(name)
			if err != nil {
				t.Fatal(err)
			}
			// Instrumented and raw codecs must produce identical bytes.
			raw, err2 := compress.New(name)
			if err2 != nil {
				t.Fatal(err2)
			}
			want, _, err := raw.Compress(src)
			if err != nil {
				t.Fatal(err)
			}
			if got := compresstest.InstrumentedRoundTrip(t, c, src); got != len(want) {
				t.Fatalf("instrumented compressed size %d, raw %d", got, len(want))
			}
		})
	}
}
