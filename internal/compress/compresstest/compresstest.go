// Package compresstest provides the conformance suite every codec in this
// repository must pass: exact round-trips over the benchmark corpus,
// degenerate inputs, and randomized property tests via testing/quick.
package compresstest

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/seq"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// RoundTrip compresses src and verifies exact reconstruction, returning the
// compressed size. It fails the test on any error or mismatch.
func RoundTrip(t *testing.T, c compress.Codec, src []byte) int {
	t.Helper()
	data, cst, err := c.Compress(src)
	if err != nil {
		t.Fatalf("%s: Compress(%d bases): %v", c.Name(), len(src), err)
	}
	got, dst, err := c.Decompress(data)
	if err != nil {
		t.Fatalf("%s: Decompress(%d bytes): %v", c.Name(), len(data), err)
	}
	if !bytes.Equal(got, src) {
		i := firstDiff(got, src)
		t.Fatalf("%s: round trip mismatch: len got %d want %d, first diff at %d",
			c.Name(), len(got), len(src), i)
	}
	if cst.WorkNS < 0 || dst.WorkNS < 0 {
		t.Fatalf("%s: negative modeled work", c.Name())
	}
	if len(src) > 0 && cst.PeakMem <= 0 {
		t.Fatalf("%s: non-positive peak memory %d", c.Name(), cst.PeakMem)
	}
	return len(data)
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Conformance runs the full shared suite against a fresh codec from ctor.
func Conformance(t *testing.T, ctor func() compress.Codec) {
	t.Helper()

	t.Run("Empty", func(t *testing.T) {
		RoundTrip(t, ctor(), nil)
		RoundTrip(t, ctor(), []byte{})
	})

	t.Run("TinyInputs", func(t *testing.T) {
		c := ctor()
		for n := 1; n <= 40; n++ {
			s := make([]byte, n)
			for i := range s {
				s[i] = byte((i*5 + n) % 4)
			}
			RoundTrip(t, c, s)
		}
	})

	t.Run("Homopolymer", func(t *testing.T) {
		for _, base := range []byte{seq.A, seq.C, seq.G, seq.T} {
			RoundTrip(t, ctor(), bytes.Repeat([]byte{base}, 5000))
		}
	})

	t.Run("PeriodicRuns", func(t *testing.T) {
		RoundTrip(t, ctor(), bytes.Repeat([]byte{0, 1, 2, 3}, 2000))
		RoundTrip(t, ctor(), bytes.Repeat([]byte{0, 0, 1}, 3000))
	})

	t.Run("RandomIID", func(t *testing.T) {
		p := synth.Profile{Length: 20000, GC: 0.5}
		RoundTrip(t, ctor(), p.Generate(101))
	})

	t.Run("RepeatRich", func(t *testing.T) {
		p := synth.Profile{Length: 30000, GC: 0.4, RepeatProb: 0.02, RepeatMin: 20, RepeatMax: 500, RCFraction: 0.25, MutationRate: 0.01}
		RoundTrip(t, ctor(), p.Generate(102))
	})

	t.Run("PalindromeRich", func(t *testing.T) {
		p := synth.Profile{Length: 20000, GC: 0.5, RepeatProb: 0.02, RepeatMin: 20, RepeatMax: 300, RCFraction: 0.9, MutationRate: 0.005}
		RoundTrip(t, ctor(), p.Generate(103))
	})

	t.Run("BenchmarkCorpusSmall", func(t *testing.T) {
		// The two smallest corpus members keep the conformance suite fast;
		// full-corpus ratios are exercised by the experiment tests.
		for _, prof := range synth.Benchmark() {
			if prof.Length > 60000 {
				continue
			}
			prof := prof
			t.Run(prof.Name, func(t *testing.T) {
				RoundTrip(t, ctor(), prof.Generate(2015))
			})
		}
	})

	t.Run("QuickRandom", func(t *testing.T) {
		c := ctor()
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 25; trial++ {
			n := rng.Intn(4000)
			s := make([]byte, n)
			for i := range s {
				s[i] = byte(rng.Intn(4))
			}
			RoundTrip(t, c, s)
		}
	})

	t.Run("MutatedCopy", func(t *testing.T) {
		// Two near-identical halves: the 99.9 % intra-species similarity
		// scenario from the paper's background section.
		p := synth.Profile{Length: 15000, GC: 0.45}
		first := p.Generate(55)
		second := append([]byte{}, first...)
		rng := rand.New(rand.NewSource(56))
		for i := range second {
			if rng.Float64() < 0.001 {
				second[i] = (second[i] + byte(1+rng.Intn(3))) & 3
			}
		}
		RoundTrip(t, ctor(), append(first, second...))
	})

	t.Run("DecompressGarbage", func(t *testing.T) {
		// Arbitrary bytes must never panic; error or garbage-free failure
		// both acceptable, silent success on clearly-truncated framing not.
		c := ctor()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Decompress panicked: %v", c.Name(), r)
			}
		}()
		inputs := [][]byte{
			{0xff}, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
			bytes.Repeat([]byte{0xA5}, 100),
		}
		for _, in := range inputs {
			c.Decompress(in) // must not panic
		}
	})
}

// InstrumentedRoundTrip wraps c with compress.Instrument over a fresh
// registry, round-trips src, and verifies the wrapper both preserved the
// codec's behavior and booked exactly one call with the right byte volumes
// in each direction. It returns the compressed size, like RoundTrip.
func InstrumentedRoundTrip(t *testing.T, c compress.Codec, src []byte) int {
	t.Helper()
	reg := obs.NewRegistry()
	w := compress.Instrument(reg, c)
	if w.Name() != c.Name() {
		t.Fatalf("Instrument changed codec name: %q -> %q", c.Name(), w.Name())
	}
	n := RoundTrip(t, w, src)
	for op, inOut := range map[string][2]int{
		"compress":   {len(src), n},
		"decompress": {n, len(src)},
	} {
		labels := []string{"codec", c.Name(), "op", op}
		if got := reg.Counter("dna_codec_calls_total", "", labels...).Value(); got != 1 {
			t.Errorf("%s: %s calls = %d, want 1", c.Name(), op, got)
		}
		if got := reg.Counter("dna_codec_in_bytes_total", "", labels...).Value(); got != uint64(inOut[0]) {
			t.Errorf("%s: %s in bytes = %d, want %d", c.Name(), op, got, inOut[0])
		}
		if got := reg.Counter("dna_codec_out_bytes_total", "", labels...).Value(); got != uint64(inOut[1]) {
			t.Errorf("%s: %s out bytes = %d, want %d", c.Name(), op, got, inOut[1])
		}
		if got := reg.Counter("dna_codec_corrupt_total", "", labels...).Value() +
			reg.Counter("dna_codec_failures_total", "", labels...).Value(); got != 0 {
			t.Errorf("%s: %s booked %d errors on a clean round-trip", c.Name(), op, got)
		}
	}
	return n
}

// RatioUnder asserts the codec compresses the given profile below maxBitsPerBase.
func RatioUnder(t *testing.T, c compress.Codec, p synth.Profile, seed int64, maxBitsPerBase float64) {
	t.Helper()
	src := p.Generate(seed)
	data, _, err := c.Compress(src)
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	if bpb := compress.Ratio(len(src), len(data)); bpb > maxBitsPerBase {
		t.Fatalf("%s on %s: %.3f bits/base, want <= %.3f", c.Name(), p.Name, bpb, maxBitsPerBase)
	}
}
