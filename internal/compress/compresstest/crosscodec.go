package compresstest

import (
	"context"
	"strings"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/seq"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// DegenerateCase is one raw ASCII input for the cross-codec suite: text a
// real pipeline sees before cleansing — mixed case, IUPAC ambiguity codes
// (N runs above all), FASTA furniture, numbering.
type DegenerateCase struct {
	Name string
	Raw  []byte
}

// DegenerateCases returns the shared table of degenerate inputs. Every case
// cleanses to a valid (possibly empty) symbol sequence via seq.Cleanser, the
// same path cmd/dnacomp feeds codecs through.
func DegenerateCases() []DegenerateCase {
	return []DegenerateCase{
		{"MixedCase", []byte(strings.Repeat("acgtACGTgGcCaAtT", 256))},
		{"LowercaseOnly", []byte(strings.Repeat("gattaca", 400))},
		{"NRuns", []byte("ACGT" + strings.Repeat("N", 500) + strings.Repeat("acgt", 300) + strings.Repeat("n", 200) + "TTTT")},
		{"IUPACMix", []byte(strings.Repeat("ACRYSWKMGTbdhv", 200))},
		{"FASTAFurniture", []byte(">seq1 test record\n" + strings.Repeat("ACGTacgtNNNN\n", 150) + ">seq2\n" + strings.Repeat("ggccttaa\n", 100))},
		{"NumberedLines", []byte(strings.Repeat("  1 acgtn ACGTN 42\r\n", 120))},
		{"AllAmbiguous", []byte(strings.Repeat("NRYSWKM", 64))}, // cleanses to empty
	}
}

// CrossCodecParallel cleanses every degenerate case and round-trips every
// named codec over the resulting corpus through the parallel experiment
// harness, which verifies byte-exact reconstruction per (file, codec) run.
func CrossCodecParallel(t *testing.T, names []string, jobs int) {
	t.Helper()
	if len(names) == 0 {
		t.Fatal("no codecs registered")
	}
	var files []synth.File
	for _, dc := range DegenerateCases() {
		symbols, st := seq.Cleanser{}.Clean(dc.Raw)
		if !seq.Valid(symbols) {
			t.Fatalf("%s: cleanser emitted invalid symbols", dc.Name)
		}
		if st.Kept != len(symbols) {
			t.Fatalf("%s: cleanser kept %d but emitted %d", dc.Name, st.Kept, len(symbols))
		}
		files = append(files, synth.File{Name: dc.Name, Data: symbols})
	}
	contexts := cloud.Grid()[:2]
	g, err := experiment.RunParallel(context.Background(), files, contexts, names, experiment.DefaultNoise(), jobs)
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	if len(g.Rows) != len(files)*len(contexts) {
		t.Fatalf("jobs=%d: %d rows, want %d", jobs, len(g.Rows), len(files)*len(contexts))
	}
	for _, row := range g.Rows {
		if len(row.Measurements) != len(names) {
			t.Fatalf("jobs=%d: row %s has %d measurements, want %d", jobs, row.FileName, len(row.Measurements), len(names))
		}
		for i, m := range row.Measurements {
			if m.Codec != names[i] {
				t.Fatalf("jobs=%d: row %s codec order %q != %q", jobs, row.FileName, m.Codec, names[i])
			}
		}
	}

	// The harness verified reconstruction internally; additionally round-trip
	// each codec directly on the gnarliest non-empty case to pin the helper
	// path too.
	gnarly, _ := seq.Cleanser{}.Clean(DegenerateCases()[2].Raw) // NRuns
	for _, name := range names {
		c, err := compress.New(name)
		if err != nil {
			t.Fatal(err)
		}
		RoundTrip(t, c, gnarly)
	}
}
