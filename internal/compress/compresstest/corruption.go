package compresstest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// CorruptionSuite is the adversarial half of the conformance suite: it
// seals streams from the named codec into armored frames, mutates them the
// way an untrustworthy store would — truncation, bit flips, extension,
// header tampering, and payload tampering with internally consistent
// checksums — and demands that compress.SafeDecompress rejects every
// mutant with an error satisfying errors.Is(err, compress.ErrCorrupt),
// without panicking and without ever returning wrong symbols as success.
func CorruptionSuite(t *testing.T, name string) {
	t.Helper()
	sources := []struct {
		name string
		data []byte
	}{
		{"Empty", []byte{}},
		{"Tiny", []byte{0, 1, 2, 3}},
		{"Periodic", bytes.Repeat([]byte{0, 0, 1, 3}, 1500)},
		{"Random", synth.Profile{Length: 8000, GC: 0.5}.Generate(404)},
	}
	for _, srcCase := range sources {
		src := srcCase.data
		t.Run(srcCase.name, func(t *testing.T) {
			c, err := compress.New(name)
			if err != nil {
				t.Fatal(err)
			}
			payload, _, err := c.Compress(src)
			if err != nil {
				t.Fatalf("%s: compress: %v", name, err)
			}
			frame := compress.Seal(name, src, payload)

			// The unmutated frame must restore exactly — otherwise every
			// rejection below would be vacuous.
			got, _, err := compress.SafeDecompress(name, frame, compress.Limits{})
			if err != nil {
				t.Fatalf("%s: pristine frame rejected: %v", name, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s: pristine frame restored %d symbols, want %d", name, len(got), len(src))
			}

			for _, m := range frameMutations(name, src, payload, frame) {
				m := m
				t.Run(m.name, func(t *testing.T) {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s/%s: SafeDecompress panicked: %v", name, m.name, r)
						}
					}()
					out, _, err := compress.SafeDecompress("", m.data, compress.Limits{})
					if err == nil {
						// A resealed mutant may touch only don't-care bits
						// (bit-packing padding); accepting it is fine if and
						// only if the restored symbols are still exact.
						if m.mayBeLossless && bytes.Equal(out, src) {
							return
						}
						t.Fatalf("%s/%s: corrupted frame accepted", name, m.name)
					} else if !errors.Is(err, compress.ErrCorrupt) {
						t.Fatalf("%s/%s: error %v does not satisfy ErrCorrupt", name, m.name, err)
					}
				})
			}
		})
	}
}

type mutation struct {
	name string
	data []byte
	// mayBeLossless marks mutants whose checksums are internally consistent
	// and whose tampering might not change decoded symbols (padding bits):
	// success is tolerated iff the output is byte-identical to the source.
	mayBeLossless bool
}

// frameMutations builds the mutant table for one sealed frame. Checksum
// mutants exercise the frame layer; the resealed mutants carry internally
// consistent checksums so the tampered bytes reach the codec (or the
// output verification) and exercise the hardened decode path itself.
func frameMutations(codec string, src, payload, frame []byte) []mutation {
	clone := func(b []byte) []byte { return append([]byte(nil), b...) }
	flip := func(b []byte, i int) []byte {
		out := clone(b)
		out[i%len(out)] ^= 0x40
		return out
	}
	sum := compress.Checksum(src)

	muts := []mutation{
		// Truncation: from nothing left through cut headers to a clipped tail.
		{name: "TruncateEmpty", data: nil},
		{name: "TruncateMagic", data: clone(frame[:3])},
		{name: "TruncateHeader", data: clone(frame[:compress.Overhead(codec)-2])},
		{name: "TruncateTail", data: clone(frame[:len(frame)-1])},
		{name: "TruncateHalf", data: clone(frame[:len(frame)/2])},
		// Extension: trailing garbage after a frame that is otherwise intact.
		{name: "ExtendOneByte", data: append(clone(frame), 0x00)},
		{name: "ExtendBlock", data: append(clone(frame), bytes.Repeat([]byte{0xA5}, 64)...)},
		// Bit flips across the regions: magic, version, name, counts,
		// checksums, payload. Every one must trip a checksum or field check.
		{name: "FlipMagic", data: flip(frame, 0)},
		{name: "FlipVersion", data: flip(frame, 4)},
		{name: "FlipCodecName", data: flip(frame, 6)},
		{name: "FlipBases", data: flip(frame, 6+len(codec)+2)},
		{name: "FlipOutputSum", data: flip(frame, 22+len(codec))},
		{name: "FlipHeaderSum", data: flip(frame, 30+len(codec))},
		// Header tampering with recomputed header checksums: the frame
		// opens clean, so the lie is only caught downstream.
		{name: "TamperBasesResealed", data: compress.SealSum(codec, len(src)+1, sum, payload)},
		{name: "TamperOutputSumResealed", data: compress.SealSum(codec, len(src), sum^0xDEADBEEF, payload)},
	}
	if len(payload) > 0 {
		// Payload bit flip caught by the payload checksum.
		muts = append(muts, mutation{name: "FlipPayload", data: flip(frame, compress.Overhead(codec)+len(payload)/2)})
		// Payload tampered and resealed with matching checksums: the codec
		// must either reject the stream itself, or restore symbols that fail
		// the output checksum, or — when only padding bits changed — restore
		// the exact source. Never a panic, never wrong symbols as success.
		tampered := clone(payload)
		tampered[len(tampered)/2] ^= 0xFF
		muts = append(muts, mutation{name: "TamperPayloadResealed", data: compress.SealSum(codec, len(src), sum, tampered), mayBeLossless: true})
		truncated := clone(payload[:len(payload)-1])
		muts = append(muts, mutation{name: "TruncatePayloadResealed", data: compress.SealSum(codec, len(src), sum, truncated), mayBeLossless: true})
	}
	if other := otherCodec(codec); other != "" {
		// A frame honestly sealed for one codec but recorded as another:
		// the foreign decoder sees well-checksummed gibberish.
		muts = append(muts, mutation{name: "WrongCodecResealed", data: compress.SealSum(other, len(src), sum, payload), mayBeLossless: true})
	}
	return muts
}

// otherCodec picks a registered codec different from name, if any.
func otherCodec(name string) string {
	for _, n := range compress.Names() {
		if n != name {
			return n
		}
	}
	return ""
}

// RunCorruptionAll runs the corruption suite over every registered codec —
// the cross-codec entry point mirroring CrossCodecParallel.
func RunCorruptionAll(t *testing.T) {
	t.Helper()
	names := compress.Names()
	if len(names) == 0 {
		t.Fatal("no codecs registered")
	}
	for _, name := range names {
		name := name
		t.Run(fmt.Sprintf("codec=%s", name), func(t *testing.T) {
			CorruptionSuite(t, name)
		})
	}
}
