package compress_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// blockSrc builds a deterministic symbol sequence of length n.
func blockSrc(n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte((i*7 + i/13) % 4)
	}
	return s
}

func TestBlockRoundTripSizes(t *testing.T) {
	const bs = 64
	for _, n := range []int{0, 1, bs - 1, bs, bs + 1, 3*bs + 17, 10 * bs} {
		src := blockSrc(n)
		container, st, err := compress.BlockCompress("dnapack", src, compress.BlockOptions{BlockSize: bs, Jobs: 3})
		if err != nil {
			t.Fatalf("n=%d: BlockCompress: %v", n, err)
		}
		if n > 0 && st.WorkNS <= 0 {
			t.Fatalf("n=%d: non-positive modeled work %d", n, st.WorkNS)
		}
		r, err := compress.OpenBlocks(container, compress.Limits{})
		if err != nil {
			t.Fatalf("n=%d: OpenBlocks: %v", n, err)
		}
		wantBlocks := (n + bs - 1) / bs
		if r.Codec() != "dnapack" || r.Bases() != n || r.BlockSize() != bs || r.Blocks() != wantBlocks {
			t.Fatalf("n=%d: header (%s, %d bases, bs %d, %d blocks), want (dnapack, %d, %d, %d)",
				n, r.Codec(), r.Bases(), r.BlockSize(), r.Blocks(), n, bs, wantBlocks)
		}
		got, _, err := r.Decompress()
		if err != nil {
			t.Fatalf("n=%d: Decompress: %v", n, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("n=%d: round trip mismatch (%d symbols out)", n, len(got))
		}
	}
}

func TestBlockJobsDeterminism(t *testing.T) {
	src := synth.Profile{Length: 20000, GC: 0.45}.Generate(42)
	var first []byte
	for _, jobs := range []int{1, 2, 8} {
		container, _, err := compress.BlockCompress("xm", src, compress.BlockOptions{BlockSize: 1024, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if first == nil {
			first = container
		} else if !bytes.Equal(first, container) {
			t.Fatalf("jobs=%d produced a different container than jobs=1", jobs)
		}
	}
}

func TestBlockSliceReadAtEquivalence(t *testing.T) {
	const bs = 128
	src := synth.Profile{Length: 5*bs + 31, GC: 0.5}.Generate(9)
	container, _, err := compress.BlockCompress("dnapack", src, compress.BlockOptions{BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	r, err := compress.OpenBlocks(container, compress.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := r.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range [][2]int{{0, 0}, {0, 1}, {bs - 1, 2}, {bs, bs}, {2*bs + 3, 2*bs + 5}, {len(src) - 1, 1}, {0, len(src)}} {
		off, n := probe[0], probe[1]
		got, _, err := r.Slice(off, n)
		if err != nil {
			t.Fatalf("Slice(%d, %d): %v", off, n, err)
		}
		if !bytes.Equal(got, full[off:off+n]) {
			t.Fatalf("Slice(%d, %d) differs from full decode", off, n)
		}
	}
	// Out-of-range slices are caller errors, not corruption.
	if _, _, err := r.Slice(-1, 2); err == nil || errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("Slice(-1, 2): got %v, want a plain range error", err)
	}
	if _, _, err := r.Slice(len(src), 1); err == nil {
		t.Fatal("Slice past the end accepted")
	}

	// io.ReaderAt semantics: exact reads, EOF-truncated reads, negative off.
	p := make([]byte, 3*bs)
	if n, err := r.ReadAt(p, int64(bs/2)); err != nil || n != len(p) {
		t.Fatalf("ReadAt mid: n=%d err=%v", n, err)
	} else if !bytes.Equal(p, full[bs/2:bs/2+len(p)]) {
		t.Fatal("ReadAt mid differs from full decode")
	}
	if n, err := r.ReadAt(p, int64(len(src)-10)); err != io.EOF || n != 10 {
		t.Fatalf("ReadAt tail: n=%d err=%v, want 10, io.EOF", n, err)
	} else if !bytes.Equal(p[:10], full[len(src)-10:]) {
		t.Fatal("ReadAt tail differs from full decode")
	}
	if _, err := r.ReadAt(p, int64(len(src))); err != io.EOF {
		t.Fatalf("ReadAt at end: %v, want io.EOF", err)
	}
	if _, err := r.ReadAt(p, -1); err == nil {
		t.Fatal("ReadAt(-1) accepted")
	}
}

func TestSafeDecompressAnyDispatch(t *testing.T) {
	src := blockSrc(600)
	container, _, err := compress.BlockCompress("dnapack", src, compress.BlockOptions{BlockSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := compress.SafeDecompressAny("dnapack", container, compress.Limits{})
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("block container: %v (got %d symbols)", err, len(got))
	}
	if _, _, err := compress.SafeDecompressAny("xm", container, compress.Limits{}); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("codec pin ignored on block container: %v", err)
	}
	c, err := compress.New("dnapack")
	if err != nil {
		t.Fatal(err)
	}
	payload, _, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	frame := compress.Seal("dnapack", src, payload)
	got, _, err = compress.SafeDecompressAny("dnapack", frame, compress.Limits{})
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("single frame: %v (got %d symbols)", err, len(got))
	}
}

// --- hostile headers: the open path must reject a lying index before it
// allocates anything sized by the lie ---

// patchBlockHeader rewrites the (bases, blockSize, count) header fields of
// a dnapack container and reseals the header checksum, producing a
// well-formed header whose claims the rest of the bytes cannot back.
func patchBlockHeader(t *testing.T, container []byte, bases, blockSize, count uint64) []byte {
	t.Helper()
	out := append([]byte(nil), container...)
	n := int(out[5])
	binary.BigEndian.PutUint64(out[6+n:], bases)
	binary.BigEndian.PutUint64(out[14+n:], blockSize)
	binary.BigEndian.PutUint64(out[22+n:], count)
	binary.BigEndian.PutUint32(out[34+n:], compress.Checksum(out[:34+n]))
	return out
}

func TestOpenBlocksHostileHeaders(t *testing.T) {
	src := blockSrc(500)
	container, _, err := compress.BlockCompress("dnapack", src, compress.BlockOptions{BlockSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	noLimits := compress.Limits{MaxCompressed: -1, MaxOutput: -1}
	flip := func(i int) []byte {
		out := append([]byte(nil), container...)
		out[i] ^= 0x40
		return out
	}
	cases := []struct {
		name string
		data []byte
		lim  compress.Limits
		want string
	}{
		{"Empty", nil, noLimits, "shorter than the minimum header"},
		{"BadMagic", flip(0), noLimits, "bad magic"},
		{"BadVersion", flip(4), noLimits, "unsupported version"},
		{"FlipHeaderByte", flip(10), noLimits, "header checksum mismatch"},
		// A header claiming 2^40 symbols in 2^40 one-base blocks: with
		// limits disabled the index-sizing check is the only guard, and the
		// test completing at all proves no 12 TB index was allocated.
		{"HugeCountTruncatedIndex", patchBlockHeader(t, container, 1<<40, 1, 1<<40), noLimits, "truncated block index"},
		// The same lie under default limits dies even earlier, at MaxOutput.
		{"HugeCountDefaultLimits", patchBlockHeader(t, container, 1<<40, 1, 1<<40), compress.Limits{}, "limit"},
		{"BasesOverflowInt", patchBlockHeader(t, container, math.MaxUint64, 100, 5), noLimits, "overflows int"},
		{"ZeroBlockSize", patchBlockHeader(t, container, 500, 0, 5), noLimits, "block size"},
		{"CountMismatch", patchBlockHeader(t, container, 500, 100, 4), noLimits, "require"},
		{"TruncatedIndex", container[:40], noLimits, "truncated"},
		{"TruncatedMidFrame", container[:len(container)-7], noLimits, ""},
		{"TrailingGarbage", append(append([]byte(nil), container...), 0xA5), noLimits, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := compress.OpenBlocks(tc.data, tc.lim)
			if err == nil {
				t.Fatalf("hostile container accepted (%d blocks)", r.Blocks())
			}
			if !errors.Is(err, compress.ErrCorrupt) {
				t.Fatalf("rejection %v does not satisfy ErrCorrupt", err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %q does not mention %q", err, tc.want)
			}
		})
	}

	// Index checksum: flipping any index byte must be caught by the index
	// CRC, not by a downstream frame parse.
	idxStart := compress.BlockHeaderSize("dnapack")
	bad := append([]byte(nil), container...)
	bad[idxStart+3] ^= 0x01
	if _, err := compress.OpenBlocks(bad, noLimits); err == nil || !strings.Contains(err.Error(), "index checksum") {
		t.Fatalf("index tamper: %v, want index checksum mismatch", err)
	}
}

// TestBlockCacheIndexAliasing is the regression test for the cache's
// deep-copy contract on block results: mutating the Data or BlockIndex a
// Get handed out must never corrupt what a later Get sees.
func TestBlockCacheIndexAliasing(t *testing.T) {
	src := blockSrc(700)
	cache := compress.NewCache()
	opts := compress.BlockOptions{BlockSize: 128}
	r1, err := compress.BlockCompressCached(cache, "dnapack", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.BlockIndex) != 6 {
		t.Fatalf("got %d index entries, want 6", len(r1.BlockIndex))
	}
	want := append([]compress.BlockEntry(nil), r1.BlockIndex...)
	wantData := append([]byte(nil), r1.Data...)

	// Scribble over everything the first call returned.
	for i := range r1.BlockIndex {
		r1.BlockIndex[i] = compress.BlockEntry{Length: -1, Sum: 0xDEADBEEF}
	}
	for i := range r1.Data {
		r1.Data[i] = 0xFF
	}

	r2, ok := cache.Get(compress.BlockContentKey("dnapack", opts.BlockSize, src))
	if !ok {
		t.Fatal("entry evaporated")
	}
	if !bytes.Equal(r2.Data, wantData) {
		t.Fatal("cached container bytes were corrupted through the returned slice")
	}
	for i, e := range r2.BlockIndex {
		if e != want[i] {
			t.Fatalf("cached index entry %d corrupted: %+v, want %+v", i, e, want[i])
		}
	}
	// And the warm path still restores the source.
	r3, err := compress.BlockCompressCached(cache, "dnapack", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := compress.SafeDecompressAny("dnapack", r3.Data, compress.Limits{})
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("warm hit does not restore the source: %v", err)
	}
	if hits, misses := cache.Counters(); hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2 and 1", hits, misses)
	}
}

func TestBlockKeyDistinctFromWholeSlice(t *testing.T) {
	src := blockSrc(300)
	if compress.BlockContentKey("dnapack", 100, src) == compress.ContentKey("dnapack", src) {
		t.Fatal("block key aliases the whole-slice key")
	}
	if compress.BlockContentKey("dnapack", 100, src) == compress.BlockContentKey("dnapack", 200, src) {
		t.Fatal("block size is not part of the key")
	}
}
