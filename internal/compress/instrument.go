package compress

import (
	"errors"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// opMetrics is the pre-resolved series set for one (codec, op) pair.
// Resolving series once at construction keeps the per-call cost of an
// instrumented codec to a handful of atomic operations, which is what lets
// BenchmarkInstrumentOverhead stay under its budget.
type opMetrics struct {
	calls    *obs.Counter
	corrupt  *obs.Counter
	failures *obs.Counter
	inBytes  *obs.Counter
	outBytes *obs.Counter
	modelMS  *obs.Histogram
	peakMem  *obs.Gauge
}

func newOpMetrics(reg *obs.Registry, codec, op string) opMetrics {
	reg = obs.OrDefault(reg)
	labels := []string{"codec", codec, "op", op}
	return opMetrics{
		calls:    reg.Counter("dna_codec_calls_total", "Codec operations executed.", labels...),
		corrupt:  reg.Counter("dna_codec_corrupt_total", "Codec operations failed with the corrupt-input taxonomy.", labels...),
		failures: reg.Counter("dna_codec_failures_total", "Codec operations failed outside the corrupt-input taxonomy.", labels...),
		inBytes:  reg.Counter("dna_codec_in_bytes_total", "Bytes handed to the codec.", labels...),
		outBytes: reg.Counter("dna_codec_out_bytes_total", "Bytes produced by the codec.", labels...),
		modelMS:  reg.Histogram("dna_codec_model_ms", "Modeled codec work in milliseconds (Stats.WorkNS).", obs.DefMSBuckets(), labels...),
		peakMem:  reg.Gauge("dna_codec_peak_mem_bytes", "Largest modeled peak memory seen (Stats.PeakMem).", labels...),
	}
}

// observe records one codec operation. Errors are classified with the
// repository's error taxonomy: ErrCorrupt-wrapped failures count as corrupt
// input, everything else as an internal failure.
func (m opMetrics) observe(in, out int, st Stats, err error) {
	m.calls.Inc()
	m.inBytes.Add(uint64(in))
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			m.corrupt.Inc()
		} else {
			m.failures.Inc()
		}
		return
	}
	m.outBytes.Add(uint64(out))
	m.modelMS.Observe(float64(st.WorkNS) / 1e6)
	m.peakMem.SetMax(float64(st.PeakMem))
}

// instrumented decorates a Codec with per-operation metrics. It records
// only modeled figures (byte counts, Stats), never wall time, so wrapping a
// codec cannot perturb deterministic outputs.
type instrumented struct {
	inner Codec
	comp  opMetrics
	dec   opMetrics
}

// Instrument wraps c so every Compress and Decompress call records call
// counts, byte volumes, modeled cost and error-taxonomy outcomes into reg
// (nil means the default registry). Wrapping an already-instrumented codec
// returns it unchanged to avoid double counting.
func Instrument(reg *obs.Registry, c Codec) Codec {
	if c == nil {
		return nil
	}
	if w, ok := c.(*instrumented); ok {
		return w
	}
	return &instrumented{
		inner: c,
		comp:  newOpMetrics(reg, c.Name(), "compress"),
		dec:   newOpMetrics(reg, c.Name(), "decompress"),
	}
}

func (w *instrumented) Name() string { return w.inner.Name() }

func (w *instrumented) Compress(src []byte) ([]byte, Stats, error) {
	out, st, err := w.inner.Compress(src)
	w.comp.observe(len(src), len(out), st, err)
	return out, st, err
}

func (w *instrumented) Decompress(data []byte) ([]byte, Stats, error) {
	out, st, err := w.inner.Decompress(data)
	w.dec.observe(len(data), len(out), st, err)
	return out, st, err
}

// ObserveCompress records one compress operation without wrapping a codec —
// for call sites that already ran the codec (cached pipelines, the hardened
// decode path) and only need the books updated.
func ObserveCompress(reg *obs.Registry, codec string, in, out int, st Stats, err error) {
	newOpMetrics(reg, codec, "compress").observe(in, out, st, err)
}

// ObserveDecompress is ObserveCompress for the decompress direction.
func ObserveDecompress(reg *obs.Registry, codec string, in, out int, st Stats, err error) {
	newOpMetrics(reg, codec, "decompress").observe(in, out, st, err)
}
