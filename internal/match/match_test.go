package match

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/seq"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func mustEncode(t *testing.T, s string) []byte {
	t.Helper()
	codes, err := seq.Encode([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return codes
}

func TestFindForwardBasic(t *testing.T) {
	// 16-base block repeated after a spacer.
	block := "ACGTACGGTTCAACGT"
	data := mustEncode(t, block+"TTTT"+block)
	m := NewHashMatcher(data)
	pos := len(block) + 4
	m.Advance(pos)
	mt, ok := m.FindForward(pos)
	if !ok {
		t.Fatal("no forward match found")
	}
	if mt.Src != 0 || mt.Len != len(block) || mt.RC {
		t.Fatalf("got %+v, want Src=0 Len=%d RC=false", mt, len(block))
	}
	if !VerifyMatch(data, pos, mt) {
		t.Fatal("VerifyMatch rejected the match")
	}
}

func TestFindForwardOverlap(t *testing.T) {
	// Period-13 repetition: the longest match at pos 13 has source 0 and
	// overlaps its own output (classic LZ run).
	unit := "ACGTTGCAAGGTC"
	data := mustEncode(t, unit+unit+unit+unit)
	m := NewHashMatcher(data)
	pos := len(unit)
	m.Advance(pos)
	mt, ok := m.FindForward(pos)
	if !ok {
		t.Fatal("no match")
	}
	if mt.Src != 0 || mt.Len != 3*len(unit) {
		t.Fatalf("got %+v, want Src=0 Len=%d", mt, 3*len(unit))
	}
	if !VerifyMatch(data, pos, mt) {
		t.Fatal("overlapping match failed verification")
	}
}

func TestFindRCBasic(t *testing.T) {
	blk := "ACGTACGGTTCAACGTAAAA"
	rc := string(seq.Decode(seq.ReverseComplement(mustEncode(t, blk))))
	data := mustEncode(t, blk+"CC"+rc)
	m := NewHashMatcher(data)
	pos := len(blk) + 2
	m.Advance(pos)
	mt, ok := m.FindRC(pos)
	if !ok {
		t.Fatal("no RC match found")
	}
	if !mt.RC || mt.Src != 0 || mt.Len != len(blk) {
		t.Fatalf("got %+v, want Src=0 Len=%d RC=true", mt, len(blk))
	}
	if !VerifyMatch(data, pos, mt) {
		t.Fatal("VerifyMatch rejected RC match")
	}
}

func TestFindBestPrefersLonger(t *testing.T) {
	// Forward copy of 12, RC copy of 20 — RC must win.
	fwd := "ACGTTGCAAGGT"         // 12
	blk := "ACGTACGGTTCAACGTAAAA" // 20
	rc := string(seq.Decode(seq.ReverseComplement(mustEncode(t, blk))))
	data := mustEncode(t, blk+fwd+"CC"+fwd+rc)
	// Query at start of fwd+rc tail: both anchors available at different
	// positions; check at the rc position.
	pos := len(blk) + len(fwd) + 2 + len(fwd)
	m := NewHashMatcher(data)
	m.Advance(pos)
	mt, ok := m.FindBest(pos)
	if !ok {
		t.Fatal("no match")
	}
	if !mt.RC || mt.Len != len(blk) {
		t.Fatalf("got %+v, want RC len %d", mt, len(blk))
	}
}

func TestNoMatchInRandomPrefix(t *testing.T) {
	p := synth.Profile{Length: 4000, GC: 0.5} // iid, no planted repeats
	data := p.Generate(99)
	m := NewHashMatcher(data)
	pos := 2000
	m.Advance(pos)
	mt, ok := m.FindForward(pos)
	if ok && mt.Len > 24 {
		t.Fatalf("suspiciously long match %d in iid data", mt.Len)
	}
	// Any reported match must still verify.
	if ok && !VerifyMatch(data, pos, mt) {
		t.Fatal("reported match does not verify")
	}
}

func TestMatcherRespectsProcessedBoundary(t *testing.T) {
	blk := "ACGTACGGTTCAACGT"
	data := mustEncode(t, blk+blk)
	m := NewHashMatcher(data)
	// Without Advance the index is empty: nothing may be found.
	if _, ok := m.FindForward(len(blk)); ok {
		t.Fatal("match found with empty index")
	}
	m.Advance(len(blk))
	if _, ok := m.FindForward(len(blk)); !ok {
		t.Fatal("match missing after Advance")
	}
}

func TestMatcherAgainstSAMOracle(t *testing.T) {
	// With unbounded chains the matcher must find matches at least as long
	// as k whenever the oracle says a >=k match exists, and never longer
	// than the oracle's optimum.
	p := synth.Profile{Length: 6000, GC: 0.4, RepeatProb: 0.02, RepeatMin: 15, RepeatMax: 120, RCFraction: 0, MutationRate: 0}
	data := p.Generate(17)
	m := NewHashMatcher(data, WithMaxChain(1<<30))
	sa := NewSuffixAutomaton(len(data))
	step := 97
	for pos := 0; pos < len(data)-DefaultK; pos += step {
		m.Advance(pos)
		for sa.States() < 2*pos+1 && sa.States() <= 2*len(data) { // keep SAM covering prefix [0,pos)
			break
		}
		// Rebuild oracle prefix lazily: cheaper to rebuild every step for
		// this size than to track incremental equivalence.
		oracle := NewSuffixAutomaton(pos)
		oracle.ExtendAll(data[:pos])
		want := oracle.LongestPrefixIn(data[pos:])
		mt, ok := m.FindForward(pos)
		got := 0
		if ok {
			got = mt.Len
		}
		if got > want {
			t.Fatalf("pos %d: matcher claims %d, oracle optimum %d", pos, got, want)
		}
		if want >= DefaultK && got < DefaultK {
			t.Fatalf("pos %d: oracle found %d-base match, matcher found none", pos, want)
		}
		if ok && !VerifyMatch(data, pos, mt) {
			t.Fatalf("pos %d: match fails verification", pos)
		}
		// Overlapping sources give the matcher access to strings the
		// [0,pos) oracle can't see, so got may legitimately exceed want
		// only via overlap; VerifyMatch above already guarantees validity.
		_ = sa
	}
}

func TestSAMContains(t *testing.T) {
	text := mustEncode(t, "ACGTACGGTTCA")
	sa := NewSuffixAutomaton(len(text))
	sa.ExtendAll(text)
	for i := 0; i < len(text); i++ {
		for j := i + 1; j <= len(text); j++ {
			if !sa.Contains(text[i:j]) {
				t.Fatalf("substring [%d:%d] not recognized", i, j)
			}
		}
	}
	if sa.Contains(mustEncode(t, "AAAA")) {
		t.Fatal("recognized absent substring")
	}
}

func TestSAMLongestPrefixIn(t *testing.T) {
	sa := NewSuffixAutomaton(8)
	sa.ExtendAll(mustEncode(t, "ACGTACGG"))
	cases := []struct {
		p    string
		want int
	}{
		{"ACGT", 4}, {"ACGTACGG", 8}, {"ACGTT", 4}, {"TTTT", 1}, {"GGGG", 2},
	}
	for _, c := range cases {
		if got := sa.LongestPrefixIn(mustEncode(t, c.p)); got != c.want {
			t.Errorf("LongestPrefixIn(%s) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestSAMStateBound(t *testing.T) {
	p := synth.Profile{Length: 2000, GC: 0.5}
	data := p.Generate(3)
	sa := NewSuffixAutomaton(len(data))
	sa.ExtendAll(data)
	if sa.States() > 2*len(data) {
		t.Fatalf("%d states for %d symbols exceeds 2n bound", sa.States(), len(data))
	}
}

func TestSAMMatchingStatistics(t *testing.T) {
	sa := NewSuffixAutomaton(8)
	sa.ExtendAll(mustEncode(t, "ACGT"))
	ms := sa.MatchingStatistics(mustEncode(t, "CGTA"))
	// Longest suffix of "C" in text: "C" (1); "CG": 2; "CGT": 3; "CGTA":
	// suffix "A" (1) because "GTA" and "TA" absent.
	want := []int{1, 2, 3, 1}
	for i := range want {
		if ms[i] != want[i] {
			t.Fatalf("MS = %v, want %v", ms, want)
		}
	}
}

func TestExtendApproxPureCopy(t *testing.T) {
	blk := "ACGTACGGTTCAACGTACGT"
	data := mustEncode(t, blk+blk)
	am := ExtendApprox(data, 0, len(blk), 12, DefaultApproxConfig(), nil)
	if am.TLen != len(blk) || len(am.Ops) != 0 {
		t.Fatalf("got TLen=%d ops=%d, want %d/0", am.TLen, len(am.Ops), len(blk))
	}
	if !am.Valid(data, len(blk)) {
		t.Fatal("pure copy match invalid")
	}
}

func TestExtendApproxSubstitution(t *testing.T) {
	src := mustEncode(t, "ACGTACGGTTCAACGTACGTCCAGGTAC")
	dst := make([]byte, len(src))
	copy(dst, src)
	dst[20] = (dst[20] + 1) & 3 // one substitution mid-block
	data := append(append([]byte{}, src...), dst...)
	am := ExtendApprox(data, 0, len(src), 12, DefaultApproxConfig(), nil)
	if am.TLen != len(src) {
		t.Fatalf("TLen = %d, want %d", am.TLen, len(src))
	}
	if len(am.Ops) != 1 || am.Ops[0].Kind != OpSub || am.Ops[0].Off != 20 {
		t.Fatalf("ops = %+v", am.Ops)
	}
	if !am.Valid(data, len(src)) {
		t.Fatal("sub match invalid")
	}
}

func TestExtendApproxIndel(t *testing.T) {
	src := mustEncode(t, "ACGTACGGTTCAACGTACGTCCAGGTACGGTT")
	// Target: source with one base deleted at 18 and one inserted at 25 —
	// single-base indels, the mutation pattern GenCompress's greedy
	// one-op-lookahead extension is designed to bridge.
	tgt := append([]byte{}, src[:18]...)
	tgt = append(tgt, src[19:25]...)
	tgt = append(tgt, seq.G) // single-base insertion
	tgt = append(tgt, src[25:]...)
	data := append(append([]byte{}, src...), tgt...)
	cfg := DefaultApproxConfig()
	am := ExtendApprox(data, 0, len(src), 12, cfg, nil)
	if am.TLen < len(tgt)-2 {
		t.Fatalf("TLen = %d, want >= %d", am.TLen, len(tgt)-2)
	}
	if !am.Valid(data, len(src)) {
		t.Fatalf("indel match invalid: %+v", am)
	}
	hasDel := false
	for _, op := range am.Ops {
		if op.Kind == OpDel {
			hasDel = true
		}
	}
	if !hasDel {
		t.Fatalf("expected a deletion op, got %+v", am.Ops)
	}
}

func TestExtendApproxHammingOnly(t *testing.T) {
	src := mustEncode(t, "ACGTACGGTTCAACGTACGTCCAGGTACGGTT")
	tgt := append([]byte{}, src...)
	tgt[15] = (tgt[15] + 2) & 3
	data := append(append([]byte{}, src...), tgt...)
	cfg := DefaultApproxConfig()
	cfg.HammingOnly = true
	am := ExtendApprox(data, 0, len(src), 12, cfg, nil)
	for _, op := range am.Ops {
		if op.Kind != OpSub {
			t.Fatalf("HammingOnly produced %v", op.Kind)
		}
	}
	if !am.Valid(data, len(src)) {
		t.Fatal("hamming match invalid")
	}
}

func TestExtendApproxBudget(t *testing.T) {
	// Heavily mutated copy: ops must never exceed the budget.
	p := synth.Profile{Length: 400, GC: 0.5}
	src := p.Generate(5)
	rng := rand.New(rand.NewSource(6))
	tgt := append([]byte{}, src...)
	for i := 12; i < len(tgt); i += 9 {
		tgt[i] = (tgt[i] + byte(1+rng.Intn(3))) & 3
	}
	data := append(append([]byte{}, src...), tgt...)
	cfg := ApproxConfig{MaxOps: 5, MaxRun: 3, Lookahead: 4}
	am := ExtendApprox(data, 0, len(src), 12, cfg, nil)
	if len(am.Ops) > 5 {
		t.Fatalf("budget exceeded: %d ops", len(am.Ops))
	}
	if !am.Valid(data, len(src)) {
		t.Fatal("budgeted match invalid")
	}
}

func TestExtendApproxEndsOnAgreement(t *testing.T) {
	// A mismatch at the very end must be trimmed, not encoded.
	src := mustEncode(t, "ACGTACGGTTCAACGTACGT")
	tgt := append([]byte{}, src...)
	tgt[len(tgt)-1] = (tgt[len(tgt)-1] + 1) & 3
	data := append(append([]byte{}, src...), tgt...)
	am := ExtendApprox(data, 0, len(src), 12, DefaultApproxConfig(), nil)
	if len(am.Ops) != 0 {
		t.Fatalf("trailing error not trimmed: %+v", am.Ops)
	}
	if am.TLen != len(src)-1 {
		t.Fatalf("TLen = %d, want %d", am.TLen, len(src)-1)
	}
}

func TestExtendApproxRandomizedValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := synth.Profile{Length: 3000, GC: 0.45, RepeatProb: 0.03, RepeatMin: 20, RepeatMax: 200, MutationRate: 0.03}
	data := p.Generate(31)
	m := NewHashMatcher(data)
	for trial := 0; trial < 300; trial++ {
		pos := DefaultK + rng.Intn(len(data)-2*DefaultK)
		m.Advance(pos)
		mt, ok := m.FindForward(pos)
		if !ok || mt.Src+mt.Len > pos {
			continue
		}
		am := ExtendApprox(data, mt.Src, pos, mt.Len, DefaultApproxConfig(), nil)
		if !am.Valid(data, pos) {
			t.Fatalf("trial %d: invalid approx match %+v at pos %d", trial, am, pos)
		}
		if am.TLen < mt.Len {
			t.Fatalf("trial %d: approx extension shrank exact match %d -> %d", trial, mt.Len, am.TLen)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := synth.Profile{Length: 5000, GC: 0.4, RepeatProb: 0.02, RepeatMin: 15, RepeatMax: 100}
	data := p.Generate(8)
	m := NewHashMatcher(data)
	m.Advance(2500)
	// Query many positions: individual buckets can be empty, but across a
	// repeat-rich prefix some chain walks must happen.
	for pos := 2500; pos < 3500; pos += 13 {
		m.Advance(pos)
		m.FindForward(pos)
		m.FindRC(pos)
	}
	st := m.Stats()
	if st.Probes == 0 {
		t.Error("no probes recorded")
	}
}

func TestMemoryFootprints(t *testing.T) {
	data := make([]byte, 1000)
	m := NewHashMatcher(data)
	if m.MemoryFootprint() <= 0 {
		t.Error("matcher footprint must be positive")
	}
	sa := NewSuffixAutomaton(100)
	sa.ExtendAll(data[:100])
	if sa.MemoryFootprint() <= 0 {
		t.Error("SAM footprint must be positive")
	}
}

func TestVerifyMatchRejectsBad(t *testing.T) {
	data := mustEncode(t, "ACGTACGTACGT")
	bad := []struct {
		dst int
		mt  Match
	}{
		{4, Match{Src: 0, Len: 0}},
		{4, Match{Src: -1, Len: 4}},
		{4, Match{Src: 0, Len: 100}},
		{4, Match{Src: 1, Len: 4}},           // misaligned copy
		{8, Match{Src: 6, Len: 4, RC: true}}, // RC overlapping dst
	}
	for i, c := range bad {
		if VerifyMatch(data, c.dst, c.mt) {
			t.Errorf("case %d: accepted bad match %+v", i, c.mt)
		}
	}
}

func BenchmarkFindForward(b *testing.B) {
	p := synth.Profile{Length: 1 << 20, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, MutationRate: 0.01}
	data := p.Generate(1)
	m := NewHashMatcher(data)
	m.Advance(len(data))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FindForward((i*4099 + 13) % (len(data) - DefaultK))
	}
}

func BenchmarkSAMExtend(b *testing.B) {
	p := synth.Profile{Length: 1 << 16, GC: 0.4, RepeatProb: 0.01, RepeatMin: 20, RepeatMax: 200}
	data := p.Generate(2)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sa := NewSuffixAutomaton(len(data))
		sa.ExtendAll(data)
	}
}

var sinkCompare bool

func BenchmarkVerifyMatch(b *testing.B) {
	blk := bytes.Repeat([]byte{0, 1, 2, 3}, 256)
	data := append(append([]byte{}, blk...), blk...)
	mt := Match{Src: 0, Len: len(blk)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkCompare = VerifyMatch(data, len(blk), mt)
	}
}
