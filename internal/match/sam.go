package match

// SuffixAutomaton is an online suffix automaton over the 4-symbol nucleotide
// alphabet. It recognizes exactly the set of substrings of the text fed to
// Extend, in O(1) amortized time per symbol and O(n) states.
//
// Uses in this repository:
//   - oracle in matcher tests: LongestPrefixIn answers "how long is the
//     longest prefix of p that occurs somewhere in the indexed text"
//     exactly, which upper-bounds what the heuristic hash matcher may claim
//     and lower-bounds what it must find when chains are unbounded;
//   - repeat statistics for DNAX's repeat-length threshold heuristic.
type SuffixAutomaton struct {
	next [][4]int32
	link []int32
	len  []int32
	last int32
}

// NewSuffixAutomaton returns an automaton of the empty string.
func NewSuffixAutomaton(sizeHint int) *SuffixAutomaton {
	sa := &SuffixAutomaton{
		next: make([][4]int32, 1, 2*sizeHint+2),
		link: make([]int32, 1, 2*sizeHint+2),
		len:  make([]int32, 1, 2*sizeHint+2),
	}
	sa.next[0] = [4]int32{-1, -1, -1, -1}
	sa.link[0] = -1
	return sa
}

func (sa *SuffixAutomaton) addState(length, link int32, trans [4]int32) int32 {
	sa.next = append(sa.next, trans)
	sa.link = append(sa.link, link)
	sa.len = append(sa.len, length)
	return int32(len(sa.next) - 1)
}

// Extend appends symbol c (0..3) to the indexed text.
func (sa *SuffixAutomaton) Extend(c byte) {
	c &= 3
	cur := sa.addState(sa.len[sa.last]+1, -1, [4]int32{-1, -1, -1, -1})
	p := sa.last
	for p != -1 && sa.next[p][c] == -1 {
		sa.next[p][c] = cur
		p = sa.link[p]
	}
	if p == -1 {
		sa.link[cur] = 0
	} else {
		q := sa.next[p][c]
		if sa.len[p]+1 == sa.len[q] {
			sa.link[cur] = q
		} else {
			clone := sa.addState(sa.len[p]+1, sa.link[q], sa.next[q])
			for p != -1 && sa.next[p][c] == q {
				sa.next[p][c] = clone
				p = sa.link[p]
			}
			sa.link[q] = clone
			sa.link[cur] = clone
		}
	}
	sa.last = cur
}

// ExtendAll appends every symbol of s.
func (sa *SuffixAutomaton) ExtendAll(s []byte) {
	for _, c := range s {
		sa.Extend(c)
	}
}

// States reports the number of automaton states (useful for memory models;
// at most 2n-1 for a text of length n >= 2).
func (sa *SuffixAutomaton) States() int { return len(sa.next) }

// MemoryFootprint approximates resident bytes of the automaton.
func (sa *SuffixAutomaton) MemoryFootprint() int {
	return len(sa.next)*16 + len(sa.link)*4 + len(sa.len)*4
}

// Contains reports whether s occurs as a substring of the indexed text.
func (sa *SuffixAutomaton) Contains(s []byte) bool {
	st := int32(0)
	for _, c := range s {
		st = sa.next[st][c&3]
		if st == -1 {
			return false
		}
	}
	return true
}

// LongestPrefixIn returns the length of the longest prefix of p that occurs
// as a substring of the indexed text.
func (sa *SuffixAutomaton) LongestPrefixIn(p []byte) int {
	st := int32(0)
	for i, c := range p {
		st = sa.next[st][c&3]
		if st == -1 {
			return i
		}
	}
	return len(p)
}

// MatchingStatistics returns, for every position i of p, the length of the
// longest substring of the indexed text that ends at... more precisely the
// longest suffix of p[:i+1] that is a substring of the text (the classic
// matching-statistics array). DNAX uses the distribution of these lengths to
// pick its minimum-repeat-length threshold.
func (sa *SuffixAutomaton) MatchingStatistics(p []byte) []int {
	ms := make([]int, len(p))
	st := int32(0)
	l := int32(0)
	for i, c := range p {
		c &= 3
		for st != 0 && sa.next[st][c] == -1 {
			st = sa.link[st]
			l = sa.len[st]
		}
		if sa.next[st][c] != -1 {
			st = sa.next[st][c]
			l++
		}
		ms[i] = int(l)
	}
	return ms
}
