package match

// Approximate repeat extension with edit operations — the core of
// GenCompress. Starting from an exact k-base anchor (found by HashMatcher),
// the extension walks source and target forward together, spending a bounded
// budget of edit operations (substitute / insert / delete) to bridge
// mismatches, exactly the "edit operations … insert, delete and replace"
// with "constraint at the edit operation using a threshold value" the paper
// describes for GenCompress.

// OpKind enumerates edit operations relative to a plain copy of the source.
type OpKind uint8

const (
	// OpSub replaces the copied base at a target offset with Base.
	OpSub OpKind = iota
	// OpIns inserts Base at a target offset (the source does not advance).
	OpIns
	// OpDel skips one source base at a target offset (the target does not
	// consume a base for it).
	OpDel
)

func (k OpKind) String() string {
	switch k {
	case OpSub:
		return "sub"
	case OpIns:
		return "ins"
	case OpDel:
		return "del"
	}
	return "?"
}

// EditOp is a single deviation from an exact copy. Off is the offset in the
// *target* at which the operation applies, relative to the start of the
// approximate match.
type EditOp struct {
	Kind OpKind
	Off  int
	Base byte // for OpSub and OpIns
}

// ApproxConfig bounds the extension search.
type ApproxConfig struct {
	MaxOps      int  // total edit budget per repeat (paper's threshold)
	MaxRun      int  // consecutive-error limit before giving up
	Lookahead   int  // bases examined when deciding between sub/ins/del
	HammingOnly bool // GenCompress-1 mode: substitutions only
}

// DefaultApproxConfig mirrors GenCompress-2 defaults: a generous edit
// budget, stop after 3 consecutive errors, 4-base lookahead.
func DefaultApproxConfig() ApproxConfig {
	return ApproxConfig{MaxOps: 24, MaxRun: 3, Lookahead: 4}
}

// ApproxMatch describes an approximate repeat: the target [Dst, Dst+TLen)
// reproduces the source starting at Src with Ops applied.
type ApproxMatch struct {
	Src  int
	TLen int // bases produced in the target
	SLen int // bases consumed from the source
	Ops  []EditOp
}

// ExtendApprox grows an exact anchor of length k at (src, dst) into an
// approximate match. The extension is greedy with lookahead: on a mismatch
// it evaluates how far a substitution, an insertion or a deletion would
// resynchronize the streams and picks the best. stats, when non-nil,
// accumulates comparison counts for the cost model.
func ExtendApprox(data []byte, src, dst, k int, cfg ApproxConfig, stats *Stats) ApproxMatch {
	am := ApproxMatch{Src: src, TLen: k, SLen: k}
	s := src + k // next source index
	t := dst + k // next target index
	run := 0     // consecutive errors
	count := func(n int) {
		if stats != nil {
			stats.Extends += n
		}
	}
	agree := func(s0, t0 int) int {
		n := 0
		for n < cfg.Lookahead && t0+n < len(data) && s0+n < dst && data[s0+n] == data[t0+n] {
			n++
		}
		count(n + 1)
		return n
	}
	for t < len(data) && s < dst && len(am.Ops) < cfg.MaxOps {
		count(1)
		if data[s] == data[t] {
			am.TLen++
			am.SLen++
			s++
			t++
			run = 0
			continue
		}
		run++
		if run > cfg.MaxRun {
			break
		}
		// Score the three repair options by how long they resynchronize.
		subGain := agree(s+1, t+1)
		insGain, delGain := -1, -1
		if !cfg.HammingOnly {
			insGain = agree(s, t+1) // extra base in target
			delGain = agree(s+1, t) // missing base in target
		}
		switch {
		case subGain >= insGain && subGain >= delGain:
			am.Ops = append(am.Ops, EditOp{Kind: OpSub, Off: t - dst, Base: data[t]})
			am.TLen++
			am.SLen++
			s++
			t++
		case insGain >= delGain:
			am.Ops = append(am.Ops, EditOp{Kind: OpIns, Off: t - dst, Base: data[t]})
			am.TLen++
			t++
		default:
			am.Ops = append(am.Ops, EditOp{Kind: OpDel, Off: t - dst})
			am.SLen++
			s++
		}
	}
	// Trim trailing errors: an approximate match must end on agreement,
	// otherwise the trailing ops encode noise at a loss.
	for len(am.Ops) > 0 {
		last := am.Ops[len(am.Ops)-1]
		// Distance from the end of the match to the last op, in target bases.
		produced := am.TLen - last.Off
		var tail int
		switch last.Kind {
		case OpSub, OpIns:
			tail = produced - 1
		case OpDel:
			tail = produced
		}
		if tail >= 2 { // at least two agreeing bases after the final op
			break
		}
		switch last.Kind {
		case OpSub:
			am.TLen = last.Off
			am.SLen -= produced
		case OpIns:
			am.TLen = last.Off
			am.SLen -= produced - 1
		case OpDel:
			am.TLen = last.Off
			am.SLen -= produced + 1
		}
		am.Ops = am.Ops[:len(am.Ops)-1]
	}
	return am
}

// Reconstruct applies an approximate match against data (for the source
// bases) and returns the target bases it produces. Used by tests and codec
// self-checks; the GenCompress decoder inlines the same loop.
func (am ApproxMatch) Reconstruct(data []byte) []byte {
	out := make([]byte, 0, am.TLen)
	s := am.Src
	opIdx := 0
	for len(out) < am.TLen {
		if opIdx < len(am.Ops) && am.Ops[opIdx].Off == len(out) {
			op := am.Ops[opIdx]
			opIdx++
			switch op.Kind {
			case OpSub:
				out = append(out, op.Base)
				s++
			case OpIns:
				out = append(out, op.Base)
			case OpDel:
				s++
			}
			continue
		}
		out = append(out, data[s])
		s++
	}
	return out
}

// Valid reports whether the match's bookkeeping is internally consistent
// and reproduces data[dst:dst+TLen].
func (am ApproxMatch) Valid(data []byte, dst int) bool {
	if am.TLen < 0 || am.SLen < 0 || am.Src < 0 || am.Src+am.SLen > len(data) || dst+am.TLen > len(data) {
		return false
	}
	got := am.Reconstruct(data)
	if len(got) != am.TLen {
		return false
	}
	for i, b := range got {
		if data[dst+i] != b {
			return false
		}
	}
	return true
}
