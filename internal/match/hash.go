// Package match implements repeat discovery over nucleotide sequences: a
// hash-chain matcher for exact direct and reverse-complement repeats (the
// machinery behind DNAX and BioCompress), a suffix automaton used both as a
// verification oracle and for repeat statistics, and greedy approximate
// extension with edit operations (the machinery behind GenCompress).
//
// All functions operate on symbol-coded sequences (values 0..3, see package
// seq).
package match

import "fmt"

// Default parameters for the hash matcher. K is the anchor k-mer length: a
// repeat shorter than K is invisible to the matcher, which is fine because
// repeats below ~12 bases cost more to describe than to code literally.
const (
	DefaultK        = 12
	DefaultMaxChain = 64
	tableBits       = 18
)

// Match describes a repeat found at a target position.
type Match struct {
	Src int  // start of the source block in forward coordinates
	Len int  // match length in bases
	RC  bool // true if the target equals the reverse complement of the source
}

// Stats counts the work the matcher performed; the deterministic cost model
// converts these into simulated milliseconds.
type Stats struct {
	Probes  int // chain entries examined
	Extends int // base comparisons during extension
}

// HashMatcher finds the longest exact (direct or reverse-complement) repeat
// of the text beginning at a query position, with the source constrained to
// the already-processed prefix. Positions are indexed incrementally via
// Advance so that the matcher never "sees the future", mirroring a one-pass
// compressor.
type HashMatcher struct {
	data     []byte
	k        int
	stride   int
	maxChain int
	indexed  int // next k-mer start position to consider for insertion
	head     []int32
	prev     []int32
	stats    Stats
}

// Option configures a HashMatcher.
type Option func(*HashMatcher)

// WithK sets the anchor k-mer length (4..16).
func WithK(k int) Option {
	return func(m *HashMatcher) { m.k = k }
}

// WithMaxChain bounds how many chain candidates are examined per query.
func WithMaxChain(n int) Option {
	return func(m *HashMatcher) { m.maxChain = n }
}

// WithStride indexes only every stride-th source position, emulating
// fingerprint compressors (DNAX's B-block scheme) that anchor repeats on
// block-aligned positions only. Queries still run at every target position,
// so a repeat is found iff it covers an aligned anchor — shorter repeats are
// increasingly invisible as stride grows. Stride 1 (the default) indexes
// everything.
func WithStride(s int) Option {
	return func(m *HashMatcher) { m.stride = s }
}

// NewHashMatcher creates a matcher over data (symbol codes 0..3). The
// matcher holds a reference to data; the caller must not mutate it.
func NewHashMatcher(data []byte, opts ...Option) *HashMatcher {
	m := &HashMatcher{
		data:     data,
		k:        DefaultK,
		stride:   1,
		maxChain: DefaultMaxChain,
	}
	for _, o := range opts {
		o(m)
	}
	if m.k < 4 || m.k > 16 {
		panic(fmt.Sprintf("match: k=%d outside [4,16]", m.k))
	}
	if m.stride < 1 {
		m.stride = 1
	}
	if m.maxChain < 1 {
		m.maxChain = 1
	}
	m.head = make([]int32, 1<<tableBits)
	for i := range m.head {
		m.head[i] = -1
	}
	n := len(data) - m.k + 1
	if n < 0 {
		n = 0
	}
	m.prev = make([]int32, n)
	return m
}

// K reports the anchor length.
func (m *HashMatcher) K() int { return m.k }

// Stats returns the accumulated work counters.
func (m *HashMatcher) Stats() Stats { return m.stats }

// MemoryFootprint approximates the matcher's table memory in bytes.
func (m *HashMatcher) MemoryFootprint() int {
	return len(m.head)*4 + len(m.prev)*4
}

// packAt packs the k-mer starting at i into an integer (2 bits per base,
// first base most significant).
func (m *HashMatcher) packAt(i int) uint32 {
	var v uint32
	for j := 0; j < m.k; j++ {
		v = v<<2 | uint32(m.data[i+j]&3)
	}
	return v
}

// packRCAt packs the reverse complement of the k-mer starting at i.
func (m *HashMatcher) packRCAt(i int) uint32 {
	var v uint32
	for j := m.k - 1; j >= 0; j-- {
		v = v<<2 | uint32(3-(m.data[i+j]&3))
	}
	return v
}

func hashKmer(v uint32) uint32 {
	// Multiplicative hashing; 2654435761 is the golden-ratio constant.
	return (v * 2654435761) >> (32 - tableBits)
}

// Advance indexes k-mer start positions up to (but excluding) pos. Calling
// it repeatedly with increasing pos keeps the index covering exactly the
// processed prefix.
func (m *HashMatcher) Advance(pos int) {
	limit := pos
	if max := len(m.data) - m.k + 1; limit > max {
		limit = max
	}
	for ; m.indexed < limit; m.indexed++ {
		if m.indexed%m.stride != 0 {
			continue
		}
		h := hashKmer(hashInput(m.packAt(m.indexed)))
		m.prev[m.indexed] = m.head[h]
		m.head[h] = int32(m.indexed)
	}
}

// hashInput allows identity pre-mixing; kept separate so tests can reason
// about bucket placement.
func hashInput(v uint32) uint32 { return v }

// FindForward returns the longest direct match for the text starting at i
// whose source starts strictly before i (overlapping copies allowed, as a
// sequential decoder reproduces them byte by byte). ok is false when no
// anchor of length k matches.
func (m *HashMatcher) FindForward(i int) (best Match, ok bool) {
	if i+m.k > len(m.data) {
		return Match{}, false
	}
	key := m.packAt(i)
	h := hashKmer(hashInput(key))
	cand := m.head[h]
	for steps := 0; cand >= 0 && steps < m.maxChain; steps++ {
		j := int(cand)
		cand = m.prev[j]
		m.stats.Probes++
		if j >= i || m.packAt(j) != key {
			continue
		}
		l := m.extendForward(j, i)
		if l > best.Len {
			best = Match{Src: j, Len: l}
		}
	}
	return best, best.Len >= m.k
}

func (m *HashMatcher) extendForward(j, i int) int {
	l := m.k
	for i+l < len(m.data) && m.data[j+l] == m.data[i+l] {
		l++
		m.stats.Extends++
	}
	return l
}

// FindRC returns the longest reverse-complement match for the text starting
// at i. The returned Src is the start of the source block in forward
// coordinates; the block [Src, Src+Len) lies entirely in [0, i) because an
// RC copy cannot overlap its own output.
func (m *HashMatcher) FindRC(i int) (best Match, ok bool) {
	if i+m.k > len(m.data) {
		return Match{}, false
	}
	// We need a source block whose *last* k bases are the reverse complement
	// of our next k bases, i.e. a forward k-mer equal to RC(data[i:i+k]).
	key := m.packRCAt(i)
	h := hashKmer(hashInput(key))
	cand := m.head[h]
	for steps := 0; cand >= 0 && steps < m.maxChain; steps++ {
		j := int(cand)
		cand = m.prev[j]
		m.stats.Probes++
		if j+m.k > i || m.packAt(j) != key {
			continue
		}
		// Anchored: data[i:i+k] == RC(data[j:j+k]). Extend the source block
		// backwards from j while the target extends forwards from i+k.
		ext := 0
		for j-1-ext >= 0 && i+m.k+ext < len(m.data) &&
			m.data[i+m.k+ext] == 3-(m.data[j-1-ext]&3) {
			ext++
			m.stats.Extends++
		}
		l := m.k + ext
		if l > best.Len {
			best = Match{Src: j - ext, Len: l, RC: true}
		}
	}
	return best, best.Len >= m.k
}

// ForEachForwardAnchor calls fn with each processed position j whose k-mer
// equals the one at i, newest first, bounded by the chain limit. fn returns
// false to stop early. GenCompress drives its approximate-repeat search
// through this: every anchor is a candidate seed for edit-distance
// extension.
func (m *HashMatcher) ForEachForwardAnchor(i int, fn func(j int) bool) {
	if i+m.k > len(m.data) {
		return
	}
	key := m.packAt(i)
	h := hashKmer(hashInput(key))
	cand := m.head[h]
	for steps := 0; cand >= 0 && steps < m.maxChain; steps++ {
		j := int(cand)
		cand = m.prev[j]
		m.stats.Probes++
		if j >= i || m.packAt(j) != key {
			continue
		}
		if !fn(j) {
			return
		}
	}
}

// FindBest returns the better of the direct and reverse-complement matches
// at i. Direct matches win ties because they are marginally cheaper to
// encode (no orientation flag branch mispredict on decode).
func (m *HashMatcher) FindBest(i int) (Match, bool) {
	f, okF := m.FindForward(i)
	r, okR := m.FindRC(i)
	switch {
	case okF && okR:
		if r.Len > f.Len {
			return r, true
		}
		return f, true
	case okF:
		return f, true
	case okR:
		return r, true
	}
	return Match{}, false
}

// VerifyMatch checks that a Match faithfully describes the text at dst; it
// is used by tests and by codec self-checks.
func VerifyMatch(data []byte, dst int, mt Match) bool {
	if mt.Len <= 0 || dst+mt.Len > len(data) || mt.Src < 0 {
		return false
	}
	if !mt.RC {
		if mt.Src+mt.Len > len(data) {
			return false
		}
		for t := 0; t < mt.Len; t++ {
			if data[dst+t] != data[mt.Src+t] {
				return false
			}
		}
		return true
	}
	if mt.Src+mt.Len > dst { // RC source must be fully processed
		return false
	}
	for t := 0; t < mt.Len; t++ {
		if data[dst+t] != 3-(data[mt.Src+mt.Len-1-t]&3) {
			return false
		}
	}
	return true
}
