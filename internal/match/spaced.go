package match

import "fmt"

// SpacedSeed is a PatternHunter-style seed: a pattern of care ('1') and
// don't-care ('0') positions. Hashing only the care positions lets an
// anchor survive mismatches at the don't-care positions — the reason
// PatternHunter (and DNACompress, which the paper's Table 1 builds on it)
// finds approximate repeats that contiguous k-mer seeds miss.
type SpacedSeed struct {
	pattern []bool // true = care position
	weight  int    // number of care positions
}

// PatternHunterSeed is the original optimal weight-11 seed from Ma, Tromp &
// Li (2002): 111010010100110111.
const PatternHunterSeed = "111010010100110111"

// ParseSeed builds a seed from a '1'/'0' string. The first and last
// positions must be care positions and the weight must fit 2 bits per care
// base in a uint32 (weight <= 16).
func ParseSeed(s string) (SpacedSeed, error) {
	if len(s) < 2 {
		return SpacedSeed{}, fmt.Errorf("match: seed %q too short", s)
	}
	seed := SpacedSeed{pattern: make([]bool, len(s))}
	for i, c := range s {
		switch c {
		case '1':
			seed.pattern[i] = true
			seed.weight++
		case '0':
		default:
			return SpacedSeed{}, fmt.Errorf("match: seed %q has invalid character %q", s, c)
		}
	}
	if !seed.pattern[0] || !seed.pattern[len(s)-1] {
		return SpacedSeed{}, fmt.Errorf("match: seed %q must start and end with a care position", s)
	}
	if seed.weight > 16 {
		return SpacedSeed{}, fmt.Errorf("match: seed weight %d exceeds 16", seed.weight)
	}
	return seed, nil
}

// Span returns the seed's window length.
func (s SpacedSeed) Span() int { return len(s.pattern) }

// Weight returns the number of care positions.
func (s SpacedSeed) Weight() int { return s.weight }

// HashAt packs the care-position bases of data[pos : pos+Span()] into an
// integer. The caller must ensure the window fits.
func (s SpacedSeed) HashAt(data []byte, pos int) uint32 {
	var v uint32
	for i, care := range s.pattern {
		if care {
			v = v<<2 | uint32(data[pos+i]&3)
		}
	}
	return v
}

// SpacedIndex is a hash-chain index over spaced-seed hashes of a sequence's
// processed prefix, the anchor discovery engine for DNACompress-style
// approximate repeat search.
type SpacedIndex struct {
	seed     SpacedSeed
	data     []byte
	maxChain int
	indexed  int
	head     []int32
	prev     []int32
	stats    Stats
}

// NewSpacedIndex builds an (empty) index over data with the given seed.
func NewSpacedIndex(data []byte, seed SpacedSeed, maxChain int) *SpacedIndex {
	if maxChain < 1 {
		maxChain = DefaultMaxChain
	}
	n := len(data) - seed.Span() + 1
	if n < 0 {
		n = 0
	}
	idx := &SpacedIndex{
		seed:     seed,
		data:     data,
		maxChain: maxChain,
		head:     make([]int32, 1<<tableBits),
		prev:     make([]int32, n),
	}
	for i := range idx.head {
		idx.head[i] = -1
	}
	return idx
}

// Advance indexes window start positions up to (but excluding) pos.
func (x *SpacedIndex) Advance(pos int) {
	limit := pos
	if max := len(x.data) - x.seed.Span() + 1; limit > max {
		limit = max
	}
	for ; x.indexed < limit; x.indexed++ {
		h := hashKmer(x.seed.HashAt(x.data, x.indexed))
		x.prev[x.indexed] = x.head[h]
		x.head[h] = int32(x.indexed)
	}
}

// ForEachAnchor calls fn with every indexed position whose spaced hash
// equals the one at i, newest first, bounded by the chain limit. Unlike a
// contiguous k-mer anchor, the windows may disagree at don't-care
// positions — that's the point.
func (x *SpacedIndex) ForEachAnchor(i int, fn func(j int) bool) {
	if i+x.seed.Span() > len(x.data) {
		return
	}
	key := x.seed.HashAt(x.data, i)
	h := hashKmer(key)
	cand := x.head[h]
	for steps := 0; cand >= 0 && steps < x.maxChain; steps++ {
		j := int(cand)
		cand = x.prev[j]
		x.stats.Probes++
		if j >= i || x.seed.HashAt(x.data, j) != key {
			continue
		}
		if !fn(j) {
			return
		}
	}
}

// Stats returns accumulated probe counts.
func (x *SpacedIndex) Stats() Stats { return x.stats }

// MemoryFootprint approximates the index tables in bytes.
func (x *SpacedIndex) MemoryFootprint() int { return len(x.head)*4 + len(x.prev)*4 }
