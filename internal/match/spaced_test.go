package match

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestParseSeed(t *testing.T) {
	seed, err := ParseSeed(PatternHunterSeed)
	if err != nil {
		t.Fatal(err)
	}
	if seed.Span() != 18 || seed.Weight() != 11 {
		t.Fatalf("PatternHunter seed span %d weight %d, want 18/11", seed.Span(), seed.Weight())
	}
	for _, bad := range []string{"", "1", "011", "110", "1a1", "11111111111111111"} {
		if _, err := ParseSeed(bad); err == nil {
			t.Errorf("ParseSeed(%q) accepted", bad)
		}
	}
}

func TestSpacedHashIgnoresDontCares(t *testing.T) {
	seed, err := ParseSeed("101")
	if err != nil {
		t.Fatal(err)
	}
	a := []byte{0, 1, 2}
	b := []byte{0, 3, 2} // differs only at the don't-care position
	c := []byte{1, 1, 2} // differs at a care position
	if seed.HashAt(a, 0) != seed.HashAt(b, 0) {
		t.Fatal("don't-care position changed the hash")
	}
	if seed.HashAt(a, 0) == seed.HashAt(c, 0) {
		t.Fatal("care position did not change the hash")
	}
}

func TestSpacedIndexFindsMutatedRepeat(t *testing.T) {
	// A repeat whose every 12-mer contains a mutation: invisible to the
	// contiguous k=12 matcher, but the spaced seed still anchors it.
	p := synth.Profile{Length: 4000, GC: 0.5}
	base := p.Generate(31)
	block := append([]byte(nil), base[:60]...)
	mutated := append([]byte(nil), block...)
	for i := 5; i < len(mutated); i += 9 { // mutation every 9 bases
		mutated[i] = (mutated[i] + 1) & 3
	}
	data := append(append(append([]byte(nil), block...), base[100:140]...), mutated...)
	dst := len(block) + 40

	seed, err := ParseSeed(PatternHunterSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous k=12 matcher: no anchor survives a mutation every 9 bases.
	km := NewHashMatcher(data, WithK(12))
	km.Advance(dst)
	if _, ok := km.FindForward(dst); ok {
		t.Log("contiguous matcher unexpectedly found an anchor (dense-mutation case)")
	}
	// Spaced index: at least one window must hash equal despite interior
	// mutations? Not guaranteed for arbitrary phase; scan the first few
	// positions of the mutated copy for an anchor.
	idx := NewSpacedIndex(data, seed, 64)
	found := false
	for off := 0; off < 12 && !found; off++ {
		idx.Advance(dst + off)
		idx.ForEachAnchor(dst+off, func(j int) bool {
			found = true
			return false
		})
	}
	if !found {
		t.Fatal("spaced seed found no anchor in a 9-periodic mutated repeat")
	}
	if idx.Stats().Probes == 0 {
		t.Fatal("no probes recorded")
	}
	if idx.MemoryFootprint() <= 0 {
		t.Fatal("bad footprint")
	}
}
