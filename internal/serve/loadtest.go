// The load harness drives a running daemon the way ReqBench-style
// benchmarks drive serverless platforms: a fixed, seed-derived request
// plan executed by a bounded worker pool, with every outcome accounted —
// completed, rejected (429 backpressure) or failed — and end-to-end
// latencies summarized as percentiles. The plan (sequences, declared
// contexts, range probes) is generated up front from the seed, so two runs
// against equivalent servers issue byte-identical requests regardless of
// worker interleaving; only the measured latencies vary with the host.
package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/seq"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// LoadOptions configures a load run. Zero fields take the documented
// defaults.
type LoadOptions struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080". Required.
	BaseURL string
	// Units is the number of load units; each unit is one generated
	// sequence pushed through compress -> decompress(+verify), and every
	// RangeEvery-th unit additionally through a block-container range
	// read. <= 0 means 64.
	Units int
	// Concurrency is the worker count driving requests; <= 0 means 8.
	Concurrency int
	// Seed derives the whole request plan. Same seed, same requests.
	Seed int64
	// MinBases/MaxBases bound the generated sequence lengths;
	// <= 0 means 512 / 8192.
	MinBases, MaxBases int
	// RangeEvery: every k-th unit compresses into a CXB1 container and
	// probes a range read; <= 0 means 4. Negative-impossible; 1 = every
	// unit.
	RangeEvery int
	// BlockSize for the range-probe containers; <= 0 means 1024.
	BlockSize int
	// Contexts are cycled across units as the declared exchange context;
	// empty means a small built-in spread.
	Contexts []core.Context
	// Client issues the requests; nil means a fresh client with a 60 s
	// timeout.
	Client *http.Client
	// Clock measures latencies; nil means obs.System().
	Clock obs.Clock
	// Registry receives the harness-side latency histogram
	// (dna_loadgen_latency_ms) and outcome counters; nil means
	// obs.Default().
	Registry *obs.Registry
	// NoTrace suppresses the per-unit traceparent header. By default every
	// unit carries a deterministic seed-derived trace context, so loadgen
	// traffic shows up server-side as tagged, joinable traces; the plan is
	// generated identically either way.
	NoTrace bool
}

// loadUnit is one pre-generated plan entry.
type loadUnit struct {
	body    []byte // ASCII sequence to post
	symbols []byte // expected restored symbols
	ctx     core.Context
	ranged  bool
	off, n  int // range probe (when ranged)
	// traceparent is the unit's W3C trace context; every call in the unit
	// (compress, decompress, range) joins the same seed-derived trace.
	traceparent string
}

// LatencySummary condenses one run's per-call latencies.
type LatencySummary struct {
	Calls  int     `json:"calls"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// LoadReport is the full accounting of a run. The invariant the harness
// enforces — and RunLoad double-checks before returning — is that nothing
// is dropped silently: every issued call lands in exactly one of
// Completed, Rejected or Failed.
type LoadReport struct {
	Units      int `json:"units"`
	Calls      int `json:"calls"`
	Completed  int `json:"completed"`
	Rejected   int `json:"rejected"` // 429 backpressure, reported not retried
	Failed     int `json:"failed"`   // transport errors and non-2xx/429 statuses
	Mismatches int `json:"mismatches"`
	// InputBases is the total sequence length successfully pushed through
	// /compress — the numerator of a throughput figure.
	InputBases int64          `json:"input_bases"`
	ByEndpoint map[string]int `json:"by_endpoint"`
	Latency    LatencySummary `json:"latency"`
	// SLO is the harness-side objective evaluation over this run (latency
	// and availability of the issued calls) and SLOVerdict its one-word
	// fold: "pass", or "fail:" plus the failing objective names. The
	// verdict is always non-empty.
	SLO        []obs.SLOStatus `json:"slo"`
	SLOVerdict string          `json:"slo_verdict"`
	Errors     []string        `json:"errors,omitempty"` // first few failure details
}

// RunLoad executes the seed-derived plan against BaseURL and returns the
// accounting. It returns an error only for harness-level faults (bad
// options, accounting mismatch); request failures are data, reported in
// the LoadReport.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	if opts.BaseURL == "" {
		return LoadReport{}, fmt.Errorf("serve: loadgen needs a BaseURL")
	}
	opts = opts.withDefaults()
	clock := opts.Clock
	if clock == nil {
		clock = obs.System()
	}
	reg := obs.OrDefault(opts.Registry)

	units := planUnits(opts)
	if opts.NoTrace {
		for i := range units {
			units[i].traceparent = ""
		}
	}

	// The SLO engine brackets the run: the baseline evaluation anchors the
	// burn-rate window at the pre-run counter values, so the final
	// evaluation reports the burn of exactly this run's traffic.
	slo := obs.NewSLOEngine(clock, reg, obs.SLOConfig{}, loadgenObjectives(reg)...)
	slo.Evaluate()

	// Workers pull unit indices; per-unit outcomes land in indexed slots so
	// the aggregation below is independent of scheduling order.
	results := make([]unitResult, len(units))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runUnit(ctx, opts.Client, clock, reg, opts.BaseURL, units[i])
			}
		}()
	}
	for i := range units {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark unsent units as failed-by-cancel so accounting stays
			// complete even on an interrupted run.
			results[i] = unitResult{failed: 1, errs: []string{"canceled before issue"}}
		}
	}
	close(idx)
	wg.Wait()

	rep := LoadReport{Units: len(units), ByEndpoint: map[string]int{}}
	var lat []float64
	for _, r := range results {
		rep.Calls += r.calls
		rep.Completed += r.completed
		rep.Rejected += r.rejected
		rep.Failed += r.failed
		rep.Mismatches += r.mismatches
		rep.InputBases += r.inputBases
		for ep, n := range r.byEndpoint {
			rep.ByEndpoint[ep] += n
		}
		lat = append(lat, r.latMS...)
		for _, e := range r.errs {
			if len(rep.Errors) < 8 {
				rep.Errors = append(rep.Errors, e)
			}
		}
	}
	rep.Latency = summarize(lat)
	for _, ms := range lat {
		reg.Histogram("dna_loadgen_latency_ms", "Harness-observed end-to-end request latency.",
			obs.DefMSBuckets()).Observe(ms)
	}
	reg.Counter("dna_loadgen_calls_total", "Calls issued by the load harness.", "outcome", "completed").Add(uint64(rep.Completed))
	reg.Counter("dna_loadgen_calls_total", "Calls issued by the load harness.", "outcome", "rejected").Add(uint64(rep.Rejected))
	reg.Counter("dna_loadgen_calls_total", "Calls issued by the load harness.", "outcome", "failed").Add(uint64(rep.Failed))
	reg.Counter("dna_loadgen_issued_total", "Calls issued by the load harness, all outcomes.").Add(uint64(rep.Calls))

	rep.SLO = slo.Evaluate()
	rep.SLOVerdict = obs.Verdict(rep.SLO)

	if rep.Completed+rep.Rejected+rep.Failed != rep.Calls {
		return rep, fmt.Errorf("serve: loadgen accounting broken: %d completed + %d rejected + %d failed != %d calls",
			rep.Completed, rep.Rejected, rep.Failed, rep.Calls)
	}
	return rep, nil
}

// loadgenObjectives declares the harness's own SLOs over its registry
// series: 95% of issued calls under 250 ms harness-observed latency, and
// 99% of issued calls not failing (429 backpressure is by design not a
// failure). Both thresholds sit on exported bucket bounds / counters so
// the evaluation is exact.
func loadgenObjectives(reg *obs.Registry) []obs.Objective {
	return []obs.Objective{
		{
			Name:   "loadgen_latency",
			Target: 0.95,
			Histogram: reg.Histogram("dna_loadgen_latency_ms",
				"Harness-observed end-to-end request latency.", obs.DefMSBuckets()),
			ThresholdMS: 250,
		},
		{
			Name:   "loadgen_availability",
			Target: 0.99,
			Total:  reg.Counter("dna_loadgen_issued_total", "Calls issued by the load harness, all outcomes."),
			Bad:    reg.Counter("dna_loadgen_calls_total", "Calls issued by the load harness.", "outcome", "failed"),
		},
	}
}

// withDefaults resolves every zero option to its documented default.
func (o LoadOptions) withDefaults() LoadOptions {
	opts := o
	if opts.Units <= 0 {
		opts.Units = 64
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Concurrency > opts.Units {
		opts.Concurrency = opts.Units
	}
	if opts.MinBases <= 0 {
		opts.MinBases = 512
	}
	if opts.MaxBases <= opts.MinBases {
		opts.MaxBases = opts.MinBases + 7680
	}
	if opts.RangeEvery <= 0 {
		opts.RangeEvery = 4
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = 1024
	}
	if len(opts.Contexts) == 0 {
		opts.Contexts = []core.Context{
			{RAMMB: 768, CPUMHz: 1000, BandwidthMbps: 2},
			{RAMMB: 2048, CPUMHz: 2100, BandwidthMbps: 5},
			{RAMMB: 3584, CPUMHz: 2400, BandwidthMbps: 10},
			{RAMMB: 7168, CPUMHz: 3000, BandwidthMbps: 20},
		}
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 60 * time.Second}
	}
	return opts
}

// planUnits expands the seed into the full request plan. Everything that
// defines a request — sequence bytes, declared context, range probes — is
// fixed here, before any concurrency exists.
func planUnits(o LoadOptions) []loadUnit {
	opts := o.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	// Trace identities come from a dedicated seeded stream, not rng, so
	// adding tracing cannot perturb the generated sequences and contexts.
	ids := obs.NewSeededIDSource(uint64(opts.Seed) ^ 0x6c6f616467656e /* "loadgen" */)
	units := make([]loadUnit, opts.Units)
	for i := range units {
		n := opts.MinBases + rng.Intn(opts.MaxBases-opts.MinBases+1)
		p := synth.Profile{
			Length:     n,
			GC:         0.35 + 0.2*rng.Float64(),
			RepeatProb: 0.002,
			RepeatMin:  16,
			RepeatMax:  128,
		}
		symbols := p.Generate(opts.Seed + int64(i))
		u := loadUnit{
			body:        seq.Decode(symbols),
			symbols:     symbols,
			ctx:         opts.Contexts[i%len(opts.Contexts)],
			ranged:      i%opts.RangeEvery == 0,
			traceparent: obs.FormatTraceparent(ids.TraceID(), ids.SpanID()),
		}
		if u.ranged && n > 1 {
			u.off = rng.Intn(n - 1)
			u.n = 1 + rng.Intn(n-u.off-1+1)
			if u.off+u.n > n {
				u.n = n - u.off
			}
		}
		units[i] = u
	}
	return units
}

// unitResult is one unit's accounting.
type unitResult struct {
	calls, completed, rejected, failed, mismatches int
	inputBases                                     int64
	byEndpoint                                     map[string]int
	latMS                                          []float64
	errs                                           []string
}

// runUnit pushes one plan entry through the daemon: compress with the
// declared context, decompress-and-verify, and (for ranged units) a
// block-container range probe compared against the expected slice. A 429
// terminates the unit's remaining calls — the server asked us to back off
// — and is reported, never dropped.
func runUnit(ctx context.Context, client *http.Client, clock obs.Clock, reg *obs.Registry, base string, u loadUnit) unitResult {
	res := unitResult{byEndpoint: map[string]int{}}

	compressURL := fmt.Sprintf("%s/compress?ram_mb=%g&cpu_mhz=%g&bw_mbps=%g",
		base, u.ctx.RAMMB, u.ctx.CPUMHz, u.ctx.BandwidthMbps)
	if u.ranged {
		compressURL += fmt.Sprintf("&block_size=%d", blockSizeFor(u))
	}
	frame, status, err := res.call(ctx, client, clock, "compress", http.MethodPost, compressURL, u.traceparent, u.body)
	if err != nil || status != http.StatusOK {
		return res
	}
	res.inputBases += int64(len(u.body))

	restored, status, err := res.call(ctx, client, clock, "decompress", http.MethodPost, base+"/decompress", u.traceparent, frame)
	if err == nil && status == http.StatusOK && string(restored) != string(u.body) {
		res.mismatches++
		res.errs = append(res.errs, fmt.Sprintf("round trip mismatch: %d bases in, %d out", len(u.body), len(restored)))
	}
	if err != nil || status != http.StatusOK {
		return res
	}

	if u.ranged {
		url := fmt.Sprintf("%s/decompress?off=%d&len=%d", base, u.off, u.n)
		window, status, err := res.call(ctx, client, clock, "range", http.MethodPost, url, u.traceparent, frame)
		if err == nil && status == http.StatusOK {
			want := string(u.body[u.off : u.off+u.n])
			if string(window) != want {
				res.mismatches++
				res.errs = append(res.errs, fmt.Sprintf("range [%d,%d+%d) mismatch", u.off, u.off, u.n))
			}
		}
	}
	return res
}

// blockSizeFor keeps at least two blocks in ranged containers so the
// range probe actually exercises block selection.
func blockSizeFor(u loadUnit) int {
	bs := len(u.symbols) / 4
	if bs < 64 {
		bs = 64
	}
	return bs
}

// call issues one HTTP request, books its outcome and latency, and
// returns the body for successful calls. Every call is tagged as loadgen
// traffic, and carries the unit's trace context when one is set.
func (res *unitResult) call(ctx context.Context, client *http.Client, clock obs.Clock, endpoint, method, url, traceparent string, body []byte) ([]byte, int, error) {
	res.calls++
	res.byEndpoint[endpoint]++
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		res.failed++
		res.errs = append(res.errs, fmt.Sprintf("%s: %v", endpoint, err))
		return nil, 0, err
	}
	req.Header.Set("X-Dnacomp-Origin", "loadgen")
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	t0 := clock.Now()
	resp, err := client.Do(req)
	if err != nil {
		res.failed++
		res.errs = append(res.errs, fmt.Sprintf("%s: %v", endpoint, err))
		return nil, 0, err
	}
	out, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	res.latMS = append(res.latMS, float64(clock.Since(t0).Nanoseconds())/1e6)
	if rerr != nil {
		res.failed++
		res.errs = append(res.errs, fmt.Sprintf("%s: read body: %v", endpoint, rerr))
		return nil, resp.StatusCode, rerr
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		res.completed++
	case resp.StatusCode == http.StatusTooManyRequests:
		res.rejected++
	default:
		res.failed++
		res.errs = append(res.errs, fmt.Sprintf("%s: HTTP %d: %s", endpoint, resp.StatusCode, strings.TrimSpace(string(out))))
	}
	return out, resp.StatusCode, nil
}

// summarize sorts the latencies and reads the percentile points.
func summarize(lat []float64) LatencySummary {
	s := LatencySummary{Calls: len(lat)}
	if len(lat) == 0 {
		return s
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.MeanMS = sum / float64(len(sorted))
	s.P50MS = percentile(sorted, 0.50)
	s.P90MS = percentile(sorted, 0.90)
	s.P99MS = percentile(sorted, 0.99)
	s.MaxMS = sorted[len(sorted)-1]
	return s
}

// percentile reads the nearest-rank percentile from sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
