package serve

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// LoadModel reads a trained decision-tree model persisted by
// `ctxselect -save-model` and wraps it in the inference engine the daemon
// selects codecs with. Serving from a file keeps the daemon's choices
// byte-for-byte consistent with the offline CLI's answers for the same
// context.
func LoadModel(path string) (*core.InferenceEngine, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tree := &dtree.Tree{}
	if err := json.Unmarshal(data, tree); err != nil {
		return nil, fmt.Errorf("serve: model %s: %w", path, err)
	}
	return core.NewInferenceEngine(tree)
}

// SaveModel persists an engine's tree in the same JSON shape
// `ctxselect -save-model` writes, so models move freely between the CLI
// and the daemon.
func SaveModel(path string, eng *core.InferenceEngine) error {
	data, err := json.MarshalIndent(eng.Tree(), "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// TrainEngine builds a selection model from scratch: generate a synthetic
// corpus, run the measurement grid over the paper's 32 contexts and the
// given codecs, induce a tree with the requested method, and wrap it for
// inference. The codecs must be registered by the caller (blank imports).
func TrainEngine(spec synth.CorpusSpec, method string, codecs []string) (*core.InferenceEngine, error) {
	files := synth.ExperimentCorpus(spec)
	g, err := experiment.Run(files, cloud.Grid(), codecs, experiment.DefaultNoise())
	if err != nil {
		return nil, fmt.Errorf("serve: training grid: %w", err)
	}
	train, test := g.Split()
	tree, _, err := experiment.TrainEval(train, test, method, core.TimeOnlyWeights(), dtree.Config{})
	if err != nil {
		return nil, fmt.Errorf("serve: train: %w", err)
	}
	return core.NewInferenceEngine(tree)
}

// TrainDefaultEngine is the no-model-file fallback, mirroring ctxselect's
// compact training grid (32 files, 2 KB .. 256 KB, seed 2015, CART over
// the paper's four compared codecs) so daemon and CLI agree without
// shipping a file.
func TrainDefaultEngine() (*core.InferenceEngine, error) {
	return TrainEngine(
		synth.CorpusSpec{NumFiles: 32, MinSize: 2 << 10, MaxSize: 256 << 10, Seed: 2015},
		"cart",
		[]string{"ctw", "dnax", "gencompress", "gzip"},
	)
}
