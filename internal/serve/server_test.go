package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
)

// testEngine trains one small selection model for the whole test binary:
// the same TrainEngine path cmd/dnacompd falls back to, shrunk to a
// six-file corpus over the two cheapest codecs.
var (
	engineOnce sync.Once
	engine     *core.InferenceEngine
	engineErr  error
)

func testEngine(t *testing.T) *core.InferenceEngine {
	t.Helper()
	engineOnce.Do(func() {
		engine, engineErr = TrainEngine(
			synth.CorpusSpec{NumFiles: 6, MinSize: 2 << 10, MaxSize: 16 << 10, Seed: 7},
			"cart",
			[]string{"gzip", "twobit"},
		)
	})
	if engineErr != nil {
		t.Fatalf("training test engine: %v", engineErr)
	}
	return engine
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = testEngine(t)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close() // drains in-flight handlers first...
		s.Close()  // ...so closing the queue cannot race an enqueue
	})
	return s, ts
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func synthASCII(n int, seed int64) []byte {
	return synth.Profile{Length: n, GC: 0.42, RepeatProb: 0.004, RepeatMin: 16, RepeatMax: 64}.GenerateASCII(seed)
}

// TestCompressRoundTripE2E is the issue's end-to-end criterion: POST a
// synthetic sequence with a declared context, check the daemon's codec
// choice matches the offline engine's answer for the same context, and
// check the returned frame restores the input byte-for-byte.
func TestCompressRoundTripE2E(t *testing.T) {
	eng := testEngine(t)
	_, ts := newTestServer(t, Config{})

	input := synthASCII(6000, 42)
	declared := core.Context{RAMMB: 2048, CPUMHz: 2100, BandwidthMbps: 5}

	resp, frame := post(t, fmt.Sprintf("%s/compress?ram_mb=%g&cpu_mhz=%g&bw_mbps=%g",
		ts.URL, declared.RAMMB, declared.CPUMHz, declared.BandwidthMbps), input)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: HTTP %d: %s", resp.StatusCode, frame)
	}

	// Offline answer for the same features the daemon derives.
	offline := declared
	offline.FileSizeKB = float64(len(input)) / 1024
	if want, got := eng.SelectCodec(offline), resp.Header.Get("X-Dnacomp-Codec"); got != want {
		t.Errorf("daemon chose %q, offline engine chose %q", got, want)
	}
	if src := resp.Header.Get("X-Dnacomp-Source"); src != "tree" {
		t.Errorf("X-Dnacomp-Source = %q, want tree", src)
	}

	resp, restored := post(t, ts.URL+"/decompress", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: HTTP %d: %s", resp.StatusCode, restored)
	}
	if !bytes.Equal(restored, input) {
		t.Fatalf("round trip not byte-identical: %d bases in, %d out", len(input), len(restored))
	}
}

// TestRangeGetEqualsFullDecodeSlice: a range GET over a stored CXB1
// container must equal the same slice of the full decode.
func TestRangeGetEqualsFullDecodeSlice(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	input := synthASCII(5000, 99)
	resp, frame := post(t, ts.URL+"/compress?block_size=512&name=rt", input)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: HTTP %d: %s", resp.StatusCode, frame)
	}
	if resp.Header.Get("X-Dnacomp-Blocks") == "" {
		t.Error("block-mode response missing X-Dnacomp-Blocks")
	}

	resp, full := post(t, ts.URL+"/decompress", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full decompress: HTTP %d: %s", resp.StatusCode, full)
	}
	if !bytes.Equal(full, input) {
		t.Fatal("full decode differs from input")
	}

	for _, w := range []struct{ off, n int }{{0, 100}, {511, 2}, {1234, 999}, {4990, 10}} {
		resp, window := get(t, fmt.Sprintf("%s/decompress?name=rt&off=%d&len=%d", ts.URL, w.off, w.n))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("range GET [%d,+%d): HTTP %d: %s", w.off, w.n, resp.StatusCode, window)
		}
		if want := full[w.off : w.off+w.n]; !bytes.Equal(window, want) {
			t.Errorf("range GET [%d,+%d) differs from the same slice of the full decode", w.off, w.n)
		}
	}

	// Open-ended range: off only reads to the end.
	resp, tail := get(t, ts.URL+"/decompress?name=rt&off=4000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open-ended range: HTTP %d: %s", resp.StatusCode, tail)
	}
	if !bytes.Equal(tail, full[4000:]) {
		t.Error("open-ended range differs from full[4000:]")
	}
}

// TestForcedCodec: ?codec= bypasses the tree and is reported as such.
func TestForcedCodec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	input := synthASCII(1200, 3)

	resp, frame := post(t, ts.URL+"/compress?codec=twobit", input)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, frame)
	}
	if c := resp.Header.Get("X-Dnacomp-Codec"); c != "twobit" {
		t.Errorf("codec = %q, want twobit", c)
	}
	if src := resp.Header.Get("X-Dnacomp-Source"); src != "request" {
		t.Errorf("source = %q, want request", src)
	}
	resp, restored := post(t, ts.URL+"/decompress", frame)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(restored, input) {
		t.Fatalf("forced-codec round trip failed: HTTP %d", resp.StatusCode)
	}
}

// TestDeterministicResponses: identical requests produce byte-identical
// containers — the purity contract of the handlers.
func TestDeterministicResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	input := synthASCII(3000, 8)
	_, first := post(t, ts.URL+"/compress?codec=gzip", input)
	_, second := post(t, ts.URL+"/compress?codec=gzip", input)
	if !bytes.Equal(first, second) {
		t.Fatal("same request produced different container bytes")
	}
}

// TestFASTAInput: the daemon cleanses FASTA bodies like the CLI does.
func TestFASTAInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	fasta := []byte(">chr1 test\nACGTAC\nGTACGT\n>chr2\nTTTTAAAA\n")
	resp, frame := post(t, ts.URL+"/compress?codec=twobit", fasta)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, frame)
	}
	resp, restored := post(t, ts.URL+"/decompress", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, restored)
	}
	if got, want := string(restored), "ACGTACGTACGTTTTTAAAA"; got != want {
		t.Fatalf("FASTA round trip = %q, want %q", got, want)
	}
}

// TestClientErrorPaths covers the 4xx surface.
func TestClientErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1 << 20})
	input := synthASCII(800, 5)
	_, frame := post(t, ts.URL+"/compress?codec=twobit&block_size=128&name=err", input)

	cases := []struct {
		name   string
		method string
		url    string
		body   []byte
		want   int
	}{
		{"unknown codec", "POST", "/compress?codec=nope", input, http.StatusBadRequest},
		{"bad block_size", "POST", "/compress?block_size=-4", input, http.StatusBadRequest},
		{"bad ram_mb", "POST", "/compress?ram_mb=lots", input, http.StatusBadRequest},
		{"empty input", "POST", "/compress", []byte(">header only\n"), http.StatusBadRequest},
		{"compress wrong method", "GET", "/compress", nil, http.StatusMethodNotAllowed},
		{"garbage container", "POST", "/decompress", []byte("not a frame"), http.StatusUnprocessableEntity},
		{"bad off", "POST", "/decompress?off=-1", frame, http.StatusBadRequest},
		{"range past end", "POST", "/decompress?off=0&len=999999", frame, http.StatusRequestedRangeNotSatisfiable},
		{"offset past end", "POST", "/decompress?off=999999", frame, http.StatusRequestedRangeNotSatisfiable},
		{"get without name", "GET", "/decompress", nil, http.StatusBadRequest},
		{"get unknown name", "GET", "/decompress?name=missing", nil, http.StatusNotFound},
		{"decompress wrong method", "DELETE", "/decompress", nil, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.url, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: HTTP %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, strings.TrimSpace(string(body)))
		}
	}
}

// TestBodyTooLarge: the body cap answers 413 and books a rejection.
func TestBodyTooLarge(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024, Registry: reg})
	resp, _ := post(t, ts.URL+"/compress", bytes.Repeat([]byte("ACGT"), 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("HTTP %d, want 413", resp.StatusCode)
	}
	if n := reg.Counter("dna_serve_rejected_total", "", "reason", "body_too_large").Value(); n == 0 {
		t.Error("rejection not counted")
	}
}

// gateCodec registers a codec whose name exists purely so white-box tests
// can key the per-codec semaphore; its encode/decode are never invoked.
type gateCodec struct{}

func (gateCodec) Name() string { return "gatetest" }
func (gateCodec) Compress(src []byte) ([]byte, compress.Stats, error) {
	return append([]byte(nil), src...), compress.Stats{}, nil
}
func (gateCodec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	return append([]byte(nil), data...), compress.Stats{}, nil
}

var gateOnce sync.Once

func registerGateCodec() {
	gateOnce.Do(func() {
		compress.Register("gatetest", func() compress.Codec { return gateCodec{} })
	})
}

func okResponse() *response { return &response{status: http.StatusOK} }

// submitPlain adapts the admission-plane tests to submit's request-scoped
// signature: an untraced synthetic request around a plain work function.
func (s *Server) submitPlain(endpoint, codec string, fn func() *response) *response {
	rx := &reqObs{endpoint: endpoint, origin: "organic", ctx: context.Background()}
	return s.submit(rx, codec, func(context.Context) *response { return fn() })
}

// TestQueueFullAnswers429: with one worker pinned and the one-slot queue
// occupied, the next submission must be refused with 429 + Retry-After —
// backpressure, not a silent drop.
func TestQueueFullAnswers429(t *testing.T) {
	registerGateCodec()
	reg := obs.NewRegistry()
	// PerCodecBacklog is widened past the queue so this test keeps hitting
	// the queue_full path, not the codec-saturation bound.
	s, err := NewServer(Config{Engine: testEngine(t), Workers: 1, QueueDepth: 1, PerCodecBacklog: 16, Registry: reg, RetryAfterSeconds: 3})
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	started := make(chan struct{})
	release := func() *response { return okResponse() }

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // occupies the single worker
		defer wg.Done()
		s.submitPlain("compress", "gatetest", func() *response {
			close(started)
			<-gate
			return okResponse()
		})
	}()
	<-started
	go func() { // occupies the single queue slot
		defer wg.Done()
		s.submitPlain("compress", "gatetest", release)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second job never entered the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp := s.submitPlain("compress", "gatetest", release)
	if resp.status != http.StatusTooManyRequests {
		t.Fatalf("third submission got %d, want 429", resp.status)
	}
	if ra := resp.header["Retry-After"]; ra != "3" {
		t.Errorf("Retry-After = %q, want 3", ra)
	}
	if n := reg.Counter("dna_serve_rejected_total", "", "reason", "queue_full").Value(); n != 1 {
		t.Errorf("queue_full rejections = %d, want 1", n)
	}

	close(gate)
	wg.Wait()
	s.Close()
}

// TestPerCodecLimit: with PerCodec=1, a second job for the same codec
// waits on the semaphore while a different codec still gets a worker.
func TestPerCodecLimit(t *testing.T) {
	registerGateCodec()
	s, err := NewServer(Config{Engine: testEngine(t), Workers: 3, PerCodec: 1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	first := make(chan struct{})
	second := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.submitPlain("compress", "gatetest", func() *response {
			close(first)
			<-gate
			return okResponse()
		})
	}()
	<-first
	go func() {
		defer wg.Done()
		s.submitPlain("compress", "gatetest", func() *response {
			close(second)
			<-gate
			return okResponse()
		})
	}()

	// A different codec must not be starved by gatetest's semaphore.
	done := make(chan *response, 1)
	go func() { done <- s.submitPlain("compress", "twobit", okResponse) }()
	select {
	case r := <-done:
		if r.status != http.StatusOK {
			t.Fatalf("other-codec job got %d", r.status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("other-codec job starved behind the gatetest semaphore")
	}

	// The same codec must still be held back.
	select {
	case <-second:
		t.Fatal("second gatetest job ran while the first held the PerCodec=1 semaphore")
	default:
	}

	close(gate)
	<-second // now it may proceed
	wg.Wait()
	s.Close()
}

// TestDrainRefusesNewWork: BeginDrain turns /healthz 503 and refuses new
// submissions while letting the registered refusal metric show up.
func TestDrainRefusesNewWork(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Registry: reg})

	resp, _ := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: HTTP %d", resp.StatusCode)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: HTTP %d, want 503", resp.StatusCode)
	}
	resp, body := post(t, ts.URL+"/compress", synthASCII(500, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("compress during drain: HTTP %d (%s), want 503", resp.StatusCode, body)
	}
	if n := reg.Counter("dna_serve_rejected_total", "", "reason", "draining").Value(); n == 0 {
		t.Error("draining rejection not counted")
	}
}

// TestMetricsExposed: the daemon's own /metrics route serves the request
// counters and latency histograms the issue requires.
func TestMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/compress?codec=twobit", synthASCII(600, 2))

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	for _, want := range []string{
		"dna_serve_requests_total",
		"dna_serve_latency_ms",
		"dna_serve_codec_selected_total",
		"dna_serve_queue_depth",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestStoreBounded: the named-container store refuses new names past the
// cap (507) but allows idempotent overwrites.
func TestStoreBounded(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxStored: 2})
	input := synthASCII(400, 6)

	for _, name := range []string{"a", "b"} {
		resp, body := post(t, ts.URL+"/compress?codec=twobit&name="+name, input)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("store %s: HTTP %d (%s)", name, resp.StatusCode, body)
		}
	}
	resp, _ := post(t, ts.URL+"/compress?codec=twobit&name=c", input)
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("third name: HTTP %d, want 507", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/compress?codec=twobit&name=a", input) // overwrite
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overwrite: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestModelRoundTrip: LoadModel reads back what ctxselect-style JSON
// persistence wrote, and the engines agree on every grid corner.
func TestModelRoundTrip(t *testing.T) {
	eng := testEngine(t)
	path := t.TempDir() + "/model.json"
	if err := SaveModel(path, eng); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []core.Context{
		{FileSizeKB: 2, RAMMB: 768, CPUMHz: 1000, BandwidthMbps: 2},
		{FileSizeKB: 64, RAMMB: 3584, CPUMHz: 2400, BandwidthMbps: 10},
		{FileSizeKB: 512, RAMMB: 7168, CPUMHz: 3000, BandwidthMbps: 20},
	} {
		if got, want := loaded.SelectCodec(ctx), eng.SelectCodec(ctx); got != want {
			t.Errorf("loaded model picks %q, original %q for %+v", got, want, ctx)
		}
	}
}
