// Package serve is the compression-as-a-service layer: a long-running
// HTTP daemon that applies the paper's context-aware codec selection per
// request. POST /compress takes a sequence plus the caller's declared
// exchange context (file size, RAM, CPU, bandwidth) and answers with a
// sealed armored frame — single CXA1 frame or seekable CXB1 multi-block
// container — compressed with the codec the trained CART/CHAID decision
// tree picks for that context. POST /decompress (and GET range reads over
// containers stored by name) restores any armored stream through the
// hardened compress.SafeDecompressAny path.
//
// Concurrency model: requests are admitted into a bounded queue and
// executed by a fixed worker pool; a full queue answers 429 with
// Retry-After (backpressure, never silent drops), per-codec semaphores
// bound how many workers a single expensive codec can occupy, and a
// per-codec backlog bound answers 429 before a saturated codec's queue
// wait grows without bound. Every backpressure response — 429, draining
// 503, 507 store overflow, fleet-unavailable 503 — carries Retry-After.
//
// Named containers can live in an in-process map (the default) or, when
// Config.FleetStore is set, on a replicated cloud.Fleet — the daemon then
// survives shard loss mid-request, answering 503 + Retry-After only when
// the fleet truly lost its quorum.
// Handlers are pure functions of (request, model, registry): response
// bytes never depend on wall time, worker interleaving or queue state, so
// the repo's byte-determinism contract extends to the daemon. The wall
// clock enters only through an injected obs.Clock, and only into
// latency histograms.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/seq"
)

// Default sizing for the admission-control plane. All are overridable via
// Config; the defaults favor bounded memory over peak throughput.
const (
	// DefaultMaxBodyBytes caps an accepted request body (64 MiB).
	DefaultMaxBodyBytes = 64 << 20
	// DefaultRetryAfterSeconds is the backpressure hint on 429 responses.
	DefaultRetryAfterSeconds = 1
	// DefaultMaxStored caps how many named containers the store retains.
	DefaultMaxStored = 256
)

// Config wires a Server. The zero value of every field has a usable
// default except Engine, which is required.
type Config struct {
	// Engine selects a codec per declared context — the trained decision
	// tree from cmd/ctxselect wrapped in core.NewInferenceEngine.
	Engine *core.InferenceEngine
	// Registry receives all daemon metrics; nil means obs.Default().
	Registry *obs.Registry
	// Clock feeds the latency histograms; nil means obs.System(). Response
	// bytes never depend on it.
	Clock obs.Clock
	// Workers bounds concurrently-executing requests; <= 0 means
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker; <= 0 means
	// 4 x Workers. A full queue answers 429 + Retry-After.
	QueueDepth int
	// PerCodec bounds how many workers may run the same codec at once;
	// <= 0 means Workers (no extra restriction).
	PerCodec int
	// PerCodecBacklog bounds admitted-but-unfinished requests per codec
	// (queued + waiting on the codec semaphore + executing); beyond it a
	// request answers 429 + Retry-After instead of camping on the queue
	// behind a saturated codec. <= 0 means QueueDepth + Workers.
	PerCodecBacklog int
	// MaxBodyBytes caps the request body; <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Limits bounds untrusted decompression; the zero value applies the
	// compress package defaults.
	Limits compress.Limits
	// MaxStored caps the named-container store; <= 0 means
	// DefaultMaxStored.
	MaxStored int
	// DefaultContext fills context features the request leaves undeclared.
	// The zero value uses the paper-style lab client ctxselect defaults
	// (3584 MB RAM, 2400 MHz, 10 Mbps).
	DefaultContext core.Context
	// RetryAfterSeconds is the Retry-After hint on every backpressure
	// response (429/503/507); <= 0 means DefaultRetryAfterSeconds.
	RetryAfterSeconds int
	// FleetStore, when set, backs the named-container store with a
	// replicated cloud store (typically a *cloud.Fleet) instead of the
	// in-process map: stored containers survive shard loss, partial
	// outages degrade to 503 + Retry-After only when the write/read quorum
	// is truly lost, and an unknown name is a plain 404.
	FleetStore cloud.Store
	// FleetContainer names the fleet container holding stored containers;
	// "" means "serve". Only read when FleetStore is set.
	FleetContainer string
	// IDs generates W3C trace/span IDs for request-scoped tracing; nil
	// means a deterministic seeded source (seed 2015), so two servers with
	// default wiring and identical request orders export identical traces.
	IDs obs.IDSource
	// RecorderSize bounds the flight-recorder ring mounted at
	// /debug/requests; 0 means 256 records, < 0 disables the recorder.
	RecorderSize int
	// SLO declares the service-level objectives /debug/slo evaluates; nil
	// means DefaultObjectives (compress latency + availability) against
	// the server's registry.
	SLO []obs.Objective
	// SLOConfig tunes the SLO engine's burn-rate windows; the zero value
	// uses the obs defaults (5m fast / 1h slow, alert at 14.4).
	SLOConfig obs.SLOConfig
	// TraceSink, when set, receives one JSON line per traced request (the
	// span tree) — the -trace file sink in dnacompd. Setting it makes
	// every request traced.
	TraceSink io.Writer
}

// DefaultObjectives is the serve plane's stock SLO set against reg: 99% of
// compress requests under 250 ms (modeled on the injected clock) and
// 99.9% of all requests free of server-side errors.
func DefaultObjectives(reg *obs.Registry) []obs.Objective {
	return []obs.Objective{
		{
			Name:   "compress_latency",
			Target: 0.99,
			Histogram: reg.Histogram("dna_serve_latency_ms", "End-to-end request latency in milliseconds.",
				obs.DefMSBuckets(), "endpoint", "compress"),
			ThresholdMS: 250,
		},
		{
			Name:   "availability",
			Target: 0.999,
			Total:  reg.Counter("dna_serve_completed_total", "Requests completed, all endpoints and outcomes."),
			Bad:    reg.Counter("dna_serve_errors_total", "Requests that failed server-side (5xx excluding backpressure)."),
		},
	}
}

// job is one admitted unit of work: the worker runs it and sends exactly
// one response on done.
type job struct {
	codec string // per-codec semaphore key ("" = none resolved yet)
	run   func() *response
	done  chan *response
}

// response is the deterministic outcome of a handler's work function.
type response struct {
	status      int
	contentType string
	header      map[string]string
	body        []byte
}

// serveMetrics is the daemon's observability surface.
type serveMetrics struct {
	reg        *obs.Registry
	queueDepth *obs.Gauge
	inflight   *obs.Gauge
	completed  *obs.Counter
	errors     *obs.Counter
}

func newServeMetrics(reg *obs.Registry) serveMetrics {
	return serveMetrics{
		reg:        reg,
		queueDepth: reg.Gauge("dna_serve_queue_depth", "Requests waiting for a worker."),
		inflight:   reg.Gauge("dna_serve_inflight", "Requests currently executing on a worker."),
		completed:  reg.Counter("dna_serve_completed_total", "Requests completed, all endpoints and outcomes."),
		errors:     reg.Counter("dna_serve_errors_total", "Requests that failed server-side (5xx excluding backpressure)."),
	}
}

func (m serveMetrics) request(endpoint string, status int) {
	m.reg.Counter("dna_serve_requests_total", "Requests served, by endpoint and status code.",
		"endpoint", endpoint, "code", strconv.Itoa(status)).Inc()
}

func (m serveMetrics) rejected(reason string) {
	m.reg.Counter("dna_serve_rejected_total", "Requests rejected before reaching a worker, by reason.",
		"reason", reason).Inc()
}

func (m serveMetrics) latency(endpoint string, ms float64) {
	m.reg.Histogram("dna_serve_latency_ms", "End-to-end request latency in milliseconds.",
		obs.DefMSBuckets(), "endpoint", endpoint).Observe(ms)
}

func (m serveMetrics) selected(codec, source string) {
	m.reg.Counter("dna_serve_codec_selected_total", "Codec choices, by codec and selection source (tree or request).",
		"codec", codec, "source", source).Inc()
}

// Server is the daemon core. Construct with NewServer, mount Handler on a
// listener (obs.DebugServer in cmd/dnacompd, httptest in tests), and on
// the way down call BeginDrain, drain the HTTP layer, then Close.
type Server struct {
	cfg      Config
	engine   *core.InferenceEngine
	reg      *obs.Registry
	clock    obs.Clock
	met      serveMetrics
	queue    chan job
	wg       sync.WaitGroup
	draining atomic.Bool
	codecSem map[string]chan struct{}
	// codecPending counts admitted-but-unfinished requests per codec for
	// the PerCodecBacklog admission bound.
	codecPending map[string]*atomic.Int64

	// Request-scoped observability plane: deterministic trace IDs, the
	// flight-recorder ring behind /debug/requests, the SLO engine behind
	// /debug/slo, and the optional JSONL trace sink.
	ids      obs.IDSource
	recorder *obs.FlightRecorder
	slo      *obs.SLOEngine
	sinkMu   sync.Mutex // serializes TraceSink writes

	// store holds named containers. In fleet mode the bytes live on the
	// fleet and the map entry (nil value) only reserves the name under the
	// MaxStored cap.
	storeMu sync.RWMutex
	store   map[string][]byte
}

// NewServer validates cfg, starts the worker pool and returns the ready
// Server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: Config.Engine is required (train or load a model first)")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.PerCodec <= 0 || cfg.PerCodec > cfg.Workers {
		cfg.PerCodec = cfg.Workers
	}
	if cfg.PerCodecBacklog <= 0 {
		cfg.PerCodecBacklog = cfg.QueueDepth + cfg.Workers
	}
	if cfg.FleetContainer == "" {
		cfg.FleetContainer = "serve"
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxStored <= 0 {
		cfg.MaxStored = DefaultMaxStored
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = DefaultRetryAfterSeconds
	}
	if cfg.DefaultContext == (core.Context{}) {
		cfg.DefaultContext = core.Context{RAMMB: 3584, CPUMHz: 2400, BandwidthMbps: 10}
	}
	reg := obs.OrDefault(cfg.Registry)
	s := &Server{
		cfg:          cfg,
		engine:       cfg.Engine,
		reg:          reg,
		clock:        cfg.Clock,
		met:          newServeMetrics(reg),
		queue:        make(chan job, cfg.QueueDepth),
		codecSem:     make(map[string]chan struct{}, len(compress.Names())),
		codecPending: make(map[string]*atomic.Int64, len(compress.Names())),
		store:        make(map[string][]byte),
	}
	if s.clock == nil {
		s.clock = obs.System()
	}
	s.ids = cfg.IDs
	if s.ids == nil {
		s.ids = obs.NewSeededIDSource(2015)
	}
	if cfg.RecorderSize >= 0 {
		s.recorder = obs.NewFlightRecorder(cfg.RecorderSize)
	}
	objectives := cfg.SLO
	if objectives == nil {
		objectives = DefaultObjectives(reg)
	}
	s.slo = obs.NewSLOEngine(s.clock, reg, cfg.SLOConfig, objectives...)
	// The per-codec semaphore and backlog maps are fixed at construction
	// (the codec registry is sealed after init), so workers index them
	// without a lock.
	for _, name := range compress.Names() {
		s.codecSem[name] = make(chan struct{}, cfg.PerCodec)
		s.codecPending[name] = &atomic.Int64{}
	}
	if cfg.FleetStore != nil {
		if err := cfg.FleetStore.CreateContainer(cfg.FleetContainer); err != nil && !errors.Is(err, cloud.ErrContainerExists) {
			return nil, fmt.Errorf("serve: fleet container %q: %w", cfg.FleetContainer, err)
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		//lint:ignore goroutinebound workers drain the job queue until Close closes it and are joined by Close's wg.Wait; their lifetime is the server's by design
		go s.worker()
	}
	return s, nil
}

// worker executes queued jobs until the queue closes. The per-codec
// semaphore is taken inside the worker, so an expensive codec saturating
// its limit backs work up into the queue (and ultimately into 429s)
// instead of occupying every worker.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.met.queueDepth.Add(-1)
		s.met.inflight.Add(1)
		if sem := s.codecSem[j.codec]; sem != nil {
			sem <- struct{}{}
			j.done <- j.run()
			<-sem
		} else {
			j.done <- j.run()
		}
		s.met.inflight.Add(-1)
	}
}

// BeginDrain flips the server into draining mode: /healthz turns 503 and
// new work is refused, while already-admitted requests keep executing.
// Call it on SIGTERM before shutting the HTTP layer down, so load
// balancers stop routing here while in-flight work completes.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the worker pool after the queue empties. Only call it once
// no handler can still enqueue — i.e. after BeginDrain plus an HTTP-layer
// drain (http.Server.Shutdown) — or a racing handler panics on the closed
// queue.
func (s *Server) Close() {
	close(s.queue)
	s.wg.Wait()
}

// Handler returns the daemon's full HTTP surface: the service endpoints
// plus the observability routes (/metrics, /debug/vars, /debug/pprof)
// for the server's registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compress", s.handleCompress)
	mux.HandleFunc("/decompress", s.handleDecompress)
	mux.HandleFunc("/healthz", s.handleHealthz)
	debug := obs.DebugHandler(s.reg)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	// Longer patterns win over /debug/ (net/http precedence), so these
	// shadow the generic debug handler for their exact paths.
	mux.Handle("/debug/requests", s.recorder.Handler())
	mux.Handle("/debug/slo", s.slo.Handler())
	return mux
}

// Recorder exposes the flight recorder (nil when disabled) for harnesses
// that assert on request attribution without scraping /debug/requests.
func (s *Server) Recorder() *obs.FlightRecorder { return s.recorder }

// --- admission ---------------------------------------------------------

// backpressure builds a transient-refusal response. Every status it is
// used for (429 queue/codec saturation, 503 draining or fleet outage, 507
// store overflow) is retryable, so every one carries the Retry-After hint.
func (s *Server) backpressure(status int, msg string) *response {
	r := errorResponse(status, msg)
	r.header = map[string]string{"Retry-After": strconv.Itoa(s.cfg.RetryAfterSeconds)}
	return r
}

// reqObs is one request's observability state: the per-request tracer
// (nil when the request is untraced), the context carrying its root span,
// and the flight-recorder fields the handler fills in as attribution
// becomes known. It never influences response bytes — an untraced request
// and a traced one produce identical non-envelope output.
type reqObs struct {
	endpoint    string
	origin      string // "organic", or "loadgen" via X-Dnacomp-Origin
	exportTrace bool   // ?trace=1: wrap the response in a JSON trace envelope
	tracer      *obs.Tracer
	ctx         context.Context
	root        *obs.Span
	rec         obs.RequestRecord
}

// beginRequest decides whether the request is traced (inbound traceparent,
// ?trace=1, or a configured TraceSink) and, if so, opens the per-request
// tracer and the "serve.<endpoint>" root span — joining the caller's trace
// when a valid traceparent came in.
func (s *Server) beginRequest(r *http.Request, endpoint string) *reqObs {
	rx := &reqObs{endpoint: endpoint, origin: "organic", ctx: r.Context()}
	if r.Header.Get("X-Dnacomp-Origin") == "loadgen" {
		rx.origin = "loadgen"
	}
	rx.exportTrace = r.URL.Query().Get("trace") == "1"
	remote, hasRemote := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if hasRemote || rx.exportTrace || s.cfg.TraceSink != nil {
		rx.tracer = obs.NewTracerWithIDs(s.clock, s.ids)
		ctx := obs.WithTracer(rx.ctx, rx.tracer)
		if hasRemote {
			ctx = obs.WithRemoteParent(ctx, remote)
		}
		ctx, rx.root = obs.Start(ctx, "serve."+endpoint)
		rx.root.SetAttr("endpoint", endpoint)
		rx.root.SetAttr("origin", rx.origin)
		rx.ctx = ctx
	}
	return rx
}

// submit runs fn through the admission plane: draining refusal, per-codec
// backlog bound, bounded queue with 429 backpressure, worker execution.
// It returns the response to write. Queue wait (admission to execution,
// including the per-codec semaphore) and work time are measured on the
// injected clock into rx for the flight recorder, and a "serve.queue"
// child span covers the wait when the request is traced.
func (s *Server) submit(rx *reqObs, codec string, fn func(ctx context.Context) *response) *response {
	if s.draining.Load() {
		s.met.rejected("draining")
		return s.backpressure(http.StatusServiceUnavailable, "server is draining")
	}
	// A saturated codec is refused before the queue: its semaphore would
	// park a worker on every queued request, so admitting more of the same
	// codec only grows the backlog other codecs then wait behind.
	if pending := s.codecPending[codec]; pending != nil {
		if pending.Add(1) > int64(s.cfg.PerCodecBacklog) {
			pending.Add(-1)
			s.met.rejected("codec_saturated")
			return s.backpressure(http.StatusTooManyRequests,
				fmt.Sprintf("codec %s is saturated (%d requests pending)", codec, s.cfg.PerCodecBacklog))
		}
		defer pending.Add(-1)
	}
	enqueued := s.clock.Now()
	_, qspan := obs.Start(rx.ctx, "serve.queue")
	run := func() *response {
		qspan.End()
		rx.rec.QueueWaitMS = float64(s.clock.Since(enqueued).Nanoseconds()) / 1e6
		w0 := s.clock.Now()
		resp := fn(rx.ctx)
		rx.rec.WorkMS = float64(s.clock.Since(w0).Nanoseconds()) / 1e6
		return resp
	}
	j := job{codec: codec, run: run, done: make(chan *response, 1)}
	select {
	case s.queue <- j:
		s.met.queueDepth.Add(1)
	default:
		qspan.End()
		s.met.rejected("queue_full")
		return s.backpressure(http.StatusTooManyRequests, "request queue is full")
	}
	return <-j.done
}

// outcomeOf folds a status code into the recorder's outcome taxonomy:
// "ok", "rejected" (retryable backpressure), "client_error", or "error"
// (server-side failure — the only outcome that counts against the
// availability SLO and fires the recorder's dump-on-error hook).
func outcomeOf(status int) string {
	switch {
	case status < 400:
		return "ok"
	case status == http.StatusTooManyRequests,
		status == http.StatusServiceUnavailable,
		status == http.StatusInsufficientStorage:
		return "rejected"
	case status < 500:
		return "client_error"
	default:
		return "error"
	}
}

// traceEnvelope is the ?trace=1 response shape: the original status,
// headers and (base64) body, plus the request's span tree.
type traceEnvelope struct {
	Status  int               `json:"status"`
	Headers map[string]string `json:"headers,omitempty"`
	TraceID string            `json:"trace_id,omitempty"`
	Trace   []*obs.SpanTree   `json:"trace"`
	Body    []byte            `json:"body_b64,omitempty"`
}

// finish completes the request: ends the root span, renders resp (or the
// ?trace=1 JSON envelope), books the endpoint metrics and SLO counters,
// writes the flight-recorder record, and emits the trace to the sink.
// t0 anchors the latency histogram on the injected clock.
func (s *Server) finish(w http.ResponseWriter, rx *reqObs, t0 time.Time, resp *response) {
	totalMS := float64(s.clock.Since(t0).Nanoseconds()) / 1e6
	outcome := outcomeOf(resp.status)
	if rx.root != nil {
		rx.root.SetAttr("status", resp.status)
		rx.root.SetAttr("outcome", outcome)
		rx.root.End()
	}

	body := resp.body
	contentType := resp.contentType
	if rx.exportTrace && rx.tracer != nil {
		env := traceEnvelope{
			Status:  resp.status,
			Headers: resp.header,
			TraceID: rx.root.TraceID(),
			Trace:   rx.tracer.Tree(),
			Body:    resp.body,
		}
		if enc, err := json.MarshalIndent(env, "", "  "); err == nil {
			body = append(enc, '\n')
			contentType = "application/json; charset=utf-8"
		}
	}
	for k, v := range resp.header {
		w.Header().Set(k, v)
	}
	if rx.root != nil {
		w.Header().Set("X-Dnacomp-Trace-Id", rx.root.TraceID())
	}
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	w.WriteHeader(resp.status)
	if len(body) > 0 {
		w.Write(body)
	}

	s.met.request(rx.endpoint, resp.status)
	s.met.latency(rx.endpoint, totalMS)
	s.met.completed.Inc()
	if outcome == "error" {
		s.met.errors.Inc()
	}

	if s.recorder != nil {
		rec := rx.rec
		rec.TraceID = rx.root.TraceID()
		rec.Endpoint = rx.endpoint
		rec.Origin = rx.origin
		rec.Status = resp.status
		rec.Outcome = outcome
		rec.TotalMS = totalMS
		rec.OutBytes = len(resp.body)
		if outcome == "error" || outcome == "client_error" {
			rec.Error = strings.TrimSpace(string(resp.body))
		}
		s.attributeFleet(&rec)
		s.recorder.Record(rec)
	}
	s.slo.Evaluate()
	s.writeTraceSink(rx)
}

// fleetIntrospect is the optional attribution surface of a fleet-backed
// store (satisfied by *cloud.Fleet): which replicas hold a blob and where
// every breaker stands right now.
type fleetIntrospect interface {
	Replicas(container, blob string) []string
	BreakerStates() map[string]cloud.BreakerState
}

// attributeFleet stamps the record with the blob's replica set and the
// fleet's breaker states at completion, when a fleet-backed store was
// touched under a name.
func (s *Server) attributeFleet(rec *obs.RequestRecord) {
	if rec.StoreName == "" || s.cfg.FleetStore == nil {
		return
	}
	fi, ok := s.cfg.FleetStore.(fleetIntrospect)
	if !ok {
		return
	}
	rec.Shards = fi.Replicas(s.cfg.FleetContainer, rec.StoreName)
	states := fi.BreakerStates()
	rec.Breakers = make(map[string]string, len(states))
	for name, st := range states {
		rec.Breakers[name] = st.String()
	}
}

// writeTraceSink appends the finished trace as one JSON line to the
// configured sink.
func (s *Server) writeTraceSink(rx *reqObs) {
	if s.cfg.TraceSink == nil || rx.tracer == nil {
		return
	}
	line := struct {
		TraceID  string          `json:"trace_id"`
		Endpoint string          `json:"endpoint"`
		Origin   string          `json:"origin"`
		Trace    []*obs.SpanTree `json:"trace"`
	}{TraceID: rx.root.TraceID(), Endpoint: rx.endpoint, Origin: rx.origin, Trace: rx.tracer.Tree()}
	enc, err := json.Marshal(line)
	if err != nil {
		return
	}
	s.sinkMu.Lock()
	defer s.sinkMu.Unlock()
	s.cfg.TraceSink.Write(append(enc, '\n'))
}

func errorResponse(status int, msg string) *response {
	return &response{status: status, contentType: "text/plain; charset=utf-8", body: []byte(msg + "\n")}
}

// readBody reads the request body under the configured cap. A too-large
// body is a client error the admission metrics count separately.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *response) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.met.rejected("body_too_large")
		return nil, errorResponse(http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
	}
	return body, nil
}

// --- handlers ----------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// compressParams is the declared exchange context plus the compression
// knobs of one /compress request.
type compressParams struct {
	codec     string // forced codec ("" = ask the tree)
	blockSize int    // > 0 = CXB1 multi-block container
	name      string // store the container under this name for GET reads
	fileKB    float64
	hasFileKB bool
	ctx       core.Context
}

// parseCompressParams validates the query against the codec registry and
// numeric domains.
func (s *Server) parseCompressParams(r *http.Request) (compressParams, error) {
	q := r.URL.Query()
	p := compressParams{ctx: s.cfg.DefaultContext, name: q.Get("name")}
	p.codec = q.Get("codec")
	if p.codec != "" {
		if _, err := compress.New(p.codec); err != nil {
			return p, err
		}
	}
	if v := q.Get("block_size"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return p, fmt.Errorf("block_size %q: want a positive integer", v)
		}
		p.blockSize = n
	}
	var err error
	if p.fileKB, p.hasFileKB, err = queryFloat(q.Get("file_kb"), "file_kb"); err != nil {
		return p, err
	}
	if v, ok, err := queryFloat(q.Get("ram_mb"), "ram_mb"); err != nil {
		return p, err
	} else if ok {
		p.ctx.RAMMB = v
	}
	if v, ok, err := queryFloat(q.Get("cpu_mhz"), "cpu_mhz"); err != nil {
		return p, err
	} else if ok {
		p.ctx.CPUMHz = v
	}
	if v, ok, err := queryFloat(q.Get("bw_mbps"), "bw_mbps"); err != nil {
		return p, err
	} else if ok {
		p.ctx.BandwidthMbps = v
	}
	return p, nil
}

func queryFloat(v, name string) (float64, bool, error) {
	if v == "" {
		return 0, false, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 {
		return 0, false, fmt.Errorf("%s %q: want a non-negative number", name, v)
	}
	return f, true, nil
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	t0 := s.clock.Now()
	rx := s.beginRequest(r, "compress")
	if r.Method != http.MethodPost {
		s.finish(w, rx, t0, errorResponse(http.StatusMethodNotAllowed, "POST a sequence to /compress"))
		return
	}
	p, err := s.parseCompressParams(r)
	if err != nil {
		s.finish(w, rx, t0, errorResponse(http.StatusBadRequest, err.Error()))
		return
	}
	body, errResp := s.readBody(w, r)
	if errResp != nil {
		s.finish(w, rx, t0, errResp)
		return
	}
	rx.rec.InBytes = len(body)
	// Codec resolution happens before admission so the per-codec semaphore
	// key is known; it is a pure function of (params, body, model).
	symbols, _ := Cleanse(body)
	if len(symbols) == 0 {
		s.finish(w, rx, t0, errorResponse(http.StatusBadRequest, "input contains no ACGT bases"))
		return
	}
	codec, source := p.codec, "request"
	if codec == "" {
		ctx := p.ctx
		ctx.FileSizeKB = float64(len(symbols)) / 1024
		if p.hasFileKB {
			ctx.FileSizeKB = p.fileKB
		}
		codec, source = s.engine.SelectCodec(ctx), "tree"
	}
	rx.rec.Codec, rx.rec.CodecSource = codec, source
	rx.rec.Bases = len(symbols)
	rx.rec.StoreName = p.name
	resp := s.submit(rx, codec, func(ctx context.Context) *response {
		return s.doCompress(ctx, rx, codec, source, p, symbols)
	})
	s.finish(w, rx, t0, resp)
}

// doCompress is the pure work function of /compress: symbols and resolved
// parameters in, deterministic container bytes out. Under a traced
// request it wraps the codec work in a "codec.<name>" span and the store
// write (and its fleet replica fan-out) in a "serve.store" span.
func (s *Server) doCompress(ctx context.Context, rx *reqObs, codec, source string, p compressParams, symbols []byte) *response {
	var (
		container []byte
		st        compress.Stats
		err       error
		blocks    int
	)
	_, cspan := obs.Start(ctx, "codec."+codec)
	cspan.SetAttr("codec", codec)
	cspan.SetAttr("source", source)
	cspan.SetAttr("bases", len(symbols))
	if p.blockSize > 0 {
		container, st, err = compress.BlockCompressObserved(s.reg, codec, symbols, compress.BlockOptions{BlockSize: p.blockSize})
		blocks = (len(symbols) + p.blockSize - 1) / p.blockSize
	} else {
		var c compress.Codec
		if c, err = compress.New(codec); err == nil {
			var payload []byte
			payload, st, err = c.Compress(symbols)
			compress.ObserveCompress(s.reg, codec, len(symbols), len(payload), st, err)
			if err == nil {
				container = compress.Seal(codec, symbols, payload)
			}
		}
	}
	cspan.SetAttr("modeled_ms", float64(st.WorkNS)/1e6)
	cspan.End()
	rx.rec.ModeledMS = float64(st.WorkNS) / 1e6
	if err != nil {
		return errorResponse(http.StatusUnprocessableEntity, fmt.Sprintf("compress with %s: %v", codec, err))
	}
	if p.name != "" {
		if errResp := s.storePut(ctx, p.name, container); errResp != nil {
			return errResp
		}
	}
	s.met.selected(codec, source)
	resp := &response{
		status:      http.StatusOK,
		contentType: "application/octet-stream",
		body:        container,
		header: map[string]string{
			"X-Dnacomp-Codec":  codec,
			"X-Dnacomp-Source": source,
			"X-Dnacomp-Bases":  strconv.Itoa(len(symbols)),
		},
	}
	if p.blockSize > 0 {
		resp.header["X-Dnacomp-Blocks"] = strconv.Itoa(blocks)
	}
	return resp
}

// rangeParams is the optional off/len window of a /decompress request.
type rangeParams struct {
	off, n int
	whole  bool // no range declared: restore everything
	hasLen bool
}

func parseRange(q map[string][]string) (rangeParams, error) {
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	offStr, lenStr := get("off"), get("len")
	if offStr == "" && lenStr == "" {
		return rangeParams{whole: true}, nil
	}
	p := rangeParams{}
	var err error
	if offStr != "" {
		if p.off, err = strconv.Atoi(offStr); err != nil || p.off < 0 {
			return p, fmt.Errorf("off %q: want a non-negative integer", offStr)
		}
	}
	if lenStr != "" {
		if p.n, err = strconv.Atoi(lenStr); err != nil || p.n < 0 {
			return p, fmt.Errorf("len %q: want a non-negative integer", lenStr)
		}
		p.hasLen = true
	}
	return p, nil
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	t0 := s.clock.Now()
	rx := s.beginRequest(r, "decompress")
	rng, err := parseRange(r.URL.Query())
	if err != nil {
		s.finish(w, rx, t0, errorResponse(http.StatusBadRequest, err.Error()))
		return
	}
	var container []byte
	switch r.Method {
	case http.MethodPost:
		body, errResp := s.readBody(w, r)
		if errResp != nil {
			s.finish(w, rx, t0, errResp)
			return
		}
		container = body
	case http.MethodGet:
		name := r.URL.Query().Get("name")
		if name == "" {
			s.finish(w, rx, t0, errorResponse(http.StatusBadRequest,
				"GET /decompress needs ?name= of a stored container (POST the container body otherwise)"))
			return
		}
		rx.rec.StoreName = name
		var errResp *response
		if container, errResp = s.storeGet(rx.ctx, name); errResp != nil {
			s.finish(w, rx, t0, errResp)
			return
		}
	default:
		s.finish(w, rx, t0, errorResponse(http.StatusMethodNotAllowed, "POST a container or GET ?name="))
		return
	}
	rx.rec.InBytes = len(container)
	// The codec the container claims keys the per-codec semaphore; a
	// corrupt header falls through to "" (no semaphore) and the worker
	// reports the parse failure deterministically.
	codec := containerCodec(container)
	rx.rec.Codec, rx.rec.CodecSource = codec, "container"
	resp := s.submit(rx, codec, func(ctx context.Context) *response {
		return s.doDecompress(ctx, rx, codec, container, rng)
	})
	s.finish(w, rx, t0, resp)
}

// containerCodec peeks the codec name either container format records,
// returning "" when the header is unparseable.
func containerCodec(data []byte) string {
	if compress.IsBlockContainer(data) {
		if r, err := compress.OpenBlocks(data, compress.Limits{}); err == nil {
			return r.Codec()
		}
		return ""
	}
	if fr, err := compress.Open(data); err == nil {
		return fr.Codec
	}
	return ""
}

// doDecompress is the pure work function of /decompress: container bytes
// and a validated range in, restored ASCII bases out. Untrusted bytes
// reach codecs only through SafeDecompressAny / OpenBlocksObserved, so
// every hostile-input property of the hardened decode layer holds here.
func (s *Server) doDecompress(ctx context.Context, rx *reqObs, claimed string, container []byte, rng rangeParams) *response {
	spanName := "codec.decode"
	if claimed != "" {
		spanName = "codec." + claimed
	}
	_, cspan := obs.Start(ctx, spanName)
	defer cspan.End()
	cspan.SetAttr("container_bytes", len(container))
	var (
		symbols []byte
		bases   int
		codec   string
		err     error
	)
	switch {
	case rng.whole:
		var st compress.Stats
		symbols, st, err = compress.SafeDecompressAny("", container, s.cfg.Limits)
		if err == nil {
			bases = len(symbols)
			codec = containerCodec(container)
			compress.ObserveDecompress(s.reg, codec, len(container), len(symbols), st, nil)
		}
	case compress.IsBlockContainer(container):
		// Range over a multi-block container: only overlapping blocks are
		// decoded (BlockReader.Slice), the whole point of serving CXB1.
		var r *compress.BlockReader
		r, err = compress.OpenBlocksObserved(s.reg, container, s.cfg.Limits)
		if err == nil {
			bases, codec = r.Bases(), r.Codec()
			off, n, rerr := resolveRange(rng, bases)
			if rerr != nil {
				return errorResponse(http.StatusRequestedRangeNotSatisfiable, rerr.Error())
			}
			symbols, _, err = r.Slice(off, n)
		}
	default:
		// Range over a single frame: restore fully, then window in memory.
		var st compress.Stats
		symbols, st, err = compress.SafeDecompressAny("", container, s.cfg.Limits)
		if err == nil {
			bases = len(symbols)
			codec = containerCodec(container)
			compress.ObserveDecompress(s.reg, codec, len(container), len(symbols), st, nil)
			off, n, rerr := resolveRange(rng, bases)
			if rerr != nil {
				return errorResponse(http.StatusRequestedRangeNotSatisfiable, rerr.Error())
			}
			symbols = symbols[off : off+n]
		}
	}
	if err != nil {
		return errorResponse(http.StatusUnprocessableEntity, fmt.Sprintf("decompress: %v", err))
	}
	cspan.SetAttr("bases", bases)
	rx.rec.Bases = bases
	header := map[string]string{
		"X-Dnacomp-Bases": strconv.Itoa(bases),
	}
	if codec != "" {
		header["X-Dnacomp-Codec"] = codec
	}
	if !rng.whole {
		off, n, _ := resolveRange(rng, bases)
		header["X-Dnacomp-Range"] = fmt.Sprintf("%d:%d", off, n)
	}
	return &response{
		status:      http.StatusOK,
		contentType: "text/plain; charset=utf-8",
		header:      header,
		body:        seq.Decode(symbols),
	}
}

// resolveRange bounds-checks the declared window against the restored
// symbol count; a missing len means "to the end".
func resolveRange(rng rangeParams, bases int) (off, n int, err error) {
	off, n = rng.off, rng.n
	if !rng.hasLen {
		n = bases - off
	}
	if off > bases || n < 0 || off+n > bases {
		return 0, 0, fmt.Errorf("range [%d, %d+%d) outside [0, %d)", off, off, n, bases)
	}
	return off, n, nil
}

// --- named-container store --------------------------------------------

// storePut retains container under name for later GET range reads,
// returning a non-nil error response on refusal. Overwriting an existing
// name is allowed (idempotent re-uploads); new names beyond the cap are
// refused (507 + Retry-After) so a client cannot grow the daemon's — or
// the fleet's — footprint without bound. In fleet mode the bytes travel
// to the replicated store and a lost write quorum degrades to 503 +
// Retry-After; the local name reservation is rolled back so the failed
// name does not burn a store slot.
func (s *Server) storePut(ctx context.Context, name string, container []byte) *response {
	ctx, span := obs.Start(ctx, "serve.store")
	defer span.End()
	span.SetAttr("name", name)
	span.SetAttr("bytes", len(container))
	s.storeMu.Lock()
	_, existed := s.store[name]
	if !existed && len(s.store) >= s.cfg.MaxStored {
		s.storeMu.Unlock()
		return s.backpressure(http.StatusInsufficientStorage,
			fmt.Sprintf("container store is full (%d names)", s.cfg.MaxStored))
	}
	if s.cfg.FleetStore == nil {
		s.store[name] = container
		s.storeMu.Unlock()
		return nil
	}
	s.store[name] = nil // reserve the name under the cap while the fleet write runs
	s.storeMu.Unlock()
	if err := storePutCtx(ctx, s.cfg.FleetStore, s.cfg.FleetContainer, name, container); err != nil {
		if !existed {
			s.storeMu.Lock()
			delete(s.store, name)
			s.storeMu.Unlock()
		}
		return s.fleetError("store", err)
	}
	return nil
}

// ctxStore is the optional context-aware face of a cloud store (satisfied
// by *cloud.Fleet): the same ops, with request-scoped trace propagation.
type ctxStore interface {
	PutCtx(ctx context.Context, container, blob string, data []byte) error
	GetCtx(ctx context.Context, container, blob string) ([]byte, error)
}

func storePutCtx(ctx context.Context, st cloud.Store, container, blob string, data []byte) error {
	if cs, ok := st.(ctxStore); ok {
		return cs.PutCtx(ctx, container, blob, data)
	}
	return st.Put(container, blob, data)
}

func storeGetCtx(ctx context.Context, st cloud.Store, container, blob string) ([]byte, error) {
	if cs, ok := st.(ctxStore); ok {
		return cs.GetCtx(ctx, container, blob)
	}
	return st.Get(container, blob)
}

// storeGet fetches a named container, returning a non-nil error response
// on failure: 404 for an unknown name, 503 + Retry-After when the fleet
// cannot reach any replica of a name that exists.
func (s *Server) storeGet(ctx context.Context, name string) ([]byte, *response) {
	ctx, span := obs.Start(ctx, "serve.fetch")
	defer span.End()
	span.SetAttr("name", name)
	if s.cfg.FleetStore == nil {
		s.storeMu.RLock()
		c, ok := s.store[name]
		s.storeMu.RUnlock()
		if !ok {
			return nil, errorResponse(http.StatusNotFound, fmt.Sprintf("no stored container %q", name))
		}
		return c, nil
	}
	c, err := storeGetCtx(ctx, s.cfg.FleetStore, s.cfg.FleetContainer, name)
	if err != nil {
		return nil, s.fleetError("fetch", err)
	}
	return c, nil
}

// fleetError maps a fleet store failure onto the HTTP surface: a missing
// blob is 404, a quorum-lost or transient fleet state is retryable
// backpressure (503 + Retry-After), anything else is a 500.
func (s *Server) fleetError(op string, err error) *response {
	switch {
	case errors.Is(err, cloud.ErrNotFound):
		return errorResponse(http.StatusNotFound, fmt.Sprintf("%s container: %v", op, err))
	case cloud.IsDegraded(err) || cloud.IsTransient(err):
		s.reg.Counter("dna_serve_fleet_unavailable_total", "Requests refused because the fleet store lost its quorum.",
			"op", op).Inc()
		return s.backpressure(http.StatusServiceUnavailable, fmt.Sprintf("fleet store cannot %s container: %v", op, err))
	default:
		return errorResponse(http.StatusInternalServerError, fmt.Sprintf("%s container: %v", op, err))
	}
}

// Cleanse converts request body text — FASTA or raw base text, any case,
// with headers/whitespace/non-ACGT stripped — into the symbol codes the
// codecs consume. It is the same cleansing the CLI applies before
// single-sequence experiments.
func Cleanse(raw []byte) ([]byte, seq.CleanStats) {
	cl := seq.Cleanser{}
	if isFASTA(raw) {
		if seqs, st, err := cl.CleanFASTA(bytes.NewReader(raw)); err == nil {
			var all []byte
			for _, s := range seqs {
				all = append(all, s...)
			}
			return all, st
		}
	}
	return cl.Clean(raw)
}

func isFASTA(raw []byte) bool {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		}
		return b == '>'
	}
	return false
}
