package serve

import (
	"context"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// TestRunLoadAccountsEveryRequest is the issue's load-harness criterion:
// a bounded, deterministic run completes with zero dropped-but-unreported
// requests (the accounting invariant RunLoad enforces), zero round-trip
// mismatches, and latency histograms published on the registry.
func TestRunLoadAccountsEveryRequest(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{})

	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:     ts.URL,
		Units:       24,
		Concurrency: 4,
		Seed:        1,
		MinBases:    256,
		MaxBases:    2048,
		Registry:    reg,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Units != 24 {
		t.Errorf("units = %d, want 24", rep.Units)
	}
	if rep.Completed+rep.Rejected+rep.Failed != rep.Calls {
		t.Fatalf("accounting broken: %d+%d+%d != %d", rep.Completed, rep.Rejected, rep.Failed, rep.Calls)
	}
	if rep.Failed != 0 {
		t.Errorf("failed calls against an idle server: %d (%v)", rep.Failed, rep.Errors)
	}
	if rep.Mismatches != 0 {
		t.Errorf("round-trip mismatches: %d (%v)", rep.Mismatches, rep.Errors)
	}
	if rep.Latency.Calls != rep.Calls || rep.Latency.MaxMS < rep.Latency.P50MS {
		t.Errorf("latency summary inconsistent: %+v", rep.Latency)
	}
	if n := reg.Histogram("dna_loadgen_latency_ms", "", obs.DefMSBuckets()).Count(); n != uint64(rep.Calls) {
		t.Errorf("latency histogram holds %d observations, want %d", n, rep.Calls)
	}
	done := reg.Counter("dna_loadgen_calls_total", "", "outcome", "completed").Value()
	if done != uint64(rep.Completed) {
		t.Errorf("completed counter = %d, want %d", done, rep.Completed)
	}
}

// TestRunLoadReportsBackpressure: against a starved server (one worker, a
// one-slot queue, heavy concurrency), rejections surface as Rejected in
// the report — never as silent drops — and the invariant still holds.
func TestRunLoadReportsBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:     ts.URL,
		Units:       32,
		Concurrency: 16,
		Seed:        2,
		MinBases:    256,
		MaxBases:    1024,
		Registry:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Completed+rep.Rejected+rep.Failed != rep.Calls {
		t.Fatalf("accounting broken: %d+%d+%d != %d", rep.Completed, rep.Rejected, rep.Failed, rep.Calls)
	}
	if rep.Failed != 0 {
		t.Errorf("unexpected hard failures: %d (%v)", rep.Failed, rep.Errors)
	}
	if rep.Mismatches != 0 {
		t.Errorf("mismatches under load: %d (%v)", rep.Mismatches, rep.Errors)
	}
}

// TestRunLoadPlanIsDeterministic: the same seed generates the same plan —
// request bodies, contexts and range probes — regardless of concurrency.
func TestRunLoadPlanIsDeterministic(t *testing.T) {
	opts := LoadOptions{Units: 10, Seed: 5, MinBases: 300, MaxBases: 600, RangeEvery: 3, Concurrency: 1}
	a, b := planUnits(opts), planUnits(opts)
	if len(a) != len(b) {
		t.Fatal("plan lengths differ")
	}
	for i := range a {
		if string(a[i].body) != string(b[i].body) || a[i].ctx != b[i].ctx ||
			a[i].ranged != b[i].ranged || a[i].off != b[i].off || a[i].n != b[i].n {
			t.Fatalf("plan unit %d differs between identical seeds", i)
		}
	}
}
