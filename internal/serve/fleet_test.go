package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/obs"
)

// testFleet builds a small plain-store fleet on a fake clock for the
// daemon to back its named-container store with.
func testFleet(t *testing.T, shards, replication int) (*cloud.Fleet, *obs.Fake) {
	t.Helper()
	clock := obs.NewFake(time.Unix(1700000000, 0).UTC())
	f, err := cloud.NewFleet(cloud.FleetConfig{
		Shards:      cloud.DefaultShardSpecs(shards, 0, 5),
		Replication: replication,
		Seed:        42,
		Clock:       clock,
		Registry:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, clock
}

// TestRetryAfterOnEveryBackpressure is the satellite-bugfix regression:
// every backpressure response — not just the admission queue's 429 —
// must carry Retry-After. The 507 store-overflow and draining-503
// assertions fail on the pre-fleet code, which set the header only on
// queue_full.
func TestRetryAfterOnEveryBackpressure(t *testing.T) {
	t.Run("store_overflow_507", func(t *testing.T) {
		_, ts := newTestServer(t, Config{MaxStored: 1, RetryAfterSeconds: 2})
		input := synthASCII(400, 6)
		if resp, body := post(t, ts.URL+"/compress?codec=twobit&name=a", input); resp.StatusCode != http.StatusOK {
			t.Fatalf("first store: HTTP %d (%s)", resp.StatusCode, body)
		}
		resp, _ := post(t, ts.URL+"/compress?codec=twobit&name=b", input)
		if resp.StatusCode != http.StatusInsufficientStorage {
			t.Fatalf("overflow: HTTP %d, want 507", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Fatalf("507 Retry-After = %q, want 2 — store overflow is retryable backpressure", ra)
		}
	})

	t.Run("draining_503", func(t *testing.T) {
		s, ts := newTestServer(t, Config{RetryAfterSeconds: 2})
		s.BeginDrain()
		resp, _ := post(t, ts.URL+"/compress", synthASCII(400, 1))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining: HTTP %d, want 503", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Fatalf("draining 503 Retry-After = %q, want 2 — a drained peer will serve again", ra)
		}
	})

	t.Run("codec_saturated_429", func(t *testing.T) {
		registerGateCodec()
		reg := obs.NewRegistry()
		// Two workers: one is pinned by the held gatetest job, the other
		// proves an unrelated codec still gets served.
		s, err := NewServer(Config{Engine: testEngine(t), Workers: 2, QueueDepth: 8, PerCodecBacklog: 1, Registry: reg, RetryAfterSeconds: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		gate := make(chan struct{})
		started := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // holds the codec's one backlog slot
			defer wg.Done()
			s.submitPlain("compress", "gatetest", func() *response {
				close(started)
				<-gate
				return okResponse()
			})
		}()
		<-started
		resp := s.submitPlain("compress", "gatetest", okResponse)
		if resp.status != http.StatusTooManyRequests {
			t.Fatalf("saturated codec got %d, want 429", resp.status)
		}
		if ra := resp.header["Retry-After"]; ra != "2" {
			t.Fatalf("codec-saturation 429 Retry-After = %q, want 2", ra)
		}
		if n := reg.Counter("dna_serve_rejected_total", "", "reason", "codec_saturated").Value(); n != 1 {
			t.Fatalf("codec_saturated rejections = %d, want 1", n)
		}
		// A different codec is unaffected by the saturated one's backlog.
		if resp := s.submitPlain("compress", "twobit", okResponse); resp.status != http.StatusOK {
			t.Fatalf("unrelated codec got %d during gatetest saturation", resp.status)
		}
		close(gate)
		wg.Wait()
	})
}

// TestFleetBackedStoreSurvivesShardLoss: with the named-container store on
// a replicated fleet, stored containers keep serving through GET
// /decompress while fewer than replication shards are dead; only losing
// every replica turns the name into 503 + Retry-After, and it heals on
// revive. An unknown name stays a plain 404 throughout.
func TestFleetBackedStoreSurvivesShardLoss(t *testing.T) {
	fleet, clock := testFleet(t, 5, 3)
	_, ts := newTestServer(t, Config{FleetStore: fleet, RetryAfterSeconds: 2})
	input := synthASCII(600, 9)

	if resp, body := post(t, ts.URL+"/compress?codec=twobit&name=seq", input); resp.StatusCode != http.StatusOK {
		t.Fatalf("store: HTTP %d (%s)", resp.StatusCode, body)
	}
	resp, whole := get(t, ts.URL+"/decompress?name=seq")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy read: HTTP %d", resp.StatusCode)
	}

	// Unknown names are 404 on a healthy fleet.
	if resp, _ := get(t, ts.URL+"/decompress?name=ghost"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown name: HTTP %d, want 404", resp.StatusCode)
	}

	// Kill shards up to replication-1: the name must keep serving the
	// identical bytes.
	reps := fleet.Replicas("serve", "seq")
	for i := 0; i < len(reps)-1; i++ {
		fleet.Kill(reps[i])
		resp, body := get(t, ts.URL+"/decompress?name=seq")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read with %d dead replicas: HTTP %d (%s)", i+1, resp.StatusCode, body)
		}
		if string(body) != string(whole) {
			t.Fatalf("degraded read differs from healthy read with %d dead replicas", i+1)
		}
		if i == 0 {
			// With one dead shard every key keeps >= 2 live replicas, so a
			// read-quorum of misses still proves "not found": shard loss
			// must not turn unknown names into 503s.
			if resp, _ := get(t, ts.URL+"/decompress?name=ghost"); resp.StatusCode != http.StatusNotFound {
				t.Fatalf("unknown name with one dead shard: HTTP %d, want 404", resp.StatusCode)
			}
		}
	}

	// Losing the last replica is a true outage: 503 + Retry-After.
	fleet.Kill(reps[len(reps)-1])
	resp, _ = get(t, ts.URL+"/decompress?name=seq")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all replicas dead: HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("fleet-outage 503 Retry-After = %q, want 2", ra)
	}

	// Revive one replica and let its tripped breaker cool down on the
	// injected clock: the name serves again, bytes intact.
	fleet.Revive(reps[0])
	clock.Advance(45 * time.Second)
	resp, body := get(t, ts.URL+"/decompress?name=seq")
	if resp.StatusCode != http.StatusOK || string(body) != string(whole) {
		t.Fatalf("read after revive: HTTP %d, bytes match=%v", resp.StatusCode, string(body) == string(whole))
	}
}

// TestFleetStorePutQuorumLost: a write that cannot reach the fleet's
// quorum answers 503 + Retry-After and rolls back its name reservation,
// so the failed name does not burn a store slot.
func TestFleetStorePutQuorumLost(t *testing.T) {
	fleet, _ := testFleet(t, 3, 3) // write quorum 2
	_, ts := newTestServer(t, Config{FleetStore: fleet, MaxStored: 1, RetryAfterSeconds: 2})
	input := synthASCII(500, 10)

	fleet.Kill("shard-00")
	fleet.Kill("shard-01")
	resp, _ := post(t, ts.URL+"/compress?codec=twobit&name=doomed", input)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quorum-lost store: HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("quorum-lost 503 Retry-After = %q, want 2", ra)
	}

	// The failed name released its reservation: with MaxStored=1, a fresh
	// name still fits once the fleet heals.
	fleet.Revive("shard-00")
	fleet.Revive("shard-01")
	if resp, body := post(t, ts.URL+"/compress?codec=twobit&name=ok", input); resp.StatusCode != http.StatusOK {
		t.Fatalf("store after heal: HTTP %d (%s) — failed put leaked a store slot?", resp.StatusCode, body)
	}
}

// TestDrainNoGoroutineLeakFleet is the drain leak check: a fleet-backed
// server takes concurrent requests while a shard flaps, then goes through
// the full shutdown sequence (BeginDrain → HTTP drain → Close). Every
// goroutine — workers, handlers, fleet fan-outs — must be gone afterward.
// Runs under -race via the fleet gate.
func TestDrainNoGoroutineLeakFleet(t *testing.T) {
	testEngine(t) // train outside the goroutine window
	baseline := runtime.NumGoroutine()

	fleet, clock := testFleet(t, 5, 3)
	reg := obs.NewRegistry()
	s, err := NewServer(Config{Engine: testEngine(t), Workers: 4, Registry: reg, FleetStore: fleet})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		names := fleet.ShardNames()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := names[i%len(names)]
			fleet.Kill(name)
			clock.Advance(time.Second)
			fleet.Revive(name)
		}
	}()

	input := synthASCII(800, 11)
	var reqs sync.WaitGroup
	for i := 0; i < 12; i++ {
		reqs.Add(1)
		go func(i int) {
			defer reqs.Done()
			url := fmt.Sprintf("%s/compress?codec=twobit&name=n%d", ts.URL, i)
			resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(input))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}

	// Shut down mid-traffic: drain mode, then the HTTP layer (joins
	// in-flight handlers), then the worker pool.
	s.BeginDrain()
	reqs.Wait()
	ts.Close()
	s.Close()
	close(stop)
	flapper.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after drain: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
