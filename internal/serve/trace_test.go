package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// postTraced issues a POST with a traceparent header (when non-empty) and
// returns the response and body.
func postTraced(t *testing.T, url, traceparent string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// decodeEnvelope parses a ?trace=1 response body.
func decodeEnvelope(t *testing.T, body []byte) traceEnvelope {
	t.Helper()
	var env traceEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decoding trace envelope: %v\n%s", err, body)
	}
	return env
}

// TestTraceContinuityThroughFleet is the issue's acceptance criterion: a
// POST /compress carrying an inbound traceparent, against a fleet-backed
// store, must export one trace whose serve -> codec -> store -> fleet
// replica spans all share the caller's trace ID, with the root span
// parented on the caller's span.
func TestTraceContinuityThroughFleet(t *testing.T) {
	fleet, _ := testFleet(t, 4, 2)
	_, ts := newTestServer(t, Config{FleetStore: fleet})

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	seqBody := bytes.Repeat([]byte("ACGTACGGTTAAC"), 160)
	resp, body := postTraced(t, ts.URL+"/compress?name=probe&trace=1",
		obs.FormatTraceparent(callerTrace, callerSpan), seqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Dnacomp-Trace-Id"); got != callerTrace {
		t.Errorf("X-Dnacomp-Trace-Id = %q, want caller's %q", got, callerTrace)
	}

	env := decodeEnvelope(t, body)
	if env.Status != http.StatusOK || env.TraceID != callerTrace {
		t.Fatalf("envelope status/trace = %d/%q, want 200/%q", env.Status, env.TraceID, callerTrace)
	}
	if len(env.Trace) != 1 {
		t.Fatalf("trace has %d roots, want 1", len(env.Trace))
	}
	root := env.Trace[0]
	if root.Name != "serve.compress" || root.ParentSpanID != callerSpan || root.TraceID != callerTrace {
		t.Fatalf("root = %q parent=%q trace=%q, want serve.compress parented on %q in %q",
			root.Name, root.ParentSpanID, root.TraceID, callerSpan, callerTrace)
	}

	// Every span in the export shares the caller's trace ID and has its own
	// span ID; every non-root span is parented inside the trace.
	spanIDs := map[string]bool{callerSpan: true}
	var codecSpan *obs.SpanTree
	root.Walk(func(n *obs.SpanTree) {
		if n.TraceID != callerTrace {
			t.Errorf("span %q carries trace %q, want %q", n.Name, n.TraceID, callerTrace)
		}
		if n.SpanID == "" || spanIDs[n.SpanID] {
			t.Errorf("span %q has missing or duplicate span ID %q", n.Name, n.SpanID)
		}
		spanIDs[n.SpanID] = true
		if codecSpan == nil && strings.HasPrefix(n.Name, "codec.") {
			codecSpan = n
		}
	})
	root.Walk(func(n *obs.SpanTree) {
		if n != root && !spanIDs[n.ParentSpanID] {
			t.Errorf("span %q parent %q is not a span of this trace", n.Name, n.ParentSpanID)
		}
	})

	if codecSpan == nil {
		t.Error("no codec.* span in the trace")
	}
	store := root.Find("serve.store")
	if store == nil {
		t.Fatal("no serve.store span in the trace")
	}
	put := store.Find("fleet.put")
	if put == nil {
		t.Fatal("fleet.put is not a descendant of serve.store")
	}
	if put.Find("fleet.replica.put") == nil {
		t.Error("fleet.put has no fleet.replica.put child")
	}

	// The envelope carries the real response body: the frame decompresses
	// back to the posted sequence.
	resp, restored := postTraced(t, ts.URL+"/decompress", "", env.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(restored, seqBody) {
		t.Errorf("envelope body did not round-trip: HTTP %d, %d bytes back", resp.StatusCode, len(restored))
	}
}

// TestTraceExportDeterministic: two identically configured servers (same
// seeded IDSource, same fake clock) export byte-identical trace envelopes
// for the same request — the reproducibility property the obs-trace gate
// builds on.
func TestTraceExportDeterministic(t *testing.T) {
	run := func() []byte {
		_, ts := newTestServer(t, Config{
			IDs:   obs.NewSeededIDSource(99),
			Clock: obs.NewFake(time.Unix(1700000000, 0).UTC()),
		})
		resp, body := postTraced(t, ts.URL+"/compress?trace=1", "", bytes.Repeat([]byte("ACCGGTAC"), 128))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compress: HTTP %d: %s", resp.StatusCode, body)
		}
		return body
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace envelopes differ between identically seeded servers\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	env := decodeEnvelope(t, a)
	if env.TraceID == "" || len(env.Trace) != 1 {
		t.Fatalf("deterministic envelope malformed: trace=%q roots=%d", env.TraceID, len(env.Trace))
	}
}

// TestDebugRequestsAttribution: the flight recorder replays a stored
// request's full attribution — codec and why, shard replica set, breaker
// states — from /debug/requests.
func TestDebugRequestsAttribution(t *testing.T) {
	fleet, _ := testFleet(t, 4, 2)
	_, ts := newTestServer(t, Config{FleetStore: fleet})

	resp, body := postTraced(t, ts.URL+"/compress?name=blob1", "", bytes.Repeat([]byte("ACGTTGCA"), 96))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: HTTP %d: %s", resp.StatusCode, body)
	}

	resp, body = postTraced(t, ts.URL+"/debug/requests", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests: HTTP %d", resp.StatusCode)
	}
	var doc struct {
		Total    uint64              `json:"total"`
		Capacity int                 `json:"capacity"`
		Requests []obs.RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decoding /debug/requests: %v", err)
	}
	if doc.Total < 1 || doc.Capacity != 256 || len(doc.Requests) == 0 {
		t.Fatalf("recorder doc = total %d capacity %d with %d records", doc.Total, doc.Capacity, len(doc.Requests))
	}
	var rec *obs.RequestRecord
	for i := range doc.Requests {
		if doc.Requests[i].StoreName == "blob1" {
			rec = &doc.Requests[i]
		}
	}
	if rec == nil {
		t.Fatal("no record for the stored container blob1")
	}
	if rec.Endpoint != "compress" || rec.Outcome != "ok" || rec.Origin != "organic" {
		t.Errorf("record endpoint/outcome/origin = %q/%q/%q", rec.Endpoint, rec.Outcome, rec.Origin)
	}
	if rec.Codec == "" || rec.CodecSource == "" {
		t.Errorf("record lacks codec attribution: codec=%q source=%q", rec.Codec, rec.CodecSource)
	}
	if len(rec.Shards) != 2 {
		t.Errorf("record shards = %v, want the 2-replica set", rec.Shards)
	}
	if len(rec.Breakers) != 4 {
		t.Errorf("record breakers = %v, want all 4 shards", rec.Breakers)
	}
	for shard, state := range rec.Breakers {
		if state != "closed" {
			t.Errorf("breaker %s = %q on a healthy fleet", shard, state)
		}
	}
	if rec.InBytes == 0 || rec.OutBytes == 0 || rec.Bases == 0 {
		t.Errorf("record sizes missing: in=%d out=%d bases=%d", rec.InBytes, rec.OutBytes, rec.Bases)
	}
}

// TestDebugSLOEndpoint: /debug/slo always yields a non-empty verdict over
// the default objectives.
func TestDebugSLOEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postTraced(t, ts.URL+"/compress", "", bytes.Repeat([]byte("ACGT"), 64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, body = postTraced(t, ts.URL+"/debug/slo", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slo: HTTP %d", resp.StatusCode)
	}
	var doc struct {
		Verdict    string          `json:"verdict"`
		Objectives []obs.SLOStatus `json:"objectives"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decoding /debug/slo: %v", err)
	}
	if doc.Verdict == "" {
		t.Error("SLO verdict is empty")
	}
	names := map[string]bool{}
	for _, o := range doc.Objectives {
		names[o.Name] = true
		if o.Verdict == "" {
			t.Errorf("objective %s has empty verdict", o.Name)
		}
	}
	if !names["compress_latency"] || !names["availability"] {
		t.Errorf("default objectives missing: %v", names)
	}
}

// TestRunLoadReportIdenticalWithTracing is the satellite-3 proof: enabling
// the flight recorder and per-call tracing changes nothing in the
// harness-visible report — the marshaled LoadReport is byte-identical with
// observability fully on and fully off (fake harness clocks on both sides
// so latencies are exactly zero).
func TestRunLoadReportIdenticalWithTracing(t *testing.T) {
	run := func(observed bool) []byte {
		cfg := Config{Workers: 4, QueueDepth: 64}
		if !observed {
			cfg.RecorderSize = -1
		}
		_, ts := newTestServer(t, cfg)
		rep, err := RunLoad(context.Background(), LoadOptions{
			BaseURL:     ts.URL,
			Units:       12,
			Concurrency: 4,
			Seed:        3,
			MinBases:    256,
			MaxBases:    1024,
			Registry:    obs.NewRegistry(),
			Clock:       obs.NewFake(time.Unix(1700000000, 0).UTC()),
			NoTrace:     !observed,
		})
		if err != nil {
			t.Fatalf("RunLoad: %v", err)
		}
		if rep.Failed != 0 || rep.Rejected != 0 {
			t.Fatalf("run not clean: %d failed, %d rejected (%v)", rep.Failed, rep.Rejected, rep.Errors)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	traced, plain := run(true), run(false)
	if !bytes.Equal(traced, plain) {
		t.Fatalf("LoadReport differs with observability on\n--- traced ---\n%s\n--- plain ---\n%s", traced, plain)
	}
	var rep LoadReport
	if err := json.Unmarshal(traced, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SLOVerdict == "" {
		t.Error("LoadReport SLO verdict is empty")
	}
}

// TestLoadgenOriginTagged: loadgen calls land in the flight recorder
// tagged origin=loadgen with joinable trace IDs, while organic requests
// stay origin=organic — the satellite-6 distinguishability requirement.
func TestLoadgenOriginTagged(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, body := postTraced(t, ts.URL+"/compress", "", bytes.Repeat([]byte("AACGGT"), 80))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("organic compress: HTTP %d: %s", resp.StatusCode, body)
	}
	if _, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:     ts.URL,
		Units:       4,
		Concurrency: 2,
		Seed:        11,
		MinBases:    256,
		MaxBases:    512,
		Registry:    obs.NewRegistry(),
	}); err != nil {
		t.Fatalf("RunLoad: %v", err)
	}

	var organic, loadgen, loadgenTraced int
	for _, rec := range s.Recorder().Snapshot() {
		switch rec.Origin {
		case "organic":
			organic++
		case "loadgen":
			loadgen++
			if rec.TraceID != "" {
				loadgenTraced++
			}
		default:
			t.Errorf("record with unknown origin %q", rec.Origin)
		}
	}
	if organic == 0 || loadgen == 0 {
		t.Fatalf("recorder saw %d organic and %d loadgen records, want both > 0", organic, loadgen)
	}
	if loadgenTraced != loadgen {
		t.Errorf("%d of %d loadgen records carry a trace ID, want all", loadgenTraced, loadgen)
	}
}
