package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// RequestRecord is one completed request as remembered by the flight
// recorder: enough attribution — codec choice and why, queue wait vs work
// time, which shards held the blob, breaker states at completion — to
// answer "why was this one slow/degraded" after the fact. All durations
// are measured on the server's injected clock; ModeledMS is the codec's
// modeled pipeline latency from compress.Stats, so a slow wall clock and a
// slow model are distinguishable.
type RequestRecord struct {
	Seq         uint64            `json:"seq"`
	TraceID     string            `json:"trace_id,omitempty"`
	Endpoint    string            `json:"endpoint"`
	Origin      string            `json:"origin,omitempty"`
	Codec       string            `json:"codec,omitempty"`
	CodecSource string            `json:"codec_source,omitempty"`
	Status      int               `json:"status"`
	Outcome     string            `json:"outcome"`
	QueueWaitMS float64           `json:"queue_wait_ms"`
	WorkMS      float64           `json:"work_ms"`
	TotalMS     float64           `json:"total_ms"`
	ModeledMS   float64           `json:"modeled_ms,omitempty"`
	InBytes     int               `json:"in_bytes"`
	OutBytes    int               `json:"out_bytes"`
	Bases       int               `json:"bases,omitempty"`
	StoreName   string            `json:"store_name,omitempty"`
	Shards      []string          `json:"shards,omitempty"`
	Breakers    map[string]string `json:"breakers,omitempty"`
	Error       string            `json:"error,omitempty"`
}

// FlightRecorder is a bounded ring buffer of the last N request records.
// Writers never block and never allocate beyond the fixed ring; once full,
// each Record overwrites the oldest entry. A nil *FlightRecorder is a
// valid no-op receiver, so the serve layer can disable recording by
// leaving it nil without branching at call sites.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []RequestRecord
	next  int // ring index of the next write
	total uint64

	// OnError, when set, is called synchronously from Record (outside the
	// recorder lock) with a snapshot of the ring each time a record with
	// Outcome == "error" lands — the dump-on-error hook.
	OnError func(failed RequestRecord, recent []RequestRecord)
}

// NewFlightRecorder returns a recorder keeping the last size records
// (size <= 0 means the 256-record default).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = 256
	}
	return &FlightRecorder{ring: make([]RequestRecord, 0, size)}
}

// Record stores r, assigning it the next sequence number. Safe for
// concurrent use; the oldest record is overwritten once the ring is full.
func (f *FlightRecorder) Record(r RequestRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.total++
	r.Seq = f.total
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, r)
	} else {
		f.ring[f.next] = r
		f.next = (f.next + 1) % cap(f.ring)
	}
	hook := f.OnError
	var recent []RequestRecord
	if hook != nil && r.Outcome == "error" {
		recent = f.snapshotLocked()
	}
	f.mu.Unlock()
	if recent != nil {
		hook(r, recent)
	}
}

// Snapshot returns the retained records oldest-first.
func (f *FlightRecorder) Snapshot() []RequestRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotLocked()
}

func (f *FlightRecorder) snapshotLocked() []RequestRecord {
	out := make([]RequestRecord, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// Total returns how many records have ever been written (including ones
// already overwritten).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Handler serves the ring as an indented JSON document:
// {"total": N, "capacity": C, "requests": [...oldest first...]}.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var doc struct {
			Total    uint64          `json:"total"`
			Capacity int             `json:"capacity"`
			Requests []RequestRecord `json:"requests"`
		}
		if f != nil {
			f.mu.Lock()
			doc.Total = f.total
			doc.Capacity = cap(f.ring)
			doc.Requests = f.snapshotLocked()
			f.mu.Unlock()
		}
		if doc.Requests == nil {
			doc.Requests = []RequestRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}
