package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can move in both directions.
	KindGauge
	// KindHistogram is a fixed-bucket distribution with sum and count.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry holds metric families keyed by name, each fanning out into
// label-distinguished series. Lookups (Counter, Gauge, Histogram) are
// get-or-create and safe for concurrent use; updates on the returned
// handles are lock-free atomics, so hot paths resolve their series once
// and pay a few atomic operations per event afterwards.
//
// Snapshots — Prometheus text via WritePrometheus, expvar via
// PublishExpvar — order families by name and series by label signature, so
// identical recorded values always render identical bytes.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the CLIs export. Library code
// takes an explicit *Registry and treats nil as Default() (see OrDefault),
// so tests can isolate their counts while production wiring stays zero-config.
func Default() *Registry { return defaultRegistry }

// OrDefault resolves the nil-means-default convention.
func OrDefault(r *Registry) *Registry {
	if r == nil {
		return Default()
	}
	return r
}

// family is one named metric with a fixed kind shared by all its series.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64 // histogram upper bounds, sorted, +Inf implicit

	mu     sync.Mutex
	series map[string]any // canonical label signature -> handle
}

// Counter returns the counter series for name with the given label pairs
// ("key", "value", ...), creating family and series on first use. help is
// recorded on first creation. Panics on a kind conflict or odd label list —
// both programming errors.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, KindCounter, nil)
	return f.lookup(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for name with the given label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, KindGauge, nil)
	return f.lookup(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram series for name with the given label
// pairs. buckets are upper bounds (le semantics: a bucket counts v <=
// bound); they are sorted defensively and a +Inf bucket is implicit. The
// family's bucket layout is fixed by the first call; later calls reuse it.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	sorted := append([]float64(nil), buckets...)
	sort.Float64s(sorted)
	f := r.family(name, help, KindHistogram, sorted)
	return f.lookup(labels, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]any{}}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q redeclared as %s, registered as %s", name, kind, f.kind))
	}
	return f
}

func (f *family) lookup(labels []string, make func() any) any {
	sig := labelSignature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.series[sig]
	if !ok {
		h = make()
		f.series[sig] = h
	}
	return h
}

// labelSignature canonicalizes alternating key/value pairs into the exact
// text Prometheus exposition uses, sorted by key so {a,b} and {b,a} name
// the same series.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q: want key, value pairs", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabelValue escapes a label value per the Prometheus 0.0.4 text
// exposition format: backslash, double-quote and newline get backslash
// escapes; everything else — including non-ASCII UTF-8 — passes through
// raw. (Go's %q was close but wrong: it hex/unicode-escapes control and
// non-ASCII bytes, which Prometheus parsers take literally.)
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// escapeHelp escapes HELP text per the 0.0.4 format: only backslash and
// newline are escaped (quotes are legal in HELP).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// --- handles -----------------------------------------------------------

// Counter is a monotonically increasing series. All methods are nil-safe
// no-ops, so optional instrumentation never branches.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 series that can move both ways. Nil-safe like Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// running-maximum idiom peak-memory series use.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Observe is lock-free; bucket
// bounds use Prometheus le semantics (a value lands in the first bucket
// whose upper bound is >= it). Nil-safe like Counter.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefMSBuckets returns the standard millisecond bucketing shared by the
// duration histograms: 1-2.5-5 decades from 0.1 ms to 10 s.
func DefMSBuckets() []float64 {
	return []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
}

// --- snapshots ---------------------------------------------------------

// BucketCount is one cumulative histogram bucket: observations <= LE.
type BucketCount struct {
	LE    float64
	Count uint64
}

// SeriesSnapshot is one series' frozen state.
type SeriesSnapshot struct {
	// Labels is the canonical `k="v",...` signature ("" when unlabeled).
	Labels string
	// Value carries counter and gauge readings.
	Value float64
	// Count, Sum and Buckets carry histogram readings.
	Count   uint64
	Sum     float64
	Buckets []BucketCount
}

// FamilySnapshot is one family's frozen state, series sorted by signature.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Series []SeriesSnapshot
}

// Snapshot freezes every family, sorted by name with series sorted by
// label signature — the deterministic order every exporter renders.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		f.mu.Lock()
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			fs.Series = append(fs.Series, snapshotSeries(sig, f.series[sig]))
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

func snapshotSeries(sig string, h any) SeriesSnapshot {
	s := SeriesSnapshot{Labels: sig}
	switch m := h.(type) {
	case *Counter:
		s.Value = float64(m.Value())
	case *Gauge:
		s.Value = m.Value()
	case *Histogram:
		s.Count = m.Count()
		s.Sum = m.Sum()
		cum := uint64(0)
		for i := range m.bounds {
			cum += m.counts[i].Load()
			s.Buckets = append(s.Buckets, BucketCount{LE: m.bounds[i], Count: cum})
		}
		cum += m.counts[len(m.bounds)].Load()
		s.Buckets = append(s.Buckets, BucketCount{LE: math.Inf(1), Count: cum})
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is byte-deterministic for identical
// recorded values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fs := range r.Snapshot() {
		if fs.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fs.Name, escapeHelp(fs.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fs.Name, fs.Kind); err != nil {
			return err
		}
		for _, s := range fs.Series {
			if err := writeSeries(w, fs, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fs FamilySnapshot, s SeriesSnapshot) error {
	switch fs.Kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(fs.Name, s.Labels), formatValue(s.Value))
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(fs.Name, s.Labels), formatValue(s.Value))
		return err
	case KindHistogram:
		for _, b := range s.Buckets {
			le := "+Inf"
			if !math.IsInf(b.LE, 1) {
				le = formatValue(b.LE)
			}
			labels := s.Labels
			if labels != "" {
				labels += ","
			}
			labels += `le="` + escapeLabelValue(le) + `"`
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", fs.Name, labels, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(fs.Name+"_sum", s.Labels), formatValue(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(fs.Name+"_count", s.Labels), s.Count)
		return err
	}
	return nil
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// expvarTargets maps each published expvar name to the registry currently
// backing it. expvar.Publish is write-once per process, so the published
// Func reads through this indirection: republishing a name with a
// different registry repoints the variable instead of silently serving the
// first registry's numbers forever.
var (
	expvarMu      sync.Mutex
	expvarTargets = map[string]*atomic.Pointer[Registry]{}
)

// PublishExpvar exposes the registry as one expvar variable under name
// (rendered as a JSON object of series name to value), so /debug/vars
// serves the same numbers /metrics does. expvar itself panics on duplicate
// Publish calls, so the name is published once per process with an
// indirection that always resolves the registry most recently mounted
// under it — a second DebugHandler with a different registry takes over
// /debug/vars instead of being silently shadowed by the first.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	p := expvarTargets[name]
	if p == nil {
		if expvar.Get(name) != nil {
			// The name is taken by a variable this package never published;
			// repointing it is impossible and claiming it would panic.
			return
		}
		p = &atomic.Pointer[Registry]{}
		p.Store(r) // before Publish: the Func must never observe a nil target
		expvarTargets[name] = p
		expvar.Publish(name, expvar.Func(func() any { return p.Load().expvarMap() }))
		return
	}
	p.Store(r)
}

func (r *Registry) expvarMap() map[string]any {
	out := map[string]any{}
	for _, fs := range r.Snapshot() {
		for _, s := range fs.Series {
			key := seriesName(fs.Name, s.Labels)
			if fs.Kind == KindHistogram {
				out[key] = map[string]any{"count": s.Count, "sum": s.Sum}
				continue
			}
			out[key] = s.Value
		}
	}
	return out
}
