// Package obs is the repository's observability core: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms with
// Prometheus text and expvar export), span-based tracing with an injectable
// clock, and structured logging on log/slog — all plumbed through
// context.Context so every pipeline layer (codec, cache, cloud exchange,
// worker pool) records into the same sinks without global wiring.
//
// Determinism contract: nothing in this package is allowed to leak wall
// time into measurement results. The experiment pipeline's figures come
// from modeled costs (compress.Stats); obs only *observes* them. Code in
// the measurement-path packages never calls time.Now directly (enforced by
// the dnalint clockinject analyzer) — it reads the Clock carried in the
// context, which is the system clock in CLIs, a Fake in tests, and
// irrelevant to grid bytes either way: with the same inputs, metric
// counters and modeled-time histograms are byte-identical across runs and
// -jobs values; only span wall durations vary, and those never feed a
// grid.
//
// Recording is always on and costs a handful of atomic updates (see
// BenchmarkInstrumentOverhead); "enabling observability" in the CLIs means
// *exporting* a snapshot (-metrics, -trace, -pprof), never changing what
// the pipeline computes.
package obs

import (
	"context"
	"io"
	"log/slog"
)

// ctxKey namespaces the context values this package owns.
type ctxKey int

const (
	clockKey ctxKey = iota
	loggerKey
	tracerKey
	spanKey
	metricsKey
	remoteParentKey
)

// WithClock returns a context carrying c as the ambient time source.
func WithClock(ctx context.Context, c Clock) context.Context {
	return context.WithValue(ctx, clockKey, c)
}

// ClockFrom returns the context's clock, or the system clock when none was
// installed, so callers can always read time through it.
func ClockFrom(ctx context.Context) Clock {
	if c, ok := ctx.Value(clockKey).(Clock); ok {
		return c
	}
	return System()
}

// WithLogger returns a context carrying l as the ambient structured logger.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Log returns the context's logger, or a discard logger when none was
// installed — instrumented code logs unconditionally and stays silent by
// default.
func Log(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return discardLogger
}

// NewLogger builds the standard repo logger: slog text lines at the given
// level. CLIs install it with WithLogger; tests pass a buffer.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// discardHandler drops every record. slog.DiscardHandler exists from Go
// 1.24; this keeps the module buildable at its declared go 1.22.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

var discardLogger = slog.New(discardHandler{})

// WithMetrics returns a context carrying reg as the ambient metrics
// registry.
func WithMetrics(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, metricsKey, reg)
}

// Metrics returns the context's registry, or the process default when none
// was installed.
func Metrics(ctx context.Context) *Registry {
	if r, ok := ctx.Value(metricsKey).(*Registry); ok && r != nil {
		return r
	}
	return Default()
}

// WithTracer returns a context carrying tr; subsequent Start calls under it
// record spans.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, tr)
}

// TracerFrom returns the context's tracer, or nil when tracing is off.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	return tr
}

// Start opens a span named name under the context's tracer and returns a
// child context carrying it, so nested Start calls become child spans.
// Without a tracer it returns (ctx, nil); the nil *Span is a no-op — End
// and SetAttr on it are safe — so instrumented code never branches on
// whether tracing is enabled.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	var parent *Span
	if p, ok := ctx.Value(spanKey).(*Span); ok && p != nil {
		parent = p
	}
	var remote RemoteParent
	if parent == nil {
		remote = RemoteParentFrom(ctx)
	}
	s := tr.start(name, parent, remote)
	return context.WithValue(ctx, spanKey, s), s
}

// SpanFrom returns the innermost span carried by ctx, nil when none.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}
