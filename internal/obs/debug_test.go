package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDebugServerBindsSynchronously: the satellite bugfix contract — a bad
// address fails at construction, not asynchronously from a goroutine, and
// ":0" is usable because the bound port is known.
func TestDebugServerBindsSynchronously(t *testing.T) {
	if _, err := NewDebugServer("256.256.256.256:99999", nil); err == nil {
		t.Fatal("bad address bound without error")
	}

	s, err := NewDebugServer("127.0.0.1:0", DebugHandler(NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	if addr := s.Addr(); strings.HasSuffix(addr, ":0") {
		t.Fatalf("Addr() = %q still reports port 0", addr)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()

	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after clean shutdown, want nil", err)
	}
	if _, err := http.Get(s.URL() + "/metrics"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestDebugServerShutdownBeforeServe: Shutdown on a bound-but-never-served
// server must release the listener and return promptly.
func TestDebugServerShutdownBeforeServe(t *testing.T) {
	s, err := NewDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown before Serve: %v", err)
	}
}

// TestDebugServerTimeoutsSet: the slowloris guards must be configured —
// the whole point of replacing the bare http.ListenAndServe.
func TestDebugServerTimeoutsSet(t *testing.T) {
	s, err := NewDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if s.srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slowloris-open")
	}
	if s.srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset")
	}
}

// TestPublishExpvarRemount: the satellite regression — mounting the
// handler with a second, different registry must repoint /debug/vars at
// the second registry's numbers, not keep serving the first forever.
func TestPublishExpvarRemount(t *testing.T) {
	name := fmt.Sprintf("test_remount_%d", time.Now().UnixNano())

	reg1 := NewRegistry()
	reg1.Counter("remount_first_total", "").Add(11)
	reg1.PublishExpvar(name)

	read := func() map[string]any {
		v := expvar.Get(name)
		if v == nil {
			t.Fatalf("expvar %q not published", name)
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
			t.Fatalf("expvar %q renders invalid JSON: %v", name, err)
		}
		return m
	}
	if m := read(); m["remount_first_total"] != 11.0 {
		t.Fatalf("first registry not served: %v", m)
	}

	reg2 := NewRegistry()
	reg2.Counter("remount_second_total", "").Add(22)
	reg2.PublishExpvar(name)

	m := read()
	if m["remount_second_total"] != 22.0 {
		t.Fatalf("second registry not served after remount: %v", m)
	}
	if _, stale := m["remount_first_total"]; stale {
		t.Fatalf("first registry still served after remount: %v", m)
	}
}

// TestPublishExpvarForeignNameUntouched: a name already taken by a
// non-registry expvar cannot be repointed; PublishExpvar must neither
// panic nor clobber it.
func TestPublishExpvarForeignNameUntouched(t *testing.T) {
	name := fmt.Sprintf("test_foreign_%d", time.Now().UnixNano())
	v := new(expvar.Int)
	v.Set(7)
	expvar.Publish(name, v)

	reg := NewRegistry()
	reg.Counter("foreign_total", "").Inc()
	reg.PublishExpvar(name) // must not panic
	if got := expvar.Get(name).String(); got != "7" {
		t.Fatalf("foreign expvar clobbered: %s", got)
	}
}
