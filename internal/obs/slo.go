package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The SLO engine turns raw obs series into service-level verdicts:
// declarative objectives ("99% of compress requests under 250 ms", "99.9%
// of requests succeed") are sampled on the injected clock and evaluated as
// multi-window burn rates — the Google-SRE alerting shape where a fast
// window (minutes) catches sudden cliffs and a slow window (an hour)
// catches slow bleeds, and an alert fires only while the error budget is
// actually being consumed faster than BurnAlert times the sustainable
// rate. Because sampling runs on an obs.Clock, unit tests with NewFake get
// exact, reproducible burn numbers.

// Objective is one declarative service-level objective. Exactly one of the
// two shapes is used:
//
//   - latency: Histogram + ThresholdMS. Good events are observations at or
//     under the threshold (read from the histogram's cumulative buckets, so
//     the threshold should sit on a bucket bound; otherwise the next lower
//     bound is used, which under-counts good events — the conservative
//     direction).
//   - availability: Total + Bad counters. Good events are Total − Bad.
type Objective struct {
	// Name identifies the objective in exports and verdicts.
	Name string
	// Target is the good-event ratio the objective promises, e.g. 0.99.
	Target float64

	// Histogram and ThresholdMS define a latency objective.
	Histogram   *Histogram
	ThresholdMS float64

	// Total and Bad define an availability objective.
	Total *Counter
	Bad   *Counter
}

// counts reads the objective's current cumulative good/total event counts.
func (o *Objective) counts() (good, total uint64) {
	if o.Histogram != nil {
		total = o.Histogram.Count()
		var cum uint64
		for i, bound := range o.Histogram.bounds {
			if bound > o.ThresholdMS {
				break
			}
			cum += o.Histogram.counts[i].Load()
		}
		return cum, total
	}
	total = o.Total.Value()
	bad := o.Bad.Value()
	if bad > total {
		bad = total
	}
	return total - bad, total
}

// SLOConfig tunes the engine's windows and alerting threshold. The zero
// value means the defaults noted per field.
type SLOConfig struct {
	// FastWindow is the short burn-rate window (default 5m).
	FastWindow time.Duration
	// SlowWindow is the long burn-rate window and the sample retention
	// horizon (default 1h).
	SlowWindow time.Duration
	// BurnAlert is the burn-rate multiple above which an objective alerts
	// on both windows (default 14.4 — the classic "2% of a 30-day budget
	// in one hour" multiplier).
	BurnAlert float64
	// MinSampleGap rate-limits sampling so per-request evaluation doesn't
	// grow the sample ring (default 1s).
	MinSampleGap time.Duration
	// MaxSamples bounds retained samples per objective (default 4096).
	MaxSamples int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.BurnAlert <= 0 {
		c.BurnAlert = 14.4
	}
	if c.MinSampleGap <= 0 {
		c.MinSampleGap = time.Second
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 4096
	}
	return c
}

// burnCap stands in for an infinite burn rate (error budget zero while
// errors arrive). Finite so statuses always survive json.Marshal.
const burnCap = 1e9

// SLOStatus is one objective's evaluation at a point in time.
type SLOStatus struct {
	Name       string  `json:"name"`
	Target     float64 `json:"target"`
	Good       uint64  `json:"good"`
	Total      uint64  `json:"total"`
	Compliance float64 `json:"compliance"`
	FastBurn   float64 `json:"fast_burn"`
	SlowBurn   float64 `json:"slow_burn"`
	Alert      bool    `json:"alert"`
	// Verdict is "ok", "burn" (both windows over BurnAlert) or "breach"
	// (cumulative compliance under target).
	Verdict string `json:"verdict"`
}

type sloSample struct {
	at          time.Time
	good, total uint64
}

type objectiveState struct {
	obj     Objective
	samples []sloSample

	compliance *Gauge
	fastBurn   *Gauge
	slowBurn   *Gauge
	target     *Gauge
	alert      *Gauge
}

// SLOEngine evaluates a fixed set of objectives on an injected clock and
// exports the results as dna_slo_* gauges. Safe for concurrent use.
type SLOEngine struct {
	clock Clock
	cfg   SLOConfig

	mu     sync.Mutex
	states []*objectiveState
}

// NewSLOEngine builds an engine over the objectives, sampling on clock
// (nil means system) and exporting dna_slo_* gauges into reg (nil means
// the process default registry).
func NewSLOEngine(clock Clock, reg *Registry, cfg SLOConfig, objectives ...Objective) *SLOEngine {
	if clock == nil {
		clock = System()
	}
	reg = OrDefault(reg)
	e := &SLOEngine{clock: clock, cfg: cfg.withDefaults()}
	for _, o := range objectives {
		e.states = append(e.states, &objectiveState{
			obj:        o,
			compliance: reg.Gauge("dna_slo_compliance", "Cumulative good/total event ratio per objective.", "objective", o.Name),
			fastBurn:   reg.Gauge("dna_slo_burn_rate", "Error-budget burn-rate multiple per objective and window.", "objective", o.Name, "window", "fast"),
			slowBurn:   reg.Gauge("dna_slo_burn_rate", "Error-budget burn-rate multiple per objective and window.", "objective", o.Name, "window", "slow"),
			target:     reg.Gauge("dna_slo_target", "Objective target ratio.", "objective", o.Name),
			alert:      reg.Gauge("dna_slo_alert", "1 while an objective's burn rate exceeds the alert threshold on both windows.", "objective", o.Name),
		})
	}
	return e
}

// Evaluate samples every objective (subject to MinSampleGap), computes
// compliance and fast/slow burn rates, refreshes the dna_slo_* gauges, and
// returns the statuses in objective order.
func (e *SLOEngine) Evaluate() []SLOStatus {
	if e == nil {
		return nil
	}
	now := e.clock.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.states))
	for _, st := range e.states {
		out = append(out, e.evaluateLocked(st, now))
	}
	return out
}

func (e *SLOEngine) evaluateLocked(st *objectiveState, now time.Time) SLOStatus {
	good, total := st.obj.counts()
	n := len(st.samples)
	if n == 0 || now.Sub(st.samples[n-1].at) >= e.cfg.MinSampleGap {
		st.samples = append(st.samples, sloSample{at: now, good: good, total: total})
		n++
	}
	// Prune: keep at most MaxSamples, and drop samples older than the slow
	// window except the newest such sample, which anchors the slow delta.
	horizon := now.Add(-e.cfg.SlowWindow)
	cut := sort.Search(n, func(i int) bool { return !st.samples[i].at.Before(horizon) })
	if cut > 0 {
		cut-- // retain one pre-horizon anchor
	}
	if over := n - cut - e.cfg.MaxSamples; over > 0 {
		cut += over
	}
	if cut > 0 {
		st.samples = append(st.samples[:0], st.samples[cut:]...)
	}

	status := SLOStatus{Name: st.obj.Name, Target: st.obj.Target, Good: good, Total: total, Compliance: 1}
	if total > 0 {
		status.Compliance = float64(good) / float64(total)
	}
	status.FastBurn = e.burnLocked(st, now, e.cfg.FastWindow, good, total)
	status.SlowBurn = e.burnLocked(st, now, e.cfg.SlowWindow, good, total)
	status.Alert = status.FastBurn >= e.cfg.BurnAlert && status.SlowBurn >= e.cfg.BurnAlert
	switch {
	case status.Alert:
		status.Verdict = "burn"
	case status.Compliance < status.Target:
		status.Verdict = "breach"
	default:
		status.Verdict = "ok"
	}

	st.compliance.Set(status.Compliance)
	st.fastBurn.Set(status.FastBurn)
	st.slowBurn.Set(status.SlowBurn)
	st.target.Set(status.Target)
	if status.Alert {
		st.alert.Set(1)
	} else {
		st.alert.Set(0)
	}
	return status
}

// burnLocked computes the burn-rate multiple over the trailing window: the
// window's error rate divided by the sustainable error rate (1 − target).
func (e *SLOEngine) burnLocked(st *objectiveState, now time.Time, window time.Duration, good, total uint64) float64 {
	start := now.Add(-window)
	// Newest sample at or before the window start; the oldest sample when
	// the whole history fits inside the window.
	base := st.samples[0]
	for _, s := range st.samples {
		if s.at.After(start) {
			break
		}
		base = s
	}
	dTotal := total - base.total
	dBad := (total - good) - (base.total - base.good)
	if dTotal == 0 {
		return 0
	}
	errRate := float64(dBad) / float64(dTotal)
	budget := 1 - st.obj.Target
	if budget <= 0 {
		if errRate > 0 {
			return burnCap
		}
		return 0
	}
	burn := errRate / budget
	if burn > burnCap {
		burn = burnCap
	}
	return burn
}

// Verdict folds statuses into one word: "pass" when every objective is
// "ok", otherwise "fail:" plus the comma-joined failing objective names.
func Verdict(statuses []SLOStatus) string {
	var failing []string
	for _, s := range statuses {
		if s.Verdict != "ok" {
			failing = append(failing, s.Name)
		}
	}
	if len(failing) == 0 {
		return "pass"
	}
	out := "fail:"
	for i, n := range failing {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

// Handler serves the current evaluation as an indented JSON document:
// {"verdict": "...", "objectives": [...]}.
func (e *SLOEngine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		statuses := e.Evaluate()
		if statuses == nil {
			statuses = []SLOStatus{}
		}
		doc := struct {
			Verdict    string      `json:"verdict"`
			Objectives []SLOStatus `json:"objectives"`
		}{Verdict: Verdict(statuses), Objectives: statuses}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}
