package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// This file is the distributed half of the tracing layer: W3C traceparent
// propagation, deterministic trace/span ID generation, and span-tree
// export. The serving stack parses an inbound traceparent into a
// RemoteParent, installs it with WithRemoteParent, and every span the
// request opens — serve handler, codec work, fleet replica ops — shares
// the caller's trace ID. IDs come from an injectable IDSource, so tests
// with a seeded source get byte-identical trace exports.

// IDSource generates trace and span identifiers. Implementations must be
// safe for concurrent use.
type IDSource interface {
	// TraceID returns a 32-hex-digit (16-byte) W3C trace ID, never all
	// zeros.
	TraceID() string
	// SpanID returns a 16-hex-digit (8-byte) W3C span ID, never all zeros.
	SpanID() string
}

// seededIDs is a deterministic IDSource: a splitmix64 stream keyed by the
// seed. With the same seed and the same draw order, the emitted IDs are
// identical — the property the serve tests and the obs-trace gate pin.
type seededIDs struct {
	mu    sync.Mutex
	state uint64
}

// NewSeededIDSource returns a deterministic IDSource seeded with seed.
// Concurrent callers serialize on an internal mutex; determinism holds for
// any serial draw order (one request at a time, or a single goroutine).
func NewSeededIDSource(seed uint64) IDSource { return &seededIDs{state: seed} }

// next advances the splitmix64 stream, skipping zero outputs so IDs are
// never the all-zero values the W3C spec declares invalid.
func (s *seededIDs) next() uint64 {
	for {
		s.state += 0x9e3779b97f4a7c15
		z := s.state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

func (s *seededIDs) TraceID() string {
	s.mu.Lock()
	hi, lo := s.next(), s.next()
	s.mu.Unlock()
	var b [16]byte
	putUint64(b[:8], hi)
	putUint64(b[8:], lo)
	return hex.EncodeToString(b[:])
}

func (s *seededIDs) SpanID() string {
	s.mu.Lock()
	v := s.next()
	s.mu.Unlock()
	var b [8]byte
	putUint64(b[:], v)
	return hex.EncodeToString(b[:])
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// RemoteParent is the cross-process parent of a request's root span, as
// carried by a W3C traceparent header: the caller's trace ID and the span
// that issued the request. The zero value means "no remote parent".
type RemoteParent struct {
	TraceID string
	SpanID  string
}

// FormatTraceparent renders a version-00 W3C traceparent header with the
// sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return fmt.Sprintf("00-%s-%s-01", traceID, spanID)
}

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-spanid-flags). It accepts any non-ff version with the
// standard field widths and rejects all-zero IDs, returning ok=false for
// anything malformed — a bad header means "untraced", never an error.
func ParseTraceparent(h string) (RemoteParent, bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return RemoteParent{}, false
	}
	version, traceID, spanID := h[0:2], h[3:35], h[36:52]
	if !isHex(version) || version == "ff" {
		return RemoteParent{}, false
	}
	if version == "00" && len(h) != 55 {
		return RemoteParent{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return RemoteParent{}, false
	}
	if !isHex(traceID) || !isHex(spanID) || !isHex(h[53:55]) {
		return RemoteParent{}, false
	}
	if allZero(traceID) || allZero(spanID) {
		return RemoteParent{}, false
	}
	return RemoteParent{TraceID: traceID, SpanID: spanID}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// WithRemoteParent returns a context carrying rp as the cross-process
// parent: the next Start call that opens a *root* span (no in-process
// parent span in the context) joins rp's trace instead of minting a new
// one. Child spans always inherit from their in-process parent.
func WithRemoteParent(ctx context.Context, rp RemoteParent) context.Context {
	return context.WithValue(ctx, remoteParentKey, rp)
}

// RemoteParentFrom returns the context's remote parent, zero when none was
// installed.
func RemoteParentFrom(ctx context.Context) RemoteParent {
	rp, _ := ctx.Value(remoteParentKey).(RemoteParent)
	return rp
}

// SpanTree is one span with its children nested inside — the export shape
// of a request trace (?trace=1, the -trace sink, the selftest gate).
type SpanTree struct {
	Name          string      `json:"name"`
	TraceID       string      `json:"trace_id,omitempty"`
	SpanID        string      `json:"span_id,omitempty"`
	ParentSpanID  string      `json:"parent_span_id,omitempty"`
	StartUnixNano int64       `json:"start_unix_nano"`
	DurationNS    int64       `json:"duration_ns"`
	Attrs         []Attr      `json:"attrs,omitempty"`
	Children      []*SpanTree `json:"children,omitempty"`
}

// Walk visits the tree depth-first, t before its children.
func (t *SpanTree) Walk(fn func(*SpanTree)) {
	if t == nil {
		return
	}
	fn(t)
	for _, c := range t.Children {
		c.Walk(fn)
	}
}

// Find returns the first node named name in depth-first order, or nil.
func (t *SpanTree) Find(name string) *SpanTree {
	var hit *SpanTree
	t.Walk(func(n *SpanTree) {
		if hit == nil && n.Name == name {
			hit = n
		}
	})
	return hit
}

// BuildSpanTree nests finished span records by their in-process parent
// links and returns the roots. Children are ordered by start order (span
// creation), roots likewise, so the same records always build the same
// tree bytes.
func BuildSpanTree(records []SpanRecord) []*SpanTree {
	nodes := make(map[int]*SpanTree, len(records))
	order := make(map[*SpanTree]int, len(records))
	for _, r := range records {
		n := &SpanTree{
			Name:          r.Name,
			TraceID:       r.TraceID,
			SpanID:        r.SpanID,
			ParentSpanID:  r.ParentSpanID,
			StartUnixNano: r.StartUnixNano,
			DurationNS:    r.DurationNS,
			Attrs:         r.Attrs,
		}
		nodes[r.ID] = n
		order[n] = r.ID
	}
	var roots []*SpanTree
	for _, r := range records {
		n := nodes[r.ID]
		if p, ok := nodes[r.Parent]; ok && r.Parent != r.ID {
			p.Children = append(p.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	sortTrees := func(ts []*SpanTree) {
		sort.Slice(ts, func(i, j int) bool { return order[ts[i]] < order[ts[j]] })
	}
	sortTrees(roots)
	for _, n := range nodes {
		sortTrees(n.Children)
	}
	return roots
}

// Tree returns the tracer's finished spans nested as trees (see
// BuildSpanTree).
func (t *Tracer) Tree() []*SpanTree { return BuildSpanTree(t.Records()) }
