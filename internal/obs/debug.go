package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the observability HTTP surface for reg (nil means
// the default registry):
//
//	/metrics        Prometheus text exposition
//	/debug/vars     expvar JSON (registry published as "ctxdna_metrics")
//	/debug/pprof/*  runtime profiling (CPU, heap, goroutine, trace, ...)
//
// Exposed as a handler so CLIs can mount it on any listener.
func DebugHandler(reg *Registry) http.Handler {
	reg = OrDefault(reg)
	reg.PublishExpvar("ctxdna_metrics")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug serves DebugHandler(reg) on addr, blocking until the listener
// fails. Long sweeps run it in a goroutine (-pprof flag) so profiles and
// live metrics are scrapable mid-run.
func ServeDebug(addr string, reg *Registry) error {
	return http.ListenAndServe(addr, DebugHandler(reg))
}
