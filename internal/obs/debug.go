package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// DebugHandler returns the observability HTTP surface for reg (nil means
// the default registry):
//
//	/metrics        Prometheus text exposition
//	/debug/vars     expvar JSON (registry published as "ctxdna_metrics")
//	/debug/pprof/*  runtime profiling (CPU, heap, goroutine, trace, ...)
//
// Exposed as a handler so CLIs can mount it on any listener. Mounting a
// second handler with a different registry repoints /debug/vars at the new
// registry (see Registry.PublishExpvar).
func DebugHandler(reg *Registry) http.Handler {
	reg = OrDefault(reg)
	reg.PublishExpvar("ctxdna_metrics")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is the lifecycle-managed HTTP server behind ServeDebug and
// the dnacompd daemon: the listener is bound synchronously in
// NewDebugServer (so a bad address fails before any goroutine spawns, and
// ":0" is usable because Addr reports the kernel-assigned port), serving
// happens in Serve, and Shutdown drains in-flight requests. Header-read
// and idle timeouts bound how long a dribbling client can pin a
// connection, closing the slowloris hole a bare ListenAndServe leaves
// open.
type DebugServer struct {
	srv     *http.Server
	ln      net.Listener
	started atomic.Bool
	done    chan struct{}
}

// NewDebugServer binds addr and prepares to serve h on it. The bind is
// synchronous: an unusable address is reported here, not from whatever
// goroutine later calls Serve. h == nil mounts DebugHandler(nil).
func NewDebugServer(addr string, h http.Handler) (*DebugServer, error) {
	if h == nil {
		h = DebugHandler(nil)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &DebugServer{
		srv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
		ln:   ln,
		done: make(chan struct{}),
	}, nil
}

// Addr returns the listener's actual address — for ":0" the port the
// kernel assigned.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// URL returns the http base URL of the bound listener.
func (s *DebugServer) URL() string { return "http://" + s.Addr() }

// Serve accepts connections until Shutdown (or a listener failure) and
// returns nil on a clean shutdown. It blocks; callers wanting a background
// server spawn it in a goroutine after NewDebugServer has proven the bind.
func (s *DebugServer) Serve() error {
	s.started.Store(true)
	defer close(s.done)
	if err := s.srv.Serve(s.ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Shutdown stops accepting new connections and waits — bounded by ctx —
// for in-flight requests to drain, then for Serve to return. Safe to call
// whether or not Serve has been started; calling it before Serve just
// closes the listener.
func (s *DebugServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if s.started.Load() {
		select {
		case <-s.done:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	}
	return err
}

// ServeDebug serves DebugHandler(reg) on addr, blocking until the listener
// fails. Long sweeps run it in a goroutine (-pprof flag) so profiles and
// live metrics are scrapable mid-run; CLIs that need the bind error
// synchronously (or a graceful drain) use NewDebugServer directly.
func ServeDebug(addr string, reg *Registry) error {
	s, err := NewDebugServer(addr, DebugHandler(reg))
	if err != nil {
		return err
	}
	return s.Serve()
}
