package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func fakeAt(sec int64) *Fake { return NewFake(time.Unix(sec, 0).UTC()) }

// TestSpanFakeClockDurations: with a Fake clock, span durations are exact,
// not approximate.
func TestSpanFakeClockDurations(t *testing.T) {
	clk := fakeAt(1000)
	tr := NewTracer(clk)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "exchange")
	clk.Advance(5 * time.Millisecond)
	_, child := Start(ctx, "exchange.put")
	child.SetAttr("attempts", 2)
	clk.Advance(7 * time.Millisecond)
	child.End()
	clk.Advance(3 * time.Millisecond)
	root.SetAttr("ok", true)
	root.End()

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	// End order: child first.
	c, r := recs[0], recs[1]
	if c.Name != "exchange.put" || r.Name != "exchange" {
		t.Fatalf("names = %q, %q", c.Name, r.Name)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent = %d, root id = %d", c.Parent, r.ID)
	}
	if r.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", r.Parent)
	}
	if want := (7 * time.Millisecond).Nanoseconds(); c.DurationNS != want {
		t.Fatalf("child duration = %d, want %d", c.DurationNS, want)
	}
	if want := (15 * time.Millisecond).Nanoseconds(); r.DurationNS != want {
		t.Fatalf("root duration = %d, want %d", r.DurationNS, want)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "attempts" {
		t.Fatalf("child attrs = %+v", c.Attrs)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	clk := fakeAt(0)
	tr := NewTracer(clk)
	_, s := Start(WithTracer(context.Background(), tr), "op")
	clk.Advance(time.Millisecond)
	s.End()
	clk.Advance(time.Hour)
	s.End()
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("%d records after double End, want 1", len(recs))
	}
	if recs[0].DurationNS != time.Millisecond.Nanoseconds() {
		t.Fatalf("duration = %d, want first-End duration", recs[0].DurationNS)
	}
}

// TestStartWithoutTracer: no tracer in context means nil span, and every
// method on a nil span is a no-op.
func TestStartWithoutTracer(t *testing.T) {
	ctx, s := Start(context.Background(), "op")
	if s != nil {
		t.Fatal("Start without tracer returned a live span")
	}
	s.SetAttr("k", "v")
	s.End()
	if ctx == nil {
		t.Fatal("Start returned nil context")
	}
}

func TestWriteJSON(t *testing.T) {
	clk := fakeAt(42)
	tr := NewTracer(clk)
	_, s := Start(WithTracer(context.Background(), tr), "grid")
	s.SetAttr("rows", 9)
	clk.Advance(2 * time.Second)
	s.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "grid" ||
		doc.Spans[0].DurationNS != (2*time.Second).Nanoseconds() {
		t.Fatalf("decoded spans = %+v", doc.Spans)
	}
}

func TestContextDefaults(t *testing.T) {
	ctx := context.Background()
	if ClockFrom(ctx) == nil {
		t.Fatal("ClockFrom returned nil for empty context")
	}
	if Log(ctx) == nil {
		t.Fatal("Log returned nil for empty context")
	}
	// Default logger must swallow output without panicking.
	Log(ctx).Info("discarded", "k", "v")
	if Metrics(ctx) == nil {
		t.Fatal("Metrics returned nil for empty context")
	}
	if TracerFrom(ctx) != nil {
		t.Fatal("TracerFrom returned a tracer for empty context")
	}
}

func TestContextInjection(t *testing.T) {
	clk := fakeAt(7)
	reg := NewRegistry()
	tr := NewTracer(clk)
	var logBuf bytes.Buffer
	lg := NewLogger(&logBuf, nil)

	ctx := WithClock(context.Background(), clk)
	ctx = WithMetrics(ctx, reg)
	ctx = WithTracer(ctx, tr)
	ctx = WithLogger(ctx, lg)

	if ClockFrom(ctx) != Clock(clk) {
		t.Fatal("ClockFrom did not round-trip")
	}
	if Metrics(ctx) != reg {
		t.Fatal("Metrics did not round-trip")
	}
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom did not round-trip")
	}
	Log(ctx).Info("hello")
	if !bytes.Contains(logBuf.Bytes(), []byte("hello")) {
		t.Fatalf("injected logger did not receive output: %q", logBuf.String())
	}
}

func TestFakeClock(t *testing.T) {
	f := fakeAt(100)
	t0 := f.Now()
	f.Advance(90 * time.Second)
	if got := f.Since(t0); got != 90*time.Second {
		t.Fatalf("Since = %v, want 90s", got)
	}
	f.Set(time.Unix(5000, 0).UTC())
	if got := f.Now().Unix(); got != 5000 {
		t.Fatalf("Set: Now = %d, want 5000", got)
	}
}
