package obs

import (
	"strings"
	"testing"
)

// TestPrometheusEscapingGolden pins the 0.0.4 exposition escaping with
// hostile codec/shard names: backslash, double-quote and newline must be
// backslash-escaped in label values, HELP escapes backslash and newline
// only, and non-ASCII UTF-8 passes through raw (Go's %q used to mangle it
// into \uNNNN escapes, which Prometheus parsers read literally).
func TestPrometheusEscapingGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(
		"dna_requests_total",
		`requests per codec\shard ("sealed" frames)`+"\nsecond line",
		"codec", `dna\x "quoted"`+"\nnl",
		"shard", "ssd-东-1",
	).Add(3)
	reg.Histogram("dna_lat_ms", "latency", []float64{1, 10}, "shard", `a\b`).Observe(5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP dna_lat_ms latency
# TYPE dna_lat_ms histogram
dna_lat_ms_bucket{shard="a\\b",le="1"} 0
dna_lat_ms_bucket{shard="a\\b",le="10"} 1
dna_lat_ms_bucket{shard="a\\b",le="+Inf"} 1
dna_lat_ms_sum{shard="a\\b"} 5
dna_lat_ms_count{shard="a\\b"} 1
# HELP dna_requests_total requests per codec\\shard ("sealed" frames)\nsecond line
# TYPE dna_requests_total counter
dna_requests_total{codec="dna\\x \"quoted\"\nnl",shard="ssd-东-1"} 3
`
	if got != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestEscapeLabelValueNoAlloc(t *testing.T) {
	clean := "plain-ascii_codec.1"
	if out := escapeLabelValue(clean); out != clean {
		t.Fatalf("clean value changed: %q", out)
	}
	if out := escapeHelp("no escapes here"); out != "no escapes here" {
		t.Fatalf("clean help changed: %q", out)
	}
}

func TestLabelSignatureCanonical(t *testing.T) {
	a := labelSignature([]string{"b", "2", "a", "1"})
	b := labelSignature([]string{"a", "1", "b", "2"})
	if a != b || a != `a="1",b="2"` {
		t.Fatalf("signatures not canonical: %q vs %q", a, b)
	}
}
