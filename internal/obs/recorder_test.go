package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(RequestRecord{Endpoint: fmt.Sprintf("r%d", i)})
	}
	if got := f.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot kept %d records, want 4", len(snap))
	}
	for i, r := range snap {
		wantSeq := uint64(7 + i) // records 7..10, oldest first
		wantEp := fmt.Sprintf("r%d", 6+i)
		if r.Seq != wantSeq || r.Endpoint != wantEp {
			t.Fatalf("slot %d = seq %d endpoint %q, want seq %d endpoint %q", i, r.Seq, r.Endpoint, wantSeq, wantEp)
		}
	}
}

func TestFlightRecorderConcurrentWriters(t *testing.T) {
	for _, jobs := range []int{4, 8} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs%d", jobs), func(t *testing.T) {
			f := NewFlightRecorder(64)
			const perWriter = 200
			var wg sync.WaitGroup
			for w := 0; w < jobs; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						f.Record(RequestRecord{Endpoint: fmt.Sprintf("w%d", w), Status: 200, Outcome: "ok"})
						_ = f.Snapshot() // readers race writers
					}
				}(w)
			}
			wg.Wait()
			if got := f.Total(); got != uint64(jobs*perWriter) {
				t.Fatalf("Total = %d, want %d", got, jobs*perWriter)
			}
			snap := f.Snapshot()
			if len(snap) != 64 {
				t.Fatalf("snapshot kept %d, want 64", len(snap))
			}
			seen := map[uint64]bool{}
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq <= snap[i-1].Seq {
					t.Fatalf("snapshot not in sequence order at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
				}
			}
			for _, r := range snap {
				if seen[r.Seq] {
					t.Fatalf("duplicate seq %d", r.Seq)
				}
				seen[r.Seq] = true
			}
		})
	}
}

func TestFlightRecorderOnError(t *testing.T) {
	f := NewFlightRecorder(8)
	var mu sync.Mutex
	var fired []RequestRecord
	var ringLen int
	f.OnError = func(failed RequestRecord, recent []RequestRecord) {
		mu.Lock()
		fired = append(fired, failed)
		ringLen = len(recent)
		mu.Unlock()
	}
	f.Record(RequestRecord{Endpoint: "a", Outcome: "ok"})
	f.Record(RequestRecord{Endpoint: "b", Outcome: "error", Error: "boom"})
	f.Record(RequestRecord{Endpoint: "c", Outcome: "rejected"})
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[0].Endpoint != "b" || fired[0].Error != "boom" {
		t.Fatalf("OnError fired %d times / %+v, want once for b", len(fired), fired)
	}
	if ringLen != 2 {
		t.Fatalf("OnError saw %d recent records, want 2", ringLen)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(RequestRecord{}) // must not panic
	if f.Snapshot() != nil || f.Total() != 0 {
		t.Fatalf("nil recorder not inert")
	}
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
	var doc struct {
		Total    uint64          `json:"total"`
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("nil handler emitted invalid JSON: %v", err)
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(RequestRecord{
		TraceID:  "abc123",
		Endpoint: "compress",
		Origin:   "organic",
		Codec:    "dnax",
		Status:   200,
		Outcome:  "ok",
		Shards:   []string{"ssd-east", "hdd-archive"},
		Breakers: map[string]string{"ssd-east": "closed"},
	})
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
	var doc struct {
		Total    uint64          `json:"total"`
		Capacity int             `json:"capacity"`
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rr.Body.String())
	}
	if doc.Total != 1 || doc.Capacity != 4 || len(doc.Requests) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	r := doc.Requests[0]
	if r.TraceID != "abc123" || r.Codec != "dnax" || len(r.Shards) != 2 || r.Breakers["ssd-east"] != "closed" {
		t.Fatalf("attribution lost: %+v", r)
	}
}
