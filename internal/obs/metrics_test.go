package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "ops", "codec", "dnax")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Re-resolve the series in every worker to exercise the registry
			// lookup path under contention too.
			cc := reg.Counter("ops_total", "ops", "codec", "dnax")
			for i := 0; i < perWorker; i++ {
				cc.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestSameSeriesRegardlessOfLabelOrder(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "", "a", "1", "b", "2")
	b := reg.Counter("x_total", "", "b", "2", "a", "1")
	if a != b {
		t.Fatal("label order created distinct series")
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("clash", "")
}

func TestOddLabelsPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	reg.Counter("x_total", "", "key-without-value")
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("workers_busy", "")
	g.Set(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %v, want 1", got)
	}
	g.SetMax(0.5) // below current: no-op
	if got := g.Value(); got != 1 {
		t.Fatalf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax = %v, want 7", got)
	}
}

// TestHistogramBucketEdges pins le semantics: a value exactly on a bucket
// bound counts in that bucket, just above it spills into the next, beyond
// the last bound lands in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ms", "", []float64{1, 2, 5})
	for _, v := range []float64{1.0, 1.000001, 2.0, 5.0, 5.1, 0.2} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	s := snap[0].Series[0]
	// Cumulative: le=1 -> {1.0, 0.2}; le=2 -> +{1.000001, 2.0}; le=5 -> +{5.0}; +Inf -> +{5.1}.
	want := []struct {
		le    float64
		count uint64
	}{{1, 2}, {2, 4}, {5, 5}, {math.Inf(1), 6}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("%d buckets, want %d", len(s.Buckets), len(want))
	}
	for i, w := range want {
		if s.Buckets[i].LE != w.le || s.Buckets[i].Count != w.count {
			t.Errorf("bucket %d = {le %v, n %d}, want {le %v, n %d}",
				i, s.Buckets[i].LE, s.Buckets[i].Count, w.le, w.count)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-14.300001) > 1e-9 {
		t.Errorf("sum = %v, want 14.300001", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("d_ms", "", DefMSBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 50))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

// TestNilHandlesAreNoops: disabled instrumentation is a nil handle, and
// every method on it must be safe.
func TestNilHandlesAreNoops(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles reported nonzero values")
	}
}

// TestPrometheusGolden pins the exact text exposition: family order,
// series order, escaping, histogram rendering.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dna_codec_calls_total", "Codec operations executed.", "codec", "dnax", "op", "compress").Add(3)
	reg.Counter("dna_codec_calls_total", "Codec operations executed.", "codec", "ctw", "op", "compress").Add(1)
	reg.Gauge("dna_grid_workers_busy", "Workers currently executing a run.").Set(2)
	h := reg.Histogram("dna_codec_model_ms", "Modeled codec milliseconds.", []float64{1, 10}, "codec", "dnax")
	h.Observe(0.5)
	h.Observe(4)
	h.Observe(40)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dna_codec_calls_total Codec operations executed.
# TYPE dna_codec_calls_total counter
dna_codec_calls_total{codec="ctw",op="compress"} 1
dna_codec_calls_total{codec="dnax",op="compress"} 3
# HELP dna_codec_model_ms Modeled codec milliseconds.
# TYPE dna_codec_model_ms histogram
dna_codec_model_ms_bucket{codec="dnax",le="1"} 1
dna_codec_model_ms_bucket{codec="dnax",le="10"} 2
dna_codec_model_ms_bucket{codec="dnax",le="+Inf"} 3
dna_codec_model_ms_sum{codec="dnax"} 44.5
dna_codec_model_ms_count{codec="dnax"} 3
# HELP dna_grid_workers_busy Workers currently executing a run.
# TYPE dna_grid_workers_busy gauge
dna_grid_workers_busy 2
`
	if got := buf.String(); got != want {
		t.Fatalf("Prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusDeterministic: two writes of the same registry state are
// byte-identical.
func TestPrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	for _, codec := range []string{"gzip", "ctw", "dnax", "gencompress"} {
		reg.Counter("calls_total", "", "codec", codec).Add(uint64(len(codec)))
	}
	var a, b bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two snapshots of identical state differ")
	}
}

func TestExpvarAndDebugHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dna_cache_hits_total", "Cache hits.").Add(42)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "dna_cache_hits_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	vars := get("/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := decoded["ctxdna_metrics"]; !ok {
		t.Fatalf("/debug/vars missing ctxdna_metrics: %s", vars)
	}
	if pprofIndex := get("/debug/pprof/"); !strings.Contains(pprofIndex, "goroutine") {
		t.Fatal("/debug/pprof/ index not served")
	}
}
