package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one span attribute. Attributes keep insertion order so exported
// traces are stable for a deterministic caller.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is one finished span as exported by Tracer.Records and
// WriteJSON. Durations come from the tracer's Clock, so a Fake clock makes
// them exact test fixtures.
type SpanRecord struct {
	ID            int    `json:"id"`
	Parent        int    `json:"parent,omitempty"`
	Name          string `json:"name"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNS    int64  `json:"duration_ns"`
	Attrs         []Attr `json:"attrs,omitempty"`

	// Distributed identity (W3C trace-context), present only on tracers
	// built with NewTracerWithIDs or when the root joined a RemoteParent.
	// omitempty keeps plain-tracer JSON exports byte-identical to before.
	TraceID      string `json:"trace_id,omitempty"`
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
}

// Tracer collects finished spans. Create one per run (NewTracer), install
// it with WithTracer, open spans with Start, and export with Records or
// WriteJSON. Safe for concurrent use.
type Tracer struct {
	clock Clock
	ids   IDSource // nil: spans carry local int IDs only

	mu       sync.Mutex
	nextID   int
	finished []SpanRecord
}

// NewTracer returns a tracer timing spans on clock (nil means the system
// clock).
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = System()
	}
	return &Tracer{clock: clock}
}

// NewTracerWithIDs returns a tracer whose spans additionally carry W3C
// trace/span IDs drawn from ids. A root span mints a fresh trace ID (or
// joins the context's RemoteParent); children inherit the trace ID and
// link to their parent's span ID. A seeded IDSource makes the whole
// export deterministic.
func NewTracerWithIDs(clock Clock, ids IDSource) *Tracer {
	t := NewTracer(clock)
	t.ids = ids
	return t
}

func (t *Tracer) start(name string, parent *Span, remote RemoteParent) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	s := &Span{tracer: t, id: id, name: name, start: t.clock.Now()}
	if parent != nil {
		s.parent = parent.id
		s.traceID = parent.traceID
		s.parentSpanID = parent.spanID
	} else if remote.TraceID != "" {
		s.traceID = remote.TraceID
		s.parentSpanID = remote.SpanID
	} else if t.ids != nil {
		s.traceID = t.ids.TraceID()
	}
	if s.traceID != "" && t.ids != nil {
		s.spanID = t.ids.SpanID()
	}
	return s
}

// Records returns a copy of the finished spans in End order.
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.finished...)
}

// WriteJSON renders the finished spans as an indented JSON document:
// {"spans": [...]}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string][]SpanRecord{"spans": t.Records()})
}

// Span is one in-flight operation. A nil *Span (tracing off) is a valid
// no-op receiver for every method.
type Span struct {
	tracer *Tracer
	id     int
	parent int
	name   string
	start  time.Time

	traceID      string
	spanID       string
	parentSpanID string

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// TraceID returns the span's W3C trace ID ("" on a plain tracer or nil
// span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's W3C span ID ("" on a plain tracer or nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// Traceparent renders the span as an outbound W3C traceparent header, ""
// when the span has no distributed identity.
func (s *Span) Traceparent() string {
	if s == nil || s.traceID == "" || s.spanID == "" {
		return ""
	}
	return FormatTraceparent(s.traceID, s.spanID)
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span, measuring its duration on the tracer's clock and
// handing the record to the tracer. Second and later End calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		ID:            s.id,
		Parent:        s.parent,
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationNS:    s.tracer.clock.Since(s.start).Nanoseconds(),
		Attrs:         append([]Attr(nil), s.attrs...),
		TraceID:       s.traceID,
		SpanID:        s.spanID,
		ParentSpanID:  s.parentSpanID,
	}
	s.mu.Unlock()

	s.tracer.mu.Lock()
	s.tracer.finished = append(s.tracer.finished, rec)
	s.tracer.mu.Unlock()
}
