package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one span attribute. Attributes keep insertion order so exported
// traces are stable for a deterministic caller.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is one finished span as exported by Tracer.Records and
// WriteJSON. Durations come from the tracer's Clock, so a Fake clock makes
// them exact test fixtures.
type SpanRecord struct {
	ID            int    `json:"id"`
	Parent        int    `json:"parent,omitempty"`
	Name          string `json:"name"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNS    int64  `json:"duration_ns"`
	Attrs         []Attr `json:"attrs,omitempty"`
}

// Tracer collects finished spans. Create one per run (NewTracer), install
// it with WithTracer, open spans with Start, and export with Records or
// WriteJSON. Safe for concurrent use.
type Tracer struct {
	clock Clock

	mu       sync.Mutex
	nextID   int
	finished []SpanRecord
}

// NewTracer returns a tracer timing spans on clock (nil means the system
// clock).
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = System()
	}
	return &Tracer{clock: clock}
}

func (t *Tracer) start(name string, parent int) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tracer: t, id: id, parent: parent, name: name, start: t.clock.Now()}
}

// Records returns a copy of the finished spans in End order.
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.finished...)
}

// WriteJSON renders the finished spans as an indented JSON document:
// {"spans": [...]}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string][]SpanRecord{"spans": t.Records()})
}

// Span is one in-flight operation. A nil *Span (tracing off) is a valid
// no-op receiver for every method.
type Span struct {
	tracer *Tracer
	id     int
	parent int
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span, measuring its duration on the tracer's clock and
// handing the record to the tracer. Second and later End calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		ID:            s.id,
		Parent:        s.parent,
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationNS:    s.tracer.clock.Since(s.start).Nanoseconds(),
		Attrs:         append([]Attr(nil), s.attrs...),
	}
	s.mu.Unlock()

	s.tracer.mu.Lock()
	s.tracer.finished = append(s.tracer.finished, rec)
	s.tracer.mu.Unlock()
}
