package obs

import (
	"sync"
	"time"
)

// Clock abstracts the time source so measurement-path packages never read
// the wall clock directly (the dnalint clockinject analyzer enforces
// this). CLIs inject System(); tests inject a Fake and advance it by hand;
// the experiment grid ignores wall time entirely and runs on modeled cost
// figures, so its outputs stay byte-deterministic either way.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
}

// System returns the real wall clock.
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time                  { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration { return time.Since(t) }

// Fake is a manually-advanced Clock for tests: time moves only when
// Advance or Set is called, so span durations and reporter output are
// exact, reproducible values. Safe for concurrent use.
type Fake struct {
	mu sync.Mutex
	t  time.Time
}

// NewFake returns a Fake frozen at start.
func NewFake(start time.Time) *Fake { return &Fake{t: start} }

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

// Since returns the fake-clock time elapsed since t.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Advance moves the fake clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// Set jumps the fake clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	f.t = t
	f.mu.Unlock()
}
