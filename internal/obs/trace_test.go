package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSeededIDSourceDeterministic(t *testing.T) {
	a := NewSeededIDSource(42)
	b := NewSeededIDSource(42)
	for i := 0; i < 16; i++ {
		at, bt := a.TraceID(), b.TraceID()
		if at != bt {
			t.Fatalf("draw %d: trace IDs diverge: %s vs %s", i, at, bt)
		}
		if len(at) != 32 || !isHex(at) || allZero(at) {
			t.Fatalf("bad trace ID %q", at)
		}
		as, bs := a.SpanID(), b.SpanID()
		if as != bs {
			t.Fatalf("draw %d: span IDs diverge: %s vs %s", i, as, bs)
		}
		if len(as) != 16 || !isHex(as) || allZero(as) {
			t.Fatalf("bad span ID %q", as)
		}
	}
	if NewSeededIDSource(1).TraceID() == NewSeededIDSource(2).TraceID() {
		t.Fatalf("different seeds produced the same trace ID")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	ids := NewSeededIDSource(7)
	tid, sid := ids.TraceID(), ids.SpanID()
	h := FormatTraceparent(tid, sid)
	rp, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent rejected own output %q", h)
	}
	if rp.TraceID != tid || rp.SpanID != sid {
		t.Fatalf("round trip: got %+v want %s/%s", rp, tid, sid)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header rejected")
	}
	// version 01 with trailing extra field is legal per spec
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Fatalf("future-version header with extra field rejected")
	}
	bad := []string{
		"",
		"00",
		valid[:54],  // truncated
		valid + "x", // version 00 must be exactly 55 chars
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff forbidden
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e47ZZ-00f067aa0ba902b7-01", // non-hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex forbidden
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent accepted %q", h)
		}
	}
}

func TestTracerWithIDsInheritance(t *testing.T) {
	clock := NewFake(time.Unix(0, 0))
	tr := NewTracerWithIDs(clock, NewSeededIDSource(2015))
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root")
	childCtx, child := Start(ctx, "child")
	_, grand := Start(childCtx, "grandchild")
	grand.End()
	child.End()
	root.End()

	if root.TraceID() == "" || root.SpanID() == "" {
		t.Fatalf("root missing IDs: %q/%q", root.TraceID(), root.SpanID())
	}
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatalf("children did not inherit the trace ID")
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["child"].ParentSpanID != byName["root"].SpanID {
		t.Fatalf("child parent span ID %q != root span ID %q", byName["child"].ParentSpanID, byName["root"].SpanID)
	}
	if byName["grandchild"].ParentSpanID != byName["child"].SpanID {
		t.Fatalf("grandchild parent span ID mismatch")
	}
	if byName["root"].ParentSpanID != "" {
		t.Fatalf("root should have no parent span ID, got %q", byName["root"].ParentSpanID)
	}
}

func TestRemoteParentJoinsTrace(t *testing.T) {
	clock := NewFake(time.Unix(0, 0))
	tr := NewTracerWithIDs(clock, NewSeededIDSource(1))
	rp := RemoteParent{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}
	ctx := WithRemoteParent(WithTracer(context.Background(), tr), rp)

	ctx, root := Start(ctx, "serve.compress")
	_, child := Start(ctx, "codec.work")
	child.End()
	root.End()

	if root.TraceID() != rp.TraceID {
		t.Fatalf("root trace ID %q did not join remote parent %q", root.TraceID(), rp.TraceID)
	}
	if child.TraceID() != rp.TraceID {
		t.Fatalf("child trace ID %q escaped the remote trace", child.TraceID())
	}
	recs := tr.Records()
	for _, r := range recs {
		if r.Name == "serve.compress" && r.ParentSpanID != rp.SpanID {
			t.Fatalf("root parent span ID %q != remote span ID %q", r.ParentSpanID, rp.SpanID)
		}
	}
	if got := root.Traceparent(); !strings.HasPrefix(got, "00-"+rp.TraceID+"-") {
		t.Fatalf("outbound traceparent %q not in remote trace", got)
	}
}

func TestPlainTracerHasNoDistributedIDs(t *testing.T) {
	tr := NewTracer(NewFake(time.Unix(0, 0)))
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "op")
	s.End()
	rec := tr.Records()[0]
	if rec.TraceID != "" || rec.SpanID != "" || rec.ParentSpanID != "" {
		t.Fatalf("plain tracer leaked distributed IDs: %+v", rec)
	}
	if s.Traceparent() != "" {
		t.Fatalf("plain span rendered a traceparent")
	}
}

func TestBuildSpanTree(t *testing.T) {
	clock := NewFake(time.Unix(0, 0))
	tr := NewTracerWithIDs(clock, NewSeededIDSource(3))
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "serve.compress")
	cctx, codec := Start(ctx, "codec.dnax")
	_, put := Start(cctx, "fleet.put")
	put.End()
	codec.End()
	_, store := Start(ctx, "serve.store")
	store.End()
	root.End()

	trees := tr.Tree()
	if len(trees) != 1 {
		t.Fatalf("got %d roots, want 1", len(trees))
	}
	r := trees[0]
	if r.Name != "serve.compress" || len(r.Children) != 2 {
		t.Fatalf("bad root %q with %d children", r.Name, len(r.Children))
	}
	if r.Children[0].Name != "codec.dnax" || r.Children[1].Name != "serve.store" {
		t.Fatalf("children out of start order: %s, %s", r.Children[0].Name, r.Children[1].Name)
	}
	if f := r.Find("fleet.put"); f == nil || f.TraceID != r.TraceID {
		t.Fatalf("fleet.put missing or off-trace in tree")
	}
	var names []string
	r.Walk(func(n *SpanTree) { names = append(names, n.Name) })
	want := "serve.compress codec.dnax fleet.put serve.store"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("walk order %q, want %q", got, want)
	}
}

func TestSpanTreeDeterministicAcrossRuns(t *testing.T) {
	build := func() []SpanRecord {
		tr := NewTracerWithIDs(NewFake(time.Unix(0, 0)), NewSeededIDSource(99))
		ctx := WithTracer(context.Background(), tr)
		ctx, root := Start(ctx, "root")
		_, a := Start(ctx, "a")
		a.End()
		_, b := Start(ctx, "b")
		b.End()
		root.End()
		return tr.Records()
	}
	r1, r2 := build(), build()
	if len(r1) != len(r2) {
		t.Fatalf("record counts differ")
	}
	for i := range r1 {
		if r1[i].TraceID != r2[i].TraceID || r1[i].SpanID != r2[i].SpanID {
			t.Fatalf("record %d IDs differ across identical runs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}
