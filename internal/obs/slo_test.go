package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"
)

// sloHarness wires an availability objective over fresh counters onto a
// fake clock. Targets in these tests use dyadic budgets (0.25, 0.5, 0) so
// burn-rate divisions are exact in float64 and assertions can use ==.
type sloHarness struct {
	clock  *Fake
	reg    *Registry
	total  *Counter
	bad    *Counter
	engine *SLOEngine
}

func newSLOHarness(t *testing.T, target float64) *sloHarness {
	t.Helper()
	h := &sloHarness{clock: NewFake(time.Unix(1_000_000, 0)), reg: NewRegistry()}
	h.total = h.reg.Counter("req_total", "requests")
	h.bad = h.reg.Counter("req_errors", "errors")
	h.engine = NewSLOEngine(h.clock, h.reg, SLOConfig{
		FastWindow:   10 * time.Second,
		SlowWindow:   100 * time.Second,
		BurnAlert:    2,
		MinSampleGap: time.Second,
	}, Objective{Name: "availability", Target: target, Total: h.total, Bad: h.bad})
	return h
}

func TestSLOBurnRateExact(t *testing.T) {
	h := newSLOHarness(t, 0.75) // budget = 0.25
	// t=0: no traffic yet; anchor sample.
	if st := h.engine.Evaluate()[0]; st.FastBurn != 0 || st.SlowBurn != 0 || st.Verdict != "ok" {
		t.Fatalf("idle status = %+v", st)
	}
	// 100 requests, 5 errors land within the fast window.
	h.clock.Advance(5 * time.Second)
	h.total.Add(100)
	h.bad.Add(5)
	st := h.engine.Evaluate()[0]
	// Window error rate 5/100 = 0.05; budget 0.25 → burn = 0.2 on both
	// windows, exactly (division by a power of two).
	if st.FastBurn != 0.2 || st.SlowBurn != 0.2 {
		t.Fatalf("burn = %v/%v, want 0.2/0.2", st.FastBurn, st.SlowBurn)
	}
	if st.Compliance != 0.95 || st.Verdict != "ok" {
		t.Fatalf("status = %+v, want compliance 0.95 ok", st)
	}

	// 20 seconds later the errors age out of the 10 s fast window while 400
	// clean requests arrive: fast burn is computed against the newest
	// pre-window sample (t=5, total=100, bad=5), so fast errors are 0/400.
	h.clock.Advance(20 * time.Second)
	h.total.Add(400)
	st = h.engine.Evaluate()[0]
	if st.FastBurn != 0 {
		t.Fatalf("fast burn = %v, want 0 after errors aged out", st.FastBurn)
	}
	// Slow window still sees all 5 errors over 500 requests: 0.01/0.25.
	if st.SlowBurn != 0.04 {
		t.Fatalf("slow burn = %v, want 0.04", st.SlowBurn)
	}
	if st.Good != 495 || st.Total != 500 || st.Compliance != 0.99 {
		t.Fatalf("cumulative = %+v", st)
	}
	if st.Verdict != "ok" {
		t.Fatalf("verdict = %q, want ok", st.Verdict)
	}
}

func TestSLOAlertRequiresBothWindows(t *testing.T) {
	h := newSLOHarness(t, 0.75)
	h.engine.Evaluate()
	// Sudden cliff: every request errors. Burn = 1.0/0.25 = 4 ≥ the alert
	// threshold of 2 on the fast window, and with all history inside the
	// slow window, slow burn matches → alert.
	h.clock.Advance(2 * time.Second)
	h.total.Add(50)
	h.bad.Add(50)
	st := h.engine.Evaluate()[0]
	if st.FastBurn != 4 || st.SlowBurn != 4 {
		t.Fatalf("burn = %v/%v, want 4/4", st.FastBurn, st.SlowBurn)
	}
	if !st.Alert || st.Verdict != "burn" {
		t.Fatalf("status = %+v, want alert+burn", st)
	}
	// Gauges export the same numbers.
	if g := h.reg.Gauge("dna_slo_alert", "", "objective", "availability"); g.Value() != 1 {
		t.Fatalf("dna_slo_alert = %v, want 1", g.Value())
	}
	if g := h.reg.Gauge("dna_slo_burn_rate", "", "objective", "availability", "window", "fast"); g.Value() != 4 {
		t.Fatalf("dna_slo_burn_rate fast = %v, want 4", g.Value())
	}

	// Recovery: clean traffic ages the cliff out of the fast window; the
	// alert clears even though the slow window still burns.
	h.clock.Advance(15 * time.Second)
	h.total.Add(1000)
	st = h.engine.Evaluate()[0]
	if st.FastBurn != 0 {
		t.Fatalf("fast burn after recovery = %v, want 0", st.FastBurn)
	}
	if st.Alert {
		t.Fatalf("alert stuck on after fast window recovered: %+v", st)
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	clock := NewFake(time.Unix(0, 0))
	reg := NewRegistry()
	hist := reg.Histogram("lat_ms", "latency", []float64{10, 50, 250, 1000})
	eng := NewSLOEngine(clock, reg, SLOConfig{
		FastWindow: 10 * time.Second, SlowWindow: 100 * time.Second, BurnAlert: 14.4,
	}, Objective{Name: "latency", Target: 0.75, Histogram: hist, ThresholdMS: 250})
	eng.Evaluate()
	clock.Advance(5 * time.Second)
	// 5 fast, 3 slow: window error rate 0.375, budget 0.25 → burn 1.5.
	for i := 0; i < 4; i++ {
		hist.Observe(5)
	}
	hist.Observe(250) // le semantics: exactly at threshold counts as good
	hist.Observe(300)
	hist.Observe(900)
	hist.Observe(5000) // lands in +Inf bucket
	st := eng.Evaluate()[0]
	if st.Good != 5 || st.Total != 8 {
		t.Fatalf("good/total = %d/%d, want 5/8", st.Good, st.Total)
	}
	if st.FastBurn != 1.5 {
		t.Fatalf("fast burn = %v, want 1.5", st.FastBurn)
	}
	if st.Compliance != 0.625 || st.Verdict != "breach" {
		t.Fatalf("status = %+v, want compliance 0.625 breach", st)
	}
}

func TestSLOZeroBudgetCapsFinite(t *testing.T) {
	h := newSLOHarness(t, 1.0) // zero error budget
	h.engine.Evaluate()
	h.clock.Advance(2 * time.Second)
	h.total.Add(10)
	h.bad.Add(1)
	st := h.engine.Evaluate()[0]
	if math.IsInf(st.FastBurn, 0) || st.FastBurn != burnCap {
		t.Fatalf("zero-budget burn = %v, want finite cap %v", st.FastBurn, burnCap)
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("status not marshalable: %v", err)
	}
}

func TestSLOHandlerAndVerdict(t *testing.T) {
	h := newSLOHarness(t, 0.5)
	h.total.Add(4)
	rr := httptest.NewRecorder()
	h.engine.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	var doc struct {
		Verdict    string      `json:"verdict"`
		Objectives []SLOStatus `json:"objectives"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rr.Body.String())
	}
	if doc.Verdict != "pass" || len(doc.Objectives) != 1 || doc.Objectives[0].Name != "availability" {
		t.Fatalf("doc = %+v", doc)
	}
	if v := Verdict([]SLOStatus{{Name: "a", Verdict: "ok"}, {Name: "b", Verdict: "burn"}, {Name: "c", Verdict: "breach"}}); v != "fail:b,c" {
		t.Fatalf("Verdict = %q, want fail:b,c", v)
	}
	if v := Verdict(nil); v != "pass" {
		t.Fatalf("Verdict(nil) = %q, want pass", v)
	}
}
