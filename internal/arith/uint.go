package arith

// UintModel codes unsigned integers inside an arithmetic stream as an
// adaptive Elias-gamma analogue: the value's bit-length is sent in unary
// through per-position adaptive models (so frequent magnitudes become cheap)
// and the payload bits below the leading one follow through per-position
// models. Repeat-based codecs use one UintModel per field (length, distance,
// edit-op offset, ...), letting each field's distribution be learned
// independently.
type UintModel struct {
	lenProbs [65]Prob // unary "continue" flags for the bit-length
	bitProbs [64]Prob // payload bit models, indexed by bit position
}

// NewUintModel returns a fresh model.
func NewUintModel() *UintModel {
	m := &UintModel{}
	for i := range m.lenProbs {
		m.lenProbs[i] = NewProb()
	}
	for i := range m.bitProbs {
		m.bitProbs[i] = NewProb()
	}
	return m
}

// MemoryFootprint reports the model's resident size in bytes.
func (m *UintModel) MemoryFootprint() int { return (len(m.lenProbs) + len(m.bitProbs)) * 2 }

// Encode writes v (any uint64, including 0) to e.
//
// The length field is the number of significant bits of v+1 minus one,
// shifting the domain so that zero is representable.
func (m *UintModel) Encode(e *Encoder, v uint64) {
	if v == ^uint64(0) {
		panic("arith: UintModel cannot encode MaxUint64")
	}
	x := v + 1 // x >= 1; bit length in [1,64]
	n := bitLen(x)
	for i := 0; i < n-1; i++ {
		e.EncodeBit(&m.lenProbs[i], 1)
	}
	e.EncodeBit(&m.lenProbs[n-1], 0)
	for i := n - 2; i >= 0; i-- {
		e.EncodeBit(&m.bitProbs[i], int(x>>uint(i)&1))
	}
}

// Decode reads one value written by Encode.
func (m *UintModel) Decode(d *Decoder) uint64 {
	n := 1
	for n <= 64 && d.DecodeBit(&m.lenProbs[n-1]) == 1 {
		n++
	}
	x := uint64(1)
	for i := n - 2; i >= 0; i-- {
		x = x<<1 | uint64(d.DecodeBit(&m.bitProbs[i]))
	}
	return x - 1
}

func bitLen(x uint64) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}
