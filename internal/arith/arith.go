// Package arith implements a binary range coder (carry-aware, LZMA-style)
// together with adaptive bit models and an order-k nucleotide symbol model.
// It is the shared entropy-coding substrate for every statistical codec in
// this repository: CTW drives it with mixed tree probabilities, DNAX and
// BioCompress-2 use the order-2 symbol model for literals, and GenCompress
// uses it for escape regions.
//
// Probabilities are 16-bit: a model supplies P(bit = 0) scaled to [1, 65535].
// The coder guarantees that both branches keep a non-zero sub-range, so any
// probability in that interval is safe.
package arith

// Probability precision: 16 fractional bits.
const (
	probBits = 16
	ProbOne  = 1 << probBits // the fixed-point representation of 1.0
	probInit = ProbOne / 2
	topValue = 1 << 24 // renormalization threshold
)

// Encoder is a binary range encoder. Create one with NewEncoder, feed bits
// through EncodeBit/EncodeBitP, then call Finish exactly once to flush and
// obtain the output buffer.
//
// The coder follows the canonical LZMA construction: the first output byte is
// always a zero "carry sponge" that later additions may increment; the
// decoder primes its 32-bit code register with five input bytes so that the
// sponge byte shifts straight through.
type Encoder struct {
	low      uint64
	rng      uint32
	cache    byte
	pending  int64 // number of buffered bytes awaiting a possible carry
	out      []byte
	finished bool
}

// NewEncoder returns an Encoder whose output buffer is preallocated to
// sizeHint bytes.
func NewEncoder(sizeHint int) *Encoder {
	if sizeHint < 16 {
		sizeHint = 16
	}
	return &Encoder{rng: 0xFFFFFFFF, pending: 1, out: make([]byte, 0, sizeHint)}
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		carry := byte(e.low >> 32)
		temp := e.cache
		for {
			e.out = append(e.out, temp+carry)
			temp = 0xFF
			e.pending--
			if e.pending == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.pending++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// EncodeBitP encodes bit with static probability p0 = P(bit == 0) in
// fixed-point [1, ProbOne-1].
func (e *Encoder) EncodeBitP(p0 uint32, bit int) {
	bound := (e.rng >> probBits) * p0
	if bit == 0 {
		e.rng = bound
	} else {
		e.low += uint64(bound)
		e.rng -= bound
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeBit encodes bit using the adaptive model p, then updates the model.
func (e *Encoder) EncodeBit(p *Prob, bit int) {
	e.EncodeBitP(uint32(*p), bit)
	p.Update(bit)
}

// Finish flushes the coder state and returns the complete output. The
// Encoder must not be used afterwards.
func (e *Encoder) Finish() []byte {
	if !e.finished {
		for i := 0; i < 5; i++ {
			e.shiftLow()
		}
		e.finished = true
	}
	return e.out
}

// Len reports the number of output bytes produced so far (excluding the
// up-to-5 bytes that Finish will flush).
func (e *Encoder) Len() int { return len(e.out) }

// Decoder is the matching binary range decoder.
type Decoder struct {
	rng  uint32
	code uint32
	in   []byte
	pos  int
}

// NewDecoder returns a Decoder positioned at the start of data, which must
// have been produced by Encoder.Finish.
func NewDecoder(data []byte) *Decoder {
	d := &Decoder{rng: 0xFFFFFFFF, in: data}
	// Five bytes: the encoder's leading carry-sponge byte shifts out of the
	// 32-bit code register.
	for i := 0; i < 5; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *Decoder) next() byte {
	if d.pos < len(d.in) {
		b := d.in[d.pos]
		d.pos++
		return b
	}
	// Reading past the end yields zero bytes; a well-formed stream never
	// depends on more than a few of them (the decoder knows the symbol
	// count from framing above this layer).
	d.pos++
	return 0
}

// DecodeBitP decodes one bit with static probability p0 = P(bit == 0).
func (d *Decoder) DecodeBitP(p0 uint32) int {
	bound := (d.rng >> probBits) * p0
	var bit int
	if d.code < bound {
		d.rng = bound
	} else {
		bit = 1
		d.code -= bound
		d.rng -= bound
	}
	for d.rng < topValue {
		d.code = d.code<<8 | uint32(d.next())
		d.rng <<= 8
	}
	return bit
}

// DecodeBit decodes one bit using the adaptive model p, then updates p.
func (d *Decoder) DecodeBit(p *Prob) int {
	bit := d.DecodeBitP(uint32(*p))
	p.Update(bit)
	return bit
}

// BytesRead reports how many input bytes have been consumed (may exceed
// len(input) by a small amount at end of stream due to zero-fill).
func (d *Decoder) BytesRead() int { return d.pos }

// Prob is an adaptive binary model: the fixed-point probability that the
// next bit is zero. The zero value is NOT valid; use NewProb.
type Prob uint16

// adaptShift controls adaptation speed: smaller shifts adapt faster.
const adaptShift = 5

// NewProb returns a model initialized to P(0) = 1/2.
func NewProb() Prob { return Prob(probInit) }

// Update moves the model toward the observed bit.
func (p *Prob) Update(bit int) {
	v := uint32(*p)
	if bit == 0 {
		v += (ProbOne - v) >> adaptShift
	} else {
		v -= v >> adaptShift
	}
	if v == 0 {
		v = 1
	}
	if v >= ProbOne {
		v = ProbOne - 1
	}
	*p = Prob(v)
}

// NewProbSlice returns n freshly initialized models.
func NewProbSlice(n int) []Prob {
	ps := make([]Prob, n)
	for i := range ps {
		ps[i] = Prob(probInit)
	}
	return ps
}
