package arith

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUintModelRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 2, 3, 7, 8, 100, 1000, 1 << 20, 1<<40 + 12345}
	m := NewUintModel()
	e := NewEncoder(256)
	for _, v := range vals {
		m.Encode(e, v)
	}
	d := NewDecoder(e.Finish())
	md := NewUintModel()
	for _, want := range vals {
		if got := md.Decode(d); got != want {
			t.Fatalf("got %d want %d", got, want)
		}
	}
}

func TestUintModelAdapts(t *testing.T) {
	// A stream of similar magnitudes must cost fewer bits per value over
	// time than a fresh gamma-style code (~2 log2 v bits).
	rng := rand.New(rand.NewSource(5))
	m := NewUintModel()
	e := NewEncoder(4096)
	const n = 5000
	for i := 0; i < n; i++ {
		m.Encode(e, uint64(200+rng.Intn(50)))
	}
	out := e.Finish()
	bitsPerVal := float64(len(out)*8) / n
	// Raw gamma for ~230 would be ~15 bits; the adaptive model should be
	// well under 9.
	if bitsPerVal > 9 {
		t.Fatalf("%.2f bits/value, want < 9", bitsPerVal)
	}
}

func TestUintModelQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		for i := range vals {
			vals[i] >>= 2 // keep clear of MaxUint64
		}
		m := NewUintModel()
		e := NewEncoder(len(vals)*10 + 16)
		for _, v := range vals {
			m.Encode(e, v)
		}
		d := NewDecoder(e.Finish())
		md := NewUintModel()
		for _, v := range vals {
			if md.Decode(d) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUintModelRejectsMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode(MaxUint64) did not panic")
		}
	}()
	NewUintModel().Encode(NewEncoder(16), ^uint64(0))
}
