package arith

// SymbolModel is an adaptive order-k model over the 4-letter nucleotide
// alphabet (symbols 0..3 = A,C,G,T). Each context — the previous k symbols —
// owns a tiny binary tree of three adaptive bit models: one for the high bit
// of the next symbol and one per branch for the low bit. Order-2 instances of
// this model are the "order-2 arithmetic coding" literal coder named by
// BioCompress-2, DNAPack and DNAX in the paper's Table 1.
type SymbolModel struct {
	order int
	mask  uint32
	ctx   uint32
	probs []Prob // 3 models per context, laid out contiguously
}

// NewSymbolModel returns a model conditioning on the previous order symbols.
// order must be in [0, 12] to bound table size (4^12 × 3 entries ≈ 100 MB is
// already past any practical setting; typical use is 2).
func NewSymbolModel(order int) *SymbolModel {
	if order < 0 || order > 12 {
		panic("arith: symbol model order out of range [0,12]")
	}
	nCtx := 1 << (2 * order)
	return &SymbolModel{
		order: order,
		mask:  uint32(nCtx - 1),
		probs: NewProbSlice(nCtx * 3),
	}
}

// Order reports the model order.
func (m *SymbolModel) Order() int { return m.order }

// MemoryFootprint returns the approximate resident size of the model tables
// in bytes, used by the metrics layer for RAM accounting.
func (m *SymbolModel) MemoryFootprint() int { return len(m.probs) * 2 }

// Reset clears the learned statistics and context history.
func (m *SymbolModel) Reset() {
	m.ctx = 0
	for i := range m.probs {
		m.probs[i] = NewProb()
	}
}

// Encode codes sym (0..3) into e and advances the context.
func (m *SymbolModel) Encode(e *Encoder, sym byte) {
	base := m.ctx * 3
	hi := int(sym >> 1)
	lo := int(sym & 1)
	e.EncodeBit(&m.probs[base], hi)
	e.EncodeBit(&m.probs[base+1+uint32(hi)], lo)
	m.advance(sym)
}

// Decode returns the next symbol from d and advances the context.
func (m *SymbolModel) Decode(d *Decoder) byte {
	base := m.ctx * 3
	hi := d.DecodeBit(&m.probs[base])
	lo := d.DecodeBit(&m.probs[base+1+uint32(hi)])
	sym := byte(hi<<1 | lo)
	m.advance(sym)
	return sym
}

// Observe advances the context without coding, used when a stretch of
// symbols was transmitted by other means (e.g. a copied repeat) but should
// still condition subsequent literals.
func (m *SymbolModel) Observe(sym byte) { m.advance(sym) }

func (m *SymbolModel) advance(sym byte) {
	m.ctx = (m.ctx<<2 | uint32(sym&3)) & m.mask
}
