package arith

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStaticBitRoundTrip(t *testing.T) {
	bits := []int{0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 1, 0}
	const p0 = ProbOne / 2
	e := NewEncoder(32)
	for _, b := range bits {
		e.EncodeBitP(p0, b)
	}
	d := NewDecoder(e.Finish())
	for i, want := range bits {
		if got := d.DecodeBitP(p0); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestSkewedProbabilities(t *testing.T) {
	// Extreme but legal probabilities must round-trip.
	for _, p0 := range []uint32{1, 7, ProbOne / 16, ProbOne - 1} {
		rng := rand.New(rand.NewSource(int64(p0)))
		bits := make([]int, 3000)
		for i := range bits {
			if rng.Float64() > float64(p0)/ProbOne {
				bits[i] = 1
			}
		}
		e := NewEncoder(1024)
		for _, b := range bits {
			e.EncodeBitP(p0, b)
		}
		d := NewDecoder(e.Finish())
		for i, want := range bits {
			if got := d.DecodeBitP(p0); got != want {
				t.Fatalf("p0=%d bit %d: got %d want %d", p0, i, got, want)
			}
		}
	}
}

func TestAdaptiveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bits := make([]int, 20000)
	for i := range bits {
		// A biased, drifting source that exercises model adaptation.
		if rng.Float64() < 0.2+0.5*math.Sin(float64(i)/500)*math.Sin(float64(i)/500) {
			bits[i] = 1
		}
	}
	pe, pd := NewProb(), NewProb()
	e := NewEncoder(4096)
	for _, b := range bits {
		e.EncodeBit(&pe, b)
	}
	out := e.Finish()
	d := NewDecoder(out)
	for i, want := range bits {
		if got := d.DecodeBit(&pd); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
	if pe != pd {
		t.Fatalf("encoder and decoder models diverged: %d vs %d", pe, pd)
	}
}

func TestCompressionOfBiasedSource(t *testing.T) {
	// A 95/5 source has entropy ~0.286 bits/bit; the adaptive coder should
	// land well under 0.45 bits/bit including overhead.
	rng := rand.New(rand.NewSource(11))
	const n = 100000
	p := NewProb()
	e := NewEncoder(n / 4)
	for i := 0; i < n; i++ {
		b := 0
		if rng.Float64() < 0.05 {
			b = 1
		}
		e.EncodeBit(&p, b)
	}
	out := e.Finish()
	bpb := float64(len(out)*8) / n
	if bpb > 0.45 {
		t.Fatalf("biased source compressed to %.3f bits/bit, want < 0.45", bpb)
	}
	if bpb < 0.2 {
		t.Fatalf("suspiciously good rate %.3f bits/bit — check entropy accounting", bpb)
	}
}

func TestRandomSourceNearOneBit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 50000
	p := NewProb()
	e := NewEncoder(n / 8)
	for i := 0; i < n; i++ {
		e.EncodeBit(&p, rng.Intn(2))
	}
	out := e.Finish()
	bpb := float64(len(out)*8) / n
	if bpb < 0.99 || bpb > 1.05 {
		t.Fatalf("uniform source at %.4f bits/bit, want ~1.0", bpb)
	}
}

func TestProbUpdateBounds(t *testing.T) {
	p := NewProb()
	for i := 0; i < 1000; i++ {
		p.Update(0)
	}
	if uint32(p) == 0 || uint32(p) >= ProbOne {
		t.Fatalf("prob escaped range after zeros: %d", p)
	}
	hi := uint32(p)
	if hi < ProbOne*9/10 {
		t.Fatalf("prob failed to adapt upward: %d", hi)
	}
	for i := 0; i < 1000; i++ {
		p.Update(1)
	}
	if uint32(p) == 0 || uint32(p) >= ProbOne {
		t.Fatalf("prob escaped range after ones: %d", p)
	}
	if uint32(p) > ProbOne/10 {
		t.Fatalf("prob failed to adapt downward: %d", p)
	}
}

func TestCarryPropagation(t *testing.T) {
	// Long runs of maximally-probable bits push low close to the range top,
	// manufacturing pending-carry chains inside the encoder.
	e := NewEncoder(1024)
	pattern := make([]int, 5000)
	for i := range pattern {
		if i%97 == 96 {
			pattern[i] = 0
		} else {
			pattern[i] = 1
		}
	}
	const p0 = ProbOne - 1 // bit 1 gets a microscopic sub-range
	for _, b := range pattern {
		e.EncodeBitP(p0, b)
	}
	d := NewDecoder(e.Finish())
	for i, want := range pattern {
		if got := d.DecodeBitP(p0); got != want {
			t.Fatalf("carry test bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestFinishIdempotent(t *testing.T) {
	e := NewEncoder(16)
	e.EncodeBitP(ProbOne/2, 1)
	a := e.Finish()
	b := e.Finish()
	if len(a) != len(b) {
		t.Fatalf("second Finish changed output: %d vs %d bytes", len(a), len(b))
	}
}

func TestQuickBitstream(t *testing.T) {
	f := func(data []byte, seed int64) bool {
		if len(data) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		probs := make([]uint32, 16)
		for i := range probs {
			probs[i] = uint32(rng.Intn(ProbOne-2)) + 1
		}
		e := NewEncoder(len(data) * 2)
		for i, b := range data {
			for k := 7; k >= 0; k-- {
				e.EncodeBitP(probs[(i+k)%16], int(b>>uint(k))&1)
			}
		}
		d := NewDecoder(e.Finish())
		for i, b := range data {
			var got byte
			for k := 7; k >= 0; k-- {
				got = got<<1 | byte(d.DecodeBitP(probs[(i+k)%16]))
			}
			if got != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolModelRoundTrip(t *testing.T) {
	for _, order := range []int{0, 1, 2, 4} {
		rng := rand.New(rand.NewSource(int64(order) + 1))
		syms := make([]byte, 30000)
		for i := range syms {
			// Markov-ish source: repeat previous symbol 70% of the time.
			if i > 0 && rng.Float64() < 0.7 {
				syms[i] = syms[i-1]
			} else {
				syms[i] = byte(rng.Intn(4))
			}
		}
		me := NewSymbolModel(order)
		e := NewEncoder(len(syms))
		for _, s := range syms {
			me.Encode(e, s)
		}
		out := e.Finish()
		md := NewSymbolModel(order)
		d := NewDecoder(out)
		for i, want := range syms {
			if got := md.Decode(d); got != want {
				t.Fatalf("order %d sym %d: got %d want %d", order, i, got, want)
			}
		}
		// The repetitive source must compress below 2 bits/base.
		bpb := float64(len(out)*8) / float64(len(syms))
		if order >= 1 && bpb > 1.8 {
			t.Errorf("order %d: %.3f bits/base, want < 1.8", order, bpb)
		}
	}
}

func TestSymbolModelObserve(t *testing.T) {
	// Encoding with Observe-advanced context must mirror decoding with the
	// same Observe calls.
	syms := []byte{0, 1, 2, 3, 0, 0, 1, 1, 2, 2, 3, 3}
	skip := map[int]bool{3: true, 7: true}
	me := NewSymbolModel(2)
	e := NewEncoder(64)
	for i, s := range syms {
		if skip[i] {
			me.Observe(s)
		} else {
			me.Encode(e, s)
		}
	}
	md := NewSymbolModel(2)
	d := NewDecoder(e.Finish())
	for i, want := range syms {
		if skip[i] {
			md.Observe(want)
			continue
		}
		if got := md.Decode(d); got != want {
			t.Fatalf("sym %d: got %d want %d", i, got, want)
		}
	}
}

func TestSymbolModelReset(t *testing.T) {
	m := NewSymbolModel(2)
	e := NewEncoder(64)
	for i := 0; i < 100; i++ {
		m.Encode(e, byte(i%4))
	}
	m.Reset()
	fresh := NewSymbolModel(2)
	if m.ctx != fresh.ctx {
		t.Fatal("Reset did not clear context")
	}
	for i := range m.probs {
		if m.probs[i] != fresh.probs[i] {
			t.Fatalf("Reset left learned prob at index %d", i)
		}
	}
}

func TestSymbolModelMemoryFootprint(t *testing.T) {
	m := NewSymbolModel(2)
	want := (1 << 4) * 3 * 2 // 16 contexts × 3 probs × 2 bytes
	if got := m.MemoryFootprint(); got != want {
		t.Fatalf("MemoryFootprint = %d, want %d", got, want)
	}
}

func TestSymbolModelOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSymbolModel(13) did not panic")
		}
	}()
	NewSymbolModel(13)
}

func BenchmarkEncodeBitAdaptive(b *testing.B) {
	p := NewProb()
	e := NewEncoder(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Len() > 1<<22 {
			e = NewEncoder(1 << 20)
		}
		e.EncodeBit(&p, i&1)
	}
}

func BenchmarkSymbolModelOrder2(b *testing.B) {
	m := NewSymbolModel(2)
	e := NewEncoder(1 << 20)
	b.ReportAllocs()
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		if e.Len() > 1<<22 {
			e = NewEncoder(1 << 20)
		}
		m.Encode(e, byte(i&3))
	}
}
