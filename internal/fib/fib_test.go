package fib

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/srl-nuces/ctxdna/internal/bitio"
)

func TestKnownCodewords(t *testing.T) {
	// Classic Fibonacci codes: 1 -> 11, 2 -> 011, 3 -> 0011, 4 -> 1011,
	// 5 -> 00011, 6 -> 10011, 7 -> 01011, 8 -> 000011.
	cases := []struct {
		v    uint64
		bits string
	}{
		{1, "11"}, {2, "011"}, {3, "0011"}, {4, "1011"},
		{5, "00011"}, {6, "10011"}, {7, "01011"}, {8, "000011"},
		{12, "101011"},
	}
	for _, c := range cases {
		w := bitio.NewWriter(4)
		if err := Encode(w, c.v); err != nil {
			t.Fatalf("Encode(%d): %v", c.v, err)
		}
		if got := w.BitLen(); got != len(c.bits) {
			t.Errorf("Encode(%d) length = %d bits, want %d", c.v, got, len(c.bits))
		}
		r := bitio.NewReader(w.Bytes())
		var got string
		for range c.bits {
			b, err := r.ReadBit()
			if err != nil {
				t.Fatal(err)
			}
			got += string(rune('0' + b))
		}
		if got != c.bits {
			t.Errorf("Encode(%d) = %s, want %s", c.v, got, c.bits)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	vals := []uint64{1, 2, 3, 4, 5, 10, 100, 1000, 1 << 20, math.MaxUint32, math.MaxUint64}
	w := bitio.NewWriter(256)
	for _, v := range vals {
		if err := Encode(w, v); err != nil {
			t.Fatalf("Encode(%d): %v", v, err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	for _, want := range vals {
		got, err := Decode(r)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got != want {
			t.Fatalf("got %d want %d", got, want)
		}
	}
}

func TestEncodeRejectsZero(t *testing.T) {
	w := bitio.NewWriter(1)
	if err := Encode(w, 0); err != ErrValueRange {
		t.Fatalf("Encode(0) = %v, want ErrValueRange", err)
	}
}

func TestLenMatchesEncode(t *testing.T) {
	for v := uint64(1); v < 2000; v++ {
		w := bitio.NewWriter(8)
		if err := Encode(w, v); err != nil {
			t.Fatal(err)
		}
		if got := Len(v); got != w.BitLen() {
			t.Fatalf("Len(%d) = %d, encoded %d bits", v, got, w.BitLen())
		}
	}
	if Len(0) != 0 {
		t.Fatal("Len(0) must be 0")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		w := bitio.NewWriter(len(raw) * 12)
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			if v == 0 {
				v = 1
			}
			vals[i] = v
			if err := Encode(w, v); err != nil {
				return false
			}
		}
		r := bitio.NewReader(w.Bytes())
		for _, v := range vals {
			got, err := Decode(r)
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNoConsecutiveOnesBeforeTerminator(t *testing.T) {
	// Zeckendorf property: within the representation (all bits except the
	// final terminator), no two adjacent ones appear.
	for v := uint64(1); v < 5000; v++ {
		w := bitio.NewWriter(8)
		if err := Encode(w, v); err != nil {
			t.Fatal(err)
		}
		r := bitio.NewReader(w.Bytes())
		n := w.BitLen()
		prev := uint(0)
		for i := 0; i < n-1; i++ { // exclude terminator
			b, err := r.ReadBit()
			if err != nil {
				t.Fatal(err)
			}
			if b == 1 && prev == 1 && i != n-2 {
				t.Fatalf("v=%d: consecutive ones at bit %d", v, i)
			}
			prev = b
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	w := bitio.NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.BitLen() > 1<<22 {
			w.Reset()
		}
		Encode(w, uint64(i%4096+1))
	}
}

func BenchmarkDecode(b *testing.B) {
	w := bitio.NewWriter(1 << 16)
	const n = 4096
	for i := 0; i < n; i++ {
		Encode(w, uint64(i+1))
	}
	buf := w.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(buf)
		for j := 0; j < n; j++ {
			if _, err := Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
