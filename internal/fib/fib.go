// Package fib implements Fibonacci (Zeckendorf) universal coding of positive
// integers. BioCompress-family DNA compressors use Fibonacci codes to encode
// repeat lengths and positions because the code is self-delimiting, robust,
// and short for the small integers that dominate repeat descriptors.
//
// The code of n >= 1 is the Zeckendorf representation of n written from the
// smallest Fibonacci number upward, followed by an extra 1 bit. Because a
// Zeckendorf representation never contains two consecutive 1s, the trailing
// "11" unambiguously terminates each codeword.
package fib

import (
	"errors"
	"fmt"

	"github.com/srl-nuces/ctxdna/internal/bitio"
)

// ErrValueRange is returned when a value cannot be Fibonacci coded (only
// strictly positive integers have codes).
var ErrValueRange = errors.New("fib: value must be >= 1")

// fibs holds Fibonacci numbers F(2)=1, F(3)=2, F(4)=3, ... up to the largest
// value representable in uint64. 86 terms cover the full uint64 range.
var fibs = buildFibs()

func buildFibs() []uint64 {
	fs := make([]uint64, 0, 92)
	a, b := uint64(1), uint64(2)
	for {
		fs = append(fs, a)
		if b < a { // overflow
			break
		}
		a, b = b, a+b
	}
	return fs
}

// Encode appends the Fibonacci code of v (>= 1) to w.
func Encode(w *bitio.Writer, v uint64) error {
	if v == 0 {
		return ErrValueRange
	}
	// Find the largest Fibonacci number <= v.
	hi := 0
	for hi+1 < len(fibs) && fibs[hi+1] <= v {
		hi++
	}
	// Greedy Zeckendorf decomposition, recorded high-to-low.
	word := make([]byte, hi+1)
	rem := v
	for i := hi; i >= 0; i-- {
		if fibs[i] <= rem {
			word[i] = 1
			rem -= fibs[i]
		}
	}
	if rem != 0 {
		return fmt.Errorf("fib: internal decomposition failure for %d", v)
	}
	// Emit low-to-high plus the terminating 1.
	for _, b := range word {
		w.WriteBit(uint(b))
	}
	w.WriteBit(1)
	return nil
}

// Decode reads one Fibonacci codeword from r and returns its value.
func Decode(r *bitio.Reader) (uint64, error) {
	var (
		v    uint64
		prev uint
		i    int
	)
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 && prev == 1 {
			return v, nil // terminating "11"
		}
		if i >= len(fibs) {
			return 0, fmt.Errorf("fib: codeword exceeds uint64 range")
		}
		if b == 1 {
			nv := v + fibs[i]
			if nv < v {
				return 0, fmt.Errorf("fib: codeword overflows uint64")
			}
			v = nv
		}
		prev = b
		i++
	}
}

// Len returns the length in bits of the Fibonacci code of v, or 0 if v == 0.
func Len(v uint64) int {
	if v == 0 {
		return 0
	}
	hi := 0
	for hi+1 < len(fibs) && fibs[hi+1] <= v {
		hi++
	}
	return hi + 2 // hi+1 representation bits plus the terminator
}
