package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGini(t *testing.T) {
	cases := []struct {
		counts []int
		want   float64
	}{
		{[]int{10, 0}, 0},
		{[]int{5, 5}, 0.5},
		{[]int{25, 25, 25, 25}, 0.75},
		{[]int{}, 0},
		{[]int{0, 0}, 0},
		{[]int{9, 1}, 1 - 0.81 - 0.01},
	}
	for _, c := range cases {
		if got := Gini(c.counts); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Gini(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]int{5, 5}); !almostEq(got, 1, 1e-12) {
		t.Errorf("Entropy(5,5) = %v, want 1", got)
	}
	if got := Entropy([]int{4, 0}); got != 0 {
		t.Errorf("Entropy(4,0) = %v, want 0", got)
	}
	if got := Entropy([]int{1, 1, 1, 1}); !almostEq(got, 2, 1e-12) {
		t.Errorf("Entropy uniform-4 = %v, want 2", got)
	}
}

func TestChiSquareIndependent(t *testing.T) {
	// Perfectly proportional table: chi2 = 0.
	chi2, df := ChiSquare([][]int{{10, 20}, {20, 40}})
	if !almostEq(chi2, 0, 1e-9) || df != 1 {
		t.Fatalf("chi2 = %v df = %d, want 0, 1", chi2, df)
	}
}

func TestChiSquareKnownValue(t *testing.T) {
	// Classic 2x2 example: [[10, 20], [30, 5]].
	// Totals: rows 30, 35; cols 40, 25; grand 65.
	chi2, df := ChiSquare([][]int{{10, 20}, {30, 5}})
	if df != 1 {
		t.Fatalf("df = %d, want 1", df)
	}
	// e11=30·40/65=18.4615, e12=11.5385, e21=21.5385, e22=13.4615;
	// (o-e)² = 71.598 in every cell, chi2 = 71.598·Σ1/e ≈ 18.726.
	if !almostEq(chi2, 18.726, 0.01) {
		t.Fatalf("chi2 = %v, want ≈18.726", chi2)
	}
}

func TestChiSquareDegenerate(t *testing.T) {
	if chi2, df := ChiSquare(nil); chi2 != 0 || df != 0 {
		t.Error("nil table must be 0,0")
	}
	if _, df := ChiSquare([][]int{{5, 5}}); df != 0 {
		t.Error("single-row table has no df")
	}
	if _, df := ChiSquare([][]int{{5, 0}, {3, 0}}); df != 0 {
		t.Error("single live column has no df")
	}
}

func TestChiSquarePValue(t *testing.T) {
	// Known quantiles: P(X >= 3.841 | df=1) = 0.05; P(X >= 6.635|1) = 0.01;
	// P(X >= 9.488 | df=4) = 0.05.
	cases := []struct {
		chi2 float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{6.635, 1, 0.01},
		{9.488, 4, 0.05},
		{18.467, 10, 0.0478}, // ≈0.048
	}
	for _, c := range cases {
		if got := ChiSquarePValue(c.chi2, c.df); !almostEq(got, c.want, 0.002) {
			t.Errorf("pvalue(%v, %d) = %v, want %v", c.chi2, c.df, got, c.want)
		}
	}
	if got := ChiSquarePValue(0, 3); got != 1 {
		t.Errorf("pvalue(0) = %v, want 1", got)
	}
	if got := ChiSquarePValue(5, 0); got != 1 {
		t.Errorf("pvalue(df=0) = %v, want 1", got)
	}
}

func TestChiSquarePValueMonotone(t *testing.T) {
	prev := 1.0
	for chi2 := 0.5; chi2 < 50; chi2 += 0.5 {
		p := ChiSquarePValue(chi2, 3)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone at chi2=%v: %v > %v", chi2, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("p-value out of range: %v", p)
		}
		prev = p
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	if got := Normalize([]float64{3, 3, 3}); got[0] != 0 || got[1] != 0 {
		t.Error("constant slice must normalize to zeros")
	}
	if got := Normalize(nil); len(got) != 0 {
		t.Error("nil input must give empty output")
	}
}

func TestQuantileBins(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	cuts := QuantileBins(vals, 4)
	if len(cuts) != 3 {
		t.Fatalf("got %d cuts, want 3: %v", len(cuts), cuts)
	}
	if cuts[0] != 25 || cuts[1] != 50 || cuts[2] != 75 {
		t.Fatalf("cuts = %v", cuts)
	}
	// Ties collapse.
	tied := QuantileBins([]float64{1, 1, 1, 1, 1, 9}, 4)
	if len(tied) >= 4 {
		t.Fatalf("tied cuts not collapsed: %v", tied)
	}
	if QuantileBins(nil, 4) != nil {
		t.Error("nil values must give nil cuts")
	}
	if QuantileBins(vals, 1) != nil {
		t.Error("n<2 must give nil cuts")
	}
}

func TestBinIndex(t *testing.T) {
	cuts := []float64{10, 20, 30}
	cases := []struct {
		v    float64
		want int
	}{{5, 0}, {10, 1}, {15, 1}, {20, 2}, {29.9, 2}, {30, 3}, {100, 3}, {-5, 0}}
	for _, c := range cases {
		if got := BinIndex(cuts, c.v); got != c.want {
			t.Errorf("BinIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := BinIndex(nil, 5); got != 0 {
		t.Errorf("BinIndex(nil) = %d, want 0", got)
	}
}

func TestQuickBinIndexConsistent(t *testing.T) {
	f := func(raw []float64, v float64) bool {
		cuts := QuantileBins(raw, 5)
		idx := BinIndex(cuts, v)
		if idx < 0 || idx > len(cuts) {
			return false
		}
		// v must be >= every cut below idx and < every cut at/after idx.
		for i := 0; i < idx; i++ {
			if v < cuts[i] {
				return false
			}
		}
		for i := idx; i < len(cuts); i++ {
			if v >= cuts[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) must be 0")
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Error("odd Median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even Median wrong")
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) must be 0")
	}
}

func TestGiniQuickBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		g := Gini(counts)
		return g >= 0 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
