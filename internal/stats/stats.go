// Package stats provides the statistical primitives behind the decision-tree
// learners and the experiment analysis: chi-squared independence tests with
// p-values (CHAID), Gini impurity (CART), entropy, min-max normalization
// (the paper's Figures 10/12/14/16 plot normalized context variables), and
// quantile binning of continuous predictors.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Gini returns the Gini impurity of a class-count vector: 1 - Σ p_i².
func Gini(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	sumSq := 0.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		sumSq += p * p
	}
	return 1 - sumSq
}

// Entropy returns the Shannon entropy (bits) of a class-count vector.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// ChiSquare computes the chi-squared statistic and degrees of freedom for a
// contingency table (rows = categories of the predictor, cols = classes).
// Rows and columns whose totals are zero are ignored.
func ChiSquare(table [][]int) (chi2 float64, df int) {
	if len(table) == 0 {
		return 0, 0
	}
	nCols := len(table[0])
	rowTot := make([]float64, len(table))
	colTot := make([]float64, nCols)
	grand := 0.0
	for r, row := range table {
		if len(row) != nCols {
			panic(fmt.Sprintf("stats: ragged contingency table row %d", r))
		}
		for c, v := range row {
			rowTot[r] += float64(v)
			colTot[c] += float64(v)
			grand += float64(v)
		}
	}
	if grand == 0 {
		return 0, 0
	}
	liveRows, liveCols := 0, 0
	for _, t := range rowTot {
		if t > 0 {
			liveRows++
		}
	}
	for _, t := range colTot {
		if t > 0 {
			liveCols++
		}
	}
	if liveRows < 2 || liveCols < 2 {
		return 0, 0
	}
	for r := range table {
		if rowTot[r] == 0 {
			continue
		}
		for c := range table[r] {
			if colTot[c] == 0 {
				continue
			}
			expected := rowTot[r] * colTot[c] / grand
			d := float64(table[r][c]) - expected
			chi2 += d * d / expected
		}
	}
	return chi2, (liveRows - 1) * (liveCols - 1)
}

// ChiSquarePValue returns P(X >= chi2) for a chi-squared distribution with
// df degrees of freedom: the upper regularized incomplete gamma function
// Q(df/2, chi2/2).
func ChiSquarePValue(chi2 float64, df int) float64 {
	if df <= 0 {
		return 1
	}
	if chi2 <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, chi2/2)
}

// gammaQ computes the upper regularized incomplete gamma function Q(a, x)
// via the series (x < a+1) or continued fraction (x >= a+1) — the classic
// Numerical-Recipes construction using math.Lgamma.
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinued(a, x)
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinued(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Normalize min-max scales values into [0,1]; constant slices map to zeros.
// The paper's per-figure "analysis based on context" charts plot exactly
// this transformation of CPU, RAM and file size.
func Normalize(values []float64) []float64 {
	out := make([]float64, len(values))
	if len(values) == 0 {
		return out
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return out
	}
	for i, v := range values {
		out[i] = (v - lo) / (hi - lo)
	}
	return out
}

// QuantileBins returns up to n-1 cut points splitting values into n
// near-equal-population bins. Duplicate cut points are collapsed, so fewer
// cuts may be returned for heavily tied data.
func QuantileBins(values []float64, n int) []float64 {
	if n < 2 || len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var cuts []float64
	for i := 1; i < n; i++ {
		idx := i * len(sorted) / n
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		cut := sorted[idx]
		if len(cuts) == 0 || cut > cuts[len(cuts)-1] {
			cuts = append(cuts, cut)
		}
	}
	return cuts
}

// BinIndex places v into the bin defined by sorted cut points: bin i covers
// (-inf, cuts[0]), [cuts[0], cuts[1]), ..., [cuts[last], +inf).
func BinIndex(cuts []float64, v float64) int {
	// Binary search for the first cut greater than v.
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v >= cuts[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Median returns the median (0 for empty input).
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
