package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/obs"
)

// chaosFleet builds the canonical chaos fleet: 5 heterogeneous shards,
// per-shard seeded fault schedules, replication 3, majority quorums, fake
// clock. Every call returns a byte-for-byte identical starting state.
func chaosFleet(t *testing.T, reg *obs.Registry) (*Fleet, *obs.Fake) {
	t.Helper()
	clock := obs.NewFake(time.Unix(1700000000, 0).UTC())
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f, err := NewFleet(FleetConfig{
		Shards:      DefaultShardSpecs(5, 0.15, 99),
		Replication: 3,
		Seed:        42,
		Clock:       clock,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, clock
}

// killOnFirstGet wraps a fleet so that the first download-phase op kills a
// shard: ExchangeBlocks joins the whole upload pool before the first Get,
// so this boundary is deterministic for any transfer-job count — the shard
// dies genuinely mid-exchange, after all pieces are replicated and before
// any is fetched.
type killOnFirstGet struct {
	*Fleet
	victim string
	once   sync.Once
}

func (s *killOnFirstGet) Get(container, blob string) ([]byte, error) {
	s.once.Do(func() { s.Fleet.Kill(s.victim) })
	return s.Fleet.Get(container, blob)
}

// TestFleetChaosDeterministicReports is the headline acceptance test:
// with a fixed fleet seed, killing k < replication shards mid-exchange
// yields byte-identical block-exchange reports across transfer jobs 1, 2
// and 8, with zero lost blobs — every piece still fetches through the
// degraded fleet and the reassembled container restores the exact source
// through SafeDecompressAny.
func TestFleetChaosDeterministicReports(t *testing.T) {
	src := symbols(6000, 21)
	run := func(jobs int) (BlockExchangeReport, *Fleet) {
		fleet, _ := chaosFleet(t, nil)
		victim := fleet.Replicas("exchange", "seq.cxb1")[0]
		store := &killOnFirstGet{Fleet: fleet, victim: victim}
		rep, err := ExchangeBlocks(context.Background(), chaosClient, store, "dnax", src, BlockExchangeOptions{
			ExchangeOptions: ExchangeOptions{Blob: "seq", Retry: DefaultRetryPolicy()},
			Block:           compress.BlockOptions{BlockSize: 500, Jobs: jobs},
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return rep, fleet
	}

	baseRep, baseFleet := run(1)
	baseJSON, err := json.Marshal(baseRep)
	if err != nil {
		t.Fatal(err)
	}
	if baseRep.AttemptCount() <= len(baseRep.Traces) {
		t.Fatal("chaos fleet injected no retries — fault schedule not exercising the exchange")
	}
	for _, jobs := range []int{2, 8} {
		rep, _ := run(jobs)
		gotJSON, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, baseJSON) {
			t.Fatalf("jobs=%d report diverged from jobs=1:\n%s\nvs\n%s", jobs, gotJSON, baseJSON)
		}
	}

	// Zero lost blobs: with the victim still dead, every piece is readable
	// from the degraded fleet and the container restores the exact source.
	var reassembled []byte
	manifest, err := baseFleet.Get("exchange", "seq.cxb1")
	if err != nil {
		t.Fatalf("manifest unreadable through degraded fleet: %v", err)
	}
	reassembled = append(reassembled, manifest...)
	for k := 0; k < baseRep.Blocks; k++ {
		frame, err := baseFleet.Get("exchange", fmt.Sprintf("seq.b%06d", k))
		if err != nil {
			t.Fatalf("block %d lost after shard kill: %v", k, err)
		}
		reassembled = append(reassembled, frame...)
	}
	restored, _, err := compress.SafeDecompressAny("dnax", reassembled, compress.Limits{})
	if err != nil {
		t.Fatalf("degraded-fleet container does not restore: %v", err)
	}
	if !bytes.Equal(restored, src) {
		t.Fatal("degraded-fleet restore differs from source")
	}
}

// TestFleetChaosKillReviveCycles: repeated kill/revive cycles across
// exchanges — with breaker cooldowns ticked on the fake clock — never lose
// a blob while the dead-shard count stays below replication.
func TestFleetChaosKillReviveCycles(t *testing.T) {
	reg := obs.NewRegistry()
	fleet, clock := chaosFleet(t, reg)
	src := symbols(3000, 22)
	names := fleet.ShardNames()
	for cycle := 0; cycle < len(names); cycle++ {
		fleet.Kill(names[cycle])
		if cycle > 0 {
			fleet.Revive(names[cycle-1])
		}
		clock.Advance(45 * time.Second) // past breaker cooldown
		blob := fmt.Sprintf("cycle-%d", cycle)
		rep, err := ExchangeBlocks(context.Background(), chaosClient, fleet, "dnax", src, BlockExchangeOptions{
			ExchangeOptions: ExchangeOptions{Blob: blob, Retry: DefaultRetryPolicy()},
			Block:           compress.BlockOptions{BlockSize: 600, Jobs: 4},
		})
		if err != nil {
			t.Fatalf("cycle %d (dead %s): %v", cycle, names[cycle], err)
		}
		if rep.Blocks <= 0 {
			t.Fatalf("cycle %d produced no blocks", cycle)
		}
	}
	// The fleet observed real shard trouble and said so in metrics.
	snap := map[string]bool{}
	for _, fam := range reg.Snapshot() {
		snap[fam.Name] = true
	}
	for _, name := range []string{"dna_fleet_ops_total", "dna_fleet_shard_state", "dna_fleet_shard_error_ewma", "dna_fleet_breaker_transitions_total"} {
		if !snap[name] {
			t.Fatalf("metric family %s missing after chaos cycles; have %v", name, snap)
		}
	}
}

// TestFleetChaosQuorumLossAttribution: killing >= quorum shards of a
// 3-replica fleet surfaces a typed *DegradedError through the whole
// exchange stack, attributing each dead shard by name.
func TestFleetChaosQuorumLossAttribution(t *testing.T) {
	clock := obs.NewFake(time.Unix(1700000000, 0).UTC())
	fleet, err := NewFleet(FleetConfig{
		Shards:   DefaultShardSpecs(3, 0, 7),
		Seed:     42,
		Clock:    clock,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	names := fleet.ShardNames()
	fleet.Kill(names[0])
	fleet.Kill(names[1])
	_, xerr := ExchangeBlocks(context.Background(), chaosClient, fleet, "dnax", symbols(1200, 23), BlockExchangeOptions{
		ExchangeOptions: ExchangeOptions{Blob: "doomed", Retry: RetryPolicy{MaxRetries: 1}},
		Block:           compress.BlockOptions{BlockSize: 400},
	})
	var deg *DegradedError
	if !errors.As(xerr, &deg) {
		t.Fatalf("quorum-loss exchange = %v, want *DegradedError in chain", xerr)
	}
	named := map[string]bool{}
	for _, sf := range deg.Failures {
		named[sf.Shard] = true
	}
	if !named[names[0]] || !named[names[1]] {
		t.Fatalf("degraded error attributes %v, want both %s and %s", named, names[0], names[1])
	}
	var down *ShardDownError
	if !errors.As(xerr, &down) {
		t.Fatalf("attribution does not unwrap to *ShardDownError: %v", xerr)
	}
}

// TestFleetChaosFlappingUnderRace: concurrent exchanges while a goroutine
// flaps shards up and down — no data race (run under -race via the fleet
// gate) and no lost blob once the flapping stops.
func TestFleetChaosFlappingUnderRace(t *testing.T) {
	reg := obs.NewRegistry()
	fleet, clock := chaosFleet(t, reg)
	names := fleet.ShardNames()
	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := names[i%len(names)]
			fleet.Kill(name)
			clock.Advance(time.Second)
			fleet.Revive(name)
		}
	}()

	src := symbols(2000, 24)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ExchangeBlocks(context.Background(), chaosClient, fleet, "dnax", src, BlockExchangeOptions{
				ExchangeOptions: ExchangeOptions{Blob: fmt.Sprintf("flap-%d", i), Retry: RetryPolicy{MaxRetries: 12, BaseMS: 1, CapMS: 4}},
				Block:           compress.BlockOptions{BlockSize: 500, Jobs: 2},
			})
		}(i)
	}
	wg.Wait()
	close(stop)
	flapper.Wait()

	// Flapping can legitimately cost quorum mid-write; what it must never
	// do is corrupt data or wedge the fleet. After the storm every blob
	// that reported success is still fully readable.
	for i, err := range errs {
		if err != nil {
			if !IsTransient(err) && !IsDegraded(err) && !errors.Is(err, compress.ErrCorrupt) {
				t.Fatalf("exchange %d failed with untyped error: %v", i, err)
			}
			continue
		}
		if _, gerr := fleet.Get("exchange", fmt.Sprintf("flap-%d.cxb1", i)); gerr != nil {
			t.Fatalf("exchange %d succeeded but manifest unreadable after storm: %v", i, gerr)
		}
	}
}
