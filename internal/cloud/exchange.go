package cloud

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/srl-nuces/ctxdna/internal/compress"
)

// RetryPolicy is the exchange client's capped-exponential-backoff schedule.
// Backoff waits are modeled, not slept: BackoffMS derives every wait from
// (Seed, op, retry index) alone, so a retry schedule is byte-reproducible
// from the seed and never reads the wall clock.
type RetryPolicy struct {
	// MaxRetries is the number of retries after the first attempt, so an op
	// is tried at most MaxRetries+1 times.
	MaxRetries int
	// BaseMS is the first backoff wait; retry r waits BaseMS·2^r.
	BaseMS float64
	// CapMS clamps the exponential growth (0 = uncapped).
	CapMS float64
	// JitterFrac spreads each wait by ±JitterFrac deterministically.
	JitterFrac float64
	// Seed selects the jitter sequence.
	Seed uint64
}

// DefaultRetryPolicy survives sustained 30 % transient fault rates with
// comfortable margin: 8 retries at base 50 ms capped at 2 s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 8, BaseMS: 50, CapMS: 2000, JitterFrac: 0.2, Seed: 2015}
}

// BackoffMS returns the modeled wait in milliseconds before retry number
// retry (0-based) of the named op: capped exponential growth with
// deterministic jitter.
func (p RetryPolicy) BackoffMS(op string, retry int) float64 {
	if p.BaseMS <= 0 {
		return 0
	}
	d := p.BaseMS * math.Pow(2, float64(retry))
	if p.CapMS > 0 && d > p.CapMS {
		d = p.CapMS
	}
	if p.JitterFrac > 0 {
		d *= 1 + p.JitterFrac*(2*hashUnit(p.Seed, "backoff", op, fmt.Sprintf("%d", retry))-1)
	}
	return d
}

// OpTrace records how one store op went: how many attempts it took and the
// modeled backoff waits between them. Identical seeds produce identical
// traces — the chaos tests' reproducibility contract.
type OpTrace struct {
	Op        string
	Attempts  int
	BackoffMS []float64
}

// ExchangeOptions configures one Exchange call.
type ExchangeOptions struct {
	// Container and Blob name the uploaded BLOB (defaults: "exchange",
	// "blob"). A missing container is created; an existing one is reused.
	Container string
	Blob      string
	// Retry is the backoff schedule; the zero value means no retries.
	Retry RetryPolicy
	// OpTimeout, when positive, bounds the real time of each store op. An
	// op that overruns counts as a transient failure and is retried.
	OpTimeout time.Duration
	// Cleanup deletes the BLOB (with the same retry schedule) after the
	// round trip is verified.
	Cleanup bool
	// Limits bounds what the receiving VM will decompress; the zero value
	// applies the compress package defaults.
	Limits compress.Limits
}

// ExchangeReport is the outcome of one fault-tolerant exchange: modeled
// per-stage times, the retry traces, and the compression summary.
type ExchangeReport struct {
	Codec           string
	OriginalBases   int
	CompressedBytes int
	// FrameBytes is what actually travels: the codec payload sealed inside
	// the armored frame (header + checksums).
	FrameBytes  int
	BitsPerBase float64
	// Modeled stage times. Upload/Download charge the full op cost per
	// attempt (a failed PUT still converted and pushed the stream), and
	// RetryWaitMS adds the modeled backoff waits.
	CompressMS   float64
	DecompressMS float64
	UploadMS     float64
	DownloadMS   float64
	RetryWaitMS  float64
	Traces       []OpTrace
}

// TotalTimeMS is the end-to-end modeled exchange cost, backoff included.
func (r ExchangeReport) TotalTimeMS() float64 {
	return r.CompressMS + r.DecompressMS + r.UploadMS + r.DownloadMS + r.RetryWaitMS
}

// AttemptCount sums store-op attempts across the traces.
func (r ExchangeReport) AttemptCount() int {
	n := 0
	for _, tr := range r.Traces {
		n += tr.Attempts
	}
	return n
}

// Exchange runs the paper's Figure 1 pipeline against a possibly-faulty
// store: compress src with the named codec on the client VM, seal the
// stream into an armored frame, upload the BLOB, download it at the fixed
// Azure VM, and restore it through compress.SafeDecompress. Integrity is
// proven the way a real receiving VM must prove it — from the frame's own
// checksums over the payload and the restored output — not by comparing
// against source bytes the receiver would never have. Transient store
// failures (and per-op timeouts) are retried under opts.Retry; permanent
// failures and ctx cancellation abort immediately; a corrupted download
// surfaces as compress.ErrCorrupt. On failure the returned report still
// carries the traces collected so far.
func Exchange(ctx context.Context, client VM, store Store, codecName string, src []byte, opts ExchangeOptions) (ExchangeReport, error) {
	rep := ExchangeReport{Codec: codecName, OriginalBases: len(src)}
	if store == nil {
		return rep, fmt.Errorf("cloud: nil store")
	}
	if opts.Container == "" {
		opts.Container = "exchange"
	}
	if opts.Blob == "" {
		opts.Blob = "blob"
	}
	codec, err := compress.New(codecName)
	if err != nil {
		return rep, err
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	data, cst, err := codec.Compress(src)
	if err != nil {
		return rep, fmt.Errorf("cloud: compress: %w", err)
	}
	frame := compress.Seal(codecName, src, data)
	rep.CompressedBytes = len(data)
	rep.FrameBytes = len(frame)
	rep.BitsPerBase = compress.Ratio(len(src), len(data))
	rep.CompressMS = client.ExecMS(cst)

	if err := store.CreateContainer(opts.Container); err != nil && !errors.Is(err, ErrContainerExists) {
		return rep, fmt.Errorf("cloud: create container: %w", err)
	}

	put, err := retryOp(ctx, opts, "put", func() error {
		return store.Put(opts.Container, opts.Blob, frame)
	})
	rep.Traces = append(rep.Traces, put)
	rep.UploadMS = client.UploadMS(len(frame)) * float64(put.Attempts)
	rep.RetryWaitMS = sumBackoff(rep.Traces)
	if err != nil {
		return rep, fmt.Errorf("cloud: upload: %w", err)
	}

	var fetched []byte
	get, err := retryOp(ctx, opts, "get", func() error {
		var gerr error
		fetched, gerr = store.Get(opts.Container, opts.Blob)
		return gerr
	})
	rep.Traces = append(rep.Traces, get)
	rep.DownloadMS = AzureVM.DownloadMS(len(frame)) * float64(get.Attempts)
	rep.RetryWaitMS = sumBackoff(rep.Traces)
	if err != nil {
		return rep, fmt.Errorf("cloud: download: %w", err)
	}

	// The receiving VM restores and verifies from the frame alone: header
	// and payload checksums, contained codec execution, and the restored
	// output's length and checksum. No source bytes are consulted.
	_, dst, err := compress.SafeDecompress(codecName, fetched, opts.Limits)
	if err != nil {
		return rep, fmt.Errorf("cloud: decompress: %w", err)
	}
	rep.DecompressMS = AzureVM.ExecMS(dst)

	if opts.Cleanup {
		del, err := retryOp(ctx, opts, "delete", func() error {
			return store.Delete(opts.Container, opts.Blob)
		})
		rep.Traces = append(rep.Traces, del)
		rep.RetryWaitMS = sumBackoff(rep.Traces)
		if err != nil {
			return rep, fmt.Errorf("cloud: cleanup: %w", err)
		}
	}
	return rep, nil
}

func sumBackoff(traces []OpTrace) float64 {
	total := 0.0
	for _, tr := range traces {
		for _, ms := range tr.BackoffMS {
			total += ms
		}
	}
	return total
}

// retryOp drives one store op through the retry schedule: transient
// failures and per-op timeouts are retried up to opts.Retry.MaxRetries
// times; permanent failures and external cancellation end the op at once.
func retryOp(ctx context.Context, opts ExchangeOptions, op string, f func() error) (OpTrace, error) {
	tr := OpTrace{Op: op}
	for retry := 0; ; retry++ {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		tr.Attempts++
		err := runOp(ctx, opts.OpTimeout, f)
		if err == nil {
			return tr, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// External cancellation, not a per-op deadline: don't retry.
			return tr, cerr
		}
		if !IsTransient(err) && !errors.Is(err, context.DeadlineExceeded) {
			return tr, err
		}
		if retry >= opts.Retry.MaxRetries {
			return tr, fmt.Errorf("cloud: %s gave up after %d attempts: %w", op, tr.Attempts, err)
		}
		tr.BackoffMS = append(tr.BackoffMS, opts.Retry.BackoffMS(op, retry))
	}
}

// runOp executes f, bounding its real time by timeout when set. The op runs
// in its own goroutine only when a timeout applies; an abandoned op holds a
// buffered channel so a late finish never blocks.
func runOp(ctx context.Context, timeout time.Duration, f func() error) error {
	if timeout <= 0 {
		return f()
	}
	opCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-opCtx.Done():
		return opCtx.Err()
	}
}
