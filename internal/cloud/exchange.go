package cloud

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/obs"
)

// RetryPolicy is the exchange client's capped-exponential-backoff schedule.
// Backoff waits are modeled, not slept: BackoffMS derives every wait from
// (Seed, op, retry index) alone, so a retry schedule is byte-reproducible
// from the seed and never reads the wall clock.
type RetryPolicy struct {
	// MaxRetries is the number of retries after the first attempt, so an op
	// is tried at most MaxRetries+1 times.
	MaxRetries int
	// BaseMS is the first backoff wait; retry r waits BaseMS·2^r.
	BaseMS float64
	// CapMS clamps the exponential growth (0 = uncapped).
	CapMS float64
	// JitterFrac spreads each wait by ±JitterFrac deterministically.
	JitterFrac float64
	// Seed selects the jitter sequence.
	Seed uint64
}

// DefaultRetryPolicy survives sustained 30 % transient fault rates with
// comfortable margin: 8 retries at base 50 ms capped at 2 s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 8, BaseMS: 50, CapMS: 2000, JitterFrac: 0.2, Seed: 2015}
}

// BackoffMS returns the modeled wait in milliseconds before retry number
// retry (0-based) of the named op: capped exponential growth with
// deterministic jitter.
func (p RetryPolicy) BackoffMS(op string, retry int) float64 {
	if p.BaseMS <= 0 {
		return 0
	}
	d := p.BaseMS * math.Pow(2, float64(retry))
	if p.CapMS > 0 && d > p.CapMS {
		d = p.CapMS
	}
	if p.JitterFrac > 0 {
		d *= 1 + p.JitterFrac*(2*hashUnit(p.Seed, "backoff", op, fmt.Sprintf("%d", retry))-1)
	}
	return d
}

// OpTrace records how one store op went: how many attempts it took and the
// modeled backoff waits between them. Identical seeds produce identical
// traces — the chaos tests' reproducibility contract.
type OpTrace struct {
	Op        string
	Attempts  int
	BackoffMS []float64
}

// ExchangeOptions configures one Exchange call.
type ExchangeOptions struct {
	// Container and Blob name the uploaded BLOB (defaults: "exchange",
	// "blob"). A missing container is created; an existing one is reused.
	Container string
	Blob      string
	// Retry is the backoff schedule; the zero value means no retries.
	Retry RetryPolicy
	// OpTimeout, when positive, bounds the real time of each store op. An
	// op that overruns counts as a transient failure and is retried.
	OpTimeout time.Duration
	// Cleanup deletes the BLOB (with the same retry schedule) after the
	// round trip is verified.
	Cleanup bool
	// Limits bounds what the receiving VM will decompress; the zero value
	// applies the compress package defaults.
	Limits compress.Limits
}

// ExchangeReport is the outcome of one fault-tolerant exchange: modeled
// per-stage times, the retry traces, and the compression summary.
type ExchangeReport struct {
	Codec           string
	OriginalBases   int
	CompressedBytes int
	// FrameBytes is what actually travels: the codec payload sealed inside
	// the armored frame (header + checksums).
	FrameBytes  int
	BitsPerBase float64
	// Modeled stage times. Upload/Download charge the full op cost per
	// attempt (a failed PUT still converted and pushed the stream), and
	// RetryWaitMS adds the modeled backoff waits.
	CompressMS   float64
	DecompressMS float64
	UploadMS     float64
	DownloadMS   float64
	RetryWaitMS  float64
	Traces       []OpTrace
}

// TotalTimeMS is the end-to-end modeled exchange cost, backoff included.
func (r ExchangeReport) TotalTimeMS() float64 {
	return r.CompressMS + r.DecompressMS + r.UploadMS + r.DownloadMS + r.RetryWaitMS
}

// AttemptCount sums store-op attempts across the traces.
func (r ExchangeReport) AttemptCount() int {
	n := 0
	for _, tr := range r.Traces {
		n += tr.Attempts
	}
	return n
}

// Exchange runs the paper's Figure 1 pipeline against a possibly-faulty
// store: compress src with the named codec on the client VM, seal the
// stream into an armored frame, upload the BLOB, download it at the fixed
// Azure VM, and restore it through compress.SafeDecompress. Integrity is
// proven the way a real receiving VM must prove it — from the frame's own
// checksums over the payload and the restored output — not by comparing
// against source bytes the receiver would never have. Transient store
// failures (and per-op timeouts) are retried under opts.Retry; permanent
// failures and ctx cancellation abort immediately; a corrupted download
// surfaces as compress.ErrCorrupt. On failure the returned report still
// carries the traces collected so far.
//
// Observability rides the context: metrics land in obs.Metrics(ctx), a
// "cloud.exchange" span (with per-op child spans inside retryOp) is opened
// when obs.WithTracer installed a tracer, and retries log through
// obs.Log(ctx). All recorded figures are modeled or byte counts, so
// instrumentation never perturbs the deterministic report.
func Exchange(ctx context.Context, client VM, store Store, codecName string, src []byte, opts ExchangeOptions) (rep ExchangeReport, err error) {
	rep = ExchangeReport{Codec: codecName, OriginalBases: len(src)}
	if store == nil {
		return rep, fmt.Errorf("cloud: nil store")
	}
	if opts.Container == "" {
		opts.Container = "exchange"
	}
	if opts.Blob == "" {
		opts.Blob = "blob"
	}
	codec, err := compress.New(codecName)
	if err != nil {
		return rep, err
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	reg := obs.Metrics(ctx)
	codec = compress.Instrument(reg, codec)
	var span *obs.Span
	ctx, span = obs.Start(ctx, "cloud.exchange")
	span.SetAttr("codec", codecName)
	defer func() {
		span.SetAttr("frame_bytes", rep.FrameBytes)
		span.SetAttr("retry_wait_ms", rep.RetryWaitMS)
		span.SetAttr("attempts", rep.AttemptCount())
		outcome := "ok"
		switch {
		case err == nil:
		case errors.Is(err, compress.ErrCorrupt):
			outcome = "corrupt"
			reg.Counter("dna_exchange_corrupt_total", "Exchanges that delivered a corrupt frame.").Inc()
		default:
			outcome = "error"
		}
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		reg.Counter("dna_exchange_total", "Exchange pipelines run.", "outcome", outcome).Inc()
		span.End()
	}()

	data, cst, err := codec.Compress(src)
	if err != nil {
		return rep, fmt.Errorf("cloud: compress: %w", err)
	}
	frame := compress.Seal(codecName, src, data)
	rep.CompressedBytes = len(data)
	rep.FrameBytes = len(frame)
	rep.BitsPerBase = compress.Ratio(len(src), len(data))
	rep.CompressMS = client.ExecMS(cst)

	if err := store.CreateContainer(opts.Container); err != nil && !errors.Is(err, ErrContainerExists) {
		return rep, fmt.Errorf("cloud: create container: %w", err)
	}

	put, err := retryOp(ctx, opts, "put", func() error {
		return store.Put(opts.Container, opts.Blob, frame)
	})
	rep.Traces = append(rep.Traces, put)
	rep.UploadMS = client.UploadMS(len(frame)) * float64(put.Attempts)
	rep.RetryWaitMS = sumBackoff(rep.Traces)
	if err != nil {
		return rep, fmt.Errorf("cloud: upload: %w", err)
	}
	reg.Counter("dna_exchange_up_bytes_total", "Frame bytes uploaded (successful PUTs).").Add(uint64(len(frame)))

	var fetched []byte
	get, err := retryOp(ctx, opts, "get", func() error {
		var gerr error
		fetched, gerr = store.Get(opts.Container, opts.Blob)
		return gerr
	})
	rep.Traces = append(rep.Traces, get)
	rep.DownloadMS = AzureVM.DownloadMS(len(frame)) * float64(get.Attempts)
	rep.RetryWaitMS = sumBackoff(rep.Traces)
	if err != nil {
		return rep, fmt.Errorf("cloud: download: %w", err)
	}
	reg.Counter("dna_exchange_down_bytes_total", "Frame bytes downloaded (successful GETs).").Add(uint64(len(fetched)))

	// The receiving VM restores and verifies from the frame alone: header
	// and payload checksums, contained codec execution, and the restored
	// output's length and checksum. No source bytes are consulted.
	restored, dst, err := compress.SafeDecompress(codecName, fetched, opts.Limits)
	compress.ObserveDecompress(reg, codecName, len(fetched), len(restored), dst, err)
	if err != nil {
		return rep, fmt.Errorf("cloud: decompress: %w", err)
	}
	rep.DecompressMS = AzureVM.ExecMS(dst)

	if opts.Cleanup {
		del, err := retryOp(ctx, opts, "delete", func() error {
			return store.Delete(opts.Container, opts.Blob)
		})
		rep.Traces = append(rep.Traces, del)
		rep.RetryWaitMS = sumBackoff(rep.Traces)
		if err != nil {
			return rep, fmt.Errorf("cloud: cleanup: %w", err)
		}
	}
	return rep, nil
}

func sumBackoff(traces []OpTrace) float64 {
	total := 0.0
	for _, tr := range traces {
		for _, ms := range tr.BackoffMS {
			total += ms
		}
	}
	return total
}

// retryOp drives one store op through the retry schedule: transient
// failures and per-op timeouts are retried up to opts.Retry.MaxRetries
// times; permanent failures and external cancellation end the op at once.
// Each op gets its own child span plus attempt/outcome/backoff metrics,
// and every retry is logged at debug level through the context logger.
func retryOp(ctx context.Context, opts ExchangeOptions, op string, f func() error) (tr OpTrace, err error) {
	tr = OpTrace{Op: op}
	reg := obs.Metrics(ctx)
	_, span := obs.Start(ctx, "exchange."+op)
	defer func() {
		span.SetAttr("attempts", tr.Attempts)
		span.SetAttr("retry_wait_ms", sumBackoff([]OpTrace{tr}))
		outcome := "ok"
		switch {
		case err == nil:
		case ctx.Err() != nil:
			outcome = "canceled"
		case IsTransient(err) || errors.Is(err, context.DeadlineExceeded):
			// Includes retry exhaustion: the gave-up error wraps the last
			// transient failure.
			outcome = "transient"
		default:
			outcome = "permanent"
		}
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		reg.Counter("dna_exchange_ops_total", "Store operations by final outcome.", "op", op, "outcome", outcome).Inc()
		reg.Counter("dna_exchange_attempts_total", "Store operation attempts, retries included.", "op", op).Add(uint64(tr.Attempts))
		span.End()
	}()
	for retry := 0; ; retry++ {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		tr.Attempts++
		err := runOp(ctx, op, opts.OpTimeout, f)
		if err == nil {
			return tr, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// External cancellation, not a per-op deadline: don't retry.
			return tr, cerr
		}
		if !IsTransient(err) && !errors.Is(err, context.DeadlineExceeded) {
			return tr, err
		}
		if retry >= opts.Retry.MaxRetries {
			return tr, fmt.Errorf("cloud: %s gave up after %d attempts: %w", op, tr.Attempts, err)
		}
		wait := opts.Retry.BackoffMS(op, retry)
		tr.BackoffMS = append(tr.BackoffMS, wait)
		reg.Counter("dna_exchange_retries_total", "Transient-failure retries scheduled.", "op", op).Inc()
		reg.Histogram("dna_exchange_backoff_ms", "Modeled backoff waits between attempts.", obs.DefMSBuckets(), "op", op).Observe(wait)
		obs.Log(ctx).Debug("cloud: transient failure, retrying",
			"op", op, "retry", retry, "backoff_ms", wait, "err", err)
	}
}

// OpTimeoutError names the store op whose per-op deadline expired, so a
// trace or RunError says "get timed out after 50ms" instead of a generic
// deadline message. It unwraps to context.DeadlineExceeded, keeping the
// retry classification (timeouts are transient) unchanged.
type OpTimeoutError struct {
	Op      string
	Timeout time.Duration
}

func (e *OpTimeoutError) Error() string {
	return fmt.Sprintf("cloud: %s timed out after %v", e.Op, e.Timeout)
}

// Unwrap lets errors.Is(err, context.DeadlineExceeded) keep working.
func (e *OpTimeoutError) Unwrap() error { return context.DeadlineExceeded }

// runOp executes f, bounding its real time by timeout when set. The op runs
// in its own goroutine only when a timeout applies; an abandoned op holds a
// buffered channel so a late finish never blocks. A deadline expiry is
// reported as an *OpTimeoutError carrying the op name (via
// context.WithTimeoutCause), not a bare DeadlineExceeded.
func runOp(ctx context.Context, op string, timeout time.Duration, f func() error) error {
	if timeout <= 0 {
		return f()
	}
	opCtx, cancel := context.WithTimeoutCause(ctx, timeout, &OpTimeoutError{Op: op, Timeout: timeout})
	defer cancel()
	done := make(chan error, 1)
	//lint:ignore goroutinebound timeout abandonment is the point: the buffered channel lets a late op finish without blocking, and f holds no resources past its return
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-opCtx.Done():
		// Cause names the op for a per-op deadline; external cancellation
		// keeps the parent's cause untouched.
		return context.Cause(opCtx)
	}
}
