package cloud

import (
	"bytes"
	"context"
	"log/slog"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// obsCtx builds a context carrying a fresh registry, a fake-clock tracer
// and a debug logger, returning all three observers.
func obsCtx() (context.Context, *obs.Registry, *obs.Tracer, *bytes.Buffer) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.NewFake(time.Unix(1700000000, 0).UTC()))
	var logBuf bytes.Buffer
	ctx := obs.WithMetrics(context.Background(), reg)
	ctx = obs.WithTracer(ctx, tr)
	ctx = obs.WithLogger(ctx, obs.NewLogger(&logBuf, slog.LevelDebug))
	return ctx, reg, tr, &logBuf
}

func counter(reg *obs.Registry, name string, labels ...string) uint64 {
	return reg.Counter(name, "", labels...).Value()
}

// TestExchangeObservability: a clean exchange emits a deterministic span
// tree and books codec, byte-volume and per-op outcome metrics.
func TestExchangeObservability(t *testing.T) {
	ctx, reg, tr, _ := obsCtx()
	store := NewBlobStore()
	src := symbols(4096, 11)
	rep, err := Exchange(ctx, chaosClient, store, "dnax", src, ExchangeOptions{
		Retry: DefaultRetryPolicy(), Cleanup: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	recs := tr.Records()
	wantNames := []string{"exchange.put", "exchange.get", "exchange.delete", "cloud.exchange"}
	if len(recs) != len(wantNames) {
		t.Fatalf("%d spans, want %d: %+v", len(recs), len(wantNames), recs)
	}
	root := recs[len(recs)-1]
	for i, rec := range recs {
		if rec.Name != wantNames[i] {
			t.Errorf("span %d = %q, want %q", i, rec.Name, wantNames[i])
		}
		if rec.Name != "cloud.exchange" && rec.Parent != root.ID {
			t.Errorf("span %q parent = %d, want root %d", rec.Name, rec.Parent, root.ID)
		}
		// Fake clock never advanced: durations are exactly zero.
		if rec.DurationNS != 0 {
			t.Errorf("span %q duration = %d on a frozen clock", rec.Name, rec.DurationNS)
		}
	}

	if got := counter(reg, "dna_exchange_total", "outcome", "ok"); got != 1 {
		t.Errorf("exchange ok = %d, want 1", got)
	}
	for _, op := range []string{"put", "get", "delete"} {
		if got := counter(reg, "dna_exchange_ops_total", "op", op, "outcome", "ok"); got != 1 {
			t.Errorf("op %s ok = %d, want 1", op, got)
		}
		if got := counter(reg, "dna_exchange_attempts_total", "op", op); got != 1 {
			t.Errorf("op %s attempts = %d, want 1", op, got)
		}
	}
	if got := counter(reg, "dna_exchange_up_bytes_total"); got != uint64(rep.FrameBytes) {
		t.Errorf("up bytes = %d, want %d", got, rep.FrameBytes)
	}
	if got := counter(reg, "dna_exchange_down_bytes_total"); got != uint64(rep.FrameBytes) {
		t.Errorf("down bytes = %d, want %d", got, rep.FrameBytes)
	}
	// The codec ran instrumented: one compress through the wrapper, one
	// decompress booked by the hardened receive path.
	if got := counter(reg, "dna_codec_calls_total", "codec", "dnax", "op", "compress"); got != 1 {
		t.Errorf("codec compress calls = %d, want 1", got)
	}
	if got := counter(reg, "dna_codec_calls_total", "codec", "dnax", "op", "decompress"); got != 1 {
		t.Errorf("codec decompress calls = %d, want 1", got)
	}
}

// TestExchangeObservabilityRetries: injected transient faults surface as
// retry counters, backoff observations, span attributes and debug logs.
func TestExchangeObservabilityRetries(t *testing.T) {
	ctx, reg, tr, logBuf := obsCtx()
	store := NewFaultyStore(NewBlobStore(), FaultConfig{Rate: 0.3, Seed: 42})
	src := symbols(4096, 12)
	rep, err := Exchange(ctx, chaosClient, store, "dnax", src, ExchangeOptions{Retry: DefaultRetryPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AttemptCount() <= 2 {
		t.Skipf("seed produced no retries (attempts=%d); pick another seed", rep.AttemptCount())
	}

	wantRetries := uint64(rep.AttemptCount() - 2) // 2 ops, first attempt each is free
	gotRetries := counter(reg, "dna_exchange_retries_total", "op", "put") +
		counter(reg, "dna_exchange_retries_total", "op", "get")
	if gotRetries != wantRetries {
		t.Errorf("retries = %d, want %d", gotRetries, wantRetries)
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("transient failure")) {
		t.Errorf("no retry debug log emitted:\n%s", logBuf.String())
	}
	// Span attempt attributes must agree with the report's traces.
	for _, rec := range tr.Records() {
		if rec.Name != "exchange.put" && rec.Name != "exchange.get" {
			continue
		}
		var attempts int
		for _, a := range rec.Attrs {
			if a.Key == "attempts" {
				attempts, _ = a.Value.(int)
			}
		}
		for _, opTr := range rep.Traces {
			if "exchange."+opTr.Op == rec.Name && attempts != opTr.Attempts {
				t.Errorf("%s span attempts = %d, trace says %d", rec.Name, attempts, opTr.Attempts)
			}
		}
	}
}

// TestExchangeObservabilityExhaustion: a store that always fails books a
// transient op outcome and an error exchange outcome.
func TestExchangeObservabilityExhaustion(t *testing.T) {
	ctx, reg, _, _ := obsCtx()
	store := NewFaultyStore(NewBlobStore(), FaultConfig{Rate: 1, Seed: 3})
	_, err := Exchange(ctx, chaosClient, store, "dnax", symbols(512, 13), ExchangeOptions{
		Retry: RetryPolicy{MaxRetries: 2, BaseMS: 10, Seed: 1},
	})
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	if got := counter(reg, "dna_exchange_ops_total", "op", "put", "outcome", "transient"); got != 1 {
		t.Errorf("put transient = %d, want 1", got)
	}
	if got := counter(reg, "dna_exchange_total", "outcome", "error"); got != 1 {
		t.Errorf("exchange error = %d, want 1", got)
	}
	if got := counter(reg, "dna_exchange_attempts_total", "op", "put"); got != 3 {
		t.Errorf("put attempts = %d, want 3", got)
	}
}
