package cloud

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestTransientErrorTyping(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &TransientError{Op: "put", Container: "c", Blob: "b", Attempt: 2})
	if !IsTransient(err) {
		t.Error("IsTransient misses a wrapped *TransientError")
	}
	var te *TransientError
	if !errors.As(err, &te) || te.Op != "put" || te.Attempt != 2 {
		t.Errorf("errors.As recovered %+v", te)
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error classified transient")
	}
	if IsTransient(ErrNotFound) {
		t.Error("permanent ErrNotFound classified transient")
	}
}

// faultSequence records the injected/passed outcome of n consecutive Put
// attempts on one key.
func faultSequence(s *FaultyStore, blob string, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = IsTransient(s.Put("c", blob, []byte{1}))
	}
	return out
}

func TestFaultyStoreDeterministicSchedule(t *testing.T) {
	mk := func(seed uint64) *FaultyStore {
		inner := NewBlobStore()
		if err := inner.CreateContainer("c"); err != nil {
			t.Fatal(err)
		}
		return NewFaultyStore(inner, FaultConfig{Rate: 0.5, Seed: seed})
	}
	a := faultSequence(mk(7), "blob", 64)
	b := faultSequence(mk(7), "blob", 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at attempt %d", i)
		}
	}
	faults, passes := 0, 0
	for _, injected := range a {
		if injected {
			faults++
		} else {
			passes++
		}
	}
	if faults == 0 || passes == 0 {
		t.Fatalf("rate 0.5 over 64 attempts: %d faults, %d passes — schedule degenerate", faults, passes)
	}
	// A different key draws an independent schedule; interleaving must not
	// matter (per-key attempt counters).
	s := mk(7)
	other := faultSequence(s, "other", 64) // interleave: other first...
	again := faultSequence(s, "blob", 64)  // ...then blob
	for i := range a {
		if a[i] != again[i] {
			t.Fatalf("interleaving another key changed blob's schedule at attempt %d", i)
		}
	}
	_ = other
}

func TestFaultyStoreRateZeroTransparent(t *testing.T) {
	inner := NewBlobStore()
	if err := inner.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	s := NewFaultyStore(inner, FaultConfig{Rate: 0, Seed: 1})
	if err := s.Put("c", "b", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("c", "b"); err != nil || len(got) != 2 {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if err := s.Delete("c", "b"); err != nil {
		t.Fatal(err)
	}
	ops, injected := s.Counters()
	if ops != 3 || injected != 0 {
		t.Fatalf("counters: %d ops, %d injected, want 3 and 0", ops, injected)
	}
}

func TestFaultyStoreRateOneAlwaysFails(t *testing.T) {
	inner := NewBlobStore()
	if err := inner.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	s := NewFaultyStore(inner, FaultConfig{Rate: 1, Seed: 1})
	for i := 0; i < 10; i++ {
		if err := s.Put("c", "b", nil); !IsTransient(err) {
			t.Fatalf("attempt %d: err = %v, want transient", i, err)
		}
	}
	if _, err := inner.Get("c", "b"); !errors.Is(err, ErrNotFound) {
		t.Error("fault-blocked Put reached the inner store")
	}
}

// TestFaultyStorePermanentErrorsPassThrough: real store failures keep their
// permanent classification through the wrapper.
func TestFaultyStorePermanentErrorsPassThrough(t *testing.T) {
	s := NewFaultyStore(NewBlobStore(), FaultConfig{Rate: 0, Seed: 1})
	_, err := s.Get("missing", "b")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if IsTransient(err) {
		t.Error("permanent not-found classified transient")
	}
	if err := s.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateContainer("c"); !errors.Is(err, ErrContainerExists) {
		t.Errorf("duplicate container through wrapper: %v", err)
	}
}

// TestFaultyStoreConcurrent hammers Put/Get/Delete with faults from many
// goroutines; under -race this pins the wrapper's locking, and the per-key
// schedules stay deterministic despite scheduling.
func TestFaultyStoreConcurrent(t *testing.T) {
	inner := NewBlobStore()
	if err := inner.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	s := NewFaultyStore(inner, FaultConfig{Rate: 0.3, Seed: 9})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				blob := fmt.Sprintf("blob-%d-%d", g, i)
				until := func(op func() error) {
					for op() != nil {
					}
				}
				until(func() error { return s.Put("c", blob, []byte{byte(g), byte(i)}) })
				until(func() error { _, err := s.Get("c", blob); return err })
				until(func() error { return s.Delete("c", blob) })
			}
		}(g)
	}
	wg.Wait()
	names, err := inner.List("c")
	if err != nil || len(names) != 0 {
		t.Fatalf("List = %v, %v (want empty after deletes)", names, err)
	}
	ops, injected := s.Counters()
	if ops < 8*40*3 {
		t.Errorf("ops = %d, want >= %d", ops, 8*40*3)
	}
	if injected == 0 {
		t.Error("no faults injected at rate 0.3")
	}
}
