package cloud

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// This file implements cloud.Fleet: a consistent-hash-sharded set of
// heterogeneous Store backends with N-way replication, quorum writes,
// quorum-preferred reads, per-shard health tracking (EWMA error rate) and
// a deterministic circuit breaker driven by an injected obs.Clock.
//
// Fleet itself satisfies Store, so Exchange and ExchangeBlocks route
// through it unchanged: the exchange pipeline sees one logical store that
// keeps answering while up to Replication-1 shards are dead, and surfaces
// partial-fleet outages as typed *DegradedError values with per-shard
// attribution instead of opaque failures.
//
// Determinism contract: all routing is a pure function of (ring, key) and
// the per-shard fault schedules are keyed per (op, container, blob,
// attempt), so for a fixed fleet seed the outcome of every exchange is
// byte-identical for any transfer-job count. A dead shard fails every op
// regardless of its attempt counters, which makes the breaker's fast-fail
// (skip) indistinguishable — at the level of returned data and quorum
// counts — from trying the shard and failing; breaker state may therefore
// depend on op interleaving without ever perturbing an ExchangeReport.

// BreakerState is a shard breaker's position in the closed → open →
// half-open state machine.
type BreakerState int

const (
	// BreakerClosed admits every op: the shard is believed healthy.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails every op until CoolDown elapses on the
	// injected clock.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe ops; their outcomes
	// decide between closing and re-opening.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig parameterizes the per-shard circuit breaker. The breaker
// trips on hard failures only (a down shard, an unexpected store error):
// injected *TransientError faults are the retry layer's business and mean
// the shard answered, so they feed the health EWMA but never open the
// breaker — that keeps breaker decisions independent of how concurrent
// blobs interleave their transient faults.
type BreakerConfig struct {
	// HardTrip is the consecutive-hard-failure count that opens the
	// breaker; <= 0 means 3.
	HardTrip int
	// CoolDown is how long the breaker stays open before allowing
	// half-open probes, measured on the injected clock; <= 0 means 30s.
	CoolDown time.Duration
	// HalfOpenProbes is how many probe ops half-open admits and how many
	// successes close the breaker; <= 0 means 1.
	HalfOpenProbes int
	// EWMAAlpha is the smoothing factor of the per-shard error-rate EWMA
	// (health tracking, exported as dna_fleet_shard_error_ewma); <= 0
	// means 0.25.
	EWMAAlpha float64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.HardTrip <= 0 {
		c.HardTrip = 3
	}
	if c.CoolDown <= 0 {
		c.CoolDown = 30 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 0.25
	}
	return c
}

// ShardSpec describes one heterogeneous backend of a Fleet: its identity,
// the store behind it, its seeded transient-fault schedule, and its
// modeled REST latency and bandwidth (the paper's point that backends
// differ in more than capacity).
type ShardSpec struct {
	// Name identifies the shard in errors, metrics and reports. Required,
	// unique within the fleet.
	Name string
	// Store is the backend; nil means a fresh in-memory BlobStore.
	Store Store
	// FaultRate, when > 0, wraps Store in a FaultyStore injecting seeded
	// transient failures at this rate.
	FaultRate float64
	// FaultSeed selects the shard's fault schedule (only used when
	// FaultRate > 0).
	FaultSeed uint64
	// LatencyMS is the modeled per-op round-trip overhead of this shard.
	LatencyMS float64
	// BandwidthMbps is the modeled transfer bandwidth; <= 0 means latency
	// only.
	BandwidthMbps float64
}

// DefaultShardSpecs builds n heterogeneous shards cycling through a small
// table of modeled backend classes (fast datacenter, standard, cross-region,
// cold), each with the given per-shard fault rate and a seed derived from
// the fleet seed — the fleet-scale analogue of the paper's VM grid.
func DefaultShardSpecs(n int, faultRate float64, seed uint64) []ShardSpec {
	classes := []struct {
		latencyMS float64
		bwMbps    float64
	}{
		{8, 200},
		{20, 100},
		{45, 40},
		{90, 10},
	}
	specs := make([]ShardSpec, n)
	for i := range specs {
		c := classes[i%len(classes)]
		specs[i] = ShardSpec{
			Name:          fmt.Sprintf("shard-%02d", i),
			FaultRate:     faultRate,
			FaultSeed:     hash64(seed, "shard", fmt.Sprintf("%d", i)),
			LatencyMS:     c.latencyMS,
			BandwidthMbps: c.bwMbps,
		}
	}
	return specs
}

// FleetConfig wires a Fleet.
type FleetConfig struct {
	// Shards are the backends. At least one is required.
	Shards []ShardSpec
	// Replication is how many distinct shards hold each blob; <= 0 means
	// min(3, len(Shards)), larger values are clamped to the shard count.
	Replication int
	// WriteQuorum is how many replica acks a Put/Delete needs; <= 0 means
	// a majority of Replication (R/2+1).
	WriteQuorum int
	// ReadQuorum is how many validated replica reads a Get prefers before
	// returning; <= 0 means a majority of Replication. With both quorums
	// at majority, W+R > N guarantees a quorum read observes the newest
	// version. A read that cannot reach quorum but reaches at least one
	// replica still succeeds (blobs are self-verifying armored frames) and
	// is counted as a degraded read.
	ReadQuorum int
	// VNodes is the virtual-node count per shard on the hash ring; <= 0
	// means 64.
	VNodes int
	// Seed keys the ring's hash placement.
	Seed uint64
	// Breaker parameterizes the per-shard circuit breaker.
	Breaker BreakerConfig
	// Clock drives the breaker's open→half-open timing. nil means
	// obs.System(); tests inject obs.NewFake and advance it by hand, so
	// breaker transitions never read wall time.
	Clock obs.Clock
	// Registry receives the dna_fleet_* series; nil means obs.Default().
	Registry *obs.Registry
}

// Typed fleet errors ------------------------------------------------------

// ShardDownError reports an op that reached a killed shard: a hard
// failure the breaker counts toward opening.
type ShardDownError struct {
	Shard string
	Op    string
}

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("cloud: shard %s is down (%s)", e.Shard, e.Op)
}

// BreakerOpenError reports an op the shard's open breaker fast-failed
// without touching the backend.
type BreakerOpenError struct {
	Shard string
	Op    string
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("cloud: shard %s breaker is open (%s)", e.Shard, e.Op)
}

// ShardError attributes one replica's failure to its shard.
type ShardError struct {
	Shard string
	Err   error
}

// DegradedError reports a fleet op that could not reach its quorum: which
// op on which blob, how many acks it got versus needed, and every
// replica's failure attributed to its shard. It unwraps to the per-shard
// errors, so errors.As finds a *TransientError inside (making a
// transiently-degraded op retryable) and IsTransient composes.
type DegradedError struct {
	Op        string
	Container string
	Blob      string
	// Acks is how many replicas acknowledged; Need is the quorum; Replicas
	// is the replica set size.
	Acks, Need, Replicas int
	// Misses counts replicas that answered "not found" (reads only).
	Misses int
	// Failures attributes each failed replica to its shard, in ring
	// preference order.
	Failures []ShardError
}

func (e *DegradedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cloud: degraded %s %s/%s: %d/%d acks across %d replicas", e.Op, e.Container, e.Blob, e.Acks, e.Need, e.Replicas)
	if e.Misses > 0 {
		fmt.Fprintf(&b, ", %d misses", e.Misses)
	}
	if len(e.Failures) > 0 {
		b.WriteString(" [")
		for i, f := range e.Failures {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s: %v", f.Shard, f.Err)
		}
		b.WriteString("]")
	}
	return b.String()
}

// Unwrap exposes the per-shard failures to errors.Is / errors.As.
func (e *DegradedError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// IsDegraded reports whether err carries a *DegradedError anywhere in its
// chain — the "partial-fleet outage" predicate callers branch on (the
// daemon turns it into 503 + Retry-After).
func IsDegraded(err error) bool {
	var d *DegradedError
	return errors.As(err, &d)
}

// Fleet -------------------------------------------------------------------

// fleetShard is one backend plus its runtime state: the kill switch, the
// breaker/health state machine, and modeled-cost aggregates. The modeled
// totals are kept as order-independent sums (op counts, byte counts) so a
// report derived from them is identical for any op interleaving.
type fleetShard struct {
	spec  ShardSpec
	store Store
	down  atomic.Bool

	mu           sync.Mutex
	state        BreakerState
	hardStreak   int
	probesIssued int
	probesOK     int
	openedAt     time.Time
	ewma         float64
	samples      uint64
	failures     uint64
	ops          uint64
	bytesMoved   uint64

	stateGauge *obs.Gauge
	ewmaGauge  *obs.Gauge
}

// outcomeKind classifies one shard op for the health/breaker machinery.
type outcomeKind int

const (
	outcomeOK   outcomeKind = iota // op succeeded, or shard answered "not found"
	outcomeSoft                    // injected transient failure: shard alive
	outcomeHard                    // shard down or unexpected store error
)

// Fleet is a consistent-hash-sharded, replicated Store. Safe for
// concurrent use. Construct with NewFleet.
type Fleet struct {
	cfg    FleetConfig
	shards []*fleetShard
	byName map[string]*fleetShard
	ring   []ringPoint
	clock  obs.Clock
	reg    *obs.Registry

	verMu    sync.Mutex
	versions map[string]uint64
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// NewFleet validates cfg and returns a ready fleet.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cloud: fleet needs at least one shard")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Replication > len(cfg.Shards) {
		cfg.Replication = len(cfg.Shards)
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.Replication/2 + 1
	}
	if cfg.WriteQuorum > cfg.Replication {
		return nil, fmt.Errorf("cloud: write quorum %d exceeds replication %d", cfg.WriteQuorum, cfg.Replication)
	}
	if cfg.ReadQuorum <= 0 {
		cfg.ReadQuorum = cfg.Replication/2 + 1
	}
	if cfg.ReadQuorum > cfg.Replication {
		return nil, fmt.Errorf("cloud: read quorum %d exceeds replication %d", cfg.ReadQuorum, cfg.Replication)
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	cfg.Breaker = cfg.Breaker.withDefaults()
	if cfg.Clock == nil {
		cfg.Clock = obs.System()
	}
	reg := obs.OrDefault(cfg.Registry)

	f := &Fleet{
		cfg:      cfg,
		byName:   make(map[string]*fleetShard, len(cfg.Shards)),
		clock:    cfg.Clock,
		reg:      reg,
		versions: make(map[string]uint64),
	}
	for i, spec := range cfg.Shards {
		if spec.Name == "" {
			return nil, fmt.Errorf("cloud: shard %d has no name", i)
		}
		if _, dup := f.byName[spec.Name]; dup {
			return nil, fmt.Errorf("cloud: duplicate shard name %q", spec.Name)
		}
		store := spec.Store
		if store == nil {
			store = NewBlobStore()
		}
		if spec.FaultRate > 0 {
			store = NewFaultyStore(store, FaultConfig{Rate: spec.FaultRate, Seed: spec.FaultSeed})
		}
		sh := &fleetShard{
			spec:       spec,
			store:      store,
			stateGauge: reg.Gauge("dna_fleet_shard_state", "Breaker state per shard (0 closed, 1 open, 2 half-open).", "shard", spec.Name),
			ewmaGauge:  reg.Gauge("dna_fleet_shard_error_ewma", "EWMA error rate per shard from exchange outcomes.", "shard", spec.Name),
		}
		f.shards = append(f.shards, sh)
		f.byName[spec.Name] = sh
	}
	f.ring = buildRing(cfg.Shards, cfg.VNodes, cfg.Seed)
	return f, nil
}

// buildRing hashes VNodes virtual nodes per shard onto the ring, sorted by
// hash with shard index as the deterministic tiebreak.
func buildRing(shards []ShardSpec, vnodes int, seed uint64) []ringPoint {
	points := make([]ringPoint, 0, len(shards)*vnodes)
	for i, s := range shards {
		for v := 0; v < vnodes; v++ {
			points = append(points, ringPoint{
				hash:  hash64(seed, "ring", s.Name, fmt.Sprintf("%d", v)),
				shard: i,
			})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		return points[a].shard < points[b].shard
	})
	return points
}

// replicaShards walks the ring clockwise from the key's point, collecting
// the first Replication distinct shards — the blob's replica set in
// failover preference order.
func (f *Fleet) replicaShards(container, blob string) []*fleetShard {
	key := hash64(f.cfg.Seed, "key", container, blob)
	start := sort.Search(len(f.ring), func(i int) bool { return f.ring[i].hash >= key })
	out := make([]*fleetShard, 0, f.cfg.Replication)
	seen := make(map[int]bool, f.cfg.Replication)
	for i := 0; i < len(f.ring) && len(out) < f.cfg.Replication; i++ {
		p := f.ring[(start+i)%len(f.ring)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, f.shards[p.shard])
		}
	}
	return out
}

// Replicas reports the shard names holding a blob's replicas, in failover
// preference order — the attribution tests and chaos harness key off it.
func (f *Fleet) Replicas(container, blob string) []string {
	reps := f.replicaShards(container, blob)
	names := make([]string, len(reps))
	for i, sh := range reps {
		names[i] = sh.spec.Name
	}
	return names
}

// ShardNames lists every shard in declaration order.
func (f *Fleet) ShardNames() []string {
	names := make([]string, len(f.shards))
	for i, sh := range f.shards {
		names[i] = sh.spec.Name
	}
	return names
}

// Kill marks the named shard dead: every op against it hard-fails until
// Revive. Reports whether the shard exists.
func (f *Fleet) Kill(name string) bool {
	sh, ok := f.byName[name]
	if ok {
		sh.down.Store(true)
	}
	return ok
}

// Revive brings a killed shard back. Its breaker still applies: an opened
// breaker waits out CoolDown on the injected clock, then half-open probes
// re-admit the shard.
func (f *Fleet) Revive(name string) bool {
	sh, ok := f.byName[name]
	if ok {
		sh.down.Store(false)
	}
	return ok
}

// BreakerStates snapshots every shard's breaker state by name.
func (f *Fleet) BreakerStates() map[string]BreakerState {
	out := make(map[string]BreakerState, len(f.shards))
	for _, sh := range f.shards {
		sh.mu.Lock()
		out[sh.spec.Name] = sh.state
		sh.mu.Unlock()
	}
	return out
}

// --- breaker / health state machine -------------------------------------

// allow asks the shard's breaker whether an op may proceed. It owns the
// open→half-open transition (driven purely by the injected clock) and the
// half-open probe budget.
func (f *Fleet) allow(sh *fleetShard) bool {
	now := f.clock.Now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch sh.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(sh.openedAt) < f.cfg.Breaker.CoolDown {
			return false
		}
		f.transitionLocked(sh, BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		if sh.probesIssued < f.cfg.Breaker.HalfOpenProbes {
			sh.probesIssued++
			return true
		}
		return false
	}
	return true
}

// record books one op outcome into the shard's health EWMA and breaker.
func (f *Fleet) record(sh *fleetShard, kind outcomeKind, nbytes int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	x := 0.0
	if kind != outcomeOK {
		x = 1.0
		sh.failures++
	}
	a := f.cfg.Breaker.EWMAAlpha
	sh.ewma = (1-a)*sh.ewma + a*x
	sh.samples++
	sh.ops++
	sh.bytesMoved += uint64(nbytes)
	sh.ewmaGauge.Set(sh.ewma)

	switch kind {
	case outcomeOK:
		sh.hardStreak = 0
		if sh.state == BreakerHalfOpen {
			sh.probesOK++
			if sh.probesOK >= f.cfg.Breaker.HalfOpenProbes {
				f.transitionLocked(sh, BreakerClosed)
			}
		}
	case outcomeSoft:
		// The shard answered; transient faults are the retry layer's
		// business. In half-open the probe is inconclusive: return its
		// budget so a later op probes again.
		sh.hardStreak = 0
		if sh.state == BreakerHalfOpen && sh.probesIssued > 0 {
			sh.probesIssued--
		}
	case outcomeHard:
		sh.hardStreak++
		switch sh.state {
		case BreakerHalfOpen:
			f.transitionLocked(sh, BreakerOpen)
		case BreakerClosed:
			if sh.hardStreak >= f.cfg.Breaker.HardTrip {
				f.transitionLocked(sh, BreakerOpen)
			}
		}
	}
}

// transitionLocked moves the breaker to a new state; callers hold sh.mu.
func (f *Fleet) transitionLocked(sh *fleetShard, to BreakerState) {
	if sh.state == to {
		return
	}
	sh.state = to
	switch to {
	case BreakerOpen:
		sh.openedAt = f.clock.Now()
	case BreakerHalfOpen, BreakerClosed:
		sh.probesIssued = 0
		sh.probesOK = 0
	}
	sh.stateGauge.Set(float64(to))
	f.reg.Counter("dna_fleet_breaker_transitions_total", "Breaker state transitions per shard.",
		"shard", sh.spec.Name, "to", to.String()).Inc()
}

// shardOp runs one store op against one shard through the breaker, the
// kill switch and the health recorder. The returned error is the shard's
// own (possibly a typed *ShardDownError / *BreakerOpenError).
func (f *Fleet) shardOp(sh *fleetShard, op string, nbytes int, fn func(Store) error) error {
	if !f.allow(sh) {
		f.reg.Counter("dna_fleet_breaker_fastfail_total", "Ops fast-failed by an open breaker.", "shard", sh.spec.Name).Inc()
		return &BreakerOpenError{Shard: sh.spec.Name, Op: op}
	}
	if sh.down.Load() {
		f.record(sh, outcomeHard, 0)
		return &ShardDownError{Shard: sh.spec.Name, Op: op}
	}
	err := fn(sh.store)
	switch {
	case err == nil:
		f.record(sh, outcomeOK, nbytes)
	case IsTransient(err):
		f.record(sh, outcomeSoft, 0)
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrContainerExists):
		// The shard answered authoritatively: healthy, whatever the caller
		// makes of the answer.
		f.record(sh, outcomeOK, 0)
	default:
		f.record(sh, outcomeHard, 0)
	}
	return err
}

// modeledMS is the shard's modeled cost of moving nbytes in one op.
func (sh *fleetShard) modeledMS(nbytes int) float64 {
	ms := sh.spec.LatencyMS
	if sh.spec.BandwidthMbps > 0 {
		ms += float64(nbytes) * 8 / (sh.spec.BandwidthMbps * 1e6) * 1e3
	}
	return ms
}

// --- versioned envelope --------------------------------------------------

// Replicas store each blob inside a tiny version envelope (uvarint
// version + payload) so quorum reads can prefer the newest write when an
// overwrite only reached a quorum of replicas. The fleet is the single
// writer, so a fleet-local per-key counter is a sufficient version
// authority.
func sealVersion(version uint64, data []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], version)
	out := make([]byte, 0, n+len(data))
	out = append(out, hdr[:n]...)
	return append(out, data...)
}

func openVersion(env []byte) (uint64, []byte, error) {
	version, n := binary.Uvarint(env)
	if n <= 0 {
		return 0, nil, fmt.Errorf("cloud: replica envelope has no version header")
	}
	return version, env[n:], nil
}

func (f *Fleet) nextVersion(container, blob string) uint64 {
	key := container + "\x00" + blob
	f.verMu.Lock()
	defer f.verMu.Unlock()
	f.versions[key]++
	return f.versions[key]
}

// --- Store interface -----------------------------------------------------

// CreateContainer creates the container on every shard (fan-out, joined).
// Quorum semantics mirror writes: at least WriteQuorum shards must answer.
// If every answering shard already had the container the error is
// ErrContainerExists, matching single-store semantics the exchange
// pipeline already tolerates.
func (f *Fleet) CreateContainer(name string) error {
	results := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i, sh := range f.shards {
		wg.Add(1)
		go func(i int, sh *fleetShard) {
			defer wg.Done()
			results[i] = f.shardOp(sh, "create", 0, func(st Store) error {
				return st.CreateContainer(name)
			})
		}(i, sh)
	}
	wg.Wait()

	acks, created := 0, 0
	var failures []ShardError
	for i, err := range results {
		switch {
		case err == nil:
			acks++
			created++
		case errors.Is(err, ErrContainerExists):
			acks++
		default:
			failures = append(failures, ShardError{Shard: f.shards[i].spec.Name, Err: err})
		}
	}
	if acks < f.cfg.WriteQuorum {
		f.opOutcome("create", "degraded")
		return &DegradedError{Op: "create", Container: name, Acks: acks, Need: f.cfg.WriteQuorum, Replicas: len(f.shards), Failures: failures}
	}
	f.opOutcome("create", "ok")
	if created == 0 {
		return fmt.Errorf("%w: container %q on every reachable shard", ErrContainerExists, name)
	}
	return nil
}

// Put replicates the blob to its replica set concurrently (bounded by the
// replica count, joined before return) and succeeds once WriteQuorum
// replicas acknowledge. A replica whose shard never saw the container
// creates it on demand, so a shard that was dead during CreateContainer
// heals itself on its first write. Concurrent Puts to *different* blobs
// are safe; callers serialize Puts to the same blob (the exchange
// pipeline's retry loop already does).
func (f *Fleet) Put(container, blob string, data []byte) error {
	return f.PutCtx(context.Background(), container, blob, data)
}

// PutCtx is Put with request-scoped tracing: under an active tracer in ctx
// it records a "fleet.put" span whose children are one "fleet.replica.put"
// span per replica attempt, each tagged with its shard name and outcome,
// so a request trace shows exactly which replicas carried the write.
// Tracing never changes behavior — without a tracer this is Put.
func (f *Fleet) PutCtx(ctx context.Context, container, blob string, data []byte) error {
	reps := f.replicaShards(container, blob)
	ctx, span := obs.Start(ctx, "fleet.put")
	defer span.End()
	span.SetAttr("container", container)
	span.SetAttr("blob", blob)
	span.SetAttr("replicas", len(reps))
	env := sealVersion(f.nextVersion(container, blob), data)
	results := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, sh := range reps {
		wg.Add(1)
		go func(i int, sh *fleetShard) {
			defer wg.Done()
			_, rspan := obs.Start(ctx, "fleet.replica.put")
			defer rspan.End()
			rspan.SetAttr("shard", sh.spec.Name)
			results[i] = f.shardOp(sh, "put", len(env), func(st Store) error {
				err := st.Put(container, blob, env)
				if err != nil && errors.Is(err, ErrNotFound) {
					// Container missing on this shard only: create and retry
					// once. Both steps sit inside the same shardOp outcome.
					if cerr := st.CreateContainer(container); cerr != nil && !errors.Is(cerr, ErrContainerExists) {
						return cerr
					}
					err = st.Put(container, blob, env)
				}
				return err
			})
			rspan.SetAttr("outcome", replicaOutcome(results[i]))
		}(i, sh)
	}
	wg.Wait()

	acks := 0
	maxMS := 0.0
	var failures []ShardError
	for i, err := range results {
		if err == nil {
			acks++
			if ms := reps[i].modeledMS(len(env)); ms > maxMS {
				maxMS = ms
			}
			continue
		}
		failures = append(failures, ShardError{Shard: reps[i].spec.Name, Err: err})
	}
	if acks > 0 && acks < len(reps) {
		f.reg.Counter("dna_fleet_failovers_total", "Ops that succeeded despite replica failures.", "op", "put").Inc()
	}
	span.SetAttr("acks", acks)
	if acks < f.cfg.WriteQuorum {
		f.opOutcome("put", "degraded")
		return &DegradedError{Op: "put", Container: container, Blob: blob, Acks: acks, Need: f.cfg.WriteQuorum, Replicas: len(reps), Failures: failures}
	}
	f.opOutcome("put", "ok")
	f.reg.Histogram("dna_fleet_quorum_ms", "Modeled quorum latency per fleet op (slowest acked replica).", obs.DefMSBuckets(), "op", "put").Observe(maxMS)
	return nil
}

// Get reads the blob with quorum-preferred failover: replicas are tried in
// ring preference order until ReadQuorum validated responses arrive, and
// the newest version wins. If quorum is unreachable but at least one
// replica answered, the read still succeeds (replica payloads are
// self-verifying armored frames) and is counted as a degraded read. The
// blob is unavailable only when every replica's shard failed: all-miss is
// ErrNotFound, anything else a *DegradedError with per-shard attribution.
func (f *Fleet) Get(container, blob string) ([]byte, error) {
	return f.GetCtx(context.Background(), container, blob)
}

// GetCtx is Get with request-scoped tracing: a "fleet.get" span with one
// "fleet.replica.get" child per replica attempted (the quorum loop stops
// early, so the trace shows which replicas were actually consulted).
func (f *Fleet) GetCtx(ctx context.Context, container, blob string) ([]byte, error) {
	reps := f.replicaShards(container, blob)
	ctx, span := obs.Start(ctx, "fleet.get")
	defer span.End()
	span.SetAttr("container", container)
	span.SetAttr("blob", blob)
	span.SetAttr("replicas", len(reps))
	var (
		best      []byte
		bestVer   uint64
		successes int
		misses    int
		failures  []ShardError
		modelMS   float64
	)
	for _, sh := range reps {
		var env []byte
		err := func() error {
			_, rspan := obs.Start(ctx, "fleet.replica.get")
			defer rspan.End()
			rspan.SetAttr("shard", sh.spec.Name)
			gerr := f.shardOp(sh, "get", 0, func(st Store) error {
				var serr error
				env, serr = st.Get(container, blob)
				return serr
			})
			rspan.SetAttr("outcome", replicaOutcome(gerr))
			return gerr
		}()
		switch {
		case err == nil:
			ver, payload, perr := openVersion(env)
			if perr != nil {
				failures = append(failures, ShardError{Shard: sh.spec.Name, Err: perr})
				continue
			}
			modelMS += sh.modeledMS(len(env))
			successes++
			if best == nil || ver > bestVer {
				best, bestVer = payload, ver
			}
		case errors.Is(err, ErrNotFound):
			misses++
		default:
			failures = append(failures, ShardError{Shard: sh.spec.Name, Err: err})
		}
		if successes >= f.cfg.ReadQuorum {
			break
		}
	}
	span.SetAttr("acks", successes)
	switch {
	case successes >= f.cfg.ReadQuorum:
		f.opOutcome("get", "ok")
		f.reg.Histogram("dna_fleet_quorum_ms", "Modeled quorum latency per fleet op (slowest acked replica).", obs.DefMSBuckets(), "op", "get").Observe(modelMS)
		return best, nil
	case successes > 0:
		f.opOutcome("get", "degraded_read")
		f.reg.Counter("dna_fleet_failovers_total", "Ops that succeeded despite replica failures.", "op", "get").Inc()
		f.reg.Counter("dna_fleet_degraded_reads_total", "Reads served below read quorum (possibly stale).").Inc()
		return best, nil
	case misses >= f.cfg.ReadQuorum, len(failures) == 0:
		// A read-quorum of authoritative misses proves the blob was never
		// written (every write reaches a write quorum and quorums
		// intersect), so even a partially-dead fleet can answer "not
		// found" instead of "unavailable".
		f.opOutcome("get", "notfound")
		return nil, fmt.Errorf("%w: blob %q in %q on %d of %d replicas", ErrNotFound, blob, container, misses, len(reps))
	default:
		f.opOutcome("get", "degraded")
		return nil, &DegradedError{Op: "get", Container: container, Blob: blob, Acks: successes, Need: 1, Replicas: len(reps), Misses: misses, Failures: failures}
	}
}

// Delete removes the blob from every replica (fan-out, joined). A replica
// that already lacks the blob counts as acknowledged — deletes are
// idempotent — and WriteQuorum acks make the delete durable.
func (f *Fleet) Delete(container, blob string) error {
	return f.DeleteCtx(context.Background(), container, blob)
}

// DeleteCtx is Delete with request-scoped tracing ("fleet.delete" plus
// per-replica "fleet.replica.delete" children), mirroring PutCtx.
func (f *Fleet) DeleteCtx(ctx context.Context, container, blob string) error {
	reps := f.replicaShards(container, blob)
	ctx, span := obs.Start(ctx, "fleet.delete")
	defer span.End()
	span.SetAttr("container", container)
	span.SetAttr("blob", blob)
	span.SetAttr("replicas", len(reps))
	results := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, sh := range reps {
		wg.Add(1)
		go func(i int, sh *fleetShard) {
			defer wg.Done()
			_, rspan := obs.Start(ctx, "fleet.replica.delete")
			defer rspan.End()
			rspan.SetAttr("shard", sh.spec.Name)
			results[i] = f.shardOp(sh, "delete", 0, func(st Store) error {
				return st.Delete(container, blob)
			})
			rspan.SetAttr("outcome", replicaOutcome(results[i]))
		}(i, sh)
	}
	wg.Wait()

	acks := 0
	var failures []ShardError
	for i, err := range results {
		if err == nil || errors.Is(err, ErrNotFound) {
			acks++
			continue
		}
		failures = append(failures, ShardError{Shard: reps[i].spec.Name, Err: err})
	}
	if acks > 0 && acks < len(reps) {
		f.reg.Counter("dna_fleet_failovers_total", "Ops that succeeded despite replica failures.", "op", "delete").Inc()
	}
	if acks < f.cfg.WriteQuorum {
		f.opOutcome("delete", "degraded")
		return &DegradedError{Op: "delete", Container: container, Blob: blob, Acks: acks, Need: f.cfg.WriteQuorum, Replicas: len(reps), Failures: failures}
	}
	f.opOutcome("delete", "ok")
	return nil
}

func (f *Fleet) opOutcome(op, outcome string) {
	f.reg.Counter("dna_fleet_ops_total", "Fleet-level store operations by final outcome.", "op", op, "outcome", outcome).Inc()
}

// replicaOutcome classifies one replica attempt for span attribution.
func replicaOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrNotFound):
		return "miss"
	default:
		var boe *BreakerOpenError
		if errors.As(err, &boe) {
			return "breaker_open"
		}
		return "error"
	}
}

// --- reporting -----------------------------------------------------------

// ShardReport is one shard's health snapshot.
type ShardReport struct {
	Name string
	// State is the breaker state ("closed", "open", "half-open").
	State string
	// Down reports the kill switch.
	Down bool
	// ErrorEWMA is the smoothed error rate from exchange outcomes.
	ErrorEWMA float64
	// Ops and Failures count recorded outcomes (breaker fast-fails are not
	// ops — the backend was never asked).
	Ops, Failures uint64
	// ModeledMS is the shard's total modeled transfer cost, derived from
	// order-independent aggregates (op count x latency + bytes / bandwidth).
	ModeledMS float64
}

// FleetReport snapshots every shard, in declaration order.
type FleetReport struct {
	Replication, WriteQuorum, ReadQuorum int
	Shards                               []ShardReport
}

// Report snapshots the fleet's per-shard health. Derived from aggregate
// counters only, so for a fixed fault schedule the modeled figures are
// identical no matter how concurrent ops interleaved.
func (f *Fleet) Report() FleetReport {
	rep := FleetReport{
		Replication: f.cfg.Replication,
		WriteQuorum: f.cfg.WriteQuorum,
		ReadQuorum:  f.cfg.ReadQuorum,
	}
	for _, sh := range f.shards {
		sh.mu.Lock()
		sr := ShardReport{
			Name:      sh.spec.Name,
			State:     sh.state.String(),
			Down:      sh.down.Load(),
			ErrorEWMA: sh.ewma,
			Ops:       sh.ops,
			Failures:  sh.failures,
			ModeledMS: float64(sh.ops)*sh.spec.LatencyMS + func() float64 {
				if sh.spec.BandwidthMbps <= 0 {
					return 0
				}
				return float64(sh.bytesMoved) * 8 / (sh.spec.BandwidthMbps * 1e6) * 1e3
			}(),
		}
		sh.mu.Unlock()
		rep.Shards = append(rep.Shards, sr)
	}
	return rep
}
