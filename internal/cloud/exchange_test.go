package cloud

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/compress"

	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

// chaosClient is the slow lab guest the chaos tests exchange from.
var chaosClient = VM{Name: "chaos-client", RAMMB: 2048, CPUMHz: 2000, BandwidthMbps: 2}

// symbols generates a deterministic pseudo-DNA symbol sequence (codes 0..3).
func symbols(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(4))
	}
	return out
}

func TestExchangeRoundTripPlainStore(t *testing.T) {
	store := NewBlobStore()
	src := symbols(4096, 1)
	for _, codec := range []string{"dnax", "gzip"} {
		rep, err := Exchange(context.Background(), chaosClient, store, codec, src, ExchangeOptions{
			Blob: "seq-" + codec, Retry: DefaultRetryPolicy(),
		})
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if rep.OriginalBases != len(src) || rep.CompressedBytes <= 0 || rep.BitsPerBase <= 0 {
			t.Fatalf("%s: bad report %+v", codec, rep)
		}
		if rep.CompressMS <= 0 || rep.DecompressMS <= 0 || rep.UploadMS <= 0 || rep.DownloadMS <= 0 {
			t.Fatalf("%s: non-positive stage time: %+v", codec, rep)
		}
		if rep.RetryWaitMS != 0 || rep.AttemptCount() != 2 {
			t.Fatalf("%s: reliable store needed retries: %+v", codec, rep.Traces)
		}
	}
	// A second exchange into the same (now existing) container must work.
	if _, err := Exchange(context.Background(), chaosClient, store, "dnax", src, ExchangeOptions{Blob: "again"}); err != nil {
		t.Fatalf("existing container rejected: %v", err)
	}
}

// TestExchangeBlobIsArmoredFrame: what lands in the store is a sealed frame
// that restores the exact source — the old source-bytes comparison lives on
// here, in the test, where the source is legitimately available.
func TestExchangeBlobIsArmoredFrame(t *testing.T) {
	store := NewBlobStore()
	src := symbols(4096, 9)
	rep, err := Exchange(context.Background(), chaosClient, store, "dnax", src, ExchangeOptions{Blob: "keep"})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := store.Get("exchange", "keep")
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != rep.FrameBytes {
		t.Fatalf("stored blob is %d bytes, report says %d", len(frame), rep.FrameBytes)
	}
	if rep.FrameBytes != rep.CompressedBytes+compress.Overhead("dnax") {
		t.Fatalf("frame %d bytes, payload %d: armor overhead off", rep.FrameBytes, rep.CompressedBytes)
	}
	restored, _, err := compress.SafeDecompress("dnax", frame, compress.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, src) {
		t.Fatal("stored frame does not restore the source")
	}
}

// corruptingStore delivers blobs with their last byte flipped — transport
// corruption the retry layer cannot see and a real receiver has no source
// bytes to diff against.
type corruptingStore struct{ Store }

func (s corruptingStore) Get(container, blob string) ([]byte, error) {
	data, err := s.Store.Get(container, blob)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), data...)
	out[len(out)-1] ^= 0x01
	return out, nil
}

// TestExchangeDetectsCorruptionFromFrameAlone is the acceptance test for
// the armored exchange: an injected payload corruption is caught by the
// frame checksum on the receiving side — no source comparison anywhere in
// the pipeline — and classified as compress.ErrCorrupt.
func TestExchangeDetectsCorruptionFromFrameAlone(t *testing.T) {
	store := corruptingStore{NewBlobStore()}
	rep, err := Exchange(context.Background(), chaosClient, store, "dnax", symbols(2048, 7), ExchangeOptions{
		Retry: DefaultRetryPolicy(),
	})
	if err == nil {
		t.Fatal("corrupted download accepted")
	}
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// The damage was detected after transport succeeded: no retries burned.
	if rep.AttemptCount() != 2 {
		t.Fatalf("corruption misclassified as transient: %+v", rep.Traces)
	}
}

// TestExchangeFaultyReproducible is the acceptance chaos test: with fault
// rate <= 30 % and the default retry budget, every blob round-trips
// byte-identically (Exchange verifies internally), retries do happen, and
// the same seed reproduces the exact reports — retry schedules included.
func TestExchangeFaultyReproducible(t *testing.T) {
	run := func(seed uint64) ([]ExchangeReport, uint64) {
		store := NewFaultyStore(NewBlobStore(), FaultConfig{Rate: 0.3, Seed: seed})
		var reps []ExchangeReport
		for i := 0; i < 6; i++ {
			for _, codec := range []string{"dnax", "gzip"} {
				src := symbols(2048+512*i, int64(i))
				rep, err := Exchange(context.Background(), chaosClient, store, codec, src, ExchangeOptions{
					Blob:    fmt.Sprintf("seq-%d-%s", i, codec),
					Retry:   DefaultRetryPolicy(),
					Cleanup: true,
				})
				if err != nil {
					t.Fatalf("blob %d via %s: %v", i, codec, err)
				}
				reps = append(reps, rep)
			}
		}
		_, injected := store.Counters()
		return reps, injected
	}
	a, injectedA := run(2015)
	b, injectedB := run(2015)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same fault seed produced different exchange reports")
	}
	if injectedA != injectedB {
		t.Fatalf("same seed injected %d vs %d faults", injectedA, injectedB)
	}
	if injectedA == 0 {
		t.Fatal("30 % fault rate injected nothing over 12 exchanges — schedule degenerate")
	}
	retried := 0
	for _, rep := range a {
		if len(rep.Traces) != 3 { // put, get, delete
			t.Fatalf("report has %d traces: %+v", len(rep.Traces), rep.Traces)
		}
		if rep.AttemptCount() > 3 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no exchange needed a retry at 30 % fault rate")
	}
}

func TestBackoffScheduleDeterministicCappedExponential(t *testing.T) {
	p := DefaultRetryPolicy()
	var prev float64
	for r := 0; r < 12; r++ {
		d := p.BackoffMS("put", r)
		if d != p.BackoffMS("put", r) {
			t.Fatalf("retry %d: backoff not deterministic", r)
		}
		if d <= 0 || d > p.CapMS*(1+p.JitterFrac) {
			t.Fatalf("retry %d: backoff %v outside (0, cap*(1+jitter)]", r, d)
		}
		// Jitter is ±20 %, doubling is ×2: growth must dominate until the cap.
		if base := p.BaseMS * float64(int(1)<<r); base < p.CapMS && d <= prev {
			t.Fatalf("retry %d: backoff %v did not grow past %v", r, d, prev)
		}
		prev = d
	}
	other := p
	other.Seed++
	diff := false
	for r := 0; r < 12; r++ {
		if p.BackoffMS("get", r) != other.BackoffMS("get", r) {
			diff = true
		}
	}
	if !diff {
		t.Error("seed change left the jittered schedule untouched")
	}
}

func TestExchangeExhaustsRetries(t *testing.T) {
	store := NewFaultyStore(NewBlobStore(), FaultConfig{Rate: 1, Seed: 3})
	policy := DefaultRetryPolicy()
	policy.MaxRetries = 3
	rep, err := Exchange(context.Background(), chaosClient, store, "dnax", symbols(512, 2), ExchangeOptions{Retry: policy})
	if err == nil {
		t.Fatal("always-failing store succeeded")
	}
	if !IsTransient(err) {
		t.Fatalf("exhaustion error %v hides the transient cause", err)
	}
	if len(rep.Traces) != 1 || rep.Traces[0].Attempts != 4 {
		t.Fatalf("traces = %+v, want one put with 4 attempts", rep.Traces)
	}
	if len(rep.Traces[0].BackoffMS) != 3 {
		t.Fatalf("recorded %d backoffs, want 3", len(rep.Traces[0].BackoffMS))
	}
}

// permafailStore fails Put with a permanent (non-transient) error.
type permafailStore struct{ *BlobStore }

func (s *permafailStore) Put(container, blob string, data []byte) error {
	return errors.New("disk on fire")
}

func TestExchangePermanentErrorNotRetried(t *testing.T) {
	store := &permafailStore{NewBlobStore()}
	if err := store.CreateContainer("exchange"); err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(context.Background(), chaosClient, store, "dnax", symbols(256, 3), ExchangeOptions{Retry: DefaultRetryPolicy()})
	if err == nil || IsTransient(err) {
		t.Fatalf("err = %v, want permanent failure", err)
	}
	if len(rep.Traces) != 1 || rep.Traces[0].Attempts != 1 {
		t.Fatalf("permanent failure was retried: %+v", rep.Traces)
	}
}

func TestExchangeCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Exchange(ctx, chaosClient, NewBlobStore(), "dnax", symbols(256, 4), ExchangeOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExchangeOpTimeoutRetriesThenGivesUp(t *testing.T) {
	store := NewFaultyStore(NewBlobStore(), FaultConfig{Rate: 0, Seed: 1, OpDelay: 50 * time.Millisecond})
	policy := DefaultRetryPolicy()
	policy.MaxRetries = 2
	rep, err := Exchange(context.Background(), chaosClient, store, "dnax", symbols(256, 5), ExchangeOptions{
		Retry:     policy,
		OpTimeout: 5 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if len(rep.Traces) != 1 || rep.Traces[0].Attempts != 3 {
		t.Fatalf("traces = %+v, want one put with 3 attempts", rep.Traces)
	}
}

// TestExchangeOpTimeoutNamesOp: a per-op deadline expiry is an
// *OpTimeoutError naming the op and timeout — "put timed out after 5ms",
// not a generic context deadline — while still unwrapping to
// context.DeadlineExceeded so the transient-retry classification holds.
func TestExchangeOpTimeoutNamesOp(t *testing.T) {
	store := NewFaultyStore(NewBlobStore(), FaultConfig{Rate: 0, Seed: 1, OpDelay: 50 * time.Millisecond})
	_, err := Exchange(context.Background(), chaosClient, store, "dnax", symbols(256, 5), ExchangeOptions{
		Retry:     RetryPolicy{MaxRetries: 0},
		OpTimeout: 5 * time.Millisecond,
	})
	var ot *OpTimeoutError
	if !errors.As(err, &ot) {
		t.Fatalf("err = %v, want *OpTimeoutError in chain", err)
	}
	if ot.Op != "put" || ot.Timeout != 5*time.Millisecond {
		t.Fatalf("timeout attributed to %q after %v, want put after 5ms", ot.Op, ot.Timeout)
	}
	if got, want := ot.Error(), "cloud: put timed out after 5ms"; got != want {
		t.Fatalf("message %q, want %q", got, want)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("op timeout no longer matches DeadlineExceeded: %v", err)
	}
}

func TestExchangeRejectsBadInput(t *testing.T) {
	if _, err := Exchange(context.Background(), chaosClient, nil, "dnax", symbols(16, 6), ExchangeOptions{}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := Exchange(context.Background(), chaosClient, NewBlobStore(), "nope", symbols(16, 6), ExchangeOptions{}); err == nil {
		t.Error("unknown codec accepted")
	}
}
