// Package cloud simulates the paper's experimental infrastructure: client
// VMs whose RAM, CPU speed and bandwidth are varied (VMware on the two lab
// machines), the fixed Azure-side VM that downloads and decompresses, and a
// Blob storage account with containers.
//
// The simulation is deterministic: codecs report modeled work (nanoseconds
// on the 2400 MHz reference core) and peak working-set size; a VM converts
// these into milliseconds by clock scaling plus a RAM-pressure (thrash)
// penalty, and models transfers as stream-conversion cost (CPU- and
// RAM-dependent — the paper's observation that "uploading ... not only
// depends on bandwidth but RAM and CPU is also significant") plus
// bandwidth-limited transfer.
package cloud

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/srl-nuces/ctxdna/internal/compress"
)

// VM describes one execution context.
type VM struct {
	Name          string
	RAMMB         int
	CPUMHz        int
	BandwidthMbps float64
}

// AzureVM is the fixed cloud-side VM from the paper's setup: "a VM at
// Windows Azure cloud with 2.1GHz AMD processor with 3.5GB RAM". Its
// bandwidth is the datacenter link to the storage account.
var AzureVM = VM{Name: "azure-a2", RAMMB: 3584, CPUMHz: 2100, BandwidthMbps: 100}

// Model constants.
const (
	// uploadLatencyMS / downloadLatencyMS are per-BLOB REST round-trip
	// overheads against the storage account.
	uploadLatencyMS   = 45.0
	downloadLatencyMS = 18.0
	// streamConvNSPerByte is the reference-core cost of converting a file
	// into the continuous stream the BLOB PUT requires (buffering, base64
	// framing in the 2014-era SDK, socket writes).
	streamConvNSPerByte = 220.0
	// thrashFactor scales the slowdown when an algorithm's working set
	// exceeds the VM's available RAM (paging on the VMware guests).
	thrashFactor = 4.0
	// osReservedMB approximates the guest OS's own working set; only the
	// remainder is available to the codec process.
	osReservedMB = 512
)

// cpuScale converts reference-core time to this VM's time.
func (vm VM) cpuScale() float64 {
	if vm.CPUMHz <= 0 {
		return 1
	}
	return float64(compress.ReferenceMHz) / float64(vm.CPUMHz)
}

// ramPressure returns the multiplicative slowdown from working-set overflow.
func (vm VM) ramPressure(peakMemBytes int) float64 {
	availBytes := (vm.RAMMB - osReservedMB) << 20
	if availBytes <= 0 {
		availBytes = 1 << 20
	}
	if peakMemBytes <= availBytes {
		return 1
	}
	over := float64(peakMemBytes-availBytes) / float64(availBytes)
	return 1 + thrashFactor*over
}

// ExecMS converts modeled codec stats into milliseconds on this VM.
func (vm VM) ExecMS(st compress.Stats) float64 {
	return float64(st.WorkNS) / 1e6 * vm.cpuScale() * vm.ramPressure(st.PeakMem)
}

// UploadMS models uploading a BLOB of the given size from this VM: the
// paper's stream-conversion step (CPU- and RAM-sensitive) plus REST latency
// plus bandwidth-limited transfer.
func (vm VM) UploadMS(sizeBytes int) float64 {
	conv := streamConvNSPerByte * float64(sizeBytes) / 1e6 * vm.cpuScale()
	// Low-RAM guests pay extra buffering cost on the conversion: the SDK
	// stages the stream through memory the guest may not have.
	if vm.RAMMB < 2048 {
		conv *= 1 + 0.5*float64(2048-vm.RAMMB)/2048
	}
	transfer := float64(sizeBytes) * 8 / (vm.BandwidthMbps * 1e6) * 1e3
	return uploadLatencyMS + conv + transfer
}

// DownloadMS models the cloud VM fetching a BLOB from the storage account.
func (vm VM) DownloadMS(sizeBytes int) float64 {
	conv := streamConvNSPerByte / 2 * float64(sizeBytes) / 1e6 * vm.cpuScale()
	transfer := float64(sizeBytes) * 8 / (vm.BandwidthMbps * 1e6) * 1e3
	return downloadLatencyMS + conv + transfer
}

// String implements fmt.Stringer.
func (vm VM) String() string {
	return fmt.Sprintf("%s(ram=%dMB,cpu=%dMHz,bw=%.0fMbps)", vm.Name, vm.RAMMB, vm.CPUMHz, vm.BandwidthMbps)
}

// Grid returns the 32 client contexts of the paper's experiment design:
// 4 RAM levels × 4 CPU speeds × 2 bandwidth classes, spanning the two lab
// hosts (core-2-duo 2.0 GHz / 3 GB and i5 2.4 GHz / 6 GB) and the VMware
// guests carved out of them.
func Grid() []VM {
	rams := []int{1024, 2048, 3584, 6144}
	cpus := []int{1600, 2000, 2100, 2400}
	bands := []float64{2, 10}
	var out []VM
	for _, r := range rams {
		for _, c := range cpus {
			for _, b := range bands {
				out = append(out, VM{
					Name:          fmt.Sprintf("vm-r%d-c%d-b%g", r, c, b),
					RAMMB:         r,
					CPUMHz:        c,
					BandwidthMbps: b,
				})
			}
		}
	}
	return out
}

// Permanent storage failures. These are the non-retryable half of the
// store's error taxonomy: a missing container or BLOB will stay missing no
// matter how often a client retries, unlike an injected *TransientError.
var (
	// ErrNotFound reports a container or BLOB that does not exist (the REST
	// API's 404).
	ErrNotFound = errors.New("cloud: not found")
	// ErrContainerExists reports creation of an existing container (409).
	ErrContainerExists = errors.New("cloud: container already exists")
)

// Store is the blob-store surface the exchange pipeline operates on. It is
// satisfied by *BlobStore and by *FaultyStore, so the same pipeline runs
// against a reliable backend or a fault-injected one.
type Store interface {
	CreateContainer(name string) error
	Put(container, blob string, data []byte) error
	Get(container, blob string) ([]byte, error)
	Delete(container, blob string) error
}

// BlobStore is an in-memory stand-in for the Azure storage account (SAAS)
// holding uploaded files as BLOBs inside containers. It is safe for
// concurrent use.
type BlobStore struct {
	mu         sync.RWMutex
	containers map[string]map[string][]byte
}

// NewBlobStore returns an empty store.
func NewBlobStore() *BlobStore {
	return &BlobStore{containers: make(map[string]map[string][]byte)}
}

// CreateContainer makes a new container; creating an existing container is
// an error, mirroring the REST API's 409.
func (s *BlobStore) CreateContainer(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.containers[name]; ok {
		return fmt.Errorf("%w: container %q", ErrContainerExists, name)
	}
	s.containers[name] = make(map[string][]byte)
	return nil
}

// Put uploads a BLOB, overwriting any previous version.
func (s *BlobStore) Put(container, blob string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.containers[container]
	if !ok {
		return fmt.Errorf("%w: container %q", ErrNotFound, container)
	}
	c[blob] = append([]byte(nil), data...)
	return nil
}

// Get downloads a BLOB.
func (s *BlobStore) Get(container, blob string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.containers[container]
	if !ok {
		return nil, fmt.Errorf("%w: container %q", ErrNotFound, container)
	}
	data, ok := c[blob]
	if !ok {
		return nil, fmt.Errorf("%w: blob %q in %q", ErrNotFound, blob, container)
	}
	return append([]byte(nil), data...), nil
}

// Delete removes a BLOB; deleting a missing BLOB is an error.
func (s *BlobStore) Delete(container, blob string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.containers[container]
	if !ok {
		return fmt.Errorf("%w: container %q", ErrNotFound, container)
	}
	if _, ok := c[blob]; !ok {
		return fmt.Errorf("%w: blob %q in %q", ErrNotFound, blob, container)
	}
	delete(c, blob)
	return nil
}

// List returns the sorted BLOB names in a container.
func (s *BlobStore) List(container string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.containers[container]
	if !ok {
		return nil, fmt.Errorf("%w: container %q", ErrNotFound, container)
	}
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Size reports a BLOB's size without copying it.
func (s *BlobStore) Size(container, blob string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.containers[container]
	if !ok {
		return 0, fmt.Errorf("%w: container %q", ErrNotFound, container)
	}
	data, ok := c[blob]
	if !ok {
		return 0, fmt.Errorf("%w: blob %q in %q", ErrNotFound, blob, container)
	}
	return len(data), nil
}
