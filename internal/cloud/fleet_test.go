package cloud

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// testFleet builds an n-shard fleet of plain in-memory stores on a fake
// clock and a fresh registry, with the given replication.
func testFleet(t *testing.T, n, replication int) (*Fleet, *obs.Fake, *obs.Registry) {
	t.Helper()
	clock := obs.NewFake(time.Unix(1700000000, 0).UTC())
	reg := obs.NewRegistry()
	specs := make([]ShardSpec, n)
	for i := range specs {
		specs[i] = ShardSpec{Name: fmt.Sprintf("s%d", i), LatencyMS: 10, BandwidthMbps: 100}
	}
	f, err := NewFleet(FleetConfig{Shards: specs, Replication: replication, Seed: 42, Clock: clock, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return f, clock, reg
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := NewFleet(FleetConfig{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewFleet(FleetConfig{Shards: []ShardSpec{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
	if _, err := NewFleet(FleetConfig{Shards: []ShardSpec{{}}}); err == nil {
		t.Fatal("unnamed shard accepted")
	}
	if _, err := NewFleet(FleetConfig{Shards: []ShardSpec{{Name: "a"}, {Name: "b"}}, Replication: 2, WriteQuorum: 3}); err == nil {
		t.Fatal("write quorum beyond replication accepted")
	}
	if _, err := NewFleet(FleetConfig{Shards: []ShardSpec{{Name: "a"}, {Name: "b"}}, Replication: 2, ReadQuorum: 3}); err == nil {
		t.Fatal("read quorum beyond replication accepted")
	}
	// Defaults: replication min(3, n), majority quorums.
	f, err := NewFleet(FleetConfig{Shards: DefaultShardSpecs(5, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Report()
	if rep.Replication != 3 || rep.WriteQuorum != 2 || rep.ReadQuorum != 2 {
		t.Fatalf("defaults = R%d/W%d/Rq%d, want 3/2/2", rep.Replication, rep.WriteQuorum, rep.ReadQuorum)
	}
	// Replication clamps to the shard count.
	f2, err := NewFleet(FleetConfig{Shards: DefaultShardSpecs(2, 0, 1), Replication: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Report().Replication; got != 2 {
		t.Fatalf("replication clamped to %d, want 2", got)
	}
}

// TestFleetRingDeterministicAndSpread: replica placement is a pure function
// of (seed, key) — two fleets with identical config agree on every key —
// replica sets are distinct shards in all cases, and a spread of keys lands
// on every shard.
func TestFleetRingDeterministicAndSpread(t *testing.T) {
	f1, _, _ := testFleet(t, 8, 3)
	f2, _, _ := testFleet(t, 8, 3)
	hit := map[string]int{}
	for i := 0; i < 200; i++ {
		blob := fmt.Sprintf("blob-%d", i)
		r1 := f1.Replicas("c", blob)
		r2 := f2.Replicas("c", blob)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("key %q placed at %v vs %v", blob, r1, r2)
		}
		if len(r1) != 3 {
			t.Fatalf("key %q has %d replicas, want 3", blob, len(r1))
		}
		seen := map[string]bool{}
		for _, name := range r1 {
			if seen[name] {
				t.Fatalf("key %q replica set %v repeats shard %s", blob, r1, name)
			}
			seen[name] = true
			hit[name]++
		}
	}
	for _, name := range f1.ShardNames() {
		if hit[name] == 0 {
			t.Fatalf("shard %s got no replicas across 200 keys: %v", name, hit)
		}
	}
}

func TestFleetPutGetDeleteRoundTrip(t *testing.T) {
	f, _, reg := testFleet(t, 5, 3)
	if err := f.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	data := []byte("ACGTACGT")
	if err := f.Put("c", "b", data); err != nil {
		t.Fatal(err)
	}
	got, err := f.Get("c", "b")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	// Every replica shard holds the blob (inside its version envelope).
	for _, name := range f.Replicas("c", "b") {
		env, err := f.byName[name].store.Get("c", "b")
		if err != nil {
			t.Fatalf("replica %s missing blob: %v", name, err)
		}
		ver, payload, err := openVersion(env)
		if err != nil || ver != 1 || string(payload) != string(data) {
			t.Fatalf("replica %s envelope = v%d %q (%v)", name, ver, payload, err)
		}
	}
	if err := f.Delete("c", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get("c", "b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted blob Get = %v, want ErrNotFound", err)
	}
	// Idempotent: a second delete acks via misses.
	if err := f.Delete("c", "b"); err != nil {
		t.Fatalf("second delete = %v", err)
	}
	if v := reg.Counter("dna_fleet_ops_total", "", "op", "put", "outcome", "ok").Value(); v != 1 {
		t.Fatalf("put ok counter = %d, want 1", v)
	}
	if v := reg.Counter("dna_fleet_ops_total", "", "op", "get", "outcome", "notfound").Value(); v != 1 {
		t.Fatalf("get notfound counter = %d, want 1", v)
	}
}

func TestFleetCreateContainerSemantics(t *testing.T) {
	f, _, _ := testFleet(t, 3, 3)
	if err := f.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateContainer("c"); !errors.Is(err, ErrContainerExists) {
		t.Fatalf("second create = %v, want ErrContainerExists", err)
	}
	// A shard that missed the create heals itself on first write.
	f.Kill("s0")
	if err := f.CreateContainer("late"); err != nil {
		t.Fatalf("create with one shard down: %v", err)
	}
	f.Revive("s0")
	if err := f.Put("late", "b", []byte("x")); err != nil {
		t.Fatalf("put after revive: %v", err)
	}
	if env, err := f.byName["s0"].store.Get("late", "b"); err != nil || len(env) == 0 {
		t.Fatalf("revived shard did not self-heal container on put: %v", err)
	}
}

// TestFleetBreakerStateMachine drives one shard's breaker around the full
// closed → open → half-open → closed loop on the fake clock.
func TestFleetBreakerStateMachine(t *testing.T) {
	f, clock, reg := testFleet(t, 5, 3)
	if err := f.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	victim := f.Replicas("c", "b")[0]
	f.Kill(victim)

	// HardTrip (3) consecutive hard failures open the breaker; the fleet
	// keeps answering from the surviving replicas throughout.
	for i := 0; i < 3; i++ {
		if err := f.Put("c", "b", []byte("x")); err != nil {
			t.Fatalf("put %d with one dead replica: %v", i, err)
		}
	}
	if st := f.BreakerStates()[victim]; st != BreakerOpen {
		t.Fatalf("after %d hard failures breaker is %v, want open", 3, st)
	}
	if v := reg.Counter("dna_fleet_breaker_transitions_total", "", "shard", victim, "to", "open").Value(); v != 1 {
		t.Fatalf("open transitions = %d, want 1", v)
	}

	// While open, ops fast-fail without touching the shard.
	if err := f.Put("c", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("dna_fleet_breaker_fastfail_total", "", "shard", victim).Value(); v == 0 {
		t.Fatal("open breaker recorded no fast-fails")
	}

	// Revive the shard. Before CoolDown the breaker still fast-fails ...
	f.Revive(victim)
	if err := f.Put("c", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if st := f.BreakerStates()[victim]; st != BreakerOpen {
		t.Fatalf("breaker left open state before cooldown: %v", st)
	}
	// ... and after CoolDown on the injected clock a probe goes through,
	// succeeds, and closes the breaker.
	clock.Advance(31 * time.Second)
	if err := f.Put("c", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if st := f.BreakerStates()[victim]; st != BreakerClosed {
		t.Fatalf("breaker after successful probe is %v, want closed", st)
	}
	if v := reg.Counter("dna_fleet_breaker_transitions_total", "", "shard", victim, "to", "closed").Value(); v != 1 {
		t.Fatalf("closed transitions = %d, want 1", v)
	}
	// The healed replica serves reads again.
	if _, err := f.Get("c", "b"); err != nil {
		t.Fatal(err)
	}
}

// TestFleetBreakerReopensOnFailedProbe: a half-open probe that hard-fails
// sends the breaker straight back to open for another cooldown.
func TestFleetBreakerReopensOnFailedProbe(t *testing.T) {
	f, clock, _ := testFleet(t, 5, 3)
	if err := f.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	victim := f.Replicas("c", "b")[0]
	f.Kill(victim)
	for i := 0; i < 3; i++ {
		if err := f.Put("c", "b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Shard still dead after cooldown: the probe fails, breaker re-opens.
	clock.Advance(31 * time.Second)
	if err := f.Put("c", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if st := f.BreakerStates()[victim]; st != BreakerOpen {
		t.Fatalf("breaker after failed probe is %v, want open", st)
	}
}

// TestFleetQuorumReadPrefersNewest: an overwrite that lands on a write
// quorum while one replica is dead must win quorum reads after that
// replica comes back with its stale copy.
func TestFleetQuorumReadPrefersNewest(t *testing.T) {
	f, _, _ := testFleet(t, 3, 3)
	if err := f.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("c", "b", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	stale := f.Replicas("c", "b")[0]
	f.Kill(stale)
	if err := f.Put("c", "b", []byte("v2")); err != nil {
		t.Fatalf("overwrite with 2/3 replicas: %v", err)
	}
	f.Revive(stale)
	// The stale replica is first in preference order, but the read quorum
	// (2) sees v2 on the second replica and the higher version wins.
	got, err := f.Get("c", "b")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("quorum read returned %q, want the newer \"v2\"", got)
	}
}

// TestFleetDegradedReadBelowQuorum: one surviving replica is enough to
// serve the blob (frames are self-verifying), booked as a degraded read.
func TestFleetDegradedReadBelowQuorum(t *testing.T) {
	f, _, reg := testFleet(t, 3, 3)
	if err := f.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("c", "b", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	reps := f.Replicas("c", "b")
	f.Kill(reps[0])
	f.Kill(reps[1])
	got, err := f.Get("c", "b")
	if err != nil {
		t.Fatalf("single-survivor read failed: %v", err)
	}
	if string(got) != "payload" {
		t.Fatalf("degraded read returned %q", got)
	}
	if v := reg.Counter("dna_fleet_degraded_reads_total", "").Value(); v != 1 {
		t.Fatalf("degraded reads counter = %d, want 1", v)
	}
}

// TestFleetDegradedErrorAttribution: losing the quorum yields a typed
// *DegradedError naming every failed shard, unwrapping to the per-shard
// errors, and NOT masquerading as a miss.
func TestFleetDegradedErrorAttribution(t *testing.T) {
	f, _, _ := testFleet(t, 3, 3)
	if err := f.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("c", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	reps := f.Replicas("c", "b")
	f.Kill(reps[0])
	f.Kill(reps[1])

	// Write quorum is 2; only one replica can ack.
	err := f.Put("c", "b", []byte("y"))
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("quorum-loss put = %v, want *DegradedError", err)
	}
	if deg.Op != "put" || deg.Acks != 1 || deg.Need != 2 || deg.Replicas != 3 {
		t.Fatalf("degraded put attribution %+v", deg)
	}
	named := map[string]bool{}
	for _, sf := range deg.Failures {
		named[sf.Shard] = true
	}
	if !named[reps[0]] || !named[reps[1]] {
		t.Fatalf("failures name %v, want both %s and %s", named, reps[0], reps[1])
	}
	var down *ShardDownError
	if !errors.As(err, &down) {
		t.Fatalf("degraded error does not unwrap to *ShardDownError: %v", err)
	}
	if !IsDegraded(err) {
		t.Fatal("IsDegraded missed a *DegradedError")
	}

	// Kill the last replica: reads now fail degraded (NOT a miss — the
	// blob exists, the fleet just cannot reach it).
	f.Kill(reps[2])
	_, gerr := f.Get("c", "b")
	if !errors.As(gerr, &deg) {
		t.Fatalf("all-replicas-down get = %v, want *DegradedError", gerr)
	}
	if errors.Is(gerr, ErrNotFound) {
		t.Fatal("unreachable blob misreported as ErrNotFound")
	}
	for _, name := range reps {
		if !strings.Contains(gerr.Error(), name) {
			t.Fatalf("degraded get %q does not attribute shard %s", gerr, name)
		}
	}
}

// TestFleetTransientFaultsRetryableThroughDegraded: a degraded op whose
// replica failures are injected transients stays transient for the
// exchange retry policy (multi-error unwrap through *DegradedError).
func TestFleetTransientFaultsRetryableThroughDegraded(t *testing.T) {
	specs := []ShardSpec{
		{Name: "flaky0", FaultRate: 1, FaultSeed: 1},
		{Name: "flaky1", FaultRate: 1, FaultSeed: 2},
	}
	f, err := NewFleet(FleetConfig{Shards: specs, Replication: 2, Seed: 7, Registry: obs.NewRegistry(), Clock: obs.NewFake(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	perr := f.Put("c", "b", []byte("x"))
	if perr == nil {
		t.Fatal("rate-1 fleet accepted a put")
	}
	if !IsTransient(perr) {
		t.Fatalf("degraded-by-transients put %v not classified transient", perr)
	}
}

// TestFleetReportAggregates: the health report derives from aggregate
// counters, flags the kill switch, and prices modeled transfer cost.
func TestFleetReportAggregates(t *testing.T) {
	f, _, _ := testFleet(t, 3, 3)
	if err := f.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("c", "b", make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	f.Kill("s1")
	rep := f.Report()
	if len(rep.Shards) != 3 {
		t.Fatalf("report covers %d shards, want 3", len(rep.Shards))
	}
	for _, sr := range rep.Shards {
		if sr.Ops == 0 {
			t.Fatalf("shard %s booked no ops: %+v", sr.Name, sr)
		}
		if sr.ModeledMS <= 0 {
			t.Fatalf("shard %s modeled cost %v", sr.Name, sr.ModeledMS)
		}
		if sr.Name == "s1" && !sr.Down {
			t.Fatalf("killed shard not flagged down: %+v", sr)
		}
	}
}
