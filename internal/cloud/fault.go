package cloud

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// TransientError is an injected, retryable storage failure: the op did not
// happen, but an identical retry may succeed. It is the retryable half of
// the store error taxonomy (permanent failures wrap ErrNotFound /
// ErrContainerExists).
type TransientError struct {
	Op        string // "put", "get" or "delete"
	Container string
	Blob      string
	Attempt   int // 0-based attempt counter for this (op, container, blob)
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("cloud: transient %s failure on %s/%s (attempt %d)", e.Op, e.Container, e.Blob, e.Attempt)
}

// IsTransient reports whether err carries a *TransientError anywhere in its
// chain — the retry policy's "is this worth another attempt?" predicate.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}

// FaultConfig parameterizes a FaultyStore.
type FaultConfig struct {
	// Rate is the probability in [0, 1] that any single Put/Get/Delete
	// attempt fails with a *TransientError. The decision is a deterministic
	// hash of (Seed, op, container, blob, attempt), so a given key always
	// fails the same attempts regardless of how ops on other keys interleave.
	Rate float64
	// Seed selects the fault schedule; the same seed reproduces it exactly.
	Seed uint64
	// OpDelay, when positive, is slept before every Put/Get/Delete. It adds
	// real latency (to widen race windows in chaos tests and to exercise
	// per-op timeouts) without touching any modeled or returned value.
	OpDelay time.Duration
}

// FaultyStore wraps a Store and injects seeded, deterministic transient
// failures into Put, Get and Delete. CreateContainer is passed through
// untouched (it is setup, not the data path). Safe for concurrent use if
// the wrapped store is.
type FaultyStore struct {
	inner Store
	cfg   FaultConfig

	mu       sync.Mutex
	attempts map[string]int // per-(op, container, blob) attempt counter
	ops      uint64
	injected uint64
}

// NewFaultyStore wraps inner with the given fault schedule.
func NewFaultyStore(inner Store, cfg FaultConfig) *FaultyStore {
	return &FaultyStore{inner: inner, cfg: cfg, attempts: make(map[string]int)}
}

// hash64 maps (seed, parts...) to a deterministic 64-bit value. FNV's
// avalanche is weak when only the trailing bytes differ (consecutive
// attempt numbers, vnode ordinals), so the sum is run through a
// murmur-style finalizer to spread those differences across all bits. The
// fault schedule and the fleet's consistent-hash ring both key off it.
func hash64(seed uint64, parts ...string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashUnit maps (seed, parts...) to a deterministic value in [0, 1) by
// taking the top 53 bits of hash64.
func hashUnit(seed uint64, parts ...string) float64 {
	return float64(hash64(seed, parts...)>>11) / float64(1<<53)
}

// roll advances the attempt counter for (op, container, blob) and returns
// the injected fault for this attempt, or nil to let the op through.
func (s *FaultyStore) roll(op, container, blob string) error {
	if s.cfg.OpDelay > 0 {
		time.Sleep(s.cfg.OpDelay)
	}
	s.mu.Lock()
	key := op + "\x00" + container + "\x00" + blob
	attempt := s.attempts[key]
	s.attempts[key] = attempt + 1
	s.ops++
	inject := hashUnit(s.cfg.Seed, op, container, blob, fmt.Sprintf("%d", attempt)) < s.cfg.Rate
	if inject {
		s.injected++
	}
	s.mu.Unlock()
	if inject {
		return &TransientError{Op: op, Container: container, Blob: blob, Attempt: attempt}
	}
	return nil
}

// CreateContainer passes through to the wrapped store.
func (s *FaultyStore) CreateContainer(name string) error {
	return s.inner.CreateContainer(name)
}

// Put uploads a BLOB, or fails transiently per the fault schedule.
func (s *FaultyStore) Put(container, blob string, data []byte) error {
	if err := s.roll("put", container, blob); err != nil {
		return err
	}
	return s.inner.Put(container, blob, data)
}

// Get downloads a BLOB, or fails transiently per the fault schedule.
func (s *FaultyStore) Get(container, blob string) ([]byte, error) {
	if err := s.roll("get", container, blob); err != nil {
		return nil, err
	}
	return s.inner.Get(container, blob)
}

// Delete removes a BLOB, or fails transiently per the fault schedule.
func (s *FaultyStore) Delete(container, blob string) error {
	if err := s.roll("delete", container, blob); err != nil {
		return err
	}
	return s.inner.Delete(container, blob)
}

// Counters reports lifetime data-path attempts and how many had a fault
// injected.
func (s *FaultyStore) Counters() (ops, injected uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops, s.injected
}
