package cloud

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/obs"
)

// BlockExchangeOptions configures one block-mode exchange: the usual
// exchange knobs plus the block-engine geometry.
type BlockExchangeOptions struct {
	ExchangeOptions
	// Block configures the block engine: block size and the worker/transfer
	// concurrency bound.
	Block compress.BlockOptions
}

// BlockExchangeReport extends the exchange report with the block-mode
// figures.
type BlockExchangeReport struct {
	ExchangeReport
	// Blocks is the number of blocks the container was split into.
	Blocks int
	// ContainerBytes is the full multi-block container size — what the
	// blobs sum to (manifest + per-block frames).
	ContainerBytes int
}

// manifestBlob and blockBlob name the BLOBs one block exchange writes: the
// container's header+index travels as "<blob>.cxb1" and block k's armored
// frame as "<blob>.bNNNNNN", so every piece retries (and fault-injects)
// independently.
func manifestBlob(blob string) string { return blob + ".cxb1" }

func blockBlob(blob string, k int) string { return fmt.Sprintf("%s.b%06d", blob, k) }

// ExchangeBlocks runs the exchange pipeline through the block engine:
// compress src into a multi-block container (bounded worker pool, byte
// deterministic for any job count), upload the manifest and each block
// frame as separate BLOBs through a bounded transfer pool — blocks move
// concurrently instead of as one monolithic stream — download every piece
// at the fixed Azure VM, reassemble the container byte-for-byte, and
// restore it through the validated block open path (per-block hardened
// decode plus the whole-output checksum). Each BLOB gets its own retry
// schedule, so a transient fault on one block never re-uploads the others;
// traces are reported in manifest-then-block-index order regardless of
// transfer interleaving, keeping reports reproducible under any
// concurrency.
func ExchangeBlocks(ctx context.Context, client VM, store Store, codecName string, src []byte, opts BlockExchangeOptions) (rep BlockExchangeReport, err error) {
	rep = BlockExchangeReport{ExchangeReport: ExchangeReport{Codec: codecName, OriginalBases: len(src)}}
	if store == nil {
		return rep, fmt.Errorf("cloud: nil store")
	}
	if opts.Container == "" {
		opts.Container = "exchange"
	}
	if opts.Blob == "" {
		opts.Blob = "blob"
	}
	jobs := opts.Block.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	reg := obs.Metrics(ctx)
	var span *obs.Span
	ctx, span = obs.Start(ctx, "cloud.exchange_blocks")
	span.SetAttr("codec", codecName)
	defer func() {
		span.SetAttr("blocks", rep.Blocks)
		span.SetAttr("container_bytes", rep.ContainerBytes)
		span.SetAttr("retry_wait_ms", rep.RetryWaitMS)
		span.SetAttr("attempts", rep.AttemptCount())
		outcome := "ok"
		switch {
		case err == nil:
		case errors.Is(err, compress.ErrCorrupt):
			outcome = "corrupt"
			reg.Counter("dna_exchange_corrupt_total", "Exchanges that delivered a corrupt frame.").Inc()
		default:
			outcome = "error"
		}
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		reg.Counter("dna_exchange_blocks_total", "Block-mode exchange pipelines run.", "outcome", outcome).Inc()
		span.End()
	}()

	container, cst, err := compress.BlockCompressObserved(reg, codecName, src, opts.Block)
	if err != nil {
		return rep, fmt.Errorf("cloud: block compress: %w", err)
	}
	rd, err := compress.OpenBlocks(container, compress.Limits{MaxCompressed: -1, MaxOutput: -1})
	if err != nil {
		return rep, fmt.Errorf("cloud: sealed container does not open: %w", err)
	}
	rep.Blocks = rd.Blocks()
	rep.ContainerBytes = len(container)
	rep.FrameBytes = len(container)
	index := rd.Index()
	payloadBytes := 0
	for _, e := range index {
		payloadBytes += e.Length - compress.Overhead(codecName)
	}
	rep.CompressedBytes = payloadBytes
	rep.BitsPerBase = compress.Ratio(len(src), payloadBytes)
	rep.CompressMS = client.ExecMS(cst)

	// Slice the container into its wire pieces: manifest (header+index),
	// then one frame per block.
	manifestLen := len(container)
	for _, e := range index {
		manifestLen -= e.Length
	}
	pieces := make([][]byte, 1+len(index))
	names := make([]string, 1+len(index))
	pieces[0], names[0] = container[:manifestLen], manifestBlob(opts.Blob)
	pos := manifestLen
	for k, e := range index {
		pieces[1+k] = container[pos : pos+e.Length]
		names[1+k] = blockBlob(opts.Blob, k)
		pos += e.Length
	}

	if err := store.CreateContainer(opts.Container); err != nil && !errors.Is(err, ErrContainerExists) {
		return rep, fmt.Errorf("cloud: create container: %w", err)
	}

	// Upload: every piece through its own retry schedule, at most jobs in
	// flight. Traces land in indexed slots so the report reads in piece
	// order no matter how the pool interleaved.
	upTraces, err := transferPool(ctx, opts.ExchangeOptions, jobs, "put", names, func(i int) error {
		return store.Put(opts.Container, names[i], pieces[i])
	})
	rep.Traces = append(rep.Traces, upTraces...)
	for i, tr := range upTraces {
		rep.UploadMS += client.UploadMS(len(pieces[i])) * float64(tr.Attempts)
	}
	rep.RetryWaitMS = sumBackoff(rep.Traces)
	if err != nil {
		return rep, fmt.Errorf("cloud: upload: %w", err)
	}
	reg.Counter("dna_exchange_up_bytes_total", "Frame bytes uploaded (successful PUTs).").Add(uint64(len(container)))

	// Download at the datacenter VM and reassemble the container exactly.
	fetched := make([][]byte, len(pieces))
	downTraces, err := transferPool(ctx, opts.ExchangeOptions, jobs, "get", names, func(i int) error {
		var gerr error
		fetched[i], gerr = store.Get(opts.Container, names[i])
		return gerr
	})
	rep.Traces = append(rep.Traces, downTraces...)
	for i, tr := range downTraces {
		rep.DownloadMS += AzureVM.DownloadMS(len(fetched[i])) * float64(tr.Attempts)
	}
	rep.RetryWaitMS = sumBackoff(rep.Traces)
	if err != nil {
		return rep, fmt.Errorf("cloud: download: %w", err)
	}
	reassembled := make([]byte, 0, len(container))
	for _, piece := range fetched {
		reassembled = append(reassembled, piece...)
	}
	reg.Counter("dna_exchange_down_bytes_total", "Frame bytes downloaded (successful GETs).").Add(uint64(len(reassembled)))

	// The receiving VM proves integrity from the container alone: header
	// and index checksums, per-block hardened decode, whole-output CRC.
	restored, dst, err := compress.SafeDecompressAny(codecName, reassembled, opts.Limits)
	compress.ObserveDecompress(reg, codecName, len(reassembled), len(restored), dst, err)
	if err != nil {
		return rep, fmt.Errorf("cloud: decompress: %w", err)
	}
	rep.DecompressMS = AzureVM.ExecMS(dst)

	if opts.Cleanup {
		delTraces, err := transferPool(ctx, opts.ExchangeOptions, jobs, "delete", names, func(i int) error {
			return store.Delete(opts.Container, names[i])
		})
		rep.Traces = append(rep.Traces, delTraces...)
		rep.RetryWaitMS = sumBackoff(rep.Traces)
		if err != nil {
			return rep, fmt.Errorf("cloud: cleanup: %w", err)
		}
	}
	return rep, nil
}

// transferPool drives one store op per named piece through a bounded
// worker pool, each piece under its own retryOp schedule. Results land in
// indexed slots; the returned traces are in piece order and the returned
// error is the first failure by index — both independent of scheduling.
func transferPool(ctx context.Context, opts ExchangeOptions, jobs int, op string, names []string, f func(i int) error) ([]OpTrace, error) {
	traces := make([]OpTrace, len(names))
	errs := make([]error, len(names))
	if jobs > len(names) {
		jobs = len(names)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				traces[i], errs[i] = retryOp(ctx, opts, fmt.Sprintf("%s:%s", op, names[i]), func() error {
					return f(i)
				})
			}
		}()
	}
	for i := range names {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return traces, err
		}
	}
	return traces, nil
}
