package cloud

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
)

func TestGridShape(t *testing.T) {
	grid := Grid()
	if len(grid) != 32 {
		t.Fatalf("grid has %d contexts, want 32 (paper: 33 files × 32 contexts = 1056 rows)", len(grid))
	}
	seen := map[string]bool{}
	for _, vm := range grid {
		if seen[vm.Name] {
			t.Errorf("duplicate VM %s", vm.Name)
		}
		seen[vm.Name] = true
		if vm.RAMMB <= 0 || vm.CPUMHz <= 0 || vm.BandwidthMbps <= 0 {
			t.Errorf("invalid VM %+v", vm)
		}
	}
}

func TestExecMSCPUScaling(t *testing.T) {
	st := compress.Stats{WorkNS: 24_000_000, PeakMem: 1 << 20} // 24 ms on reference core
	fast := VM{RAMMB: 4096, CPUMHz: 2400}
	slow := VM{RAMMB: 4096, CPUMHz: 1200}
	if got := fast.ExecMS(st); got != 24 {
		t.Errorf("reference-speed VM: %v ms, want 24", got)
	}
	if got := slow.ExecMS(st); got != 48 {
		t.Errorf("half-speed VM: %v ms, want 48", got)
	}
}

func TestExecMSThrash(t *testing.T) {
	st := compress.Stats{WorkNS: 10_000_000, PeakMem: 100 << 20}
	roomy := VM{RAMMB: 4096, CPUMHz: 2400}
	tight := VM{RAMMB: 512 + 50, CPUMHz: 2400} // ~50 MB available after OS
	base := roomy.ExecMS(st)
	squeezed := tight.ExecMS(st)
	if squeezed <= base {
		t.Fatalf("thrash penalty missing: %v <= %v", squeezed, base)
	}
	if squeezed < 2*base {
		t.Fatalf("100 MB working set in 50 MB RAM should at least double time: %v vs %v", squeezed, base)
	}
}

func TestUploadDependsOnCPUAndRAMNotOnlyBandwidth(t *testing.T) {
	// The paper's key infrastructure observation.
	const size = 200 << 10
	base := VM{RAMMB: 4096, CPUMHz: 2400, BandwidthMbps: 10}
	slowCPU := VM{RAMMB: 4096, CPUMHz: 1200, BandwidthMbps: 10}
	lowRAM := VM{RAMMB: 1024, CPUMHz: 2400, BandwidthMbps: 10}
	if slowCPU.UploadMS(size) <= base.UploadMS(size) {
		t.Error("slower CPU must slow the upload (stream conversion)")
	}
	if lowRAM.UploadMS(size) <= base.UploadMS(size) {
		t.Error("less RAM must slow the upload (buffering)")
	}
	lowBW := VM{RAMMB: 4096, CPUMHz: 2400, BandwidthMbps: 2}
	if lowBW.UploadMS(size) <= base.UploadMS(size) {
		t.Error("less bandwidth must slow the upload")
	}
}

func TestUploadMonotoneInSize(t *testing.T) {
	vm := VM{RAMMB: 2048, CPUMHz: 2000, BandwidthMbps: 2}
	prev := -1.0
	for size := 0; size <= 1<<20; size += 64 << 10 {
		ms := vm.UploadMS(size)
		if ms <= prev {
			t.Fatalf("upload time not monotone at %d bytes", size)
		}
		prev = ms
	}
}

func TestDownloadFasterThanUploadAtCloud(t *testing.T) {
	// Datacenter-side download of the same BLOB must be far cheaper than a
	// 2 Mbps client upload.
	const size = 100 << 10
	client := VM{RAMMB: 2048, CPUMHz: 2000, BandwidthMbps: 2}
	if AzureVM.DownloadMS(size) >= client.UploadMS(size) {
		t.Error("cloud download should beat slow client upload")
	}
}

func TestBlobStoreLifecycle(t *testing.T) {
	s := NewBlobStore()
	if err := s.CreateContainer("dna"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateContainer("dna"); err == nil {
		t.Fatal("duplicate container accepted")
	}
	payload := []byte{1, 2, 3, 4}
	if err := s.Put("dna", "seq1", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("dna", "seq1")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %v, %v", got, err)
	}
	// The store must hold a copy, not alias the caller's buffer.
	payload[0] = 99
	got2, _ := s.Get("dna", "seq1")
	if got2[0] == 99 {
		t.Fatal("store aliases caller buffer")
	}
	if n, err := s.Size("dna", "seq1"); err != nil || n != 4 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := s.Put("dna", "seq2", []byte{9}); err != nil {
		t.Fatal(err)
	}
	names, err := s.List("dna")
	if err != nil || len(names) != 2 || names[0] != "seq1" || names[1] != "seq2" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := s.Delete("dna", "seq1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("dna", "seq1"); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, err := s.Get("dna", "seq1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted blob: err = %v, want ErrNotFound", err)
	}
	if err := s.CreateContainer("dna"); !errors.Is(err, ErrContainerExists) {
		t.Fatalf("duplicate container: err = %v, want ErrContainerExists", err)
	}
}

func TestBlobStoreMissingContainer(t *testing.T) {
	s := NewBlobStore()
	if err := s.Put("nope", "b", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("Put to missing container: err = %v, want ErrNotFound", err)
	}
	if _, err := s.Get("nope", "b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get from missing container: err = %v, want ErrNotFound", err)
	}
	if _, err := s.List("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("List of missing container: err = %v, want ErrNotFound", err)
	}
	if err := s.Delete("nope", "b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete from missing container: err = %v, want ErrNotFound", err)
	}
	if _, err := s.Size("nope", "b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size from missing container: err = %v, want ErrNotFound", err)
	}
}

func TestBlobStoreConcurrent(t *testing.T) {
	s := NewBlobStore()
	if err := s.CreateContainer("c"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("blob-%d-%d", g, i)
				if err := s.Put("c", name, []byte{byte(g), byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get("c", name); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Size("c", name); err != nil {
					t.Error(err)
					return
				}
				// Every other blob is deleted again, so Put/Get/Delete (and
				// the read-path List below) all contend under -race.
				if i%2 == 1 {
					if err := s.Delete("c", name); err != nil {
						t.Error(err)
						return
					}
				}
				if g == 0 && i%10 == 0 {
					if _, err := s.List("c"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	names, err := s.List("c")
	if err != nil || len(names) != 400 {
		t.Fatalf("List = %d names, %v (want the 400 surviving blobs)", len(names), err)
	}
}

func TestVMString(t *testing.T) {
	vm := VM{Name: "x", RAMMB: 1024, CPUMHz: 2000, BandwidthMbps: 2}
	if s := vm.String(); s != "x(ram=1024MB,cpu=2000MHz,bw=2Mbps)" {
		t.Fatalf("String = %q", s)
	}
}
