package cloud

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
)

// TestExchangeBlocksRoundTripPlainStore: block-mode exchange over a reliable
// store lands one manifest BLOB plus one BLOB per block, reports in piece
// order, and restores through the hardened container path.
func TestExchangeBlocksRoundTripPlainStore(t *testing.T) {
	store := NewBlobStore()
	src := symbols(4096, 11)
	const blockSize = 1000 // 5 blocks: 4 full + one 96-base tail
	rep, err := ExchangeBlocks(context.Background(), chaosClient, store, "dnax", src, BlockExchangeOptions{
		ExchangeOptions: ExchangeOptions{Blob: "seq", Retry: DefaultRetryPolicy()},
		Block:           compress.BlockOptions{BlockSize: blockSize, Jobs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBlocks := (len(src) + blockSize - 1) / blockSize
	if rep.Blocks != wantBlocks {
		t.Fatalf("Blocks = %d, want %d", rep.Blocks, wantBlocks)
	}
	if rep.OriginalBases != len(src) || rep.CompressedBytes <= 0 || rep.BitsPerBase <= 0 {
		t.Fatalf("bad report %+v", rep)
	}
	if rep.ContainerBytes <= rep.CompressedBytes {
		t.Fatalf("ContainerBytes %d should exceed payload %d (armor overhead)", rep.ContainerBytes, rep.CompressedBytes)
	}
	if rep.CompressMS <= 0 || rep.DecompressMS <= 0 || rep.UploadMS <= 0 || rep.DownloadMS <= 0 {
		t.Fatalf("non-positive stage time: %+v", rep)
	}
	// Reliable store: exactly one attempt per piece per direction, and the
	// traces read manifest-first then block order, upload before download.
	wantPieces := 1 + wantBlocks
	if len(rep.Traces) != 2*wantPieces || rep.AttemptCount() != 2*wantPieces {
		t.Fatalf("traces %d attempts %d, want %d each", len(rep.Traces), rep.AttemptCount(), 2*wantPieces)
	}
	wantOps := []string{"put:seq.cxb1"}
	for k := 0; k < wantBlocks; k++ {
		wantOps = append(wantOps, fmt.Sprintf("put:seq.b%06d", k))
	}
	wantOps = append(wantOps, "get:seq.cxb1")
	for k := 0; k < wantBlocks; k++ {
		wantOps = append(wantOps, fmt.Sprintf("get:seq.b%06d", k))
	}
	for i, tr := range rep.Traces {
		if tr.Op != wantOps[i] {
			t.Fatalf("trace %d is %q, want %q", i, tr.Op, wantOps[i])
		}
	}
}

// TestExchangeBlocksStoreHoldsContainerPieces: the BLOBs in the store are
// exactly the slices of the deterministic container — the manifest is the
// header+index, and every block BLOB is a self-contained armored frame that
// opens on its own.
func TestExchangeBlocksStoreHoldsContainerPieces(t *testing.T) {
	store := NewBlobStore()
	src := symbols(2500, 12)
	opts := compress.BlockOptions{BlockSize: 512, Jobs: 2}
	if _, err := ExchangeBlocks(context.Background(), chaosClient, store, "dnax", src, BlockExchangeOptions{
		ExchangeOptions: ExchangeOptions{Container: "pieces", Blob: "seq"},
		Block:           opts,
	}); err != nil {
		t.Fatal(err)
	}
	container, _, err := compress.BlockCompress("dnax", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := compress.OpenBlocks(container, compress.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var reassembled []byte
	manifest, err := store.Get("pieces", "seq.cxb1")
	if err != nil {
		t.Fatalf("manifest blob: %v", err)
	}
	reassembled = append(reassembled, manifest...)
	for k := 0; k < rd.Blocks(); k++ {
		frame, err := store.Get("pieces", fmt.Sprintf("seq.b%06d", k))
		if err != nil {
			t.Fatalf("block %d blob: %v", k, err)
		}
		if _, err := compress.Open(frame); err != nil {
			t.Fatalf("block %d blob is not a standalone armored frame: %v", k, err)
		}
		reassembled = append(reassembled, frame...)
	}
	if !bytes.Equal(reassembled, container) {
		t.Fatalf("store pieces reassemble to %d bytes, container is %d and differs", len(reassembled), len(container))
	}
}

// TestExchangeBlocksFaultyDeterministicAcrossJobs: the fault schedule hashes
// (op, container, blob, attempt), so per-piece retry histories — and hence
// the whole report — are identical no matter how many transfer workers
// interleave the ops.
func TestExchangeBlocksFaultyDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) BlockExchangeReport {
		store := NewFaultyStore(NewBlobStore(), FaultConfig{Rate: 0.3, Seed: 77})
		rep, err := ExchangeBlocks(context.Background(), chaosClient, store, "dnax", symbols(3000, 13), BlockExchangeOptions{
			ExchangeOptions: ExchangeOptions{Blob: "det", Retry: DefaultRetryPolicy()},
			Block:           compress.BlockOptions{BlockSize: 300, Jobs: jobs},
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return rep
	}
	base := run(1)
	if base.AttemptCount() <= len(base.Traces) {
		t.Fatalf("rate 0.3 over %d ops injected no faults — schedule broken", len(base.Traces))
	}
	for _, jobs := range []int{2, 8} {
		if got := run(jobs); !reflect.DeepEqual(got, base) {
			t.Fatalf("jobs=%d report diverged from jobs=1:\n%+v\nvs\n%+v", jobs, got, base)
		}
	}
}

// tamperStore corrupts one named BLOB on Get — the in-flight bit-flip the
// receiving VM must catch from the container alone.
type tamperStore struct {
	Store
	blob string
}

func (s *tamperStore) Get(container, blob string) ([]byte, error) {
	data, err := s.Store.Get(container, blob)
	if err == nil && blob == s.blob {
		data = append([]byte(nil), data...)
		data[len(data)/2] ^= 0x40
	}
	return data, err
}

// TestExchangeBlocksDetectsTamperedBlock: a single flipped bit in one block
// BLOB must surface as compress.ErrCorrupt at the receiving end.
func TestExchangeBlocksDetectsTamperedBlock(t *testing.T) {
	store := &tamperStore{Store: NewBlobStore(), blob: "seq.b000002"}
	_, err := ExchangeBlocks(context.Background(), chaosClient, store, "dnax", symbols(2048, 14), BlockExchangeOptions{
		ExchangeOptions: ExchangeOptions{Blob: "seq"},
		Block:           compress.BlockOptions{BlockSize: 400},
	})
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("tampered block delivered %v, want ErrCorrupt", err)
	}
}

// TestExchangeBlocksCleanup: with Cleanup set, every piece — manifest and
// blocks — is deleted after a verified restore.
func TestExchangeBlocksCleanup(t *testing.T) {
	store := NewBlobStore()
	rep, err := ExchangeBlocks(context.Background(), chaosClient, store, "dnax", symbols(1024, 15), BlockExchangeOptions{
		ExchangeOptions: ExchangeOptions{Container: "tidy", Blob: "seq", Cleanup: true},
		Block:           compress.BlockOptions{BlockSize: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("tidy", "seq.cxb1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("manifest survived cleanup: %v", err)
	}
	for k := 0; k < rep.Blocks; k++ {
		if _, err := store.Get("tidy", fmt.Sprintf("seq.b%06d", k)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("block %d survived cleanup: %v", k, err)
		}
	}
}

// TestExchangeBlocksRejectsBadInput mirrors the whole-slice guardrails.
func TestExchangeBlocksRejectsBadInput(t *testing.T) {
	if _, err := ExchangeBlocks(context.Background(), chaosClient, nil, "dnax", symbols(16, 16), BlockExchangeOptions{}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := ExchangeBlocks(context.Background(), chaosClient, NewBlobStore(), "nope", symbols(16, 16), BlockExchangeOptions{}); err == nil {
		t.Fatal("unknown codec accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExchangeBlocks(ctx, chaosClient, NewBlobStore(), "dnax", symbols(16, 16), BlockExchangeOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context returned %v", err)
	}
}
