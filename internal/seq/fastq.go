package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// FASTQRecord is one read of a FASTQ file: identifier, bases, and
// per-base Phred qualities (ASCII-encoded, same length as Seq).
type FASTQRecord struct {
	ID   string
	Seq  []byte // ASCII bases
	Qual []byte // ASCII quality characters
}

// Validate checks structural coherence.
func (r FASTQRecord) Validate() error {
	if len(r.Seq) != len(r.Qual) {
		return fmt.Errorf("seq: record %q: %d bases vs %d qualities", r.ID, len(r.Seq), len(r.Qual))
	}
	return nil
}

// ReadFASTQ parses the four-line-per-record FASTQ format, the raw output of
// the high-throughput sequencers whose data volumes motivate the paper.
func ReadFASTQ(r io.Reader) ([]FASTQRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	var recs []FASTQRecord
	line := 0
	for sc.Scan() {
		line++
		head := bytes.TrimSpace(sc.Bytes())
		if len(head) == 0 {
			continue
		}
		if head[0] != '@' {
			return nil, fmt.Errorf("seq: line %d: expected @header, got %q", line, head)
		}
		rec := FASTQRecord{ID: string(head[1:])}
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, scanErr("FASTQ", err)
			}
			return nil, fmt.Errorf("seq: record %q: missing sequence line", rec.ID)
		}
		line++
		rec.Seq = append([]byte(nil), bytes.TrimSpace(sc.Bytes())...)
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, scanErr("FASTQ", err)
			}
			return nil, fmt.Errorf("seq: record %q: missing separator line", rec.ID)
		}
		line++
		if sep := bytes.TrimSpace(sc.Bytes()); len(sep) == 0 || sep[0] != '+' {
			return nil, fmt.Errorf("seq: record %q: line %d is not a + separator", rec.ID, line)
		}
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, scanErr("FASTQ", err)
			}
			return nil, fmt.Errorf("seq: record %q: missing quality line", rec.ID)
		}
		line++
		rec.Qual = append([]byte(nil), bytes.TrimSpace(sc.Bytes())...)
		if err := rec.Validate(); err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr("FASTQ", err)
	}
	return recs, nil
}

// WriteFASTQ writes records in four-line format.
func WriteFASTQ(w io.Writer, recs []FASTQRecord) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if err := rec.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.ID, rec.Seq, rec.Qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}
