package seq

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodeBase(t *testing.T) {
	for _, c := range []struct {
		ascii byte
		code  byte
	}{{'A', A}, {'C', C}, {'G', G}, {'T', T}, {'a', A}, {'c', C}, {'g', G}, {'t', T}} {
		got, err := Code(c.ascii)
		if err != nil {
			t.Fatalf("Code(%q): %v", c.ascii, err)
		}
		if got != c.code {
			t.Errorf("Code(%q) = %d, want %d", c.ascii, got, c.code)
		}
	}
	if _, err := Code('N'); err == nil {
		t.Error("Code('N') should fail")
	}
	if _, err := Code('>'); err == nil {
		t.Error("Code('>') should fail")
	}
	for code := byte(0); code < 4; code++ {
		back, err := Code(Base(code))
		if err != nil || back != code {
			t.Errorf("Base/Code round trip failed for %d", code)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{A: T, T: A, C: G, G: C}
	for c, want := range pairs {
		if got := Complement(c); got != want {
			t.Errorf("Complement(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	in := []byte("ACGTacgtTTGA")
	codes, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 2, 3, 0, 1, 2, 3, 3, 3, 2, 0}
	if !bytes.Equal(codes, want) {
		t.Fatalf("Encode = %v, want %v", codes, want)
	}
	if got := Decode(codes); !bytes.Equal(got, []byte("ACGTACGTTTGA")) {
		t.Fatalf("Decode = %q", got)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode([]byte("ACGNX")); err == nil {
		t.Fatal("Encode accepted invalid bases")
	}
}

func TestValid(t *testing.T) {
	if !Valid([]byte{0, 1, 2, 3}) {
		t.Error("Valid rejected legal codes")
	}
	if Valid([]byte{0, 4}) {
		t.Error("Valid accepted code 4")
	}
	if !Valid(nil) {
		t.Error("Valid(nil) should be true")
	}
}

func TestReverseComplement(t *testing.T) {
	in, _ := Encode([]byte("AACGT"))
	got := ReverseComplement(in)
	want, _ := Encode([]byte("ACGTT"))
	if !bytes.Equal(got, want) {
		t.Fatalf("ReverseComplement = %s, want ACGTT", Decode(got))
	}
	// Involution property.
	if !bytes.Equal(ReverseComplement(got), in) {
		t.Fatal("ReverseComplement is not an involution")
	}
}

func TestPackUnpack(t *testing.T) {
	for n := 0; n <= 17; n++ {
		codes := make([]byte, n)
		for i := range codes {
			codes[i] = byte((i * 7) % 4)
		}
		packed := Pack(codes)
		if want := (n + 3) / 4; len(packed) != want {
			t.Fatalf("n=%d: packed length %d, want %d", n, len(packed), want)
		}
		got, err := Unpack(packed, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, codes) {
			t.Fatalf("n=%d: unpack mismatch", n)
		}
	}
}

func TestUnpackShortBuffer(t *testing.T) {
	if _, err := Unpack([]byte{0}, 5); err == nil {
		t.Fatal("Unpack accepted short buffer")
	}
}

func TestGCContent(t *testing.T) {
	s, _ := Encode([]byte("GGCC"))
	if gc := GCContent(s); gc != 1.0 {
		t.Errorf("GCContent(GGCC) = %f", gc)
	}
	s, _ = Encode([]byte("AATT"))
	if gc := GCContent(s); gc != 0.0 {
		t.Errorf("GCContent(AATT) = %f", gc)
	}
	s, _ = Encode([]byte("ACGT"))
	if gc := GCContent(s); gc != 0.5 {
		t.Errorf("GCContent(ACGT) = %f", gc)
	}
	if GCContent(nil) != 0 {
		t.Error("GCContent(nil) should be 0")
	}
}

func TestCounts(t *testing.T) {
	s, _ := Encode([]byte("AACGTTT"))
	n := Counts(s)
	if n != [4]int{2, 1, 1, 3} {
		t.Fatalf("Counts = %v", n)
	}
}

func TestQuickReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		codes := make([]byte, len(raw))
		for i, b := range raw {
			codes[i] = b & 3
		}
		return bytes.Equal(ReverseComplement(ReverseComplement(codes)), codes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPackUnpack(t *testing.T) {
	f := func(raw []byte) bool {
		codes := make([]byte, len(raw))
		for i, b := range raw {
			codes[i] = b & 3
		}
		got, err := Unpack(Pack(codes), len(codes))
		return err == nil && bytes.Equal(got, codes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadFASTA(t *testing.T) {
	in := ">seq1 first record\nACGT\nACGT\n\n>seq2\nTTTT\n"
	recs, err := ReadFASTA(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Header != "seq1 first record" || string(recs[0].Seq) != "ACGTACGT" {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Header != "seq2" || string(recs[1].Seq) != "TTTT" {
		t.Fatalf("rec1 = %+v", recs[1])
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(bytes.NewReader([]byte("ACGT\n>h\n"))); err == nil {
		t.Fatal("data before header must fail")
	}
}

func TestWriteFASTAWraps(t *testing.T) {
	rec := Record{Header: "x", Seq: bytes.Repeat([]byte("A"), 150)}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, []Record{rec}, 70); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 4 { // header + 70 + 70 + 10
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if len(lines[1]) != 70 || len(lines[3]) != 10 {
		t.Fatalf("wrap widths wrong: %d, %d", len(lines[1]), len(lines[3]))
	}
	// Round trip.
	recs, err := ReadFASTA(&buf)
	if err != nil || len(recs) != 1 || !bytes.Equal(recs[0].Seq, rec.Seq) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestCleanser(t *testing.T) {
	raw := []byte("ACGT nN123\tRYacgt>junk")
	got, st := Cleanser{}.Clean(raw)
	want, _ := Encode([]byte("ACGTacgt"))
	if !bytes.Equal(got, want) {
		t.Fatalf("Clean = %v, want %v", got, want)
	}
	if st.Kept != 8 {
		t.Errorf("Kept = %d, want 8", st.Kept)
	}
	if st.Ambiguous != 6 { // n N R Y plus 'n' and 'k' inside "junk"
		t.Errorf("Ambiguous = %d, want 6", st.Ambiguous)
	}
	if st.Other != 8 { // space 1 2 3 tab > j u
		t.Errorf("Other = %d, want 8", st.Other)
	}
}

func TestCleanserSubstitution(t *testing.T) {
	raw := []byte("ACNNGT")
	got, st := Cleanser{KeepAmbiguousAs: 'A'}.Clean(raw)
	want, _ := Encode([]byte("ACAAGT"))
	if !bytes.Equal(got, want) {
		t.Fatalf("Clean = %v, want %v", got, want)
	}
	if st.Kept != 6 || st.Ambiguous != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCleanFASTA(t *testing.T) {
	in := ">a\nACGTN\n>b\nGG TT\n"
	seqs, st, err := Cleanser{}.CleanFASTA(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d seqs", len(seqs))
	}
	if len(seqs[0]) != 4 || len(seqs[1]) != 4 {
		t.Fatalf("lengths %d, %d", len(seqs[0]), len(seqs[1]))
	}
	if st.Kept != 8 || st.Ambiguous != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ascii := make([]byte, 1<<20)
	for i := range ascii {
		ascii[i] = Base(byte(rng.Intn(4)))
	}
	b.SetBytes(int64(len(ascii)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(ascii); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPack(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codes := make([]byte, 1<<20)
	for i := range codes {
		codes[i] = byte(rng.Intn(4))
	}
	b.SetBytes(int64(len(codes)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pack(codes)
	}
}

func TestReadFASTQ(t *testing.T) {
	in := "@read1 lane1\nACGT\n+\nIIII\n@read2\nTT\n+anything\n!#\n"
	recs, err := ReadFASTQ(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ID != "read1 lane1" || string(recs[0].Seq) != "ACGT" || string(recs[0].Qual) != "IIII" {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].ID != "read2" || string(recs[1].Qual) != "!#" {
		t.Fatalf("rec1 = %+v", recs[1])
	}
}

func TestReadFASTQErrors(t *testing.T) {
	cases := []string{
		"ACGT\n+\nIIII\n",        // missing @
		"@r\nACGT\n",             // truncated
		"@r\nACGT\nIIII\nIIII\n", // bad separator
		"@r\nACGT\n+\nII\n",      // quality length mismatch
		"@r\nACGT\n+\n",          // missing quality line
	}
	for i, in := range cases {
		if _, err := ReadFASTQ(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestWriteFASTQValidates(t *testing.T) {
	bad := []FASTQRecord{{ID: "x", Seq: []byte("ACGT"), Qual: []byte("I")}}
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, bad); err == nil {
		t.Fatal("mismatched record written")
	}
}

// TestOverlongLineSurfacesClearError: a sequence line beyond MaxLineBytes
// must fail with a message naming the 16 MiB limit (not bufio's cryptic
// "token too long") while still satisfying errors.Is(err, bufio.ErrTooLong)
// for callers that classify scanner failures.
func TestOverlongLineSurfacesClearError(t *testing.T) {
	long := bytes.Repeat([]byte{'A'}, MaxLineBytes+2)

	t.Run("FASTA", func(t *testing.T) {
		var in bytes.Buffer
		in.WriteString(">huge\n")
		in.Write(long)
		in.WriteByte('\n')
		_, err := ReadFASTA(&in)
		if err == nil {
			t.Fatal("over-long FASTA line accepted")
		}
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("err = %v, want bufio.ErrTooLong in the chain", err)
		}
		if !strings.Contains(err.Error(), "16 MiB") {
			t.Fatalf("error %q does not name the 16 MiB limit", err)
		}
	})

	t.Run("FASTQSequenceLine", func(t *testing.T) {
		var in bytes.Buffer
		in.WriteString("@read1\n")
		in.Write(long)
		in.WriteString("\n+\nIIII\n")
		_, err := ReadFASTQ(&in)
		if err == nil {
			t.Fatal("over-long FASTQ line accepted")
		}
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("err = %v, want bufio.ErrTooLong in the chain", err)
		}
		if !strings.Contains(err.Error(), "16 MiB") {
			t.Fatalf("error %q does not name the 16 MiB limit", err)
		}
	})

	// Exactly at the limit is still accepted: the guard must not be
	// off-by-one into legitimate (if unusual) single-line genomes.
	t.Run("AtLimit", func(t *testing.T) {
		var in bytes.Buffer
		in.WriteString(">edge\n")
		in.Write(bytes.Repeat([]byte{'C'}, MaxLineBytes-1))
		in.WriteByte('\n')
		recs, err := ReadFASTA(&in)
		if err != nil {
			t.Fatalf("line at the limit rejected: %v", err)
		}
		if len(recs) != 1 || len(recs[0].Seq) != MaxLineBytes-1 {
			t.Fatal("record mangled at the limit")
		}
	})
}
