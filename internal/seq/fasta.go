package seq

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
)

// MaxLineBytes is the longest line the FASTA and FASTQ scanners accept
// (16 MiB). NCBI-convention files wrap sequences at 60–80 columns, so a
// line anywhere near this limit is a malformed or hostile file, not data.
const MaxLineBytes = 16 * 1024 * 1024

// scanErr turns a scanner failure into a seq error, surfacing the
// otherwise-cryptic bufio.ErrTooLong ("token too long") as a clear
// line-limit message.
func scanErr(format string, err error) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("seq: %s: line exceeds the %d MiB line limit: %w", format, MaxLineBytes/(1024*1024), err)
	}
	return fmt.Errorf("seq: reading %s: %w", format, err)
}

// Record is a single FASTA record: a header line (without the leading '>')
// and the raw sequence text with line breaks removed.
type Record struct {
	Header string
	Seq    []byte // ASCII bases, possibly including ambiguity codes
}

// ReadFASTA parses every record from r. Sequence lines are concatenated
// verbatim (minus whitespace); no alphabet validation happens here — that is
// the Cleanser's job, mirroring the paper's pipeline where downloaded NCBI
// files carry headers and extra text that must be separated before
// single-sequence experiments.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	var (
		recs []Record
		cur  *Record
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			recs = append(recs, Record{Header: string(line[1:])})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seq: line %d: sequence data before any FASTA header", lineNo)
		}
		cur.Seq = append(cur.Seq, line...)
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr("FASTA", err)
	}
	return recs, nil
}

// WriteFASTA writes records to w with sequence lines wrapped at width
// characters (70 if width <= 0, the NCBI convention).
func WriteFASTA(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 70
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Header); err != nil {
			return err
		}
		for i := 0; i < len(rec.Seq); i += width {
			end := i + width
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := bw.Write(rec.Seq[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// CleanStats reports what the Cleanser removed.
type CleanStats struct {
	Kept      int // ACGT bases kept
	Ambiguous int // IUPAC ambiguity codes (N, R, Y, ...) dropped
	Other     int // whitespace, digits, punctuation dropped
}

// Cleanser implements the framework component of the same name (paper Fig. 7):
// it strips headers, whitespace, numbering and non-ACGT characters so that
// "single sequence experiments can be carried out smoothly". The result is a
// symbol-coded sequence ready for any codec.
type Cleanser struct {
	// KeepAmbiguousAs, when non-zero, substitutes IUPAC ambiguity codes with
	// the given base letter instead of dropping them. The paper drops the
	// extra text entirely, which is the zero-value behaviour.
	KeepAmbiguousAs byte
}

var iupacAmbiguity = func() [256]bool {
	var t [256]bool
	for _, b := range []byte("NRYSWKMBDHVnryswkmbdhv") {
		t[b] = true
	}
	return t
}()

// Clean converts raw FASTA sequence text to symbol codes, dropping everything
// outside the ACGT alphabet, and reports what was removed.
func (cl Cleanser) Clean(raw []byte) ([]byte, CleanStats) {
	var st CleanStats
	out := make([]byte, 0, len(raw))
	sub := byte(0xFF)
	if cl.KeepAmbiguousAs != 0 {
		sub = baseToCode[cl.KeepAmbiguousAs]
	}
	for _, b := range raw {
		if c := baseToCode[b]; c != 0xFF {
			out = append(out, c)
			st.Kept++
			continue
		}
		if iupacAmbiguity[b] {
			st.Ambiguous++
			if sub != 0xFF {
				out = append(out, sub)
				st.Kept++
			}
			continue
		}
		st.Other++
	}
	return out, st
}

// CleanFASTA reads every record from r, cleans each, and returns one symbol
// sequence per record alongside aggregate statistics.
func (cl Cleanser) CleanFASTA(r io.Reader) ([][]byte, CleanStats, error) {
	recs, err := ReadFASTA(r)
	if err != nil {
		return nil, CleanStats{}, err
	}
	var (
		seqs  [][]byte
		total CleanStats
	)
	for _, rec := range recs {
		s, st := cl.Clean(rec.Seq)
		seqs = append(seqs, s)
		total.Kept += st.Kept
		total.Ambiguous += st.Ambiguous
		total.Other += st.Other
	}
	return seqs, total, nil
}
