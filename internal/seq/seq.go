// Package seq provides the DNA sequence representation shared by every codec
// and tool in this repository: the 2-bit nucleotide alphabet, base/complement
// conversion, bit packing, and validation.
//
// Sequences are held as byte slices of symbol codes 0..3 (A,C,G,T). Codecs
// operate on symbol slices; the FASTA layer and the Cleanser convert between
// ASCII text and symbols.
package seq

import (
	"errors"
	"fmt"
)

// Nucleotide symbol codes. The complement of code c is 3-c, which makes
// reverse-complement computation branch-free: A<->T (0<->3), C<->G (1<->2).
const (
	A byte = 0
	C byte = 1
	G byte = 2
	T byte = 3
)

// ErrInvalidBase reports a character outside the ACGT alphabet.
var ErrInvalidBase = errors.New("seq: invalid nucleotide")

// baseToCode maps ASCII to symbol code; 0xFF marks invalid characters.
var baseToCode = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = 0xFF
	}
	t['A'], t['a'] = A, A
	t['C'], t['c'] = C, C
	t['G'], t['g'] = G, G
	t['T'], t['t'] = T, T
	return t
}()

// codeToBase maps symbol code to upper-case ASCII.
var codeToBase = [4]byte{'A', 'C', 'G', 'T'}

// Code returns the symbol code for an ASCII base, or an error for characters
// outside {A,C,G,T} (case-insensitive).
func Code(b byte) (byte, error) {
	c := baseToCode[b]
	if c == 0xFF {
		return 0, fmt.Errorf("%w: %q", ErrInvalidBase, b)
	}
	return c, nil
}

// Base returns the upper-case ASCII letter for a symbol code 0..3.
func Base(code byte) byte { return codeToBase[code&3] }

// Complement returns the complementary symbol code.
func Complement(code byte) byte { return 3 - (code & 3) }

// Encode converts an ASCII sequence to symbol codes. It fails on the first
// non-ACGT character; use Cleanser to strip such characters beforehand.
func Encode(ascii []byte) ([]byte, error) {
	out := make([]byte, len(ascii))
	for i, b := range ascii {
		c := baseToCode[b]
		if c == 0xFF {
			return nil, fmt.Errorf("%w: %q at offset %d", ErrInvalidBase, b, i)
		}
		out[i] = c
	}
	return out, nil
}

// Decode converts symbol codes back to upper-case ASCII.
func Decode(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = codeToBase[c&3]
	}
	return out
}

// Valid reports whether every element of codes is a legal symbol (0..3).
func Valid(codes []byte) bool {
	for _, c := range codes {
		if c > 3 {
			return false
		}
	}
	return true
}

// ReverseComplement returns the reverse complement of codes as a new slice.
func ReverseComplement(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[len(codes)-1-i] = 3 - (c & 3)
	}
	return out
}

// Pack stores symbols at 2 bits per base: 4 bases per byte, first base in the
// two most significant bits. The symbol count must be carried out of band
// (Unpack takes it explicitly) because the packed form cannot express it.
func Pack(codes []byte) []byte {
	out := make([]byte, (len(codes)+3)/4)
	for i, c := range codes {
		out[i/4] |= (c & 3) << uint(6-2*(i%4))
	}
	return out
}

// Unpack expands n symbols from packed 2-bit form.
func Unpack(packed []byte, n int) ([]byte, error) {
	if need := (n + 3) / 4; need > len(packed) {
		return nil, fmt.Errorf("seq: packed buffer holds %d bytes, need %d for %d bases", len(packed), need, n)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = packed[i/4] >> uint(6-2*(i%4)) & 3
	}
	return out, nil
}

// GCContent returns the fraction of G and C bases, the standard compositional
// statistic the synthetic corpus generator controls.
func GCContent(codes []byte) float64 {
	if len(codes) == 0 {
		return 0
	}
	var gc int
	for _, c := range codes {
		if c == C || c == G {
			gc++
		}
	}
	return float64(gc) / float64(len(codes))
}

// Counts returns the number of occurrences of each of the four bases.
func Counts(codes []byte) [4]int {
	var n [4]int
	for _, c := range codes {
		n[c&3]++
	}
	return n
}
