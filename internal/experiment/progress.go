package experiment

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// ProgressReporter returns a RunConfig.Progress callback rendering a live
// single-line status to w (typically stderr):
//
//	grid: 12/27 (44%) eta 3s
//
// Lines are carriage-return overwritten and rate-limited to one render per
// minInterval, except the final call (done == total), which always renders
// and terminates the line with a newline. Time comes from clock (nil means
// the system clock), so tests drive the reporter with obs.NewFake and get
// byte-exact output. The returned callback is safe for concurrent use, and
// RunGrid additionally serializes its Progress calls.
func ProgressReporter(w io.Writer, clock obs.Clock, minInterval time.Duration) func(done, total int) {
	clock = orSystem(clock)
	var mu sync.Mutex
	var start, last time.Time
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := clock.Now()
		if start.IsZero() {
			start = now
		}
		final := total > 0 && done >= total
		if !final && !last.IsZero() && now.Sub(last) < minInterval {
			return
		}
		last = now
		elapsed := now.Sub(start)
		if final {
			fmt.Fprintf(w, "\rgrid: %d/%d (100%%) done in %s\n", done, total, roundDur(elapsed))
			return
		}
		pct := 0
		if total > 0 {
			pct = 100 * done / total
		}
		eta := "?"
		if done > 0 {
			remaining := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
			eta = roundDur(remaining).String()
		}
		fmt.Fprintf(w, "\rgrid: %d/%d (%d%%) eta %s", done, total, pct, eta)
	}
}

func orSystem(c obs.Clock) obs.Clock {
	if c == nil {
		return obs.System()
	}
	return c
}

// roundDur trims durations to a display-friendly precision: sub-second
// values keep milliseconds, longer ones round to tenths of a second.
func roundDur(d time.Duration) time.Duration {
	if d < time.Second {
		return d.Round(time.Millisecond)
	}
	return d.Round(100 * time.Millisecond)
}
