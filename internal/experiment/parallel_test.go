package experiment

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// stubCodec is a trivial length-prefixed store codec for concurrency tests:
// delay simulates slow compression, fail forces the error path.
type stubCodec struct {
	name  string
	delay time.Duration
	fail  bool
}

func (s stubCodec) Name() string { return s.name }

func (s stubCodec) Compress(src []byte) ([]byte, compress.Stats, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if s.fail {
		return nil, compress.Stats{}, errors.New("stub failure")
	}
	out := binary.AppendUvarint(nil, uint64(len(src)))
	return append(out, src...), compress.Stats{WorkNS: 1000, PeakMem: 1024}, nil
}

func (s stubCodec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || int(n) != len(data)-k {
		return nil, compress.Stats{}, compress.ErrCorrupt
	}
	return append([]byte(nil), data[k:]...), compress.Stats{WorkNS: 1000, PeakMem: 1024}, nil
}

func init() {
	compress.Register("teststub", func() compress.Codec { return stubCodec{name: "teststub"} })
	compress.Register("testslow", func() compress.Codec { return stubCodec{name: "testslow", delay: 30 * time.Millisecond} })
	compress.Register("testfail", func() compress.Codec { return stubCodec{name: "testfail", fail: true} })
}

// equivCorpus is small enough that the full sequential/parallel comparison
// across three jobs settings stays fast even with GenCompress in the mix.
func equivCorpus() []synth.File {
	return synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 6, MinSize: 2 << 10, MaxSize: 24 << 10, Seed: 11})
}

// TestParallelMatchesSequential is the determinism contract: RunParallel at
// jobs ∈ {1, 2, 8} must reproduce the sequential grid exactly — rows,
// measurements, labels, and the CSV export byte for byte.
func TestParallelMatchesSequential(t *testing.T) {
	files := equivCorpus()
	ctxs := cloud.Grid()[:6]
	want, err := Run(files, ctxs, paperCodecs, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := want.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	wantLabels := want.Labels(core.TimeOnlyWeights())

	for _, jobs := range []int{1, 2, 8} {
		got, err := RunParallel(context.Background(), files, ctxs, paperCodecs, DefaultNoise(), jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("jobs=%d: grid differs from sequential Run", jobs)
		}
		if labels := got.Labels(core.TimeOnlyWeights()); !reflect.DeepEqual(labels, wantLabels) {
			t.Errorf("jobs=%d: labels differ", jobs)
		}
		var gotCSV bytes.Buffer
		if err := got.WriteCSV(&gotCSV); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
			t.Errorf("jobs=%d: CSV export not byte-identical (%d vs %d bytes)",
				jobs, gotCSV.Len(), wantCSV.Len())
		}
	}
}

// TestParallelCacheEquivalence proves a warm cache changes nothing but the
// work done: both the cold and the fully-cached run reproduce the
// sequential grid, and the second sweep is all hits.
func TestParallelCacheEquivalence(t *testing.T) {
	files := equivCorpus()
	ctxs := cloud.Grid()[:4]
	want, err := Run(files, ctxs, paperCodecs, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	cache := compress.NewCache()
	cold, err := RunParallelCached(context.Background(), files, ctxs, paperCodecs, DefaultNoise(), 4, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, want) {
		t.Error("cold cached run differs from sequential Run")
	}
	if hits, misses := cache.Counters(); hits != 0 || misses != uint64(len(files)*len(paperCodecs)) {
		t.Fatalf("cold run: %d hits, %d misses, want 0 and %d", hits, misses, len(files)*len(paperCodecs))
	}
	warm, err := RunParallelCached(context.Background(), files, ctxs, paperCodecs, DefaultNoise(), 4, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, want) {
		t.Error("warm cached run differs from sequential Run")
	}
	if hits, _ := cache.Counters(); hits != uint64(len(files)*len(paperCodecs)) {
		t.Errorf("warm run: %d hits, want %d", hits, len(files)*len(paperCodecs))
	}
}

// TestParallelErrorAttribution: a codec failing on a file must surface one
// aggregated error that names both, with the typed failures reachable via
// errors.As.
func TestParallelErrorAttribution(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 4, MinSize: 1024, MaxSize: 2048, Seed: 3})
	for _, jobs := range []int{1, 4} {
		_, err := RunParallel(context.Background(), files, cloud.Grid()[:2], []string{"teststub", "testfail"}, DefaultNoise(), jobs)
		if err == nil {
			t.Fatalf("jobs=%d: failing codec produced no error", jobs)
		}
		var runErrs RunErrors
		if !errors.As(err, &runErrs) || len(runErrs) == 0 {
			t.Fatalf("jobs=%d: error is %T, want RunErrors", jobs, err)
		}
		for _, re := range runErrs {
			if re.Codec != "testfail" {
				t.Errorf("jobs=%d: blamed codec %q, want testfail", jobs, re.Codec)
			}
			if !strings.HasPrefix(re.File, "synth") {
				t.Errorf("jobs=%d: blamed file %q, want a corpus file", jobs, re.File)
			}
		}
		if msg := err.Error(); !strings.Contains(msg, "testfail") || !strings.Contains(msg, "synth") {
			t.Errorf("jobs=%d: aggregated message %q lacks file/codec attribution", jobs, msg)
		}
		var one *RunError
		if !errors.As(err, &one) {
			t.Errorf("jobs=%d: errors.As cannot reach *RunError", jobs)
		}
	}
}

// TestParallelCancellation: a canceled context aborts the grid long before
// the sequential cost, returns ctx.Err(), and leaves no worker goroutines
// behind.
func TestParallelCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	// 64 one-KB files through a 30 ms/run codec = ~1.9 s sequential.
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 64, MinSize: 1024, MaxSize: 1024, Seed: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	g, err := RunParallel(ctx, files, cloud.Grid()[:2], []string{"testslow"}, DefaultNoise(), 4)
	elapsed := time.Since(start)
	if g != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: grid=%v err=%v, want nil grid and context.Canceled", g != nil, err)
	}
	if elapsed > time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}

	// The failing-codec path also cancels internally; neither may leak.
	if _, err := RunParallel(context.Background(), files[:8], cloud.Grid()[:2], []string{"testfail"}, DefaultNoise(), 4); err == nil {
		t.Fatal("failing codec produced no error")
	}

	// Workers are joined before RunParallel returns, so the goroutine count
	// settles back to the baseline (give the runtime a moment to reap).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestPartialGridDegradation is the graceful-degradation acceptance test: a
// Partial build over an always-failing codec still yields labeled rows for
// every other codec, and the failures name every (file, codec) slot.
func TestPartialGridDegradation(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 4, MinSize: 1024, MaxSize: 2048, Seed: 3})
	ctxs := cloud.Grid()[:3]
	for _, jobs := range []int{1, 4} {
		g, failed, err := RunGrid(context.Background(), files, ctxs, []string{"teststub", "testfail"}, DefaultNoise(),
			RunConfig{Jobs: jobs, Partial: true})
		if err != nil {
			t.Fatalf("jobs=%d: partial build failed outright: %v", jobs, err)
		}
		if len(failed) != len(files) {
			t.Fatalf("jobs=%d: %d failed slots, want one per file", jobs, len(failed))
		}
		seen := map[string]bool{}
		for _, re := range failed {
			if re.Codec != "testfail" {
				t.Errorf("jobs=%d: blamed codec %q, want testfail", jobs, re.Codec)
			}
			seen[re.File] = true
		}
		if len(seen) != len(files) {
			t.Errorf("jobs=%d: failures name %d distinct files, want %d", jobs, len(seen), len(files))
		}
		if len(g.Files) != len(files) {
			t.Fatalf("jobs=%d: %d surviving files, want all %d (teststub succeeded)", jobs, len(g.Files), len(files))
		}
		for _, fr := range g.Files {
			if len(fr.Runs) != 1 || fr.Runs[0].Codec != "teststub" {
				t.Fatalf("jobs=%d: %s runs = %+v, want only teststub", jobs, fr.Name, fr.Runs)
			}
		}
		if want := len(files) * len(ctxs); len(g.Rows) != want {
			t.Fatalf("jobs=%d: %d rows, want %d", jobs, len(g.Rows), want)
		}
		for i, l := range g.Labels(core.TimeOnlyWeights()) {
			if l != "teststub" {
				t.Fatalf("jobs=%d: row %d labeled %q, want the surviving codec", jobs, i, l)
			}
		}
	}
}

// TestPartialGridAllFail: when every slot fails even Partial mode has no
// grid to return, and the error still carries the typed failures.
func TestPartialGridAllFail(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 2, MinSize: 1024, MaxSize: 1024, Seed: 4})
	g, failed, err := RunGrid(context.Background(), files, cloud.Grid()[:2], []string{"testfail"}, DefaultNoise(),
		RunConfig{Jobs: 2, Partial: true})
	if g != nil || err == nil {
		t.Fatalf("all-fail partial build: grid=%v err=%v, want nil grid and error", g != nil, err)
	}
	if len(failed) != len(files) {
		t.Fatalf("%d failed slots, want %d", len(failed), len(files))
	}
	var one *RunError
	if !errors.As(err, &one) {
		t.Error("errors.As cannot reach *RunError from the all-fail error")
	}
}

// TestPartialStrictEquivalence: with no failures, Partial and strict builds
// are identical — degradation has no effect on the healthy path.
func TestPartialStrictEquivalence(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 3, MinSize: 1024, MaxSize: 4096, Seed: 6})
	ctxs := cloud.Grid()[:2]
	strict, failedS, errS := RunGrid(context.Background(), files, ctxs, []string{"teststub"}, DefaultNoise(), RunConfig{Jobs: 2})
	partial, failedP, errP := RunGrid(context.Background(), files, ctxs, []string{"teststub"}, DefaultNoise(), RunConfig{Jobs: 2, Partial: true})
	if errS != nil || errP != nil || len(failedS) != 0 || len(failedP) != 0 {
		t.Fatalf("healthy builds errored: %v / %v (%d / %d failed)", errS, errP, len(failedS), len(failedP))
	}
	if !reflect.DeepEqual(strict, partial) {
		t.Error("Partial mode changed a failure-free grid")
	}
}

// TestExternalCancelBeatsRunErrors pins the cancellation/failure race: a
// caller that cancelled its own context must see context.Canceled, not the
// RunErrors that failing workers raced in during teardown.
func TestExternalCancelBeatsRunErrors(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 8, MinSize: 1024, MaxSize: 1024, Seed: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// testfail guarantees RunErrors exist in the same teardown; the caller's
	// cancellation must still win.
	g, failed, err := RunGrid(ctx, files, cloud.Grid()[:2], []string{"testfail"}, DefaultNoise(), RunConfig{Jobs: 4})
	if g != nil || failed != nil {
		t.Fatalf("cancelled run returned grid=%v failed=%d", g != nil, len(failed))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to beat RunErrors", err)
	}
	var runErrs RunErrors
	if errors.As(err, &runErrs) {
		t.Error("cancelled run leaked RunErrors through the error chain")
	}
}

// TestParallelRejectsBadInput mirrors TestRunRejectsEmpty on the parallel
// entry point, including up-front unknown-codec validation.
func TestParallelRejectsBadInput(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 1, MinSize: 1024, MaxSize: 1024, Seed: 1})
	ctx := context.Background()
	if _, err := RunParallel(ctx, nil, cloud.Grid(), paperCodecs, DefaultNoise(), 4); err == nil {
		t.Error("empty files accepted")
	}
	if _, err := RunParallel(ctx, files, nil, paperCodecs, DefaultNoise(), 4); err == nil {
		t.Error("empty contexts accepted")
	}
	if _, err := RunParallel(ctx, files, cloud.Grid(), nil, DefaultNoise(), 4); err == nil {
		t.Error("empty codecs accepted")
	}
	if _, err := RunParallel(ctx, files, cloud.Grid(), []string{"nope"}, DefaultNoise(), 4); err == nil {
		t.Error("unknown codec accepted")
	}
	// jobs <= 0 falls back to GOMAXPROCS rather than deadlocking.
	if _, err := RunParallel(ctx, files, cloud.Grid()[:1], []string{"teststub"}, DefaultNoise(), 0); err != nil {
		t.Errorf("jobs=0: %v", err)
	}
}
