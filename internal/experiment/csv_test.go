package experiment

import (
	"bytes"
	"strings"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func TestCSVRoundTrip(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 4, MinSize: 2048, MaxSize: 32768, Seed: 5})
	g, err := Run(files, cloud.Grid()[:6], []string{"dnax", "gzip"}, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(g.Rows) {
		t.Fatalf("rows %d, want %d", len(back.Rows), len(g.Rows))
	}
	if len(back.Files) != len(g.Files) || len(back.Contexts) != len(g.Contexts) {
		t.Fatalf("files/contexts %d/%d", len(back.Files), len(back.Contexts))
	}
	for i := range g.Rows {
		a, b := g.Rows[i], back.Rows[i]
		if a.FileName != b.FileName || a.FileBases != b.FileBases || a.VM != b.VM {
			t.Fatalf("row %d meta mismatch", i)
		}
		for j := range a.Measurements {
			if a.Measurements[j] != b.Measurements[j] {
				t.Fatalf("row %d measurement %d mismatch:\n%+v\n%+v", i, j, a.Measurements[j], b.Measurements[j])
			}
		}
	}
	// Labels must be identical after the round trip.
	la := g.Labels(core.TimeOnlyWeights())
	lb := back.Labels(core.TimeOnlyWeights())
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("label %d changed: %s -> %s", i, la[i], lb[i])
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n1,2\n",
		"file,bases,vm,ram_mb,cpu_mhz,bw_mbps,codec,compress_ms,decompress_ms,upload_ms,download_ms,ram_bytes,compressed_bytes\nf,notanumber,vm,1,1,1,c,1,1,1,1,1,1\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}
