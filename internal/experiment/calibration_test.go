package experiment

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

// paperCodecs is the grid codec order used throughout.
var paperCodecs = []string{"ctw", "dnax", "gencompress", "gzip"}

// smallGrid builds a compact grid for tests: 28 files spanning 2–256 KB.
func smallGrid(t testing.TB) *Grid {
	t.Helper()
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 28, MinSize: 2 << 10, MaxSize: 256 << 10, Seed: 7})
	g, err := Run(files, cloud.Grid(), paperCodecs, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWinnerCrossovers verifies the paper's headline decision structure on
// the equal-weight time objective: GenCompress wins the smallest files, a
// CTW band follows, DNAX wins everything large, and Gzip never wins.
func TestWinnerCrossovers(t *testing.T) {
	g := smallGrid(t)
	w := core.TimeOnlyWeights()

	counts := g.LabelCounts(w)
	t.Logf("label counts (time-only): %v", counts)
	if counts["gzip"] != 0 {
		t.Errorf("gzip won %d rows; the paper found none", counts["gzip"])
	}
	for _, name := range []string{"dnax", "gencompress", "ctw"} {
		if counts[name] == 0 {
			t.Errorf("%s never wins; the paper's rules need all three regimes", name)
		}
	}

	// In a mid-range context, winners must progress gencompress → ctw →
	// dnax with increasing size.
	vm := cloud.Grid()[len(cloud.Grid())/2]
	series := g.WinnerBySize(w, vm.Name)
	if len(series) == 0 {
		t.Fatal("no rows for calibration VM")
	}
	var log []string
	for _, sw := range series {
		log = append(log, sw.Winner)
	}
	t.Logf("context %s winners by size: %v", vm.Name, log)
	// Smallest file must go to gencompress, largest to dnax.
	if series[0].Winner != "gencompress" {
		t.Errorf("smallest file (%.0f KB) won by %s, want gencompress", series[0].SizeKB, series[0].Winner)
	}
	last := series[len(series)-1]
	if last.Winner != "dnax" {
		t.Errorf("largest file (%.0f KB) won by %s, want dnax", last.SizeKB, last.Winner)
	}
	// DNAX must dominate above 64 KB.
	for _, sw := range series {
		if sw.SizeKB > 80 && sw.Winner != "dnax" {
			t.Errorf("%.0f KB won by %s, want dnax above 80 KB", sw.SizeKB, sw.Winner)
		}
	}
	// CTW must take at least one mid-band file in this context.
	foundCTW := false
	for _, sw := range series {
		if sw.Winner == "ctw" {
			foundCTW = true
			if sw.SizeKB < 6 || sw.SizeKB > 80 {
				t.Errorf("ctw won at %.0f KB, outside the expected 6-80 KB band", sw.SizeKB)
			}
		}
	}
	if !foundCTW {
		t.Error("ctw never won in the calibration context")
	}
}
