package experiment

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/obs"
)

// TestGridBytesIdenticalWithObservability is the acceptance regression:
// attaching a metrics registry and a progress reporter must not change a
// single byte of the grid's CSV export or its labels.
func TestGridBytesIdenticalWithObservability(t *testing.T) {
	files := equivCorpus()
	ctxs := cloud.Grid()[:6]

	plain, _, err := RunGrid(context.Background(), files, ctxs, paperCodecs, DefaultNoise(), RunConfig{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var plainCSV bytes.Buffer
	if err := plain.WriteCSV(&plainCSV); err != nil {
		t.Fatal(err)
	}
	plainLabels := plain.Labels(core.TimeOnlyWeights())

	reg := obs.NewRegistry()
	var progress bytes.Buffer
	observed, _, err := RunGrid(context.Background(), files, ctxs, paperCodecs, DefaultNoise(), RunConfig{
		Jobs:     4,
		Metrics:  reg,
		Progress: ProgressReporter(&progress, obs.NewFake(time.Unix(0, 0)), 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(observed, plain) {
		t.Error("grid differs with observability attached")
	}
	var obsCSV bytes.Buffer
	if err := observed.WriteCSV(&obsCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(obsCSV.Bytes(), plainCSV.Bytes()) {
		t.Errorf("CSV not byte-identical with observability: %d vs %d bytes", obsCSV.Len(), plainCSV.Len())
	}
	if labels := observed.Labels(core.TimeOnlyWeights()); !reflect.DeepEqual(labels, plainLabels) {
		t.Error("labels differ with observability attached")
	}
	if progress.Len() == 0 {
		t.Error("progress reporter wrote nothing")
	}

	nTasks := len(files) * len(paperCodecs)
	if got := reg.Counter("dna_grid_tasks_done_total", "").Value(); got != uint64(nTasks) {
		t.Errorf("tasks done = %d, want %d", got, nTasks)
	}
	if got := reg.Gauge("dna_grid_tasks_total", "").Value(); got != float64(nTasks) {
		t.Errorf("tasks total gauge = %v, want %d", got, nTasks)
	}
	if got := reg.Gauge("dna_grid_workers", "").Value(); got != 4 {
		t.Errorf("workers gauge = %v, want 4", got)
	}
	if got := reg.Gauge("dna_grid_workers_busy", "").Value(); got != 0 {
		t.Errorf("busy gauge = %v after completion, want 0", got)
	}
	if got := reg.Counter("dna_grid_runs_failed_total", "").Value(); got != 0 {
		t.Errorf("failed runs = %d, want 0", got)
	}
	// Per-codec metrics flowed through the same registry.
	for _, name := range paperCodecs {
		if got := reg.Counter("dna_codec_calls_total", "", "codec", name, "op", "compress").Value(); got != uint64(len(files)) {
			t.Errorf("codec %s compress calls = %d, want %d", name, got, len(files))
		}
	}
}

// TestGridMetricsCountFailures: failed slots surface in the failure counter
// and still tick the done counter.
func TestGridMetricsCountFailures(t *testing.T) {
	files := equivCorpus()[:2]
	ctxs := cloud.Grid()[:2]
	reg := obs.NewRegistry()
	_, failed, err := RunGrid(context.Background(), files, ctxs, []string{"teststub", "testfail"}, DefaultNoise(), RunConfig{
		Jobs: 2, Partial: true, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != len(files) {
		t.Fatalf("%d failed slots, want %d", len(failed), len(files))
	}
	if got := reg.Counter("dna_grid_runs_failed_total", "").Value(); got != uint64(len(files)) {
		t.Errorf("failed counter = %d, want %d", got, len(files))
	}
	if got := reg.Counter("dna_grid_tasks_done_total", "").Value(); got != uint64(2*len(files)) {
		t.Errorf("done counter = %d, want %d", got, 2*len(files))
	}
}

// TestProgressCallbackMonotone: under a parallel pool the serialized
// callback sees strictly increasing done counts ending at total.
func TestProgressCallbackMonotone(t *testing.T) {
	files := equivCorpus()
	ctxs := cloud.Grid()[:6]
	var calls []int
	_, _, err := RunGrid(context.Background(), files, ctxs, []string{"teststub", "testslow"}, DefaultNoise(), RunConfig{
		Jobs:    8,
		Metrics: obs.NewRegistry(),
		Progress: func(done, total int) {
			if total != 2*len(files) {
				t.Errorf("total = %d, want %d", total, 2*len(files))
			}
			calls = append(calls, done) // serialized by RunGrid: no lock needed
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2*len(files) {
		t.Fatalf("%d progress calls, want %d", len(calls), 2*len(files))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("call %d reported done=%d, want %d", i, d, i+1)
		}
	}
}

// TestProgressReporterFakeClock pins the reporter's exact output under a
// manually-advanced clock: rate limiting, ETA arithmetic, final newline.
func TestProgressReporterFakeClock(t *testing.T) {
	clk := obs.NewFake(time.Unix(0, 0))
	var buf bytes.Buffer
	report := ProgressReporter(&buf, clk, 5*time.Second)

	report(1, 4) // first render, elapsed 0, eta 0s
	clk.Advance(2 * time.Second)
	report(2, 4) // suppressed: under the 5s interval
	clk.Advance(4 * time.Second)
	report(3, 4) // renders: elapsed 6s, one task left, eta 2s
	clk.Advance(2 * time.Second)
	report(4, 4) // final: always renders, newline

	want := "\rgrid: 1/4 (25%) eta 0s" +
		"\rgrid: 3/4 (75%) eta 2s" +
		"\rgrid: 4/4 (100%) done in 8s\n"
	if got := buf.String(); got != want {
		t.Fatalf("reporter output:\n got %q\nwant %q", got, want)
	}
	if strings.Count(buf.String(), "2/4") != 0 {
		t.Fatal("rate limiter leaked the suppressed render")
	}
}
