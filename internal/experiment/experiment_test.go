package experiment

import (
	"math"
	"reflect"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// sharedGrid caches one grid across tests in this file (building it runs
// every codec over every file).
var sharedGrid *Grid

func grid(t testing.TB) *Grid {
	t.Helper()
	if sharedGrid == nil {
		sharedGrid = smallGrid(t)
	}
	return sharedGrid
}

func TestRunShape(t *testing.T) {
	g := grid(t)
	if len(g.Files) != 28 {
		t.Fatalf("%d files", len(g.Files))
	}
	if len(g.Contexts) != 32 {
		t.Fatalf("%d contexts", len(g.Contexts))
	}
	if len(g.Rows) != 28*32 {
		t.Fatalf("%d rows, want %d", len(g.Rows), 28*32)
	}
	for _, row := range g.Rows {
		if len(row.Measurements) != len(g.Codecs) {
			t.Fatalf("row has %d measurements", len(row.Measurements))
		}
		for _, m := range row.Measurements {
			if m.CompressMS <= 0 || m.DecompressMS <= 0 || m.UploadMS <= 0 || m.DownloadMS <= 0 {
				t.Fatalf("non-positive stage time: %+v", m)
			}
			if m.RAMBytes <= 0 || m.CompressedBytes <= 0 {
				t.Fatalf("bad resources: %+v", m)
			}
		}
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	if _, err := Run(nil, cloud.Grid(), paperCodecs, DefaultNoise()); err == nil {
		t.Error("empty files accepted")
	}
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 1, MinSize: 1024, MaxSize: 1024, Seed: 1})
	if _, err := Run(files, nil, paperCodecs, DefaultNoise()); err == nil {
		t.Error("empty contexts accepted")
	}
	if _, err := Run(files, cloud.Grid(), nil, DefaultNoise()); err == nil {
		t.Error("empty codecs accepted")
	}
	if _, err := Run(files, cloud.Grid(), []string{"nope"}, DefaultNoise()); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestNoiseDeterministic(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 3, MinSize: 2048, MaxSize: 16384, Seed: 2})
	a, err := Run(files, cloud.Grid()[:4], []string{"dnax", "gzip"}, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(files, cloud.Grid()[:4], []string{"dnax", "gzip"}, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i].Measurements {
			ma, mb := a.Rows[i].Measurements[j], b.Rows[i].Measurements[j]
			if ma != mb {
				t.Fatalf("row %d codec %d differs across identical runs", i, j)
			}
		}
	}
	// A different seed must actually change something.
	n := DefaultNoise()
	n.Seed++
	c, err := Run(files, cloud.Grid()[:4], []string{"dnax", "gzip"}, n)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Rows {
		for j := range a.Rows[i].Measurements {
			if a.Rows[i].Measurements[j] != c.Rows[i].Measurements[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seed change had no effect")
	}
}

func TestSplit75_25(t *testing.T) {
	g := grid(t)
	train, test := g.Split()
	if len(train.Files)+len(test.Files) != len(g.Files) {
		t.Fatal("split loses files")
	}
	wantTest := len(g.Files) / 4
	if len(test.Files) != wantTest {
		t.Fatalf("test files %d, want %d", len(test.Files), wantTest)
	}
	if len(train.Rows)+len(test.Rows) != len(g.Rows) {
		t.Fatal("split loses rows")
	}
	// Row FileIdx must be remapped consistently.
	for _, row := range test.Rows {
		if row.FileIdx < 0 || row.FileIdx >= len(test.Files) {
			t.Fatalf("test row FileIdx %d out of range", row.FileIdx)
		}
		if test.Files[row.FileIdx].Name != row.FileName {
			t.Fatalf("test row name mismatch: %s vs %s", test.Files[row.FileIdx].Name, row.FileName)
		}
	}
	// No file appears in both.
	seen := map[string]bool{}
	for _, f := range train.Files {
		seen[f.Name] = true
	}
	for _, f := range test.Files {
		if seen[f.Name] {
			t.Fatalf("file %s in both splits", f.Name)
		}
	}
}

func TestPaperScaleSplitMatches1056(t *testing.T) {
	// With the paper's 132 files and 32 contexts, the held-out quarter is
	// exactly 33 files × 32 contexts = 1056 rows. Verified structurally
	// (without building the full corpus) via the same fi%4 rule.
	testFiles := 0
	for fi := 0; fi < 132; fi++ {
		if fi%4 == 3 {
			testFiles++
		}
	}
	if testFiles != 33 {
		t.Fatalf("split rule holds out %d of 132 files, want 33", testFiles)
	}
	if testFiles*32 != 1056 {
		t.Fatalf("test rows %d, want 1056", testFiles*32)
	}
}

func TestDatasetLabels(t *testing.T) {
	g := grid(t)
	ds := g.Dataset(core.TimeOnlyWeights())
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.X) != len(g.Rows) {
		t.Fatalf("dataset rows %d", len(ds.X))
	}
	if len(ds.ClassNames) != len(g.Codecs) {
		t.Fatalf("classes %v", ds.ClassNames)
	}
}

func TestTimeModelsAccuracy(t *testing.T) {
	// The paper's headline: time-only models validate at 94.6 % (CHAID) and
	// 96.2 % (CART). Our reproduction must land in the same band.
	g := grid(t)
	train, test := g.Split()
	for _, method := range []string{MethodCART, MethodCHAID} {
		_, acc, err := TrainEval(train, test, method, core.TimeOnlyWeights(), dtree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s time-only accuracy: %.3f", method, acc)
		if acc < 0.85 || acc > 1.0 {
			t.Errorf("%s time accuracy %.3f outside the paper band [0.85, 1.0]", method, acc)
		}
	}
}

func TestCompressionTimeModelsNearPerfect(t *testing.T) {
	// Paper: compression-time-only models hit 98.48 % for both methods.
	g := grid(t)
	train, test := g.Split()
	for _, method := range []string{MethodCART, MethodCHAID} {
		_, acc, err := TrainEval(train, test, method, core.CompressTimeOnlyWeights(), dtree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s compression-time accuracy: %.3f", method, acc)
		if acc < 0.9 {
			t.Errorf("%s compression-time accuracy %.3f, want >= 0.9", method, acc)
		}
	}
}

func TestRAMModelsPoor(t *testing.T) {
	// Paper: RAM-only models manage only 33.5 % (CART) / 36.1 % (CHAID)
	// because measured RAM is noisy and near-tied across codecs.
	g := grid(t)
	train, test := g.Split()
	for _, method := range []string{MethodCART, MethodCHAID} {
		_, acc, err := TrainEval(train, test, method, core.RAMOnlyWeights(), dtree.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s ram-only accuracy: %.3f", method, acc)
		if acc > 0.55 {
			t.Errorf("%s RAM accuracy %.3f suspiciously high — noise model broken", method, acc)
		}
		if acc < 0.15 {
			t.Errorf("%s RAM accuracy %.3f below random", method, acc)
		}
	}
}

func TestMixedWeightsIntermediate(t *testing.T) {
	// Paper Table 2: RAM:TIME mixes land between the extremes (22-46 %).
	g := grid(t)
	train, test := g.Split()
	_, accTime, err := TrainEval(train, test, MethodCART, core.TimeOnlyWeights(), dtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, accMixed, err := TrainEval(train, test, MethodCART, core.RAMTimeWeights(0.6, 0.4), dtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CART mixed 60:40 accuracy: %.3f (time-only %.3f)", accMixed, accTime)
	if accMixed >= accTime {
		t.Errorf("mixed weights (%.3f) should degrade vs time-only (%.3f)", accMixed, accTime)
	}
}

func TestTable2Complete(t *testing.T) {
	g := grid(t)
	train, test := g.Split()
	rows, err := Table2(train, test, dtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 single-var + 8 RAM:TIME + 1 RAM:CompTime + 4 three-var = 16 combos × 2 methods.
	if len(rows) != 32 {
		t.Fatalf("table2 has %d rows, want 32", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Errorf("accuracy out of range: %+v", r)
		}
		if r.Method != "CART" && r.Method != "CHAID" {
			t.Errorf("bad method %q", r.Method)
		}
	}
	timeAcc, ok := Table2Lookup(rows, "CART", "100", "TIME")
	if !ok {
		t.Fatal("CART TIME row missing")
	}
	ramAcc, ok := Table2Lookup(rows, "CART", "100", "RAM")
	if !ok {
		t.Fatal("CART RAM row missing")
	}
	if timeAcc <= ramAcc+0.2 {
		t.Errorf("time model (%.3f) must dominate RAM model (%.3f) by a wide margin", timeAcc, ramAcc)
	}
}

func TestValidationTrace(t *testing.T) {
	g := grid(t)
	train, test := g.Split()
	v, err := Validate(train, test, MethodCHAID, core.TimeOnlyWeights(), dtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != len(test.Rows) {
		t.Fatalf("trace rows %d, want %d", len(v.Rows), len(test.Rows))
	}
	hits := 0
	for i := range v.Match {
		if (v.Predicted[i] == v.Actual[i]) != v.Match[i] {
			t.Fatal("Match inconsistent with Predicted/Actual")
		}
		if v.Match[i] {
			hits++
		}
	}
	if math.Abs(v.Accuracy-float64(hits)/float64(len(v.Match))) > 1e-12 {
		t.Fatal("Accuracy inconsistent with Match")
	}
	// Figures 9/10 material.
	classOf := map[string]int{}
	for i, c := range g.Codecs {
		classOf[c] = i
	}
	ms := v.MatchSeries(classOf)
	if len(ms.X) != len(v.Rows) {
		t.Fatal("match series wrong length")
	}
	as := v.AnalysisSeries(86)
	if len(as) != 4 {
		t.Fatalf("analysis has %d series", len(as))
	}
	for _, s := range as {
		if len(s.Y) != 86 {
			t.Fatalf("series %s has %d points, want 86", s.Name, len(s.Y))
		}
	}
	for _, y := range as[0].Y { // normalized cpu
		if y < 0 || y > 1 {
			t.Fatalf("normalized value %v out of range", y)
		}
	}
	below, total := v.GapsBelow(50)
	t.Logf("CHAID gaps: %d of %d mismatches below 50 KB (accuracy %.3f)", below, total, v.Accuracy)
	if total > 0 && below == 0 {
		t.Error("expected at least one sub-50KB gap (the paper's CHAID small-file failures)")
	}
}

func TestCARTFindsSmallFileLabelsCHAIDMisses(t *testing.T) {
	// Paper §V.B: CART recovers the GenCompress cases below 50 KB that
	// CHAID misses, scoring higher overall.
	g := grid(t)
	train, test := g.Split()
	chaid, err := Validate(train, test, MethodCHAID, core.TimeOnlyWeights(), dtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cart, err := Validate(train, test, MethodCART, core.TimeOnlyWeights(), dtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("accuracy: CART %.3f vs CHAID %.3f", cart.Accuracy, chaid.Accuracy)
	if cart.Accuracy < chaid.Accuracy-0.02 {
		t.Errorf("CART (%.3f) should not trail CHAID (%.3f) materially", cart.Accuracy, chaid.Accuracy)
	}
}

func TestFigureSeriesShapes(t *testing.T) {
	g := grid(t)
	for name, series := range map[string][]Series{
		"fig2": g.FigUploadTime(),
		"fig3": g.FigRAMUsed(),
		"fig4": g.FigCompressedSize(),
		"fig5": g.FigCompressionTime(),
		"fig6": g.FigDownloadTime(),
	} {
		if len(series) != len(g.Codecs) {
			t.Fatalf("%s: %d series", name, len(series))
		}
		for _, s := range series {
			if len(s.X) != len(g.Rows) || len(s.Y) != len(g.Rows) {
				t.Fatalf("%s/%s: bad lengths", name, s.Name)
			}
		}
	}
	f8 := g.FigFileSizeByRow()
	if len(f8.Y) != len(g.Rows) {
		t.Fatal("fig8 wrong length")
	}
}

func TestCompressedSizeContextInvariant(t *testing.T) {
	// Paper: "The context doesn't change the compression ratio."
	g := grid(t)
	byFile := map[string]map[string]int{}
	for _, row := range g.Rows {
		for _, m := range row.Measurements {
			if byFile[row.FileName] == nil {
				byFile[row.FileName] = map[string]int{}
			}
			if prev, ok := byFile[row.FileName][m.Codec]; ok && prev != m.CompressedBytes {
				t.Fatalf("compressed size varies with context for %s/%s", row.FileName, m.Codec)
			}
			byFile[row.FileName][m.Codec] = m.CompressedBytes
		}
	}
}

func TestGenCompressUploadAdvantage(t *testing.T) {
	// Paper §V: "For upload Gencompress on average is good ... as compared
	// to DNAX because of the compression ratio of DNAX."
	g := grid(t)
	mean := g.MeanUploadByCodec()
	if mean["gencompress"] >= mean["dnax"] {
		t.Errorf("gencompress mean upload %.1f should beat dnax %.1f", mean["gencompress"], mean["dnax"])
	}
	if mean["gzip"] <= mean["dnax"] {
		t.Errorf("gzip mean upload %.1f should be the worst (worst ratio)", mean["gzip"])
	}
}

func TestSortRowsBySize(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 4, MinSize: 1024, MaxSize: 65536, Seed: 3})
	g, err := Run(files, cloud.Grid()[:2], []string{"gzip"}, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	g.SortRowsBySize()
	for i := 1; i < len(g.Rows); i++ {
		if g.Rows[i].FileBases < g.Rows[i-1].FileBases {
			t.Fatal("rows not sorted by size")
		}
	}
}

func TestNormalizedEq1RecoversMixedAccuracy(t *testing.T) {
	// Future-work check: normalized Eq. 1 labels under 50:50 RAM:TIME are
	// far more learnable than raw-magnitude labels (which collapse to the
	// RAM noise ordering).
	g := grid(t)
	train, test := g.Split()
	w := core.RAMTimeWeights(0.5, 0.5)
	_, rawAcc, err := TrainEval(train, test, MethodCART, w, dtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := dtree.TrainCART(train.DatasetNormalized(w), dtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	normAcc := dtree.Accuracy(tree, test.DatasetNormalized(w))
	t.Logf("50:50 RAM:TIME accuracy: raw %.3f vs normalized %.3f", rawAcc, normAcc)
	if normAcc < rawAcc+0.15 {
		t.Errorf("normalization should materially recover accuracy: raw %.3f, norm %.3f", rawAcc, normAcc)
	}
}

func TestLabelsNormalizedSingleMetricAgrees(t *testing.T) {
	// Under a single-metric weight vector the normalized and raw labelings
	// must coincide row by row.
	g := grid(t)
	raw := g.Labels(core.CompressTimeOnlyWeights())
	norm := g.LabelsNormalized(core.CompressTimeOnlyWeights())
	for i := range raw {
		if raw[i] != norm[i] {
			t.Fatalf("row %d: raw %q vs norm %q", i, raw[i], norm[i])
		}
	}
}

// TestDatasetSkipsUnlabeledRows: a row whose labeling fails (no
// measurements — e.g. a partial build dropped every codec's run for it)
// must be skipped, not silently mapped to class index 0 and poisoning the
// training labels.
func TestDatasetSkipsUnlabeledRows(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 3, MinSize: 1024, MaxSize: 4096, Seed: 8})
	g, err := Run(files, cloud.Grid()[:2], []string{"dnax", "gzip"}, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	full := g.Dataset(core.TimeOnlyWeights())
	g.Rows[0].Measurements = nil // labeling now fails for row 0
	for _, ds := range []dtree.Dataset{g.Dataset(core.TimeOnlyWeights()), g.DatasetNormalized(core.TimeOnlyWeights())} {
		if len(ds.X) != len(g.Rows)-1 || len(ds.Y) != len(g.Rows)-1 {
			t.Fatalf("dataset has %d/%d rows, want %d (unlabeled row skipped)", len(ds.X), len(ds.Y), len(g.Rows)-1)
		}
	}
	// The surviving labels are exactly the full dataset's minus row 0 — the
	// old bug instead kept row 0 with Y = 0 (the first codec's class).
	got := g.Dataset(core.TimeOnlyWeights())
	for i := range got.Y {
		if got.Y[i] != full.Y[i+1] {
			t.Fatalf("surviving row %d relabeled %d, want %d", i, got.Y[i], full.Y[i+1])
		}
	}
}

// TestSplitIsolatesMeasurements: Split must deep-copy rows and runs, so
// mutating a child grid cannot corrupt the parent or the sibling.
func TestSplitIsolatesMeasurements(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 8, MinSize: 1024, MaxSize: 4096, Seed: 9})
	g, err := Run(files, cloud.Grid()[:2], []string{"dnax", "gzip"}, DefaultNoise())
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := g.Labels(core.TimeOnlyWeights())
	train, test := g.Split()
	for _, rows := range [][]Row{train.Rows, test.Rows} {
		for i := range rows {
			for j := range rows[i].Measurements {
				rows[i].Measurements[j].CompressMS = -1 // scribble over the child
			}
		}
	}
	for i := range train.Files {
		for j := range train.Files[i].Runs {
			train.Files[i].Runs[j].CompressedSize = -1
		}
	}
	for _, row := range g.Rows {
		for _, m := range row.Measurements {
			if m.CompressMS == -1 {
				t.Fatal("mutating a split row corrupted the parent grid (shared backing array)")
			}
		}
	}
	for _, fr := range g.Files {
		for _, run := range fr.Runs {
			if run.CompressedSize == -1 {
				t.Fatal("mutating a split file's runs corrupted the parent grid")
			}
		}
	}
	if got := g.Labels(core.TimeOnlyWeights()); !reflect.DeepEqual(got, wantLabels) {
		t.Fatal("parent labels changed after child mutation")
	}
}
