package experiment

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/obs"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// RunError attributes one failed compression run to its file and codec.
type RunError struct {
	File  string
	Codec string
	Err   error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("experiment: %s on %s: %v", e.Codec, e.File, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// RunErrors aggregates every run failure of a parallel grid build. In
// strict mode the first failure cancels the remaining work, so the slice
// usually holds one entry (in-flight workers may contribute more); in
// Partial mode it names every failed (file, codec) slot, in slot order.
type RunErrors []*RunError

func (es RunErrors) Error() string {
	switch len(es) {
	case 0:
		return "experiment: no errors"
	case 1:
		return es[0].Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "experiment: %d runs failed: ", len(es))
	for i, e := range es {
		if i > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "%s on %s: %v", e.Codec, e.File, e.Err)
	}
	return sb.String()
}

// Unwrap exposes the individual failures to errors.Is / errors.As.
func (es RunErrors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// RunConfig bundles the optional knobs of a grid build.
type RunConfig struct {
	// Jobs is the worker count; <= 0 means runtime.GOMAXPROCS(0), 1
	// reproduces the sequential path exactly.
	Jobs int
	// Cache, when non-nil, serves verified (codec, content) results so
	// repeated sweeps cost one compression pass total.
	Cache *compress.Cache
	// Partial switches the build to graceful degradation: a failed (file,
	// codec) run no longer cancels the grid; its slot is recorded in the
	// returned RunErrors and the grid is assembled from the slots that
	// succeeded. Files with no surviving codec are dropped entirely.
	Partial bool
	// Metrics receives pool-utilization gauges, task/failure counters and
	// the per-codec operation metrics of every run; nil means the default
	// registry. Recording never influences the grid: the produced rows,
	// measurements and CSV bytes are identical with or without a registry.
	Metrics *obs.Registry
	// Progress, when non-nil, is called after every finished task with
	// monotonically increasing done counts (serialized under a mutex, so
	// the callback needs no locking of its own). See ProgressReporter for a
	// ready-made stderr renderer.
	Progress func(done, total int)
}

// gridMetrics is the worker-pool series set of one grid build.
type gridMetrics struct {
	workers    *obs.Gauge
	tasksTotal *obs.Gauge
	busy       *obs.Gauge
	tasksDone  *obs.Counter
	runsFailed *obs.Counter
}

func newGridMetrics(reg *obs.Registry) gridMetrics {
	reg = obs.OrDefault(reg)
	return gridMetrics{
		workers:    reg.Gauge("dna_grid_workers", "Worker-pool size of the current grid build."),
		tasksTotal: reg.Gauge("dna_grid_tasks_total", "Tasks (file × codec) in the current grid build."),
		busy:       reg.Gauge("dna_grid_workers_busy", "Workers currently executing a run."),
		tasksDone:  reg.Counter("dna_grid_tasks_done_total", "Grid tasks completed, failures included."),
		runsFailed: reg.Counter("dna_grid_runs_failed_total", "Grid runs that failed."),
	}
}

// RunParallel builds the experiment grid with a bounded worker pool fanning
// out the (file × codec) compression/decompression runs. jobs <= 0 means
// runtime.GOMAXPROCS(0); jobs == 1 reproduces the sequential path exactly.
//
// Determinism: results land in slots indexed by (file, codec) position, not
// appended on completion, so the returned Grid — rows, measurements, labels,
// CSV export — is byte-identical regardless of jobs or scheduling.
//
// Cancellation: the first failing run cancels ctx for the whole pool; the
// aggregated RunErrors names each failed (file, codec) pair. External
// cancellation via ctx returns ctx.Err() promptly. All workers have exited
// by the time RunParallel returns.
func RunParallel(ctx context.Context, files []synth.File, contexts []cloud.VM, codecs []string, noise NoiseConfig, jobs int) (*Grid, error) {
	return RunParallelCached(ctx, files, contexts, codecs, noise, jobs, nil)
}

// RunParallelCached is RunParallel with a content-hash keyed result cache;
// cache may be nil.
func RunParallelCached(ctx context.Context, files []synth.File, contexts []cloud.VM, codecs []string, noise NoiseConfig, jobs int, cache *compress.Cache) (*Grid, error) {
	g, _, err := RunGrid(ctx, files, contexts, codecs, noise, RunConfig{Jobs: jobs, Cache: cache})
	return g, err
}

// RunGrid is the full-control grid build behind RunParallel and
// RunParallelCached. It returns the grid, the failed (file, codec) slots,
// and a fatal error. In the default (strict) mode any failure aborts the
// build and comes back as both RunErrors and the error; with cfg.Partial
// the failures are surfaced alongside a usable partial grid.
//
// External cancellation always wins: if the caller's ctx is done, RunGrid
// returns ctx.Err() even when failed runs were recorded in the same race,
// so callers can tell cancellation from run failure.
func RunGrid(ctx context.Context, files []synth.File, contexts []cloud.VM, codecs []string, noise NoiseConfig, cfg RunConfig) (*Grid, RunErrors, error) {
	if len(files) == 0 || len(contexts) == 0 || len(codecs) == 0 {
		return nil, nil, fmt.Errorf("experiment: empty files, contexts or codecs")
	}
	// Fail on unknown codec names before spinning up any workers.
	for _, name := range codecs {
		if _, err := compress.New(name); err != nil {
			return nil, nil, err
		}
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	nTasks := len(files) * len(codecs)
	if jobs > nTasks {
		jobs = nTasks
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	met := newGridMetrics(cfg.Metrics)
	met.workers.Set(float64(jobs))
	met.tasksTotal.Set(float64(nTasks))

	// Progress calls are serialized under a mutex and carry a monotone done
	// count, so a renderer can write terminal lines without its own locking
	// and never sees counts run backwards.
	var progressMu sync.Mutex
	progressDone := 0
	noteDone := func(failed bool) {
		met.tasksDone.Inc()
		if failed {
			met.runsFailed.Inc()
		}
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		progressDone++
		cfg.Progress(progressDone, nTasks)
		progressMu.Unlock()
	}

	// One slot per (file, codec): workers write disjoint indices, so the
	// assembly below needs no ordering information from the scheduler.
	type task struct{ fi, ci int }
	runs := make([]CodecRun, nTasks)
	errs := make([]*RunError, nTasks)
	tasks := make(chan task)

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				f := files[tk.fi]
				name := codecs[tk.ci]
				slot := tk.fi*len(codecs) + tk.ci
				met.busy.Add(1)
				r, err := compress.CompressObserved(cfg.Metrics, cfg.Cache, name, f.Data)
				met.busy.Add(-1)
				if err != nil {
					errs[slot] = &RunError{File: f.Name, Codec: name, Err: err}
					noteDone(true)
					if !cfg.Partial {
						cancel() // abort the rest of the grid promptly
					}
					continue
				}
				runs[slot] = CodecRun{
					Codec: name,
					// Payload bytes, not the armored frame: grid figures
					// measure the codec, not the transport container.
					CompressedSize: r.PayloadBytes,
					CompressStats:  r.CompressStats,
					DecompStats:    r.DecompStats,
				}
				noteDone(false)
			}
		}()
	}

feed:
	for fi := range files {
		for ci := range codecs {
			select {
			case tasks <- task{fi, ci}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(tasks)
	wg.Wait()

	// External cancellation beats run failures: a caller that cancelled
	// mid-run must see its own ctx.Err(), not whichever RunErrors the
	// teardown raced in.
	if err := parent.Err(); err != nil {
		return nil, nil, err
	}

	var failed RunErrors
	for _, e := range errs {
		if e != nil {
			failed = append(failed, e)
		}
	}
	if len(failed) > 0 && !cfg.Partial {
		return nil, failed, failed
	}

	g := &Grid{Codecs: codecs, Contexts: contexts}
	for fi, f := range files {
		fr := FileResult{Name: f.Name, Bases: len(f.Data)}
		for ci := range codecs {
			if slot := fi*len(codecs) + ci; errs[slot] == nil {
				fr.Runs = append(fr.Runs, runs[slot])
			}
		}
		if len(fr.Runs) == 0 {
			continue // every codec failed on this file: no usable rows
		}
		g.Files = append(g.Files, fr)
	}
	if len(g.Files) == 0 {
		return nil, failed, fmt.Errorf("experiment: no file survived the grid build (%d failed runs): %w", len(failed), failed)
	}
	g.expand(noise)
	return g, failed, nil
}
