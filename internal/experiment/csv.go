package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
)

// csvHeader is the stable column layout of a grid export: one record per
// (file, context, codec) measurement.
var csvHeader = []string{
	"file", "bases", "vm", "ram_mb", "cpu_mhz", "bw_mbps",
	"codec", "compress_ms", "decompress_ms", "upload_ms", "download_ms",
	"ram_bytes", "compressed_bytes",
}

// WriteCSV serializes the grid.
func (g *Grid) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, row := range g.Rows {
		for _, m := range row.Measurements {
			rec := []string{
				row.FileName,
				strconv.Itoa(row.FileBases),
				row.VM.Name,
				strconv.Itoa(row.VM.RAMMB),
				strconv.Itoa(row.VM.CPUMHz),
				strconv.FormatFloat(row.VM.BandwidthMbps, 'g', -1, 64),
				m.Codec,
				strconv.FormatFloat(m.CompressMS, 'g', 17, 64),
				strconv.FormatFloat(m.DecompressMS, 'g', 17, 64),
				strconv.FormatFloat(m.UploadMS, 'g', 17, 64),
				strconv.FormatFloat(m.DownloadMS, 'g', 17, 64),
				strconv.Itoa(m.RAMBytes),
				strconv.Itoa(m.CompressedBytes),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reconstructs a grid from WriteCSV output. Codec order follows
// first appearance; file and context order follow first appearance.
func ReadCSV(r io.Reader) (*Grid, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("experiment: reading CSV header: %w", err)
	}
	if len(head) != len(csvHeader) {
		return nil, fmt.Errorf("experiment: CSV has %d columns, want %d", len(head), len(csvHeader))
	}
	for i, h := range csvHeader {
		if head[i] != h {
			return nil, fmt.Errorf("experiment: CSV column %d is %q, want %q", i, head[i], h)
		}
	}
	g := &Grid{}
	type rowKey struct {
		file string
		vm   string
	}
	rowIdx := map[rowKey]int{}
	fileIdx := map[string]int{}
	vmSeen := map[string]bool{}
	codecSeen := map[string]bool{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("experiment: CSV line %d: %w", line, err)
		}
		bases, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("experiment: CSV line %d bases: %w", line, err)
		}
		ramMB, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("experiment: CSV line %d ram_mb: %w", line, err)
		}
		cpu, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("experiment: CSV line %d cpu_mhz: %w", line, err)
		}
		bw, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("experiment: CSV line %d bw: %w", line, err)
		}
		floats := make([]float64, 4)
		for i := 0; i < 4; i++ {
			floats[i], err = strconv.ParseFloat(rec[7+i], 64)
			if err != nil {
				return nil, fmt.Errorf("experiment: CSV line %d time col %d: %w", line, i, err)
			}
		}
		ramBytes, err := strconv.Atoi(rec[11])
		if err != nil {
			return nil, fmt.Errorf("experiment: CSV line %d ram_bytes: %w", line, err)
		}
		compBytes, err := strconv.Atoi(rec[12])
		if err != nil {
			return nil, fmt.Errorf("experiment: CSV line %d compressed_bytes: %w", line, err)
		}

		vm := cloud.VM{Name: rec[2], RAMMB: ramMB, CPUMHz: cpu, BandwidthMbps: bw}
		if _, ok := fileIdx[rec[0]]; !ok {
			fileIdx[rec[0]] = len(g.Files)
			g.Files = append(g.Files, FileResult{Name: rec[0], Bases: bases})
		}
		if !vmSeen[vm.Name] {
			vmSeen[vm.Name] = true
			g.Contexts = append(g.Contexts, vm)
		}
		if !codecSeen[rec[6]] {
			codecSeen[rec[6]] = true
			g.Codecs = append(g.Codecs, rec[6])
		}
		key := rowKey{file: rec[0], vm: vm.Name}
		ri, ok := rowIdx[key]
		if !ok {
			ri = len(g.Rows)
			rowIdx[key] = ri
			g.Rows = append(g.Rows, Row{
				FileIdx:   fileIdx[rec[0]],
				FileName:  rec[0],
				FileBases: bases,
				VM:        vm,
			})
		}
		g.Rows[ri].Measurements = append(g.Rows[ri].Measurements, core.Measurement{
			Codec:           rec[6],
			CompressMS:      floats[0],
			DecompressMS:    floats[1],
			UploadMS:        floats[2],
			DownloadMS:      floats[3],
			RAMBytes:        ramBytes,
			CompressedBytes: compBytes,
		})
	}
	// Sanity: every row must carry every codec, in grid codec order.
	for _, row := range g.Rows {
		if len(row.Measurements) != len(g.Codecs) {
			return nil, fmt.Errorf("experiment: row %s/%s has %d measurements, want %d",
				row.FileName, row.VM.Name, len(row.Measurements), len(g.Codecs))
		}
		for i, m := range row.Measurements {
			if m.Codec != g.Codecs[i] {
				return nil, fmt.Errorf("experiment: row %s/%s codec order %q != %q",
					row.FileName, row.VM.Name, m.Codec, g.Codecs[i])
			}
		}
	}
	return g, nil
}
