package experiment

import (
	"fmt"
	"sort"

	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/stats"
)

// Series is one labeled line of a figure: parallel X/Y vectors.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// codecSeries extracts one value per (row, codec) with rows ordered by a
// sort key, producing one series per codec — the layout of the paper's
// Figures 2-6 (metric vs context/file, one line per algorithm).
func (g *Grid) codecSeries(value func(core.Measurement) float64) []Series {
	out := make([]Series, len(g.Codecs))
	for ci, name := range g.Codecs {
		out[ci].Name = name
		for ri, row := range g.Rows {
			out[ci].X = append(out[ci].X, float64(ri))
			out[ci].Y = append(out[ci].Y, value(row.Measurements[ci]))
		}
	}
	return out
}

// FigUploadTime regenerates Figure 2: upload time per codec across the
// (file × context) rows.
func (g *Grid) FigUploadTime() []Series {
	return g.codecSeries(func(m core.Measurement) float64 { return m.UploadMS })
}

// FigRAMUsed regenerates Figure 3: measured RAM per codec.
func (g *Grid) FigRAMUsed() []Series {
	return g.codecSeries(func(m core.Measurement) float64 { return float64(m.RAMBytes) })
}

// FigCompressedSize regenerates Figure 4: compressed bytes per codec. The
// context does not change it, exactly as the paper observes.
func (g *Grid) FigCompressedSize() []Series {
	return g.codecSeries(func(m core.Measurement) float64 { return float64(m.CompressedBytes) })
}

// FigCompressionTime regenerates Figure 5.
func (g *Grid) FigCompressionTime() []Series {
	return g.codecSeries(func(m core.Measurement) float64 { return m.CompressMS })
}

// FigDecompressionTime supports the paper's §IV.B decompression remarks.
func (g *Grid) FigDecompressionTime() []Series {
	return g.codecSeries(func(m core.Measurement) float64 { return m.DecompressMS })
}

// FigDownloadTime regenerates Figure 6.
func (g *Grid) FigDownloadTime() []Series {
	return g.codecSeries(func(m core.Measurement) float64 { return m.DownloadMS })
}

// FigFileSizeByRow regenerates Figure 8: file size against row id for the
// (test) grid, rows sorted the way the paper plots them (by file then
// context).
func (g *Grid) FigFileSizeByRow() Series {
	s := Series{Name: "file_size_bytes"}
	for ri, row := range g.Rows {
		s.X = append(s.X, float64(ri))
		s.Y = append(s.Y, float64(row.FileBases))
	}
	return s
}

// Validation is the material behind Figures 9-16: per-test-row predicted vs
// actual labels plus the normalized context series of the analysis charts.
type Validation struct {
	Method    string
	Tree      *dtree.Tree
	Rows      []Row
	Actual    []string
	Predicted []string
	Match     []bool
	Accuracy  float64
}

// Validate trains on the training grid and evaluates each test row,
// returning the full per-row trace.
func Validate(train, test *Grid, method string, w core.Weights, cfg dtree.Config) (*Validation, error) {
	tree, _, err := TrainEval(train, test, method, w, cfg)
	if err != nil {
		return nil, err
	}
	v := &Validation{Method: method, Tree: tree}
	labels := test.Labels(w)
	hits := 0
	for i, row := range test.Rows {
		pred := tree.PredictName(row.Context().Features())
		v.Rows = append(v.Rows, row)
		v.Actual = append(v.Actual, labels[i])
		v.Predicted = append(v.Predicted, pred)
		ok := pred == labels[i]
		v.Match = append(v.Match, ok)
		if ok {
			hits++
		}
	}
	if len(test.Rows) > 0 {
		v.Accuracy = float64(hits) / float64(len(test.Rows))
	}
	return v, nil
}

// MatchSeries renders the validation as the paper's Figures 9/11/13/15: one
// point per test row, the codec's numeric id when matched and a gap (NaN is
// avoided — the caller filters) when mismatched. Y is the actual label index
// +1 on match, 0 on mismatch.
func (v *Validation) MatchSeries(classOf map[string]int) Series {
	s := Series{Name: v.Method + "_validation"}
	for i := range v.Rows {
		s.X = append(s.X, float64(i))
		if v.Match[i] {
			s.Y = append(s.Y, float64(classOf[v.Actual[i]]+1))
		} else {
			s.Y = append(s.Y, 0)
		}
	}
	return s
}

// AnalysisSeries renders the paper's Figures 10/12/14/16: normalized CPU,
// total RAM and file size per test row, plus the result line (+1 matched,
// -1 mismatched), truncated to the first n rows as the paper plots ~86-88.
func (v *Validation) AnalysisSeries(n int) []Series {
	if n <= 0 || n > len(v.Rows) {
		n = len(v.Rows)
	}
	cpu := make([]float64, n)
	ram := make([]float64, n)
	size := make([]float64, n)
	result := make([]float64, n)
	for i := 0; i < n; i++ {
		ctx := v.Rows[i].Context()
		cpu[i] = ctx.CPUMHz
		ram[i] = ctx.RAMMB
		size[i] = ctx.FileSizeKB
		if v.Match[i] {
			result[i] = 1
		} else {
			result[i] = -1
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	return []Series{
		{Name: "cpu_norm", X: x, Y: stats.Normalize(cpu)},
		{Name: "ram_norm", X: x, Y: stats.Normalize(ram)},
		{Name: "file_norm", X: x, Y: stats.Normalize(size)},
		{Name: "result", X: x, Y: result},
	}
}

// GapsBelow reports how many mismatches fall below the given file size
// (KB) — the paper's reading of the CHAID gaps ("when the file is less than
// 50kb ... the rules could not be validated").
func (v *Validation) GapsBelow(sizeKB float64) (below, total int) {
	for i, row := range v.Rows {
		if !v.Match[i] {
			total++
			if float64(row.FileBases)/1024 < sizeKB {
				below++
			}
		}
	}
	return below, total
}

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	Method   string // "CART" or "CHAID"
	Weight   string // e.g. "100", "60:40"
	Var1     string
	Var2     string
	Var3     string
	Accuracy float64 // fraction in [0,1]
}

// table2Combos enumerates the paper's weight/variable combinations.
func table2Combos() []struct {
	Weight           string
	Var1, Var2, Var3 string
	W                core.Weights
} {
	type combo = struct {
		Weight           string
		Var1, Var2, Var3 string
		W                core.Weights
	}
	var out []combo
	out = append(out,
		combo{"100", "RAM", "N/A", "N/A", core.RAMOnlyWeights()},
		combo{"100", "TIME", "N/A", "N/A", core.TimeOnlyWeights()},
		combo{"100", "CompressionTime", "N/A", "N/A", core.CompressTimeOnlyWeights()},
	)
	for _, rt := range [][2]float64{{60, 40}, {40, 60}, {70, 30}, {30, 70}, {80, 20}, {20, 80}, {90, 10}, {10, 90}} {
		out = append(out, combo{
			Weight: fmt.Sprintf("%g:%g", rt[0], rt[1]),
			Var1:   "RAM", Var2: "TIME", Var3: "N/A",
			W: core.RAMTimeWeights(rt[0]/100, rt[1]/100),
		})
	}
	out = append(out, combo{
		Weight: "50:50", Var1: "RAM", Var2: "CompressionTime", Var3: "N/A",
		W: core.Weights{RAM: 0.5, CompressTime: 0.5},
	})
	for _, rcu := range [][3]float64{{33, 33, 33}, {20, 40, 40}, {40, 40, 20}, {40, 50, 10}} {
		out = append(out, combo{
			Weight: fmt.Sprintf("%g:%g:%g", rcu[0], rcu[1], rcu[2]),
			Var1:   "RAM", Var2: "CompressionTime", Var3: "UploadTime",
			W: core.Weights{RAM: rcu[0] / 100, CompressTime: rcu[1] / 100, UploadTime: rcu[2] / 100},
		})
	}
	return out
}

// Table2 reproduces the paper's Table 2: every weight combination × both
// induction methods, reporting validation accuracy.
func Table2(train, test *Grid, cfg dtree.Config) ([]Table2Row, error) {
	var out []Table2Row
	for _, c := range table2Combos() {
		for _, method := range []string{MethodCART, MethodCHAID} {
			_, acc, err := TrainEval(train, test, method, c.W, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: table2 %s %s: %w", method, c.Weight, err)
			}
			name := "CART"
			if method == MethodCHAID {
				name = "CHAID"
			}
			out = append(out, Table2Row{
				Method: name, Weight: c.Weight,
				Var1: c.Var1, Var2: c.Var2, Var3: c.Var3,
				Accuracy: acc,
			})
		}
	}
	return out, nil
}

// Table2Lookup finds the accuracy for a method and variable signature.
func Table2Lookup(rows []Table2Row, method, weight, var1 string) (float64, bool) {
	for _, r := range rows {
		if r.Method == method && r.Weight == weight && r.Var1 == var1 {
			return r.Accuracy, true
		}
	}
	return 0, false
}

// MeanUploadByCodec supports the paper's §V remark that GenCompress's
// better ratio buys it upload time relative to DNAX: mean upload ms per
// codec across all rows.
func (g *Grid) MeanUploadByCodec() map[string]float64 {
	sums := make(map[string]float64)
	for _, row := range g.Rows {
		for _, m := range row.Measurements {
			sums[m.Codec] += m.UploadMS
		}
	}
	for k := range sums {
		sums[k] /= float64(len(g.Rows))
	}
	return sums
}

// SortRowsBySize orders the grid rows by file size then context, the layout
// of the paper's Figure 8.
func (g *Grid) SortRowsBySize() {
	sort.SliceStable(g.Rows, func(a, b int) bool {
		if g.Rows[a].FileBases != g.Rows[b].FileBases {
			return g.Rows[a].FileBases < g.Rows[b].FileBases
		}
		return g.Rows[a].VM.Name < g.Rows[b].VM.Name
	})
}
