// Package experiment reproduces the paper's experimental pipeline end to
// end: run every corpus file through every codec, expand the measurements
// across the 32-context grid, apply deterministic measurement noise, label
// each (file, context) row with Eq. 1, induce CHAID/CART rules on the
// training files, and validate on the held-out 25 % — producing every
// figure series and the Table 2 accuracy sweep.
package experiment

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// CodecRun is one codec's context-independent result for one file: the
// compressed size and the modeled reference-core stats. Context expansion
// scales these into per-VM measurements.
type CodecRun struct {
	Codec          string
	CompressedSize int
	CompressStats  compress.Stats
	DecompStats    compress.Stats
}

// FileResult carries every codec's run for one corpus file.
type FileResult struct {
	Name  string
	Bases int
	Runs  []CodecRun
}

// Row is one (file, context) cell with fully-expanded measurements.
type Row struct {
	FileIdx      int
	FileName     string
	FileBases    int
	VM           cloud.VM
	Measurements []core.Measurement // one per surviving codec, grid order (partial builds omit failed codecs)
}

// Context returns the learning context of the row.
func (r Row) Context() core.Context {
	return core.GatherContext(r.VM, r.FileBases)
}

// Grid is the full experiment: files × contexts with per-codec measurements.
type Grid struct {
	Codecs   []string
	Files    []FileResult
	Contexts []cloud.VM
	Rows     []Row
}

// NoiseConfig controls the deterministic measurement noise that stands in
// for the paper's real-hardware variance ("sudden background processes").
type NoiseConfig struct {
	// TimeAmp is the relative half-range of multiplicative time noise
	// (0.08 = ±8 %), enough to flip labels near crossovers and keep the
	// time models at the paper's 94–96 % rather than 100 %.
	TimeAmp float64
	// RAMBaseMB / RAMAmpMB give the additive process-baseline term: the
	// paper measured whole-process RAM on Windows guests, where runtime
	// baseline and cache noise swamp the codecs' few-MB working sets —
	// the mechanism behind the ~33–36 % RAM-model accuracies.
	RAMBaseMB float64
	RAMAmpMB  float64
	// BusyCPUDoubles reproduces "when CPU usage is greater than 30% the
	// RAM usage got double": a hash-selected ~30 % of runs get their
	// measured RAM scaled up.
	BusyCPUDoubles bool
	// Seed decorrelates reruns.
	Seed uint64
}

// DefaultNoise returns the calibrated noise configuration.
func DefaultNoise() NoiseConfig {
	return NoiseConfig{TimeAmp: 0.08, RAMBaseMB: 20, RAMAmpMB: 28, BusyCPUDoubles: true, Seed: 2015}
}

// hashUnit returns a deterministic value in [0,1) from the row identity.
func hashUnit(seed uint64, parts ...string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Run compresses every corpus file with every codec once (reference-core
// stats are context-independent) and expands the grid across contexts. It
// is the sequential special case of RunParallel (jobs = 1).
func Run(files []synth.File, contexts []cloud.VM, codecs []string, noise NoiseConfig) (*Grid, error) {
	return RunParallel(context.Background(), files, contexts, codecs, noise, 1)
}

// expand builds the (file × context) rows with noise applied.
func (g *Grid) expand(noise NoiseConfig) {
	g.Rows = g.Rows[:0]
	for fi, fr := range g.Files {
		for _, vm := range g.Contexts {
			row := Row{FileIdx: fi, FileName: fr.Name, FileBases: fr.Bases, VM: vm}
			for _, run := range fr.Runs {
				m := core.Measurement{
					Codec:           run.Codec,
					CompressMS:      vm.ExecMS(run.CompressStats),
					DecompressMS:    cloud.AzureVM.ExecMS(run.DecompStats),
					UploadMS:        vm.UploadMS(run.CompressedSize),
					DownloadMS:      cloud.AzureVM.DownloadMS(run.CompressedSize),
					CompressedBytes: run.CompressedSize,
				}
				key := []string{fr.Name, vm.Name, run.Codec}
				if noise.TimeAmp > 0 {
					m.CompressMS *= 1 + noise.TimeAmp*(2*hashUnit(noise.Seed, append(key, "ct")...)-1)
					m.DecompressMS *= 1 + noise.TimeAmp*(2*hashUnit(noise.Seed, append(key, "dt")...)-1)
					m.UploadMS *= 1 + noise.TimeAmp*(2*hashUnit(noise.Seed, append(key, "ut")...)-1)
					m.DownloadMS *= 1 + noise.TimeAmp*(2*hashUnit(noise.Seed, append(key, "dl")...)-1)
				}
				ram := float64(run.CompressStats.PeakMem)
				ram += (noise.RAMBaseMB + noise.RAMAmpMB*hashUnit(noise.Seed, append(key, "rb")...)) * (1 << 20)
				if noise.BusyCPUDoubles && hashUnit(noise.Seed, append(key, "busy")...) > 0.7 {
					ram *= 1.8
				}
				m.RAMBytes = int(ram)
				row.Measurements = append(row.Measurements, m)
			}
			g.Rows = append(g.Rows, row)
		}
	}
}

// Labels computes the Eq. 1 winner for every row under the given weights.
func (g *Grid) Labels(w core.Weights) []string {
	out := make([]string, len(g.Rows))
	for i, row := range g.Rows {
		name, err := core.Label(row.Measurements, w)
		if err != nil {
			name = ""
		}
		out[i] = name
	}
	return out
}

// LabelsNormalized computes the future-work normalized-Eq.1 winner for
// every row (core.LabelNormalized).
func (g *Grid) LabelsNormalized(w core.Weights) []string {
	out := make([]string, len(g.Rows))
	for i, row := range g.Rows {
		name, err := core.LabelNormalized(row.Measurements, w)
		if err != nil {
			name = ""
		}
		out[i] = name
	}
	return out
}

// DatasetNormalized is Dataset with normalized-Eq.1 labels.
func (g *Grid) DatasetNormalized(w core.Weights) dtree.Dataset {
	ds := dtree.Dataset{
		FeatureNames: core.FeatureNames,
		ClassNames:   append([]string(nil), g.Codecs...),
	}
	classIdx := map[string]int{}
	for i, c := range g.Codecs {
		classIdx[c] = i
	}
	labels := g.LabelsNormalized(w)
	for i, row := range g.Rows {
		ci, ok := classIdx[labels[i]]
		if !ok {
			continue // labeling failed (no measurements): skip, don't poison class 0
		}
		ds.X = append(ds.X, row.Context().Features())
		ds.Y = append(ds.Y, ci)
	}
	return ds
}

// LabelCounts tallies winners under the weights.
func (g *Grid) LabelCounts(w core.Weights) map[string]int {
	counts := map[string]int{}
	for _, l := range g.Labels(w) {
		counts[l]++
	}
	return counts
}

// Dataset converts the grid to a learning dataset under the given weights.
// Class space is the codec list (even codecs that never win, mirroring the
// paper's observation that Gzip "is not considered in results").
func (g *Grid) Dataset(w core.Weights) dtree.Dataset {
	ds := dtree.Dataset{
		FeatureNames: core.FeatureNames,
		ClassNames:   append([]string(nil), g.Codecs...),
	}
	classIdx := map[string]int{}
	for i, c := range g.Codecs {
		classIdx[c] = i
	}
	labels := g.Labels(w)
	for i, row := range g.Rows {
		ci, ok := classIdx[labels[i]]
		if !ok {
			continue // labeling failed (no measurements): skip, don't poison class 0
		}
		ds.X = append(ds.X, row.Context().Features())
		ds.Y = append(ds.Y, ci)
	}
	return ds
}

// Split partitions the grid by FILE into train and test grids: every fourth
// file (by index) is held out, reproducing the paper's 25 % test split
// ("33 files so 33*32 ... = 1056 rows").
func (g *Grid) Split() (train, test *Grid) {
	train = &Grid{Codecs: g.Codecs, Contexts: g.Contexts}
	test = &Grid{Codecs: g.Codecs, Contexts: g.Contexts}
	testFile := make([]bool, len(g.Files))
	for fi := range g.Files {
		if fi%4 == 3 {
			testFile[fi] = true
		}
	}
	mapIdx := func(dst *Grid, fr FileResult) int {
		fr.Runs = append([]CodecRun(nil), fr.Runs...)
		dst.Files = append(dst.Files, fr)
		return len(dst.Files) - 1
	}
	trainIdx := make([]int, len(g.Files))
	testIdx := make([]int, len(g.Files))
	for fi, fr := range g.Files {
		if testFile[fi] {
			testIdx[fi] = mapIdx(test, fr)
		} else {
			trainIdx[fi] = mapIdx(train, fr)
		}
	}
	for _, row := range g.Rows {
		// Deep-copy the measurements: the copied Row struct would otherwise
		// share its Measurements backing array with the parent grid, letting
		// a mutation of a train row corrupt the parent (and through it the
		// held-out evaluation).
		r := row
		r.Measurements = append([]core.Measurement(nil), row.Measurements...)
		if testFile[row.FileIdx] {
			r.FileIdx = testIdx[row.FileIdx]
			test.Rows = append(test.Rows, r)
		} else {
			r.FileIdx = trainIdx[row.FileIdx]
			train.Rows = append(train.Rows, r)
		}
	}
	return train, test
}

// Method names accepted by TrainEval.
const (
	MethodCART  = "cart"
	MethodCHAID = "chaid"
)

// TrainEval trains the chosen method on train-labels and reports validation
// accuracy on the test grid, both labeled under the same weights.
func TrainEval(train, test *Grid, method string, w core.Weights, cfg dtree.Config) (*dtree.Tree, float64, error) {
	ds := train.Dataset(w)
	var (
		tree *dtree.Tree
		err  error
	)
	switch method {
	case MethodCART:
		tree, err = dtree.TrainCART(ds, cfg)
	case MethodCHAID:
		tree, err = dtree.TrainCHAID(ds, cfg)
	default:
		return nil, 0, fmt.Errorf("experiment: unknown method %q", method)
	}
	if err != nil {
		return nil, 0, err
	}
	acc := dtree.Accuracy(tree, test.Dataset(w))
	return tree, acc, nil
}

// WinnerBySize returns (sizeKB, winner) pairs for one representative
// context, sorted by size — the calibration view of the label crossovers.
func (g *Grid) WinnerBySize(w core.Weights, vmName string) []SizeWinner {
	var out []SizeWinner
	labels := g.Labels(w)
	for i, row := range g.Rows {
		if row.VM.Name != vmName {
			continue
		}
		out = append(out, SizeWinner{SizeKB: float64(row.FileBases) / 1024, Winner: labels[i]})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SizeKB < out[b].SizeKB })
	return out
}

// SizeWinner pairs a file size with the winning codec in one context.
type SizeWinner struct {
	SizeKB float64
	Winner string
}
