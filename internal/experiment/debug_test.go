package experiment

import (
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

// TestDebugStageTimes prints per-codec stage times for a few sizes in one
// context (temporary calibration aid).
func TestDebugStageTimes(t *testing.T) {
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 5, MinSize: 16 << 10, MaxSize: 256 << 10, Seed: 7})
	noise := DefaultNoise()
	noise.TimeAmp = 0 // exact stage times
	g, err := Run(files, []cloud.VM{{Name: "mid", RAMMB: 3584, CPUMHz: 1600, BandwidthMbps: 2}}, paperCodecs, noise)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range g.Rows {
		t.Logf("file %s (%d KB):", row.FileName, row.FileBases/1024)
		for _, m := range row.Measurements {
			t.Logf("  %-12s comp=%7.1f dec=%7.1f up=%7.1f down=%6.1f total=%8.1f size=%d",
				m.Codec, m.CompressMS, m.DecompressMS, m.UploadMS, m.DownloadMS, m.TotalTimeMS(), m.CompressedBytes)
		}
	}
}
