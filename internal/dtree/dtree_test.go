package dtree

import (
	"math"
	"math/rand"
	"testing"
)

// axisDataset builds a dataset whose label is determined by thresholding
// feature 0 at 50 (class 0 below, class 1 at/above), with an optional noise
// rate flipping labels.
func axisDataset(n int, noise float64, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := Dataset{
		FeatureNames: []string{"size", "junk"},
		ClassNames:   []string{"small", "large"},
	}
	for i := 0; i < n; i++ {
		v := rng.Float64() * 100
		y := 0
		if v >= 50 {
			y = 1
		}
		if rng.Float64() < noise {
			y = 1 - y
		}
		ds.X = append(ds.X, []float64{v, rng.Float64()})
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func TestCARTLearnsThreshold(t *testing.T) {
	ds := axisDataset(600, 0, 1)
	tree, err := TrainCART(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree, ds); acc < 0.98 {
		t.Fatalf("training accuracy %.3f, want >= 0.98", acc)
	}
	// Generalization on fresh data from the same law.
	test := axisDataset(400, 0, 2)
	if acc := Accuracy(tree, test); acc < 0.95 {
		t.Fatalf("test accuracy %.3f, want >= 0.95", acc)
	}
	// The learned threshold should be near 50.
	root := tree.root
	if root.leaf || root.feature != 0 {
		t.Fatalf("root did not split on feature 0: %+v", root)
	}
	if math.Abs(root.threshold-50) > 5 {
		t.Fatalf("root threshold %.2f, want near 50", root.threshold)
	}
}

func TestCHAIDLearnsThreshold(t *testing.T) {
	ds := axisDataset(600, 0, 3)
	tree, err := TrainCHAID(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree, ds); acc < 0.85 {
		t.Fatalf("training accuracy %.3f, want >= 0.85 (bin granularity bounds it)", acc)
	}
	test := axisDataset(400, 0, 4)
	if acc := Accuracy(tree, test); acc < 0.8 {
		t.Fatalf("test accuracy %.3f, want >= 0.8", acc)
	}
	if tree.root.leaf || tree.root.feature != 0 {
		t.Fatalf("CHAID root did not split on the informative feature")
	}
	if len(tree.root.children) < 2 {
		t.Fatalf("CHAID root has %d children", len(tree.root.children))
	}
}

func TestNoiseLimitsAccuracy(t *testing.T) {
	// With 20 % label noise no tree should reach 90 % test accuracy — a
	// sanity check against leakage through the evaluation helpers.
	train := axisDataset(800, 0.2, 5)
	test := axisDataset(400, 0.2, 6)
	for _, train_ := range []func(Dataset, Config) (*Tree, error){TrainCART, TrainCHAID} {
		tree, err := train_(train, Config{})
		if err != nil {
			t.Fatal(err)
		}
		acc := Accuracy(tree, test)
		if acc > 0.9 {
			t.Fatalf("noisy test accuracy %.3f suspiciously high", acc)
		}
		if acc < 0.6 {
			t.Fatalf("noisy test accuracy %.3f suspiciously low", acc)
		}
	}
}

func TestPureLeafShortCircuit(t *testing.T) {
	ds := Dataset{
		FeatureNames: []string{"x"},
		ClassNames:   []string{"a", "b"},
	}
	for i := 0; i < 100; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, 0) // all same class
	}
	for _, train := range []func(Dataset, Config) (*Tree, error){TrainCART, TrainCHAID} {
		tree, err := train(ds, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if tree.NodeCount() != 1 {
			t.Fatalf("pure dataset should give a lone leaf, got %d nodes", tree.NodeCount())
		}
		if Accuracy(tree, ds) != 1 {
			t.Fatal("pure dataset accuracy must be 1")
		}
	}
}

func TestMinSamplesLeafRespected(t *testing.T) {
	ds := axisDataset(60, 0, 7)
	tree, err := TrainCART(ds, Config{MinSamplesLeaf: 25, MinSamplesSplit: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tree.Rules() {
		if r.Support < 25 {
			t.Fatalf("leaf with support %d violates MinSamplesLeaf", r.Support)
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	ds := axisDataset(1000, 0.05, 8)
	for _, train := range []func(Dataset, Config) (*Tree, error){TrainCART, TrainCHAID} {
		tree, err := train(ds, Config{MaxDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		if d := tree.Depth(); d > 2 {
			t.Fatalf("depth %d exceeds MaxDepth 2", d)
		}
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	bad := Dataset{FeatureNames: []string{"x"}, ClassNames: []string{"a"}, X: [][]float64{{1}}, Y: []int{5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	ragged := Dataset{FeatureNames: []string{"x", "y"}, ClassNames: []string{"a"}, X: [][]float64{{1}}, Y: []int{0}}
	if err := ragged.Validate(); err == nil {
		t.Fatal("ragged row accepted")
	}
	mismatch := Dataset{FeatureNames: []string{"x"}, ClassNames: []string{"a"}, X: [][]float64{{1}}, Y: nil}
	if err := mismatch.Validate(); err == nil {
		t.Fatal("row/label mismatch accepted")
	}
	if _, err := TrainCART(Dataset{FeatureNames: []string{"x"}, ClassNames: []string{"a"}}, Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestRulesCoverFeatureSpace(t *testing.T) {
	// Every point must be covered by exactly one rule, and that rule's
	// class must equal Predict's answer.
	ds := axisDataset(500, 0.05, 9)
	rng := rand.New(rand.NewSource(10))
	for _, train := range []func(Dataset, Config) (*Tree, error){TrainCART, TrainCHAID} {
		tree, err := train(ds, Config{})
		if err != nil {
			t.Fatal(err)
		}
		rules := tree.Rules()
		if len(rules) == 0 {
			t.Fatal("no rules")
		}
		for trial := 0; trial < 500; trial++ {
			x := []float64{rng.Float64()*120 - 10, rng.Float64()}
			covered := 0
			ruleClass := -1
			for _, r := range rules {
				match := true
				for _, c := range r.Conditions {
					v := x[c.Feature]
					if !(v >= c.Low && v < c.High) && !(math.IsInf(c.Low, -1) && v < c.High) && !(math.IsInf(c.High, 1) && v >= c.Low) {
						match = false
						break
					}
				}
				if match {
					covered++
					ruleClass = r.Class
				}
			}
			if covered != 1 {
				t.Fatalf("%s: point %v covered by %d rules", tree.Method, x, covered)
			}
			if ruleClass != tree.Predict(x) {
				t.Fatalf("%s: rule class %d != Predict %d at %v", tree.Method, ruleClass, tree.Predict(x), x)
			}
		}
	}
}

func TestConfusionMatrix(t *testing.T) {
	ds := axisDataset(300, 0, 11)
	tree, err := TrainCART(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cm := ConfusionMatrix(tree, ds)
	total := 0
	diag := 0
	for i := range cm {
		for j := range cm[i] {
			total += cm[i][j]
			if i == j {
				diag += cm[i][j]
			}
		}
	}
	if total != 300 {
		t.Fatalf("confusion matrix total %d, want 300", total)
	}
	if acc := Accuracy(tree, ds); math.Abs(acc-float64(diag)/300) > 1e-12 {
		t.Fatalf("confusion diagonal disagrees with Accuracy")
	}
}

func TestMultiClassFourWay(t *testing.T) {
	// Four quadrant classes over two features — mirrors the experiment's
	// four-codec label space.
	rng := rand.New(rand.NewSource(12))
	ds := Dataset{
		FeatureNames: []string{"a", "b"},
		ClassNames:   []string{"q0", "q1", "q2", "q3"},
	}
	for i := 0; i < 1200; i++ {
		a, b := rng.Float64(), rng.Float64()
		y := 0
		if a >= 0.5 {
			y |= 1
		}
		if b >= 0.5 {
			y |= 2
		}
		ds.X = append(ds.X, []float64{a, b})
		ds.Y = append(ds.Y, y)
	}
	for _, train := range []func(Dataset, Config) (*Tree, error){TrainCART, TrainCHAID} {
		tree, err := train(ds, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if acc := Accuracy(tree, ds); acc < 0.85 {
			t.Fatalf("%s quadrant accuracy %.3f, want >= 0.85", tree.Method, acc)
		}
	}
}

func TestCHAIDMultiwaySplits(t *testing.T) {
	// Three bands along one feature: CHAID should produce a 3-way split at
	// the root rather than a binary cascade.
	rng := rand.New(rand.NewSource(13))
	ds := Dataset{FeatureNames: []string{"v"}, ClassNames: []string{"lo", "mid", "hi"}}
	for i := 0; i < 900; i++ {
		v := rng.Float64() * 90
		y := int(v / 30)
		ds.X = append(ds.X, []float64{v})
		ds.Y = append(ds.Y, y)
	}
	tree, err := TrainCHAID(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.root.leaf {
		t.Fatal("root is a leaf")
	}
	if got := len(tree.root.children); got < 3 {
		t.Fatalf("root has %d children, want >= 3 (multiway)", got)
	}
	if acc := Accuracy(tree, ds); acc < 0.9 {
		t.Fatalf("band accuracy %.3f", acc)
	}
}

func TestTreeString(t *testing.T) {
	ds := axisDataset(200, 0, 14)
	tree, err := TrainCART(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	if len(s) == 0 || s[:4] != "cart" {
		t.Fatalf("String output malformed: %q", s)
	}
}

func BenchmarkTrainCART(b *testing.B) {
	ds := axisDataset(4000, 0.05, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainCART(ds, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainCHAID(b *testing.B) {
	ds := axisDataset(4000, 0.05, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainCHAID(ds, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
