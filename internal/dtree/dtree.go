// Package dtree implements the two decision-tree induction methods the
// paper uses to turn labeled experiment rows into selection rules:
//
//   - CART (Classification and Regression Trees): greedy binary splits on
//     continuous predictors chosen by Gini impurity reduction. The paper
//     found CART "more effective as the problem ... is basically that of
//     the prediction of category based on continuous or categorical
//     variables".
//   - CHAID (Chi-squared Automatic Interaction Detector): predictors are
//     quantile-binned, statistically indistinguishable adjacent categories
//     are merged pairwise, and the predictor with the smallest
//     Bonferroni-adjusted chi-squared p-value wins a multiway split.
//
// Both produce the same Tree type, which predicts, reports accuracy and
// confusion matrices, and can flatten itself into human-readable rules —
// the "rules generated" that the paper's inference engine consumes.
package dtree

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/srl-nuces/ctxdna/internal/stats"
)

// Dataset is a labeled table of continuous features.
type Dataset struct {
	FeatureNames []string
	ClassNames   []string
	X            [][]float64 // rows × features
	Y            []int       // class index per row
}

// Validate checks structural consistency.
func (ds Dataset) Validate() error {
	if len(ds.X) != len(ds.Y) {
		return fmt.Errorf("dtree: %d feature rows vs %d labels", len(ds.X), len(ds.Y))
	}
	for i, row := range ds.X {
		if len(row) != len(ds.FeatureNames) {
			return fmt.Errorf("dtree: row %d has %d features, want %d", i, len(row), len(ds.FeatureNames))
		}
	}
	for i, y := range ds.Y {
		if y < 0 || y >= len(ds.ClassNames) {
			return fmt.Errorf("dtree: row %d label %d outside classes", i, y)
		}
	}
	return nil
}

// Config bounds tree growth. Zero values select defaults.
type Config struct {
	MaxDepth        int     // default 6
	MinSamplesSplit int     // default 24
	MinSamplesLeaf  int     // default 8
	MinGain         float64 // CART: minimum Gini reduction (default 1e-4)
	Alpha           float64 // CHAID: split significance (default 0.05)
	MergeAlpha      float64 // CHAID: category-merge threshold (default 0.10)
	MaxBins         int     // CHAID: initial quantile bins (default 8)
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinSamplesSplit == 0 {
		cfg.MinSamplesSplit = 24
	}
	if cfg.MinSamplesLeaf == 0 {
		cfg.MinSamplesLeaf = 8
	}
	if cfg.MinGain == 0 {
		cfg.MinGain = 1e-4
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.05
	}
	if cfg.MergeAlpha == 0 {
		cfg.MergeAlpha = 0.10
	}
	if cfg.MaxBins == 0 {
		cfg.MaxBins = 8
	}
	return cfg
}

// node is a tree node covering both methods: CART nodes have a threshold
// and exactly two children; CHAID nodes have bin cuts, a bin→child group
// mapping, and len(children) >= 2.
type node struct {
	leaf    bool
	class   int
	counts  []int
	feature int

	// CART
	threshold   float64
	left, right *node

	// CHAID
	cuts     []float64
	groups   []int // bin index -> child slot
	children []*node
}

// Tree is a trained classifier.
type Tree struct {
	Method       string // "cart" or "chaid"
	FeatureNames []string
	ClassNames   []string
	root         *node
}

// Predict returns the class index for a feature vector.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for !n.leaf {
		if n.children != nil { // CHAID multiway
			bin := stats.BinIndex(n.cuts, x[n.feature])
			n = n.children[n.groups[bin]]
			continue
		}
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// PredictName returns the class name for a feature vector.
func (t *Tree) PredictName(x []float64) string {
	return t.ClassNames[t.Predict(x)]
}

// NodeCount returns the number of nodes in the tree.
func (t *Tree) NodeCount() int { return countNodes(t.root) }

func countNodes(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	if n.children != nil {
		total := 1
		for _, c := range n.children {
			total += countNodes(c)
		}
		return total
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// Depth returns the maximum depth (a lone leaf has depth 1).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	best := 0
	if n.children != nil {
		for _, c := range n.children {
			if d := depthOf(c); d > best {
				best = d
			}
		}
	} else {
		best = depthOf(n.left)
		if d := depthOf(n.right); d > best {
			best = d
		}
	}
	return 1 + best
}

// Accuracy is matched/total on a dataset — the paper's metric.
func Accuracy(t *Tree, ds Dataset) float64 {
	if len(ds.Y) == 0 {
		return 0
	}
	hits := 0
	for i, row := range ds.X {
		if t.Predict(row) == ds.Y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(ds.Y))
}

// ConfusionMatrix returns counts[actual][predicted].
func ConfusionMatrix(t *Tree, ds Dataset) [][]int {
	m := make([][]int, len(t.ClassNames))
	for i := range m {
		m[i] = make([]int, len(t.ClassNames))
	}
	for i, row := range ds.X {
		m[ds.Y[i]][t.Predict(row)]++
	}
	return m
}

func majority(counts []int) int {
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

func classCounts(ds Dataset, idx []int) []int {
	counts := make([]int, len(ds.ClassNames))
	for _, i := range idx {
		counts[ds.Y[i]]++
	}
	return counts
}

func pure(counts []int) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// ---------- CART ----------

// TrainCART grows a binary Gini tree.
func TrainCART(ds Dataset, cfg Config) (*Tree, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Y) == 0 {
		return nil, fmt.Errorf("dtree: empty dataset")
	}
	cfg = cfg.withDefaults()
	idx := make([]int, len(ds.Y))
	for i := range idx {
		idx[i] = i
	}
	root := growCART(ds, cfg, idx, 1)
	return &Tree{Method: "cart", FeatureNames: ds.FeatureNames, ClassNames: ds.ClassNames, root: root}, nil
}

func leafNode(counts []int) *node {
	return &node{leaf: true, class: majority(counts), counts: counts}
}

func growCART(ds Dataset, cfg Config, idx []int, depth int) *node {
	counts := classCounts(ds, idx)
	if depth >= cfg.MaxDepth || len(idx) < cfg.MinSamplesSplit || pure(counts) {
		return leafNode(counts)
	}
	baseImp := stats.Gini(counts)
	bestGain := cfg.MinGain
	bestFeat := -1
	bestThr := 0.0
	nTotal := float64(len(idx))

	for f := range ds.FeatureNames {
		// Sort row indices by feature value, then scan split points.
		sorted := append([]int(nil), idx...)
		sort.Slice(sorted, func(a, b int) bool { return ds.X[sorted[a]][f] < ds.X[sorted[b]][f] })
		leftCounts := make([]int, len(ds.ClassNames))
		rightCounts := append([]int(nil), counts...)
		for i := 0; i < len(sorted)-1; i++ {
			y := ds.Y[sorted[i]]
			leftCounts[y]++
			rightCounts[y]--
			v, next := ds.X[sorted[i]][f], ds.X[sorted[i+1]][f]
			if v == next {
				continue // can't split between equal values
			}
			nLeft := i + 1
			nRight := len(sorted) - nLeft
			if nLeft < cfg.MinSamplesLeaf || nRight < cfg.MinSamplesLeaf {
				continue
			}
			gain := baseImp -
				(float64(nLeft)*stats.Gini(leftCounts)+float64(nRight)*stats.Gini(rightCounts))/nTotal
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (v + next) / 2
			}
		}
	}
	if bestFeat < 0 {
		return leafNode(counts)
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if ds.X[i][bestFeat] <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThr,
		counts:    counts,
		class:     majority(counts),
		left:      growCART(ds, cfg, leftIdx, depth+1),
		right:     growCART(ds, cfg, rightIdx, depth+1),
	}
}

// ---------- CHAID ----------

// TrainCHAID grows a multiway chi-squared tree.
func TrainCHAID(ds Dataset, cfg Config) (*Tree, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Y) == 0 {
		return nil, fmt.Errorf("dtree: empty dataset")
	}
	cfg = cfg.withDefaults()
	idx := make([]int, len(ds.Y))
	for i := range idx {
		idx[i] = i
	}
	root := growCHAID(ds, cfg, idx, 1)
	return &Tree{Method: "chaid", FeatureNames: ds.FeatureNames, ClassNames: ds.ClassNames, root: root}, nil
}

// chaidSplit is a candidate multiway split of one feature.
type chaidSplit struct {
	feature  int
	cuts     []float64
	groups   []int // bin -> merged group
	nGroups  int
	adjP     float64
	children [][]int // row indices per group
}

func growCHAID(ds Dataset, cfg Config, idx []int, depth int) *node {
	counts := classCounts(ds, idx)
	if depth >= cfg.MaxDepth || len(idx) < cfg.MinSamplesSplit || pure(counts) {
		return leafNode(counts)
	}
	var best *chaidSplit
	for f := range ds.FeatureNames {
		sp := chaidCandidate(ds, cfg, idx, f)
		if sp == nil {
			continue
		}
		if best == nil || sp.adjP < best.adjP {
			best = sp
		}
	}
	if best == nil || best.adjP > cfg.Alpha {
		return leafNode(counts)
	}
	children := make([]*node, best.nGroups)
	for g := range children {
		children[g] = growCHAID(ds, cfg, best.children[g], depth+1)
	}
	return &node{
		feature:  best.feature,
		counts:   counts,
		class:    majority(counts),
		cuts:     best.cuts,
		groups:   best.groups,
		children: children,
	}
}

// chaidCandidate bins feature f, merges statistically similar adjacent
// categories, and returns the split with its Bonferroni-adjusted p-value.
func chaidCandidate(ds Dataset, cfg Config, idx []int, f int) *chaidSplit {
	values := make([]float64, len(idx))
	for i, r := range idx {
		values[i] = ds.X[r][f]
	}
	cuts := stats.QuantileBins(values, cfg.MaxBins)
	if len(cuts) == 0 {
		return nil // constant feature
	}
	nBins := len(cuts) + 1
	// Contingency table bin × class.
	table := make([][]int, nBins)
	for b := range table {
		table[b] = make([]int, len(ds.ClassNames))
	}
	binOf := make([]int, len(idx))
	for i, r := range idx {
		b := stats.BinIndex(cuts, ds.X[r][f])
		binOf[i] = b
		table[b][ds.Y[r]]++
	}
	// Merge adjacent categories while the most similar adjacent pair is
	// indistinguishable (p > MergeAlpha). groups[] maps bin -> group id,
	// with group ids kept contiguous and ordered.
	groups := make([]int, nBins)
	for b := range groups {
		groups[b] = b
	}
	groupTables := make([][]int, nBins)
	for g := range groupTables {
		groupTables[g] = append([]int(nil), table[g]...)
	}
	nGroups := nBins
	for nGroups > 2 {
		// Find most-similar adjacent pair.
		bestP := -1.0
		bestG := -1
		for g := 0; g < nGroups-1; g++ {
			chi2, df := stats.ChiSquare([][]int{groupTables[g], groupTables[g+1]})
			p := stats.ChiSquarePValue(chi2, df)
			if p > bestP {
				bestP = p
				bestG = g
			}
		}
		if bestP < cfg.MergeAlpha || bestG < 0 {
			break
		}
		// Merge group bestG+1 into bestG.
		for c := range groupTables[bestG] {
			groupTables[bestG][c] += groupTables[bestG+1][c]
		}
		groupTables = append(groupTables[:bestG+1], groupTables[bestG+2:]...)
		for b := range groups {
			if groups[b] > bestG {
				groups[b]--
			}
		}
		nGroups--
	}
	// Significance of the merged table.
	merged := make([][]int, nGroups)
	copy(merged, groupTables)
	chi2, df := stats.ChiSquare(merged)
	if df == 0 {
		return nil
	}
	p := stats.ChiSquarePValue(chi2, df)
	// Bonferroni adjustment: number of ways to reduce nBins categories to
	// nGroups contiguous groups is C(nBins-1, nGroups-1).
	adj := p * choose(nBins-1, nGroups-1)
	if adj > 1 {
		adj = 1
	}
	// Row indices per group, honoring MinSamplesLeaf.
	children := make([][]int, nGroups)
	for i, r := range idx {
		g := groups[binOf[i]]
		children[g] = append(children[g], r)
	}
	for _, ch := range children {
		if len(ch) < cfg.MinSamplesLeaf {
			return nil
		}
	}
	return &chaidSplit{feature: f, cuts: cuts, groups: groups, nGroups: nGroups, adjP: adj, children: children}
}

func choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// ---------- rules ----------

// Condition is one predicate along a rule path.
type Condition struct {
	Feature int
	Low     float64 // inclusive lower bound (-Inf when unbounded)
	High    float64 // exclusive upper bound (+Inf when unbounded)
}

// Rule is a root-to-leaf path: all conditions conjoined imply the class.
type Rule struct {
	Conditions []Condition
	Class      int
	Support    int // training rows at the leaf
}

// Rules flattens the tree into an ordered rule list.
func (t *Tree) Rules() []Rule {
	var out []Rule
	var walk func(n *node, conds []Condition)
	walk = func(n *node, conds []Condition) {
		if n.leaf {
			support := 0
			for _, c := range n.counts {
				support += c
			}
			out = append(out, Rule{
				Conditions: append([]Condition(nil), conds...),
				Class:      n.class,
				Support:    support,
			})
			return
		}
		if n.children != nil {
			// CHAID: each group covers a bin interval union; since merges
			// are adjacent-only, every group covers one contiguous range.
			for g := range n.children {
				lo, hi := math.Inf(-1), math.Inf(1)
				first := true
				for b, bg := range n.groups {
					if bg != g {
						continue
					}
					blo, bhi := binBounds(n.cuts, b)
					if first {
						lo, hi = blo, bhi
						first = false
					} else {
						if blo < lo {
							lo = blo
						}
						if bhi > hi {
							hi = bhi
						}
					}
				}
				walk(n.children[g], append(conds, Condition{Feature: n.feature, Low: lo, High: hi}))
			}
			return
		}
		walk(n.left, append(conds, Condition{Feature: n.feature, Low: math.Inf(-1), High: n.threshold + 1e-300}))
		walk(n.right, append(conds, Condition{Feature: n.feature, Low: n.threshold, High: math.Inf(1)}))
	}
	walk(t.root, nil)
	return out
}

func binBounds(cuts []float64, b int) (float64, float64) {
	lo, hi := math.Inf(-1), math.Inf(1)
	if b > 0 {
		lo = cuts[b-1]
	}
	if b < len(cuts) {
		hi = cuts[b]
	}
	return lo, hi
}

// String renders the rule list compactly for logs and the CLI.
func (t *Tree) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s tree: %d nodes, depth %d\n", t.Method, t.NodeCount(), t.Depth())
	for _, r := range t.Rules() {
		sb.WriteString("  IF ")
		for i, c := range r.Conditions {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			name := t.FeatureNames[c.Feature]
			switch {
			case math.IsInf(c.Low, -1) && math.IsInf(c.High, 1):
				fmt.Fprintf(&sb, "%s=any", name)
			case math.IsInf(c.Low, -1):
				fmt.Fprintf(&sb, "%s < %.4g", name, c.High)
			case math.IsInf(c.High, 1):
				fmt.Fprintf(&sb, "%s >= %.4g", name, c.Low)
			default:
				fmt.Fprintf(&sb, "%.4g <= %s < %.4g", c.Low, name, c.High)
			}
		}
		if len(r.Conditions) == 0 {
			sb.WriteString("(always)")
		}
		fmt.Fprintf(&sb, " THEN %s (n=%d)\n", t.ClassNames[r.Class], r.Support)
	}
	return sb.String()
}
