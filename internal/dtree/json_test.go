package dtree

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestJSONRoundTripCART(t *testing.T) {
	ds := axisDataset(500, 0.05, 21)
	tree, err := TrainCART(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	jsonRoundTrip(t, tree, ds)
}

func TestJSONRoundTripCHAID(t *testing.T) {
	ds := axisDataset(500, 0.05, 22)
	tree, err := TrainCHAID(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	jsonRoundTrip(t, tree, ds)
}

func jsonRoundTrip(t *testing.T, tree *Tree, ds Dataset) {
	t.Helper()
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Method != tree.Method || back.NodeCount() != tree.NodeCount() || back.Depth() != tree.Depth() {
		t.Fatalf("structure changed: %s %d/%d vs %s %d/%d",
			back.Method, back.NodeCount(), back.Depth(), tree.Method, tree.NodeCount(), tree.Depth())
	}
	// Predictions must agree on random points.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		x := []float64{rng.Float64()*120 - 10, rng.Float64()}
		if tree.Predict(x) != back.Predict(x) {
			t.Fatalf("prediction diverged at %v", x)
		}
	}
	if Accuracy(tree, ds) != Accuracy(&back, ds) {
		t.Fatal("accuracy changed after round trip")
	}
}

func TestUnmarshalRejectsBadModels(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"version":99,"method":"cart","features":["x"],"classes":["a"],"root":{"leaf":true,"class":0}}`,
		`{"version":1,"method":"mystery","features":["x"],"classes":["a"],"root":{"leaf":true,"class":0}}`,
		`{"version":1,"method":"cart","features":[],"classes":["a"],"root":{"leaf":true,"class":0}}`,
		`{"version":1,"method":"cart","features":["x"],"classes":["a"]}`,
		`{"version":1,"method":"cart","features":["x"],"classes":["a"],"root":{"leaf":true,"class":5}}`,
		`{"version":1,"method":"cart","features":["x"],"classes":["a"],"root":{"class":0,"feature":3,"left":{"leaf":true,"class":0},"right":{"leaf":true,"class":0}}}`,
		`{"version":1,"method":"cart","features":["x"],"classes":["a"],"root":{"class":0,"feature":0,"left":{"leaf":true,"class":0}}}`,
		`{"version":1,"method":"chaid","features":["x"],"classes":["a","b"],"root":{"class":0,"feature":0,"cuts":[5],"groups":[0,9],"children":[{"leaf":true,"class":0},{"leaf":true,"class":1}]}}`,
	}
	for i, in := range cases {
		var tree Tree
		if err := json.Unmarshal([]byte(in), &tree); err == nil {
			t.Errorf("case %d: bad model accepted", i)
		}
	}
}
