package dtree

import (
	"encoding/json"
	"fmt"
)

// jsonTree is the serialized form of a Tree. The format is versioned so a
// persisted model from cmd/ctxselect keeps loading across releases.
type jsonTree struct {
	Version      int       `json:"version"`
	Method       string    `json:"method"`
	FeatureNames []string  `json:"features"`
	ClassNames   []string  `json:"classes"`
	Root         *jsonNode `json:"root"`
}

type jsonNode struct {
	Leaf      bool        `json:"leaf,omitempty"`
	Class     int         `json:"class"`
	Counts    []int       `json:"counts,omitempty"`
	Feature   int         `json:"feature,omitempty"`
	Threshold float64     `json:"threshold,omitempty"`
	Cuts      []float64   `json:"cuts,omitempty"`
	Groups    []int       `json:"groups,omitempty"`
	Left      *jsonNode   `json:"left,omitempty"`
	Right     *jsonNode   `json:"right,omitempty"`
	Children  []*jsonNode `json:"children,omitempty"`
}

const jsonVersion = 1

func toJSONNode(n *node) *jsonNode {
	if n == nil {
		return nil
	}
	j := &jsonNode{
		Leaf:      n.leaf,
		Class:     n.class,
		Counts:    n.counts,
		Feature:   n.feature,
		Threshold: n.threshold,
		Cuts:      n.cuts,
		Groups:    n.groups,
		Left:      toJSONNode(n.left),
		Right:     toJSONNode(n.right),
	}
	for _, c := range n.children {
		j.Children = append(j.Children, toJSONNode(c))
	}
	return j
}

func fromJSONNode(j *jsonNode, nClasses, nFeatures int) (*node, error) {
	if j == nil {
		return nil, nil
	}
	if j.Class < 0 || j.Class >= nClasses {
		return nil, fmt.Errorf("dtree: node class %d outside %d classes", j.Class, nClasses)
	}
	n := &node{
		leaf:      j.Leaf,
		class:     j.Class,
		counts:    j.Counts,
		feature:   j.Feature,
		threshold: j.Threshold,
		cuts:      j.Cuts,
		groups:    j.Groups,
	}
	if j.Leaf {
		return n, nil
	}
	if j.Feature < 0 || j.Feature >= nFeatures {
		return nil, fmt.Errorf("dtree: split feature %d outside %d features", j.Feature, nFeatures)
	}
	if len(j.Children) > 0 {
		if len(j.Groups) != len(j.Cuts)+1 {
			return nil, fmt.Errorf("dtree: CHAID node has %d groups for %d cuts", len(j.Groups), len(j.Cuts))
		}
		for bin, g := range j.Groups {
			if g < 0 || g >= len(j.Children) {
				return nil, fmt.Errorf("dtree: bin %d maps to child %d of %d", bin, g, len(j.Children))
			}
		}
		for _, cj := range j.Children {
			c, err := fromJSONNode(cj, nClasses, nFeatures)
			if err != nil {
				return nil, err
			}
			if c == nil {
				return nil, fmt.Errorf("dtree: nil child in CHAID node")
			}
			n.children = append(n.children, c)
		}
		return n, nil
	}
	var err error
	if n.left, err = fromJSONNode(j.Left, nClasses, nFeatures); err != nil {
		return nil, err
	}
	if n.right, err = fromJSONNode(j.Right, nClasses, nFeatures); err != nil {
		return nil, err
	}
	if n.left == nil || n.right == nil {
		return nil, fmt.Errorf("dtree: CART split missing a child")
	}
	return n, nil
}

// MarshalJSON serializes the tree.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTree{
		Version:      jsonVersion,
		Method:       t.Method,
		FeatureNames: t.FeatureNames,
		ClassNames:   t.ClassNames,
		Root:         toJSONNode(t.root),
	})
}

// UnmarshalJSON restores a tree serialized by MarshalJSON, validating the
// structure so a corrupted model file fails loudly instead of predicting
// garbage.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var j jsonTree
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("dtree: %w", err)
	}
	if j.Version != jsonVersion {
		return fmt.Errorf("dtree: model version %d, want %d", j.Version, jsonVersion)
	}
	if j.Method != "cart" && j.Method != "chaid" {
		return fmt.Errorf("dtree: unknown method %q", j.Method)
	}
	if len(j.ClassNames) == 0 || len(j.FeatureNames) == 0 {
		return fmt.Errorf("dtree: model missing classes or features")
	}
	if j.Root == nil {
		return fmt.Errorf("dtree: model missing root")
	}
	root, err := fromJSONNode(j.Root, len(j.ClassNames), len(j.FeatureNames))
	if err != nil {
		return err
	}
	t.Method = j.Method
	t.FeatureNames = j.FeatureNames
	t.ClassNames = j.ClassNames
	t.root = root
	return nil
}
