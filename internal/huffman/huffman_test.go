package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/srl-nuces/ctxdna/internal/bitio"
)

func freqsOf(data []byte) *[256]int64 {
	var f [256]int64
	for _, b := range data {
		f[b]++
	}
	return &f
}

func roundTrip(t *testing.T, data []byte) int {
	t.Helper()
	table, err := Build(freqsOf(data))
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(len(data))
	for _, b := range data {
		if err := table.Encode(w, b); err != nil {
			t.Fatal(err)
		}
	}
	// Decoder rebuilt from lengths only, as in a real stream.
	lens := table.Lengths()
	table2, err := FromLengths(&lens)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(table2)
	r := bitio.NewReader(w.Bytes())
	for i, want := range data {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
	return w.BitLen()
}

func TestRoundTripText(t *testing.T) {
	roundTrip(t, []byte("the quick brown fox jumps over the lazy dog and keeps on jumping"))
}

func TestRoundTripSingleSymbol(t *testing.T) {
	bits := roundTrip(t, []byte("AAAAAAAAAA"))
	if bits != 10 {
		t.Fatalf("lone-symbol alphabet should cost 1 bit/symbol, got %d bits", bits)
	}
}

func TestRoundTripTwoSymbols(t *testing.T) {
	roundTrip(t, []byte("ABABABABBBBAAB"))
}

func TestRoundTripAllBytes(t *testing.T) {
	data := make([]byte, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	roundTrip(t, data)
}

func TestNearEntropyOnSkewedSource(t *testing.T) {
	// Geometric-ish distribution over 16 symbols; Huffman must land within
	// 6 % of entropy (plus its 1-bit-per-symbol granularity floor).
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 200000)
	for i := range data {
		s := 0
		for s < 15 && rng.Float64() < 0.5 {
			s++
		}
		data[i] = byte(s)
	}
	f := freqsOf(data)
	var entropyBits float64
	for _, c := range f {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(len(data))
		entropyBits -= float64(c) * math.Log2(p)
	}
	table, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	cost := float64(table.CostBits(f))
	t.Logf("entropy %.0f bits, huffman %.0f bits (%.3f%% excess)", entropyBits, cost, 100*(cost/entropyBits-1))
	if cost < entropyBits {
		t.Fatal("Huffman below entropy — broken accounting")
	}
	if cost > entropyBits*1.06 {
		t.Fatalf("Huffman %.1f%% above entropy", 100*(cost/entropyBits-1))
	}
}

func TestBuildErrors(t *testing.T) {
	var empty [256]int64
	if _, err := Build(&empty); err == nil {
		t.Error("empty frequency table accepted")
	}
	var neg [256]int64
	neg[5] = -1
	if _, err := Build(&neg); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestFromLengthsValidation(t *testing.T) {
	var empty [256]uint8
	if _, err := FromLengths(&empty); err == nil {
		t.Error("empty length table accepted")
	}
	var tooLong [256]uint8
	tooLong[0] = MaxCodeLen + 1
	if _, err := FromLengths(&tooLong); err == nil {
		t.Error("over-long code accepted")
	}
	// Kraft violation: three 1-bit codes.
	var kraft [256]uint8
	kraft[0], kraft[1], kraft[2] = 1, 1, 1
	if _, err := FromLengths(&kraft); err == nil {
		t.Error("Kraft violation accepted")
	}
}

func TestEncodeAbsentSymbol(t *testing.T) {
	table, err := Build(freqsOf([]byte("AB")))
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(4)
	if err := table.Encode(w, 'Z'); err == nil {
		t.Fatal("absent symbol encoded")
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	table, err := Build(freqsOf([]byte("AAB")))
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(table)
	// An empty stream must error, not loop.
	r := bitio.NewReader(nil)
	if _, err := dec.Decode(r); err == nil {
		t.Fatal("decode from empty stream succeeded")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		table, err := Build(freqsOf(data))
		if err != nil {
			return false
		}
		w := bitio.NewWriter(len(data))
		for _, b := range data {
			if err := table.Encode(w, b); err != nil {
				return false
			}
		}
		dec := NewDecoder(table)
		r := bitio.NewReader(w.Bytes())
		for _, want := range data {
			got, err := dec.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = byte(rng.Intn(64))
	}
	table, err := Build(freqsOf(data))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(len(data))
		for _, s := range data {
			table.Encode(w, s)
		}
	}
}
